module ncg

go 1.24
