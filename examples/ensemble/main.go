// Ensembles on the execution spine: registry scenarios, custom
// registration, record streaming and checkpoint resume.
//
// Every workload in this repository — from the paper's figure sweeps to
// any game x policy x ensemble combination you can imagine — runs on the
// same spine: a scenario (one registry entry) executed as a sharded,
// deterministically seeded trial ensemble. This example lists the
// registry, runs a built-in scenario, then registers and runs a custom
// one, demonstrating that a new workload is a one-entry registration
// rather than new plumbing.
package main

import (
	"fmt"
	"log"

	"ncg"
)

func main() {
	// The registry spans all five game variants of the paper.
	fmt.Println("registered scenarios:")
	for _, sc := range ncg.Scenarios() {
		fmt.Printf("  %-24s %-10s %s\n", sc.Name, sc.Family, sc.Description)
	}

	// Run a built-in scenario (a Figure 7 series) on a reduced grid,
	// streaming per-trial records to an in-memory sink. Records arrive in
	// deterministic (n, trial) order regardless of worker count.
	sc, _ := ncg.LookupScenario("fig7-asg-sum-k2")
	var longest ncg.EnsembleRecord
	sum, err := ncg.RunScenario(sc,
		ncg.EnsembleOptions{Ns: []int{10, 20, 30}, Trials: 30, Workers: 4},
		ncg.FuncRecordSink(func(rec ncg.EnsembleRecord) error {
			if rec.Steps > longest.Steps {
				longest = rec
			}
			return nil
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s:\n", sc.Name)
	for _, a := range sum.Aggregates {
		fmt.Printf("  n=%-3d converged %d/%d  avg %.1f steps  max %d\n",
			a.N, a.Converged, a.Trials, a.AvgSteps(), a.MaxSteps)
	}
	fmt.Printf("  longest run: n=%d trial=%d with %d steps (seed %d)\n",
		longest.N, longest.Trial, longest.Steps, longest.Seed)

	// A new workload is one registration: the Greedy Buy Game at a cheap
	// alpha = n/10 starting from random trees, under the deterministic max
	// cost policy newly reachable from the sweep layer.
	err = ncg.RegisterScenario(ncg.Scenario{
		Name:        "example-gbg-trees",
		Description: "SUM-GBG at alpha=n/10 from random trees, deterministic max cost",
		Family:      "gbg",
		NewGame: func(n int) ncg.Game {
			return ncg.NewGreedyBuyGame(ncg.SUM, ncg.NewAlpha(int64(n), 10))
		},
		NewInitial: func(n int, r *ncg.Rand) *ncg.Graph { return ncg.RandomTree(n, r) },
		Policy:     ncg.PolicyMaxCostDeterministic,
		Ns:         []int{10, 20, 30},
		Trials:     20,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	custom, _ := ncg.LookupScenario("example-gbg-trees")
	sum2, err := ncg.RunScenario(custom, ncg.EnsembleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s:\n", custom.Name)
	for _, a := range sum2.Aggregates {
		fmt.Printf("  n=%-3d converged %d/%d  avg %.1f steps  buys %d  deletes %d\n",
			a.N, a.Converged, a.Trials, a.AvgSteps(), a.TotalMoves[2], a.TotalMoves[0])
	}
}
