// The fault-tolerant campaign service, in one process: a lease-based
// coordinator decomposes a counterexample hunt into shards, three workers
// lease and execute them over HTTP — one of them crashing mid-campaign
// under a seeded fault schedule — and the merged record stream still comes
// out byte-identical to a plain single-process run.
//
// In production the coordinator and workers are separate processes
// (`ncghunt serve` / `ncghunt work`, possibly on different machines); this
// example runs them in goroutines so the whole protocol — lease, heartbeat,
// expiry, re-lease, idempotent re-execution, merge — is observable in a
// few seconds. Determinism is what makes the fault tolerance cheap: every
// record is keyed by (sampler, variant, instance), never by which worker
// computed it, so a re-executed lease reproduces the exact bytes the dead
// worker would have written.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"ncg"
)

func main() {
	// A small hunt grid: random trees x two swap variants.
	tree, _ := ncg.CampaignSamplerByName("random-tree")
	sumSG, _ := ncg.CampaignVariantByName("sum-sg")
	maxSG, _ := ncg.CampaignVariantByName("max-sg")
	c := ncg.Campaign{
		Name:      "example-service",
		Samplers:  []ncg.CampaignSampler{tree},
		Variants:  []ncg.CampaignVariant{sumSG, maxSG},
		N:         9,
		Instances: 30,
		Seed:      11,
		MaxStates: 400,
	}

	// The baseline: what a single process would write.
	var want bytes.Buffer
	if _, err := ncg.RunCampaign(c, ncg.CampaignOptions{}, ncg.NewCampaignJSONLSink(&want)); err != nil {
		log.Fatal(err)
	}

	// The coordinator persists its shard ledger under dir; restarting on
	// the same directory resumes exactly where the manifest says it was.
	dir, err := os.MkdirTemp("", "ncg-coord-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	co, err := ncg.OpenCoordinator(ncg.CoordinatorConfig{
		Campaign:  c,
		Dir:       dir,
		ShardSize: 4,
		// Short leases so a crashed worker's shard is re-grantable in
		// milliseconds; production defaults to 30s.
		LeaseTTL: 300 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	st := co.Status()
	fmt.Printf("serving %s: %d shards of <=4 instances\n", st.Campaign, st.Shards)

	// Three workers race for leases. Worker "chaotic" is scheduled to
	// crash between the instances of its second shard; the lease it held
	// expires and another worker re-executes the shard to the same bytes.
	// (Chaos sweeps use ncg.SeededFaultSchedule to derive whole schedules
	// from a seed; an explicit schedule pins one story for this demo.)
	var wg sync.WaitGroup
	for _, w := range []struct {
		name   string
		faults *ncg.FaultInjector
	}{
		{"steady-a", nil},
		{"steady-b", nil},
		{"chaotic", ncg.NewFaultInjector(ncg.FaultSchedule{
			ncg.FaultPointWorkerInstance: {5: ncg.FaultCrash},
		})},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := ncg.RunCampaignWorker(context.Background(), ncg.CampaignWorkerConfig{
				URL:      srv.URL,
				Campaign: c,
				Name:     w.name,
				Injector: w.faults,
				StallFor: 100 * time.Millisecond,
			})
			switch {
			case err == nil:
				fmt.Printf("worker %-8s done: %d shards, %d records\n",
					w.name, stats.Shards, stats.Records)
			case errors.Is(err, ncg.ErrInjectedCrash):
				fmt.Printf("worker %-8s crashed mid-shard (injected) — its lease will expire\n", w.name)
			default:
				log.Fatalf("worker %s: %v", w.name, err)
			}
		}()
	}
	wg.Wait()
	<-co.Done()

	// The merged stream is the single-process stream, byte for byte.
	got, err := os.ReadFile(co.ResultPath())
	if err != nil {
		log.Fatal(err)
	}
	st = co.Status()
	fmt.Printf("merged %d records (%d hits) from %d shards\n", st.Records, st.Hits, st.Done)
	fmt.Printf("byte-identical to single-process run: %v\n", bytes.Equal(got, want.Bytes()))
}
