// Mapping the boundary between convergence and non-convergence
// (Section 3.3 of the paper).
//
// The paper shows that one non-tree edge is enough to destroy the
// convergence guarantee of Asymmetric Swap Games — yet its own simulations
// (and this example) show random unit-budget networks essentially always
// converge. The example samples random unit-budget networks, exhaustively
// explores their best-response state graphs, and reports how many converge
// from every schedule versus how many admit cyclic behaviour.
package main

import (
	"fmt"

	"ncg"
)

func main() {
	gm := ncg.NewAsymSwapGame(ncg.SUM)
	const trials = 40
	r := ncg.NewRand(5)
	allStable, cyclic, aborted := 0, 0, 0
	for i := 0; i < trials; i++ {
		g := ncg.BudgetNetwork(10, 1, r)
		// Explore every best-response schedule, not just one run.
		res, err := ncg.ExploreBestResponse(g, gm, 20000)
		switch {
		case err != nil:
			aborted++
		case res.StableReachable && !hasCycle(g, gm):
			allStable++
		default:
			cyclic++
		}
	}
	fmt.Printf("n=10, unit budget, %d random instances:\n", trials)
	fmt.Printf("  convergent under every best-response schedule: %d\n", allStable)
	fmt.Printf("  admitting best-response cycles:                %d\n", cyclic)
	fmt.Printf("  state space exceeded the exploration cap:      %d\n", aborted)
	fmt.Println("\nThe paper's Theorem 3.7 shows engineered unit-budget networks")
	fmt.Println("DO admit best response cycles; random ones almost never do —")
	fmt.Println("matching the paper's empirical observation that cyclic behaviour")
	fmt.Println("is confined to pathological instances.")
}

func hasCycle(g *ncg.Graph, gm ncg.Game) bool {
	return ncg.FindBestResponseCycle(g, gm, 20000) != nil
}
