// Overlay network formation: the paper's motivating scenario.
//
// A set of selfish peers builds an overlay network by distributed local
// search in the Greedy Buy Game: each step, one peer buys, drops or
// rewires a link to lower its own cost alpha*(links owned) + total
// distance. The paper's empirical finding (Section 4.2) is that this
// converges remarkably fast — within a small multiple of n steps — and
// ends in a low-diameter network, which is what makes selfish dynamics a
// plausible decentralized protocol.
package main

import (
	"fmt"

	"ncg"
)

func main() {
	const n = 40
	r := ncg.NewRand(7)
	// Peers join with 2 random links each (the Section 3.4.1 ensemble).
	g := ncg.BudgetNetwork(n, 2, r)
	gm := ncg.NewGreedyBuyGame(ncg.SUM, ncg.NewAlpha(n, 4)) // alpha = n/4

	before := g.Clone()
	res := ncg.Run(g, ncg.ProcessConfig{
		Game:   gm,
		Policy: ncg.RandomPolicy(),
		Seed:   7,
	})

	fmt.Printf("peers: %d, alpha = n/4\n", n)
	fmt.Printf("initial:  %3d links, diameter %d, total distance %d\n",
		before.M(), before.Diameter(), before.TotalDistance())
	fmt.Printf("final:    %3d links, diameter %d, total distance %d\n",
		g.M(), g.Diameter(), g.TotalDistance())
	fmt.Printf("converged after %d moves (%.1f per peer): buys=%d deletes=%d swaps=%d\n",
		res.Steps, float64(res.Steps)/n,
		res.MoveKinds[2], res.MoveKinds[0], res.MoveKinds[1])
	if !res.Converged {
		fmt.Println("WARNING: did not converge within the step budget")
	}

	// The paper's motivation: selfishly built stable networks are
	// near-optimal. Compare against the social optimum for this alpha.
	rep := ncg.EvaluateQuality(g, gm, nil)
	fmt.Printf("social cost vs optimum: %.2fx (diameter %d)\n", rep.Ratio, rep.Diameter)
	fmt.Printf("phase profile: %s\n", ncg.ProfilePhases(res.Kinds))
}
