// Live result streaming under failure: a registry-hosted coordinator
// serves a counterexample hunt to two workers while a watch client
// follows the committed record stream over GET /v1/stream. Mid-stream, a
// scheduled fault crashes the coordinator during a chunk write; the
// registry's supervisor reopens it from its own state directory, the
// watcher resumes from its last acked cursor, and the bytes it collected
// — across the crash, the reconnects and the restart — are exactly the
// campaign's canonical records.jsonl.
//
// The stream contract doing the work here: every chunk a client acks is
// a byte-prefix extension of the durable merged stream, and a cursor
// names an exact byte offset (fingerprint-scoped, so it can never
// resume into a different campaign). Nothing is buffered per client —
// chunks are read straight from the committed shard files — so a crash
// loses no stream state that matters.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"ncg"
)

func main() {
	tree, _ := ncg.CampaignSamplerByName("random-tree")
	sumSG, _ := ncg.CampaignVariantByName("sum-sg")
	maxSG, _ := ncg.CampaignVariantByName("max-sg")
	c := ncg.Campaign{
		Name:      "example-stream",
		Samplers:  []ncg.CampaignSampler{tree},
		Variants:  []ncg.CampaignVariant{sumSG, maxSG},
		N:         9,
		Instances: 30,
		Seed:      17,
		MaxStates: 400,
	}

	// The baseline: what a single process would write.
	var want bytes.Buffer
	if _, err := ncg.RunCampaign(c, ncg.CampaignOptions{}, ncg.NewCampaignJSONLSink(&want)); err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "ncg-stream-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The registry supervises the coordinator: an injected crash takes its
	// routes to 503 + Retry-After, and AutoRestart reopens it from the
	// manifest — the in-process version of restarting `ncghunt serve`.
	reg := ncg.NewCampaignRegistry(ncg.CampaignRegistryConfig{
		AutoRestart: 50 * time.Millisecond,
		Logf: func(format string, args ...any) {
			fmt.Printf("  [registry] "+format+"\n", args...)
		},
	})
	defer reg.Close()
	if _, err := reg.Add("hunt", ncg.CoordinatorConfig{
		Campaign:  c,
		Dir:       dir,
		ShardSize: 4,
		LeaseTTL:  300 * time.Millisecond,
		// Small chunks so the watch takes several polls, and a crash
		// scheduled on the second chunk write: the coordinator dies while
		// serving the stream, mid-campaign. The injector instance survives
		// the restart, so the crash fires exactly once.
		StreamChunkBytes: 200,
		Injector: ncg.NewFaultInjector(ncg.FaultSchedule{
			ncg.FaultPointStreamChunk: {1: ncg.FaultCrash},
		}),
	}); err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	fmt.Printf("serving campaign %q with live stream at %s/v1/stream\n", "hunt", srv.URL)

	// The watcher follows the stream concurrently with the workers filling
	// it. It sees the crash as a severed connection or a 503, reconnects,
	// and resumes from the last cursor it acked.
	var got bytes.Buffer
	watchDone := make(chan ncg.CampaignWatchStats, 1)
	go func() {
		stats, err := ncg.RunCampaignWatch(context.Background(), ncg.CampaignWatchConfig{
			URL:  srv.URL,
			Wait: 200 * time.Millisecond,
			OnChunk: func(chunk []byte, cursor string, complete bool) error {
				_, werr := got.Write(chunk)
				return werr
			},
			Logf: func(format string, args ...any) {
				fmt.Printf("  [watch] "+format+"\n", args...)
			},
		})
		if err != nil {
			log.Fatalf("watch: %v", err)
		}
		watchDone <- stats
	}()

	// Two workers drain the shard queue; while the coordinator is down
	// they back off against its 503s and pick their leases back up after
	// the restart.
	var wg sync.WaitGroup
	for _, name := range []string{"steady-a", "steady-b"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := ncg.RunCampaignWorker(context.Background(), ncg.CampaignWorkerConfig{
				URL:      srv.URL,
				Campaign: c,
				Name:     name,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Fatalf("worker %s: %v", name, err)
			}
			fmt.Printf("worker %-8s done: %d shards, %d records, %d retries\n",
				name, stats.Shards, stats.Records, stats.Retries)
		}()
	}
	wg.Wait()
	stats := <-watchDone

	co := reg.Get("hunt")
	if co == nil {
		log.Fatal("campaign down after completion")
	}
	merged, err := os.ReadFile(co.ResultPath())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watch complete: %d bytes in %d polls (%d retries, %d reconnects), %d coordinator restart(s)\n",
		stats.Bytes, stats.Polls, stats.Retries, stats.Reconnects, reg.Restarts("hunt"))
	fmt.Printf("watched stream byte-identical to merged records: %v\n", bytes.Equal(got.Bytes(), merged))
	fmt.Printf("merged records byte-identical to single-process run: %v\n", bytes.Equal(merged, want.Bytes()))
}
