// Quickstart: run a network creation process to a stable network.
//
// Nine agents start on a path and play the MAX Swap Game under the max
// cost policy — the setting of Theorem 2.11 and Figure 1 of Kawald &
// Lenzner (SPAA'13). The process is guaranteed to converge (the paper
// shows Theta(n log n) moves) and the stable tree is a star or double
// star.
package main

import (
	"fmt"

	"ncg"
)

func main() {
	g := ncg.Path(9)
	fmt.Println("initial network:", g)
	fmt.Println("initial diameter:", g.Diameter())

	res := ncg.Run(g, ncg.ProcessConfig{
		Game:   ncg.NewMaxSwapGame(),
		Policy: ncg.MaxCostPolicy(),
		Seed:   1,
	})

	fmt.Println("\nconverged:", res.Converged, "after", res.Steps, "moves")
	fmt.Println("final network:", g)
	fmt.Println("final diameter:", g.Diameter())
	fmt.Println("is star:", g.IsStar(), " is double star:", g.IsDoubleStar())
	fmt.Println("stable (pure Nash equilibrium):", ncg.Stable(g, ncg.NewMaxSwapGame()))
}
