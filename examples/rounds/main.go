// Simultaneous play: what changes when agents move in rounds.
//
// Sequential best-response dynamics in the SUM Swap Game always converge —
// the game admits an ordinal potential, so improving moves taken one at a
// time can never loop (Kawald & Lenzner, Theorem 2.1 territory). Drop the
// one-agent-per-step assumption, though, and the potential argument
// evaporates: when every unhappy agent best-responds against the same
// pre-round snapshot and the responses commit together, the played
// trajectory can revisit an earlier network and oscillate forever.
//
// This example takes one random connected network, shows the sequential
// process converging, then plays the same start under the round schedules
// and watches the collision policy decide the fate of the dynamics:
// first-writer-wins oscillates, skip-on-conflict converges, reject-round
// stalls without committing a single move.
package main

import (
	"fmt"

	"ncg"
)

func main() {
	start := ncg.RandomConnected(14, 28, ncg.NewRand(33))
	gm := ncg.NewSumSwapGame()
	fmt.Println("start network:", start)

	// The classical sequential process: one unhappy agent per step.
	seq := ncg.Run(start.Clone(), ncg.ProcessConfig{
		Game: gm, Policy: ncg.MaxCostPolicy(),
		Tie: ncg.TieFirst, Seed: 1, MaxSteps: 4000, DetectCycles: true,
	})
	fmt.Printf("\nsequential: converged=%v after %d moves (potential game — always does)\n",
		seq.Converged, seq.Steps)

	// The same start under every round schedule.
	fmt.Println("\nsimultaneous rounds, by collision policy:")
	for _, name := range []string{"rounds", "rounds-skip", "rounds-reject", "rounds-shuffled"} {
		sched, _ := ncg.ScheduleByName(name)
		res := ncg.Run(start.Clone(), ncg.ProcessConfig{
			Game: gm, Tie: ncg.TieFirst, Seed: 1,
			MaxSteps: 4000, DetectCycles: true, Schedule: sched,
		})
		outcome := "hit the round bound"
		switch {
		case res.Cycled:
			outcome = fmt.Sprintf("OSCILLATES: revisits a network, cycle of %d moves", res.CycleLen)
		case res.Converged:
			outcome = "converged to a stable network"
		case res.Steps == 0:
			outcome = "STALLS: every round collides, no move ever commits"
		}
		fmt.Printf("  %-16s %3d moves in %d rounds (%d withheld)  %s\n",
			name, res.Steps, res.Rounds, res.Skipped, outcome)
	}

	// Replay the oscillating schedule's trajectory and print the cycle it
	// closes: the networks it shuttles between and the moves in between.
	fc, moves := ncg.SearchRoundCycle(start, ncg.ProcessConfig{
		Game: gm, Tie: ncg.TieFirst, Seed: 1, MaxSteps: 4000,
		Schedule: ncg.RoundSchedule{Active: ncg.ActiveAll, Collision: ncg.FirstWriterWins},
	})
	fmt.Printf("\nthe first-writer-wins cycle, found after %d committed moves:\n", moves)
	for i, mv := range fc.Moves {
		fmt.Printf("  state %v\n  move  %v\n", fc.States[i], mv)
	}
	fmt.Println("  ... and back to the first state: selfish simultaneous play never settles.")
}
