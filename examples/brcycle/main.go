// Best response cycles: why selfish play may never stabilize.
//
// This example loads the paper's verified cycle constructions and lets one
// of them — the 24-agent SUM Asymmetric Swap Game of Figure 3 — actually
// run under the engine's cycle detector, demonstrating that the process
// revisits its initial state after four best-response moves and therefore
// never converges under ANY move policy.
package main

import (
	"fmt"

	"ncg"
)

func main() {
	fmt.Println("verified constructions from the paper:")
	for _, inst := range ncg.PaperCycles() {
		err := inst.Verify()
		status := "verified"
		if err != nil {
			status = "FAILED: " + err.Error()
		}
		fmt.Printf("  %-20s %d-step cycle  %s\n", inst.Name, len(inst.Steps), status)
	}

	// Run the Figure 3 instance live with cycle detection.
	var fig3 ncg.CycleInstance
	for _, inst := range ncg.PaperCycles() {
		if inst.Name == "Fig3 SUM-ASG" {
			fig3 = inst
		}
	}
	g := fig3.Start()
	res := ncg.Run(g, ncg.ProcessConfig{
		Game:         fig3.Game,
		Policy:       ncg.MaxCostPolicy(),
		DetectCycles: true,
		Seed:         1,
		MaxSteps:     100,
	})
	fmt.Printf("\nlive run of Fig3 SUM-ASG: converged=%v cycled=%v cycle length=%d\n",
		res.Converged, res.Cycled, res.CycleLen)

	// Contrast: exhaustive exploration proves no stable state is even
	// reachable in the bilateral construction of Theorem 5.1.
	var fig15 ncg.CycleInstance
	for _, inst := range ncg.PaperCycles() {
		if inst.Name == "Fig15 SUM-bilateral" {
			fig15 = inst
		}
	}
	reach, err := ncg.ExploreImproving(fig15.Start(), fig15.Game, 5000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Thm 5.1 bilateral game: %d reachable states, stable reachable: %v\n",
		reach.States, reach.StableReachable)
}
