package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// runCmd invokes the CLI in-process and returns (exit code, stdout,
// stderr).
func runCmd(args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"grid with args", []string{"grid", "extra"}},
		{"unknown sampler", []string{"run", "-samplers", "nope"}},
		{"unknown variant", []string{"run", "-variants", "nope"}},
		{"bad instances", []string{"run", "-instances", "0"}},
		{"bad max-states", []string{"run", "-max-states", "-1"}},
		{"infeasible budget n", []string{"run", "-samplers", "budget-k3", "-n", "6", "-instances", "1"}},
		{"resume without jsonl", []string{"resume"}},
		{"trailing args", []string{"run", "stray"}},
		{"unknown schedule", []string{"run", "-schedule", "simultaneous"}},
		{"serve without dir", []string{"serve"}},
		{"serve bad stream-clients", []string{"serve", "-dir", "x", "-stream-clients", "-1"}},
		{"serve bad log-every", []string{"serve", "-dir", "x", "-log-every", "-1s"}},
		{"work without url", []string{"work"}},
		{"watch without url", []string{"watch"}},
		{"watch bad wait", []string{"watch", "-url", "http://x", "-wait", "0s"}},
		{"watch bad max", []string{"watch", "-url", "http://x", "-max", "-1"}},
	} {
		if code, _, _ := runCmd(tc.args...); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
	}
}

// TestServeWorkWatchSmoke drives the full service surface through the
// CLI: serve hosts the campaign in a registry, work drains it over the
// lease protocol, watch streams the committed records, and the watched
// bytes are exactly the merged records.jsonl.
func TestServeWorkWatchSmoke(t *testing.T) {
	dir := t.TempDir()
	camp := []string{
		"-samplers", "cycle-pendant", "-variants", "sum-asg",
		"-instances", "2", "-max-states", "100",
	}
	serveArgs := append([]string{"serve", "-dir", dir, "-addr", "127.0.0.1:0", "-shard", "1", "-log-every", "0"}, camp...)
	var sout, serr syncBuffer
	serveCode := make(chan int, 1)
	go func() { serveCode <- run(serveArgs, &sout, &serr) }()

	// The listen address is announced on stdout once the service is up.
	addrRe := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	var url string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if m := addrRe.FindStringSubmatch(sout.String()); m != nil {
			url = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never announced its address\nstdout: %s\nstderr: %s", sout.String(), serr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Registry surface: liveness and readiness answer on the same port.
	for _, path := range []string{"/healthz", "/readyz"} {
		res, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, res.StatusCode)
		}
	}

	if code, _, errOut := runCmd(append([]string{"work", "-url", url, "-name", "w1"}, camp...)...); code != 0 {
		t.Fatalf("work exit %d, stderr: %s", code, errOut)
	}
	code, watched, errOut := runCmd("watch", "-url", url, "-wait", "1s")
	if code != 0 {
		t.Fatalf("watch exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "watch complete") {
		t.Fatalf("watch did not report completion, stderr: %s", errOut)
	}
	merged, err := os.ReadFile(filepath.Join(dir, "records.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(watched), merged) {
		t.Fatalf("watched stream differs from merged records:\nwatched: %q\nmerged:  %q", watched, merged)
	}

	// serve exits on its own once the campaign completes.
	select {
	case code := <-serveCode:
		if code != 0 {
			t.Fatalf("serve exit %d, stderr: %s", code, serr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve never exited after completion\nstderr: %s", serr.String())
	}
}

func TestGrid(t *testing.T) {
	code, out, _ := runCmd("grid")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"cycle-pendant", "budget-k3", "sum-asg", "max-bg", "rounds-sum-sg", "rounds trajectory"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output misses %q", want)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	code, out, errOut := runCmd("run",
		"-samplers", "cycle-pendant", "-variants", "sum-asg",
		"-instances", "2", "-max-states", "100", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "2 instances searched") {
		t.Errorf("summary missing searched count:\n%s", out)
	}
}

// TestRoundHuntSmoke: a round variant runs on the campaign spine, and the
// -schedule override switches a built-in variant to round search.
func TestRoundHuntSmoke(t *testing.T) {
	code, out, errOut := runCmd("run",
		"-samplers", "random-tree", "-variants", "rounds-sum-sg",
		"-n", "8", "-instances", "2", "-max-states", "200", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "rounds-sum-sg") || !strings.Contains(out, "2 instances searched") {
		t.Errorf("round hunt summary incomplete:\n%s", out)
	}
	code, _, errOut = runCmd("run",
		"-samplers", "random-tree", "-variants", "sum-sg", "-schedule", "rounds",
		"-n", "8", "-instances", "2", "-max-states", "200", "-workers", "1")
	if code != 0 {
		t.Fatalf("-schedule override exit %d, stderr: %s", code, errOut)
	}
}

func TestRunAndResumeJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hunt.jsonl")
	code, _, errOut := runCmd("run",
		"-samplers", "random-tree", "-variants", "sum-asg",
		"-n", "5", "-instances", "3", "-max-states", "100", "-jsonl", path)
	if code != 0 {
		t.Fatalf("run exit %d, stderr: %s", code, errOut)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.Split(bytes.TrimSpace(full), []byte("\n"))) != 3 {
		t.Fatalf("expected 3 records, got %q", full)
	}
	// Truncate mid-stream and resume: the file must come back identical.
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCmd("resume",
		"-samplers", "random-tree", "-variants", "sum-asg",
		"-n", "5", "-instances", "3", "-max-states", "100", "-jsonl", path)
	if code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, errOut)
	}
	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, resumed) {
		t.Fatal("resumed file differs from the uninterrupted run")
	}
}
