package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd invokes the CLI in-process and returns (exit code, stdout,
// stderr).
func runCmd(args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"grid with args", []string{"grid", "extra"}},
		{"unknown sampler", []string{"run", "-samplers", "nope"}},
		{"unknown variant", []string{"run", "-variants", "nope"}},
		{"bad instances", []string{"run", "-instances", "0"}},
		{"bad max-states", []string{"run", "-max-states", "-1"}},
		{"infeasible budget n", []string{"run", "-samplers", "budget-k3", "-n", "6", "-instances", "1"}},
		{"resume without jsonl", []string{"resume"}},
		{"trailing args", []string{"run", "stray"}},
		{"unknown schedule", []string{"run", "-schedule", "simultaneous"}},
	} {
		if code, _, _ := runCmd(tc.args...); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
	}
}

func TestGrid(t *testing.T) {
	code, out, _ := runCmd("grid")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"cycle-pendant", "budget-k3", "sum-asg", "max-bg", "rounds-sum-sg", "rounds trajectory"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output misses %q", want)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	code, out, errOut := runCmd("run",
		"-samplers", "cycle-pendant", "-variants", "sum-asg",
		"-instances", "2", "-max-states", "100", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "2 instances searched") {
		t.Errorf("summary missing searched count:\n%s", out)
	}
}

// TestRoundHuntSmoke: a round variant runs on the campaign spine, and the
// -schedule override switches a built-in variant to round search.
func TestRoundHuntSmoke(t *testing.T) {
	code, out, errOut := runCmd("run",
		"-samplers", "random-tree", "-variants", "rounds-sum-sg",
		"-n", "8", "-instances", "2", "-max-states", "200", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "rounds-sum-sg") || !strings.Contains(out, "2 instances searched") {
		t.Errorf("round hunt summary incomplete:\n%s", out)
	}
	code, _, errOut = runCmd("run",
		"-samplers", "random-tree", "-variants", "sum-sg", "-schedule", "rounds",
		"-n", "8", "-instances", "2", "-max-states", "200", "-workers", "1")
	if code != 0 {
		t.Fatalf("-schedule override exit %d, stderr: %s", code, errOut)
	}
}

func TestRunAndResumeJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hunt.jsonl")
	code, _, errOut := runCmd("run",
		"-samplers", "random-tree", "-variants", "sum-asg",
		"-n", "5", "-instances", "3", "-max-states", "100", "-jsonl", path)
	if code != 0 {
		t.Fatalf("run exit %d, stderr: %s", code, errOut)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.Split(bytes.TrimSpace(full), []byte("\n"))) != 3 {
		t.Fatalf("expected 3 records, got %q", full)
	}
	// Truncate mid-stream and resume: the file must come back identical.
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCmd("resume",
		"-samplers", "random-tree", "-variants", "sum-asg",
		"-n", "5", "-instances", "3", "-max-states", "100", "-jsonl", path)
	if code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, errOut)
	}
	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, resumed) {
		t.Fatal("resumed file differs from the uninterrupted run")
	}
}
