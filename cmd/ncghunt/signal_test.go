package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ncg/internal/campaign"
	"ncg/internal/cli"
)

// syncBuffer is a locked bytes.Buffer: exec's copier goroutine writes to
// it while the test polls String().
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMain doubles the test binary as the ncghunt executable: with
// NCGHUNT_BE_CMD set it runs the CLI on the \x1f-separated argument list
// instead of the tests, so signal tests can exercise a real process
// receiving real signals without building the command separately.
func TestMain(m *testing.M) {
	if args := os.Getenv("NCGHUNT_BE_CMD"); args != "" {
		os.Exit(run(strings.Split(args, "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// spawn re-executes the test binary as ncghunt with the given arguments.
func spawn(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "NCGHUNT_BE_CMD="+strings.Join(args, "\x1f"))
	return cmd
}

// exitCode waits for the process and returns its exit status.
func exitCode(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	err := cmd.Wait()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("wait: %v", err)
	return -1
}

// TestSIGINTCheckpointsRun is the graceful-shutdown smoke test of the
// ISSUE: interrupt a real `ncghunt run` process mid-campaign and assert
// it exits with the interrupt status, the JSONL file it leaves behind is
// a clean resumable checkpoint (complete lines only, loadable, partial),
// and resuming completes it byte-identically to an uninterrupted run.
func TestSIGINTCheckpointsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and reruns the campaign")
	}
	huntArgs := []string{
		"-samplers", "random-tree", "-variants", "sum-asg",
		"-n", "9", "-instances", "2000", "-max-states", "600", "-workers", "2",
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "hunt.jsonl")
	cmd := spawn(t, append([]string{"run", "-jsonl", path}, huntArgs...)...)
	var stderr syncBuffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Interrupt once the run has demonstrably streamed a record.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(path); err == nil && bytes.Contains(data, []byte("\n")) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("run produced no records; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if code := exitCode(t, cmd); code != cli.SignalExitCode {
		t.Fatalf("interrupted run exited %d, want %d; stderr: %s", code, cli.SignalExitCode, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resume") {
		t.Fatalf("no resume hint on stderr: %s", stderr.String())
	}

	// The file must be a clean checkpoint: newline-terminated complete
	// lines, loadable, and genuinely partial (the campaign is far larger
	// than anything searchable before the signal).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatalf("checkpoint does not end at a record boundary: %q", data[max(0, len(data)-80):])
	}
	cp, err := campaign.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() == 0 || cp.Len() >= 2000 {
		t.Fatalf("checkpoint recovered %d instances, want a partial run", cp.Len())
	}
	t.Logf("interrupted after %d of 2000 instances", cp.Len())

	// Resume in-process and compare against an uninterrupted reference run.
	if code, _, errOut := runCmd(append([]string{"resume", "-jsonl", path}, huntArgs...)...); code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, errOut)
	}
	refPath := filepath.Join(dir, "ref.jsonl")
	if code, _, errOut := runCmd(append([]string{"run", "-jsonl", refPath}, huntArgs...)...); code != 0 {
		t.Fatalf("reference run exit %d, stderr: %s", code, errOut)
	}
	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, ref) {
		t.Fatalf("resumed file differs from uninterrupted run (%d vs %d bytes)", len(resumed), len(ref))
	}
}

// TestSIGINTStopsServe interrupts a real coordinator process and asserts
// the interrupt exit status and the resume hint.
func TestSIGINTStopsServe(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	cmd := spawn(t, "serve", "-dir", dir, "-addr", "127.0.0.1:0",
		"-samplers", "random-tree", "-variants", "sum-asg",
		"-n", "8", "-instances", "10", "-max-states", "200")
	var stdout, stderr syncBuffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(stdout.String(), "serving campaign") {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("coordinator never came up; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if code := exitCode(t, cmd); code != cli.SignalExitCode {
		t.Fatalf("interrupted serve exited %d, want %d; stderr: %s", code, cli.SignalExitCode, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resume with") {
		t.Fatalf("no resume hint on stderr: %s", stderr.String())
	}
}
