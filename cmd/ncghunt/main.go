// Command ncghunt runs sharded counterexample-hunt campaigns: a grid of
// instance samplers crossed with game variants, every (sampler, variant,
// instance) searched for a best-response cycle on the interned state-store
// explorer. Records stream to JSONL (hits carry the canonical start
// network and the cycle trace) and an interrupted campaign resumes from
// the partial file, re-searching only the missing instances. Results are
// bit-identical at any worker count.
//
// Usage:
//
//	ncghunt grid
//	ncghunt run [-samplers a,b] [-variants x,y] [-n n] [-instances k]
//	            [-seed s] [-max-states m] [-max-hits h]
//	            [-workers w] [-shard s] [-jsonl path] [-progress]
//	ncghunt resume -jsonl path [same flags as run]
//	ncghunt serve -dir path [-addr host:port] [campaign flags]
//	ncghunt work -url http://host:port [campaign flags]
//	ncghunt watch -url http://host:port [-cursor tok]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"ncg/internal/campaign"
	"ncg/internal/cli"
	"ncg/internal/coord"
	"ncg/internal/dynamics"
)

const usage = `ncghunt — sharded counterexample-hunt campaigns

Usage:
  ncghunt grid
      List the built-in instance samplers and game variants (the grid
      axes of a campaign).

  ncghunt run [flags]
      Hunt best-response cycles over the samplers x variants grid:
        -samplers a,b  comma-separated sampler names (default: all)
        -variants x,y  comma-separated variant names (default: all
                       built-ins; rounds-* variants hunt played round
                       trajectories instead of the state graph)
        -schedule s    override every selected variant's search schedule
                       (sequential, rounds, rounds-shuffled, rounds-skip,
                       rounds-reject)
        -backend b     adjacency backend of round-trajectory variants
                       (auto, dense, sparse; bit-identical either way)
        -oracle o      distance oracle of round-trajectory variants (auto,
                       exact, landmark, landmark:k; landmark records are
                       bit-identical to exact)
        -n n           agent count for sized samplers (default 10)
        -instances k   instances per grid cell (default 100)
        -seed s        base seed (every instance derives its own stream)
        -max-states m  per-instance state cap (default 20000)
        -max-hits h    stop after h hits (0 = search every instance)
        -workers w     worker goroutines (0 = GOMAXPROCS; never changes
                       results)
        -shard s       instances per shard (0 = auto; never changes
                       results)
        -jsonl path    stream per-instance records to this JSONL file
        -progress      print per-shard progress to stderr

  ncghunt resume -jsonl path [flags]
      Continue an interrupted campaign from a partial JSONL file,
      re-searching only the instances the file does not fully record.
      Give the same flags as the original run.

  ncghunt serve -dir path [flags]
      Serve the campaign as a fault-tolerant lease-based coordinator:
      workers (ncghunt work) lease shards over HTTP, crashed workers'
      shards re-lease on expiry, and the merged record stream in
      <dir>/records.jsonl is byte-identical to a single-process run.
      The directory is resumable: restarting serve on it continues from
      the manifest. The process also serves /healthz, /readyz and the
      live result stream at /v1/stream (cursor-resumable long-poll or
      SSE with slow-client eviction and admission control); the campaign
      is additionally routed at /c/<name>/v1/... for multi-campaign
      tooling. Campaign flags as in run, plus:
        -addr host:port   listen address (default 127.0.0.1:8777)
        -shard s          instances per shard (default 64)
        -lease-ttl d      heartbeat-renewed lease expiry (default 30s)
        -name id          hosted campaign name (default hunt)
        -stream-clients n max concurrent /v1/stream clients (default 64;
                          extra clients get 503 + Retry-After)
        -log-every d      period of status lines on stderr with queue
                          depth and worker-count autoscaling hints
                          (default 30s; 0 disables)

  ncghunt work -url http://host:port [flags]
      Run a worker against a coordinator. Give the same campaign flags
      as the serve side (the fingerprint handshake rejects drift), plus:
        -name id  worker name in leases and logs

  ncghunt watch -url http://host:port [flags]
      Follow a coordinator's live result stream, writing records to
      stdout as they commit. The stream is always a byte-prefix of the
      campaign's final records.jsonl; reconnects and coordinator
      restarts are survived by resuming from the last acked cursor.
        -cursor tok  resume a previous watch exactly after its last
                     acked byte (printed on interrupt)
        -wait d      long-poll window per request (default 5s)
        -max n       chunk byte cap per poll (0 = server default)

All subcommands stop gracefully on SIGINT/SIGTERM: run and resume
checkpoint to -jsonl and exit 130 (resume continues them), work finishes
its current instance and releases its lease, serve shuts the listener
down with the manifest intact, watch prints the resume cursor for the
next watch to continue from.

Run "ncghunt grid" to see the available samplers and variants.
`

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// app wraps the shared CLI scaffolding (internal/cli): Fail/Errorf abort
// with the right exit code from any depth while run stays testable.
type app struct {
	*cli.App
}

func run(args []string, stdout, stderr io.Writer) int {
	return cli.Run("ncghunt", usage, stdout, stderr, func(ca *cli.App) {
		(&app{ca}).main(args)
	})
}

func (a *app) main(args []string) {
	if len(args) < 1 {
		a.Fail("no subcommand")
	}
	switch args[0] {
	case "grid":
		a.cmdGrid(args[1:])
	case "run":
		a.cmdRun(args[1:], false)
	case "resume":
		a.cmdRun(args[1:], true)
	case "serve":
		a.cmdServe(args[1:])
	case "work":
		a.cmdWork(args[1:])
	case "watch":
		a.cmdWatch(args[1:])
	case "-h", "-help", "--help", "help":
		fmt.Fprint(a.Stdout, usage)
	default:
		a.Fail("unknown subcommand %q", args[0])
	}
}

func (a *app) cmdGrid(args []string) {
	if len(args) > 0 {
		a.Fail("grid takes no arguments")
	}
	tw := tabwriter.NewWriter(a.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SAMPLER\tNOTES")
	for _, smp := range campaign.BuiltinSamplers() {
		notes := "sized by -n"
		switch {
		case smp.Name == "cycle-pendant":
			notes = "self-sizing (cycle of length 6..13 with pendant paths)"
		case smp.CheckN != nil:
			notes = "sized by -n (validated)"
		}
		fmt.Fprintf(tw, "%s\t%s\n", smp.Name, notes)
	}
	fmt.Fprintln(tw, "\nVARIANT\tGAME\tSEARCH")
	for _, v := range append(campaign.BuiltinVariants(), campaign.RoundVariants()...) {
		search := "state-graph exploration"
		if v.Schedule != nil {
			search = v.Schedule.Name() + " trajectory"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", v.Name, v.New(10).Name(), search)
	}
	tw.Flush()
}

// campaignFlags holds the grid-definition flags shared by run, resume,
// serve and work: everything that shapes the campaign itself (and hence
// its fingerprint), as opposed to how it is executed.
type campaignFlags struct {
	samplers, variants, schedule, oracle string
	backend                              string
	n, instances, maxStates              int
	seed                                 int64
}

func (cf *campaignFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&cf.samplers, "samplers", "", "comma-separated sampler names (default: all)")
	fs.StringVar(&cf.variants, "variants", "", "comma-separated variant names (default: all built-ins)")
	fs.StringVar(&cf.schedule, "schedule", "", "override every selected variant's search schedule")
	fs.StringVar(&cf.oracle, "oracle", "auto", "distance oracle of round-trajectory variants")
	fs.StringVar(&cf.backend, "backend", "auto", "adjacency backend of round-trajectory variants")
	fs.IntVar(&cf.n, "n", 10, "agent count for sized samplers")
	fs.IntVar(&cf.instances, "instances", 100, "instances per grid cell")
	fs.Int64Var(&cf.seed, "seed", 1, "base seed")
	fs.IntVar(&cf.maxStates, "max-states", 20000, "per-instance state cap")
}

// build validates the flags and assembles the campaign. Every flag
// combination error is a usage error, never a worker panic.
func (cf *campaignFlags) build(a *app) campaign.Campaign {
	switch {
	case cf.instances <= 0:
		a.Fail("-instances must be positive, got %d", cf.instances)
	case cf.maxStates <= 0:
		a.Fail("-max-states must be positive, got %d", cf.maxStates)
	case cf.n < 1:
		a.Fail("-n must be >= 1, got %d", cf.n)
	}
	oracle, err := dynamics.ParseOracleSpec(cf.oracle)
	if err != nil {
		a.Fail("%v", err)
	}
	backend, err := dynamics.ParseBackendSpec(cf.backend)
	if err != nil {
		a.Fail("%v", err)
	}
	return campaign.Campaign{
		Name:      "ncghunt",
		Samplers:  a.pickSamplers(cf.samplers, cf.n),
		Variants:  a.pickVariants(cf.variants, cf.schedule, oracle, backend),
		N:         cf.n,
		Instances: cf.instances,
		Seed:      cf.seed,
		MaxStates: cf.maxStates,
	}
}

func (a *app) cmdRun(args []string, resume bool) {
	sub := "run"
	if resume {
		sub = "resume"
	}
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	fs.Usage = func() { fmt.Fprint(a.Stderr, usage) }
	var cf campaignFlags
	cf.register(fs)
	maxHits := fs.Int("max-hits", 0, "stop after this many hits (0 = all)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	shard := fs.Int("shard", 0, "instances per shard (0 = auto)")
	jsonlPath := fs.String("jsonl", "", "stream per-instance records to this JSONL file")
	progress := fs.Bool("progress", false, "print per-shard progress to stderr")
	if err := fs.Parse(args); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected arguments %v", fs.Args())
	}
	switch {
	case *maxHits < 0:
		a.Fail("-max-hits must be >= 0, got %d", *maxHits)
	case *workers < 0:
		a.Fail("-workers must be >= 0, got %d", *workers)
	case *shard < 0:
		a.Fail("-shard must be >= 0, got %d", *shard)
	case resume && *jsonlPath == "":
		a.Fail("resume needs -jsonl")
	}
	c := cf.build(a)

	ctx, stop := cli.SignalContext(a.Stderr, "ncghunt")
	defer stop()
	opt := campaign.Options{
		MaxHits:   *maxHits,
		Workers:   *workers,
		ShardSize: *shard,
		Context:   ctx,
	}
	if *progress {
		opt.Progress = func(p campaign.Progress) {
			fmt.Fprintf(a.Stderr, "  %s/%s [%d,%d): %d searched, %d hits (%d/%d shards)\n",
				p.Sampler, p.Variant, p.Lo, p.Hi, p.Searched, p.Hits, p.Done, p.Shards)
		}
	}

	var sinks []campaign.Sink
	if *jsonlPath != "" {
		if resume {
			cp, sink, err := campaign.ResumeJSONL(*jsonlPath)
			if err != nil {
				a.Errorf("%v", err)
			}
			fmt.Fprintf(a.Stderr, "ncghunt: resuming, %d instances recovered from %s\n", cp.Len(), *jsonlPath)
			opt.Done = cp
			sinks = append(sinks, sink)
		} else {
			sink, err := campaign.CreateJSONL(*jsonlPath)
			if err != nil {
				a.Errorf("%v", err)
			}
			sinks = append(sinks, sink)
		}
	}
	var hits []campaign.Record
	sinks = append(sinks, campaign.FuncSink(func(rec campaign.Record) error {
		if rec.Hit {
			hits = append(hits, rec)
		}
		return nil
	}))

	sum, err := campaign.Run(c, opt, sinks...)
	if errors.Is(err, context.Canceled) {
		// Interrupted at an instance boundary: the sinks flushed a clean
		// resumable prefix before Run returned.
		if *jsonlPath != "" {
			fmt.Fprintf(a.Stderr, "ncghunt: interrupted; continue with: ncghunt resume -jsonl %s [same flags]\n", *jsonlPath)
		} else {
			fmt.Fprintln(a.Stderr, "ncghunt: interrupted (rerun with -jsonl to make runs resumable)")
		}
		cli.Exit(cli.SignalExitCode)
	}
	if err != nil {
		a.Errorf("%v", err)
	}

	tw := tabwriter.NewWriter(a.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "sampler\tvariant\tinstances\tsearched\tresamples\thits\tavg states")
	for _, cl := range sum.Cells {
		avg := 0.0
		if cl.Searched > 0 {
			avg = float64(cl.SumStates) / float64(cl.Searched)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.0f\n",
			cl.Sampler, cl.Variant, cl.Instances, cl.Searched, cl.Resamples, cl.Hits, avg)
	}
	tw.Flush()
	fmt.Fprintf(a.Stdout, "\n%d instances searched, %d hits\n", sum.Searched, sum.Hits)
	for _, rec := range hits {
		fc, err := rec.DecodeCycle()
		if err != nil {
			a.Errorf("hit %s/%s #%d: %v", rec.Sampler, rec.Variant, rec.Instance, err)
		}
		fmt.Fprintf(a.Stdout, "HIT %s/%s instance %d (n=%d, %d states): %d-move best response cycle\n",
			rec.Sampler, rec.Variant, rec.Instance, rec.N, rec.States, len(fc.Moves))
		for _, m := range fc.Moves {
			fmt.Fprintf(a.Stdout, "  %v\n", m)
		}
	}
}

// cmdServe runs the lease-based campaign coordinator: the fault-tolerant
// service form of run, for campaigns spanning many worker processes or
// machines. The campaign is hosted in a Registry so the process carries
// the full service surface — /healthz, /readyz, /v1/campaigns and the
// campaign-scoped /c/<name>/v1/... routes — while the flat /v1/...
// routes keep pointing at the (single) hosted campaign.
func (a *app) cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	fs.Usage = func() { fmt.Fprint(a.Stderr, usage) }
	var cf campaignFlags
	cf.register(fs)
	dir := fs.String("dir", "", "coordinator state directory (manifest, shard files, merged records)")
	addr := fs.String("addr", "127.0.0.1:8777", "listen address")
	shard := fs.Int("shard", 0, "instances per shard (0 = 64)")
	leaseTTL := fs.Duration("lease-ttl", 0, "heartbeat-renewed lease expiry (0 = 30s)")
	name := fs.String("name", "hunt", "hosted campaign name (routes under /c/<name>/)")
	streamClients := fs.Int("stream-clients", 0, "max concurrent /v1/stream clients (0 = 64)")
	logEvery := fs.Duration("log-every", 30*time.Second, "period of status lines with autoscaling hints (0 = off)")
	if err := fs.Parse(args); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected arguments %v", fs.Args())
	}
	if *dir == "" {
		a.Fail("serve needs -dir")
	}
	if *shard < 0 {
		a.Fail("-shard must be >= 0, got %d", *shard)
	}
	if *streamClients < 0 {
		a.Fail("-stream-clients must be >= 0, got %d", *streamClients)
	}
	if *logEvery < 0 {
		a.Fail("-log-every must be >= 0, got %v", *logEvery)
	}
	// Install the signal seam before anything is announced on stdout so a
	// SIGINT arriving the instant the service is observable is already a
	// graceful stop, never a mid-write kill.
	ctx, stop := cli.SignalContext(a.Stderr, "ncghunt")
	defer stop()

	logf := func(format string, args ...any) {
		fmt.Fprintf(a.Stderr, format+"\n", args...)
	}
	reg := coord.NewRegistry(coord.RegistryConfig{Logf: logf})
	defer reg.Close()
	c, err := reg.Add(*name, coord.Config{
		Campaign:         cf.build(a),
		Dir:              *dir,
		ShardSize:        *shard,
		LeaseTTL:         *leaseTTL,
		MaxStreamClients: *streamClients,
		Logf:             logf,
	})
	if err != nil {
		a.Errorf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		a.Errorf("%v", err)
	}
	st := c.Status()
	fmt.Fprintf(a.Stdout, "ncghunt: serving campaign %s as %q on %s (%d shards, %d done)\n",
		st.Fingerprint, *name, ln.Addr(), st.Shards, st.Done)
	srv := &http.Server{Handler: reg.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Periodic status lines double as autoscaling hints: queue depth and
	// want-workers tell an operator (or a wrapper script) how many ncghunt
	// work processes the backlog currently justifies.
	cli.Periodically(ctx, *logEvery, func() {
		st := c.Status()
		fmt.Fprintf(a.Stderr,
			"ncghunt: status queue=%d done=%d/%d workers=%d want=%d stream: %d clients, %d bytes, %d evicted, %d refused\n",
			st.QueueDepth, st.Done, st.Shards, st.ActiveWorkers, st.WantWorkers,
			st.StreamClients, st.StreamBytes, st.StreamEvicted, st.StreamRefused)
	})

	interrupted := false
	select {
	case <-c.Done():
		fmt.Fprintf(a.Stdout, "ncghunt: campaign complete; merged records in %s\n", c.ResultPath())
		// Linger briefly so workers waiting in their (<=1s) lease-poll
		// loop learn "done" from the protocol and exit cleanly instead
		// of burning their retry budget against a vanished coordinator.
		select {
		case <-time.After(2 * time.Second):
		case <-ctx.Done():
		}
	case <-ctx.Done():
		// The manifest already holds every completed shard; restarting
		// serve on the same -dir resumes exactly here.
		fmt.Fprintf(a.Stderr, "ncghunt: coordinator stopping; resume with: ncghunt serve -dir %s [same flags]\n", *dir)
		interrupted = true
	case err := <-serveErr:
		a.Errorf("%v", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if interrupted {
		cli.Exit(cli.SignalExitCode)
	}
}

// cmdWork runs one worker process against a coordinator.
func (a *app) cmdWork(args []string) {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	fs.Usage = func() { fmt.Fprint(a.Stderr, usage) }
	var cf campaignFlags
	cf.register(fs)
	url := fs.String("url", "", "coordinator base URL (http://host:port)")
	name := fs.String("name", "", "worker name in leases and logs (default: host:pid)")
	if err := fs.Parse(args); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected arguments %v", fs.Args())
	}
	if *url == "" {
		a.Fail("work needs -url")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	ctx, stop := cli.SignalContext(a.Stderr, "ncghunt")
	defer stop()
	stats, err := coord.RunWorker(ctx, coord.WorkerConfig{
		URL:      *url,
		Campaign: cf.build(a),
		Name:     *name,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(a.Stderr, format+"\n", args...)
		},
	})
	fmt.Fprintf(a.Stdout, "ncghunt: worker %s done: %d shards, %d records, %d retries\n",
		*name, stats.Shards, stats.Records, stats.Retries)
	if errors.Is(err, context.Canceled) {
		// Graceful drain: the current instance finished and the lease was
		// released before RunWorker returned.
		cli.Exit(cli.SignalExitCode)
	}
	if err != nil {
		a.Errorf("%v", err)
	}
}

// cmdWatch follows a coordinator's live result stream, writing record
// lines to stdout exactly as they commit. The output is always a
// byte-prefix of the campaign's final records.jsonl, so piping it into a
// file yields a valid partial JSONL at any interruption point.
func (a *app) cmdWatch(args []string) {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	fs.Usage = func() { fmt.Fprint(a.Stderr, usage) }
	url := fs.String("url", "", "coordinator base URL (http://host:port)")
	cursor := fs.String("cursor", "", "resume a previous watch after its last acked byte")
	wait := fs.Duration("wait", 5*time.Second, "long-poll window per request")
	max := fs.Int("max", 0, "chunk byte cap per poll (0 = server default)")
	if err := fs.Parse(args); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected arguments %v", fs.Args())
	}
	if *url == "" {
		a.Fail("watch needs -url")
	}
	if *wait <= 0 {
		a.Fail("-wait must be positive, got %v", *wait)
	}
	if *max < 0 {
		a.Fail("-max must be >= 0, got %d", *max)
	}
	ctx, stop := cli.SignalContext(a.Stderr, "ncghunt")
	defer stop()
	stats, err := coord.RunWatch(ctx, coord.WatchConfig{
		URL:        *url,
		Cursor:     *cursor,
		Wait:       *wait,
		ChunkBytes: *max,
		OnChunk: func(chunk []byte, _ string, _ bool) error {
			_, werr := a.Stdout.Write(chunk)
			return werr
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(a.Stderr, format+"\n", args...)
		},
	})
	if errors.Is(err, context.Canceled) {
		// Interrupted between chunks: everything written to stdout is
		// acked, so the printed cursor resumes exactly after it.
		if stats.Cursor != "" {
			fmt.Fprintf(a.Stderr, "ncghunt: watch interrupted; continue with: ncghunt watch -url %s -cursor %s\n",
				*url, stats.Cursor)
		}
		cli.Exit(cli.SignalExitCode)
	}
	if err != nil {
		a.Errorf("%v", err)
	}
	fmt.Fprintf(a.Stderr, "ncghunt: watch complete: %d bytes in %d polls (%d retries, %d reconnects)\n",
		stats.Bytes, stats.Polls, stats.Retries, stats.Reconnects)
}

// pickSamplers resolves the -samplers list (empty: all built-ins) and
// validates each against the agent count.
func (a *app) pickSamplers(list string, n int) []campaign.Sampler {
	var out []campaign.Sampler
	if list == "" {
		out = campaign.BuiltinSamplers()
	} else {
		for _, name := range strings.Split(list, ",") {
			smp, ok := campaign.SamplerByName(strings.TrimSpace(name))
			if !ok {
				a.Fail("unknown sampler %q; see ncghunt grid", strings.TrimSpace(name))
			}
			out = append(out, smp)
		}
	}
	for _, smp := range out {
		if smp.CheckN != nil {
			if err := smp.CheckN(n); err != nil {
				a.Fail("sampler %s: %v", smp.Name, err)
			}
		}
	}
	return out
}

// pickVariants resolves the -variants list (empty: all built-ins) and
// applies the -schedule override: "sequential" forces the exhaustive
// state-graph search, a rounds name hunts each variant's played round
// trajectory instead. The oracle and backend specs apply to every
// round-trajectory variant (the exhaustive explorer always runs exact on
// the dense backend).
func (a *app) pickVariants(list, schedule string, oracle dynamics.OracleSpec, backend dynamics.BackendSpec) []campaign.Variant {
	var out []campaign.Variant
	if list == "" {
		out = campaign.BuiltinVariants()
	} else {
		for _, name := range strings.Split(list, ",") {
			v, ok := campaign.VariantByName(strings.TrimSpace(name))
			if !ok {
				a.Fail("unknown variant %q; see ncghunt grid", strings.TrimSpace(name))
			}
			out = append(out, v)
		}
	}
	if schedule != "" {
		s, ok := dynamics.ScheduleByName(schedule)
		if !ok {
			a.Fail("unknown schedule %q (schedules: %s)", schedule, strings.Join(dynamics.ScheduleNames(), ", "))
		}
		rd, rounds := s.(dynamics.Rounds)
		for i := range out {
			if rounds {
				out[i].Schedule = rd
			} else {
				out[i].Schedule = nil
			}
		}
	}
	for i := range out {
		out[i].Oracle = oracle
		out[i].Backend = backend
	}
	return out
}
