// Command ncghunt runs sharded counterexample-hunt campaigns: a grid of
// instance samplers crossed with game variants, every (sampler, variant,
// instance) searched for a best-response cycle on the interned state-store
// explorer. Records stream to JSONL (hits carry the canonical start
// network and the cycle trace) and an interrupted campaign resumes from
// the partial file, re-searching only the missing instances. Results are
// bit-identical at any worker count.
//
// Usage:
//
//	ncghunt grid
//	ncghunt run [-samplers a,b] [-variants x,y] [-n n] [-instances k]
//	            [-seed s] [-max-states m] [-max-hits h]
//	            [-workers w] [-shard s] [-jsonl path] [-progress]
//	ncghunt resume -jsonl path [same flags as run]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"ncg/internal/campaign"
	"ncg/internal/cli"
	"ncg/internal/dynamics"
)

const usage = `ncghunt — sharded counterexample-hunt campaigns

Usage:
  ncghunt grid
      List the built-in instance samplers and game variants (the grid
      axes of a campaign).

  ncghunt run [flags]
      Hunt best-response cycles over the samplers x variants grid:
        -samplers a,b  comma-separated sampler names (default: all)
        -variants x,y  comma-separated variant names (default: all
                       built-ins; rounds-* variants hunt played round
                       trajectories instead of the state graph)
        -schedule s    override every selected variant's search schedule
                       (sequential, rounds, rounds-shuffled, rounds-skip,
                       rounds-reject)
        -oracle o      distance oracle of round-trajectory variants (auto,
                       exact, landmark, landmark:k; landmark records are
                       bit-identical to exact)
        -n n           agent count for sized samplers (default 10)
        -instances k   instances per grid cell (default 100)
        -seed s        base seed (every instance derives its own stream)
        -max-states m  per-instance state cap (default 20000)
        -max-hits h    stop after h hits (0 = search every instance)
        -workers w     worker goroutines (0 = GOMAXPROCS; never changes
                       results)
        -shard s       instances per shard (0 = auto; never changes
                       results)
        -jsonl path    stream per-instance records to this JSONL file
        -progress      print per-shard progress to stderr

  ncghunt resume -jsonl path [flags]
      Continue an interrupted campaign from a partial JSONL file,
      re-searching only the instances the file does not fully record.
      Give the same flags as the original run.

Run "ncghunt grid" to see the available samplers and variants.
`

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// app wraps the shared CLI scaffolding (internal/cli): Fail/Errorf abort
// with the right exit code from any depth while run stays testable.
type app struct {
	*cli.App
}

func run(args []string, stdout, stderr io.Writer) int {
	return cli.Run("ncghunt", usage, stdout, stderr, func(ca *cli.App) {
		(&app{ca}).main(args)
	})
}

func (a *app) main(args []string) {
	if len(args) < 1 {
		a.Fail("no subcommand")
	}
	switch args[0] {
	case "grid":
		a.cmdGrid(args[1:])
	case "run":
		a.cmdRun(args[1:], false)
	case "resume":
		a.cmdRun(args[1:], true)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(a.Stdout, usage)
	default:
		a.Fail("unknown subcommand %q", args[0])
	}
}

func (a *app) cmdGrid(args []string) {
	if len(args) > 0 {
		a.Fail("grid takes no arguments")
	}
	tw := tabwriter.NewWriter(a.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SAMPLER\tNOTES")
	for _, smp := range campaign.BuiltinSamplers() {
		notes := "sized by -n"
		switch {
		case smp.Name == "cycle-pendant":
			notes = "self-sizing (cycle of length 6..13 with pendant paths)"
		case smp.CheckN != nil:
			notes = "sized by -n (validated)"
		}
		fmt.Fprintf(tw, "%s\t%s\n", smp.Name, notes)
	}
	fmt.Fprintln(tw, "\nVARIANT\tGAME\tSEARCH")
	for _, v := range append(campaign.BuiltinVariants(), campaign.RoundVariants()...) {
		search := "state-graph exploration"
		if v.Schedule != nil {
			search = v.Schedule.Name() + " trajectory"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", v.Name, v.New(10).Name(), search)
	}
	tw.Flush()
}

func (a *app) cmdRun(args []string, resume bool) {
	sub := "run"
	if resume {
		sub = "resume"
	}
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	fs.Usage = func() { fmt.Fprint(a.Stderr, usage) }
	samplers := fs.String("samplers", "", "comma-separated sampler names (default: all)")
	variants := fs.String("variants", "", "comma-separated variant names (default: all built-ins)")
	schedule := fs.String("schedule", "", "override every selected variant's search schedule")
	oracleName := fs.String("oracle", "auto", "distance oracle of round-trajectory variants")
	n := fs.Int("n", 10, "agent count for sized samplers")
	instances := fs.Int("instances", 100, "instances per grid cell")
	seed := fs.Int64("seed", 1, "base seed")
	maxStates := fs.Int("max-states", 20000, "per-instance state cap")
	maxHits := fs.Int("max-hits", 0, "stop after this many hits (0 = all)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	shard := fs.Int("shard", 0, "instances per shard (0 = auto)")
	jsonlPath := fs.String("jsonl", "", "stream per-instance records to this JSONL file")
	progress := fs.Bool("progress", false, "print per-shard progress to stderr")
	if err := fs.Parse(args); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected arguments %v", fs.Args())
	}

	// Upfront validation: every flag combination error is a usage error,
	// never a worker panic.
	switch {
	case *instances <= 0:
		a.Fail("-instances must be positive, got %d", *instances)
	case *maxStates <= 0:
		a.Fail("-max-states must be positive, got %d", *maxStates)
	case *maxHits < 0:
		a.Fail("-max-hits must be >= 0, got %d", *maxHits)
	case *workers < 0:
		a.Fail("-workers must be >= 0, got %d", *workers)
	case *shard < 0:
		a.Fail("-shard must be >= 0, got %d", *shard)
	case *n < 1:
		a.Fail("-n must be >= 1, got %d", *n)
	case resume && *jsonlPath == "":
		a.Fail("resume needs -jsonl")
	}
	oracle, err := dynamics.ParseOracleSpec(*oracleName)
	if err != nil {
		a.Fail("%v", err)
	}
	c := campaign.Campaign{
		Name:      "ncghunt",
		Samplers:  a.pickSamplers(*samplers, *n),
		Variants:  a.pickVariants(*variants, *schedule, oracle),
		N:         *n,
		Instances: *instances,
		Seed:      *seed,
		MaxStates: *maxStates,
	}

	opt := campaign.Options{
		MaxHits:   *maxHits,
		Workers:   *workers,
		ShardSize: *shard,
	}
	if *progress {
		opt.Progress = func(p campaign.Progress) {
			fmt.Fprintf(a.Stderr, "  %s/%s [%d,%d): %d searched, %d hits (%d/%d shards)\n",
				p.Sampler, p.Variant, p.Lo, p.Hi, p.Searched, p.Hits, p.Done, p.Shards)
		}
	}

	var sinks []campaign.Sink
	if *jsonlPath != "" {
		if resume {
			cp, sink, err := campaign.ResumeJSONL(*jsonlPath)
			if err != nil {
				a.Errorf("%v", err)
			}
			fmt.Fprintf(a.Stderr, "ncghunt: resuming, %d instances recovered from %s\n", cp.Len(), *jsonlPath)
			opt.Done = cp
			sinks = append(sinks, sink)
		} else {
			sink, err := campaign.CreateJSONL(*jsonlPath)
			if err != nil {
				a.Errorf("%v", err)
			}
			sinks = append(sinks, sink)
		}
	}
	var hits []campaign.Record
	sinks = append(sinks, campaign.FuncSink(func(rec campaign.Record) error {
		if rec.Hit {
			hits = append(hits, rec)
		}
		return nil
	}))

	sum, err := campaign.Run(c, opt, sinks...)
	if err != nil {
		a.Errorf("%v", err)
	}

	tw := tabwriter.NewWriter(a.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "sampler\tvariant\tinstances\tsearched\tresamples\thits\tavg states")
	for _, cl := range sum.Cells {
		avg := 0.0
		if cl.Searched > 0 {
			avg = float64(cl.SumStates) / float64(cl.Searched)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.0f\n",
			cl.Sampler, cl.Variant, cl.Instances, cl.Searched, cl.Resamples, cl.Hits, avg)
	}
	tw.Flush()
	fmt.Fprintf(a.Stdout, "\n%d instances searched, %d hits\n", sum.Searched, sum.Hits)
	for _, rec := range hits {
		fc, err := rec.DecodeCycle()
		if err != nil {
			a.Errorf("hit %s/%s #%d: %v", rec.Sampler, rec.Variant, rec.Instance, err)
		}
		fmt.Fprintf(a.Stdout, "HIT %s/%s instance %d (n=%d, %d states): %d-move best response cycle\n",
			rec.Sampler, rec.Variant, rec.Instance, rec.N, rec.States, len(fc.Moves))
		for _, m := range fc.Moves {
			fmt.Fprintf(a.Stdout, "  %v\n", m)
		}
	}
}

// pickSamplers resolves the -samplers list (empty: all built-ins) and
// validates each against the agent count.
func (a *app) pickSamplers(list string, n int) []campaign.Sampler {
	var out []campaign.Sampler
	if list == "" {
		out = campaign.BuiltinSamplers()
	} else {
		for _, name := range strings.Split(list, ",") {
			smp, ok := campaign.SamplerByName(strings.TrimSpace(name))
			if !ok {
				a.Fail("unknown sampler %q; see ncghunt grid", strings.TrimSpace(name))
			}
			out = append(out, smp)
		}
	}
	for _, smp := range out {
		if smp.CheckN != nil {
			if err := smp.CheckN(n); err != nil {
				a.Fail("sampler %s: %v", smp.Name, err)
			}
		}
	}
	return out
}

// pickVariants resolves the -variants list (empty: all built-ins) and
// applies the -schedule override: "sequential" forces the exhaustive
// state-graph search, a rounds name hunts each variant's played round
// trajectory instead. The oracle spec applies to every round-trajectory
// variant (the exhaustive explorer always runs exact).
func (a *app) pickVariants(list, schedule string, oracle dynamics.OracleSpec) []campaign.Variant {
	var out []campaign.Variant
	if list == "" {
		out = campaign.BuiltinVariants()
	} else {
		for _, name := range strings.Split(list, ",") {
			v, ok := campaign.VariantByName(strings.TrimSpace(name))
			if !ok {
				a.Fail("unknown variant %q; see ncghunt grid", strings.TrimSpace(name))
			}
			out = append(out, v)
		}
	}
	if schedule != "" {
		s, ok := dynamics.ScheduleByName(schedule)
		if !ok {
			a.Fail("unknown schedule %q (schedules: %s)", schedule, strings.Join(dynamics.ScheduleNames(), ", "))
		}
		rd, rounds := s.(dynamics.Rounds)
		for i := range out {
			if rounds {
				out[i].Schedule = rd
			} else {
				out[i].Schedule = nil
			}
		}
	}
	for i := range out {
		out[i].Oracle = oracle
	}
	return out
}
