package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown game", []string{"-game", "nope"}},
		{"unknown policy", []string{"-policy", "nope"}},
		{"unknown init", []string{"-init", "nope"}},
		{"bad n", []string{"-n", "0"}},
		{"bad alpha denominator", []string{"-alpha-den", "0"}},
		{"infeasible budget", []string{"-init", "budget-k", "-n", "6", "-k", "3"}},
		{"stray argument", []string{"stray"}},
		{"unknown flag", []string{"-frobnicate"}},
		{"unknown schedule", []string{"-schedule", "simultaneous"}},
	} {
		if code, _, _ := runCmd(tc.args...); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
	}
}

// TestRoundTrace: a round schedule traces simultaneous moves and reports
// the round summary line; an explicit -schedule sequential matches the
// default trace exactly.
func TestRoundTrace(t *testing.T) {
	code, out, errOut := runCmd("-n", "7", "-schedule", "rounds")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "rounds=") || !strings.Contains(out, "skipped=") {
		t.Errorf("round trace missing its summary line:\n%s", out)
	}
	_, def, _ := runCmd("-n", "7")
	_, seq, _ := runCmd("-n", "7", "-schedule", "sequential")
	if def != seq {
		t.Errorf("-schedule sequential diverged from the default trace")
	}
}

// TestFigure1Trace: the default invocation reproduces the Figure 1 setting
// and converges to a star or double star.
func TestFigure1Trace(t *testing.T) {
	code, out, errOut := runCmd("-n", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "converged=true") {
		t.Errorf("trace did not converge:\n%s", out)
	}
	if !strings.Contains(out, "step ") {
		t.Errorf("no steps printed:\n%s", out)
	}
}
