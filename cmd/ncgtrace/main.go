// Command ncgtrace runs a single network creation process and prints every
// move. Without flags it reproduces Figure 1 of the paper: the MAX Swap
// Game on the path P9 under the max cost policy with smallest-index
// tie-breaking, which converges to a star.
//
// Usage:
//
//	ncgtrace [-n 9] [-game max-sg] [-alpha-num 1 -alpha-den 1]
//	         [-policy maxcost] [-init path] [-seed 1] [-backend auto]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ncg/internal/cli"
	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

const usage = `ncgtrace — trace a single network creation process step by step

Usage:
  ncgtrace [-n 9] [-game max-sg] [-alpha-num 1 -alpha-den 1]
           [-policy maxcost-det] [-init path] [-k 1] [-seed 1]
           [-schedule sequential] [-oracle auto]

Games:     sum-sg, max-sg, sum-asg, max-asg, sum-gbg, max-gbg.
Policies:  maxcost, maxcost-det, random.
Schedules: sequential, rounds, rounds-shuffled, rounds-skip, rounds-reject
           (round schedules trace simultaneous moves and detect cycles).
Oracles:   auto, exact, landmark, landmark:k — the distance oracle of the
           swap-game scans; landmark traces are bit-identical to exact.
Backends:  auto, dense, sparse — the adjacency representation (bitset
           matrix or CSR lists); traces are bit-identical either way, and
           auto pairs sparse with landmark-mode runs.
Initial networks: path, cycle, random-tree, budget-k (budget via -k).
`

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// app wraps the shared CLI scaffolding (internal/cli): Fail/Errorf abort
// with the right exit code from any depth while run stays testable.
type app struct {
	*cli.App
}

func run(args []string, stdout, stderr io.Writer) int {
	return cli.Run("ncgtrace", usage, stdout, stderr, func(ca *cli.App) {
		(&app{ca}).main(args)
	})
}

func (a *app) main(args []string) {
	fs := flag.NewFlagSet("ncgtrace", flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	n := fs.Int("n", 9, "number of agents")
	gameName := fs.String("game", "max-sg", "game: sum-sg, max-sg, sum-asg, max-asg, sum-gbg, max-gbg")
	alphaNum := fs.Int64("alpha-num", 1, "edge price numerator (buy games)")
	alphaDen := fs.Int64("alpha-den", 1, "edge price denominator")
	policyName := fs.String("policy", "maxcost-det", "policy: maxcost, maxcost-det, random")
	initName := fs.String("init", "path", "initial network: path, cycle, random-tree, budget-k (k via -k)")
	k := fs.Int("k", 1, "budget for -init budget-k")
	seed := fs.Int64("seed", 1, "seed for random choices")
	scheduleName := fs.String("schedule", "sequential", "activation schedule: sequential or a rounds variant")
	oracleName := fs.String("oracle", "auto", "distance oracle: auto, exact, landmark, landmark:k")
	backendName := fs.String("backend", "auto", "adjacency backend: auto, dense, sparse")
	if err := fs.Parse(args); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected arguments %v", fs.Args())
	}
	if *n < 1 {
		a.Fail("-n must be >= 1, got %d", *n)
	}
	if *alphaDen <= 0 {
		a.Fail("-alpha-den must be positive, got %d", *alphaDen)
	}
	sched, ok := dynamics.ScheduleByName(*scheduleName)
	if !ok {
		a.Fail("unknown schedule %q (schedules: %s)", *scheduleName, strings.Join(dynamics.ScheduleNames(), ", "))
	}
	oracle, err := dynamics.ParseOracleSpec(*oracleName)
	if err != nil {
		a.Fail("%v", err)
	}
	backend, err := dynamics.ParseBackendSpec(*backendName)
	if err != nil {
		a.Fail("%v", err)
	}

	var gm game.Game
	alpha := game.NewAlpha(*alphaNum, *alphaDen)
	switch *gameName {
	case "sum-sg":
		gm = game.NewSwap(game.Sum)
	case "max-sg":
		gm = game.NewSwap(game.Max)
	case "sum-asg":
		gm = game.NewAsymSwap(game.Sum)
	case "max-asg":
		gm = game.NewAsymSwap(game.Max)
	case "sum-gbg":
		gm = game.NewGreedyBuy(game.Sum, alpha)
	case "max-gbg":
		gm = game.NewGreedyBuy(game.Max, alpha)
	default:
		a.Fail("unknown game %q", *gameName)
	}

	var pol dynamics.Policy
	tie := dynamics.TieFirst
	switch *policyName {
	case "maxcost":
		pol = dynamics.MaxCost{}
		tie = dynamics.TieRandom
	case "maxcost-det":
		pol = dynamics.MaxCostDeterministic{}
	case "random":
		pol = dynamics.Random{}
		tie = dynamics.TieRandom
	default:
		a.Fail("unknown policy %q", *policyName)
	}

	var g *graph.Graph
	r := gen.NewRand(*seed)
	switch *initName {
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "random-tree":
		g = gen.RandomTree(*n, r)
	case "budget-k":
		// Validate before the generator's internal-invariant panic.
		if err := gen.ValidateBudget(*n, *k); err != nil {
			a.Fail("%v", err)
		}
		g = gen.BudgetNetwork(*n, *k, r)
	default:
		a.Fail("unknown init %q", *initName)
	}

	// Interrupt seam: the trace stops at the next step boundary (round
	// boundary under a rounds schedule), prints the summary of the prefix
	// it played, and exits 130 — never a mid-line kill.
	ctx, stop := cli.SignalContext(a.Stderr, "ncgtrace")
	defer stop()

	_, rounds := sched.(dynamics.Rounds)
	// The backend choice changes the mutated representation, never the
	// trace: both backends enumerate neighbours in the same order.
	work := backend.Materialize(g, oracle)
	fmt.Fprintf(a.Stdout, "initial: %v\n", work)
	res := dynamics.Run(work, dynamics.Config{
		Game:     gm,
		Policy:   pol,
		Tie:      tie,
		Seed:     *seed,
		Schedule: sched,
		Oracle:   oracle,
		Cancel:   ctx.Done(),
		// Round schedules can oscillate even in sequentially convergent
		// games; detect the repeat instead of tracing to the step bound.
		DetectCycles: rounds,
		OnStep: func(step, mover int, mv game.Move, g graph.Store) {
			// Mid-round states of a simultaneous schedule can be transiently
			// disconnected; print "inf" instead of the sentinel distance.
			d := graph.DiameterOf(g)
			diam := fmt.Sprint(d)
			if d >= graph.Unreachable {
				diam = "inf"
			}
			fmt.Fprintf(a.Stdout, "step %3d: %v   -> diameter %s\n", step, mv, diam)
		},
	})
	fmt.Fprintf(a.Stdout, "final:   %v\n", work)
	fmt.Fprintf(a.Stdout, "steps=%d converged=%v star=%v double-star=%v\n",
		res.Steps, res.Converged, graph.IsStarOf(work), graph.IsDoubleStarOf(work))
	if rounds {
		fmt.Fprintf(a.Stdout, "rounds=%d skipped=%d cycled=%v cycle-len=%d\n",
			res.Rounds, res.Skipped, res.Cycled, res.CycleLen)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(a.Stderr, "ncgtrace: interrupted; the trace above is the played prefix")
		cli.Exit(cli.SignalExitCode)
	}
}
