// Command ncgtrace runs a single network creation process and prints every
// move. Without flags it reproduces Figure 1 of the paper: the MAX Swap
// Game on the path P9 under the max cost policy with smallest-index
// tie-breaking, which converges to a star.
//
// Usage:
//
//	ncgtrace [-n 9] [-game max-sg] [-alpha-num 1 -alpha-den 1]
//	         [-policy maxcost] [-init path] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

func main() {
	n := flag.Int("n", 9, "number of agents")
	gameName := flag.String("game", "max-sg", "game: sum-sg, max-sg, sum-asg, max-asg, sum-gbg, max-gbg")
	alphaNum := flag.Int64("alpha-num", 1, "edge price numerator (buy games)")
	alphaDen := flag.Int64("alpha-den", 1, "edge price denominator")
	policyName := flag.String("policy", "maxcost-det", "policy: maxcost, maxcost-det, random")
	initName := flag.String("init", "path", "initial network: path, cycle, random-tree, budget-k (k via -k)")
	k := flag.Int("k", 1, "budget for -init budget-k")
	seed := flag.Int64("seed", 1, "seed for random choices")
	flag.Parse()

	var gm game.Game
	alpha := game.NewAlpha(*alphaNum, *alphaDen)
	switch *gameName {
	case "sum-sg":
		gm = game.NewSwap(game.Sum)
	case "max-sg":
		gm = game.NewSwap(game.Max)
	case "sum-asg":
		gm = game.NewAsymSwap(game.Sum)
	case "max-asg":
		gm = game.NewAsymSwap(game.Max)
	case "sum-gbg":
		gm = game.NewGreedyBuy(game.Sum, alpha)
	case "max-gbg":
		gm = game.NewGreedyBuy(game.Max, alpha)
	default:
		fmt.Fprintln(os.Stderr, "ncgtrace: unknown game", *gameName)
		os.Exit(1)
	}

	var pol dynamics.Policy
	tie := dynamics.TieFirst
	switch *policyName {
	case "maxcost":
		pol = dynamics.MaxCost{}
		tie = dynamics.TieRandom
	case "maxcost-det":
		pol = dynamics.MaxCostDeterministic{}
	case "random":
		pol = dynamics.Random{}
		tie = dynamics.TieRandom
	default:
		fmt.Fprintln(os.Stderr, "ncgtrace: unknown policy", *policyName)
		os.Exit(1)
	}

	var g *graph.Graph
	r := gen.NewRand(*seed)
	switch *initName {
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "random-tree":
		g = gen.RandomTree(*n, r)
	case "budget-k":
		g = gen.BudgetNetwork(*n, *k, r)
	default:
		fmt.Fprintln(os.Stderr, "ncgtrace: unknown init", *initName)
		os.Exit(1)
	}

	fmt.Printf("initial: %v\n", g)
	res := dynamics.Run(g, dynamics.Config{
		Game:   gm,
		Policy: pol,
		Tie:    tie,
		Seed:   *seed,
		OnStep: func(step, mover int, mv game.Move, g *graph.Graph) {
			fmt.Printf("step %3d: %v   -> diameter %d\n", step, mv, g.Diameter())
		},
	})
	fmt.Printf("final:   %v\n", g)
	fmt.Printf("steps=%d converged=%v star=%v double-star=%v\n",
		res.Steps, res.Converged, g.IsStar(), g.IsDoubleStar())
}
