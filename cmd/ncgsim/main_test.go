package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"list with args", []string{"list", "extra"}},
		{"run without scenario", []string{"run"}},
		{"unknown scenario", []string{"run", "no-such-scenario"}},
		{"nmin without nmax", []string{"run", "fig1-sg-max-path", "-nmin", "10"}},
		{"bad grid order", []string{"run", "fig1-sg-max-path", "-nmin", "20", "-nmax", "10"}},
		{"sweep without grid", []string{"sweep", "fig7-asg-sum-k2"}},
		{"resume without jsonl", []string{"run", "fig1-sg-max-path", "-resume"}},
		{"fig without number", []string{"fig"}},
		{"fig bad number", []string{"fig", "3"}},
		{"infeasible budget grid", []string{"run", "sg-sum-budget-k3", "-nmin", "4", "-nmax", "4", "-trials", "1"}},
		{"unknown schedule", []string{"run", "sg-sum-budget-k3", "-schedule", "simultaneous"}},
	} {
		if code, _, _ := runCmd(tc.args...); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
	}
}

func TestListSmoke(t *testing.T) {
	code, out, _ := runCmd("list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig7-asg-sum-k2", "bilateral-sum-tree", "POLICY", "SCHEDULE", "rounds-sg-sum-budget-k3"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output misses %q", want)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	code, out, errOut := runCmd("run", "fig1-sg-max-path",
		"-nmin", "8", "-nmax", "8", "-trials", "1", "-workers", "1", "-jsonl", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "fig1-sg-max-path") {
		t.Errorf("summary missing scenario name:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"scenario":"fig1-sg-max-path"`)) {
		t.Errorf("JSONL record missing: %q", data)
	}
}

func TestSweepSmoke(t *testing.T) {
	code, out, errOut := runCmd("sweep", "asg-sum-tree",
		"-nmin", "6", "-nmax", "8", "-nstep", "2", "-trials", "1", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "asg-sum-tree") {
		t.Errorf("summary missing scenario name:\n%s", out)
	}
}

// TestScheduleOverrideSmoke: -schedule switches a sequential scenario to
// round play (and a round scenario runs as registered).
func TestScheduleOverrideSmoke(t *testing.T) {
	code, out, errOut := runCmd("run", "sg-sum-budget-k3",
		"-nmin", "8", "-nmax", "8", "-trials", "2", "-workers", "1", "-schedule", "rounds")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "sg-sum-budget-k3") {
		t.Errorf("summary missing scenario name:\n%s", out)
	}
	code, _, errOut = runCmd("run", "rounds-asg-sum-k2",
		"-nmin", "8", "-nmax", "8", "-trials", "2", "-workers", "1")
	if code != 0 {
		t.Fatalf("round scenario exit %d, stderr: %s", code, errOut)
	}
}

func TestFigSmoke(t *testing.T) {
	code, out, errOut := runCmd("fig", "7",
		"-nmin", "10", "-nmax", "10", "-trials", "1", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "worst max-steps/n") {
		t.Errorf("figure output incomplete:\n%s", out)
	}
}
