// Command ncgsim regenerates the empirical figures of Kawald & Lenzner
// (SPAA'13): convergence-time sweeps of the bounded-budget ASG (Figures 7
// and 8) and of the Greedy Buy Game (Figures 11-14).
//
// Usage:
//
//	ncgsim -fig 7 [-trials 100] [-nmax 60] [-nstep 10] [-seed 1] [-workers 0]
//
// The output is a text table with one column per series (the curves of the
// paper's plots) and one row per agent count, for both the average and the
// maximum number of steps until convergence.
package main

import (
	"flag"
	"fmt"
	"os"

	"ncg/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 7, "figure to regenerate (7, 8, 11, 12, 13, 14)")
	trials := flag.Int("trials", 100, "trials per configuration (paper: 10000/5000)")
	nmin := flag.Int("nmin", 10, "smallest agent count")
	nmax := flag.Int("nmax", 50, "largest agent count")
	nstep := flag.Int("nstep", 10, "agent count step")
	seed := flag.Int64("seed", 1, "base seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	var ns []int
	for n := *nmin; n <= *nmax; n += *nstep {
		ns = append(ns, n)
	}
	opt := experiments.Options{Ns: ns, Trials: *trials, Seed: *seed, Workers: *workers}
	fr, err := experiments.Figure(*fig, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncgsim:", err)
		os.Exit(1)
	}
	fmt.Print(fr.Render())
	fmt.Printf("\nworst max-steps/n over the grid: %.2f\n", fr.Bound())
}
