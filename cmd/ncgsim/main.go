// Command ncgsim runs the simulation workloads of the repository on the
// ensemble execution spine: named scenarios from the registry and the
// empirical figures of Kawald & Lenzner (SPAA'13).
//
// Usage:
//
//	ncgsim list
//	ncgsim run <scenario> [-trials n] [-nmin n] [-nmax n] [-nstep n]
//	                      [-seed s] [-workers w] [-shard s]
//	                      [-jsonl path] [-csv path] [-resume]
//	ncgsim sweep <scenario> -nmin 10 -nmax 100 [-nstep 10] [...run flags]
//	ncgsim fig <number> [-trials n] [-nmin n] [-nmax n] [-nstep n]
//	                    [-seed s] [-workers w]
//
// "list" prints the registry. "run" executes a scenario on its default
// grid (or an overridden one), streaming per-trial records to optional
// JSONL/CSV sinks and printing the summary table; -resume continues an
// interrupted run from a partial -jsonl file, re-running only the missing
// trials. "sweep" is "run" with a mandatory explicit n-grid. "fig"
// regenerates an empirical figure (7, 8, 11-14) as the text tables of the
// paper's plots.
//
// All runs are deterministic: records and tables depend only on the seed,
// never on worker count or shard size.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"

	"ncg/internal/cli"
	"ncg/internal/dynamics"
	"ncg/internal/ensemble"
	"ncg/internal/experiments"
)

const usage = `ncgsim — selfish network creation ensembles

Usage:
  ncgsim list
      List the registered scenarios (name, game family, policy, defaults).

  ncgsim run <scenario> [flags]
      Run a scenario. Defaults come from the registry; override with:
        -trials n   trials per agent count
        -nmin/-nmax/-nstep   replace the agent-count grid
        -seed s     base seed (every trial derives its own stream)
        -workers w  worker goroutines (0 = GOMAXPROCS; never changes results)
        -shard s    trials per shard (0 = auto; never changes results)
        -probe-workers w  per-run happiness-probe workers
        -schedule s override the scenario's activation schedule
                    (sequential, rounds, rounds-shuffled, rounds-skip,
                    rounds-reject)
        -oracle o   distance oracle (auto, exact, landmark, landmark:k;
                    landmark records are bit-identical to exact, so this
                    trades memory for wall-clock only)
        -backend b  adjacency backend (auto, dense, sparse; auto pairs
                    sparse with landmark runs, records are bit-identical
                    either way)
        -jsonl path stream per-trial records as JSON lines
        -csv path   stream per-trial records as CSV
        -resume     continue an interrupted run from the -jsonl file
        -cpuprofile path  write a CPU profile of the run (go tool pprof)
        -memprofile path  write a heap profile taken after the run

  ncgsim sweep <scenario> -nmin n -nmax n [flags]
      Run a scenario over an explicit agent-count grid (same flags as run).

  ncgsim fig <number> [flags]
      Regenerate an empirical figure (7, 8, 11, 12, 13, 14) as text
      tables; -trials/-nmin/-nmax/-nstep/-seed/-workers as above.

Run "ncgsim list" to see the available scenarios.
`

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// app wraps the shared CLI scaffolding (internal/cli): Fail/Errorf abort
// with the right exit code from any depth while run stays testable.
type app struct {
	*cli.App
}

func run(args []string, stdout, stderr io.Writer) int {
	return cli.Run("ncgsim", usage, stdout, stderr, func(ca *cli.App) {
		(&app{ca}).main(args)
	})
}

func (a *app) main(args []string) {
	if len(args) < 1 {
		a.Fail("no subcommand")
	}
	switch args[0] {
	case "list":
		a.cmdList(args[1:])
	case "run":
		a.cmdRun(args[1:], false)
	case "sweep":
		a.cmdRun(args[1:], true)
	case "fig":
		a.cmdFig(args[1:])
	case "-h", "-help", "--help", "help":
		fmt.Fprint(a.Stdout, usage)
	default:
		a.Fail("unknown subcommand %q", args[0])
	}
}

func (a *app) cmdList(args []string) {
	if len(args) > 0 {
		a.Fail("list takes no arguments")
	}
	tw := tabwriter.NewWriter(a.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tFAMILY\tPOLICY\tSCHEDULE\tNS\tTRIALS\tDESCRIPTION")
	for _, sc := range ensemble.List() {
		schedule := "sequential"
		if sc.Schedule != nil {
			schedule = sc.Schedule.Name()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%v\t%d\t%s\n",
			sc.Name, sc.Family, sc.Policy, schedule, sc.Ns, sc.Trials, sc.Description)
	}
	tw.Flush()
}

// gridFlags holds the shared grid/seed/worker flags and their validation.
type gridFlags struct {
	trials, nmin, nmax, nstep int
	seed                      int64
	workers, shard, probeWrk  int
	schedule, oracle          string
	backend                   string
}

func (gf *gridFlags) register(fs *flag.FlagSet, withShard bool) {
	fs.IntVar(&gf.trials, "trials", 0, "trials per agent count (0: scenario default)")
	fs.IntVar(&gf.nmin, "nmin", 0, "smallest agent count")
	fs.IntVar(&gf.nmax, "nmax", 0, "largest agent count")
	fs.IntVar(&gf.nstep, "nstep", 10, "agent count step")
	fs.Int64Var(&gf.seed, "seed", 0, "base seed (0: scenario default)")
	fs.IntVar(&gf.workers, "workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	if withShard {
		fs.IntVar(&gf.shard, "shard", 0, "trials per shard (0 = auto)")
		fs.IntVar(&gf.probeWrk, "probe-workers", 0, "per-run happiness-probe workers")
		fs.StringVar(&gf.schedule, "schedule", "", "override the scenario's activation schedule (empty: scenario default)")
		fs.StringVar(&gf.oracle, "oracle", "", "distance oracle: auto, exact, landmark, landmark:k (empty: scenario default)")
		fs.StringVar(&gf.backend, "backend", "", "adjacency backend: auto, dense, sparse (empty: scenario default)")
	}
}

// oracleOverride resolves -oracle; ok is false if the scenario default
// applies.
func (gf *gridFlags) oracleOverride(a *app) (dynamics.OracleSpec, bool) {
	if gf.oracle == "" {
		return dynamics.OracleSpec{}, false
	}
	spec, err := dynamics.ParseOracleSpec(gf.oracle)
	if err != nil {
		a.Fail("%v", err)
	}
	return spec, true
}

// backendOverride resolves -backend; ok is false if the scenario default
// applies.
func (gf *gridFlags) backendOverride(a *app) (dynamics.BackendSpec, bool) {
	if gf.backend == "" {
		return dynamics.BackendAuto, false
	}
	spec, err := dynamics.ParseBackendSpec(gf.backend)
	if err != nil {
		a.Fail("%v", err)
	}
	return spec, true
}

// scheduleOverride resolves -schedule, nil if the scenario default applies.
func (gf *gridFlags) scheduleOverride(a *app) dynamics.Scheduler {
	if gf.schedule == "" {
		return nil
	}
	s, ok := dynamics.ScheduleByName(gf.schedule)
	if !ok {
		a.Fail("unknown schedule %q (schedules: %s)", gf.schedule, strings.Join(dynamics.ScheduleNames(), ", "))
	}
	return s
}

// validate checks the flag combination up front and returns the explicit
// grid, nil if the scenario defaults apply.
func (gf *gridFlags) validate(a *app, gridRequired bool) []int {
	if gf.trials < 0 {
		a.Fail("-trials must be positive, got %d", gf.trials)
	}
	if gf.nstep <= 0 {
		a.Fail("-nstep must be positive, got %d", gf.nstep)
	}
	if (gf.nmin == 0) != (gf.nmax == 0) {
		a.Fail("-nmin and -nmax must be given together")
	}
	if gf.nmin == 0 {
		if gridRequired {
			a.Fail("an explicit grid is required: give -nmin and -nmax")
		}
		return nil
	}
	if gf.nmin < 1 || gf.nmax < gf.nmin {
		a.Fail("need 1 <= nmin <= nmax, got nmin=%d nmax=%d", gf.nmin, gf.nmax)
	}
	var ns []int
	for n := gf.nmin; n <= gf.nmax; n += gf.nstep {
		ns = append(ns, n)
	}
	return ns
}

func (a *app) cmdRun(args []string, gridRequired bool) {
	sub := "run"
	if gridRequired {
		sub = "sweep"
	}
	if len(args) < 1 || len(args[0]) == 0 || args[0][0] == '-' {
		a.Fail("%s needs a scenario name as its first argument", sub)
	}
	name := args[0]
	sc, ok := ensemble.Lookup(name)
	if !ok {
		a.Fail("unknown scenario %q; see ncgsim list", name)
	}
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	fs.Usage = func() { fmt.Fprint(a.Stderr, usage) }
	var gf gridFlags
	gf.register(fs, true)
	jsonlPath := fs.String("jsonl", "", "stream per-trial records to this JSONL file")
	csvPath := fs.String("csv", "", "stream per-trial records to this CSV file")
	resume := fs.Bool("resume", false, "resume from a partial -jsonl file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a post-run heap profile to this file")
	if err := fs.Parse(args[1:]); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected arguments %v", fs.Args())
	}
	ns := gf.validate(a, gridRequired)
	if s := gf.scheduleOverride(a); s != nil {
		sc.Schedule = s
		if _, ok := s.(dynamics.Rounds); ok {
			// Round play can oscillate even where sequential play converges;
			// report the repeat as a cycle instead of running to the bound.
			sc.DetectCycles = true
		}
	}
	if spec, ok := gf.oracleOverride(a); ok {
		sc.Oracle = spec
	}
	if spec, ok := gf.backendOverride(a); ok {
		sc.Backend = spec
	}
	if *resume && *jsonlPath == "" {
		a.Fail("-resume needs -jsonl")
	}
	if *resume && *csvPath != "" {
		// Recovered trials are never re-emitted, so a fresh CSV would
		// silently miss them; regenerate the CSV from the complete JSONL
		// instead.
		a.Fail("-resume cannot rebuild a -csv file (recovered trials are not re-emitted); resume with -jsonl only")
	}
	// An infeasible agent count (explicit or scenario default) is a usage
	// error, caught before any trial runs.
	if sc.CheckN != nil {
		grid := ns
		if grid == nil {
			grid = sc.Ns
		}
		for _, n := range grid {
			if err := sc.CheckN(n); err != nil {
				a.Fail("scenario %s: %v", name, err)
			}
		}
	}

	ctx, stop := cli.SignalContext(a.Stderr, "ncgsim")
	defer stop()
	opt := ensemble.Options{
		Ns:           ns,
		Trials:       gf.trials,
		Seed:         gf.seed,
		Workers:      gf.workers,
		ShardSize:    gf.shard,
		ProbeWorkers: gf.probeWrk,
		Context:      ctx,
	}
	var sinks []ensemble.Sink
	if *jsonlPath != "" {
		if *resume {
			cp, sink, err := ensemble.ResumeJSONL(*jsonlPath)
			if err != nil {
				a.Errorf("%v", err)
			}
			fmt.Fprintf(a.Stderr, "ncgsim: resuming, %d trials recovered from %s\n", cp.Len(), *jsonlPath)
			opt.Done = cp
			sinks = append(sinks, sink)
		} else {
			sink, err := ensemble.CreateJSONL(*jsonlPath)
			if err != nil {
				a.Errorf("%v", err)
			}
			sinks = append(sinks, sink)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			a.Errorf("%v", err)
		}
		sinks = append(sinks, ensemble.NewCSVSink(f))
	}

	stopProfiles := a.startProfiles(*cpuProfile, *memProfile)
	sum, err := ensemble.Execute(sc, opt, sinks...)
	stopProfiles()
	if errors.Is(err, context.Canceled) {
		// Interrupted at a trial boundary: the sinks flushed a clean
		// resumable prefix before Execute returned.
		if *jsonlPath != "" {
			fmt.Fprintf(a.Stderr, "ncgsim: interrupted; continue with: ncgsim %s %s -resume -jsonl %s [same flags]\n", sub, name, *jsonlPath)
		} else {
			fmt.Fprintln(a.Stderr, "ncgsim: interrupted (rerun with -jsonl to make runs resumable)")
		}
		cli.Exit(cli.SignalExitCode)
	}
	if err != nil {
		a.Errorf("%v", err)
	}
	fmt.Fprintf(a.Stdout, "%s (%s, %s policy)\n\n", sc.Name, sc.Family, sc.Policy)
	tw := tabwriter.NewWriter(a.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\ttrials\tconverged\tcycled\tavg steps\tmin\tmax\tdel/swap/buy/multi")
	for _, a := range sum.Aggregates {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f\t%d\t%d\t%d/%d/%d/%d\n",
			a.N, a.Trials, a.Converged, a.Cycled, a.AvgSteps(), a.MinSteps, a.MaxSteps,
			a.TotalMoves[0], a.TotalMoves[1], a.TotalMoves[2], a.TotalMoves[3])
	}
	tw.Flush()
}

// startProfiles begins CPU profiling and returns a function that stops it
// and writes the heap profile, so regressions in run and sweep workloads
// can be diagnosed with go tool pprof instead of editing code. Empty paths
// disable the respective profile.
func (a *app) startProfiles(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			a.Errorf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			a.Errorf("cpuprofile: %v", err)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				a.Errorf("%v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				a.Errorf("memprofile: %v", err)
			}
		}
	}
}

func (a *app) cmdFig(args []string) {
	if len(args) < 1 {
		a.Fail("fig needs a figure number (7, 8, 11, 12, 13, 14)")
	}
	num, err := strconv.Atoi(args[0])
	if err != nil {
		a.Fail("figure number %q is not an integer", args[0])
	}
	switch num {
	case 7, 8, 11, 12, 13, 14:
	default:
		a.Fail("no empirical figure %d: the empirical figures are 7, 8, 11, 12, 13 and 14 (theory figures are verified by cmd/ncgcycle)", num)
	}
	fs := flag.NewFlagSet("fig", flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	fs.Usage = func() { fmt.Fprint(a.Stderr, usage) }
	var gf gridFlags
	gf.register(fs, false)
	if err := fs.Parse(args[1:]); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected arguments %v", fs.Args())
	}
	if gf.trials == 0 {
		gf.trials = 100
	}
	if gf.seed == 0 {
		gf.seed = 1
	}
	// The grid bounds default independently, so `fig 7 -nmax 30` works.
	if gf.nmin == 0 {
		gf.nmin = 10
	}
	if gf.nmax == 0 {
		gf.nmax = 50
	}
	ns := gf.validate(a, true)

	opt := experiments.Options{Ns: ns, Trials: gf.trials, Seed: gf.seed, Workers: gf.workers}
	fr, err := experiments.Figure(num, opt)
	if err != nil {
		a.Errorf("%v", err)
	}
	fmt.Fprint(a.Stdout, fr.Render())
	fmt.Fprintf(a.Stdout, "\nworst max-steps/n over the grid: %.2f\n", fr.Bound())
}
