// Command benchdiff maintains the repository's benchmark trajectory file:
// it parses `go test -bench` output into a compact JSON snapshot and
// compares two snapshots, failing on regressions beyond a tolerance. CI
// uses it to record BENCH_ensemble.json on every push and to gate merges
// against the committed BENCH_baseline.json.
//
// Usage:
//
//	go test -run xxx -bench ... ./... | benchdiff parse -commit $SHA -out BENCH_ensemble.json
//	benchdiff check -baseline BENCH_baseline.json -current BENCH_ensemble.json -tolerance 0.25
//
// "parse" reads benchmark lines ("BenchmarkName-8  20  12345 ns/op  ...")
// from stdin (or -in), averages repeated runs of the same benchmark (the
// -count flag), and writes one JSON object. "check" compares ns/op of
// every benchmark present in both snapshots and exits non-zero if any
// current value exceeds baseline by more than the tolerance fraction;
// benchmarks missing from either side are reported but never fail the
// check, so the recorded set can grow over time.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the trajectory file schema: mean ns/op per benchmark name
// (the "Benchmark" prefix and "-GOMAXPROCS" suffix stripped).
type Snapshot struct {
	Commit     string             `json:"commit,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		fail("usage: benchdiff parse|check [flags]")
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:])
	default:
		fail("unknown subcommand %q (want parse or check)", os.Args[1])
	}
}

func cmdParse(args []string) {
	var commit, in, out string
	parseFlags(args, map[string]*string{"-commit": &commit, "-in": &in, "-out": &out})
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		r = f
	}
	snap, err := Parse(r, commit)
	if err != nil {
		fail("%v", err)
	}
	if len(snap.Benchmarks) == 0 {
		fail("no benchmark lines found in input")
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	b = append(b, '\n')
	if out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fail("%v", err)
	}
}

func cmdCheck(args []string) {
	var baseline, current, tolStr string
	parseFlags(args, map[string]*string{"-baseline": &baseline, "-current": &current, "-tolerance": &tolStr})
	if baseline == "" || current == "" {
		fail("check needs -baseline and -current")
	}
	tol := 0.25
	if tolStr != "" {
		v, err := strconv.ParseFloat(tolStr, 64)
		if err != nil || v < 0 {
			fail("bad -tolerance %q", tolStr)
		}
		tol = v
	}
	base := load(baseline)
	cur := load(current)
	var names []string
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("MISSING  %-28s baseline %.0f ns/op, absent from current\n", name, b)
			continue
		}
		ratio := c / b
		status := "ok"
		if ratio > 1+tol {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-10s %-28s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", status, name, b, c, (ratio-1)*100)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NEW      %-28s %.0f ns/op (not in baseline)\n", name, cur.Benchmarks[name])
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed more than %.0f%%\n", regressions, tol*100)
		os.Exit(1)
	}
}

// parseFlags is a tiny strict flag scanner: every argument must be a known
// "-name value" pair.
func parseFlags(args []string, flags map[string]*string) {
	for i := 0; i < len(args); i += 2 {
		dst, ok := flags[args[i]]
		if !ok || i+1 >= len(args) {
			fail("bad flag %q", args[i])
		}
		*dst = args[i+1]
	}
}

func load(path string) Snapshot {
	b, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		fail("%s: %v", path, err)
	}
	return s
}

// Parse extracts benchmark results from go test output, averaging repeated
// runs of the same benchmark.
func Parse(r io.Reader, commit string) (Snapshot, error) {
	sums := map[string]float64{}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkName-8  20  12345 ns/op  ..."
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		sums[name] += ns
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, err
	}
	snap := Snapshot{Commit: commit, Benchmarks: map[string]float64{}}
	for name, sum := range sums {
		snap.Benchmarks[name] = sum / float64(counts[name])
	}
	return snap, nil
}
