package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseAveragesRepeats(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: ncg
BenchmarkEnsembleSweep-8   	      20	   2000000 ns/op	  110976 B/op	     672 allocs/op
BenchmarkEnsembleSweep-8   	      20	   4000000 ns/op	  110976 B/op	     672 allocs/op
BenchmarkCacheBuild256     	     100	    140000 ns/op
PASS
ok  	ncg	5.5s
`
	snap, err := Parse(strings.NewReader(in), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Commit != "abc" {
		t.Fatalf("commit %q", snap.Commit)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("benchmarks %v", snap.Benchmarks)
	}
	if v := snap.Benchmarks["EnsembleSweep"]; math.Abs(v-3000000) > 1 {
		t.Fatalf("EnsembleSweep = %v, want 3000000 (mean of repeats, -8 suffix stripped)", v)
	}
	if v := snap.Benchmarks["CacheBuild256"]; math.Abs(v-140000) > 1 {
		t.Fatalf("CacheBuild256 = %v", v)
	}
}

func TestParseIgnoresNonBenchmarkLines(t *testing.T) {
	snap, err := Parse(strings.NewReader("BenchmarkBroken-8 20 notanumber ns/op\nrandom text\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Fatalf("expected empty snapshot, got %v", snap.Benchmarks)
	}
}
