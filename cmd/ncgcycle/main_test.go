package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"stray argument", []string{"stray"}},
		{"negative workers", []string{"-workers", "-1"}},
		{"negative max-states", []string{"-max-states", "-5"}},
		{"negative progress", []string{"-progress", "-1s"}},
		{"unknown flag", []string{"-frobnicate"}},
		{"unknown schedule", []string{"-schedule", "simultaneous"}},
	} {
		if code, _, _ := runCmd(tc.args...); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
	}
}

// TestTinyCapSmoke runs the full command with a deliberately tiny state
// cap: every construction still verifies, every exploration aborts at the
// cap, and the command reports the failures with exit code 1. This pins
// the whole pipeline (verification, exploration wiring, reporting) without
// paying for the full default-cap explorations.
func TestTinyCapSmoke(t *testing.T) {
	code, out, _ := runCmd("-max-states", "50", "-workers", "1")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (capped explorations must be reported)", code)
	}
	if !strings.Contains(out, "Fig3 SUM-ASG") || !strings.Contains(out, "ok") {
		t.Errorf("verification section incomplete:\n%s", out)
	}
	if !strings.Contains(out, "state space exceeds 50 states") {
		t.Errorf("capped explorations not reported:\n%s", out)
	}
	if !strings.Contains(out, "verification failures") {
		t.Errorf("failure summary missing:\n%s", out)
	}
}

// TestScheduleSmoke: -schedule adds the figure-start trajectory section
// (again under a tiny cap so the explorations stay cheap; their capped
// failures are expected and keep the exit code at 1).
func TestScheduleSmoke(t *testing.T) {
	code, out, _ := runCmd("-max-states", "50", "-workers", "1", "-schedule", "rounds")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (capped explorations must be reported)", code)
	}
	for _, want := range []string{
		"trajectories under the rounds schedule",
		"Fig 2 MAX-SG",
		"Fig 10 MAX-GBG",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory section misses %q:\n%s", want, out)
		}
	}
}
