// Command ncgcycle verifies the paper's better/best-response-cycle
// constructions (Figures 2, 3, 9, 10, 15, 16 and the host-graph
// corollaries) and reports the non-weak-acyclicity analyses, including the
// documented errata of Corollaries 3.6 and 4.2.
package main

import (
	"fmt"
	"os"

	"ncg/internal/cycles"
	"ncg/internal/game"
)

func main() {
	failures := 0
	verify := func(inst cycles.Instance) {
		err := inst.Verify()
		status := "ok"
		if err != nil {
			status = "FAIL: " + err.Error()
			failures++
		}
		fmt.Printf("%-42s %d steps  %s\n", inst.Name, len(inst.Steps), status)
	}
	for _, inst := range []cycles.Instance{
		cycles.Fig2MaxSG(),
		cycles.Fig3SumASG(),
		cycles.Fig3SumASGHost(),
		cycles.Fig3SumASGHostRepaired(),
		cycles.Fig9SumGBG(),
		cycles.Fig9SumBG(),
		cycles.Fig9SumGBGHost(),
		cycles.Fig9SumBGHost(),
		cycles.Fig10MaxGBG(),
		cycles.Fig10MaxBG(),
		cycles.Fig15SumBilateral(),
		cycles.Fig16MaxBilateral(),
	} {
		verify(inst)
	}

	fmt.Println("\nnon-weak-acyclicity analyses (exhaustive state-space exploration):")
	report := func(name string, res cycles.ReachResult, err error, wantStableFree bool) {
		if err != nil {
			fmt.Printf("%-42s error: %v\n", name, err)
			failures++
			return
		}
		verdict := "stable reachable (weakly acyclic from here)"
		if !res.StableReachable {
			verdict = "no stable state reachable (NOT weakly acyclic)"
		}
		fmt.Printf("%-42s %4d states  %s\n", name, res.States, verdict)
		if wantStableFree == res.StableReachable {
			failures++
		}
	}

	res, err := cycles.ExploreImproving(cycles.Fig15Start(), game.NewBilateral(game.Sum, cycles.Fig15Alpha), 5000)
	report("Thm 5.1 SUM-bilateral", res, err, true)
	res, err = cycles.ExploreBestResponse(cycles.Fig3Start(), game.NewAsymSwap(game.Sum), 5000)
	report("Thm 3.3 SUM-ASG (best responses)", res, err, true)
	res, err = cycles.ExploreImproving(cycles.Fig3Start(), game.NewAsymSwapHost(game.Sum, cycles.Fig3HostGraphRepaired()), 5000)
	report("Cor 3.6 SUM repaired host", res, err, true)
	res, err = cycles.ExploreImproving(cycles.Fig3Start(), game.NewAsymSwapHost(game.Sum, cycles.Fig3HostGraph()), 30000)
	report("Cor 3.6 SUM paper host (erratum)", res, err, false)
	res, err = cycles.ExploreImproving(cycles.Fig9Start(), game.NewGreedyBuyHost(game.Sum, cycles.Fig9Alpha, cycles.Fig9HostGraph()), 30000)
	report("Cor 4.2 SUM paper host (erratum)", res, err, false)
	res, err = cycles.ExploreImproving(cycles.Fig10Start(), game.NewGreedyBuyHost(game.Max, cycles.Fig10Alpha, cycles.Fig10HostGraph()), 30000)
	report("Cor 4.2 MAX paper host (erratum)", res, err, false)

	if failures > 0 {
		fmt.Printf("\n%d verification failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall verifications behave as documented")
}
