// Command ncgcycle verifies the paper's better/best-response-cycle
// constructions (Figures 2, 3, 9, 10, 15, 16 and the host-graph
// corollaries) and reports the non-weak-acyclicity analyses, including the
// documented errata of Corollaries 3.6 and 4.2.
//
// Usage:
//
//	ncgcycle [-workers n] [-max-states n] [-progress d]
//
// The exhaustive state-space explorations run on the interned state store
// as parallel frontier expansions; -workers sets the expansion pool
// (0 = GOMAXPROCS; results never depend on it), -max-states overrides
// every analysis' state cap, and -progress enables periodic progress
// lines on stderr for long explorations.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ncg/internal/cli"
	"ncg/internal/cycles"
	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/graph"
)

const usage = `ncgcycle — best-response cycle verification and reachability analyses

Usage:
  ncgcycle [flags]
      -workers n     frontier-expansion workers (0 = GOMAXPROCS;
                     never changes results)
      -max-states n  override the per-analysis state caps (0 = defaults)
      -progress d    print exploration progress every d (e.g. 2s; 0 = off)
      -schedule s    additionally play the figure start networks under an
                     activation schedule (sequential, rounds,
                     rounds-shuffled, rounds-skip, rounds-reject) and
                     report each trajectory's outcome
      -oracle o      distance oracle of the -schedule trajectories (auto,
                     exact, landmark, landmark:k; landmark is
                     bit-identical to exact)
      -backend b     adjacency backend of the -schedule trajectories
                     (auto, dense, sparse; bit-identical either way)
`

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// app wraps the shared CLI scaffolding (internal/cli): Fail/Errorf abort
// with the right exit code from any depth while run stays testable.
type app struct {
	*cli.App
}

func run(args []string, stdout, stderr io.Writer) int {
	return cli.Run("ncgcycle", usage, stdout, stderr, func(ca *cli.App) {
		(&app{ca}).main(args)
	})
}

func (a *app) main(args []string) {
	fs := flag.NewFlagSet("ncgcycle", flag.ContinueOnError)
	fs.SetOutput(a.Stderr)
	fs.Usage = func() { fmt.Fprint(a.Stderr, usage) }
	workers := fs.Int("workers", 0, "")
	maxStates := fs.Int("max-states", 0, "")
	progress := fs.Duration("progress", 0, "")
	scheduleName := fs.String("schedule", "", "")
	oracleName := fs.String("oracle", "auto", "")
	backendName := fs.String("backend", "auto", "")
	if err := fs.Parse(args); err != nil {
		cli.Exit(2)
	}
	if fs.NArg() > 0 {
		a.Fail("unexpected argument %q", fs.Arg(0))
	}
	if *workers < 0 {
		a.Fail("-workers must be >= 0, got %d", *workers)
	}
	if *maxStates < 0 {
		a.Fail("-max-states must be >= 0, got %d", *maxStates)
	}
	if *progress < 0 {
		a.Fail("-progress must be >= 0, got %v", *progress)
	}
	var sched dynamics.Scheduler
	if *scheduleName != "" {
		s, ok := dynamics.ScheduleByName(*scheduleName)
		if !ok {
			a.Fail("unknown schedule %q (schedules: %s)", *scheduleName, strings.Join(dynamics.ScheduleNames(), ", "))
		}
		sched = s
	}
	oracle, err := dynamics.ParseOracleSpec(*oracleName)
	if err != nil {
		a.Fail("%v", err)
	}
	backend, err := dynamics.ParseBackendSpec(*backendName)
	if err != nil {
		a.Fail("%v", err)
	}

	// Interrupt seam: explorations abort at their next level barrier, the
	// analysis loop stops between analyses, and the command exits 130.
	ctx, stop := cli.SignalContext(a.Stderr, "ncgcycle")
	defer stop()
	interrupted := func() {
		fmt.Fprintln(a.Stderr, "ncgcycle: interrupted")
		cli.Exit(cli.SignalExitCode)
	}

	failures := 0
	verify := func(inst cycles.Instance) {
		err := inst.Verify()
		status := "ok"
		if err != nil {
			status = "FAIL: " + err.Error()
			failures++
		}
		fmt.Fprintf(a.Stdout, "%-42s %d steps  %s\n", inst.Name, len(inst.Steps), status)
	}
	for _, inst := range []cycles.Instance{
		cycles.Fig2MaxSG(),
		cycles.Fig3SumASG(),
		cycles.Fig3SumASGHost(),
		cycles.Fig3SumASGHostRepaired(),
		cycles.Fig9SumGBG(),
		cycles.Fig9SumBG(),
		cycles.Fig9SumGBGHost(),
		cycles.Fig9SumBGHost(),
		cycles.Fig10MaxGBG(),
		cycles.Fig10MaxBG(),
		cycles.Fig15SumBilateral(),
		cycles.Fig16MaxBilateral(),
	} {
		verify(inst)
	}

	fmt.Fprintln(a.Stdout, "\nnon-weak-acyclicity analyses (exhaustive state-space exploration):")
	report := func(name string, res cycles.ReachResult, err error, wantStableFree bool) {
		if err != nil {
			fmt.Fprintf(a.Stdout, "%-42s error: %v\n", name, err)
			failures++
			return
		}
		verdict := "stable reachable (weakly acyclic from here)"
		if !res.StableReachable {
			verdict = "no stable state reachable (NOT weakly acyclic)"
		}
		fmt.Fprintf(a.Stdout, "%-42s %4d states  %s\n", name, res.States, verdict)
		if wantStableFree == res.StableReachable {
			failures++
		}
	}
	// explore runs one analysis with the shared flags; cap is the
	// analysis' default state budget unless -max-states overrides it.
	explore := func(name string, mk func() *graphGame, cap int, wantStableFree bool) {
		if *maxStates > 0 {
			cap = *maxStates
		}
		gg := mk()
		opt := cycles.ExploreOptions{
			MaxStates:    cap,
			BestResponse: gg.best,
			Workers:      *workers,
			Cancel:       ctx.Done(),
		}
		if *progress > 0 {
			last := time.Now()
			opt.Progress = func(p cycles.ExploreProgress) {
				if time.Since(last) < *progress {
					return
				}
				last = time.Now()
				fmt.Fprintf(a.Stderr, "  %s: level %d, %d states, frontier %d, %.1f MB\n",
					name, p.Level, p.States, p.Frontier, float64(p.Bytes)/(1<<20))
			}
		}
		res, err := cycles.Explore(gg.start(), gg.game, opt)
		if errors.Is(err, cycles.ErrCancelled) {
			interrupted()
		}
		report(name, res, err, wantStableFree)
	}

	explore("Thm 5.1 SUM-bilateral", func() *graphGame {
		return &graphGame{cycles.Fig15Start, game.NewBilateral(game.Sum, cycles.Fig15Alpha), false}
	}, 5000, true)
	explore("Thm 3.3 SUM-ASG (best responses)", func() *graphGame {
		return &graphGame{cycles.Fig3Start, game.NewAsymSwap(game.Sum), true}
	}, 5000, true)
	explore("Cor 3.6 SUM repaired host", func() *graphGame {
		return &graphGame{cycles.Fig3Start, game.NewAsymSwapHost(game.Sum, cycles.Fig3HostGraphRepaired()), false}
	}, 5000, true)
	explore("Cor 3.6 SUM paper host (erratum)", func() *graphGame {
		return &graphGame{cycles.Fig3Start, game.NewAsymSwapHost(game.Sum, cycles.Fig3HostGraph()), false}
	}, 30000, false)
	explore("Cor 4.2 SUM paper host (erratum)", func() *graphGame {
		return &graphGame{cycles.Fig9Start, game.NewGreedyBuyHost(game.Sum, cycles.Fig9Alpha, cycles.Fig9HostGraph()), false}
	}, 30000, false)
	explore("Cor 4.2 MAX paper host (erratum)", func() *graphGame {
		return &graphGame{cycles.Fig10Start, game.NewGreedyBuyHost(game.Max, cycles.Fig10Alpha, cycles.Fig10HostGraph()), false}
	}, 30000, false)

	// Schedule spot checks: play each figure start network under the
	// requested activation schedule. These trajectories are exploratory
	// (seeded, deterministic) and do not count as verifications.
	if sched != nil {
		fmt.Fprintf(a.Stdout, "\ntrajectories under the %s schedule (seed 1, deterministic ties):\n", sched.Name())
		cap := 4000
		if *maxStates > 0 {
			cap = *maxStates
		}
		play := func(name string, g *graph.Graph, gm game.Game) {
			if ctx.Err() != nil {
				interrupted()
			}
			res := dynamics.Run(backend.Materialize(g.Clone(), oracle), dynamics.Config{
				Game: gm, Tie: dynamics.TieFirst, Seed: 1,
				MaxSteps: cap, Schedule: sched, DetectCycles: true,
				Oracle: oracle, Cancel: ctx.Done(),
			})
			var outcome string
			switch {
			case res.Cycled:
				outcome = fmt.Sprintf("cycle of %d moves", res.CycleLen)
			case res.Converged:
				outcome = "converged to a stable network"
			default:
				outcome = "step bound reached without a repeat"
			}
			if res.Rounds > 0 {
				outcome = fmt.Sprintf("%s (%d rounds, %d moves withheld)", outcome, res.Rounds, res.Skipped)
			}
			fmt.Fprintf(a.Stdout, "%-42s %4d steps  %s\n", name, res.Steps, outcome)
		}
		play("Fig 2 MAX-SG", cycles.Fig2Start(), game.NewSwap(game.Max))
		play("Fig 3 SUM-ASG", cycles.Fig3Start(), game.NewAsymSwap(game.Sum))
		play("Fig 9 SUM-GBG", cycles.Fig9Start(), game.NewGreedyBuy(game.Sum, cycles.Fig9Alpha))
		play("Fig 10 MAX-GBG", cycles.Fig10Start(), game.NewGreedyBuy(game.Max, cycles.Fig10Alpha))
	}

	if failures > 0 {
		fmt.Fprintf(a.Stdout, "\n%d verification failures\n", failures)
		cli.Exit(1)
	}
	fmt.Fprintln(a.Stdout, "\nall verifications behave as documented")
}

// graphGame bundles one analysis' start network, game and move mode.
type graphGame struct {
	start func() *graph.Graph
	game  game.Game
	best  bool
}
