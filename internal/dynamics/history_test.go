package dynamics

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// fig2Like builds the Figure 2 MAX-SG instance inline (kept local to avoid
// an import cycle with the cycles package).
func fig2Like() *graph.Graph {
	g := graph.New(9)
	for _, e := range [][2]int{
		{0, 2}, {0, 3}, {0, 4},
		{1, 2}, {1, 4}, {1, 6}, {1, 7},
		{3, 5}, {3, 6}, {3, 7},
		{4, 5}, {4, 7},
		{6, 8}, {7, 8},
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestDetectCyclesOnNonConvergentInstance(t *testing.T) {
	g := fig2Like()
	res := Run(g, Config{
		Game:         game.NewSwap(game.Max),
		Policy:       MaxCost{},
		Tie:          TieFirst,
		DetectCycles: true,
		MaxSteps:     100,
		Seed:         1,
	})
	if res.Converged {
		t.Fatal("instance must not converge")
	}
	if !res.Cycled {
		t.Fatal("cycle not detected")
	}
	if res.CycleLen != 3 {
		t.Fatalf("cycle length = %d, want 3", res.CycleLen)
	}
}

func TestDetectCyclesIgnoresOwnershipInSwapGame(t *testing.T) {
	// The SG's state is the edge set: two states differing only in
	// ownership must be identified. Construct a run on the Figure 2
	// instance but with the ownership scrambled; detection must still
	// trigger after 3 steps (not wait for an exact owner match).
	g := fig2Like()
	// Flip some owners; the SG ignores them.
	g.SetOwner(2, 0)
	g.SetOwner(7, 1)
	res := Run(g, Config{
		Game:         game.NewSwap(game.Max),
		Policy:       MaxCost{},
		Tie:          TieFirst,
		DetectCycles: true,
		MaxSteps:     100,
		Seed:         2,
	})
	if !res.Cycled || res.CycleLen != 3 {
		t.Fatalf("cycle detection with scrambled owners: %+v", res)
	}
}

func TestDetectCyclesOffByDefault(t *testing.T) {
	// TieFirst keeps play on the designated cycle; with random ties the
	// mover may pick an equally good swap that leads to a stable network
	// (the cycle is about existence, not inevitability).
	g := fig2Like()
	res := Run(g, Config{
		Game:     game.NewSwap(game.Max),
		Policy:   MaxCost{},
		Tie:      TieFirst,
		MaxSteps: 30,
		Seed:     3,
	})
	if res.Cycled {
		t.Fatal("cycle detection should be opt-in")
	}
	if res.Converged || res.Steps != 30 {
		t.Fatalf("expected to exhaust the step budget: %+v", res)
	}
}

func TestRunPreservesValidity(t *testing.T) {
	// Whatever the game, the graph invariants hold after a run.
	games := []game.Game{
		game.NewSwap(game.Sum),
		game.NewAsymSwap(game.Max),
		game.NewGreedyBuy(game.Sum, game.NewAlpha(5, 2)),
	}
	for _, gm := range games {
		g := graph.Path(12)
		Run(g, Config{Game: gm, Policy: Random{}, Seed: 4})
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", gm.Name(), err)
		}
	}
}
