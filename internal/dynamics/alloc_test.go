package dynamics

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
)

// TestRunnerSteadyStateAllocs pins the per-step allocation count of a
// warmed Runner: after the first run has grown every arena (scratches,
// distance cache, move and ordering buffers), further runs on same-sized
// networks must be allocation-flat — the regression guard for the
// engine's arena reuse.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	g0 := gen.BudgetNetwork(64, 3, gen.NewRand(1))
	cfg := Config{Game: game.NewAsymSwap(game.Sum), Policy: MaxCost{}, Seed: 7}
	r := NewRunner()
	g := g0.Clone()
	res := r.Run(g, cfg)
	if !res.Converged || res.Steps == 0 {
		t.Fatalf("warm-up run: %+v", res)
	}
	steps := res.Steps
	perRun := testing.AllocsPerRun(5, func() {
		g.CopyFrom(g0)
		r.Run(g, cfg)
	})
	perStep := perRun / float64(steps)
	t.Logf("steady state: %.1f allocs per run, %.3f per step (%d steps)", perRun, perStep, steps)
	// The budget leaves room for incidental growth but fails on any
	// per-step or per-trial allocation creeping back in.
	if perRun > 8 {
		t.Errorf("steady-state run allocates %.1f times (%.3f per step), want <= 8 per run", perRun, perStep)
	}
}

// TestRunnerDetectCyclesAllocs pins the allocation budget of cycle
// detection: a warmed Runner interns visited states into its reusable
// store (fingerprint + compact encoding, no per-step graph clones), so a
// whole DetectCycles run must stay within a small constant allocation
// count — independent of its step count — alongside the steady-state
// budget above.
func TestRunnerDetectCyclesAllocs(t *testing.T) {
	g0 := gen.BudgetNetwork(64, 3, gen.NewRand(1))
	cfg := Config{Game: game.NewAsymSwap(game.Sum), Policy: MaxCost{}, Seed: 7, DetectCycles: true}
	r := NewRunner()
	g := g0.Clone()
	res := r.Run(g, cfg)
	if !res.Converged || res.Cycled || res.Steps == 0 {
		t.Fatalf("warm-up run: %+v", res)
	}
	steps := res.Steps
	perRun := testing.AllocsPerRun(5, func() {
		g.CopyFrom(g0)
		r.Run(g, cfg)
	})
	t.Logf("detect-cycles steady state: %.1f allocs per run (%d steps)", perRun, steps)
	if perRun > 8 {
		t.Errorf("DetectCycles run allocates %.1f times over %d steps, want <= 8 per run (no per-step state copies)", perRun, steps)
	}
}

// TestRunnerReusedAcrossSizes checks arena resizing and cross-run
// isolation: a single Runner alternating between network sizes and games
// must reproduce the results of fresh single-use runs exactly.
func TestRunnerReusedAcrossSizes(t *testing.T) {
	r := NewRunner()
	for trial := 0; trial < 9; trial++ {
		n := []int{16, 40, 24}[trial%3]
		var gm game.Game = game.NewAsymSwap(game.Sum)
		if trial%2 == 1 {
			gm = game.NewGreedyBuy(game.Sum, game.NewAlpha(int64(n), 4))
		}
		cfg := Config{Game: gm, Policy: MaxCost{}, Seed: int64(trial)}
		gWant := gen.BudgetNetwork(n, 3, gen.NewRand(int64(trial)))
		gGot := gWant.Clone()
		want := Run(gWant, cfg)
		got := r.Run(gGot, cfg)
		if got.Steps != want.Steps || got.Converged != want.Converged || got.MoveKinds != want.MoveKinds {
			t.Fatalf("trial %d (n=%d): runner %+v, fresh %+v", trial, n, got, want)
		}
		if !gGot.Equal(gWant) {
			t.Fatalf("trial %d (n=%d): final networks differ", trial, n)
		}
	}
}
