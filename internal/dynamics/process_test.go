package dynamics

import (
	"math/rand"
	"testing"

	"ncg/internal/game"
	"ncg/internal/graph"
)

func TestRunConvergesOnStableStart(t *testing.T) {
	g := graph.Star(8)
	res := Run(g, Config{Game: game.NewSwap(game.Max), Policy: MaxCost{}})
	if !res.Converged || res.Steps != 0 {
		t.Fatalf("star should already be stable: %+v", res)
	}
}

func TestRunMaxSGPathConvergesToLowDiameter(t *testing.T) {
	// Alon et al.: stable trees of the MAX-SG have diameter <= 3 (stars or
	// double stars); Theorem 2.1 guarantees convergence from any tree.
	for _, n := range []int{4, 6, 9, 12, 17} {
		g := graph.Path(n)
		res := Run(g, Config{Game: game.NewSwap(game.Max), Policy: MaxCost{}, Seed: int64(n)})
		if !res.Converged {
			t.Fatalf("n=%d did not converge", n)
		}
		if !g.IsTree() {
			t.Fatalf("n=%d: swaps must preserve tree-ness", n)
		}
		if d := g.Diameter(); d > 3 {
			t.Fatalf("n=%d: stable tree with diameter %d", n, d)
		}
		if !g.IsStar() && !g.IsDoubleStar() && n >= 4 {
			t.Fatalf("n=%d: stable tree is neither star nor double star: %v", n, g)
		}
	}
}

func TestRunSumSGPathConverges(t *testing.T) {
	for _, n := range []int{4, 8, 15} {
		g := graph.Path(n)
		res := Run(g, Config{Game: game.NewSwap(game.Sum), Policy: MaxCost{}, Seed: 1})
		if !res.Converged {
			t.Fatalf("n=%d did not converge", n)
		}
	}
}

func TestRunStableAgrees(t *testing.T) {
	g := graph.Path(9)
	gm := game.NewAsymSwap(game.Sum)
	if Stable(g, gm) {
		t.Fatal("path should be unstable")
	}
	Run(g, Config{Game: gm, Policy: Random{}, Seed: 3})
	if !Stable(g, gm) {
		t.Fatal("converged network must be stable")
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	run := func() (*graph.Graph, Result) {
		g := graph.Path(12)
		res := Run(g, Config{Game: game.NewAsymSwap(game.Sum), Policy: Random{}, Seed: 99})
		return g, res
	}
	g1, r1 := run()
	g2, r2 := run()
	if r1.Steps != r2.Steps || !g1.Equal(g2) {
		t.Fatalf("same seed produced different runs: %d vs %d steps", r1.Steps, r2.Steps)
	}
}

func TestMoveKindAccounting(t *testing.T) {
	g := graph.Path(10)
	res := Run(g, Config{Game: game.NewGreedyBuy(game.Sum, game.AlphaInt(3)), Policy: MaxCost{}, Seed: 5})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	total := 0
	for _, c := range res.MoveKinds {
		total += c
	}
	if total != res.Steps || len(res.Kinds) != res.Steps {
		t.Fatalf("kind accounting mismatch: %+v", res)
	}
}

func TestPoliciesPickUnhappyAgents(t *testing.T) {
	g := graph.Path(7)
	gm := game.NewSwap(game.Sum)
	s := game.NewScratch(7)
	for _, p := range []Policy{MaxCost{}, MaxCostDeterministic{}, Random{}, MinIndex{}} {
		u := p.Pick(g, gm, s, rand.New(rand.NewSource(1)))
		if u < 0 {
			t.Fatalf("%s found no mover on unstable path", p.Name())
		}
		if !gm.HasImproving(g, u, s) {
			t.Fatalf("%s picked happy agent %d", p.Name(), u)
		}
	}
}

func TestMaxCostPicksHighestCostUnhappyAgent(t *testing.T) {
	// On the path, the leaves have the highest cost and are unhappy.
	g := graph.Path(9)
	gm := game.NewSwap(game.Max)
	s := game.NewScratch(9)
	u := MaxCostDeterministic{}.Pick(g, gm, s, nil)
	if u != 0 {
		t.Fatalf("picked %d, want leaf 0 (max cost, smallest index)", u)
	}
}

func TestAdversarialPolicy(t *testing.T) {
	g := graph.Path(6)
	gm := game.NewSwap(game.Sum)
	s := game.NewScratch(6)
	var sawUnhappy []int
	p := Adversarial{Choose: func(g graph.Store, unhappy []int) int {
		sawUnhappy = append([]int(nil), unhappy...)
		return unhappy[len(unhappy)-1]
	}}
	u := p.Pick(g, gm, s, nil)
	if len(sawUnhappy) == 0 || u != sawUnhappy[len(sawUnhappy)-1] {
		t.Fatalf("adversarial pick = %d from %v", u, sawUnhappy)
	}
}

func TestUnhappySetOnPath(t *testing.T) {
	g := graph.Path(5)
	us := Unhappy(g, game.NewSwap(game.Sum), game.NewScratch(5))
	// Leaves improve by re-attaching to a median; 1 and 3 improve by
	// swapping their inner edge one step towards the middle (e.g. agent 1
	// swaps {1,2} to {1,3}: sum 7 -> 6). The median 2 is happy.
	want := []int{0, 1, 3, 4}
	if len(us) != len(want) {
		t.Fatalf("unhappy = %v, want %v", us, want)
	}
	for i := range want {
		if us[i] != want[i] {
			t.Fatalf("unhappy = %v, want %v", us, want)
		}
	}
}

func TestOnStepCallback(t *testing.T) {
	g := graph.Path(8)
	var steps int
	res := Run(g, Config{
		Game:   game.NewSwap(game.Max),
		Policy: MaxCost{},
		OnStep: func(step, mover int, mv game.Move, g graph.Store) {
			steps++
			if step != steps {
				t.Fatalf("step numbering broken: %d vs %d", step, steps)
			}
			if mv.Agent != mover {
				t.Fatalf("move agent %d != mover %d", mv.Agent, mover)
			}
		},
	})
	if steps != res.Steps {
		t.Fatalf("callback count %d != steps %d", steps, res.Steps)
	}
}

func TestMaxStepsAborts(t *testing.T) {
	g := graph.Path(30)
	res := Run(g, Config{Game: game.NewSwap(game.Max), Policy: MaxCost{}, MaxSteps: 1})
	if res.Converged || res.Steps != 1 {
		t.Fatalf("expected abort after 1 step: %+v", res)
	}
}
