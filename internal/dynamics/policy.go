// Package dynamics implements the sequential-move network creation process
// of Kawald & Lenzner (SPAA'13, Section 1.1): starting from an initial
// network, a move policy repeatedly selects an unhappy agent who then plays
// a best possible improving move, until either a stable network (a pure
// Nash equilibrium of the underlying game) is reached or a step limit or
// revisited state reveals non-convergence.
package dynamics

import (
	"math/rand"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// Policy selects the moving agent in each state of the process. It only
// chooses who moves, never which move is played (Section 1.1: "we do not
// consider such strong policies").
type Policy interface {
	Name() string
	// Pick returns the moving agent for state g, or -1 if no agent is
	// unhappy (the process has converged). Implementations must certify
	// convergence before returning -1.
	Pick(g graph.Store, gm game.Game, s *game.Scratch, r *rand.Rand) int
}

// enginePolicy is implemented by the built-in policies that can exploit a
// process engine: costs are then served from the incremental distance
// cache and happiness probes fan out over the engine's worker pool. Both
// accelerations are exact, so pickEngine returns the same agent as Pick
// and consumes the RNG identically.
type enginePolicy interface {
	pickEngine(e *engine, r *rand.Rand) int
}

// MaxCost is the max cost policy: agents are examined in order of
// descending current cost and the first unhappy one moves. Ties between
// equal-cost agents are broken uniformly at random, matching the
// experimental setup of Section 3.4.1.
type MaxCost struct{}

func (MaxCost) Name() string { return "max cost" }

// costedAgent pairs an agent with its cost and random tie key for the max
// cost orderings.
type costedAgent struct {
	u    int
	c    game.Cost
	tieR int64
}

// maxCostOrder returns the agents sorted by descending cost with random
// tie order (n Int63 draws, one per agent, in index order). agents and ord,
// when non-nil with capacity n, back the computation without allocating —
// the engine path passes its per-run buffers.
func maxCostOrder(n int, cost func(u int) game.Cost, alpha game.Alpha, r *rand.Rand, agents []costedAgent, ord []int) []int {
	if cap(agents) < n {
		agents = make([]costedAgent, n)
	}
	agents = agents[:n]
	for u := 0; u < n; u++ {
		agents[u] = costedAgent{u: u, c: cost(u)}
		if r != nil {
			agents[u].tieR = r.Int63()
		}
	}
	// Insertion sort by descending cost with random tie order; n is small
	// and the dominant cost is the happiness probing afterwards anyway.
	for i := 1; i < n; i++ {
		a := agents[i]
		j := i - 1
		for j >= 0 {
			cmp := agents[j].c.Cmp(a.c, alpha)
			if cmp > 0 || (cmp == 0 && agents[j].tieR >= a.tieR) {
				break
			}
			agents[j+1] = agents[j]
			j--
		}
		agents[j+1] = a
	}
	if cap(ord) < n {
		ord = make([]int, n)
	}
	order := ord[:n]
	for i, a := range agents {
		order[i] = a.u
	}
	return order
}

func (MaxCost) Pick(g graph.Store, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	order := maxCostOrder(g.N(), func(u int) game.Cost { return gm.Cost(g, u, s) }, gm.Alpha(), r, nil, nil)
	for _, u := range order {
		if gm.HasImproving(g, u, s) {
			return u
		}
	}
	return -1
}

func (MaxCost) pickEngine(e *engine, r *rand.Rand) int {
	n := e.g.N()
	if cap(e.agents) < n {
		e.agents = make([]costedAgent, n)
	}
	if cap(e.ord) < n {
		e.ord = make([]int, n)
	}
	order := maxCostOrder(n, e.cost, e.gm.Alpha(), r, e.agents[:n], e.ord[:n])
	return e.firstUnhappy(order)
}

// MaxCostDeterministic is the max cost policy with deterministic
// tie-breaking: among maximum-cost agents the one with the smallest index
// moves. This is the rule used in the lower-bound trace of Theorem 2.11 and
// Figure 1.
type MaxCostDeterministic struct{}

func (MaxCostDeterministic) Name() string { return "max cost (smallest index)" }

// maxCostOrderDeterministic returns the agents sorted by descending cost,
// index order on ties; costsBuf and ord optionally back the computation.
func maxCostOrderDeterministic(n int, cost func(u int) game.Cost, alpha game.Alpha, costsBuf []game.Cost, ord []int) []int {
	if cap(costsBuf) < n {
		costsBuf = make([]game.Cost, n)
	}
	costs := costsBuf[:n]
	if cap(ord) < n {
		ord = make([]int, n)
	}
	order := ord[:n]
	for u := 0; u < n; u++ {
		costs[u] = cost(u)
		order[u] = u
	}
	// Stable insertion sort by descending cost keeps index order on ties.
	for i := 1; i < n; i++ {
		u := order[i]
		j := i - 1
		for j >= 0 && costs[order[j]].Cmp(costs[u], alpha) < 0 {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = u
	}
	return order
}

func (MaxCostDeterministic) Pick(g graph.Store, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	order := maxCostOrderDeterministic(g.N(), func(u int) game.Cost { return gm.Cost(g, u, s) }, gm.Alpha(), nil, nil)
	for _, u := range order {
		if gm.HasImproving(g, u, s) {
			return u
		}
	}
	return -1
}

func (MaxCostDeterministic) pickEngine(e *engine, r *rand.Rand) int {
	n := e.g.N()
	if cap(e.costs) < n {
		e.costs = make([]game.Cost, n)
	}
	if cap(e.ord) < n {
		e.ord = make([]int, n)
	}
	order := maxCostOrderDeterministic(n, e.cost, e.gm.Alpha(), e.costs[:n], e.ord[:n])
	return e.firstUnhappy(order)
}

// Random is the random policy of Section 3.4.1: one agent is chosen
// uniformly at random; if she is happy she is removed from the candidate
// set and another is drawn, until an unhappy agent is found or no candidate
// remains.
//
// Random has no engine fast path on purpose: the number of RNG draws it
// consumes depends on how many probes fail, so speculative parallel
// probing would shift the RNG stream and change seeded traces.
type Random struct{}

func (Random) Name() string { return "random" }

func (Random) Pick(g graph.Store, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	n := g.N()
	cands := make([]int, n)
	for i := range cands {
		cands[i] = i
	}
	for len(cands) > 0 {
		i := 0
		if r != nil {
			i = r.Intn(len(cands))
		}
		u := cands[i]
		if gm.HasImproving(g, u, s) {
			return u
		}
		cands[i] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return -1
}

// MinIndex picks the unhappy agent with the smallest index; useful for
// deterministic unit tests.
type MinIndex struct{}

func (MinIndex) Name() string { return "min index" }

func (MinIndex) Pick(g graph.Store, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			return u
		}
	}
	return -1
}

func (MinIndex) pickEngine(e *engine, r *rand.Rand) int {
	n := e.g.N()
	if cap(e.ord) < n {
		e.ord = make([]int, n)
	}
	order := e.ord[:n]
	for u := range order {
		order[u] = u
	}
	return e.firstUnhappy(order)
}

// Adversarial wraps a caller-supplied selection function receiving the set
// of unhappy agents; it models the adversary of the negative results ("an
// adversary chooses the worst possible moving agent").
type Adversarial struct {
	// Choose returns the moving agent given the unhappy set (non-empty).
	Choose func(g graph.Store, unhappy []int) int
}

func (Adversarial) Name() string { return "adversarial" }

func (a Adversarial) Pick(g graph.Store, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	var unhappy []int
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			unhappy = append(unhappy, u)
		}
	}
	if len(unhappy) == 0 {
		return -1
	}
	return a.Choose(g, unhappy)
}

func (a Adversarial) pickEngine(e *engine, r *rand.Rand) int {
	unhappy := e.unhappy(nil)
	if len(unhappy) == 0 {
		return -1
	}
	return a.Choose(e.g, unhappy)
}

// Unhappy returns the set of unhappy agents of g under gm (U_i of Section
// 1.1).
func Unhappy(g graph.Store, gm game.Game, s *game.Scratch) []int {
	var us []int
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			us = append(us, u)
		}
	}
	return us
}
