// Package dynamics implements the sequential-move network creation process
// of Kawald & Lenzner (SPAA'13, Section 1.1): starting from an initial
// network, a move policy repeatedly selects an unhappy agent who then plays
// a best possible improving move, until either a stable network (a pure
// Nash equilibrium of the underlying game) is reached or a step limit or
// revisited state reveals non-convergence.
package dynamics

import (
	"math/rand"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// Policy selects the moving agent in each state of the process. It only
// chooses who moves, never which move is played (Section 1.1: "we do not
// consider such strong policies").
type Policy interface {
	Name() string
	// Pick returns the moving agent for state g, or -1 if no agent is
	// unhappy (the process has converged). Implementations must certify
	// convergence before returning -1.
	Pick(g *graph.Graph, gm game.Game, s *game.Scratch, r *rand.Rand) int
}

// MaxCost is the max cost policy: agents are examined in order of
// descending current cost and the first unhappy one moves. Ties between
// equal-cost agents are broken uniformly at random, matching the
// experimental setup of Section 3.4.1.
type MaxCost struct{}

func (MaxCost) Name() string { return "max cost" }

func (MaxCost) Pick(g *graph.Graph, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	n := g.N()
	type agentCost struct {
		u    int
		c    game.Cost
		tieR int64
	}
	agents := make([]agentCost, n)
	for u := 0; u < n; u++ {
		agents[u] = agentCost{u: u, c: gm.Cost(g, u, s)}
		if r != nil {
			agents[u].tieR = r.Int63()
		}
	}
	alpha := gm.Alpha()
	// Insertion sort by descending cost with random tie order; n is small
	// and the dominant cost is the happiness probing below anyway.
	for i := 1; i < n; i++ {
		a := agents[i]
		j := i - 1
		for j >= 0 {
			cmp := agents[j].c.Cmp(a.c, alpha)
			if cmp > 0 || (cmp == 0 && agents[j].tieR >= a.tieR) {
				break
			}
			agents[j+1] = agents[j]
			j--
		}
		agents[j+1] = a
	}
	for _, a := range agents {
		if gm.HasImproving(g, a.u, s) {
			return a.u
		}
	}
	return -1
}

// MaxCostDeterministic is the max cost policy with deterministic
// tie-breaking: among maximum-cost agents the one with the smallest index
// moves. This is the rule used in the lower-bound trace of Theorem 2.11 and
// Figure 1.
type MaxCostDeterministic struct{}

func (MaxCostDeterministic) Name() string { return "max cost (smallest index)" }

func (MaxCostDeterministic) Pick(g *graph.Graph, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	n := g.N()
	costs := make([]game.Cost, n)
	order := make([]int, n)
	for u := 0; u < n; u++ {
		costs[u] = gm.Cost(g, u, s)
		order[u] = u
	}
	alpha := gm.Alpha()
	// Stable insertion sort by descending cost keeps index order on ties.
	for i := 1; i < n; i++ {
		u := order[i]
		j := i - 1
		for j >= 0 && costs[order[j]].Cmp(costs[u], alpha) < 0 {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = u
	}
	for _, u := range order {
		if gm.HasImproving(g, u, s) {
			return u
		}
	}
	return -1
}

// Random is the random policy of Section 3.4.1: one agent is chosen
// uniformly at random; if she is happy she is removed from the candidate
// set and another is drawn, until an unhappy agent is found or no candidate
// remains.
type Random struct{}

func (Random) Name() string { return "random" }

func (Random) Pick(g *graph.Graph, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	n := g.N()
	cands := make([]int, n)
	for i := range cands {
		cands[i] = i
	}
	for len(cands) > 0 {
		i := 0
		if r != nil {
			i = r.Intn(len(cands))
		}
		u := cands[i]
		if gm.HasImproving(g, u, s) {
			return u
		}
		cands[i] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return -1
}

// MinIndex picks the unhappy agent with the smallest index; useful for
// deterministic unit tests.
type MinIndex struct{}

func (MinIndex) Name() string { return "min index" }

func (MinIndex) Pick(g *graph.Graph, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			return u
		}
	}
	return -1
}

// Adversarial wraps a caller-supplied selection function receiving the set
// of unhappy agents; it models the adversary of the negative results ("an
// adversary chooses the worst possible moving agent").
type Adversarial struct {
	// Choose returns the moving agent given the unhappy set (non-empty).
	Choose func(g *graph.Graph, unhappy []int) int
}

func (Adversarial) Name() string { return "adversarial" }

func (a Adversarial) Pick(g *graph.Graph, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	var unhappy []int
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			unhappy = append(unhappy, u)
		}
	}
	if len(unhappy) == 0 {
		return -1
	}
	return a.Choose(g, unhappy)
}

// Unhappy returns the set of unhappy agents of g under gm (U_i of Section
// 1.1).
func Unhappy(g *graph.Graph, gm game.Game, s *game.Scratch) []int {
	var us []int
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			us = append(us, u)
		}
	}
	return us
}
