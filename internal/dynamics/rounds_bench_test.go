package dynamics

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
)

// BenchmarkRoundStep is the pinned round-dynamics workload: SUM-ASG
// simultaneous rounds (all unhappy agents, first-writer-wins) on a 128-agent
// budget network, capped at 256 committed moves. Each round snapshots the
// network, probes and scans every agent, and commits the collision-free
// responses — the hot path of the Rounds schedule. Part of the CI
// performance trajectory (BENCH_ensemble.json vs BENCH_baseline.json);
// keep the workload fixed.
func BenchmarkRoundStep(b *testing.B) {
	g0 := gen.BudgetNetwork(128, 3, gen.NewRand(1))
	cfg := Config{
		Game:     game.NewAsymSwap(game.Sum),
		Tie:      TieFirst,
		Seed:     7,
		Schedule: Rounds{Active: ActiveAll, Collision: FirstWriterWins},
		MaxSteps: 256,
	}
	r := NewRunner()
	g := g0.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CopyFrom(g0)
		res := r.Run(g, cfg)
		if res.Steps == 0 || res.Rounds == 0 {
			b.Fatalf("run changed behaviour: %+v", res)
		}
	}
}

// benchStableSweep probes a converged (stable) 128-agent network — the
// worst case for Stable, which cannot exit early. The engine variant is
// the shipped Stable (one batched all-pairs build serving every probe as a
// distance oracle); the plain variant is the pre-engine sweep it replaced
// (bare HasImproving with a fresh scratch and no oracle).
func benchStableSweep(b *testing.B, engine bool) {
	gm := game.NewAsymSwap(game.Sum)
	g := gen.BudgetNetwork(128, 3, gen.NewRand(1))
	res := Run(g, Config{Game: gm, Policy: MaxCost{}, Seed: 7})
	if !res.Converged {
		b.Fatal("setup run did not converge")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok := true
		if engine {
			ok = Stable(g, gm)
		} else {
			s := game.NewScratch(g.N())
			for u := 0; u < g.N(); u++ {
				if gm.HasImproving(g, u, s) {
					ok = false
					break
				}
			}
		}
		if !ok {
			b.Fatal("converged network reported unstable")
		}
	}
}

func BenchmarkStable128(b *testing.B)      { benchStableSweep(b, true) }
func BenchmarkStablePlain128(b *testing.B) { benchStableSweep(b, false) }
