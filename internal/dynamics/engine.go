package dynamics

import (
	"sync"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// engine carries the per-run acceleration state of a process: a worker pool
// with per-worker scratches over which happiness probes are fanned out, and
// an incrementally maintained all-pairs distance matrix from which the cost
// policies read agent costs instead of re-running n breadth-first searches
// every step.
//
// Both accelerations are exact: probe fan-out preserves the serial probe
// order (waves are collected in order, so results are identical at any
// worker count), and the distance cache reproduces BFS distances to the
// bit, so seeded runs and TieFirst/TieLast traces match the unaccelerated
// process step for step.
//
// An engine borrows its heavy state — game scratches, the distance cache,
// batch-BFS scratches, policy ordering buffers — from the Runner that owns
// it, so back-to-back runs on same-sized networks reuse one set of arenas
// instead of reallocating them every trial.
type engine struct {
	g       graph.Store
	gm      game.Game
	workers int
	scr     []*game.Scratch
	// pure records that the game's HasImproving never mutates the graph,
	// the precondition for probing a shared graph concurrently.
	pure bool
	// halvesOK records that the game's edge-cost term is derivable from
	// degrees, the precondition for serving costs from the distance cache.
	halvesOK bool
	cache    *costCache
	// lmk is the landmark oracle of landmark-mode runs (nil otherwise),
	// kept exact across moves by afterMove.
	lmk   *graph.Landmarks
	probe []bool
	// ord/agents/costs are the reusable buffers of the engine-side policy
	// orderings (pickEngine), so cost sorting allocates nothing per step.
	ord    []int
	agents []costedAgent
	costs  []game.Cost
	// arena owns the recyclable state across runs.
	arena *Runner
}

// reset prepares the runner-owned engine for a run, reusing every arena
// whose size still fits.
func (e *engine) reset(r *Runner, g graph.Store, gm game.Game, workers int, spec OracleSpec) {
	if workers < 1 {
		workers = 1
	}
	n := g.N()
	spec = spec.resolve(n)
	e.g = g
	e.gm = gm
	e.workers = workers
	e.pure = game.ProbesPurely(gm)
	e.cache = nil
	e.arena = r
	if r.scrN != n {
		r.scr = r.scr[:0]
		r.scrN = n
	}
	for len(r.scr) < workers {
		r.scr = append(r.scr, game.NewScratch(n))
	}
	e.scr = r.scr[:workers]
	// Landmark mode: maintain k exact landmark rows instead of the n²
	// matrix. Only the delta-evaluated swap scans consult the filter;
	// other games simply run oracle-less under this mode.
	e.lmk = nil
	if spec.Mode == OracleLandmark && n > 0 && game.UsesSwapScans(gm) {
		if r.lmk == nil {
			r.lmk = graph.BuildLandmarks(g, spec.K, nil)
		} else {
			r.lmk.Rebuild(g, spec.K)
		}
		e.lmk = r.lmk
	}
	for _, s := range e.scr {
		// A stale oracle from a previous run would serve distances of the
		// wrong network; cost() reinstalls the cache once it is built.
		s.SetDistOracle(nil)
		s.SetLandmarks(e.lmk)
	}
	// Naive-wrapped games deliberately run without the distance cache:
	// the wrap marks a regime (see game.PreferNaiveScan) where cache
	// maintenance costs more than the BFS costs it replaces. Landmark
	// mode skips the cache too — its O(n²) matrix is exactly what the
	// mode exists to avoid; cost reads fall back to per-agent searches.
	e.halvesOK = false
	if n > 0 && !game.IsNaive(gm) && spec.Mode != OracleLandmark {
		_, e.halvesOK = game.EdgeCostHalves(gm, g, 0)
	}
	if cap(e.probe) < workers {
		e.probe = make([]bool, workers)
	}
	e.probe = e.probe[:workers]
}

// newEngine returns a free-standing engine with its own single-use arenas;
// runs executed through a Runner share arenas across runs instead.
func newEngine(g graph.Store, gm game.Game, workers int) *engine {
	r := &Runner{}
	r.eng.reset(r, g, gm, workers, OracleSpec{Mode: OracleExact})
	return &r.eng
}

// scratch returns the primary scratch, for serial work.
func (e *engine) scratch() *game.Scratch { return e.scr[0] }

// cost returns agent u's current cost, served from the distance cache when
// the game's cost model allows it. The first call builds the cache with the
// batched all-sources kernel — sharded over the worker pool when one is
// configured, which is exact: shards write disjoint column blocks — and
// installs it as the scratches' distance oracle, which lets delta scans
// score additions searchlessly and prune hopeless swap targets.
func (e *engine) cost(u int) game.Cost {
	if !e.halvesOK {
		return e.gm.Cost(e.g, u, e.scr[0])
	}
	if e.cache == nil {
		e.cache = e.obtainCache()
		for _, s := range e.scr {
			s.SetDistOracle(e.cache)
		}
	}
	h, _ := game.EdgeCostHalves(e.gm, e.g, u)
	return game.Cost{Halves: h, Dist: e.cache.distCost(u, e.gm.DistKind())}
}

// obtainCache recycles the arena's cache when the size matches, then
// (re)builds it for the current network.
func (e *engine) obtainCache() *costCache {
	n := e.g.N()
	c := e.arena.cache
	if c == nil || c.n != n {
		c = newCostCacheShell(n)
		e.arena.cache = c
	}
	c.build(e.g, e.buildScratches())
	return c
}

// buildScratches returns one batch scratch per build shard: the worker pool
// size capped at the number of 64-source groups (a shard below one group
// would idle). A single shard reports nil, selecting the serial build.
func (e *engine) buildScratches() []*graph.BatchBFSScratch {
	shards := e.workers
	if groups := (e.g.N() + 63) / 64; shards > groups {
		shards = groups
	}
	if shards <= 1 {
		return nil
	}
	r := e.arena
	for len(r.batch) < shards {
		r.batch = append(r.batch, graph.NewBatchBFSScratch(e.g.N()))
	}
	return r.batch[:shards]
}

// afterMove folds an applied move into the cache and the landmark oracle;
// g must already be in the post-move state. The landmark repair is invoked
// explicitly rather than through the graph's observer slot, which cycle
// detection occupies with the state fingerprint; the transient edge
// replay inside Apply fires that observer symmetrically, so the
// fingerprint cancels back to the post-move state.
func (e *engine) afterMove(mv game.Move) {
	if e.cache != nil {
		e.cache.update(e.g, mv)
	}
	if e.lmk != nil {
		e.lmk.Apply(e.g, mv.Agent, mv.Drop, mv.Add)
	}
}

// firstUnhappy returns the first agent of order with an improving move, or
// -1. With multiple workers and a pure-probing game, probes run in waves of
// one agent per worker; the waves are scanned in order, so the result is
// independent of scheduling.
func (e *engine) firstUnhappy(order []int) int {
	if e.workers <= 1 || !e.pure || len(order) < 2 {
		s := e.scr[0]
		for _, u := range order {
			if e.gm.HasImproving(e.g, u, s) {
				return u
			}
		}
		return -1
	}
	// Wave sizes ramp up exponentially: the first probed agent is very
	// often already the mover, so speculation only widens while a streak
	// of happy agents keeps paying for it.
	wave := 1
	for base := 0; base < len(order); base += wave {
		if base > 0 {
			wave *= 2
			if wave > e.workers {
				wave = e.workers
			}
		}
		end := base + wave
		if end > len(order) {
			end = len(order)
		}
		chunk := order[base:end]
		if len(chunk) == 1 {
			if e.gm.HasImproving(e.g, chunk[0], e.scr[0]) {
				return chunk[0]
			}
			continue
		}
		var wg sync.WaitGroup
		for i := range chunk {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				e.probe[i] = e.gm.HasImproving(e.g, chunk[i], e.scr[i])
			}(i)
		}
		wg.Wait()
		for i := range chunk {
			if e.probe[i] {
				return chunk[i]
			}
		}
	}
	return -1
}

// unhappy appends every unhappy agent to dst in increasing order, probing
// in parallel waves when possible.
func (e *engine) unhappy(dst []int) []int {
	n := e.g.N()
	if e.workers <= 1 || !e.pure {
		s := e.scr[0]
		for u := 0; u < n; u++ {
			if e.gm.HasImproving(e.g, u, s) {
				dst = append(dst, u)
			}
		}
		return dst
	}
	for base := 0; base < n; base += e.workers {
		end := base + e.workers
		if end > n {
			end = n
		}
		var wg sync.WaitGroup
		for i := 0; i < end-base; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				e.probe[i] = e.gm.HasImproving(e.g, base+i, e.scr[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < end-base; i++ {
			if e.probe[i] {
				dst = append(dst, base+i)
			}
		}
	}
	return dst
}

// costCache is the incrementally maintained all-pairs shortest-path state
// of the current network: the full distance matrix plus the per-source
// aggregates that agent distance costs are read from.
//
// The matrix is constructed by the batched bit-parallel BFS kernel, 64
// sources per pass (optionally sharded over the worker pool). Added edges
// are folded in with the exact single-insertion rule
// d'(a,b) = min(d(a,b), d(a,u)+1+d(y,b), d(a,y)+1+d(u,b)); for removed
// edges {u,x}, a source row can only change if some shortest path from it
// crossed the edge, which requires |d(a,u) - d(a,x)| = 1; rows meeting that
// are repaired by PartialBFS over their damage, except that rows with more
// than n/2 damaged entries are collected and re-searched together by one
// batched BFS pass over the post-move network.
type costCache struct {
	n       int
	d       []int32 // row-major distance matrix
	sum     []int64 // per-source sum of distances within its component
	ecc     []int32 // per-source eccentricity within its component
	reached []int   // per-source component size (including the source)
	bfs     *graph.BFSScratch
	repair  *graph.RepairScratch
	batch   *graph.BatchBFSScratch
	suspect graph.Bitset
	oldU    []int32 // pre-removal rows of the dropped edge's endpoints
	oldX    []int32
	res     []graph.BFSResult // batch aggregate staging
	refresh []int             // rows pending a batched full re-search
	rows    [][]int32         // row-pointer staging for batched refreshes
}

// newCostCacheShell allocates an empty cache for n-vertex networks; build
// fills it.
func newCostCacheShell(n int) *costCache {
	return &costCache{
		n:       n,
		d:       make([]int32, n*n),
		sum:     make([]int64, n),
		ecc:     make([]int32, n),
		reached: make([]int, n),
		bfs:     graph.NewBFSScratch(n),
		repair:  graph.NewRepairScratch(n),
		batch:   graph.NewBatchBFSScratch(n),
		suspect: graph.NewBitset(n),
		oldU:    make([]int32, n),
		oldX:    make([]int32, n),
		res:     make([]graph.BFSResult, n),
		refresh: make([]int, 0, n),
		rows:    make([][]int32, 0, n),
	}
}

func newCostCache(g graph.Store) *costCache {
	c := newCostCacheShell(g.N())
	c.build(g, nil)
	return c
}

// build recomputes the whole matrix and its aggregates with the batched
// kernel. par, when it holds more than one scratch, splits the source
// groups into that many shards built concurrently; shards write disjoint
// column blocks and aggregate ranges, so the result is bit-identical to
// the serial build.
func (c *costCache) build(g graph.Store, par []*graph.BatchBFSScratch) {
	n := c.n
	if len(par) > 1 {
		graph.FillUnreachable(c.d)
		groups := (n + 63) / 64
		span := (groups + len(par) - 1) / len(par) * 64
		var wg sync.WaitGroup
		for w := 0; w*span < n; w++ {
			lo := w * span
			hi := lo + span
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int, s *graph.BatchBFSScratch) {
				defer wg.Done()
				g.AllSourcesBFSShard(lo, hi, c.d, c.res, s)
			}(lo, hi, par[w])
		}
		wg.Wait()
	} else {
		g.AllSourcesBFSFlat(c.d, c.res, c.batch)
	}
	for u := 0; u < n; u++ {
		r := c.res[u]
		c.sum[u] = r.Sum
		c.ecc[u] = r.Ecc
		c.reached[u] = r.Reached
	}
}

func (c *costCache) row(u int) []int32 { return c.d[u*c.n : (u+1)*c.n] }

// Row implements game.DistOracle. Run keeps the cache exact across moves
// (update runs before any subsequent scan), so scans may trust it.
func (c *costCache) Row(u int) []int32 { return c.row(u) }

// refreshRow recomputes row u by BFS and its aggregates.
func (c *costCache) refreshRow(g graph.Store, u int) {
	r := g.BFS(u, c.row(u), c.bfs)
	c.sum[u] = r.Sum
	c.ecc[u] = r.Ecc
	c.reached[u] = r.Reached
}

// flushRefresh re-searches every row queued in c.refresh with one batched
// pass and rebuilds their aggregates. A single queued row falls back to a
// plain BFS, which skips the kernel's per-call CSR snapshot.
func (c *costCache) flushRefresh(g graph.Store) {
	switch len(c.refresh) {
	case 0:
		return
	case 1:
		c.refreshRow(g, c.refresh[0])
	default:
		c.rows = c.rows[:0]
		for _, a := range c.refresh {
			c.rows = append(c.rows, c.row(a))
		}
		res := c.res[:len(c.refresh)]
		g.BatchBFS(c.refresh, c.rows, res, c.batch)
		for i, a := range c.refresh {
			c.sum[a] = res[i].Sum
			c.ecc[a] = res[i].Ecc
			c.reached[a] = res[i].Reached
		}
	}
	c.refresh = c.refresh[:0]
}

// aggregateRow rebuilds the aggregates of row u from the matrix.
func (c *costCache) aggregateRow(u int) {
	row := c.row(u)
	var sum int64
	var ecc int32
	reached := 0
	for _, dv := range row {
		if dv >= graph.Unreachable {
			continue
		}
		reached++
		sum += int64(dv)
		if dv > ecc {
			ecc = dv
		}
	}
	c.sum[u] = sum
	c.ecc[u] = ecc
	c.reached[u] = reached
}

// distCost returns the distance cost of agent u under the given kind,
// matching game cost semantics (DistInf when the network is disconnected).
func (c *costCache) distCost(u int, kind game.DistKind) int64 {
	if c.reached[u] < c.n {
		return game.DistInf
	}
	if kind == game.Sum {
		return c.sum[u]
	}
	return int64(c.ecc[u])
}

// update folds an applied move into the matrix; g must be post-move.
func (c *costCache) update(g graph.Store, mv game.Move) {
	u := mv.Agent
	for _, y := range mv.Add {
		c.addEdge(u, y)
	}
	switch len(mv.Drop) {
	case 0:
	case 1:
		c.dropEdge(g, u, mv.Drop[0])
	default:
		// Multi-edge removals (Buy, bilateral strategy changes) fall back
		// to re-searching every row that might have used a dropped edge —
		// all collected first, then re-run in one batched pass.
		c.refresh = c.refresh[:0]
		for a := 0; a < c.n; a++ {
			row := c.row(a)
			for _, x := range mv.Drop {
				// The edge {u,x} existed before removal, so its endpoint
				// distances from a differ by at most one; they differ by
				// exactly one iff the edge lay on a shortest-path tree of
				// a.
				if row[u] != row[x] {
					c.refresh = append(c.refresh, a)
					break
				}
			}
		}
		c.flushRefresh(g)
	}
}

// dropEdge folds the removal of edge {u,x} into the matrix; g must be the
// post-move network. An affected row keeps every entry with a shortest
// path avoiding the edge — entry v survives unless
// d(a,p) + 1 + d(q,v) = d(a,v) with p the nearer endpoint and q the
// farther — and the damaged entries are settled by PartialBFS from the
// survivors, costing O(n) plus local work instead of a full search. Rows
// with more than n/2 damaged entries are cheaper to re-search outright;
// they are queued and re-run together in one batched BFS pass.
func (c *costCache) dropEdge(g graph.Store, u, x int) {
	n := c.n
	copy(c.oldU, c.row(u))
	copy(c.oldX, c.row(x))
	c.refresh = c.refresh[:0]
	for a := 0; a < n; a++ {
		row := c.row(a)
		au, ax := row[u], row[x]
		if au == ax {
			continue // the edge was on no shortest-path tree of a
		}
		oldQ := c.oldX
		ap := au
		if ax < au {
			oldQ = c.oldU
			ap = ax
		}
		c.suspect.Reset()
		damaged := 0
		for v := 0; v < n; v++ {
			if row[v] == ap+1+oldQ[v] {
				row[v] = graph.Unreachable
				c.suspect.Set(v)
				damaged++
			}
		}
		if damaged == 0 {
			continue
		}
		if damaged > n/2 {
			c.refresh = append(c.refresh, a)
			continue
		}
		g.PartialBFS(row, c.suspect, c.repair)
		c.aggregateRow(a)
	}
	c.flushRefresh(g)
}

// addEdge applies the exact single-edge-insertion rule for {u,y}. Working
// in place is sound: every already-updated value is a true post-insertion
// distance, so the minima never undershoot.
func (c *costCache) addEdge(u, y int) {
	n := c.n
	ru := c.row(u)
	ry := c.row(y)
	for a := 0; a < n; a++ {
		row := c.row(a)
		au, ay := row[u], row[y]
		if au >= graph.Unreachable && ay >= graph.Unreachable {
			continue
		}
		// The new edge shortens a path from a only if it bridges endpoint
		// distances at least two apart: otherwise a->u->y->b is already
		// matched by the triangle route through the nearer endpoint.
		if d := au - ay; d >= -1 && d <= 1 {
			continue
		}
		changed := false
		for b := 0; b < n; b++ {
			best := row[b]
			if v := au + 1 + ry[b]; v < best {
				best = v
			}
			if v := ay + 1 + ru[b]; v < best {
				best = v
			}
			if best < row[b] {
				row[b] = best
				changed = true
			}
		}
		if changed {
			c.aggregateRow(a)
		}
	}
}
