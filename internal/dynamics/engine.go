package dynamics

import (
	"sync"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// engine carries the per-run acceleration state of a process: a worker pool
// with per-worker scratches over which happiness probes are fanned out, and
// an incrementally maintained all-pairs distance matrix from which the cost
// policies read agent costs instead of re-running n breadth-first searches
// every step.
//
// Both accelerations are exact: probe fan-out preserves the serial probe
// order (waves are collected in order, so results are identical at any
// worker count), and the distance cache reproduces BFS distances to the
// bit, so seeded runs and TieFirst/TieLast traces match the unaccelerated
// process step for step.
type engine struct {
	g       *graph.Graph
	gm      game.Game
	workers int
	scr     []*game.Scratch
	// pure records that the game's HasImproving never mutates the graph,
	// the precondition for probing a shared graph concurrently.
	pure bool
	// halvesOK records that the game's edge-cost term is derivable from
	// degrees, the precondition for serving costs from the distance cache.
	halvesOK bool
	cache    *costCache
	probe    []bool
}

func newEngine(g *graph.Graph, gm game.Game, workers int) *engine {
	if workers < 1 {
		workers = 1
	}
	e := &engine{
		g:       g,
		gm:      gm,
		workers: workers,
		scr:     make([]*game.Scratch, workers),
		pure:    game.ProbesPurely(gm),
	}
	for i := range e.scr {
		e.scr[i] = game.NewScratch(g.N())
	}
	// Naive-wrapped games deliberately run without the distance cache:
	// the wrap marks a regime (see game.PreferNaiveScan) where cache
	// maintenance costs more than the BFS costs it replaces.
	if g.N() > 0 && !game.IsNaive(gm) {
		_, e.halvesOK = game.EdgeCostHalves(gm, g, 0)
	}
	e.probe = make([]bool, workers)
	return e
}

// scratch returns the primary scratch, for serial work.
func (e *engine) scratch() *game.Scratch { return e.scr[0] }

// cost returns agent u's current cost, served from the distance cache when
// the game's cost model allows it. The first call builds the cache and
// installs it as the scratches' distance oracle, which lets delta scans
// score additions searchlessly and prune hopeless swap targets.
func (e *engine) cost(u int) game.Cost {
	if !e.halvesOK {
		return e.gm.Cost(e.g, u, e.scr[0])
	}
	if e.cache == nil {
		e.cache = newCostCache(e.g)
		for _, s := range e.scr {
			s.SetDistOracle(e.cache)
		}
	}
	h, _ := game.EdgeCostHalves(e.gm, e.g, u)
	return game.Cost{Halves: h, Dist: e.cache.distCost(u, e.gm.DistKind())}
}

// afterMove folds an applied move into the cache; g must already be in the
// post-move state.
func (e *engine) afterMove(mv game.Move) {
	if e.cache != nil {
		e.cache.update(e.g, mv)
	}
}

// firstUnhappy returns the first agent of order with an improving move, or
// -1. With multiple workers and a pure-probing game, probes run in waves of
// one agent per worker; the waves are scanned in order, so the result is
// independent of scheduling.
func (e *engine) firstUnhappy(order []int) int {
	if e.workers <= 1 || !e.pure || len(order) < 2 {
		s := e.scr[0]
		for _, u := range order {
			if e.gm.HasImproving(e.g, u, s) {
				return u
			}
		}
		return -1
	}
	// Wave sizes ramp up exponentially: the first probed agent is very
	// often already the mover, so speculation only widens while a streak
	// of happy agents keeps paying for it.
	wave := 1
	for base := 0; base < len(order); base += wave {
		if base > 0 {
			wave *= 2
			if wave > e.workers {
				wave = e.workers
			}
		}
		end := base + wave
		if end > len(order) {
			end = len(order)
		}
		chunk := order[base:end]
		if len(chunk) == 1 {
			if e.gm.HasImproving(e.g, chunk[0], e.scr[0]) {
				return chunk[0]
			}
			continue
		}
		var wg sync.WaitGroup
		for i := range chunk {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				e.probe[i] = e.gm.HasImproving(e.g, chunk[i], e.scr[i])
			}(i)
		}
		wg.Wait()
		for i := range chunk {
			if e.probe[i] {
				return chunk[i]
			}
		}
	}
	return -1
}

// unhappy appends every unhappy agent to dst in increasing order, probing
// in parallel waves when possible.
func (e *engine) unhappy(dst []int) []int {
	n := e.g.N()
	if e.workers <= 1 || !e.pure {
		s := e.scr[0]
		for u := 0; u < n; u++ {
			if e.gm.HasImproving(e.g, u, s) {
				dst = append(dst, u)
			}
		}
		return dst
	}
	for base := 0; base < n; base += e.workers {
		end := base + e.workers
		if end > n {
			end = n
		}
		var wg sync.WaitGroup
		for i := 0; i < end-base; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				e.probe[i] = e.gm.HasImproving(e.g, base+i, e.scr[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < end-base; i++ {
			if e.probe[i] {
				dst = append(dst, base+i)
			}
		}
	}
	return dst
}

// costCache is the incrementally maintained all-pairs shortest-path state
// of the current network: the full distance matrix plus the per-source
// aggregates that agent distance costs are read from.
//
// Added edges are folded in with the exact single-insertion rule
// d'(a,b) = min(d(a,b), d(a,u)+1+d(y,b), d(a,y)+1+d(u,b)); for removed
// edges {u,x}, a source row can only change if some shortest path from it
// crossed the edge, which requires |d(a,u) - d(a,x)| = 1, and exactly the
// rows meeting that are re-run by BFS on the post-move network.
type costCache struct {
	n       int
	d       []int32 // row-major distance matrix
	sum     []int64 // per-source sum of distances within its component
	ecc     []int32 // per-source eccentricity within its component
	reached []int   // per-source component size (including the source)
	bfs     *graph.BFSScratch
	repair  *graph.RepairScratch
	suspect graph.Bitset
	oldU    []int32 // pre-removal rows of the dropped edge's endpoints
	oldX    []int32
}

func newCostCache(g *graph.Graph) *costCache {
	n := g.N()
	c := &costCache{
		n:       n,
		d:       make([]int32, n*n),
		sum:     make([]int64, n),
		ecc:     make([]int32, n),
		reached: make([]int, n),
		bfs:     graph.NewBFSScratch(n),
		repair:  graph.NewRepairScratch(n),
		suspect: graph.NewBitset(n),
		oldU:    make([]int32, n),
		oldX:    make([]int32, n),
	}
	for u := 0; u < n; u++ {
		c.refreshRow(g, u)
	}
	return c
}

func (c *costCache) row(u int) []int32 { return c.d[u*c.n : (u+1)*c.n] }

// Row implements game.DistOracle. Run keeps the cache exact across moves
// (update runs before any subsequent scan), so scans may trust it.
func (c *costCache) Row(u int) []int32 { return c.row(u) }

// refreshRow recomputes row u by BFS and its aggregates.
func (c *costCache) refreshRow(g *graph.Graph, u int) {
	r := g.BFS(u, c.row(u), c.bfs)
	c.sum[u] = r.Sum
	c.ecc[u] = r.Ecc
	c.reached[u] = r.Reached
}

// aggregateRow rebuilds the aggregates of row u from the matrix.
func (c *costCache) aggregateRow(u int) {
	row := c.row(u)
	var sum int64
	var ecc int32
	reached := 0
	for _, dv := range row {
		if dv >= graph.Unreachable {
			continue
		}
		reached++
		sum += int64(dv)
		if dv > ecc {
			ecc = dv
		}
	}
	c.sum[u] = sum
	c.ecc[u] = ecc
	c.reached[u] = reached
}

// distCost returns the distance cost of agent u under the given kind,
// matching game cost semantics (DistInf when the network is disconnected).
func (c *costCache) distCost(u int, kind game.DistKind) int64 {
	if c.reached[u] < c.n {
		return game.DistInf
	}
	if kind == game.Sum {
		return c.sum[u]
	}
	return int64(c.ecc[u])
}

// update folds an applied move into the matrix; g must be post-move.
func (c *costCache) update(g *graph.Graph, mv game.Move) {
	u := mv.Agent
	for _, y := range mv.Add {
		c.addEdge(u, y)
	}
	switch len(mv.Drop) {
	case 0:
	case 1:
		c.dropEdge(g, u, mv.Drop[0])
	default:
		// Multi-edge removals (Buy, bilateral strategy changes) fall back
		// to re-searching every row that might have used a dropped edge.
		for a := 0; a < c.n; a++ {
			row := c.row(a)
			for _, x := range mv.Drop {
				// The edge {u,x} existed before removal, so its endpoint
				// distances from a differ by at most one; they differ by
				// exactly one iff the edge lay on a shortest-path tree of
				// a.
				if row[u] != row[x] {
					c.refreshRow(g, a)
					break
				}
			}
		}
	}
}

// dropEdge folds the removal of edge {u,x} into the matrix; g must be the
// post-move network. An affected row keeps every entry with a shortest
// path avoiding the edge — entry v survives unless
// d(a,p) + 1 + d(q,v) = d(a,v) with p the nearer endpoint and q the
// farther — and the damaged entries are settled by PartialBFS from the
// survivors, costing O(n) plus local work instead of a full search.
func (c *costCache) dropEdge(g *graph.Graph, u, x int) {
	n := c.n
	copy(c.oldU, c.row(u))
	copy(c.oldX, c.row(x))
	for a := 0; a < n; a++ {
		row := c.row(a)
		au, ax := row[u], row[x]
		if au == ax {
			continue // the edge was on no shortest-path tree of a
		}
		oldQ := c.oldX
		ap := au
		if ax < au {
			oldQ = c.oldU
			ap = ax
		}
		c.suspect.Reset()
		damaged := 0
		for v := 0; v < n; v++ {
			if row[v] == ap+1+oldQ[v] {
				row[v] = graph.Unreachable
				c.suspect.Set(v)
				damaged++
			}
		}
		if damaged == 0 {
			continue
		}
		if damaged > n/2 {
			c.refreshRow(g, a)
			continue
		}
		g.PartialBFS(row, c.suspect, c.repair)
		c.aggregateRow(a)
	}
}

// addEdge applies the exact single-edge-insertion rule for {u,y}. Working
// in place is sound: every already-updated value is a true post-insertion
// distance, so the minima never undershoot.
func (c *costCache) addEdge(u, y int) {
	n := c.n
	ru := c.row(u)
	ry := c.row(y)
	for a := 0; a < n; a++ {
		row := c.row(a)
		au, ay := row[u], row[y]
		if au >= graph.Unreachable && ay >= graph.Unreachable {
			continue
		}
		// The new edge shortens a path from a only if it bridges endpoint
		// distances at least two apart: otherwise a->u->y->b is already
		// matched by the triangle route through the nearer endpoint.
		if d := au - ay; d >= -1 && d <= 1 {
			continue
		}
		changed := false
		for b := 0; b < n; b++ {
			best := row[b]
			if v := au + 1 + ry[b]; v < best {
				best = v
			}
			if v := ay + 1 + ru[b]; v < best {
				best = v
			}
			if best < row[b] {
				row[b] = best
				changed = true
			}
		}
		if changed {
			c.aggregateRow(a)
		}
	}
}
