package dynamics

import (
	"fmt"

	"ncg/internal/graph"
)

// BackendSpec selects the adjacency representation a run's working network
// uses: the dense bitset matrix or the sparse CSR lists. The two backends
// enumerate neighbours in the same deterministic order, so every trace,
// fingerprint and record is bit-identical between them — the choice only
// moves the memory/speed trade-off.
type BackendSpec int

const (
	// BackendAuto matches the backend to the distance oracle: sparse when
	// the resolved oracle is landmark mode (the large-n regime the CSR
	// backend exists for), dense otherwise. The zero value, so configs
	// that never mention backends keep their existing dense behaviour at
	// grid sizes.
	BackendAuto BackendSpec = iota
	// BackendDense is the bitset adjacency matrix: O(n²/8) memory,
	// word-parallel BFS. The right choice whenever the matrix fits.
	BackendDense
	// BackendSparse is the CSR adjacency-list backend: O(n+m) memory,
	// queue BFS. The only choice at n where O(n²/8) does not fit.
	BackendSparse
)

func (b BackendSpec) String() string {
	switch b {
	case BackendDense:
		return "dense"
	case BackendSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// ParseBackendSpec parses the -backend flag syntax: "auto" (or empty),
// "dense", or "sparse".
func ParseBackendSpec(s string) (BackendSpec, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "dense":
		return BackendDense, nil
	case "sparse":
		return BackendSparse, nil
	}
	return 0, fmt.Errorf("dynamics: unknown backend %q (want auto, dense, or sparse)", s)
}

// Resolve pins the auto mode for an n-vertex run: sparse iff the oracle
// spec resolves to landmark mode at that size. Dense runs keep the exact
// matrix's searchless scoring; landmark runs pair naturally with the
// O(n+m) representation, since both exist for the regime where O(n²)
// anything is the wall.
func (b BackendSpec) Resolve(n int, oracle OracleSpec) BackendSpec {
	if b != BackendAuto {
		return b
	}
	if oracle.resolve(n).Mode == OracleLandmark {
		return BackendSparse
	}
	return BackendDense
}

// Materialize returns the working representation of g under the spec
// resolved for g's size: g itself for dense, a CSR copy for sparse. In
// sparse mode the caller's dense graph is left untouched — read the final
// state from the returned Store, not from g.
func (b BackendSpec) Materialize(g *graph.Graph, oracle OracleSpec) graph.Store {
	if b.Resolve(g.N(), oracle) == BackendSparse {
		return graph.NewSparseFrom(g)
	}
	return g
}
