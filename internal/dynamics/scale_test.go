package dynamics

import (
	"os"
	"runtime"
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// Large-n scale checks. The n=10^5 cases are opt-in (NCG_SCALE_SMOKE /
// NCG_SCALE_BENCH): they allocate multi-gigabyte bitset adjacencies and run
// for tens of seconds, which the default `go test ./...` and the CI bench
// smoke (-benchtime 1x) must not pay. CI runs the smoke in a dedicated
// timeout-bounded step.

const scaleN = 100_000

func scaleGraph() *graph.Graph {
	return gen.SparseNetwork(scaleN, scaleN/10, gen.NewRand(1))
}

// TestScaleSmokeBestResponseStep: one full SUM-SG best-response step at
// n=10^5 on a sparse network under the landmark oracle — the headline
// capability of landmark mode. Exact mode would need an n² distance matrix
// (~40 GB) before the first scan.
func TestScaleSmokeBestResponseStep(t *testing.T) {
	if os.Getenv("NCG_SCALE_SMOKE") == "" {
		t.Skip("set NCG_SCALE_SMOKE=1 to run the n=1e5 smoke test")
	}
	g := scaleGraph()
	res := Run(g, Config{
		Game:     game.NewSwap(game.Sum),
		Policy:   MinIndex{},
		MaxSteps: 1,
		Oracle:   OracleSpec{Mode: OracleLandmark, K: 16},
	})
	if res.Steps != 1 && !res.Converged {
		t.Fatalf("scale smoke made no progress: %+v", res)
	}
}

// TestOracleMemoryBudget pins the oracle's O(kn) memory contract: building
// the landmark oracle with a warm batch scratch must allocate on the order
// of the k×n row matrix (4kn bytes), nowhere near the 4n² of an exact
// distance matrix. TotalAlloc is monotonic, so the measurement is immune to
// GC timing.
func TestOracleMemoryBudget(t *testing.T) {
	const n, k = 8192, 16
	g := gen.SparseNetwork(n, n/8, gen.NewRand(2))
	s := graph.NewBatchBFSScratch(n)
	graph.BuildLandmarks(g, k, s) // warm the scratch arenas

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	lm := graph.BuildLandmarks(g, k, s)
	runtime.ReadMemStats(&after)
	if !lm.Complete() {
		t.Fatal("oracle incomplete on a connected graph")
	}
	delta := int64(after.TotalAlloc) - int64(before.TotalAlloc)
	budget := int64((4*k + 64) * n) // rows + ids/suspects/struct slack
	if delta > budget {
		t.Fatalf("oracle build allocated %d bytes, budget %d (O(kn) contract)", delta, budget)
	}
	runtime.KeepAlive(lm)
}

// BenchmarkOracleBuild8192 / BenchmarkLandmarkScan8192 are the CI-sized
// points of the oracle trajectory (recorded in BENCH_baseline.json); the
// 1e5 variants below are the same measurements at headline scale, opt-in
// because of their multi-gigabyte footprint.
func BenchmarkOracleBuild8192(b *testing.B) {
	const n = 8192
	g := gen.SparseNetwork(n, n/8, gen.NewRand(2))
	s := graph.NewBatchBFSScratch(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm := graph.BuildLandmarks(g, 16, s)
		if !lm.Complete() {
			b.Fatal("oracle incomplete")
		}
	}
}

func BenchmarkLandmarkScan8192(b *testing.B) {
	const n = 8192
	g := gen.SparseNetwork(n, n/8, gen.NewRand(2))
	lm := graph.BuildLandmarks(g, 16, nil)
	gm := game.NewSwap(game.Sum)
	s := game.NewScratch(n)
	s.SetLandmarks(lm)
	var moves []game.Move
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves, _ = gm.BestMoves(g, 0, s, moves[:0])
	}
	runtime.KeepAlive(moves)
}

func BenchmarkOracleBuild1e5(b *testing.B) {
	if os.Getenv("NCG_SCALE_BENCH") == "" {
		b.Skip("set NCG_SCALE_BENCH=1 to run the n=1e5 benchmarks")
	}
	g := scaleGraph()
	s := graph.NewBatchBFSScratch(scaleN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm := graph.BuildLandmarks(g, 16, s)
		if !lm.Complete() {
			b.Fatal("oracle incomplete")
		}
	}
}

// BenchmarkLandmarkScan1e5 times one filtered best-response scan (BestMoves
// of agent 0) at n=10^5 with the landmark filter armed.
func BenchmarkLandmarkScan1e5(b *testing.B) {
	if os.Getenv("NCG_SCALE_BENCH") == "" {
		b.Skip("set NCG_SCALE_BENCH=1 to run the n=1e5 benchmarks")
	}
	g := scaleGraph()
	lm := graph.BuildLandmarks(g, 16, nil)
	gm := game.NewSwap(game.Sum)
	s := game.NewScratch(scaleN)
	s.SetLandmarks(lm)
	var moves []game.Move
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves, _ = gm.BestMoves(g, 0, s, moves[:0])
	}
	runtime.KeepAlive(moves)
}
