package dynamics

import (
	"os"
	"reflect"
	"runtime"
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// Large-n scale checks. The n=10^5 cases are opt-in (NCG_SCALE_SMOKE /
// NCG_SCALE_BENCH): they allocate multi-gigabyte bitset adjacencies and run
// for tens of seconds, which the default `go test ./...` and the CI bench
// smoke (-benchtime 1x) must not pay. CI runs the smoke in a dedicated
// timeout-bounded step.

const scaleN = 100_000

func scaleGraph() *graph.Graph {
	return mustSparse(scaleN, scaleN/10, 1)
}

// mustSparse unwraps the generators' typed error for fixed-feasible test
// parameters.
func mustSparse(n, extra int, seed int64) *graph.Graph {
	g, err := gen.SparseNetwork(n, extra, gen.NewRand(seed))
	if err != nil {
		panic(err)
	}
	return g
}

// TestScaleSmokeBestResponseStep: one full SUM-SG best-response step at
// n=10^5 on a sparse network under the landmark oracle — the headline
// capability of landmark mode. Exact mode would need an n² distance matrix
// (~40 GB) before the first scan.
func TestScaleSmokeBestResponseStep(t *testing.T) {
	if os.Getenv("NCG_SCALE_SMOKE") == "" {
		t.Skip("set NCG_SCALE_SMOKE=1 to run the n=1e5 smoke test")
	}
	g := scaleGraph()
	res := Run(g, Config{
		Game:     game.NewSwap(game.Sum),
		Policy:   MinIndex{},
		MaxSteps: 1,
		Oracle:   OracleSpec{Mode: OracleLandmark, K: 16},
	})
	if res.Steps != 1 && !res.Converged {
		t.Fatalf("scale smoke made no progress: %+v", res)
	}
}

// TestScaleSmokeMillionAgentStep: one SUM-SG best-response step at n=10^6
// on the CSR backend, built by gen.SparseCSR with no dense intermediate.
// The dense bitset matrix alone would need ~125 GB here; the whole sparse
// run must keep the mapped heap under 4 GB. HeapSys is the high-water mark
// of memory the runtime obtained for the heap, so the check sees the peak,
// not the post-GC residue.
func TestScaleSmokeMillionAgentStep(t *testing.T) {
	if os.Getenv("NCG_SCALE_SMOKE") == "" {
		t.Skip("set NCG_SCALE_SMOKE=1 to run the n=1e6 smoke test")
	}
	const n = 1_000_000
	sp, err := gen.SparseCSR(n, n/10, gen.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(sp, Config{
		Game:     game.NewSwap(game.Sum),
		Policy:   MinIndex{},
		MaxSteps: 1,
		Oracle:   OracleSpec{Mode: OracleLandmark, K: 16},
	})
	if res.Steps != 1 && !res.Converged {
		t.Fatalf("million-agent smoke made no progress: %+v", res)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapSys > 4<<30 {
		t.Fatalf("peak heap %.2f GB exceeds the 4 GB ceiling", float64(ms.HeapSys)/(1<<30))
	}
	t.Logf("n=%d step on CSR backend: %d step(s), peak heap %.2f GB", n, res.Steps, float64(ms.HeapSys)/(1<<30))
}

// playTrace runs landmark-mode best-response dynamics on g and returns the
// applied (mover, move) sequence plus the final canonical encoding.
func playTrace(g graph.Store, k, maxSteps int) ([]traceStep, []uint64) {
	var trace []traceStep
	Run(g, Config{
		Game:         game.NewSwap(game.Sum),
		Policy:       MinIndex{},
		MaxSteps:     maxSteps,
		DetectCycles: true,
		Oracle:       OracleSpec{Mode: OracleLandmark, K: k},
		OnStep: func(step, mover int, mv game.Move, _ graph.Store) {
			trace = append(trace, traceStep{mover, mv})
		},
	})
	return trace, g.AppendOwnedRows(nil)
}

type traceStep struct {
	mover int
	mv    game.Move
}

func diffTraces(t *testing.T, dense, sparse []traceStep, de, se []uint64) {
	t.Helper()
	if len(dense) != len(sparse) {
		t.Fatalf("trajectory lengths diverged: dense %d moves, sparse %d", len(dense), len(sparse))
	}
	for i := range dense {
		if !reflect.DeepEqual(dense[i], sparse[i]) {
			t.Fatalf("move %d diverged: dense %+v, sparse %+v", i, dense[i], sparse[i])
		}
	}
	if !reflect.DeepEqual(de, se) {
		t.Fatalf("final encodings diverged after identical moves")
	}
}

// TestSparseBackendParity: the acceptance bit-identity check at small n —
// landmark-mode best-response dynamics played on the dense and CSR
// backends from the same start must apply the same move sequence and end
// in the same canonical encoding.
func TestSparseBackendParity(t *testing.T) {
	for _, n := range []int{16, 48, 96} {
		start := mustSparse(n, n/4, int64(n))
		dt, de := playTrace(start.Clone(), 8, 400)
		st, se := playTrace(graph.NewSparseFrom(start), 8, 400)
		diffTraces(t, dt, st, de, se)
		if len(dt) == 0 {
			t.Fatalf("n=%d: start network was already stable; parity test exercised nothing", n)
		}
	}
}

// TestScaleSmokeSparseParity1e5 is the same move-for-move comparison at
// n=10^5: a landmark run on the sparse backend must be bit-identical to
// the dense run. Env-gated — the dense bitsets alone are ~2.5 GB.
func TestScaleSmokeSparseParity1e5(t *testing.T) {
	if os.Getenv("NCG_SCALE_SMOKE") == "" {
		t.Skip("set NCG_SCALE_SMOKE=1 to run the n=1e5 parity test")
	}
	start := scaleGraph()
	dt, de := playTrace(start.Clone(), 16, 2)
	st, se := playTrace(graph.NewSparseFrom(start), 16, 2)
	diffTraces(t, dt, st, de, se)
	if len(dt) == 0 {
		t.Fatal("n=1e5 start network was already stable; parity test exercised nothing")
	}
}

// TestOracleMemoryBudget pins the oracle's O(kn) memory contract: building
// the landmark oracle with a warm batch scratch must allocate on the order
// of the k×n row matrix (4kn bytes), nowhere near the 4n² of an exact
// distance matrix. TotalAlloc is monotonic, so the measurement is immune to
// GC timing.
func TestOracleMemoryBudget(t *testing.T) {
	const n, k = 8192, 16
	g := mustSparse(n, n/8, 2)
	s := graph.NewBatchBFSScratch(n)
	graph.BuildLandmarks(g, k, s) // warm the scratch arenas

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	lm := graph.BuildLandmarks(g, k, s)
	runtime.ReadMemStats(&after)
	if !lm.Complete() {
		t.Fatal("oracle incomplete on a connected graph")
	}
	delta := int64(after.TotalAlloc) - int64(before.TotalAlloc)
	budget := int64((4*k + 64) * n) // rows + ids/suspects/struct slack
	if delta > budget {
		t.Fatalf("oracle build allocated %d bytes, budget %d (O(kn) contract)", delta, budget)
	}
	runtime.KeepAlive(lm)
}

// BenchmarkOracleBuild8192 / BenchmarkLandmarkScan8192 are the CI-sized
// points of the oracle trajectory (recorded in BENCH_baseline.json); the
// 1e5 variants below are the same measurements at headline scale, opt-in
// because of their multi-gigabyte footprint.
func BenchmarkOracleBuild8192(b *testing.B) {
	const n = 8192
	g := mustSparse(n, n/8, 2)
	s := graph.NewBatchBFSScratch(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm := graph.BuildLandmarks(g, 16, s)
		if !lm.Complete() {
			b.Fatal("oracle incomplete")
		}
	}
}

func BenchmarkLandmarkScan8192(b *testing.B) {
	const n = 8192
	g := mustSparse(n, n/8, 2)
	lm := graph.BuildLandmarks(g, 16, nil)
	gm := game.NewSwap(game.Sum)
	s := game.NewScratch(n)
	s.SetLandmarks(lm)
	var moves []game.Move
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves, _ = gm.BestMoves(g, 0, s, moves[:0])
	}
	runtime.KeepAlive(moves)
}

// BenchmarkSparseCachelessStep times one landmark-filtered best-response
// scan on the CSR backend at n=8192 — the per-step cost of sparse
// dynamics, which never build the all-pairs distance cache. Its dense
// counterpart is BenchmarkLandmarkScan8192; the two should track each
// other, since the scan cost is BFS-bound on both backends.
func BenchmarkSparseCachelessStep(b *testing.B) {
	const n = 8192
	sp, err := gen.SparseCSR(n, n/8, gen.NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	lm := graph.BuildLandmarks(sp, 16, nil)
	gm := game.NewSwap(game.Sum)
	s := game.NewScratch(n)
	s.SetLandmarks(lm)
	var moves []game.Move
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves, _ = gm.BestMoves(sp, 0, s, moves[:0])
	}
	runtime.KeepAlive(moves)
}

func BenchmarkOracleBuild1e5(b *testing.B) {
	if os.Getenv("NCG_SCALE_BENCH") == "" {
		b.Skip("set NCG_SCALE_BENCH=1 to run the n=1e5 benchmarks")
	}
	g := scaleGraph()
	s := graph.NewBatchBFSScratch(scaleN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm := graph.BuildLandmarks(g, 16, s)
		if !lm.Complete() {
			b.Fatal("oracle incomplete")
		}
	}
}

// BenchmarkLandmarkScan1e5 times one filtered best-response scan (BestMoves
// of agent 0) at n=10^5 with the landmark filter armed.
func BenchmarkLandmarkScan1e5(b *testing.B) {
	if os.Getenv("NCG_SCALE_BENCH") == "" {
		b.Skip("set NCG_SCALE_BENCH=1 to run the n=1e5 benchmarks")
	}
	g := scaleGraph()
	lm := graph.BuildLandmarks(g, 16, nil)
	gm := game.NewSwap(game.Sum)
	s := game.NewScratch(scaleN)
	s.SetLandmarks(lm)
	var moves []game.Move
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves, _ = gm.BestMoves(g, 0, s, moves[:0])
	}
	runtime.KeepAlive(moves)
}
