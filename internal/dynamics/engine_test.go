package dynamics

import (
	"fmt"
	"math/rand"
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// plainPolicy hides a policy's engine fast path, forcing Run through the
// serial Pick interface, so tests can compare the two paths.
type plainPolicy struct{ p Policy }

func (pp plainPolicy) Name() string { return pp.p.Name() }

func (pp plainPolicy) Pick(g graph.Store, gm game.Game, s *game.Scratch, r *rand.Rand) int {
	return pp.p.Pick(g, gm, s, r)
}

// traceOf runs one process and records its full trajectory.
func traceOf(mk func() *graph.Graph, cfg Config) (Result, []string, *graph.Graph) {
	var steps []string
	g := mk()
	cfg.OnStep = func(step, mover int, mv game.Move, sg graph.Store) {
		steps = append(steps, fmt.Sprintf("%d:%d:%v:%x", step, mover, mv, sg.(*graph.Graph).Hash()))
	}
	res := Run(g, cfg)
	return res, steps, g
}

// engineRunConfigs spans games, kinds, policies and tie rules whose seeded
// traces must not depend on the probing mode.
func engineRunConfigs() []Config {
	return []Config{
		{Game: game.NewSwap(game.Max), Policy: MaxCostDeterministic{}, Tie: TieFirst},
		{Game: game.NewSwap(game.Sum), Policy: MaxCost{}, Tie: TieRandom, Seed: 5},
		{Game: game.NewAsymSwap(game.Sum), Policy: MaxCost{}, Tie: TieLast, Seed: 9},
		{Game: game.NewAsymSwap(game.Max), Policy: MinIndex{}, Tie: TieFirst},
		{Game: game.NewGreedyBuy(game.Sum, game.NewAlpha(24, 4)), Policy: MaxCost{}, Tie: TieRandom, Seed: 3},
		{Game: game.NewGreedyBuy(game.Max, game.NewAlpha(24, 10)), Policy: MaxCostDeterministic{}, Tie: TieLast},
		{Game: game.NewGreedyBuy(game.Sum, game.NewAlpha(24, 1)), Policy: Random{}, Tie: TieRandom, Seed: 7},
	}
}

// TestParallelRunIsBitIdentical: for every configuration, the trace of a
// seeded run must be step-for-step identical between serial probing, the
// engine fast path, and parallel probing at several worker counts.
func TestParallelRunIsBitIdentical(t *testing.T) {
	mk := func() *graph.Graph { return gen.BudgetNetwork(24, 3, gen.NewRand(11)) }
	for ci, cfg := range engineRunConfigs() {
		base := cfg
		base.Policy = plainPolicy{cfg.Policy}
		wantRes, wantSteps, wantG := traceOf(mk, base)
		for _, workers := range []int{0, 1, 2, 4, 7} {
			c := cfg
			c.Workers = workers
			res, steps, g := traceOf(mk, c)
			if !resultsEqual(res, wantRes) {
				t.Fatalf("config %d workers %d: result %+v, want %+v", ci, workers, res, wantRes)
			}
			if len(steps) != len(wantSteps) {
				t.Fatalf("config %d workers %d: %d steps, want %d", ci, workers, len(steps), len(wantSteps))
			}
			for i := range steps {
				if steps[i] != wantSteps[i] {
					t.Fatalf("config %d workers %d step %d: %s, want %s", ci, workers, i, steps[i], wantSteps[i])
				}
			}
			if !g.Equal(wantG) {
				t.Fatalf("config %d workers %d: final networks differ", ci, workers)
			}
		}
	}
}

// Result.Kinds is a slice, so Result values cannot be compared with ==;
// compare the scalar fields and the kind trajectory explicitly.
func resultsEqual(a, b Result) bool {
	if a.Steps != b.Steps || a.Converged != b.Converged || a.Cycled != b.Cycled ||
		a.CycleLen != b.CycleLen || a.MoveKinds != b.MoveKinds || len(a.Kinds) != len(b.Kinds) {
		return false
	}
	for i := range a.Kinds {
		if a.Kinds[i] != b.Kinds[i] {
			return false
		}
	}
	return true
}

// TestCostCacheMatchesBFS: after every step of a run, the engine's
// incrementally maintained distance matrix must equal a from-scratch BFS
// matrix of the current network.
func TestCostCacheMatchesBFS(t *testing.T) {
	games := []game.Game{
		game.NewSwap(game.Sum),
		game.NewAsymSwap(game.Max),
		game.NewGreedyBuy(game.Sum, game.NewAlpha(18, 4)),
		game.NewGreedyBuy(game.Max, game.NewAlpha(18, 10)),
	}
	for gi, gm := range games {
		g := gen.RandomConnected(18, 30, gen.NewRand(int64(gi)+2))
		e := newEngine(g, gm, 1)
		check := func(where string) {
			for u := 0; u < g.N(); u++ {
				want := gm.Cost(g, u, game.NewScratch(g.N()))
				if got := e.cost(u); got != want {
					t.Fatalf("%s %s: cached cost of %d = %v, want %v", gm.Name(), where, u, got, want)
				}
			}
			for u := 0; u < g.N(); u++ {
				row := e.cache.row(u)
				for v, d := range g.Distances(u) {
					if row[v] != d {
						t.Fatalf("%s %s: d(%d,%d) = %d, want %d", gm.Name(), where, u, v, row[v], d)
					}
				}
			}
		}
		check("initial")
		s := game.NewScratch(g.N())
		r := rand.New(rand.NewSource(99))
		var moves []game.Move
		for step := 0; step < 40; step++ {
			mover := MinIndex{}.Pick(g, gm, s, r)
			if mover < 0 {
				break
			}
			moves, _ = gm.BestMoves(g, mover, s, moves[:0])
			mv := moves[r.Intn(len(moves))].Clone()
			game.Apply(g, mv)
			e.afterMove(mv)
			check(fmt.Sprintf("step %d (%v)", step, mv))
		}
	}
}

// TestCostCacheMultiDrop: Buy and bilateral strategy changes drop and add
// several edges in one move, exercising the cache's multi-edge removal
// fallback, which the single-drop games above never reach.
func TestCostCacheMultiDrop(t *testing.T) {
	games := []game.Game{
		game.NewBuy(game.Sum, game.NewAlpha(3, 2)),
		game.NewBuy(game.Max, game.AlphaInt(1)),
		game.NewBilateral(game.Sum, game.NewAlpha(3, 2)),
	}
	for gi, gm := range games {
		g := gen.RandomConnected(7, 9, gen.NewRand(int64(gi)+5))
		e := newEngine(g, gm, 1)
		if e.cost(0).Infinite() {
			t.Fatal("connected start")
		}
		s := game.NewScratch(g.N())
		r := rand.New(rand.NewSource(3))
		var moves []game.Move
		for step := 0; step < 15; step++ {
			mover := MinIndex{}.Pick(g, gm, s, r)
			if mover < 0 {
				break
			}
			moves, _ = gm.BestMoves(g, mover, s, moves[:0])
			mv := moves[r.Intn(len(moves))].Clone()
			game.Apply(g, mv)
			e.afterMove(mv)
			for u := 0; u < g.N(); u++ {
				want := gm.Cost(g, u, game.NewScratch(g.N()))
				if got := e.cost(u); got != want {
					t.Fatalf("%s step %d (%v): cost of %d = %v, want %v", gm.Name(), step, mv, u, got, want)
				}
				row := e.cache.row(u)
				for v, d := range g.Distances(u) {
					if row[v] != d {
						t.Fatalf("%s step %d (%v): d(%d,%d) = %d, want %d", gm.Name(), step, mv, u, v, row[v], d)
					}
				}
			}
		}
	}
}

// TestBuyRunIsBitIdentical: a Buy-game run through the engine path (cost
// cache + multi-drop updates) must match the engine-less reference.
func TestBuyRunIsBitIdentical(t *testing.T) {
	mk := func() *graph.Graph { return gen.RandomConnected(8, 12, gen.NewRand(21)) }
	cfg := Config{Game: game.NewBuy(game.Sum, game.NewAlpha(8, 3)), Policy: MaxCost{}, Tie: TieRandom, Seed: 13}
	base := cfg
	base.Policy = plainPolicy{cfg.Policy}
	wantRes, wantSteps, wantG := traceOf(mk, base)
	res, steps, g := traceOf(mk, cfg)
	if !resultsEqual(res, wantRes) || len(steps) != len(wantSteps) || !g.Equal(wantG) {
		t.Fatalf("engine run diverged: %+v vs %+v", res, wantRes)
	}
	for i := range steps {
		if steps[i] != wantSteps[i] {
			t.Fatalf("step %d: %s, want %s", i, steps[i], wantSteps[i])
		}
	}
}

// TestCostCacheDisconnection: moves that disconnect or reconnect the
// network (GBG deletions and buys) keep the cache exact across the
// Unreachable transitions.
func TestCostCacheDisconnection(t *testing.T) {
	g := graph.Path(6)
	gm := game.NewGreedyBuy(game.Sum, game.AlphaInt(1))
	e := newEngine(g, gm, 1)
	if e.cost(0).Infinite() {
		t.Fatal("path is connected")
	}
	// Delete the middle edge {2,3} (owned by 2 in graph.Path), then re-add.
	steps := []game.Move{
		{Agent: 2, Drop: []int{3}},
		{Agent: 2, Add: []int{3}},
		{Agent: 0, Drop: []int{1}},
		{Agent: 0, Add: []int{4}},
	}
	for _, mv := range steps {
		game.Apply(g, mv)
		e.afterMove(mv)
		for u := 0; u < g.N(); u++ {
			want := gm.Cost(g, u, game.NewScratch(g.N()))
			if got := e.cost(u); got != want {
				t.Fatalf("after %v: cost of %d = %v, want %v", mv, u, got, want)
			}
		}
	}
}

// TestUnhappyParallelMatchesSerial: the engine's wave-parallel unhappy-set
// collection must equal the serial scan.
func TestUnhappyParallelMatchesSerial(t *testing.T) {
	g := gen.BudgetNetwork(20, 2, gen.NewRand(4))
	gm := game.NewAsymSwap(game.Sum)
	s := game.NewScratch(20)
	want := Unhappy(g, gm, s)
	for _, workers := range []int{1, 2, 3, 8} {
		e := newEngine(g, gm, workers)
		got := e.unhappy(nil)
		if len(got) != len(want) {
			t.Fatalf("workers %d: unhappy %v, want %v", workers, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers %d: unhappy %v, want %v", workers, got, want)
			}
		}
	}
}

// TestNaiveFallbackPreservesTrace pins the fully deterministic MAX-SG path
// trace (Theorem 2.11 setting) across the engine's naive-fallback
// pre-check: the step counts below were recorded on the always-delta
// engine, and the fallback must reproduce them exactly.
func TestNaiveFallbackPreservesTrace(t *testing.T) {
	want := map[int]int{32: 111, 64: 299, 128: 743}
	for n, steps := range want {
		g := graph.Path(n)
		res := Run(g, Config{Game: game.NewSwap(game.Max), Policy: MaxCostDeterministic{}, Tie: TieFirst})
		if !res.Converged || res.Steps != steps {
			t.Errorf("n=%d: steps=%d converged=%v, want %d converged", n, res.Steps, res.Converged, steps)
		}
	}
}

// TestPreferNaiveScanRegime checks the fallback triggers exactly in the
// documented regimes: tiny networks, and MAX cost on a tree under a swap
// variant.
func TestPreferNaiveScanRegime(t *testing.T) {
	path := graph.Path(64)
	cyc := graph.Cycle(64)
	small := graph.Path(8)
	cases := []struct {
		gm   game.Game
		g    *graph.Graph
		want bool
	}{
		{game.NewSwap(game.Max), path, true},
		{game.NewAsymSwap(game.Max), path, true},
		{game.Naive(game.NewSwap(game.Max)), path, true},
		{game.NewSwap(game.Sum), path, false},
		{game.NewSwap(game.Max), cyc, false},
		{game.NewGreedyBuy(game.Max, game.AlphaInt(2)), path, false},
		// The small-network regime covers every game with a reference
		// scan; games without one (exhaustive Buy, bilateral) never route.
		{game.NewSwap(game.Sum), small, true},
		{game.NewGreedyBuy(game.Sum, game.AlphaInt(2)), small, true},
		{game.NewBuy(game.Sum, game.AlphaInt(2)), small, false},
		{game.NewBilateral(game.Sum, game.AlphaInt(2)), small, false},
	}
	for i, c := range cases {
		if got := game.PreferNaiveScan(c.gm, c.g); got != c.want {
			t.Errorf("case %d (%s): PreferNaiveScan = %v, want %v", i, c.gm.Name(), got, c.want)
		}
	}
}
