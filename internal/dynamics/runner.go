package dynamics

import (
	"fmt"
	"math/rand"

	"ncg/internal/game"
	"ncg/internal/graph"
	"ncg/internal/state"
)

// Runner executes processes back to back while holding every heavy
// allocation — per-worker game scratches, the all-pairs distance cache,
// batch-BFS scratches, the RNG, move and trajectory buffers — across runs.
// A sweep that executes thousands of same-sized trials through one Runner
// allocates its arenas once and then runs allocation-flat; arenas are
// resized automatically when the network size changes.
//
// A Runner is not safe for concurrent use; give each worker its own.
// Results are identical to the package-level Run for every configuration.
type Runner struct {
	rng  *rand.Rand
	eng  engine
	scr  []*game.Scratch
	scrN int
	// batch holds one kernel scratch per cache-build shard.
	batch []*graph.BatchBFSScratch
	cache *costCache
	// lmk is the recyclable landmark oracle of landmark-mode runs.
	lmk *graph.Landmarks
	// capN is the largest network size the arenas were grown for since
	// the last release; when a run arrives at under a quarter of that,
	// the oversized arenas are dropped instead of pinning their memory.
	capN  int
	moves []game.Move
	kinds []game.MoveKind
	// dropBuf/addBuf back the per-step clone of the picked move, reused
	// when no OnStep callback can retain it.
	dropBuf []int
	addBuf  []int
	// DetectCycles bookkeeping: visited states are interned once each into
	// a compact-encoding store keyed by an incrementally maintained Zobrist
	// fingerprint (collision-verified byte-exact) — no per-step graph
	// clones, and the arenas persist across runs like every other buffer.
	tables *state.Tables
	tabN   int
	store  *state.Store
	fp     state.Fingerprint
	steps  []int
	enc    []uint64
	// round holds the simultaneous-move arenas (see rounds.go), unused by
	// sequential runs.
	round roundState
}

// NewRunner returns an empty Runner; arenas grow on first use.
func NewRunner() *Runner { return &Runner{} }

// seed resets the runner's RNG to the deterministic stream of seed,
// allocating it on first use.
func (r *Runner) seed(seed int64) *rand.Rand {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(seed))
	} else {
		r.rng.Seed(seed)
	}
	return r.rng
}

// fitArenas tracks the network size the arenas serve and releases them
// when a run arrives at under a quarter of it: a sweep stepping down from
// a large n would otherwise pin the big run's O(n²) cache, kernel
// scratches and state store for its whole remainder. Everything regrows
// on demand, so a release only costs the reallocation.
func (r *Runner) fitArenas(n int) {
	if r.capN > 4*n {
		r.scr = nil
		r.scrN = 0
		r.batch = nil
		r.cache = nil
		r.lmk = nil
		r.tables = nil
		r.tabN = 0
		r.store = nil
		r.moves = nil
		r.steps = nil
		r.enc = nil
		r.eng = engine{}
		r.round = roundState{}
		r.capN = 0
	}
	if n > r.capN {
		r.capN = n
	}
}

// cloneInto copies mv into the runner's reusable move backing; the copy is
// valid until the next step of any run on this Runner.
func (r *Runner) cloneInto(m game.Move) game.Move {
	out := game.Move{Agent: m.Agent}
	if len(m.Drop) > 0 {
		r.dropBuf = append(r.dropBuf[:0], m.Drop...)
		out.Drop = r.dropBuf
	}
	if len(m.Add) > 0 {
		r.addBuf = append(r.addBuf[:0], m.Add...)
		out.Add = r.addBuf
	}
	return out
}

// Run executes the process on g, mutating it in place, and returns the
// summary; it is the arena-reusing form of the package-level Run. The
// returned Result.Kinds aliases a runner-owned buffer and is valid only
// until the next Run on the same Runner; callers that retain it must copy.
func (r *Runner) Run(g graph.Store, cfg Config) Result {
	if cfg.Game == nil {
		panic("dynamics: Config.Game is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = MaxCost{}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200*g.N() + 1000
	}
	if game.PreferNaiveScan(cfg.Game, g) {
		// MAX cost on a tree under a swap variant: incremental maintenance
		// is adversarial there, and the naive scans enumerate identical
		// moves in identical order, so the trace is unchanged.
		cfg.Game = game.Naive(cfg.Game)
	}
	r.fitArenas(g.N())
	if rd, ok := cfg.Schedule.(Rounds); ok {
		return r.runRounds(g, cfg, rd)
	}
	rng := r.seed(cfg.Seed)
	e := &r.eng
	e.reset(r, g, cfg.Game, cfg.Workers, cfg.Oracle)
	s := e.scratch()
	ep, hasEngine := cfg.Policy.(enginePolicy)

	detect := cfg.DetectCycles
	var owned bool
	if detect {
		owned = cfg.Game.OwnershipMatters()
		n := g.N()
		if r.tables == nil || r.tabN != n {
			r.tables = state.NewTables(n)
			r.tabN = n
		}
		if r.store == nil {
			r.store = state.NewStore(n, owned, 1)
		} else {
			r.store.Reset(n, owned)
		}
		// The fingerprint rides along every mutation of the run — the
		// moves applied below and the transient apply/undo pairs of
		// candidate probing, which cancel exactly.
		r.fp.Attach(r.tables, g)
		defer g.SetObserver(nil)
		r.steps = r.steps[:0]
	}
	// seenStep interns the current state; a repeat reports its first step.
	seenStep := func() (int, bool) {
		r.enc = r.store.Encode(g, r.enc[:0])
		ref, fresh := r.store.Intern(r.fp.Hash(owned), r.enc)
		if !fresh {
			return r.steps[ref], true
		}
		return 0, false
	}

	var res Result
	res.Kinds = r.kinds[:0]
	moves := r.moves[:0]
	if detect {
		seenStep()
		r.steps = append(r.steps, 0)
	}
	for res.Steps < cfg.MaxSteps && !cancelled(cfg.Cancel) {
		var mover int
		if hasEngine {
			mover = ep.pickEngine(e, rng)
		} else {
			mover = cfg.Policy.Pick(g, cfg.Game, s, rng)
		}
		if mover < 0 {
			res.Converged = true
			break
		}
		moves, _ = cfg.Game.BestMoves(g, mover, s, moves[:0])
		if len(moves) == 0 {
			// A policy returned an agent without improving moves;
			// that is a policy bug, not a game state.
			panic(fmt.Sprintf("dynamics: policy %q picked happy agent %d", cfg.Policy.Name(), mover))
		}
		// Clone: enumerated moves share the scratch's pooled backing and the
		// copy outlives the next scan. Without an OnStep callback nothing
		// can retain the copy past the step, so it reuses runner backing.
		mv := pickMove(moves, cfg.Tie, rng)
		if cfg.OnStep != nil {
			mv = mv.Clone()
		} else {
			mv = r.cloneInto(mv)
		}
		game.ApplyMove(g, mv)
		e.afterMove(mv)
		res.Steps++
		res.MoveKinds[mv.Kind()]++
		res.Kinds = append(res.Kinds, mv.Kind())
		if cfg.OnStep != nil {
			cfg.OnStep(res.Steps, mover, mv, g)
		}
		if detect {
			if first, ok := seenStep(); ok {
				res.Cycled = true
				res.CycleLen = res.Steps - first
				break
			}
			r.steps = append(r.steps, res.Steps)
		}
	}
	r.moves = moves[:0]
	r.kinds = res.Kinds[:0]
	return res
}
