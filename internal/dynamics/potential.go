package dynamics

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// SortedCostVector returns the agents' costs sorted in descending order —
// the sorted cost vector of Definition 2.5. Its lexicographic order is a
// generalized ordinal potential for the MAX-SG on trees (Lemma 2.6).
func SortedCostVector(g graph.Store, gm game.Game) []game.Cost {
	n := g.N()
	s := game.NewScratch(n)
	cs := game.AllCosts(g, gm, s, make([]game.Cost, 0, n))
	alpha := gm.Alpha()
	// Insertion sort, descending.
	for i := 1; i < n; i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && cs[j].Less(c, alpha) {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
	return cs
}

// CompareLex compares two equal-length cost vectors lexicographically under
// edge price alpha and returns -1, 0 or +1.
func CompareLex(a, b []game.Cost, alpha game.Alpha) int {
	for i := range a {
		if c := a[i].Cmp(b[i], alpha); c != 0 {
			return c
		}
	}
	return 0
}

// SocialCost returns the sum of all agents' costs. For the SUM-SG on trees
// it is an ordinal potential function (Lenzner, SAGT'11, used by
// Corollary 3.1).
func SocialCost(g graph.Store, gm game.Game) game.Cost {
	n := g.N()
	s := game.NewScratch(n)
	var total game.Cost
	for _, c := range game.AllCosts(g, gm, s, make([]game.Cost, 0, n)) {
		if c.Infinite() {
			return game.Cost{Dist: game.DistInf}
		}
		total.Halves += c.Halves
		total.Dist += c.Dist
	}
	return total
}

// CenterVertices returns the agents of minimum cost — the center-vertices of
// Definition 2.5.
func CenterVertices(g graph.Store, gm game.Game) []int {
	n := g.N()
	s := game.NewScratch(n)
	alpha := gm.Alpha()
	var best game.Cost
	var out []int
	for u, c := range game.AllCosts(g, gm, s, make([]game.Cost, 0, n)) {
		switch {
		case u == 0 || c.Less(best, alpha):
			best = c
			out = out[:0]
			out = append(out, u)
		case c.Cmp(best, alpha) == 0:
			out = append(out, u)
		}
	}
	return out
}
