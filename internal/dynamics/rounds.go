package dynamics

import (
	"fmt"
	"sync"

	"ncg/internal/game"
	"ncg/internal/graph"
	"ncg/internal/state"
)

// Round-based execution. Each round freezes the network, activates an
// agent set, computes every activated agent's best response against the
// frozen snapshot — fanned over the worker pool when the game's scans are
// read-only (game.ScansPurely) — and commits the responses in activation
// order under the collision policy. All randomness (policy picks, the
// shuffle, tie-break draws) is consumed serially in deterministic order
// between the parallel phases, so a seeded round run is bit-identical at
// any worker count.

// packedMove is one candidate move packed into a scanArena: offsets into
// the arena's ints backing instead of slices, so arena growth while packing
// never invalidates earlier candidates.
type packedMove struct {
	dropOff, dropLen int32
	addOff, addLen   int32
}

// scanArena is one worker's scan output for a round: the packed candidate
// moves of its contiguous block of activated agents, in block order, plus a
// per-agent candidate count. The arena (and its enumeration buffer) is
// reused across rounds and runs.
type scanArena struct {
	packed []packedMove
	ints   []int
	counts []int32
	moves  []game.Move
}

func (a *scanArena) reset() {
	a.packed = a.packed[:0]
	a.ints = a.ints[:0]
	a.counts = a.counts[:0]
}

// pack appends the agent's enumerated candidates and its count. The move
// slices are copied out of the scratch pool immediately: pooled backing is
// only valid until the same scratch's next enumeration.
func (a *scanArena) pack(mvs []game.Move) {
	for _, m := range mvs {
		pm := packedMove{dropOff: int32(len(a.ints)), dropLen: int32(len(m.Drop))}
		a.ints = append(a.ints, m.Drop...)
		pm.addOff = int32(len(a.ints))
		pm.addLen = int32(len(m.Add))
		a.ints = append(a.ints, m.Add...)
		a.packed = append(a.packed, pm)
	}
	a.counts = append(a.counts, int32(len(mvs)))
}

// agentScan locates one activated agent's candidates: the worker arena that
// scanned it, the start of its packed block and the candidate count.
type agentScan struct {
	worker int32
	start  int32
	count  int32
}

// roundState is the Runner's reusable round-mode arena set.
type roundState struct {
	active    []int
	scan      []*scanArena
	tab       []agentScan
	chosen    []int32
	pairSeen  map[game.PairKey]struct{}
	pairCount map[game.PairKey]int
}

// moveAt materializes activated agent i's chosen candidate. The returned
// slices alias the scan arenas, which are stable until the next round's
// scans.
func (rs *roundState) moveAt(i int) game.Move {
	t := rs.tab[i]
	a := rs.scan[t.worker]
	pm := a.packed[t.start+rs.chosen[i]]
	return game.Move{
		Agent: rs.active[i],
		Drop:  a.ints[pm.dropOff : pm.dropOff+pm.dropLen],
		Add:   a.ints[pm.addOff : pm.addOff+pm.addLen],
	}
}

// runRounds executes the process under a Rounds schedule. Config defaults
// and the naive-scan wrap were already applied by Run.
func (r *Runner) runRounds(g graph.Store, cfg Config, rd Rounds) Result {
	rng := r.seed(cfg.Seed)
	e := &r.eng
	e.reset(r, g, cfg.Game, cfg.Workers, cfg.Oracle)
	s := e.scratch()
	ep, hasEngine := cfg.Policy.(enginePolicy)

	detect := cfg.DetectCycles
	var owned bool
	if detect {
		owned = cfg.Game.OwnershipMatters()
		n := g.N()
		if r.tables == nil || r.tabN != n {
			r.tables = state.NewTables(n)
			r.tabN = n
		}
		if r.store == nil {
			r.store = state.NewStore(n, owned, 1)
		} else {
			r.store.Reset(n, owned)
		}
		r.fp.Attach(r.tables, g)
		defer g.SetObserver(nil)
		r.steps = r.steps[:0]
	}
	seenStep := func() (int, bool) {
		r.enc = r.store.Encode(g, r.enc[:0])
		ref, fresh := r.store.Intern(r.fp.Hash(owned), r.enc)
		if !fresh {
			return r.steps[ref], true
		}
		return 0, false
	}

	rs := &r.round
	if rs.pairSeen == nil {
		rs.pairSeen = make(map[game.PairKey]struct{})
		rs.pairCount = make(map[game.PairKey]int)
	}
	// Parallel scans need read-only enumeration; the shared snapshot is
	// otherwise scanned serially (transient mutations are undone before the
	// next agent's scan, so snapshot semantics still hold).
	parallelOK := e.workers > 1 && game.ScansPurely(cfg.Game)

	var res Result
	res.Kinds = r.kinds[:0]
	if detect {
		seenStep()
		r.steps = append(r.steps, 0)
	}

	// MaxSteps bounds committed moves; it also bounds rounds, so that a
	// deterministic reject-round stall (every round colliding, nothing
	// committing) terminates.
	for res.Steps < cfg.MaxSteps && res.Rounds < cfg.MaxSteps && !cancelled(cfg.Cancel) {
		// Activation. All draws here are serial on the run's RNG.
		rs.active = rs.active[:0]
		if rd.Active == ActivePolicy {
			var mover int
			if hasEngine {
				mover = ep.pickEngine(e, rng)
			} else {
				mover = cfg.Policy.Pick(g, cfg.Game, s, rng)
			}
			if mover < 0 {
				res.Converged = true
				break
			}
			rs.active = append(rs.active, mover)
		} else {
			rs.active = e.unhappy(rs.active)
			if len(rs.active) == 0 {
				res.Converged = true
				break
			}
			if rd.Active == ActiveShuffled {
				for i := len(rs.active) - 1; i > 0; i-- {
					j := rng.Intn(i + 1)
					rs.active[i], rs.active[j] = rs.active[j], rs.active[i]
				}
			}
		}
		res.Rounds++

		// Scans against the frozen snapshot: contiguous agent blocks per
		// worker, candidates packed into per-worker arenas. Nothing below
		// depends on scan timing — block assignment and pack order are
		// functions of the activation list alone.
		nAgents := len(rs.active)
		nw := 1
		if parallelOK && nAgents > 1 {
			nw = min(e.workers, nAgents)
		}
		for len(rs.scan) < nw {
			rs.scan = append(rs.scan, &scanArena{})
		}
		if nw == 1 {
			a := rs.scan[0]
			a.reset()
			for _, u := range rs.active {
				a.moves, _ = cfg.Game.BestMoves(g, u, s, a.moves[:0])
				a.pack(a.moves)
			}
		} else {
			span := (nAgents + nw - 1) / nw
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				lo := w * span
				hi := min(lo+span, nAgents)
				if lo >= hi {
					rs.scan[w].reset()
					continue
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					a := rs.scan[w]
					a.reset()
					scr := e.scr[w]
					for _, u := range rs.active[lo:hi] {
						a.moves, _ = cfg.Game.BestMoves(g, u, scr, a.moves[:0])
						a.pack(a.moves)
					}
				}(w, lo, hi)
			}
			wg.Wait()
		}

		// Locate every agent's candidate block.
		rs.tab = rs.tab[:0]
		for w := 0; w < nw; w++ {
			start := int32(0)
			for _, c := range rs.scan[w].counts {
				rs.tab = append(rs.tab, agentScan{worker: int32(w), start: start, count: c})
				start += c
			}
		}

		// Tie-breaking, serial in activation order. Draw counts depend only
		// on the candidate counts, never on collisions, so the RNG stream
		// is identical across collision policies.
		rs.chosen = rs.chosen[:0]
		for i, u := range rs.active {
			cnt := rs.tab[i].count
			if cnt == 0 {
				// Activated agents come from unhappy probes or a policy
				// pick, both of which guarantee an improving move.
				panic(fmt.Sprintf("dynamics: policy %q activated happy agent %d", cfg.Policy.Name(), u))
			}
			var pick int32
			switch cfg.Tie {
			case TieFirst:
				pick = 0
			case TieLast:
				pick = cnt - 1
			default:
				pick = int32(rng.Intn(int(cnt)))
			}
			rs.chosen = append(rs.chosen, pick)
		}

		switch rd.Collision {
		case RejectRound:
			clear(rs.pairSeen)
			conflict := false
			for i := range rs.active {
				rs.moveAt(i).ForEachPair(func(k game.PairKey) {
					if _, dup := rs.pairSeen[k]; dup {
						conflict = true
					}
					rs.pairSeen[k] = struct{}{}
				})
			}
			if conflict {
				res.Skipped += nAgents
				continue // nothing committed; the network is unchanged
			}
		case SkipOnConflict:
			clear(rs.pairCount)
			for i := range rs.active {
				rs.moveAt(i).ForEachPair(func(k game.PairKey) {
					rs.pairCount[k]++
				})
			}
		case FirstWriterWins:
			clear(rs.pairSeen)
		}

		// Commit in activation order. Committed moves touch pairwise
		// disjoint slots, so each stays applicable as its predecessors
		// land, and the per-move cache fold stays exact.
		committed := 0
		for i := range rs.active {
			mv := rs.moveAt(i)
			ok := true
			switch rd.Collision {
			case FirstWriterWins:
				mv.ForEachPair(func(k game.PairKey) {
					if _, dup := rs.pairSeen[k]; dup {
						ok = false
					}
				})
				if ok {
					mv.ForEachPair(func(k game.PairKey) {
						rs.pairSeen[k] = struct{}{}
					})
				}
			case SkipOnConflict:
				mv.ForEachPair(func(k game.PairKey) {
					if rs.pairCount[k] > 1 {
						ok = false
					}
				})
			}
			if !ok {
				res.Skipped++
				continue
			}
			if cfg.OnStep != nil {
				mv = mv.Clone()
			}
			game.ApplyMove(g, mv)
			e.afterMove(mv)
			res.Steps++
			committed++
			res.MoveKinds[mv.Kind()]++
			res.Kinds = append(res.Kinds, mv.Kind())
			if cfg.OnStep != nil {
				cfg.OnStep(res.Steps, mv.Agent, mv, g)
			}
			if res.Steps >= cfg.MaxSteps {
				break
			}
		}

		// States are compared at round boundaries; a round that committed
		// nothing left the state unchanged and must not intern (a stall is
		// not a cycle).
		if detect && committed > 0 {
			if first, ok := seenStep(); ok {
				res.Cycled = true
				res.CycleLen = res.Steps - first
				break
			}
			r.steps = append(r.steps, res.Steps)
		}
	}
	r.kinds = res.Kinds[:0]
	return res
}
