package dynamics

import (
	"math/rand"
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// roundsRandomGraph builds a random connected graph with random ownership
// (local copy of the game package's test helper).
func roundsRandomGraph(n, extra int, r *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		p := r.Intn(i)
		if r.Intn(2) == 0 {
			g.AddEdge(i, p)
		} else {
			g.AddEdge(p, i)
		}
	}
	for e := 0; e < extra; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

func sameResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if want.Steps != got.Steps || want.Converged != got.Converged ||
		want.Cycled != got.Cycled || want.CycleLen != got.CycleLen ||
		want.MoveKinds != got.MoveKinds {
		t.Fatalf("%s: results differ:\nwant %+v\ngot  %+v", label, want, got)
	}
	if len(want.Kinds) != len(got.Kinds) {
		t.Fatalf("%s: trajectory lengths differ: %d vs %d", label, len(want.Kinds), len(got.Kinds))
	}
	for i := range want.Kinds {
		if want.Kinds[i] != got.Kinds[i] {
			t.Fatalf("%s: trajectories diverge at step %d: %v vs %v", label, i, want.Kinds[i], got.Kinds[i])
		}
	}
}

// TestRoundsSingletonMatchesSequential: rounds over the singleton
// (policy-picked) active set reproduce the sequential process exactly —
// same steps, same trajectory, same final network — for engine policies,
// non-engine policies, random tie-breaking and cycle detection, at several
// worker counts. This is the scheduler-equivalence property of the seam.
func TestRoundsSingletonMatchesSequential(t *testing.T) {
	type gameCase struct {
		name string
		mk   func(n int) game.Game
	}
	games := []gameCase{
		{"sum-sg", func(int) game.Game { return game.NewSwap(game.Sum) }},
		{"max-asg", func(int) game.Game { return game.NewAsymSwap(game.Max) }},
		{"sum-gbg", func(n int) game.Game { return game.NewGreedyBuy(game.Sum, game.NewAlpha(3, 2)) }},
	}
	policies := []Policy{MaxCost{}, Random{}}
	ties := []TieBreak{TieRandom, TieFirst}
	r := rand.New(rand.NewSource(71))
	seq := NewRunner()
	rnd := NewRunner()
	for _, gc := range games {
		for _, pol := range policies {
			for _, tie := range ties {
				for _, workers := range []int{1, 4} {
					for trial := 0; trial < 4; trial++ {
						n := 10 + r.Intn(14)
						g := roundsRandomGraph(n, r.Intn(8), r)
						seed := r.Int63()
						cfg := Config{
							Game:         gc.mk(n),
							Policy:       pol,
							Tie:          tie,
							Seed:         seed,
							Workers:      workers,
							DetectCycles: true,
						}
						g1 := g.Clone()
						want := seq.Run(g1, cfg)
						wantKinds := append([]game.MoveKind(nil), want.Kinds...)
						want.Kinds = wantKinds

						cfg.Game = gc.mk(n)
						cfg.Schedule = Rounds{Active: ActivePolicy}
						g2 := g.Clone()
						got := rnd.Run(g2, cfg)
						got.Rounds, got.Skipped = 0, 0

						label := gc.name + "/" + pol.Name() + "/" + tie.String()
						sameResult(t, label, want, got)
						if !g1.Equal(g2) {
							t.Fatalf("%s: final networks differ", label)
						}
					}
				}
			}
		}
	}
}

// TestRoundsSingletonCycles: the known Figure 2 MAX-SG cycle is detected
// identically under singleton rounds.
func TestRoundsSingletonCycles(t *testing.T) {
	cfg := Config{
		Game:         game.NewSwap(game.Max),
		Policy:       MaxCost{},
		Tie:          TieFirst,
		Seed:         1,
		DetectCycles: true,
	}
	g1 := fig2Like()
	want := Run(g1, cfg)
	if !want.Cycled {
		t.Fatal("sequential reference run did not cycle")
	}
	cfg.Schedule = Rounds{Active: ActivePolicy}
	g2 := fig2Like()
	got := Run(g2, cfg)
	if !got.Cycled || got.CycleLen != want.CycleLen || got.Steps != want.Steps {
		t.Fatalf("singleton rounds: want cycle (steps=%d len=%d), got %+v", want.Steps, want.CycleLen, got)
	}
	if !g1.Equal(g2) {
		t.Fatal("final networks differ")
	}
}

// TestSequentialExplicitMatchesNil: an explicit Sequential{} schedule is
// the nil schedule, bit for bit.
func TestSequentialExplicitMatchesNil(t *testing.T) {
	g := gen.BudgetNetwork(20, 3, gen.NewRand(5))
	cfg := Config{Game: game.NewAsymSwap(game.Sum), Seed: 11, DetectCycles: true}
	g1, g2 := g.Clone(), g.Clone()
	want := Run(g1, cfg)
	cfg.Schedule = Sequential{}
	got := Run(g2, cfg)
	sameResult(t, "sequential/nil", want, got)
	if !g1.Equal(g2) {
		t.Fatal("final networks differ")
	}
}

// TestRoundsWorkerInvariance: round records are bit-identical at any
// worker count — parallel scans and parallel unhappy probes never leak
// scheduling into the trace — across active sets, collision policies and
// a scan-impure game (which runs its scans serially).
func TestRoundsWorkerInvariance(t *testing.T) {
	scheds := []Scheduler{
		Rounds{Active: ActiveAll, Collision: FirstWriterWins},
		Rounds{Active: ActiveShuffled, Collision: FirstWriterWins},
		Rounds{Active: ActiveAll, Collision: SkipOnConflict},
		Rounds{Active: ActiveAll, Collision: RejectRound},
	}
	games := []struct {
		mk   func(n int) game.Game
		n    int // the Buy game's exhaustive scans are exponential in n
		span int
	}{
		{func(int) game.Game { return game.NewSwap(game.Sum) }, 12, 12},
		{func(n int) game.Game { return game.NewGreedyBuy(game.Sum, game.NewAlpha(3, 2)) }, 12, 12},
		{func(int) game.Game { return game.NewBuy(game.Sum, game.AlphaInt(2)) }, 6, 3}, // scan-impure
	}
	r := rand.New(rand.NewSource(73))
	base := NewRunner()
	other := NewRunner()
	for _, gc := range games {
		mk := gc.mk
		for _, sched := range scheds {
			for trial := 0; trial < 3; trial++ {
				n := gc.n + r.Intn(gc.span)
				g := roundsRandomGraph(n, r.Intn(6), r)
				seed := r.Int63()
				cfg := Config{
					Game:         mk(n),
					Tie:          TieRandom,
					Seed:         seed,
					Workers:      1,
					Schedule:     sched,
					DetectCycles: true,
					MaxSteps:     400,
				}
				g1 := g.Clone()
				want := base.Run(g1, cfg)
				want.Kinds = append([]game.MoveKind(nil), want.Kinds...)
				for _, workers := range []int{3, 8} {
					cfg2 := cfg
					cfg2.Game = mk(n)
					cfg2.Workers = workers
					g2 := g.Clone()
					got := other.Run(g2, cfg2)
					if want.Rounds != got.Rounds || want.Skipped != got.Skipped {
						t.Fatalf("%s workers=%d: rounds/skips differ: %d/%d vs %d/%d",
							sched.Name(), workers, want.Rounds, want.Skipped, got.Rounds, got.Skipped)
					}
					sameResult(t, sched.Name(), want, got)
					if !g1.Equal(g2) {
						t.Fatalf("%s workers=%d: final networks differ", sched.Name(), workers)
					}
				}
			}
		}
	}
}

// conflictInstance builds a 6-agent greedy-buy instance whose first round
// provably collides: agent 0's unique best response is buying edge {0,3}
// and agent 3's tie-first best response is buying {3,0} — the same slot
// from both ends. Agents 1, 4 and 5 are also unhappy, with best responses
// on disjoint slots; agent 2 is happy.
func conflictInstance() (*graph.Graph, game.Game) {
	g := graph.New(6)
	g.AddEdge(0, 1) // path 0-1-2-3, owned left to right
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(4, 3) // pendants 4, 5 own their edges to 3
	g.AddEdge(5, 3)
	return g, game.NewGreedyBuy(game.Sum, game.NewAlpha(3, 2))
}

// TestRoundsFirstWriterWins: under first-writer-wins, agent 0 (earlier in
// activation order) buys the contested slot and agent 3's response is
// skipped; every non-conflicting response commits.
func TestRoundsFirstWriterWins(t *testing.T) {
	g, gm := conflictInstance()
	var movers []int
	var first game.Move
	res := Run(g, Config{
		Game:     gm,
		Tie:      TieFirst,
		Schedule: Rounds{Active: ActiveAll, Collision: FirstWriterWins},
		MaxSteps: 4, // exactly the four round-1 commits
		OnStep: func(step, mover int, mv game.Move, g graph.Store) {
			if step == 1 {
				first = mv
			}
			movers = append(movers, mover)
		},
	})
	if res.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1 (agent 3's colliding buy)", res.Skipped)
	}
	if res.Rounds != 1 || res.Steps != 4 {
		t.Fatalf("Rounds=%d Steps=%d, want 1 round of 4 commits", res.Rounds, res.Steps)
	}
	if first.Agent != 0 || len(first.Add) != 1 || first.Add[0] != 3 || len(first.Drop) != 0 {
		t.Fatalf("first commit = %+v, want agent 0 buying {0,3}", first)
	}
	want := []int{0, 1, 4, 5}
	for i, m := range movers {
		if m != want[i] {
			t.Fatalf("commit order %v, want %v", movers, want)
		}
	}
	if !g.HasEdge(0, 3) {
		t.Fatal("contested edge {0,3} missing after the round")
	}
}

// TestRoundsSkipOnConflict: under skip-on-conflict, both parties to the
// collision are withheld — the contested slot stays empty — while the
// disjoint responses commit.
func TestRoundsSkipOnConflict(t *testing.T) {
	g, gm := conflictInstance()
	var movers []int
	res := Run(g, Config{
		Game:     gm,
		Tie:      TieFirst,
		Schedule: Rounds{Active: ActiveAll, Collision: SkipOnConflict},
		MaxSteps: 3, // exactly the three round-1 commits
		OnStep: func(step, mover int, mv game.Move, g graph.Store) {
			movers = append(movers, mover)
		},
	})
	if res.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2 (both parties)", res.Skipped)
	}
	if res.Rounds != 1 || res.Steps != 3 {
		t.Fatalf("Rounds=%d Steps=%d, want 1 round of 3 commits", res.Rounds, res.Steps)
	}
	want := []int{1, 4, 5}
	for i, m := range movers {
		if m != want[i] {
			t.Fatalf("commit order %v, want %v", movers, want)
		}
	}
	if g.HasEdge(0, 3) {
		t.Fatal("contested edge {0,3} present; both claimants should have been skipped")
	}
}

// TestRoundsRejectRound: a colliding round commits nothing, and since the
// network (and the deterministic tie-breaking) is unchanged, the process
// stalls until the round bound.
func TestRoundsRejectRound(t *testing.T) {
	g, gm := conflictInstance()
	before := g.Clone()
	res := Run(g, Config{
		Game:     gm,
		Tie:      TieFirst,
		Schedule: Rounds{Active: ActiveAll, Collision: RejectRound},
		MaxSteps: 4,
	})
	if res.Steps != 0 || res.Converged {
		t.Fatalf("Steps=%d Converged=%v, want a fully rejected stall", res.Steps, res.Converged)
	}
	if res.Rounds != 4 {
		t.Fatalf("Rounds = %d, want the MaxSteps round bound 4", res.Rounds)
	}
	if res.Skipped != 4*5 {
		t.Fatalf("Skipped = %d, want 20 (5 active agents x 4 rejected rounds)", res.Skipped)
	}
	if !g.Equal(before) {
		t.Fatal("rejected rounds mutated the network")
	}
}

// TestRoundsOutcomes: round dynamics terminate, and a converged run really
// reached a stable network. Unlike the sequential sum-SG process (where
// the sum of distances is a potential, Theorem 2.2), simultaneous rounds
// can oscillate — agents keep reacting to the same snapshot of each other —
// so non-convergence is a legitimate outcome here, reported as a cycle or
// a step-bound abort rather than asserted away.
func TestRoundsOutcomes(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	converged, cycled := 0, 0
	gm := game.NewSwap(game.Sum)
	for _, sched := range []Scheduler{
		Rounds{Active: ActiveAll, Collision: FirstWriterWins},
		Rounds{Active: ActiveShuffled, Collision: FirstWriterWins},
		Rounds{Active: ActiveAll, Collision: SkipOnConflict},
	} {
		for trial := 0; trial < 6; trial++ {
			n := 10 + r.Intn(10)
			g := roundsRandomGraph(n, r.Intn(6), r)
			res := Run(g, Config{
				Game: gm, Tie: TieRandom, Seed: r.Int63(),
				Schedule: sched, DetectCycles: true,
			})
			switch {
			case res.Converged:
				converged++
				if res.Cycled {
					t.Fatalf("%s: run both converged and cycled", sched.Name())
				}
				if !Stable(g, gm) {
					t.Fatalf("%s: converged network is not stable", sched.Name())
				}
			case res.Cycled:
				cycled++
				if res.CycleLen <= 0 || res.CycleLen > res.Steps {
					t.Fatalf("%s: implausible cycle length %d after %d steps",
						sched.Name(), res.CycleLen, res.Steps)
				}
			}
			if res.Rounds <= 0 {
				t.Fatalf("%s: no rounds played", sched.Name())
			}
		}
	}
	// The seeds above produce both outcomes; if they ever stop doing so the
	// test has lost its discriminating power and should get new seeds.
	if converged == 0 || cycled == 0 {
		t.Fatalf("outcome mix degenerated: %d converged, %d cycled", converged, cycled)
	}
}

// TestScheduleRegistry: names round-trip and unknown names are rejected.
func TestScheduleRegistry(t *testing.T) {
	names := ScheduleNames()
	if len(names) != 5 || names[0] != "sequential" {
		t.Fatalf("ScheduleNames() = %v", names)
	}
	for _, name := range names {
		s, ok := ScheduleByName(name)
		if !ok {
			t.Fatalf("ScheduleByName(%q) unknown", name)
		}
		if s.Name() != name {
			t.Fatalf("ScheduleByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, ok := ScheduleByName("simultaneous"); ok {
		t.Fatal("unknown schedule name accepted")
	}
	if n := (Rounds{Active: ActivePolicy}).Name(); n != "rounds-policy" {
		t.Fatalf("rounds-policy name = %q", n)
	}
}
