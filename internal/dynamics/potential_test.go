package dynamics

import (
	"math/rand"
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

func TestSortedCostVectorDescending(t *testing.T) {
	g := graph.Path(7)
	gm := game.NewSwap(game.Max)
	v := SortedCostVector(g, gm)
	alpha := gm.Alpha()
	for i := 1; i < len(v); i++ {
		if v[i-1].Less(v[i], alpha) {
			t.Fatalf("vector not descending: %v", v)
		}
	}
	// P7 eccentricities: 6,5,4,3,4,5,6 sorted desc.
	want := []int64{6, 6, 5, 5, 4, 4, 3}
	for i, w := range want {
		if v[i].Dist != w {
			t.Fatalf("vector = %v, want dists %v", v, want)
		}
	}
}

// TestLemma26PotentialDecreases checks Lemma 2.6: on trees, every improving
// MAX-SG swap strictly decreases the sorted cost vector lexicographically.
func TestLemma26PotentialDecreases(t *testing.T) {
	gm := game.NewSwap(game.Max)
	alpha := gm.Alpha()
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(14)
		g := gen.RandomTree(n, r)
		prev := SortedCostVector(g, gm)
		res := Run(g, Config{
			Game:   gm,
			Policy: Random{},
			Seed:   int64(trial),
			OnStep: func(step, mover int, mv game.Move, g graph.Store) {
				cur := SortedCostVector(g, gm)
				if CompareLex(prev, cur, alpha) <= 0 {
					t.Fatalf("potential did not decrease at step %d: %v -> %v", step, prev, cur)
				}
				prev = cur
			},
		})
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
	}
}

// TestSumSGSocialCostPotential checks the ordinal potential of Corollary
// 3.1 / Lenzner'11: on trees, improving SUM-SG swaps strictly decrease the
// social cost.
func TestSumSGSocialCostPotential(t *testing.T) {
	gm := game.NewSwap(game.Sum)
	alpha := gm.Alpha()
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(14)
		g := gen.RandomTree(n, r)
		prev := SocialCost(g, gm)
		res := Run(g, Config{
			Game:   gm,
			Policy: Random{},
			Seed:   int64(trial) + 1000,
			OnStep: func(step, mover int, mv game.Move, g graph.Store) {
				cur := SocialCost(g, gm)
				if cur.Cmp(prev, alpha) >= 0 {
					t.Fatalf("social cost did not decrease at step %d: %v -> %v", step, prev, cur)
				}
				prev = cur
			},
		})
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
	}
}

func TestCenterVertices(t *testing.T) {
	g := graph.Path(7)
	cs := CenterVertices(g, game.NewSwap(game.Max))
	if len(cs) != 1 || cs[0] != 3 {
		t.Fatalf("center vertices = %v", cs)
	}
	// Observation 2.9 (trees): the two largest entries of the sorted cost
	// vector are equal and the smallest is ceil(max/2).
	v := SortedCostVector(g, game.NewSwap(game.Max))
	if v[0].Dist != v[1].Dist {
		t.Fatal("two agents must share the maximum cost")
	}
	if v[len(v)-1].Dist != (v[0].Dist+1)/2 {
		t.Fatal("center cost must be ceil(maxcost/2) on trees")
	}
}

func TestCompareLex(t *testing.T) {
	a := game.AlphaInt(1)
	x := []game.Cost{{Dist: 5}, {Dist: 3}}
	y := []game.Cost{{Dist: 5}, {Dist: 2}}
	if CompareLex(x, y, a) != 1 || CompareLex(y, x, a) != -1 || CompareLex(x, x, a) != 0 {
		t.Fatal("lexicographic comparison broken")
	}
}

func TestSocialCostDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	if !SocialCost(g, game.NewSwap(game.Sum)).Infinite() {
		t.Fatal("disconnected social cost must be infinite")
	}
}
