package dynamics

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

func TestParseOracleSpec(t *testing.T) {
	cases := []struct {
		in   string
		want OracleSpec
		ok   bool
	}{
		{"", OracleSpec{Mode: OracleAuto}, true},
		{"auto", OracleSpec{Mode: OracleAuto}, true},
		{"exact", OracleSpec{Mode: OracleExact}, true},
		{"landmark", OracleSpec{Mode: OracleLandmark}, true},
		{"landmark:4", OracleSpec{Mode: OracleLandmark, K: 4}, true},
		{"landmark:999", OracleSpec{Mode: OracleLandmark, K: 999}, true},
		{"landmark:0", OracleSpec{}, false},
		{"landmark:-3", OracleSpec{}, false},
		{"landmark:x", OracleSpec{}, false},
		{"matrix", OracleSpec{}, false},
	}
	for _, c := range cases {
		got, err := ParseOracleSpec(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Fatalf("ParseOracleSpec(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
		if c.ok {
			back, err := ParseOracleSpec(got.String())
			if err != nil || back.Mode != got.Mode {
				t.Fatalf("round-trip of %q via %q failed: %v, %v", c.in, got.String(), back, err)
			}
		}
	}
}

func TestOracleSpecResolve(t *testing.T) {
	if got := (OracleSpec{}).resolve(AutoLandmarkMinN - 1); got.Mode != OracleExact {
		t.Fatalf("auto below threshold resolved to %v", got.Mode)
	}
	if got := (OracleSpec{}).resolve(AutoLandmarkMinN); got.Mode != OracleLandmark || got.K != DefaultLandmarkK {
		t.Fatalf("auto at threshold resolved to %+v", got)
	}
	if got := (OracleSpec{Mode: OracleLandmark, K: 7}).resolve(10); got.K != 7 {
		t.Fatalf("explicit K overridden: %+v", got)
	}
}

// oracleParityConfigs spans the regimes whose landmark traces must be
// bit-identical to exact mode: both swap games, both cost kinds, the
// engine-backed and plain policies, all tie rules, cycle detection, and a
// simultaneous-move schedule.
func oracleParityConfigs() []Config {
	return []Config{
		{Game: game.NewSwap(game.Sum), Policy: MaxCost{}, Tie: TieRandom, Seed: 5, DetectCycles: true},
		{Game: game.NewSwap(game.Sum), Policy: MinIndex{}, Tie: TieFirst, DetectCycles: true},
		{Game: game.NewSwap(game.Max), Policy: MaxCostDeterministic{}, Tie: TieFirst},
		{Game: game.NewAsymSwap(game.Sum), Policy: MaxCost{}, Tie: TieLast, Seed: 9, DetectCycles: true},
		{Game: game.NewAsymSwap(game.Max), Policy: MinIndex{}, Tie: TieRandom, Seed: 3},
		{Game: game.NewAsymSwap(game.Sum), Policy: Random{}, Tie: TieRandom, Seed: 7, Workers: 3},
		{Game: game.NewSwap(game.Sum), Policy: MinIndex{}, Tie: TieRandom, Seed: 11,
			Schedule: Rounds{Active: ActiveAll, Collision: SkipOnConflict}, DetectCycles: true},
	}
}

// TestLandmarkRunIsBitIdentical pins the tentpole contract at several sizes
// and landmark counts: a landmark-mode run must produce move-for-move the
// same trajectory, the same cycle verdicts and the same final network as
// the exact-mode run of the same seed. Coverage narrows as n grows (these
// are full dynamics runs, hundreds of steps each); every config × k pair
// still runs at n=32.
func TestLandmarkRunIsBitIdentical(t *testing.T) {
	ks := map[int][]int{32: {1, 2, 4, 16, 64}, 128: {1, 16}, 256: {16}}
	sizes := []int{32, 128, 256}
	if testing.Short() {
		sizes = sizes[:2]
		ks[128] = []int{16}
	}
	for _, n := range sizes {
		extra := n / 4
		mk := func() *graph.Graph { return gen.RandomConnected(n, n-1+extra, gen.NewRand(int64(100+n))) }
		for ci, cfg := range oracleParityConfigs() {
			if n == 256 && (ci == 1 || ci == 3 || ci == 4) {
				// The slowest serial configs; their regimes (MinIndex probe
				// waves, ASG ownership, MAX witnesses) are covered at 128.
				continue
			}
			exact := cfg
			exact.Oracle = OracleSpec{Mode: OracleExact}
			wantRes, wantSteps, wantG := traceOf(mk, exact)
			for _, k := range ks[n] {
				lmc := cfg
				lmc.Oracle = OracleSpec{Mode: OracleLandmark, K: k}
				res, steps, g := traceOf(mk, lmc)
				if !resultsEqual(res, wantRes) {
					t.Fatalf("n=%d config %d k=%d: result %+v, want %+v", n, ci, k, res, wantRes)
				}
				for i := range steps {
					if steps[i] != wantSteps[i] {
						t.Fatalf("n=%d config %d k=%d step %d:\n got %s\nwant %s", n, ci, k, i, steps[i], wantSteps[i])
					}
				}
				if len(steps) != len(wantSteps) || !g.Equal(wantG) {
					t.Fatalf("n=%d config %d k=%d: trajectories diverge (%d vs %d steps)",
						n, ci, k, len(steps), len(wantSteps))
				}
			}
		}
	}
}

// TestLandmarkRunnerReuse runs landmark-mode trials back to back through
// one Runner across different sizes and seeds; every trial must match a
// fresh single-use run.
func TestLandmarkRunnerReuse(t *testing.T) {
	r := NewRunner()
	for trial, n := range []int{64, 48, 64, 129} {
		mk := func() *graph.Graph { return gen.RandomConnected(n, n+3, gen.NewRand(int64(7*trial+1))) }
		cfg := Config{
			Game:         game.NewSwap(game.Sum),
			Policy:       MaxCost{},
			Seed:         int64(trial),
			Oracle:       OracleSpec{Mode: OracleLandmark, K: 5},
			DetectCycles: true,
		}
		want := Run(mk(), cfg)
		got := r.Run(mk(), cfg)
		if !resultsEqual(got, want) {
			t.Fatalf("trial %d (n=%d): reused runner %+v, fresh %+v", trial, n, got, want)
		}
	}
}

// TestRunnerShrinksArenas: a run at a much smaller size must release the
// big run's arenas instead of pinning them for the rest of a sweep.
func TestRunnerShrinksArenas(t *testing.T) {
	r := NewRunner()
	big := 320
	cfg := Config{Game: game.NewSwap(game.Sum), Policy: MaxCost{}, DetectCycles: true}
	r.Run(gen.RandomConnected(big, big+10, gen.NewRand(1)), cfg)
	if r.capN != big || r.cache == nil || r.cache.n != big {
		t.Fatalf("big run left capN=%d cache=%v", r.capN, r.cache != nil)
	}
	// A mild step down must keep the arena capacity watermark.
	r.Run(gen.RandomConnected(big/2, big/2+10, gen.NewRand(2)), cfg)
	if r.capN != big {
		t.Fatalf("2x step-down moved capN to %d", r.capN)
	}
	// A >4x step down must release them; the small run then regrows its own.
	small := big / 5
	res := r.Run(gen.RandomConnected(small, small+10, gen.NewRand(3)), cfg)
	if res.Steps == 0 && !res.Converged {
		t.Fatalf("small run did nothing: %+v", res)
	}
	if r.capN != small {
		t.Fatalf("capN = %d after shrink, want %d", r.capN, small)
	}
	if r.cache != nil && r.cache.n != small {
		t.Fatalf("cache still sized %d after shrink", r.cache.n)
	}
	if r.scrN != small {
		t.Fatalf("scratches still sized %d after shrink", r.scrN)
	}
	if r.lmk != nil && r.lmk.N() > 4*small {
		t.Fatalf("landmark arena still sized %d after shrink", r.lmk.N())
	}
}

// TestStableUnchangedByLandmarks: Stable always runs exact; a stable
// network must stay stable regardless of any prior landmark-mode run on
// the same graph value.
func TestStableUnchangedByLandmarks(t *testing.T) {
	g := gen.RandomConnected(40, 44, gen.NewRand(4))
	cfg := Config{
		Game:   game.NewSwap(game.Sum),
		Policy: MinIndex{},
		Oracle: OracleSpec{Mode: OracleLandmark, K: 4},
	}
	res := Run(g, cfg)
	if !res.Converged {
		t.Fatalf("landmark run did not converge: %+v", res)
	}
	if !Stable(g, game.NewSwap(game.Sum)) {
		t.Fatal("converged landmark run left an unstable network")
	}
}
