package dynamics

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// Cache-construction benchmarks: the all-pairs distance matrix build that
// opens every engine run, on the paper's budget-3 initial ensembles. The
// BFS variants are the pre-kernel baseline (one single-source search per
// row); CacheBuild* is the batched bit-parallel kernel, and the Workers
// variant shards source groups over a pool, as engines with Workers > 1
// do. BenchmarkCacheBuild256 is part of the CI performance trajectory.
func benchCacheBuild(b *testing.B, n, shards int, perSource bool) {
	g := gen.BudgetNetwork(n, 3, gen.NewRand(1))
	c := newCostCacheShell(n)
	var par []*graph.BatchBFSScratch
	for i := 0; i < shards; i++ {
		par = append(par, graph.NewBatchBFSScratch(n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if perSource {
			for u := 0; u < n; u++ {
				c.refreshRow(g, u)
			}
		} else {
			c.build(g, par)
		}
	}
}

func BenchmarkCacheBuildBFS64(b *testing.B)  { benchCacheBuild(b, 64, 0, true) }
func BenchmarkCacheBuild64(b *testing.B)     { benchCacheBuild(b, 64, 0, false) }
func BenchmarkCacheBuildBFS128(b *testing.B) { benchCacheBuild(b, 128, 0, true) }
func BenchmarkCacheBuild128(b *testing.B)    { benchCacheBuild(b, 128, 0, false) }
func BenchmarkCacheBuildBFS256(b *testing.B) { benchCacheBuild(b, 256, 0, true) }
func BenchmarkCacheBuild256(b *testing.B)    { benchCacheBuild(b, 256, 0, false) }
func BenchmarkCacheBuildBFS512(b *testing.B) { benchCacheBuild(b, 512, 0, true) }
func BenchmarkCacheBuild512(b *testing.B)    { benchCacheBuild(b, 512, 0, false) }

func BenchmarkCacheBuildWorkers4x256(b *testing.B) { benchCacheBuild(b, 256, 4, false) }
func BenchmarkCacheBuildWorkers4x512(b *testing.B) { benchCacheBuild(b, 512, 4, false) }

// TestCacheBuildShardedMatchesSerial pins the sharded build to the serial
// one bit for bit, across shard counts and a size that is not a multiple
// of 64.
func TestCacheBuildShardedMatchesSerial(t *testing.T) {
	for _, n := range []int{65, 200, 256} {
		g := gen.BudgetNetwork(n, 3, gen.NewRand(9))
		want := newCostCacheShell(n)
		want.build(g, nil)
		for _, shards := range []int{2, 3, 8} {
			var par []*graph.BatchBFSScratch
			for i := 0; i < shards; i++ {
				par = append(par, graph.NewBatchBFSScratch(n))
			}
			got := newCostCacheShell(n)
			got.build(g, par)
			for i := range want.d {
				if got.d[i] != want.d[i] {
					t.Fatalf("n=%d shards=%d: matrix entry %d differs", n, shards, i)
				}
			}
			for u := 0; u < n; u++ {
				if got.sum[u] != want.sum[u] || got.ecc[u] != want.ecc[u] || got.reached[u] != want.reached[u] {
					t.Fatalf("n=%d shards=%d: aggregates of %d differ", n, shards, u)
				}
			}
		}
	}
}

// TestEngineParallelCacheBuild runs an engine-driven process with several
// probe workers (which also shards the cache build) and checks the trace
// equals the single-worker engine run.
func TestEngineParallelCacheBuild(t *testing.T) {
	mk := func() *graph.Graph { return gen.BudgetNetwork(130, 3, gen.NewRand(3)) }
	cfg := Config{Game: game.NewAsymSwap(game.Sum), Policy: MaxCost{}, Tie: TieFirst, Seed: 11, MaxSteps: 60}
	g1 := mk()
	want := Run(g1, cfg)
	cfgW := cfg
	cfgW.Workers = 4
	g2 := mk()
	got := Run(g2, cfgW)
	if got.Steps != want.Steps || got.Converged != want.Converged || !g1.Equal(g2) {
		t.Fatalf("parallel-build run diverged: %+v vs %+v", got, want)
	}
}
