package dynamics

import (
	"fmt"
	"strconv"
	"strings"
)

// OracleMode selects how a process serves the distances behind its
// best-response scans and cost reads.
type OracleMode int

const (
	// OracleAuto picks per run: exact below AutoLandmarkMinN vertices,
	// landmark at or above it. The zero value, so configs that never
	// mention oracles keep their existing behaviour (every repo-grid size
	// sits below the threshold and resolves to exact).
	OracleAuto OracleMode = iota
	// OracleExact maintains the full all-pairs distance matrix (O(n²)
	// memory); scans and cost policies read exact distances.
	OracleExact
	// OracleLandmark maintains k exact landmark rows (O(kn) memory); swap
	// scans prune candidates against triangle-inequality bounds and
	// re-score every survivor exactly, so traces are bit-identical to
	// exact mode.
	OracleLandmark
)

// DefaultLandmarkK is the landmark count used when a spec leaves K zero.
const DefaultLandmarkK = 16

// AutoLandmarkMinN is the vertex count from which OracleAuto switches to
// the landmark oracle: below it the exact matrix fits comfortably and its
// searchless scoring wins; above it the matrix build and memory dominate.
const AutoLandmarkMinN = 4096

// OracleSpec selects the distance-oracle mode of a run.
type OracleSpec struct {
	Mode OracleMode
	// K is the landmark count of landmark mode; 0 means DefaultLandmarkK.
	K int
}

// resolve pins the auto mode for an n-vertex run and fills the default K.
func (o OracleSpec) resolve(n int) OracleSpec {
	if o.Mode == OracleAuto {
		if n >= AutoLandmarkMinN {
			o.Mode = OracleLandmark
		} else {
			o.Mode = OracleExact
		}
	}
	if o.K == 0 {
		o.K = DefaultLandmarkK
	}
	return o
}

func (o OracleSpec) String() string {
	switch o.Mode {
	case OracleExact:
		return "exact"
	case OracleLandmark:
		if o.K == 0 || o.K == DefaultLandmarkK {
			return "landmark"
		}
		return fmt.Sprintf("landmark:%d", o.K)
	default:
		return "auto"
	}
}

// ParseOracleSpec parses the -oracle flag syntax: "auto" (or empty),
// "exact", "landmark", or "landmark:k" with a positive landmark count k.
func ParseOracleSpec(s string) (OracleSpec, error) {
	switch s {
	case "", "auto":
		return OracleSpec{Mode: OracleAuto}, nil
	case "exact":
		return OracleSpec{Mode: OracleExact}, nil
	case "landmark":
		return OracleSpec{Mode: OracleLandmark}, nil
	}
	if rest, ok := strings.CutPrefix(s, "landmark:"); ok {
		k, err := strconv.Atoi(rest)
		if err != nil || k < 1 {
			return OracleSpec{}, fmt.Errorf("dynamics: bad landmark count %q (want a positive integer)", rest)
		}
		return OracleSpec{Mode: OracleLandmark, K: k}, nil
	}
	return OracleSpec{}, fmt.Errorf("dynamics: unknown oracle %q (want auto, exact, or landmark[:k])", s)
}
