package dynamics

import (
	"fmt"
	"math/rand"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// TieBreak selects among equally good best moves of the moving agent.
type TieBreak int

const (
	// TieRandom picks uniformly at random among the best moves
	// (Section 3.4.1: "breaking ties uniformly at random").
	TieRandom TieBreak = iota
	// TieFirst picks the first best move in enumeration order. Move
	// enumeration orders deletions before swaps before additions (the
	// preference of Section 4.2.1) and targets by increasing index (the
	// rule of the Theorem 2.11 trace), so TieFirst implements both
	// deterministic rules of the paper.
	TieFirst
	// TieLast picks the last best move in enumeration order.
	TieLast
)

func (t TieBreak) String() string {
	switch t {
	case TieRandom:
		return "random"
	case TieFirst:
		return "first"
	default:
		return "last"
	}
}

// Config parameterizes a network creation process.
type Config struct {
	// Game is the underlying network creation game. Required.
	Game game.Game
	// Policy decides who moves; defaults to the max cost policy.
	Policy Policy
	// Tie breaks among best moves; defaults to TieRandom.
	Tie TieBreak
	// MaxSteps aborts a (potentially non-convergent) process; defaults to
	// 200*n + 1000.
	MaxSteps int
	// Seed feeds the deterministic RNG used by policy and tie-breaking.
	Seed int64
	// Workers sets how many goroutines fan out the per-agent happiness
	// probes of the built-in policies; 0 or 1 probes serially. Probe
	// results are collected in deterministic order and the cost cache is
	// exact, so the trace of a seeded run is identical at any worker
	// count. Games whose probes mutate the graph transiently (Buy,
	// Bilateral) are always probed serially.
	Workers int
	// DetectCycles records visited states and stops when a state repeats,
	// proving non-convergence of the played trajectory. States are
	// compared with or without ownership according to the game.
	DetectCycles bool
	// OnStep, if non-nil, is invoked after each applied move. It must not
	// mutate g; the move is a private copy the callback may retain.
	OnStep func(step int, mover int, mv game.Move, g *graph.Graph)
}

// Result summarizes a finished process.
type Result struct {
	// Steps is the number of improving moves performed.
	Steps int
	// Converged reports that the final network is stable (no unhappy
	// agents), i.e. a pure Nash equilibrium was reached.
	Converged bool
	// Cycled reports that a previously visited state re-appeared
	// (requires Config.DetectCycles).
	Cycled bool
	// CycleLen is the number of moves between the two visits of the
	// repeated state when Cycled is set.
	CycleLen int
	// MoveKinds counts performed moves by kind.
	MoveKinds [4]int
	// Kinds is the per-step move-kind trajectory (phase analysis,
	// Section 4.2.2).
	Kinds []game.MoveKind
}

// Run executes the process on g, mutating it in place, and returns the
// summary. The final content of g is the reached network.
func Run(g *graph.Graph, cfg Config) Result {
	if cfg.Game == nil {
		panic("dynamics: Config.Game is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = MaxCost{}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200*g.N() + 1000
	}
	if game.PreferNaiveScan(cfg.Game, g) {
		// MAX cost on a tree under a swap variant: incremental maintenance
		// is adversarial there, and the naive scans enumerate identical
		// moves in identical order, so the trace is unchanged.
		cfg.Game = game.Naive(cfg.Game)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	e := newEngine(g, cfg.Game, cfg.Workers)
	s := e.scratch()
	ep, hasEngine := cfg.Policy.(enginePolicy)

	var seen map[uint64][]seenState
	stepOf := func(*graph.Graph) (int, bool) { return 0, false }
	record := func(*graph.Graph, int) {}
	if cfg.DetectCycles {
		seen = make(map[uint64][]seenState)
		owned := cfg.Game.OwnershipMatters()
		hash := func(g *graph.Graph) uint64 {
			if owned {
				return g.Hash()
			}
			return g.HashUnowned()
		}
		equal := func(a, b *graph.Graph) bool {
			if owned {
				return a.Equal(b)
			}
			return a.EqualUnowned(b)
		}
		stepOf = func(g *graph.Graph) (int, bool) {
			for _, st := range seen[hash(g)] {
				if equal(st.g, g) {
					return st.step, true
				}
			}
			return 0, false
		}
		record = func(g *graph.Graph, step int) {
			h := hash(g)
			seen[h] = append(seen[h], seenState{g: g.Clone(), step: step})
		}
	}

	var res Result
	var moves []game.Move
	record(g, 0)
	for res.Steps < cfg.MaxSteps {
		var mover int
		if hasEngine {
			mover = ep.pickEngine(e, r)
		} else {
			mover = cfg.Policy.Pick(g, cfg.Game, s, r)
		}
		if mover < 0 {
			res.Converged = true
			return res
		}
		moves, _ = cfg.Game.BestMoves(g, mover, s, moves[:0])
		if len(moves) == 0 {
			// A policy returned an agent without improving moves;
			// that is a policy bug, not a game state.
			panic(fmt.Sprintf("dynamics: policy %q picked happy agent %d", cfg.Policy.Name(), mover))
		}
		// Clone: enumerated moves share the scratch's pooled backing, and
		// the copy outlives the next scan (OnStep may retain it).
		mv := pickMove(moves, cfg.Tie, r).Clone()
		game.Apply(g, mv)
		e.afterMove(mv)
		res.Steps++
		res.MoveKinds[mv.Kind()]++
		res.Kinds = append(res.Kinds, mv.Kind())
		if cfg.OnStep != nil {
			cfg.OnStep(res.Steps, mover, mv, g)
		}
		if cfg.DetectCycles {
			if first, ok := stepOf(g); ok {
				res.Cycled = true
				res.CycleLen = res.Steps - first
				return res
			}
			record(g, res.Steps)
		}
	}
	return res
}

type seenState struct {
	g    *graph.Graph
	step int
}

func pickMove(moves []game.Move, tie TieBreak, r *rand.Rand) game.Move {
	switch tie {
	case TieFirst:
		return moves[0]
	case TieLast:
		return moves[len(moves)-1]
	default:
		return moves[r.Intn(len(moves))]
	}
}

// Stable reports whether g is a stable network (pure Nash equilibrium) of
// gm: no agent has a feasible improving move.
func Stable(g *graph.Graph, gm game.Game) bool {
	s := game.NewScratch(g.N())
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			return false
		}
	}
	return true
}
