package dynamics

import (
	"math/rand"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// TieBreak selects among equally good best moves of the moving agent.
type TieBreak int

const (
	// TieRandom picks uniformly at random among the best moves
	// (Section 3.4.1: "breaking ties uniformly at random").
	TieRandom TieBreak = iota
	// TieFirst picks the first best move in enumeration order. Move
	// enumeration orders deletions before swaps before additions (the
	// preference of Section 4.2.1) and targets by increasing index (the
	// rule of the Theorem 2.11 trace), so TieFirst implements both
	// deterministic rules of the paper.
	TieFirst
	// TieLast picks the last best move in enumeration order.
	TieLast
)

func (t TieBreak) String() string {
	switch t {
	case TieRandom:
		return "random"
	case TieFirst:
		return "first"
	default:
		return "last"
	}
}

// Config parameterizes a network creation process.
type Config struct {
	// Game is the underlying network creation game. Required.
	Game game.Game
	// Policy decides who moves; defaults to the max cost policy.
	Policy Policy
	// Tie breaks among best moves; defaults to TieRandom.
	Tie TieBreak
	// MaxSteps aborts a (potentially non-convergent) process; defaults to
	// 200*n + 1000.
	MaxSteps int
	// Seed feeds the deterministic RNG used by policy and tie-breaking.
	Seed int64
	// Workers sets how many goroutines fan out the per-agent happiness
	// probes of the built-in policies; 0 or 1 probes serially. Probe
	// results are collected in deterministic order and the cost cache is
	// exact, so the trace of a seeded run is identical at any worker
	// count. Games whose probes mutate the graph transiently (Buy,
	// Bilateral) are always probed serially.
	Workers int
	// Oracle selects the distance-oracle mode backing scans and cost
	// reads. The zero value (auto) resolves by run size: exact below
	// AutoLandmarkMinN vertices, landmark above. Landmark mode prunes
	// with sound bounds and re-scores survivors exactly, so its traces
	// are bit-identical to exact mode at any size.
	Oracle OracleSpec
	// Backend selects the adjacency representation of runners that build
	// their own working copy of the network (cycles.SearchRoundCycle, the
	// ensemble and campaign spines, the cmds). Run and Runner.Run play
	// whatever representation g already has and never consult it: the
	// caller chose g's type when constructing it, typically through
	// BackendSpec.Materialize.
	Backend BackendSpec
	// Schedule selects the activation regime: nil or Sequential{} runs the
	// classical one-agent-per-step process, a Rounds value runs
	// simultaneous-move rounds (see Scheduler). Sequential runs are
	// bit-identical whether Schedule is nil or Sequential{}.
	Schedule Scheduler
	// DetectCycles records visited states and stops when a state repeats,
	// proving non-convergence of the played trajectory. States are
	// compared with or without ownership according to the game. Under a
	// Rounds schedule, states are compared at round boundaries.
	DetectCycles bool
	// OnStep, if non-nil, is invoked after each applied move. It must not
	// mutate g; the move is a private copy the callback may retain.
	OnStep func(step int, mover int, mv game.Move, g graph.Store)
	// Cancel, if non-nil, stops the process at the next step boundary
	// (round boundary under a Rounds schedule) once closed — the
	// graceful-shutdown seam of interactive traces. A cancelled run
	// reports like one that hit its step bound: the reached network is a
	// valid intermediate state, never a torn one.
	Cancel <-chan struct{}
}

// cancelled is the non-blocking poll of Config.Cancel (nil: never fires).
func cancelled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Result summarizes a finished process.
type Result struct {
	// Steps is the number of improving moves performed.
	Steps int
	// Converged reports that the final network is stable (no unhappy
	// agents), i.e. a pure Nash equilibrium was reached.
	Converged bool
	// Cycled reports that a previously visited state re-appeared
	// (requires Config.DetectCycles).
	Cycled bool
	// CycleLen is the number of moves between the two visits of the
	// repeated state when Cycled is set.
	CycleLen int
	// Rounds is the number of simultaneous-move rounds played; zero under
	// the sequential schedule.
	Rounds int
	// Skipped counts improving moves withheld by a round collision policy
	// (including every move of a rejected round); zero under the
	// sequential schedule.
	Skipped int
	// MoveKinds counts performed moves by kind.
	MoveKinds [4]int
	// Kinds is the per-step move-kind trajectory (phase analysis,
	// Section 4.2.2).
	Kinds []game.MoveKind
}

// Run executes the process on g, mutating it in place, and returns the
// summary. The final content of g is the reached network. Sweeps that run
// many processes back to back should reuse a Runner instead, which holds
// its allocations across runs; Run is exactly a single-use Runner.
func Run(g graph.Store, cfg Config) Result {
	return NewRunner().Run(g, cfg)
}

func pickMove(moves []game.Move, tie TieBreak, r *rand.Rand) game.Move {
	switch tie {
	case TieFirst:
		return moves[0]
	case TieLast:
		return moves[len(moves)-1]
	default:
		return moves[r.Intn(len(moves))]
	}
}

// Stable reports whether g is a stable network (pure Nash equilibrium) of
// gm: no agent has a feasible improving move. The scan runs through the
// process engine: one batched all-pairs build serves every agent's probe
// as a distance oracle, replacing the per-candidate searches of a bare
// HasImproving sweep (see BenchmarkStable).
func Stable(g graph.Store, gm game.Game) bool {
	if game.PreferNaiveScan(gm, g) {
		gm = game.Naive(gm)
	}
	e := newEngine(g, gm, 1)
	if e.halvesOK {
		// Building the cache installs it as the scratches' oracle.
		e.cost(0)
	}
	s := e.scratch()
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			return false
		}
	}
	return true
}
