package dynamics

import "fmt"

// Scheduler selects the move-activation regime of a process: who gets to
// move when, and against which network the moves are computed. The
// classical sequential process of the paper activates one unhappy agent
// per step; round-based schedules activate many agents at once, each
// computing a best response against the same immutable pre-round snapshot,
// and commit the responses together under a collision policy. The
// interface is sealed: Sequential and Rounds are the only implementations.
type Scheduler interface {
	// Name returns the schedule's registry name (see ScheduleByName).
	Name() string
	isScheduler()
}

// Sequential is the default schedule: the configured Policy activates one
// unhappy agent per step, exactly the process the paper analyses. A nil
// Config.Schedule selects it; runs under an explicit Sequential{} are
// bit-identical to runs under nil.
type Sequential struct{}

// Name implements Scheduler.
func (Sequential) Name() string { return "sequential" }

func (Sequential) isScheduler() {}

// ActiveSet selects which agents a round activates.
type ActiveSet int

const (
	// ActiveAll activates every unhappy agent, in increasing index order.
	ActiveAll ActiveSet = iota
	// ActiveShuffled activates every unhappy agent in an order drawn
	// uniformly at random each round (the round regime of randomized
	// rewiring experiments). The shuffle reorders commits, and with it
	// which move wins a collision.
	ActiveShuffled
	// ActivePolicy activates the single agent the configured Policy picks —
	// a singleton round. Rounds over singleton active sets reproduce the
	// sequential process move for move (the scheduler-equivalence
	// property), making ActivePolicy the bridge case of the seam.
	ActivePolicy
)

// Collision selects what happens when two activated agents' chosen moves
// touch a common edge slot (see game.MakePairKey) in the same round.
type Collision int

const (
	// FirstWriterWins commits moves in activation order; a move touching a
	// slot an earlier move already claimed is skipped.
	FirstWriterWins Collision = iota
	// SkipOnConflict skips every move involved in a collision — including
	// the first claimant — committing only moves whose slots nobody else
	// touched.
	SkipOnConflict
	// RejectRound discards the whole round when any collision occurs; the
	// network is unchanged and the next round starts fresh. Deterministic
	// configurations can stall under it, so runs are additionally bounded
	// by MaxSteps rounds.
	RejectRound
)

// Rounds is the simultaneous-move schedule: each round snapshots the
// network, activates an agent set, lets every activated agent compute a
// best response against the snapshot (in parallel over Config.Workers for
// games whose scans are read-only), and commits the responses in
// activation order under the collision policy. Commits within a round
// count as individual Steps; cycle detection compares states at round
// boundaries only.
type Rounds struct {
	// Active selects the per-round activation set.
	Active ActiveSet
	// Collision resolves same-round moves touching a common edge slot.
	Collision Collision
}

// Name implements Scheduler.
func (rd Rounds) Name() string {
	switch rd.Active {
	case ActivePolicy:
		return "rounds-policy"
	case ActiveShuffled:
		switch rd.Collision {
		case FirstWriterWins:
			return "rounds-shuffled"
		case SkipOnConflict:
			return "rounds-shuffled-skip"
		default:
			return "rounds-shuffled-reject"
		}
	default:
		switch rd.Collision {
		case FirstWriterWins:
			return "rounds"
		case SkipOnConflict:
			return "rounds-skip"
		default:
			return "rounds-reject"
		}
	}
}

func (Rounds) isScheduler() {}

// scheduleEntry pairs a registry name with its schedule.
type scheduleEntry struct {
	name  string
	sched Scheduler
}

// scheduleRegistry lists the named schedules, in help-text order.
func scheduleRegistry() []scheduleEntry {
	return []scheduleEntry{
		{"sequential", Sequential{}},
		{"rounds", Rounds{Active: ActiveAll, Collision: FirstWriterWins}},
		{"rounds-shuffled", Rounds{Active: ActiveShuffled, Collision: FirstWriterWins}},
		{"rounds-skip", Rounds{Active: ActiveAll, Collision: SkipOnConflict}},
		{"rounds-reject", Rounds{Active: ActiveAll, Collision: RejectRound}},
	}
}

// ScheduleNames lists the registry names accepted by ScheduleByName, in
// help-text order.
func ScheduleNames() []string {
	es := scheduleRegistry()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.name
	}
	return names
}

// ScheduleByName resolves a registry name to its schedule.
func ScheduleByName(name string) (Scheduler, bool) {
	for _, e := range scheduleRegistry() {
		if e.name == name {
			return e.sched, true
		}
	}
	return nil, false
}

// MustSchedule is ScheduleByName for static registrations; it panics on an
// unknown name.
func MustSchedule(name string) Scheduler {
	s, ok := ScheduleByName(name)
	if !ok {
		panic(fmt.Sprintf("dynamics: unknown schedule %q", name))
	}
	return s
}
