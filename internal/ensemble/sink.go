package ensemble

import (
	"encoding/json"
	"io"
	"os"
	"strconv"

	"ncg/internal/jsonl"
)

// Record is the result of one trial, the unit streamed to sinks. Field
// order is the JSONL schema; Moves counts performed moves indexed by
// game.MoveKind (delete, swap, buy, multi).
type Record struct {
	Scenario  string `json:"scenario"`
	N         int    `json:"n"`
	Trial     int    `json:"trial"`
	Seed      int64  `json:"seed"`
	Steps     int    `json:"steps"`
	Converged bool   `json:"converged"`
	Cycled    bool   `json:"cycled"`
	Moves     [4]int `json:"moves"`
}

// Sink consumes the per-trial records of an ensemble run. Execute delivers
// records in deterministic (n, trial) order from a single goroutine, so
// sinks need no locking.
type Sink interface {
	Write(rec Record) error
	// Close flushes buffered output and releases resources. Execute closes
	// every sink it was handed, whether or not the run succeeded.
	Close() error
}

// bufSink is the shared buffered-writer scaffolding of the stream sinks
// (owned by internal/jsonl so the campaign spine's sinks reuse it).
type bufSink = jsonl.BufWriter

func newBufSink(w io.Writer) bufSink { return jsonl.NewBufWriter(w) }

// JSONLSink streams records as one JSON object per line. Records are
// encoded into a reusable buffer by a hand-rolled encoder that produces
// byte-identical output to encoding/json for the Record schema, so a
// steady-state stream allocates nothing per record.
type JSONLSink struct {
	bufSink
	enc []byte
}

// NewJSONLSink writes JSONL records to w; if w is an io.Closer it is
// closed with the sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bufSink: newBufSink(w)}
}

// CreateJSONL creates (or truncates) a JSONL record file.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

func (s *JSONLSink) Write(rec Record) error {
	if !jsonPlain(rec.Scenario) {
		// Names outside printable ASCII take the reflective encoder; the
		// registry never produces them, so this path is cold by design.
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := s.W.Write(b); err != nil {
			return err
		}
		return s.W.WriteByte('\n')
	}
	s.enc = appendRecordJSON(s.enc[:0], rec)
	_, err := s.W.Write(s.enc)
	return err
}

// jsonPlain reports whether every byte of v is printable ASCII, the
// precondition of the pooled encoder's string escaping.
func jsonPlain(v string) bool {
	for i := 0; i < len(v); i++ {
		if v[i] < 0x20 || v[i] > 0x7e {
			return false
		}
	}
	return true
}

// appendJSONString appends a printable-ASCII string in encoding/json's
// format, including its HTML-safe escaping of <, > and &.
func appendJSONString(buf []byte, v string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '<':
			buf = append(buf, '\\', 'u', '0', '0', '3', 'c')
		case '>':
			buf = append(buf, '\\', 'u', '0', '0', '3', 'e')
		case '&':
			buf = append(buf, '\\', 'u', '0', '0', '2', '6')
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// appendRecordJSON appends rec as one JSON line, byte-identical to
// json.Marshal of the Record struct followed by a newline.
func appendRecordJSON(buf []byte, rec Record) []byte {
	buf = append(buf, `{"scenario":`...)
	buf = appendJSONString(buf, rec.Scenario)
	buf = append(buf, `,"n":`...)
	buf = strconv.AppendInt(buf, int64(rec.N), 10)
	buf = append(buf, `,"trial":`...)
	buf = strconv.AppendInt(buf, int64(rec.Trial), 10)
	buf = append(buf, `,"seed":`...)
	buf = strconv.AppendInt(buf, rec.Seed, 10)
	buf = append(buf, `,"steps":`...)
	buf = strconv.AppendInt(buf, int64(rec.Steps), 10)
	buf = append(buf, `,"converged":`...)
	buf = strconv.AppendBool(buf, rec.Converged)
	buf = append(buf, `,"cycled":`...)
	buf = strconv.AppendBool(buf, rec.Cycled)
	buf = append(buf, `,"moves":[`...)
	for i, m := range rec.Moves {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(m), 10)
	}
	return append(buf, ']', '}', '\n')
}

// CSVSink streams records as CSV with a fixed header, encoding each row
// into a reusable buffer.
type CSVSink struct {
	bufSink
	header bool
	enc    []byte
}

// NewCSVSink writes CSV records to w; if w is an io.Closer it is closed
// with the sink.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{bufSink: newBufSink(w)}
}

func (s *CSVSink) Write(rec Record) error {
	if !s.header {
		s.header = true
		if _, err := s.W.WriteString("scenario,n,trial,seed,steps,converged,cycled,deletes,swaps,buys,multis\n"); err != nil {
			return err
		}
	}
	buf := append(s.enc[:0], rec.Scenario...)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(rec.N), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(rec.Trial), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, rec.Seed, 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(rec.Steps), 10)
	buf = append(buf, ',')
	buf = strconv.AppendBool(buf, rec.Converged)
	buf = append(buf, ',')
	buf = strconv.AppendBool(buf, rec.Cycled)
	for _, m := range rec.Moves {
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m), 10)
	}
	buf = append(buf, '\n')
	s.enc = buf
	_, err := s.W.Write(buf)
	return err
}

// FuncSink adapts a callback into a Sink, for in-memory consumers.
type FuncSink func(rec Record) error

func (f FuncSink) Write(rec Record) error { return f(rec) }

func (f FuncSink) Close() error { return nil }
