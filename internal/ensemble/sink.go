package ensemble

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Record is the result of one trial, the unit streamed to sinks. Field
// order is the JSONL schema; Moves counts performed moves indexed by
// game.MoveKind (delete, swap, buy, multi).
type Record struct {
	Scenario  string `json:"scenario"`
	N         int    `json:"n"`
	Trial     int    `json:"trial"`
	Seed      int64  `json:"seed"`
	Steps     int    `json:"steps"`
	Converged bool   `json:"converged"`
	Cycled    bool   `json:"cycled"`
	Moves     [4]int `json:"moves"`
}

// Sink consumes the per-trial records of an ensemble run. Execute delivers
// records in deterministic (n, trial) order from a single goroutine, so
// sinks need no locking.
type Sink interface {
	Write(rec Record) error
	// Close flushes buffered output and releases resources. Execute closes
	// every sink it was handed, whether or not the run succeeded.
	Close() error
}

// bufSink is the shared buffered-writer scaffolding of the stream sinks:
// it owns the buffer and closes the underlying writer if it is a Closer.
type bufSink struct {
	bw *bufio.Writer
	c  io.Closer
}

func newBufSink(w io.Writer) bufSink {
	s := bufSink{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Flush pushes buffered records to the underlying writer.
func (s *bufSink) Flush() error { return s.bw.Flush() }

func (s *bufSink) Close() error {
	err := s.bw.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// JSONLSink streams records as one JSON object per line.
type JSONLSink struct {
	bufSink
}

// NewJSONLSink writes JSONL records to w; if w is an io.Closer it is
// closed with the sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{newBufSink(w)}
}

// CreateJSONL creates (or truncates) a JSONL record file.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

func (s *JSONLSink) Write(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := s.bw.Write(b); err != nil {
		return err
	}
	return s.bw.WriteByte('\n')
}

// CSVSink streams records as CSV with a fixed header.
type CSVSink struct {
	bufSink
	header bool
}

// NewCSVSink writes CSV records to w; if w is an io.Closer it is closed
// with the sink.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{bufSink: newBufSink(w)}
}

func (s *CSVSink) Write(rec Record) error {
	if !s.header {
		s.header = true
		if _, err := s.bw.WriteString("scenario,n,trial,seed,steps,converged,cycled,deletes,swaps,buys,multis\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.bw, "%s,%d,%d,%d,%d,%t,%t,%d,%d,%d,%d\n",
		rec.Scenario, rec.N, rec.Trial, rec.Seed, rec.Steps, rec.Converged, rec.Cycled,
		rec.Moves[0], rec.Moves[1], rec.Moves[2], rec.Moves[3])
	return err
}

// FuncSink adapts a callback into a Sink, for in-memory consumers.
type FuncSink func(rec Record) error

func (f FuncSink) Write(rec Record) error { return f(rec) }

func (f FuncSink) Close() error { return nil }
