package ensemble

import (
	"strings"
	"testing"
)

// TestRegistryCoverage checks the built-in registry is the promised
// execution spine: at least 12 scenarios, spanning all five game
// variants, each structurally valid and with the paper's figure configs
// present.
func TestRegistryCoverage(t *testing.T) {
	scs := List()
	if len(scs) < 12 {
		t.Fatalf("registry has %d scenarios, want >= 12", len(scs))
	}
	families := map[Family]int{}
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.validate(); err != nil {
			t.Fatal(err)
		}
		if sc.Description == "" {
			t.Fatalf("scenario %q has no description", sc.Name)
		}
		families[sc.Family]++
	}
	for _, fam := range Families() {
		if families[fam] == 0 {
			t.Fatalf("no scenario for game family %q", fam)
		}
	}
	for _, name := range []string{"fig1-sg-max-path", "fig7-asg-sum-k2", "fig8-asg-max-k2", "fig11-gbg-sum-a4", "fig12-gbg-sum-rl-a2", "fig13-gbg-max-a4", "fig14-gbg-max-dl-a2"} {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("paper figure scenario %q not registered", name)
		}
	}
}

// TestRegistryScenariosRun smoke-runs every registered scenario at its
// smallest default agent count: the game builds, the ensemble draws, the
// process runs and a record comes out.
func TestRegistryScenariosRun(t *testing.T) {
	for _, sc := range List() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			n := sc.Ns[0]
			var recs []Record
			sum, err := Execute(sc, Options{Ns: []int{n}, Trials: 2, Workers: 2},
				FuncSink(func(rec Record) error { recs = append(recs, rec); return nil }))
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 {
				t.Fatalf("got %d records", len(recs))
			}
			if sum.Aggregates[0].Trials != 2 {
				t.Fatalf("bad summary: %+v", sum.Aggregates[0])
			}
			gm := sc.NewGame(n)
			if gm.Name() == "" {
				t.Fatal("game has no name")
			}
		})
	}
}

// TestRegisterRejectsInvalid covers the registration error paths.
func TestRegisterRejectsInvalid(t *testing.T) {
	if err := Register(Scenario{}); err == nil {
		t.Fatal("registered an empty scenario")
	}
	sc := testScenario()
	if err := Register(sc); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration: %v", err)
	}
	sc.Name = "x-test-valid"
	if err := Register(sc); err != nil {
		t.Fatal(err)
	}
	if _, ok := Lookup("x-test-valid"); !ok {
		t.Fatal("lookup after register failed")
	}
	if names := Names(); names[len(names)-1] != "x-test-valid" {
		t.Fatalf("Names not sorted: %v", names)
	}
}
