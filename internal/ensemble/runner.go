package ensemble

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ncg/internal/dynamics"
	"ncg/internal/gen"
	"ncg/internal/graph"
	"ncg/internal/rng"
)

// Options override a scenario's defaults and shape the execution.
type Options struct {
	// Ns overrides the agent-count grid (nil: scenario default).
	Ns []int
	// Trials overrides the per-n trial count (0: scenario default).
	Trials int
	// Seed overrides the base seed (0: scenario default).
	Seed int64
	// Workers is the size of the shard worker pool (0: GOMAXPROCS). The
	// worker count never changes results, only wall-clock time.
	Workers int
	// ShardSize is the number of consecutive trials a worker claims at
	// once (0: an automatic size targeting a few shards per worker). The
	// shard size never changes results.
	ShardSize int
	// ProbeWorkers fans each run's happiness probes over a worker pool
	// (see dynamics.Config.Workers). Trial-level parallelism saturates
	// cores at small n; trade it for probe parallelism at large n.
	ProbeWorkers int
	// Done holds trials already executed (loaded from a partial JSONL
	// checkpoint); they are folded into the summary from their recorded
	// results and not re-run or re-emitted to sinks.
	Done *Checkpoint
	// Context, if non-nil, cancels the run between trials: in-flight
	// shards stop at their next trial boundary, everything already
	// ordered is flushed to the sinks, and Execute returns the context's
	// error — the JSONL file left behind is a maximal resumable
	// checkpoint. The graceful-shutdown seam of the cmds routes
	// SIGINT/SIGTERM here.
	Context context.Context
}

// Aggregate summarizes the trials of one agent count.
type Aggregate struct {
	N          int
	Trials     int
	Converged  int
	Cycled     int
	SumSteps   int64
	MinSteps   int
	MaxSteps   int
	TotalMoves [4]int // by game.MoveKind
}

// AvgSteps returns the mean step count over the aggregated trials.
func (a Aggregate) AvgSteps() float64 {
	if a.Trials == 0 {
		return 0
	}
	return float64(a.SumSteps) / float64(a.Trials)
}

// add folds one trial record into the aggregate.
func (a *Aggregate) add(rec Record) {
	a.Trials++
	if rec.Converged {
		a.Converged++
	}
	if rec.Cycled {
		a.Cycled++
	}
	a.SumSteps += int64(rec.Steps)
	if rec.Steps > a.MaxSteps {
		a.MaxSteps = rec.Steps
	}
	if rec.Steps < a.MinSteps {
		a.MinSteps = rec.Steps
	}
	for k, c := range rec.Moves {
		a.TotalMoves[k] += c
	}
}

// Summary is the aggregated outcome of an ensemble run: one Aggregate per
// agent count, in grid order.
type Summary struct {
	Scenario   string
	Ns         []int
	Aggregates []Aggregate
}

// trialExec is the per-worker execution arena: a dynamics.Runner holding
// engine scratches, the distance cache and move buffers across trials, and
// a reseedable RNG for the initial-network generators. One arena serves
// every trial a worker claims, so a sweep's steady state stops allocating
// per trial.
type trialExec struct {
	dyn *dynamics.Runner
	rng *gen.Rand
}

func newTrialExec() *trialExec {
	return &trialExec{dyn: dynamics.NewRunner(), rng: gen.NewRand(0)}
}

// runTrial executes one seeded trial. The seed stream of a trial depends
// only on (base seed, n, trial), never on sharding, scheduling or arena
// reuse, which is what makes ensemble runs bit-identical at any worker
// count.
func runTrial(sc Scenario, n, trial int, base int64, probeWorkers int, ex *trialExec) Record {
	seed := rng.Seed(base, uint64(n), uint64(trial))
	ex.rng.Seed(seed)
	// The backend choice never touches the seed stream: NewSparse consumes
	// r exactly like NewInitial, and converting a dense draw reads no
	// randomness, so records are bit-identical across backends.
	var g graph.Store
	if sc.Backend.Resolve(n, sc.Oracle) == dynamics.BackendSparse {
		if sc.NewSparse != nil {
			g = sc.NewSparse(n, ex.rng)
		} else {
			g = graph.NewSparseFrom(sc.NewInitial(n, ex.rng))
		}
	} else {
		g = sc.NewInitial(n, ex.rng)
	}
	res := ex.dyn.Run(g, dynamics.Config{
		Game:         sc.NewGame(n),
		Policy:       sc.Policy.Policy(),
		Tie:          sc.Tie,
		MaxSteps:     sc.MaxSteps,
		Seed:         seed + 1,
		Workers:      probeWorkers,
		Schedule:     sc.Schedule,
		DetectCycles: sc.DetectCycles,
		Oracle:       sc.Oracle,
		Backend:      sc.Backend,
	})
	return Record{
		Scenario:  sc.Name,
		N:         n,
		Trial:     trial,
		Seed:      seed,
		Steps:     res.Steps,
		Converged: res.Converged,
		Cycled:    res.Cycled,
		Moves:     res.MoveKinds,
	}
}

// flusher is implemented by sinks that can push buffered records to their
// backing store; Execute flushes after every emitted shard so an
// interrupted run leaves a maximal resumable checkpoint.
type flusher interface {
	Flush() error
}

// shard is a claimable range of trials of one agent count.
type shard struct {
	nIdx   int
	lo, hi int
}

// shardOut is a finished shard: records in trial order, resumed ones
// marked so they are aggregated but not re-emitted. truncated marks a
// shard cut short by another shard's failure; its records are a valid
// prefix of the shard but sink emission must stop there.
type shardOut struct {
	recs      []Record
	resumed   []bool
	err       error
	truncated bool
}

// Execute runs every trial of the scenario, sharding the trial ranges over
// a worker pool, and streams the records to the sinks in deterministic
// (n, trial) order. It closes every sink before returning. Results —
// summary and sink output — are bit-identical for any Workers and
// ShardSize; a checkpoint in opt.Done resumes a partial run, re-running
// only the missing trials.
func Execute(sc Scenario, opt Options, sinks ...Sink) (Summary, error) {
	sum, err := execute(sc, opt, sinks)
	for _, s := range sinks {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return sum, err
}

func execute(sc Scenario, opt Options, sinks []Sink) (Summary, error) {
	if err := sc.validate(); err != nil {
		return Summary{}, err
	}
	ns := opt.Ns
	if len(ns) == 0 {
		ns = sc.Ns
	}
	trials := opt.Trials
	if trials <= 0 {
		trials = sc.Trials
	}
	base := opt.Seed
	if base == 0 {
		base = sc.Seed
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sc.CheckN != nil {
		for _, n := range ns {
			if err := sc.CheckN(n); err != nil {
				return Summary{}, fmt.Errorf("ensemble: scenario %q: %v", sc.Name, err)
			}
		}
	}
	shardSize := opt.ShardSize
	if shardSize <= 0 {
		// Target a few shards per worker and n for load balance.
		shardSize = trials / (4 * workers)
		if shardSize < 1 {
			shardSize = 1
		}
	}

	// A checkpoint from a different grid or trial count would leave its
	// extra records stranded in the output file (never enumerated, never
	// aggregated) — reject it up front; per-record scenario/seed mismatch
	// is caught during execution.
	if n, trial, ok := opt.Done.outside(ns, trials); ok {
		return Summary{}, fmt.Errorf("ensemble: checkpoint record n=%d trial=%d lies outside this run's grid; resume with the original ns/trials", n, trial)
	}

	var shards []shard
	for ni := range ns {
		for lo := 0; lo < trials; lo += shardSize {
			hi := lo + shardSize
			if hi > trials {
				hi = trials
			}
			shards = append(shards, shard{nIdx: ni, lo: lo, hi: hi})
		}
	}

	sum := Summary{Scenario: sc.Name, Ns: ns, Aggregates: make([]Aggregate, len(ns))}
	for i, n := range ns {
		sum.Aggregates[i] = Aggregate{N: n, MinSteps: int(^uint(0) >> 1)}
	}

	// Workers claim shard indices; the collector receives finished shards
	// out of order and replays them to the sinks strictly in shard (hence
	// (n, trial)) order.
	var abort atomic.Bool
	if ctx := opt.Context; ctx != nil {
		// Cancellation flips the same abort latch a shard failure uses:
		// workers stop at their next trial boundary and the emit loop
		// flushes the ordered prefix, leaving a maximal resumable file.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				abort.Store(true)
			case <-watchDone:
			}
		}()
	}
	runShard := func(sh shard, ex *trialExec) shardOut {
		out := shardOut{
			recs:    make([]Record, 0, sh.hi-sh.lo),
			resumed: make([]bool, 0, sh.hi-sh.lo),
		}
		n := ns[sh.nIdx]
		for t := sh.lo; t < sh.hi; t++ {
			if abort.Load() {
				out.truncated = true
				return out
			}
			if opt.Done != nil {
				if rec, ok := opt.Done.record(n, t); ok {
					if rec.Scenario != sc.Name || rec.Seed != rng.Seed(base, uint64(n), uint64(t)) {
						out.err = fmt.Errorf("ensemble: checkpoint record n=%d trial=%d is from scenario %q seed %d, not this run", n, t, rec.Scenario, rec.Seed)
						return out
					}
					out.recs = append(out.recs, rec)
					out.resumed = append(out.resumed, true)
					continue
				}
			}
			rec, err := safeTrial(sc, n, t, base, opt.ProbeWorkers, ex)
			if err != nil {
				out.err = err
				return out
			}
			out.recs = append(out.recs, rec)
			out.resumed = append(out.resumed, false)
		}
		return out
	}

	next := make(chan int)
	finished := make(chan int, workers)
	pending := make([]*shardOut, len(shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	go func() {
		for i := range shards {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := newTrialExec()
			for i := range next {
				out := runShard(shards[i], ex)
				if out.err != nil {
					abort.Store(true)
				}
				mu.Lock()
				pending[i] = &out
				mu.Unlock()
				finished <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(finished)
	}()

	// Replay finished shards to the sinks strictly in shard order as they
	// become available, so a long run streams records (and an interrupted
	// one leaves a resumable prefix) instead of buffering everything.
	var firstErr error
	stopSinks := false
	nextEmit := 0
	emitReady := func() {
		for nextEmit < len(shards) {
			mu.Lock()
			out := pending[nextEmit]
			mu.Unlock()
			if out == nil {
				return
			}
			for j, rec := range out.recs {
				sum.Aggregates[shards[nextEmit].nIdx].add(rec)
				if out.resumed[j] || stopSinks || firstErr != nil {
					continue
				}
				for _, s := range sinks {
					if err := s.Write(rec); err != nil && firstErr == nil {
						firstErr = err
						abort.Store(true)
					}
				}
			}
			// Stop sink output at the first failed or truncated shard: its
			// records still precede the cut, but emitting anything after it
			// would leave an interior gap that a checkpoint resume could
			// not fill in order.
			if firstErr != nil || out.err != nil || out.truncated {
				stopSinks = true
			}
			if out.err != nil && firstErr == nil {
				firstErr = out.err
			}
			for _, s := range sinks {
				if f, ok := s.(flusher); ok {
					if err := f.Flush(); err != nil && firstErr == nil {
						firstErr = err
						abort.Store(true)
					}
				}
			}
			nextEmit++
		}
	}
	for range finished {
		emitReady()
	}
	emitReady()
	for i := range sum.Aggregates {
		if sum.Aggregates[i].Trials == 0 {
			sum.Aggregates[i].MinSteps = 0
		}
	}
	if firstErr == nil && opt.Context != nil {
		// Report cancellation even though the partial stream is valid, so
		// callers distinguish "interrupted, resume later" from a
		// completed run.
		firstErr = opt.Context.Err()
	}
	if firstErr != nil {
		return sum, firstErr
	}
	return sum, nil
}

// safeTrial runs one trial, converting generator or game panics (e.g. an
// infeasible n for a budget ensemble) into errors so a bad grid fails the
// run instead of crashing the pool.
func safeTrial(sc Scenario, n, trial int, base int64, probeWorkers int, ex *trialExec) (rec Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ensemble: scenario %q n=%d trial=%d: %v", sc.Name, n, trial, r)
		}
	}()
	return runTrial(sc, n, trial, base, probeWorkers, ex), nil
}
