// Package ensemble is the execution spine for every game variant: a
// registry of named scenarios (game x alpha schedule x policy x tie-break
// x initial-network ensemble) and a sharded trial executor that fans trial
// ranges over a worker pool with per-trial deterministic seed streams,
// streams per-trial records to pluggable sinks (JSONL, CSV, callbacks) and
// resumes from partial JSONL checkpoints. Results are bit-identical for
// any worker count and any shard size; the empirical figures of the paper
// (internal/experiments) are thin queries over this spine.
package ensemble

import (
	"fmt"

	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// PolicyKind selects a move policy by name; it is the serializable form of
// dynamics.Policy used by scenarios and sweep layers.
type PolicyKind int

const (
	// MaxCost is the max cost policy of Section 3.4.1 (random ties among
	// equal-cost agents).
	MaxCost PolicyKind = iota
	// Random is the random policy of Section 3.4.1.
	Random
	// MaxCostDeterministic is the max cost policy with smallest-index
	// tie-breaking, the rule of the Theorem 2.11 trace and Figure 1.
	MaxCostDeterministic
	// MinIndex always moves the unhappy agent with the smallest index.
	MinIndex
)

// policyKinds spans the valid PolicyKind values.
var policyKinds = []PolicyKind{MaxCost, Random, MaxCostDeterministic, MinIndex}

func (p PolicyKind) String() string {
	switch p {
	case MaxCost:
		return "max cost"
	case Random:
		return "random"
	case MaxCostDeterministic:
		return "max cost det"
	case MinIndex:
		return "min index"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(p))
}

// Policy returns the dynamics policy the kind names.
func (p PolicyKind) Policy() dynamics.Policy {
	switch p {
	case Random:
		return dynamics.Random{}
	case MaxCostDeterministic:
		return dynamics.MaxCostDeterministic{}
	case MinIndex:
		return dynamics.MinIndex{}
	}
	return dynamics.MaxCost{}
}

// PolicyKindByName returns the kind with the given String form.
func PolicyKindByName(name string) (PolicyKind, bool) {
	for _, p := range policyKinds {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// Family identifies one of the five implemented game variants.
type Family string

const (
	FamilySwap      Family = "sg"        // Swap Game (Alon et al.)
	FamilyAsymSwap  Family = "asg"       // Asymmetric Swap Game
	FamilyGreedyBuy Family = "gbg"       // Greedy Buy Game
	FamilyBuy       Family = "bg"        // Buy Game (Fabrikant et al.)
	FamilyBilateral Family = "bilateral" // bilateral equal-split Buy Game
)

// Families lists the five game variants every registry must be able to
// span.
func Families() []Family {
	return []Family{FamilySwap, FamilyAsymSwap, FamilyGreedyBuy, FamilyBuy, FamilyBilateral}
}

// Scenario is one named, registrable workload: everything needed to run an
// ensemble of seeded trials at any agent count. The zero tie-break is
// TieRandom, matching the experimental setup of the paper.
type Scenario struct {
	// Name is the registry key (kebab-case, e.g. "fig7-asg-sum-k2").
	Name string
	// Description is a one-line summary shown by listings.
	Description string
	// Family is the game variant the scenario plays.
	Family Family
	// NewGame builds the game for agent count n (alpha may depend on n).
	NewGame func(n int) game.Game
	// NewInitial draws a random initial network from the scenario's
	// ensemble.
	NewInitial func(n int, r *gen.Rand) *graph.Graph
	// NewSparse, if non-nil, draws the same ensemble directly into the
	// CSR backend — it must consume r exactly like NewInitial and yield
	// the CSR image of the network NewInitial would build, so a trial is
	// bit-identical whichever constructor runs. Trials whose resolved
	// backend is sparse use it when present and otherwise convert the
	// dense draw; at agent counts where the dense bitset cannot even be
	// allocated, NewSparse is what makes the scenario runnable.
	NewSparse func(n int, r *gen.Rand) *graph.Sparse
	// CheckN, if non-nil, validates an agent count before any trial runs.
	// Execute rejects a grid containing an invalid n up front, so an
	// infeasible parameter combination (e.g. a budget-k ensemble with
	// n <= 2k) surfaces as a configuration error instead of a generator
	// panic deep inside a worker.
	CheckN func(n int) error
	// Policy selects the move policy.
	Policy PolicyKind
	// Tie breaks among best moves (zero value: random ties).
	Tie dynamics.TieBreak
	// Ns is the default agent-count grid.
	Ns []int
	// Trials is the default number of trials per agent count.
	Trials int
	// Seed is the default base seed; every (n, trial) pair derives its own
	// stream from it.
	Seed int64
	// MaxSteps caps each run (0: dynamics default).
	MaxSteps int
	// DetectCycles records visited states during each run and stops on a
	// repeat, proving non-convergence of the played trajectory; useful for
	// the variants without a convergence guarantee (Buy, bilateral).
	DetectCycles bool
	// Schedule selects the activation regime of every trial (nil:
	// sequential one-agent-per-step play, the classical process). Round
	// scenarios set a dynamics.Rounds value here; the record schema is
	// unchanged — round trials report committed moves as Steps.
	Schedule dynamics.Scheduler
	// Oracle selects the distance oracle of every trial (zero value: auto —
	// exact at the registry's grid sizes, landmark above the auto
	// threshold). Landmark trials are bit-identical to exact ones, so the
	// choice never changes records, only memory and wall-clock at large n.
	Oracle dynamics.OracleSpec
	// Backend selects the adjacency representation of every trial (zero
	// value: auto — dense at exact-oracle sizes, sparse CSR when the
	// oracle resolves to landmark mode). Both backends enumerate
	// neighbours in the same order, so records are bit-identical; the
	// choice only moves memory, O(n²/8) versus O(n+m).
	Backend dynamics.BackendSpec
}

// validate reports structural problems that would make the scenario
// unrunnable.
func (sc Scenario) validate() error {
	switch {
	case sc.Name == "":
		return fmt.Errorf("ensemble: scenario has no name")
	case sc.NewGame == nil:
		return fmt.Errorf("ensemble: scenario %q has no game constructor", sc.Name)
	case sc.NewInitial == nil:
		return fmt.Errorf("ensemble: scenario %q has no initial-network ensemble", sc.Name)
	case len(sc.Ns) == 0:
		return fmt.Errorf("ensemble: scenario %q has no default agent counts", sc.Name)
	case sc.Trials <= 0:
		return fmt.Errorf("ensemble: scenario %q has no default trial count", sc.Name)
	}
	return nil
}
