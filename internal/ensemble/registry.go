package ensemble

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to scenarios. Built-in scenarios are
// registered by this package's init (scenarios.go); callers may add their
// own with Register, which makes every future workload a one-entry
// registration instead of bespoke plumbing.
var registry = struct {
	sync.RWMutex
	m map[string]Scenario
}{m: make(map[string]Scenario)}

// Register adds sc to the registry. It returns an error if the scenario is
// structurally unrunnable or its name is already taken.
func Register(sc Scenario) error {
	if err := sc.validate(); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[sc.Name]; dup {
		return fmt.Errorf("ensemble: scenario %q already registered", sc.Name)
	}
	registry.m[sc.Name] = sc
	return nil
}

// mustRegister registers a built-in scenario and panics on conflict.
func mustRegister(sc Scenario) {
	if err := Register(sc); err != nil {
		panic(err)
	}
}

// Lookup returns the registered scenario with the given name.
func Lookup(name string) (Scenario, bool) {
	registry.RLock()
	defer registry.RUnlock()
	sc, ok := registry.m[name]
	return sc, ok
}

// List returns every registered scenario sorted by name.
func List() []Scenario {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Scenario, 0, len(registry.m))
	for _, sc := range registry.m {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of every registered scenario.
func Names() []string {
	scs := List()
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
	}
	return names
}
