package ensemble

import (
	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// Built-in scenarios: the paper's figure configurations plus workloads
// spanning all five game variants. Each entry is one named combination of
// game x alpha schedule x policy x tie-break x initial-network ensemble;
// the figure regenerations of internal/experiments sweep parameterized
// families of these same configurations over their grids.

// grid is the default experiment-scale agent grid.
var grid = []int{10, 20, 30, 40, 50}

// smallGrid is the grid for games with exhaustive best responses (Buy,
// bilateral), where scans enumerate all strategy subsets.
var smallGrid = []int{6, 8, 10}

func budget(k int) func(n int, r *gen.Rand) *graph.Graph {
	return func(n int, r *gen.Rand) *graph.Graph { return gen.BudgetNetwork(n, k, r) }
}

// budgetCheck is the upfront grid validation of the budget-k ensembles.
func budgetCheck(k int) func(n int) error {
	return func(n int) error { return gen.ValidateBudget(n, k) }
}

func randomConn(mMul int) func(n int, r *gen.Rand) *graph.Graph {
	return func(n int, r *gen.Rand) *graph.Graph { return gen.RandomConnected(n, mMul*n, r) }
}

// randomConnCheck is the upfront grid validation of the m = mMul*n
// ensembles.
func randomConnCheck(mMul int) func(n int) error {
	return func(n int) error { return gen.ValidateConnected(n, mMul*n) }
}

func randomTree(n int, r *gen.Rand) *graph.Graph { return gen.RandomTree(n, r) }

func randomLine(n int, r *gen.Rand) *graph.Graph { return gen.RandomLine(n, r) }

func directedLine(n int, r *gen.Rand) *graph.Graph { return gen.DirectedLine(n) }

// gbg builds a Greedy Buy Game with alpha = n/den.
func gbg(kind game.DistKind, den int64) func(n int) game.Game {
	return func(n int) game.Game { return game.NewGreedyBuy(kind, game.NewAlpha(int64(n), den)) }
}

func init() {
	// Swap Game (Alon et al.): either endpoint may swap an edge.
	mustRegister(Scenario{
		Name:        "fig1-sg-max-path",
		Description: "MAX-SG on the path, max cost policy with deterministic ties (Figure 1 / Theorem 2.11 trace)",
		Family:      FamilySwap,
		NewGame:     func(int) game.Game { return game.NewSwap(game.Max) },
		NewInitial:  directedLine,
		Policy:      MaxCostDeterministic,
		Tie:         dynamics.TieFirst,
		Ns:          []int{16, 32, 64, 128},
		Trials:      1,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "sg-sum-budget-k3",
		Description: "SUM-SG on the budget-3 ensemble, max cost policy",
		Family:      FamilySwap,
		NewGame:     func(int) game.Game { return game.NewSwap(game.Sum) },
		NewInitial:  budget(3),
		CheckN:      budgetCheck(3),
		Policy:      MaxCost,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "sg-max-budget-k3",
		Description: "MAX-SG on the budget-3 ensemble, random policy",
		Family:      FamilySwap,
		NewGame:     func(int) game.Game { return game.NewSwap(game.Max) },
		NewInitial:  budget(3),
		CheckN:      budgetCheck(3),
		Policy:      Random,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})

	// Asymmetric Swap Game (Mihalák & Schlegel): owner-only swaps.
	mustRegister(Scenario{
		Name:        "fig7-asg-sum-k2",
		Description: "SUM-ASG on the budget-2 ensemble, max cost policy (Figure 7, k=2 series)",
		Family:      FamilyAsymSwap,
		NewGame:     func(int) game.Game { return game.NewAsymSwap(game.Sum) },
		NewInitial:  budget(2),
		CheckN:      budgetCheck(2),
		Policy:      MaxCost,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "fig7-asg-sum-k2-random",
		Description: "SUM-ASG on the budget-2 ensemble, random policy (Figure 7, k=2 series)",
		Family:      FamilyAsymSwap,
		NewGame:     func(int) game.Game { return game.NewAsymSwap(game.Sum) },
		NewInitial:  budget(2),
		CheckN:      budgetCheck(2),
		Policy:      Random,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "fig8-asg-max-k2",
		Description: "MAX-ASG on the budget-2 ensemble, max cost policy (Figure 8, k=2 series)",
		Family:      FamilyAsymSwap,
		NewGame:     func(int) game.Game { return game.NewAsymSwap(game.Max) },
		NewInitial:  budget(2),
		CheckN:      budgetCheck(2),
		Policy:      MaxCost,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "asg-sum-tree",
		Description: "SUM-ASG on uniform random trees, max cost policy (tree convergence regime)",
		Family:      FamilyAsymSwap,
		NewGame:     func(int) game.Game { return game.NewAsymSwap(game.Sum) },
		NewInitial:  randomTree,
		Policy:      MaxCost,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})

	// Greedy Buy Game: buy, delete or swap one edge.
	mustRegister(Scenario{
		Name:        "fig11-gbg-sum-a4",
		Description: "SUM-GBG on random connected m=n networks, alpha=n/4, max cost policy (Figure 11 series)",
		Family:      FamilyGreedyBuy,
		NewGame:     gbg(game.Sum, 4),
		NewInitial:  randomConn(1),
		CheckN:      randomConnCheck(1),
		Policy:      MaxCost,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "fig12-gbg-sum-rl-a2",
		Description: "SUM-GBG from the random-ownership line, alpha=n/2, max cost policy (Figure 12 series)",
		Family:      FamilyGreedyBuy,
		NewGame:     gbg(game.Sum, 2),
		NewInitial:  randomLine,
		Policy:      MaxCost,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "fig13-gbg-max-a4",
		Description: "MAX-GBG on random connected m=n networks, alpha=n/4, max cost policy (Figure 13 series)",
		Family:      FamilyGreedyBuy,
		NewGame:     gbg(game.Max, 4),
		NewInitial:  randomConn(1),
		CheckN:      randomConnCheck(1),
		Policy:      MaxCost,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "fig14-gbg-max-dl-a2",
		Description: "MAX-GBG from the directed line, alpha=n/2, random policy (Figure 14 series)",
		Family:      FamilyGreedyBuy,
		NewGame:     gbg(game.Max, 2),
		NewInitial:  directedLine,
		Policy:      Random,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})
	mustRegister(Scenario{
		Name:        "gbg-sum-dense-an",
		Description: "SUM-GBG on dense m=4n networks at alpha=n, random policy (deletion-phase workload, Section 4.2.2)",
		Family:      FamilyGreedyBuy,
		NewGame:     gbg(game.Sum, 1),
		NewInitial:  randomConn(4),
		CheckN:      randomConnCheck(4),
		Policy:      Random,
		Ns:          grid,
		Trials:      60,
		Seed:        1,
	})

	// Buy Game (Fabrikant et al.): exhaustive best responses, small n.
	mustRegister(Scenario{
		Name:         "bg-sum-tree-a2",
		Description:  "SUM-BG at alpha=2 from uniform random trees, random policy (exhaustive best responses)",
		Family:       FamilyBuy,
		NewGame:      func(int) game.Game { return game.NewBuy(game.Sum, game.AlphaInt(2)) },
		NewInitial:   randomTree,
		Policy:       Random,
		Ns:           smallGrid,
		Trials:       20,
		Seed:         1,
		MaxSteps:     400,
		DetectCycles: true,
	})
	mustRegister(Scenario{
		Name:         "bg-max-tree-a2",
		Description:  "MAX-BG at alpha=2 from uniform random trees, max cost policy (exhaustive best responses)",
		Family:       FamilyBuy,
		NewGame:      func(int) game.Game { return game.NewBuy(game.Max, game.AlphaInt(2)) },
		NewInitial:   randomTree,
		Policy:       MaxCost,
		Ns:           smallGrid,
		Trials:       20,
		Seed:         1,
		MaxSteps:     400,
		DetectCycles: true,
	})

	// Simultaneous-move rounds: every unhappy agent best-responds against
	// the round's opening snapshot, colliding commits resolved
	// first-writer-wins. Even SUM variants with a sequential potential can
	// oscillate here, so all four detect cycles and cap their steps.
	mustRegister(Scenario{
		Name:         "rounds-sg-sum-budget-k3",
		Description:  "SUM-SG on the budget-3 ensemble under simultaneous rounds (first-writer-wins)",
		Family:       FamilySwap,
		NewGame:      func(int) game.Game { return game.NewSwap(game.Sum) },
		NewInitial:   budget(3),
		CheckN:       budgetCheck(3),
		Ns:           grid,
		Trials:       60,
		Seed:         1,
		MaxSteps:     4000,
		DetectCycles: true,
		Schedule:     dynamics.Rounds{Active: dynamics.ActiveAll, Collision: dynamics.FirstWriterWins},
	})
	mustRegister(Scenario{
		Name:         "rounds-sg-max-budget-k3",
		Description:  "MAX-SG on the budget-3 ensemble under shuffled simultaneous rounds",
		Family:       FamilySwap,
		NewGame:      func(int) game.Game { return game.NewSwap(game.Max) },
		NewInitial:   budget(3),
		CheckN:       budgetCheck(3),
		Ns:           grid,
		Trials:       60,
		Seed:         1,
		MaxSteps:     4000,
		DetectCycles: true,
		Schedule:     dynamics.Rounds{Active: dynamics.ActiveShuffled, Collision: dynamics.FirstWriterWins},
	})
	mustRegister(Scenario{
		Name:         "rounds-asg-sum-k2",
		Description:  "SUM-ASG on the budget-2 ensemble under simultaneous rounds (first-writer-wins)",
		Family:       FamilyAsymSwap,
		NewGame:      func(int) game.Game { return game.NewAsymSwap(game.Sum) },
		NewInitial:   budget(2),
		CheckN:       budgetCheck(2),
		Ns:           grid,
		Trials:       60,
		Seed:         1,
		MaxSteps:     4000,
		DetectCycles: true,
		Schedule:     dynamics.Rounds{Active: dynamics.ActiveAll, Collision: dynamics.FirstWriterWins},
	})
	mustRegister(Scenario{
		Name:         "rounds-asg-max-k2",
		Description:  "MAX-ASG on the budget-2 ensemble under simultaneous rounds (skip-on-conflict)",
		Family:       FamilyAsymSwap,
		NewGame:      func(int) game.Game { return game.NewAsymSwap(game.Max) },
		NewInitial:   budget(2),
		CheckN:       budgetCheck(2),
		Ns:           grid,
		Trials:       60,
		Seed:         1,
		MaxSteps:     4000,
		DetectCycles: true,
		Schedule:     dynamics.Rounds{Active: dynamics.ActiveAll, Collision: dynamics.SkipOnConflict},
	})

	// Bilateral equal-split Buy Game (Corbo & Parkes): both endpoints
	// consent and share the edge price.
	mustRegister(Scenario{
		Name:         "bilateral-sum-tree",
		Description:  "SUM bilateral game at alpha=3/2 from uniform random trees, max cost policy",
		Family:       FamilyBilateral,
		NewGame:      func(int) game.Game { return game.NewBilateral(game.Sum, game.NewAlpha(3, 2)) },
		NewInitial:   randomTree,
		Policy:       MaxCost,
		Ns:           smallGrid,
		Trials:       20,
		Seed:         1,
		MaxSteps:     400,
		DetectCycles: true,
	})
	mustRegister(Scenario{
		Name:         "bilateral-max-line",
		Description:  "MAX bilateral game at alpha=2 from the random-ownership line, random policy",
		Family:       FamilyBilateral,
		NewGame:      func(int) game.Game { return game.NewBilateral(game.Max, game.AlphaInt(2)) },
		NewInitial:   randomLine,
		Policy:       Random,
		Ns:           smallGrid,
		Trials:       20,
		Seed:         1,
		MaxSteps:     400,
		DetectCycles: true,
	})
}
