package ensemble

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ncg/internal/dynamics"
)

// testScenario is a small, fast ASG workload exercising both the budget
// generator and the random policy (the policy that consumes the most RNG).
func testScenario() Scenario {
	sc, ok := Lookup("fig7-asg-sum-k2-random")
	if !ok {
		panic("test scenario not registered")
	}
	return sc
}

func runJSONL(t *testing.T, sc Scenario, opt Options) (string, Summary) {
	t.Helper()
	var buf bytes.Buffer
	sum, err := Execute(sc, opt, NewJSONLSink(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), sum
}

// TestExecuteBitIdenticalAcrossWorkersAndShards is the spine's core
// guarantee: the streamed records and the summary are byte-for-byte the
// same for any worker count and any shard size.
func TestExecuteBitIdenticalAcrossWorkersAndShards(t *testing.T) {
	sc := testScenario()
	base := Options{Ns: []int{8, 12}, Trials: 10, Seed: 3}
	ref, refSum := runJSONL(t, sc, Options{Ns: base.Ns, Trials: base.Trials, Seed: base.Seed, Workers: 1, ShardSize: base.Trials})
	variants := []Options{
		{Ns: base.Ns, Trials: base.Trials, Seed: base.Seed, Workers: 8, ShardSize: 1},
		{Ns: base.Ns, Trials: base.Trials, Seed: base.Seed, Workers: 3, ShardSize: 4},
		{Ns: base.Ns, Trials: base.Trials, Seed: base.Seed, Workers: 16, ShardSize: 7},
	}
	for _, opt := range variants {
		got, gotSum := runJSONL(t, sc, opt)
		if got != ref {
			t.Fatalf("workers=%d shard=%d changed the record stream:\n%s\nvs reference:\n%s", opt.Workers, opt.ShardSize, got, ref)
		}
		if !reflect.DeepEqual(gotSum, refSum) {
			t.Fatalf("workers=%d shard=%d changed the summary: %+v vs %+v", opt.Workers, opt.ShardSize, gotSum, refSum)
		}
	}
	if strings.Count(ref, "\n") != len(base.Ns)*base.Trials {
		t.Fatalf("expected %d records, got:\n%s", len(base.Ns)*base.Trials, ref)
	}
}

// TestExecuteRoundScenario runs a registered round scenario end to end:
// the record stream is bit-identical across worker counts and shard sizes
// (round trials consume probe workers too, so this also covers the
// parallel-scan determinism of the Rounds schedule), and every trial
// actually played rounds (cycling or step-bound trials report Converged
// false without a cycle flag only when the bound cut them).
func TestExecuteRoundScenario(t *testing.T) {
	sc, ok := Lookup("rounds-sg-sum-budget-k3")
	if !ok {
		t.Fatal("round scenario not registered")
	}
	base := Options{Ns: []int{8, 12}, Trials: 8, Seed: 3}
	ref, refSum := runJSONL(t, sc, Options{Ns: base.Ns, Trials: base.Trials, Seed: base.Seed, Workers: 1, ShardSize: base.Trials})
	for _, opt := range []Options{
		{Ns: base.Ns, Trials: base.Trials, Seed: base.Seed, Workers: 8, ShardSize: 1},
		{Ns: base.Ns, Trials: base.Trials, Seed: base.Seed, Workers: 3, ShardSize: 4, ProbeWorkers: 4},
	} {
		got, gotSum := runJSONL(t, sc, opt)
		if got != ref {
			t.Fatalf("workers=%d probe=%d changed the round record stream", opt.Workers, opt.ProbeWorkers)
		}
		if !reflect.DeepEqual(gotSum, refSum) {
			t.Fatalf("workers=%d probe=%d changed the summary", opt.Workers, opt.ProbeWorkers)
		}
	}
	var recs []Record
	if _, err := Execute(sc, Options{Ns: []int{10}, Trials: 6, Seed: 2},
		FuncSink(func(rec Record) error { recs = append(recs, rec); return nil })); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Steps == 0 && !rec.Converged {
			t.Fatalf("round trial made no progress: %+v", rec)
		}
	}
}

// TestResumeFromTruncatedJSONL kills a run mid-file (by truncating its
// JSONL output inside a record) and checks that resuming completes the
// file byte-for-byte identically to an uninterrupted run, with the same
// summary, re-running only the missing trials.
func TestResumeFromTruncatedJSONL(t *testing.T) {
	sc := testScenario()
	opt := Options{Ns: []int{8, 12}, Trials: 8, Seed: 5, Workers: 2}
	full, fullSum := runJSONL(t, sc, opt)

	// Cut mid-record, leaving some complete lines and a torn tail.
	cut := len(full)/2 + 3
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(full[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}

	cp, sink, err := ResumeJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() == 0 || cp.Len() >= len(opt.Ns)*opt.Trials {
		t.Fatalf("checkpoint recovered %d trials from a half file", cp.Len())
	}
	recomputed := 0
	count := FuncSink(func(Record) error { recomputed++; return nil })
	sum, err := Execute(sc, Options{Ns: opt.Ns, Trials: opt.Trials, Seed: opt.Seed, Workers: 3, ShardSize: 2, Done: cp}, sink, count)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != full {
		t.Fatalf("resumed file differs from uninterrupted run:\n%q\nvs\n%q", got, full)
	}
	if !reflect.DeepEqual(sum, fullSum) {
		t.Fatalf("resumed summary differs: %+v vs %+v", sum, fullSum)
	}
	if want := len(opt.Ns)*opt.Trials - cp.Len(); recomputed != want {
		t.Fatalf("resume recomputed %d trials, want %d", recomputed, want)
	}
}

// TestResumeRejectsForeignCheckpoint checks that a checkpoint from a
// different seed cannot silently corrupt a run.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	sc := testScenario()
	full, _ := runJSONL(t, sc, Options{Ns: []int{8}, Trials: 4, Seed: 5})
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(sc, Options{Ns: []int{8}, Trials: 4, Seed: 6, Done: cp}); err == nil {
		t.Fatal("expected a seed-mismatch error")
	}
}

// TestExecuteSummaryMatchesRecords cross-checks the aggregates against the
// streamed records.
func TestExecuteSummaryMatchesRecords(t *testing.T) {
	sc := testScenario()
	var recs []Record
	sum, err := Execute(sc, Options{Ns: []int{10}, Trials: 12, Seed: 2},
		FuncSink(func(rec Record) error { recs = append(recs, rec); return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("got %d records", len(recs))
	}
	var agg Aggregate
	agg = Aggregate{N: 10, MinSteps: int(^uint(0) >> 1)}
	for i, rec := range recs {
		if rec.N != 10 || rec.Trial != i || rec.Scenario != sc.Name {
			t.Fatalf("record %d malformed: %+v", i, rec)
		}
		agg.add(rec)
	}
	if !reflect.DeepEqual(sum.Aggregates[0], agg) {
		t.Fatalf("summary %+v does not match records %+v", sum.Aggregates[0], agg)
	}
}

// TestExecuteInfeasibleGridErrors checks that an infeasible agent count
// (budget ensemble with n <= 2k) is rejected by the scenario's CheckN
// before any trial runs or record is written, and that scenarios without
// CheckN still convert generator panics into errors instead of crashing.
func TestExecuteInfeasibleGridErrors(t *testing.T) {
	sc := testScenario() // budget k=2 needs n > 4
	var buf bytes.Buffer
	if _, err := Execute(sc, Options{Ns: []int{8, 4}, Trials: 2, Seed: 1}, NewJSONLSink(&buf)); err == nil {
		t.Fatal("expected an error for an infeasible grid")
	}
	if buf.Len() != 0 {
		t.Fatalf("upfront validation must precede execution, wrote %q", buf.String())
	}
	unchecked := sc
	unchecked.CheckN = nil
	if _, err := Execute(unchecked, Options{Ns: []int{4}, Trials: 2, Seed: 1}); err == nil {
		t.Fatal("expected the generator panic to surface as an error")
	}
}

// TestCSVSink checks the CSV schema.
func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	sc := testScenario()
	if _, err := Execute(sc, Options{Ns: []int{8}, Trials: 2, Seed: 1}, NewCSVSink(&buf)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 records, got:\n%s", buf.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,n,trial,seed,steps,") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], sc.Name+",8,0,") {
		t.Fatalf("bad first record: %s", lines[1])
	}
}

// TestPolicyKindRoundTrip covers the policy name mapping, including the
// deterministic max cost policy newly reachable from the sweep layer.
func TestPolicyKindRoundTrip(t *testing.T) {
	for _, p := range policyKinds {
		got, ok := PolicyKindByName(p.String())
		if !ok || got != p {
			t.Fatalf("round trip failed for %v", p)
		}
		if p.Policy() == nil {
			t.Fatalf("no policy for %v", p)
		}
	}
	if MaxCostDeterministic.Policy().Name() != "max cost (smallest index)" {
		t.Fatalf("MaxCostDeterministic maps to %q", MaxCostDeterministic.Policy().Name())
	}
}

// TestSinkErrorLeavesCleanPrefix checks that after any sink error the
// emitted output stays a contiguous (n, trial) prefix — the property that
// makes every interrupted file resumable in order — instead of recording
// later shards around an interior gap.
func TestSinkErrorLeavesCleanPrefix(t *testing.T) {
	sc := testScenario()
	var got []Record
	writes := 0
	failing := FuncSink(func(rec Record) error {
		writes++
		if writes == 4 {
			return os.ErrClosed
		}
		return nil
	})
	collect := FuncSink(func(rec Record) error { got = append(got, rec); return nil })
	_, err := Execute(sc, Options{Ns: []int{8, 12}, Trials: 6, Seed: 9, Workers: 4, ShardSize: 1}, failing, collect)
	if err == nil {
		t.Fatal("expected the sink error to surface")
	}
	if len(got) == 0 || len(got) >= 12 {
		t.Fatalf("collected %d records", len(got))
	}
	full, _ := runJSONL(t, sc, Options{Ns: []int{8, 12}, Trials: 6, Seed: 9})
	lines := strings.Split(strings.TrimSpace(full), "\n")
	for i, rec := range got {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		s.Write(rec)
		s.Close()
		if strings.TrimSpace(buf.String()) != lines[i] {
			t.Fatalf("record %d is not the reference prefix: %s vs %s", i, buf.String(), lines[i])
		}
	}
}

// TestResumeRejectsMismatchedGrid checks that a checkpoint recorded under
// a different grid or trial count is refused instead of leaving stranded
// records interleaved in the output.
func TestResumeRejectsMismatchedGrid(t *testing.T) {
	sc := testScenario()
	full, _ := runJSONL(t, sc, Options{Ns: []int{8, 12}, Trials: 6, Seed: 5})
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(sc, Options{Ns: []int{8, 12}, Trials: 3, Seed: 5, Done: cp}); err == nil {
		t.Fatal("expected rejection for a smaller trial count")
	}
	if _, err := Execute(sc, Options{Ns: []int{8}, Trials: 6, Seed: 5, Done: cp}); err == nil {
		t.Fatal("expected rejection for a smaller grid")
	}
	if _, err := Execute(sc, Options{Ns: []int{8, 12}, Trials: 8, Seed: 5, Done: cp}); err != nil {
		t.Fatalf("a larger trial count must extend the checkpointed run: %v", err)
	}
}

// TestExecuteBackendBitIdentical: forcing the CSR backend changes the
// trial's working representation but nothing observable — the record
// stream and summary are byte-for-byte the dense run's, at any worker
// count, because backend materialization never touches the seed stream.
func TestExecuteBackendBitIdentical(t *testing.T) {
	sc := testScenario()
	opt := Options{Ns: []int{8, 12}, Trials: 8, Seed: 5, Workers: 1, ShardSize: 8}
	ref, refSum := runJSONL(t, sc, opt)
	sc.Backend = dynamics.BackendSparse
	for _, workers := range []int{1, 4} {
		opt.Workers = workers
		got, gotSum := runJSONL(t, sc, opt)
		if got != ref {
			t.Fatalf("sparse backend (workers=%d) changed the record stream:\n%s\nvs dense:\n%s", workers, got, ref)
		}
		if !reflect.DeepEqual(gotSum, refSum) {
			t.Fatalf("sparse backend (workers=%d) changed the summary: %+v vs %+v", workers, gotSum, refSum)
		}
	}
}
