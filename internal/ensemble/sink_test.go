package ensemble

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestJSONLEncoderMatchesStdlib pins the pooled record encoder to the byte
// output of encoding/json, including its HTML-safe string escaping, so the
// JSONL schema cannot silently drift from the one checkpoints parse.
func TestJSONLEncoderMatchesStdlib(t *testing.T) {
	recs := []Record{
		{},
		{Scenario: "fig7-asg-sum-k2", N: 16, Trial: 3, Seed: 12345, Steps: 42, Converged: true, Moves: [4]int{1, 2, 3, 4}},
		{Scenario: `quo"te\back`, N: -1, Trial: 0, Seed: -99, Cycled: true},
		{Scenario: "html<&>unsafe", N: 7, Seed: 1 << 60},
	}
	for _, rec := range recs {
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		got := appendRecordJSON(nil, rec)
		if !bytes.Equal(got, want) {
			t.Errorf("record %+v:\n got %s\nwant %s", rec, got, want)
		}
	}
}

// TestJSONLSinkRoundTrip feeds encoder output back through the checkpoint
// parser's decoding path.
func TestJSONLSinkRoundTrip(t *testing.T) {
	rec := Record{Scenario: "sg-sum-budget-k3", N: 20, Trial: 7, Seed: 99, Steps: 13, Converged: true, Moves: [4]int{0, 13, 0, 0}}
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	if err := s.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &got); err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round trip %+v, want %+v", got, rec)
	}
}
