package ensemble

import (
	"encoding/json"
	"fmt"

	"ncg/internal/jsonl"
)

// Checkpoint holds the trials recovered from a partial JSONL record file.
// Passed to Execute via Options.Done, those trials are folded into the
// summary from their recorded results instead of being re-run.
type Checkpoint struct {
	recs map[[2]int]Record
	// goodBytes is the file offset after the last complete, parseable
	// line; anything beyond it is a truncated tail.
	goodBytes int64
}

// Len returns the number of recovered trials.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	return len(c.recs)
}

// record returns the recovered record of (n, trial).
func (c *Checkpoint) record(n, trial int) (Record, bool) {
	if c == nil {
		return Record{}, false
	}
	rec, ok := c.recs[[2]int{n, trial}]
	return rec, ok
}

// outside returns a recovered trial lying outside the (ns x trials)
// rectangle, if any.
func (c *Checkpoint) outside(ns []int, trials int) (n, trial int, ok bool) {
	if c == nil {
		return 0, 0, false
	}
	inGrid := make(map[int]bool, len(ns))
	for _, n := range ns {
		inGrid[n] = true
	}
	for k := range c.recs {
		if !inGrid[k[0]] || k[1] >= trials {
			return k[0], k[1], true
		}
	}
	return 0, 0, false
}

// LoadCheckpoint parses a (possibly truncated) JSONL record file. Complete
// lines become recovered trials; an interrupted run's trailing partial
// line — or anything following the first unparseable line — is ignored, so
// resuming re-runs exactly the trials the file does not fully record.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	cp := &Checkpoint{recs: make(map[[2]int]Record)}
	good, err := jsonl.ScanFile(path, func(line []byte) bool {
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Scenario == "" {
			return false
		}
		cp.recs[[2]int{rec.N, rec.Trial}] = rec
		return true
	})
	if err != nil {
		return nil, err
	}
	cp.goodBytes = good
	return cp, nil
}

// ResumeJSONL prepares a partial JSONL record file for resumption: it
// loads the checkpoint, truncates the file back to its last complete line
// and returns an append-mode sink. Executing with the checkpoint in
// Options.Done and the sink then completes the file exactly as an
// uninterrupted run would have written it.
func ResumeJSONL(path string) (*Checkpoint, *JSONLSink, error) {
	cp, err := LoadCheckpoint(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := jsonl.OpenResume(path, cp.goodBytes)
	if err != nil {
		return nil, nil, err
	}
	return cp, NewJSONLSink(f), nil
}

// String summarizes the checkpoint for logs.
func (c *Checkpoint) String() string {
	return fmt.Sprintf("checkpoint(%d trials)", c.Len())
}
