package ensemble

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Checkpoint holds the trials recovered from a partial JSONL record file.
// Passed to Execute via Options.Done, those trials are folded into the
// summary from their recorded results instead of being re-run.
type Checkpoint struct {
	recs map[[2]int]Record
	// goodBytes is the file offset after the last complete, parseable
	// line; anything beyond it is a truncated tail.
	goodBytes int64
}

// Len returns the number of recovered trials.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	return len(c.recs)
}

// record returns the recovered record of (n, trial).
func (c *Checkpoint) record(n, trial int) (Record, bool) {
	if c == nil {
		return Record{}, false
	}
	rec, ok := c.recs[[2]int{n, trial}]
	return rec, ok
}

// outside returns a recovered trial lying outside the (ns x trials)
// rectangle, if any.
func (c *Checkpoint) outside(ns []int, trials int) (n, trial int, ok bool) {
	if c == nil {
		return 0, 0, false
	}
	inGrid := make(map[int]bool, len(ns))
	for _, n := range ns {
		inGrid[n] = true
	}
	for k := range c.recs {
		if !inGrid[k[0]] || k[1] >= trials {
			return k[0], k[1], true
		}
	}
	return 0, 0, false
}

// LoadCheckpoint parses a (possibly truncated) JSONL record file. Complete
// lines become recovered trials; an interrupted run's trailing partial
// line — or anything following the first unparseable line — is ignored, so
// resuming re-runs exactly the trials the file does not fully record.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp := &Checkpoint{recs: make(map[[2]int]Record)}
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a write was cut mid-line; drop it.
			return cp, nil
		}
		if err != nil {
			return nil, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			cp.goodBytes += int64(len(line))
			continue
		}
		var rec Record
		if json.Unmarshal(trimmed, &rec) != nil || rec.Scenario == "" {
			// A corrupt line: treat it and everything after as the
			// truncated tail.
			return cp, nil
		}
		cp.recs[[2]int{rec.N, rec.Trial}] = rec
		cp.goodBytes += int64(len(line))
	}
}

// ResumeJSONL prepares a partial JSONL record file for resumption: it
// loads the checkpoint, truncates the file back to its last complete line
// and returns an append-mode sink. Executing with the checkpoint in
// Options.Done and the sink then completes the file exactly as an
// uninterrupted run would have written it.
func ResumeJSONL(path string) (*Checkpoint, *JSONLSink, error) {
	cp, err := LoadCheckpoint(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(cp.goodBytes); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(cp.goodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return cp, NewJSONLSink(f), nil
}

// String summarizes the checkpoint for logs.
func (c *Checkpoint) String() string {
	return fmt.Sprintf("checkpoint(%d trials)", c.Len())
}
