package ensemble

import (
	"io"
	"testing"
)

// TestSteadyStateAllocsPerRecord pins the marginal allocation cost of one
// ensemble record. Fixed run overhead (worker pool, shard table, summary)
// is cancelled by differencing two trial counts, so the measurement is the
// per-record steady state: initial-network generation plus the game value,
// with the engine arenas, move buffers and sink encoders all reused. It is
// the regression guard for the allocation-flat execution spine.
func TestSteadyStateAllocsPerRecord(t *testing.T) {
	sc, ok := Lookup("fig7-asg-sum-k2")
	if !ok {
		t.Fatal("scenario missing")
	}
	run := func(trials int) float64 {
		return testing.AllocsPerRun(3, func() {
			_, err := Execute(sc,
				Options{Ns: []int{16}, Trials: trials, Workers: 1, ShardSize: 8},
				NewJSONLSink(io.Discard))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	run(8) // warm any lazily grown package state
	small := run(8)
	large := run(40)
	perRecord := (large - small) / 32
	t.Logf("allocs: %.0f @8 trials, %.0f @40 trials, %.2f per record", small, large, perRecord)
	// One BudgetNetwork generation costs ~12 allocations and the game
	// value a few more; the bound fails if per-record engine, move or
	// sink allocations creep back in.
	if perRecord > 30 {
		t.Errorf("steady state allocates %.2f per record, want <= 30", perRecord)
	}
}
