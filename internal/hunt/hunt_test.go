package hunt

import (
	"testing"

	"ncg/internal/game"
)

func TestSampleCyclePendantNetworkInvariants(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := SampleCyclePendantNetwork(seed)
		if g == nil {
			continue
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.Connected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
		if g.M() != g.N() {
			t.Fatalf("seed %d: %d edges on %d vertices (not unit budget)", seed, g.M(), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.OutDegree(v) != 1 {
				t.Fatalf("seed %d: vertex %d owns %d edges", seed, v, g.OutDegree(v))
			}
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	a := SampleCyclePendantNetwork(5)
	b := SampleCyclePendantNetwork(5)
	if (a == nil) != (b == nil) {
		t.Fatal("nondeterministic sampling")
	}
	if a != nil && !a.Equal(b) {
		t.Fatal("nondeterministic sampling")
	}
}

func TestHuntSmallBudgetRuns(t *testing.T) {
	// A tiny hunt must terminate without finding cycles on so few
	// instances (random unit-budget networks essentially never cycle).
	if res := HuntUnitBudgetCycle(game.Sum, 1, 5, 200); res != nil {
		t.Logf("unexpectedly found a cycle: instance %d", res.Instance)
	}
}
