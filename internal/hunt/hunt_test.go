package hunt

import (
	"testing"

	"ncg/internal/campaign"
	"ncg/internal/cycles"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

func TestSampleCyclePendantNetworkInvariants(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := SampleCyclePendantNetwork(seed)
		if g == nil {
			continue
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.Connected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
		if g.M() != g.N() {
			t.Fatalf("seed %d: %d edges on %d vertices (not unit budget)", seed, g.M(), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.OutDegree(v) != 1 {
				t.Fatalf("seed %d: vertex %d owns %d edges", seed, v, g.OutDegree(v))
			}
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	a := SampleCyclePendantNetwork(5)
	b := SampleCyclePendantNetwork(5)
	if (a == nil) != (b == nil) {
		t.Fatal("nondeterministic sampling")
	}
	if a != nil && !a.Equal(b) {
		t.Fatal("nondeterministic sampling")
	}
}

// TestHuntMatchesSequentialReference pins the campaign-backed hunt to a
// plain sequential loop with the same seed discipline: instance i draws
// from gen.Seed(seed, 0, 0, i), redrawing degenerate samples from
// gen.Seed(seed, 0, 0, i, attempt), and every drawn network is searched —
// so degenerate draws never shrink the budget (the pre-campaign hunt
// silently counted them against maxInstances).
func TestHuntMatchesSequentialReference(t *testing.T) {
	const maxInstances, stateCap = 12, 150
	res, searched, err := runHunt(game.Sum, 2, maxInstances, stateCap, campaign.Options{Workers: 3, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	gm := game.NewAsymSwap(game.Sum)
	refSearched := 0
	refHit := -1
	for i := 0; i < maxInstances && refHit < 0; i++ {
		net := sampleRef(2, i)
		if net == nil {
			continue
		}
		refSearched++
		if fc := cycles.FindBestResponseCycle(net, gm, stateCap); fc != nil {
			refHit = i
		}
	}
	if searched != refSearched {
		t.Fatalf("hunt searched %d instances, reference searched %d", searched, refSearched)
	}
	if (res != nil) != (refHit >= 0) {
		t.Fatalf("hunt hit = %v, reference hit instance %d", res != nil, refHit)
	}
	if res != nil && res.Instance != refHit {
		t.Fatalf("hunt hit instance %d, reference %d", res.Instance, refHit)
	}
}

// sampleRef draws the hunt's instance i exactly as the campaign does: the
// cycle-pendant sampler over the derived attempt streams of cell (0, 0).
func sampleRef(seed int64, i int) *graph.Graph {
	for a := 0; a <= 32; a++ {
		s := gen.Seed(seed, 0, 0, uint64(i))
		if a > 0 {
			s = gen.Seed(seed, 0, 0, uint64(i), uint64(a))
		}
		if g := campaign.SampleCyclePendant(gen.NewRand(s)); g != nil {
			return g
		}
	}
	return nil
}

// TestHuntWorkerInvariance: the hunt's outcome (hit instance and searched
// count) is identical at any worker count.
func TestHuntWorkerInvariance(t *testing.T) {
	type outcome struct {
		hit      bool
		instance int
		searched int
	}
	run := func(workers int) outcome {
		res, searched, err := runHunt(game.Max, 7, 8, 120, campaign.Options{Workers: workers, ShardSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		o := outcome{searched: searched}
		if res != nil {
			o.hit, o.instance = true, res.Instance
		}
		return o
	}
	ref := run(1)
	for _, w := range []int{2, 5} {
		if got := run(w); got != ref {
			t.Fatalf("workers=%d: outcome %+v, want %+v", w, got, ref)
		}
	}
}

func TestHuntSmallBudgetRuns(t *testing.T) {
	// A tiny hunt must terminate without finding cycles on so few
	// instances (random unit-budget networks essentially never cycle) and
	// report every instance as searched.
	res, searched := HuntUnitBudgetCycle(game.Sum, 1, 5, 200)
	if res != nil {
		t.Logf("unexpectedly found a cycle: instance %d", res.Instance)
	}
	if searched != 5 {
		t.Fatalf("searched %d instances, want the full budget of 5", searched)
	}
}
