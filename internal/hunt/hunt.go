// Package hunt is the structured hunt for unit-budget best response
// cycles (Theorem 3.7 / Section 3.3), running on the campaign spine.
// Uniformly random unit-budget networks essentially never cycle (the
// paper's own simulations, reproduced by internal/experiments, never met
// one), but the constructions of Figures 5 and 6 share a shape: one long
// cycle with pendant paths. HuntUnitBudgetCycle samples that family
// deterministically and searches each instance's best-response state
// graph for a directed cycle.
package hunt

import (
	"fmt"

	"ncg/internal/campaign"
	"ncg/internal/cycles"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// HuntResult is a best-response cycle found on a unit-budget network.
type HuntResult struct {
	// Start is the sampled initial network (every agent owns one edge).
	Start *graph.Graph
	// Cycle is a reachable best-response cycle.
	Cycle *cycles.FoundCycle
	// Instance is the sample index the network was derived from.
	Instance int
}

// HuntUnitBudgetCycle searches maxInstances structured unit-budget
// networks for the given ASG distance kind and returns the first one whose
// best-response state graph (capped at stateCap states per instance)
// contains a cycle (nil if none does), together with the number of
// instances actually searched. Degenerate samples never consume the
// instance budget: they are redrawn from fresh derived seeds, so the
// search visits exactly min(maxInstances, instances-until-hit) networks.
// The hunt is a single-cell campaign over the cycle-pendant sampler; its
// result is bit-identical at any worker count.
func HuntUnitBudgetCycle(kind game.DistKind, seed int64, maxInstances, stateCap int) (*HuntResult, int) {
	res, searched, err := runHunt(kind, seed, maxInstances, stateCap, campaign.Options{})
	if err != nil {
		// The fixed hunt grid is always valid; an error here is an
		// internal invariant violation.
		panic(fmt.Sprintf("hunt: %v", err))
	}
	return res, searched
}

// runHunt executes the hunt campaign; opt carries execution shape only
// (workers, shard size) — the search grid comes from the arguments.
func runHunt(kind game.DistKind, seed int64, maxInstances, stateCap int, opt campaign.Options) (*HuntResult, int, error) {
	variant := "sum-asg"
	if kind == game.Max {
		variant = "max-asg"
	}
	c := campaign.Campaign{
		Name:      "hunt-unit-budget",
		Samplers:  []campaign.Sampler{campaign.CyclePendantSampler()},
		Variants:  []campaign.Variant{{Name: variant, New: func(int) game.Game { return game.NewAsymSwap(kind) }}},
		Instances: maxInstances,
		Seed:      seed,
		MaxStates: stateCap,
	}
	opt.MaxHits = 1
	var hit *campaign.Record
	sum, err := campaign.Run(c, opt, campaign.FuncSink(func(rec campaign.Record) error {
		if rec.Hit && hit == nil {
			r := rec
			hit = &r
		}
		return nil
	}))
	if err != nil {
		return nil, 0, err
	}
	if hit == nil {
		return nil, sum.Searched, nil
	}
	start, err := hit.DecodeStart()
	if err != nil {
		return nil, sum.Searched, err
	}
	fc, err := hit.DecodeCycle()
	if err != nil {
		return nil, sum.Searched, err
	}
	return &HuntResult{Start: start, Cycle: fc, Instance: hit.Instance}, sum.Searched, nil
}

// SampleCyclePendantNetwork builds a unit-budget network consisting of one
// cycle of length 6..13 with 2..4 pendant paths of lengths 1..6, ownership
// assigned by matching. Returns nil for degenerate samples. It is the
// seed-explicit form of the hunt's campaign sampler
// (campaign.SampleCyclePendant).
func SampleCyclePendantNetwork(seed int64) *graph.Graph {
	return campaign.SampleCyclePendant(gen.NewRand(seed))
}
