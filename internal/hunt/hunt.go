package hunt

import (
	"math/rand"

	"ncg/internal/cycles"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
	"ncg/internal/search"
)

// Structured hunting for unit-budget best response cycles (Theorem 3.7 /
// Section 3.3). Uniformly random unit-budget networks essentially never
// cycle (the paper's own simulations, reproduced by internal/experiments,
// never met one), but the constructions of Figures 5 and 6 share a shape:
// one long cycle with pendant paths. HuntUnitBudgetCycle samples that
// family deterministically and searches each instance's best-response
// state graph for a directed cycle.

// HuntResult is a best-response cycle found on a unit-budget network.
type HuntResult struct {
	// Start is the sampled initial network (every agent owns one edge).
	Start *graph.Graph
	// Cycle is a reachable best-response cycle.
	Cycle *cycles.FoundCycle
	// Instance is the sample index the network was derived from.
	Instance int
}

// HuntUnitBudgetCycle samples maxInstances structured unit-budget networks
// for the given ASG distance kind and returns the first one whose
// best-response state graph (capped at stateCap states per instance)
// contains a cycle, or nil.
func HuntUnitBudgetCycle(kind game.DistKind, seed int64, maxInstances, stateCap int) *HuntResult {
	gm := game.NewAsymSwap(kind)
	for i := 0; i < maxInstances; i++ {
		g := SampleCyclePendantNetwork(gen.Seed(seed, uint64(i)))
		if g == nil {
			continue
		}
		if fc := cycles.FindBestResponseCycle(g, gm, stateCap); fc != nil {
			return &HuntResult{Start: g, Cycle: fc, Instance: i}
		}
	}
	return nil
}

// SampleCyclePendantNetwork builds a unit-budget network consisting of one
// cycle of length 6..13 with 2..4 pendant paths of lengths 1..6, ownership
// assigned by matching. Returns nil for degenerate samples.
func SampleCyclePendantNetwork(seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	cycleLen := 6 + r.Intn(8)
	pendants := 2 + r.Intn(3)
	type pendant struct{ pos, length int }
	var ps []pendant
	n := cycleLen
	for i := 0; i < pendants; i++ {
		p := pendant{pos: r.Intn(cycleLen), length: 1 + r.Intn(6)}
		ps = append(ps, p)
		n += p.length
	}
	g := graph.New(n)
	for i := 0; i < cycleLen; i++ {
		g.AddEdge(i, (i+1)%cycleLen)
	}
	next := cycleLen
	for _, p := range ps {
		prev := p.pos
		for j := 0; j < p.length; j++ {
			g.AddEdge(next, prev) // pendant vertices own their edges
			prev = next
			next++
		}
	}
	if g.M() != n {
		return nil
	}
	if !search.AssignUnitOwnership(g, nil) {
		return nil
	}
	return g
}
