package graph

import (
	"math/rand"
	"testing"
)

// floydWarshall is the reference all-pairs shortest path implementation.
func floydWarshall(g *Graph) [][]int32 {
	n := g.N()
	d := make([][]int32, n)
	for i := range d {
		d[i] = make([]int32, n)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case g.HasEdge(i, j):
				d[i][j] = 1
			default:
				d[i][j] = Unreachable
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func randomGraph(n int, p float64, r *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				if r.Intn(2) == 0 {
					g.AddEdge(u, v)
				} else {
					g.AddEdge(v, u)
				}
			}
		}
	}
	return g
}

func TestBFSMatchesFloydWarshall(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(40)
		g := randomGraph(n, r.Float64()*0.5, r)
		want := floydWarshall(g)
		got := g.AllDistances()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				w := want[u][v]
				if w > Unreachable {
					w = Unreachable
				}
				if got[u][v] != w {
					t.Fatalf("n=%d d(%d,%d) = %d, want %d\n%v", n, u, v, got[u][v], w, g)
				}
			}
		}
	}
}

func TestBFSResultAggregates(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s := NewBFSScratch(30)
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(30, 0.1, r)
		dist := make([]int32, 30)
		for u := 0; u < 30; u++ {
			res := g.BFS(u, dist, s)
			var sum int64
			var ecc int32
			reached := 0
			for _, d := range dist {
				if d == Unreachable {
					continue
				}
				reached++
				sum += int64(d)
				if d > ecc {
					ecc = d
				}
			}
			if res.Sum != sum || res.Ecc != ecc || res.Reached != reached {
				t.Fatalf("aggregate mismatch: %+v vs sum=%d ecc=%d reached=%d", res, sum, ecc, reached)
			}
		}
	}
}

func TestConnected(t *testing.T) {
	g := Path(5)
	if !g.Connected() {
		t.Fatal("path should be connected")
	}
	g.RemoveEdge(2, 3)
	if g.Connected() {
		t.Fatal("split path should be disconnected")
	}
	if !New(1).Connected() || !New(0).Connected() {
		t.Fatal("trivial graphs are connected")
	}
	if New(2).Connected() {
		t.Fatal("two isolated vertices are disconnected")
	}
}

func TestDistAndDistances(t *testing.T) {
	g := Cycle(8)
	if g.Dist(0, 4) != 4 || g.Dist(0, 5) != 3 || g.Dist(3, 3) != 0 {
		t.Fatal("cycle distances wrong")
	}
	d := g.Distances(0)
	if d[4] != 4 || d[7] != 1 {
		t.Fatal("Distances wrong")
	}
}

func TestMetricsOnKnownGraphs(t *testing.T) {
	p := Path(7) // diameter 6, radius 3, center {3}
	if p.Diameter() != 6 || p.Radius() != 3 {
		t.Fatalf("path metrics: diam=%d rad=%d", p.Diameter(), p.Radius())
	}
	c := p.Center()
	if len(c) != 1 || c[0] != 3 {
		t.Fatalf("path center = %v", c)
	}
	ecc := p.Eccentricities()
	if ecc[0] != 6 || ecc[3] != 3 {
		t.Fatalf("path ecc = %v", ecc)
	}
	sums := p.DistanceSums()
	// v0: 1+2+3+4+5+6 = 21; v3: 3+2+1+1+2+3 = 12.
	if sums[0] != 21 || sums[3] != 12 {
		t.Fatalf("path sums = %v", sums)
	}
}

func TestTotalDistancePath(t *testing.T) {
	p := Path(4)
	// Pair distances: 01:1 02:2 03:3 12:1 13:2 23:1 → sum 10, ordered 20.
	if p.TotalDistance() != 20 {
		t.Fatalf("TotalDistance = %d, want 20", p.TotalDistance())
	}
	q := Path(4)
	q.RemoveEdge(1, 2)
	if q.TotalDistance() != int64(Unreachable) {
		t.Fatal("disconnected total distance should be sentinel")
	}
}

func TestLongestPathFrom(t *testing.T) {
	p := Path(9)
	far, ecc := p.LongestPathFrom(2)
	if far != 8 || ecc != 6 {
		t.Fatalf("LongestPathFrom(2) = %d,%d", far, ecc)
	}
}

func TestBFSExcludingMatchesDeletedCopy(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(14)
		g := randomGraph(n, 0.3, r)
		excl := r.Intn(n)
		// Reference: physically delete excl's edges and BFS on the copy.
		h := g.Clone()
		for v := 0; v < n; v++ {
			if h.HasEdge(excl, v) {
				h.RemoveEdge(excl, v)
			}
		}
		s := NewBFSScratch(n)
		dist := make([]int32, n)
		want := make([]int32, n)
		for src := 0; src < n; src++ {
			if src == excl {
				continue
			}
			res := g.BFSExcluding(src, excl, dist, s)
			ref := h.BFS(src, want, s)
			for v := 0; v < n; v++ {
				w := want[v]
				if v == excl {
					w = Unreachable
				}
				if dist[v] != w {
					t.Fatalf("n=%d excl=%d src=%d: dist[%d]=%d want %d", n, excl, src, v, dist[v], w)
				}
			}
			// The excluded vertex is isolated in the reference copy, so
			// its aggregates differ only by the isolated source itself.
			if res.Sum != ref.Sum || res.Ecc != ref.Ecc || res.Reached != ref.Reached {
				t.Fatalf("n=%d excl=%d src=%d: aggregates %+v want %+v", n, excl, src, res, ref)
			}
		}
	}
}

func TestPartialBFSRepairsDamage(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	rs := NewRepairScratch(0)
	for trial := 0; trial < 80; trial++ {
		n := 2 + r.Intn(16)
		g := randomGraph(n, 0.3, r)
		s := NewBFSScratch(n)
		src := r.Intn(n)
		want := make([]int32, n)
		g.BFS(src, want, s)
		// Damage a random subset of non-source entries and repair.
		dist := make([]int32, n)
		copy(dist, want)
		suspects := NewBitset(n)
		for v := 0; v < n; v++ {
			if v != src && r.Intn(2) == 0 {
				dist[v] = Unreachable
				suspects.Set(v)
			}
		}
		g.PartialBFS(dist, suspects, rs)
		for v := 0; v < n; v++ {
			if dist[v] != want[v] {
				t.Fatalf("n=%d src=%d: repaired dist[%d]=%d want %d (graph %v)", n, src, v, dist[v], want[v], g)
			}
		}
	}
}
