package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func bruteBridges(g *Graph) []Edge {
	var out []Edge
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if g.IsBridge(u, v) {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			out = append(out, Edge{a, b})
		}
	}
	sortEdges(out)
	return out
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

func TestBridgesAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		n := 2 + r.Intn(25)
		g := randomGraph(n, r.Float64()*0.3, r)
		got := g.Bridges()
		sortEdges(got)
		want := bruteBridges(g)
		if len(got) != len(want) {
			t.Fatalf("bridges %v, want %v on %v", got, want, g)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bridges %v, want %v on %v", got, want, g)
			}
		}
	}
}

func TestBridgesOnKnownGraphs(t *testing.T) {
	if n := len(Path(6).Bridges()); n != 5 {
		t.Fatalf("path bridges = %d, want 5", n)
	}
	if n := len(Cycle(6).Bridges()); n != 0 {
		t.Fatalf("cycle bridges = %d, want 0", n)
	}
	// Cycle with a pendant edge: only the pendant is a bridge.
	g := Cycle(4)
	gg := New(5)
	for _, e := range g.Edges() {
		gg.AddEdge(e.U, e.V)
	}
	gg.AddEdge(0, 4)
	bs := gg.Bridges()
	if len(bs) != 1 || bs[0] != (Edge{0, 4}) {
		t.Fatalf("pendant bridges = %v", bs)
	}
}

func TestIsTreeForest(t *testing.T) {
	if !Path(9).IsTree() || !Star(5).IsTree() {
		t.Fatal("paths and stars are trees")
	}
	if Cycle(5).IsTree() || Cycle(5).IsForest() {
		t.Fatal("cycles are not trees/forests")
	}
	f := New(6)
	f.AddEdge(0, 1)
	f.AddEdge(2, 3)
	if f.IsTree() || !f.IsForest() {
		t.Fatal("two components with no cycles is a forest, not a tree")
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %v", comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 2 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestIsBridgePreservesGraph(t *testing.T) {
	g := Path(5)
	before := g.Clone()
	_ = g.IsBridge(1, 2)
	if !g.Equal(before) {
		t.Fatal("IsBridge mutated the graph")
	}
}
