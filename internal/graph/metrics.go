package graph

// allResults computes the per-source BFS aggregates of every vertex with
// the batched bit-parallel kernel, 64 sources per pass.
func (g *Graph) allResults() []BFSResult {
	res := make([]BFSResult, g.n)
	g.AllSourcesBFS(nil, res, NewBatchBFSScratch(g.n))
	return res
}

// Eccentricities returns the eccentricity of every vertex. Vertices of a
// disconnected graph report Unreachable.
func (g *Graph) Eccentricities() []int32 {
	ecc := make([]int32, g.n)
	for u, r := range g.allResults() {
		if r.Reached < g.n {
			ecc[u] = Unreachable
		} else {
			ecc[u] = r.Ecc
		}
	}
	return ecc
}

// DistanceSums returns, for every vertex, the sum of its distances to all
// other vertices; Unreachable on disconnected graphs.
func (g *Graph) DistanceSums() []int64 {
	sums := make([]int64, g.n)
	for u, r := range g.allResults() {
		if r.Reached < g.n {
			sums[u] = int64(Unreachable)
		} else {
			sums[u] = r.Sum
		}
	}
	return sums
}

// Diameter returns the largest eccentricity, or Unreachable if g is
// disconnected. The diameter of a graph with fewer than two vertices is 0.
func (g *Graph) Diameter() int32 {
	if g.n <= 1 {
		return 0
	}
	var d int32
	for _, r := range g.allResults() {
		if r.Reached < g.n {
			return Unreachable
		}
		if r.Ecc > d {
			d = r.Ecc
		}
	}
	return d
}

// Radius returns the smallest eccentricity, or Unreachable if g is
// disconnected.
func (g *Graph) Radius() int32 {
	if g.n <= 1 {
		return 0
	}
	r := Unreachable
	for _, br := range g.allResults() {
		if br.Reached < g.n {
			return Unreachable
		}
		if br.Ecc < r {
			r = br.Ecc
		}
	}
	return r
}

// Center returns the vertices of minimum eccentricity (the "center-vertices"
// of Definition 2.5 under MAX cost). On disconnected graphs it returns nil.
func (g *Graph) Center() []int {
	ecc := g.Eccentricities()
	best := Unreachable
	for _, e := range ecc {
		if e < best {
			best = e
		}
	}
	if best == Unreachable {
		return nil
	}
	var c []int
	for u, e := range ecc {
		if e == best {
			c = append(c, u)
		}
	}
	return c
}

// TotalDistance returns the sum over ordered pairs (u,v) of d(u,v), i.e. the
// social distance cost of the SUM version; Unreachable-based sentinel if
// disconnected.
func (g *Graph) TotalDistance() int64 {
	var t int64
	for _, r := range g.allResults() {
		if r.Reached < g.n {
			return int64(Unreachable)
		}
		t += r.Sum
	}
	return t
}

// IsStar reports whether g is a star: one center adjacent to all other
// vertices and no other edges. Graphs with fewer than three vertices count
// as stars.
func (g *Graph) IsStar() bool {
	if !g.Connected() || g.m != g.n-1 {
		return false
	}
	if g.n <= 2 {
		return true
	}
	hub := 0
	for u := 0; u < g.n; u++ {
		if g.deg[u] > g.deg[hub] {
			hub = u
		}
	}
	return g.deg[hub] == g.n-1
}

// IsDoubleStar reports whether g is a double star: two adjacent hubs with
// every remaining vertex a leaf attached to one of them. Stars do not count
// as double stars (Alon et al. distinguish the two shapes); a single edge on
// two vertices does not either.
func (g *Graph) IsDoubleStar() bool {
	if !g.Connected() || g.m != g.n-1 || g.n < 4 {
		return false
	}
	var hubs []int
	for u := 0; u < g.n; u++ {
		if g.deg[u] > 1 {
			hubs = append(hubs, u)
		}
	}
	if len(hubs) != 2 {
		return false
	}
	return g.HasEdge(hubs[0], hubs[1])
}

// LongestPathFrom returns, for a tree, one vertex realizing the
// eccentricity of v (the far endpoint of a "longest path of agent v",
// Definition 2.7) together with the eccentricity.
func (g *Graph) LongestPathFrom(v int) (far int, ecc int32) {
	dist := make([]int32, g.n)
	g.BFS(v, dist, NewBFSScratch(g.n))
	far, ecc = v, 0
	for u, d := range dist {
		if d != Unreachable && d > ecc {
			far, ecc = u, d
		}
	}
	return far, ecc
}
