package graph

// allResultsOf computes the per-source BFS aggregates of every vertex with
// the batched bit-parallel kernel, 64 sources per pass.
func allResultsOf(g Store) []BFSResult {
	res := make([]BFSResult, g.N())
	g.AllSourcesBFS(nil, res, NewBatchBFSScratch(g.N()))
	return res
}

// Eccentricities returns the eccentricity of every vertex. Vertices of a
// disconnected graph report Unreachable.
func (g *Graph) Eccentricities() []int32 {
	ecc := make([]int32, g.n)
	for u, r := range allResultsOf(g) {
		if r.Reached < g.n {
			ecc[u] = Unreachable
		} else {
			ecc[u] = r.Ecc
		}
	}
	return ecc
}

// DistanceSums returns, for every vertex, the sum of its distances to all
// other vertices; Unreachable on disconnected graphs.
func (g *Graph) DistanceSums() []int64 {
	sums := make([]int64, g.n)
	for u, r := range allResultsOf(g) {
		if r.Reached < g.n {
			sums[u] = int64(Unreachable)
		} else {
			sums[u] = r.Sum
		}
	}
	return sums
}

// Diameter returns the largest eccentricity, or Unreachable if g is
// disconnected. The diameter of a graph with fewer than two vertices is 0.
func (g *Graph) Diameter() int32 { return DiameterOf(g) }

// DiameterOf is Diameter over any backend.
func DiameterOf(g Store) int32 {
	n := g.N()
	if n <= 1 {
		return 0
	}
	var d int32
	for _, r := range allResultsOf(g) {
		if r.Reached < n {
			return Unreachable
		}
		if r.Ecc > d {
			d = r.Ecc
		}
	}
	return d
}

// Radius returns the smallest eccentricity, or Unreachable if g is
// disconnected.
func (g *Graph) Radius() int32 {
	if g.n <= 1 {
		return 0
	}
	r := Unreachable
	for _, br := range allResultsOf(g) {
		if br.Reached < g.n {
			return Unreachable
		}
		if br.Ecc < r {
			r = br.Ecc
		}
	}
	return r
}

// Center returns the vertices of minimum eccentricity (the "center-vertices"
// of Definition 2.5 under MAX cost). On disconnected graphs it returns nil.
func (g *Graph) Center() []int {
	ecc := g.Eccentricities()
	best := Unreachable
	for _, e := range ecc {
		if e < best {
			best = e
		}
	}
	if best == Unreachable {
		return nil
	}
	var c []int
	for u, e := range ecc {
		if e == best {
			c = append(c, u)
		}
	}
	return c
}

// TotalDistance returns the sum over ordered pairs (u,v) of d(u,v), i.e. the
// social distance cost of the SUM version; Unreachable-based sentinel if
// disconnected.
func (g *Graph) TotalDistance() int64 { return TotalDistanceOf(g) }

// TotalDistanceOf is TotalDistance over any backend.
func TotalDistanceOf(g Store) int64 {
	n := g.N()
	var t int64
	for _, r := range allResultsOf(g) {
		if r.Reached < n {
			return int64(Unreachable)
		}
		t += r.Sum
	}
	return t
}

// IsStar reports whether g is a star: one center adjacent to all other
// vertices and no other edges. Graphs with fewer than three vertices count
// as stars.
func (g *Graph) IsStar() bool { return IsStarOf(g) }

// IsStarOf is IsStar over any backend.
func IsStarOf(g Store) bool {
	n := g.N()
	if !g.Connected() || g.M() != n-1 {
		return false
	}
	if n <= 2 {
		return true
	}
	hub := 0
	for u := 0; u < n; u++ {
		if g.Degree(u) > g.Degree(hub) {
			hub = u
		}
	}
	return g.Degree(hub) == n-1
}

// IsDoubleStar reports whether g is a double star: two adjacent hubs with
// every remaining vertex a leaf attached to one of them. Stars do not count
// as double stars (Alon et al. distinguish the two shapes); a single edge on
// two vertices does not either.
func (g *Graph) IsDoubleStar() bool { return IsDoubleStarOf(g) }

// IsDoubleStarOf is IsDoubleStar over any backend.
func IsDoubleStarOf(g Store) bool {
	n := g.N()
	if !g.Connected() || g.M() != n-1 || n < 4 {
		return false
	}
	var hubs []int
	for u := 0; u < n; u++ {
		if g.Degree(u) > 1 {
			hubs = append(hubs, u)
		}
	}
	if len(hubs) != 2 {
		return false
	}
	return g.HasEdge(hubs[0], hubs[1])
}

// LongestPathFrom returns, for a tree, one vertex realizing the
// eccentricity of v (the far endpoint of a "longest path of agent v",
// Definition 2.7) together with the eccentricity.
func (g *Graph) LongestPathFrom(v int) (far int, ecc int32) {
	dist := make([]int32, g.n)
	g.BFS(v, dist, NewBFSScratch(g.n))
	far, ecc = v, 0
	for u, d := range dist {
		if d != Unreachable && d > ecc {
			far, ecc = u, d
		}
	}
	return far, ecc
}
