package graph

// IsTree reports whether g is a tree: connected with exactly n-1 edges.
func (g *Graph) IsTree() bool {
	return g.m == g.n-1 && g.Connected()
}

// IsForest reports whether g is acyclic.
func (g *Graph) IsForest() bool {
	return g.m == g.n-g.componentCount()
}

func (g *Graph) componentCount() int {
	seen := NewBitset(g.n)
	s := NewBFSScratch(g.n)
	count := 0
	for u := 0; u < g.n; u++ {
		if seen.Has(u) {
			continue
		}
		count++
		dist := make([]int32, g.n)
		g.BFS(u, dist, s)
		for v, d := range dist {
			if d != Unreachable {
				seen.Set(v)
			}
		}
	}
	return count
}

// Components returns the vertex sets of the connected components.
func (g *Graph) Components() [][]int {
	seen := NewBitset(g.n)
	s := NewBFSScratch(g.n)
	var comps [][]int
	dist := make([]int32, g.n)
	for u := 0; u < g.n; u++ {
		if seen.Has(u) {
			continue
		}
		g.BFS(u, dist, s)
		var comp []int
		for v, d := range dist {
			if d != Unreachable {
				seen.Set(v)
				comp = append(comp, v)
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Bridges returns every bridge of g (edges whose removal disconnects their
// component), reported with the lower endpoint first and the true owner in
// the U position preserved when the owner is the lower endpoint; callers
// that need ownership should query the graph. Tarjan's low-link algorithm,
// iterative to stay safe on long paths.
func (g *Graph) Bridges() []Edge {
	disc := make([]int32, g.n)
	low := make([]int32, g.n)
	parent := make([]int32, g.n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	var bridges []Edge
	timer := int32(0)

	type frame struct {
		u    int32
		iter int // next neighbour index to examine
	}
	neighbors := make([][]int32, g.n)
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) {
			neighbors[u] = append(neighbors[u], int32(v))
		})
	}

	for start := 0; start < g.n; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{u: int32(start)}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.u
			if f.iter < len(neighbors[u]) {
				v := neighbors[u][f.iter]
				f.iter++
				switch {
				case disc[v] == -1:
					parent[v] = u
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{u: v})
				case v != parent[u]:
					if disc[v] < low[u] {
						low[u] = disc[v]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[u]; p != -1 {
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if low[u] > disc[p] {
					a, b := int(p), int(u)
					if a > b {
						a, b = b, a
					}
					bridges = append(bridges, Edge{a, b})
				}
			}
		}
	}
	return bridges
}

// IsBridge reports whether {u,v} is a bridge, via a connectivity probe of
// the modified graph. The edge must exist.
func (g *Graph) IsBridge(u, v int) bool {
	owner := g.Owner(u, v)
	other := u + v - owner
	g.RemoveEdge(u, v)
	s := NewBFSScratch(g.n)
	dist := make([]int32, g.n)
	g.BFS(u, dist, s)
	sep := dist[v] == Unreachable
	g.AddEdge(owner, other)
	return sep
}
