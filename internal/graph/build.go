package graph

// FromEdges builds a graph on n vertices from an edge list; each Edge's U
// field is its owner.
func FromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// Path returns the path v0 - v1 - ... - v(n-1). Edge {i, i+1} is owned by
// vertex i.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// PathReversedOwners returns the path v0 - ... - v(n-1) with edge {i, i+1}
// owned by vertex i+1, i.e. all edges pointing towards lower indices (the
// "directed line" dl of Section 4.2.2 reads in the other direction; both
// orientations are available via Path and PathReversedOwners).
func PathReversedOwners(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i+1, i)
	}
	return g
}

// Cycle returns the n-cycle v0 - v1 - ... - v(n-1) - v0 with edge
// {i, i+1 mod n} owned by vertex i. It panics for n < 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs at least 3 vertices")
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Star returns the star with center 0 and leaves 1..n-1; the center owns all
// edges.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// DoubleStar returns a double star on n >= 4 vertices: hubs 0 and 1 joined
// by an edge (owned by 0), with a leaves attached to hub 0 and the remaining
// n-2-a leaves attached to hub 1. Hubs own their leaf edges.
func DoubleStar(n, a int) *Graph {
	if n < 4 || a < 1 || a > n-3 {
		panic("graph: invalid double star parameters")
	}
	g := New(n)
	g.AddEdge(0, 1)
	for i := 0; i < a; i++ {
		g.AddEdge(0, 2+i)
	}
	for i := a; i < n-2; i++ {
		g.AddEdge(1, 2+i)
	}
	return g
}

// Complete returns the complete graph on n vertices with edge {u,v}, u < v,
// owned by u.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// CompleteMinus returns the complete graph on n vertices minus the given
// edges; used to build the host graphs of Corollaries 3.6 and 4.2.
func CompleteMinus(n int, missing []Edge) *Graph {
	g := Complete(n)
	for _, e := range missing {
		g.RemoveEdge(e.U, e.V)
	}
	return g
}
