package graph

import (
	"math/rand"
	"testing"
)

func randomOwnedGraph(n int, r *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				g.AddEdge(u, v)
			case 1:
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

func TestOwnedRowsRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 63, 64, 65, 130} {
		g := randomOwnedGraph(n, r)
		enc := g.AppendOwnedRows(nil)
		if len(enc) != EncodedWords(n) {
			t.Fatalf("n=%d: encoding has %d words, want %d", n, len(enc), EncodedWords(n))
		}
		dec := New(n)
		dec.LoadOwnedRows(enc)
		if err := dec.Validate(); err != nil {
			t.Fatalf("n=%d: decoded graph invalid: %v", n, err)
		}
		if !dec.Equal(g) {
			t.Fatalf("n=%d: owned roundtrip lost state", n)
		}
	}
}

func TestAdjRowsRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 63, 64, 65, 130} {
		g := randomOwnedGraph(n, r)
		enc := g.AppendAdjRows(nil)
		dec := New(n)
		dec.LoadAdjRows(enc)
		if err := dec.Validate(); err != nil {
			t.Fatalf("n=%d: decoded graph invalid: %v", n, err)
		}
		if !dec.EqualUnowned(g) {
			t.Fatalf("n=%d: adj roundtrip lost edges", n)
		}
		// Canonical orientation: the smaller endpoint owns every edge.
		for _, e := range dec.Edges() {
			if e.U > e.V {
				t.Fatalf("n=%d: edge {%d,%d} not canonically oriented", n, e.U, e.V)
			}
		}
	}
}

// recorder counts observer callbacks.
type recorder struct {
	added, removed, owner int
	lastOwner, lastV      int
}

func (r *recorder) EdgeAdded(owner, v int)   { r.added++; r.lastOwner, r.lastV = owner, v }
func (r *recorder) EdgeRemoved(owner, v int) { r.removed++; r.lastOwner, r.lastV = owner, v }
func (r *recorder) OwnerChanged(owner, v int) {
	r.owner++
	r.lastOwner, r.lastV = owner, v
}

func TestObserverCallbacks(t *testing.T) {
	g := New(4)
	var rec recorder
	g.SetObserver(&rec)
	g.AddEdge(1, 2)
	if rec.added != 1 || rec.lastOwner != 1 || rec.lastV != 2 {
		t.Fatalf("EdgeAdded not observed: %+v", rec)
	}
	// Removing from the non-owner side still reports the owner.
	g.RemoveEdge(2, 1)
	if rec.removed != 1 || rec.lastOwner != 1 || rec.lastV != 2 {
		t.Fatalf("EdgeRemoved owner wrong: %+v", rec)
	}
	g.AddEdge(0, 3)
	g.SetOwner(3, 0)
	if rec.owner != 1 || rec.lastOwner != 3 || rec.lastV != 0 {
		t.Fatalf("OwnerChanged not observed: %+v", rec)
	}
	// A no-op ownership transfer must not fire.
	g.SetOwner(3, 0)
	if rec.owner != 1 {
		t.Fatal("no-op SetOwner fired OwnerChanged")
	}
	// Clones are unobserved; uninstalling stops callbacks.
	c := g.Clone()
	c.AddEdge(1, 3)
	g.SetObserver(nil)
	g.AddEdge(1, 3)
	if rec.added != 2 {
		t.Fatalf("observer leaked to clone or survived uninstall: %+v", rec)
	}
}
