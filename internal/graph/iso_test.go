package graph

import (
	"math/rand"
	"testing"
)

// permuted returns g with vertices relabeled by perm (ownership preserved).
func permuted(g *Graph, perm []int) *Graph {
	h := New(g.N())
	for _, e := range g.Edges() {
		h.AddEdge(perm[e.U], perm[e.V])
	}
	return h
}

func TestIsomorphicPermutedGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(14)
		g := randomGraph(n, r.Float64(), r)
		perm := r.Perm(n)
		h := permuted(g, perm)
		if !Isomorphic(g, h) {
			t.Fatalf("permuted graph not isomorphic:\n%v\n%v", g, h)
		}
		if !IsomorphicOwned(g, h) {
			t.Fatalf("ownership-preserving permutation rejected:\n%v\n%v", g, h)
		}
	}
}

func TestNonIsomorphicPairs(t *testing.T) {
	cases := []struct{ a, b *Graph }{
		{Path(5), Star(5)},
		{Cycle(6), Path(6)},
		{DoubleStar(6, 2), Star(6)},
		{Complete(4), Cycle(4)},
	}
	for i, c := range cases {
		if Isomorphic(c.a, c.b) {
			t.Fatalf("case %d: distinct graphs reported isomorphic", i)
		}
	}
	// Same degree sequence, not isomorphic: C6 vs 2x C3.
	twoTriangles := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		twoTriangles.AddEdge(e[0], e[1])
	}
	if Isomorphic(Cycle(6), twoTriangles) {
		t.Fatal("C6 ~ 2C3 reported isomorphic")
	}
}

func TestIsomorphicOwnedDistinguishesOwnership(t *testing.T) {
	// Directed path 0->1->2 vs path with both edges owned by the middle.
	a := New(3)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	b := New(3)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	if !Isomorphic(a, b) {
		t.Fatal("same shape should be unowned-isomorphic")
	}
	if IsomorphicOwned(a, b) {
		t.Fatal("ownership out-degree sequences differ (1,1,0) vs (0,2,0)")
	}
}

func TestIsomorphismToMapping(t *testing.T) {
	g := DoubleStar(7, 2)
	perm := []int{3, 6, 0, 1, 2, 4, 5}
	h := permuted(g, perm)
	phi := IsomorphismTo(g, h, true)
	if phi == nil {
		t.Fatal("no mapping found")
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(phi[e.U], phi[e.V]) || !h.Owns(phi[e.U], phi[e.V]) {
			t.Fatalf("mapping does not preserve owned edge %v", e)
		}
	}
}

func TestIsomorphicSizeMismatch(t *testing.T) {
	if Isomorphic(Path(4), Path(5)) {
		t.Fatal("different sizes cannot be isomorphic")
	}
	g := Path(4)
	h := Path(4)
	h.AddEdge(0, 2)
	if Isomorphic(g, h) {
		t.Fatal("different edge counts cannot be isomorphic")
	}
}

func TestIsomorphicEmptyAndTiny(t *testing.T) {
	if !Isomorphic(New(0), New(0)) || !Isomorphic(New(3), New(3)) {
		t.Fatal("empty graphs are isomorphic")
	}
}
