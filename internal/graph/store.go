package graph

// Store is the narrowed graph surface the runtime layers (game scans,
// dynamics engines, state fingerprints, landmark oracles) operate on: edge
// and ownership tests, deterministic adjacency iteration, mutation with
// EdgeObserver hooks, the BFS kernel family and the canonical state
// encodings. Two implementations exist:
//
//   - *Graph: the bitset adjacency matrix — O(n²/8) memory, word-parallel
//     row operations, the right backend for the paper's dense construction
//     searches and for any n where n² bits fit comfortably.
//   - *Sparse: CSR-style adjacency lists with slack-slot insertion and
//     amortized compaction — O(n + m) memory, the backend for million-agent
//     landmark-mode runs where the matrix itself is the wall.
//
// Both backends expose the same deterministic neighbour order (increasing
// vertex index), so BFS levels, tie-breaks, fingerprints and canonical
// encodings are bit-identical across them; the dense-only conveniences
// (Clone, Equal, Edges, Validate, bitset row access) stay on *Graph.
//
// The interface is sealed (the unexported buildCSR method): only backends
// inside this package can implement it, which is what lets the batch
// kernels trust the CSR snapshot contract.
type Store interface {
	// N returns the number of vertices.
	N() int
	// M returns the number of edges.
	M() int
	// AdjVersion returns the adjacency mutation counter; it changes
	// whenever the edge set may have changed since a previous observation.
	AdjVersion() uint64

	// HasEdge reports whether the edge {u,v} exists.
	HasEdge(u, v int) bool
	// Owns reports whether edge {u,v} exists and is owned by u.
	Owns(u, v int) bool
	// Owner returns the owner of edge {u,v}; it panics if the edge is
	// absent.
	Owner(u, v int) int
	// Degree returns the number of edges incident to u.
	Degree(u int) int
	// OutDegree returns the number of edges owned by u.
	OutDegree(u int) int

	// AddEdge inserts the edge {owner, v} owned by owner. It panics if the
	// edge already exists, if owner == v, or if either endpoint is out of
	// range.
	AddEdge(owner, v int)
	// RemoveEdge deletes the edge {u,v} regardless of its owner. It panics
	// if the edge does not exist.
	RemoveEdge(u, v int)
	// SetOwner transfers ownership of the existing edge {u,v} to owner,
	// which must be one of its endpoints.
	SetOwner(owner, v int)
	// SetObserver installs o as the mutation observer (nil uninstalls).
	SetObserver(o EdgeObserver)

	// NeighborList appends the neighbours of u to dst in increasing order.
	NeighborList(u int, dst []int) []int
	// OwnedList appends the owned neighbours of u to dst in increasing
	// order.
	OwnedList(u int, dst []int) []int
	// AppendNeighbors32 appends the neighbours of u to dst in increasing
	// order as int32, the scratch-friendly form of hot repair loops.
	AppendNeighbors32(u int, dst []int32) []int32
	// ForEachOwned calls fn for every owned neighbour of u in increasing
	// order.
	ForEachOwned(u int, fn func(v int))

	// AppendOwnedRows appends the ownership-aware canonical encoding to
	// dst; see encode.go. Byte-equality of encodings is state equality
	// across backends.
	AppendOwnedRows(dst []uint64) []uint64
	// AppendAdjRows appends the ownership-blind canonical encoding to dst.
	AppendAdjRows(dst []uint64) []uint64

	// BFS computes shortest-path distances from src; see (*Graph).BFS.
	BFS(src int, dist []int32, s *BFSScratch) BFSResult
	// BFSExcluding is BFS on the vertex-deleted subgraph G - excl.
	BFSExcluding(src, excl int, dist []int32, s *BFSScratch) BFSResult
	// PartialBFS completes a partially known distance field; see
	// (*Graph).PartialBFS for the exact contract.
	PartialBFS(dist []int32, suspects Bitset, s *RepairScratch)
	// Connected reports whether the graph is connected.
	Connected() bool
	// ConnectedFrom reports whether all n vertices are reachable from src.
	ConnectedFrom(src int, s *BFSScratch) bool

	// BatchBFS computes distance rows from every source, 64 per pass; see
	// (*Graph).BatchBFS.
	BatchBFS(sources []int, rows [][]int32, res []BFSResult, s *BatchBFSScratch)
	// BatchBFSExcluding is BatchBFS on the vertex-deleted subgraph G-excl.
	BatchBFSExcluding(sources []int, excl int, rows [][]int32, res []BFSResult, s *BatchBFSScratch)
	// AllSourcesBFS runs BatchBFS from every vertex.
	AllSourcesBFS(rows [][]int32, res []BFSResult, s *BatchBFSScratch)
	// AllSourcesBFSFlat is AllSourcesBFS into a row-major n*n matrix.
	AllSourcesBFSFlat(mat []int32, res []BFSResult, s *BatchBFSScratch)
	// AllSourcesBFSShard covers sources [lo, hi) of the flat matrix.
	AllSourcesBFSShard(lo, hi int, mat []int32, res []BFSResult, s *BatchBFSScratch)

	// buildCSR snapshots the adjacency into the scratch's flat neighbour
	// lists (cached on (identity, AdjVersion)); it seals the interface to
	// this package.
	buildCSR(s *BatchBFSScratch)
}

var (
	_ Store = (*Graph)(nil)
	_ Store = (*Sparse)(nil)
)

// ForEachOwned calls fn for every owned neighbour of u in increasing order.
func (g *Graph) ForEachOwned(u int, fn func(v int)) { g.out[u].ForEach(fn) }

// AppendNeighbors32 appends the neighbours of u to dst in increasing order
// as int32.
func (g *Graph) AppendNeighbors32(u int, dst []int32) []int32 {
	return g.adj[u].Elements32(dst)
}
