package graph

// Canonical compact state encodings. A graph state is stored as raw bitset
// rows appended to a caller-provided word slice — no per-row headers, no
// degree counters, nothing derivable:
//
//   - ownership-aware: the n out-rows ((n+63)/64 words each). The
//     out-matrix determines the full state: adj = out ∪ outᵀ.
//   - ownership-blind: the n adj-rows. Decoding orients every edge towards
//     its smaller endpoint, a canonical ownership that games with
//     OwnershipMatters() == false never consult.
//
// Both encodings use n·⌈n/64⌉ words, and byte-equality of encodings is
// exactly state equality (Equal respectively EqualUnowned), which is what
// the interned state store (internal/state) verifies on hash collisions.

// EncodedWords returns the length in words of both state encodings of an
// n-vertex graph.
func EncodedWords(n int) int { return n * ((n + 63) / 64) }

// AppendOwnedRows appends the ownership-aware encoding of g to dst.
func (g *Graph) AppendOwnedRows(dst []uint64) []uint64 {
	for u := 0; u < g.n; u++ {
		dst = append(dst, g.out[u]...)
	}
	return dst
}

// AppendAdjRows appends the ownership-blind encoding of g to dst.
func (g *Graph) AppendAdjRows(dst []uint64) []uint64 {
	for u := 0; u < g.n; u++ {
		dst = append(dst, g.adj[u]...)
	}
	return dst
}

// LoadOwnedRows overwrites g with the state encoded by AppendOwnedRows.
// The observer, if any, is bypassed; re-initialize it after loading.
func (g *Graph) LoadOwnedRows(rows []uint64) {
	words := (g.n + 63) / 64
	if len(rows) != g.n*words {
		panic("graph: LoadOwnedRows size mismatch")
	}
	m := 0
	for u := 0; u < g.n; u++ {
		row := Bitset(rows[u*words : (u+1)*words])
		g.out[u].CopyFrom(row)
		g.adj[u].CopyFrom(row)
		m += row.Count()
	}
	g.m = m
	// adj = out ∪ outᵀ: fold every owned edge into its other endpoint.
	for u := 0; u < g.n; u++ {
		g.out[u].ForEach(func(v int) {
			g.adj[v].Set(u)
		})
	}
	for u := 0; u < g.n; u++ {
		g.deg[u] = g.adj[u].Count()
	}
	g.version++
}

// LoadAdjRows overwrites g with the state encoded by AppendAdjRows, giving
// every edge the canonical ownership "smaller endpoint owns". The observer,
// if any, is bypassed; re-initialize it after loading.
func (g *Graph) LoadAdjRows(rows []uint64) {
	words := (g.n + 63) / 64
	if len(rows) != g.n*words {
		panic("graph: LoadAdjRows size mismatch")
	}
	edges2 := 0
	for u := 0; u < g.n; u++ {
		row := Bitset(rows[u*words : (u+1)*words])
		g.adj[u].CopyFrom(row)
		g.deg[u] = row.Count()
		edges2 += g.deg[u]
		// out[u] = neighbours above u: mask away word bits at or below u.
		ou := g.out[u]
		ou.CopyFrom(row)
		w := u >> 6
		for i := 0; i < w; i++ {
			ou[i] = 0
		}
		if w < len(ou) {
			ou[w] &^= (1 << uint(u&63+1)) - 1
		}
	}
	g.m = edges2 / 2
	g.version++
}
