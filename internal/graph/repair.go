package graph

import "math/bits"

// PartialBFS completes a partially known distance field over this graph:
// a multi-source level-synchronous search seeded with the already-exact
// entries. It is the workhorse of incremental distance maintenance, where
// deleting an edge or a vertex invalidates only the entries whose every
// shortest path crossed it — typically a small fraction — so reseeding the
// survivors and repairing the rest costs O(n) plus work local to the
// damage, instead of a full O(diameter)-level search.
//
// On entry, dist[v] must be the exact source distance for every vertex not
// in suspects and Unreachable for every suspect; suspect entries are then
// settled to their exact distance (or left Unreachable when disconnected).
// Vertices meant to be excluded from the graph (a deleted vertex) must be
// non-suspect with dist Unreachable: they then never join a frontier and
// never get settled through. suspects is left in an unspecified state.
func (g *Graph) PartialBFS(dist []int32, suspects Bitset, s *RepairScratch) {
	n := g.n
	remaining := suspects.Count()
	if remaining == 0 {
		return
	}
	if remaining == 1 {
		// A single damaged vertex settles directly: every path to it ends
		// with an edge from an exactly-settled neighbour.
		v := suspects.First()
		best := Unreachable
		for wi, w := range g.adj[v] {
			base := wi << 6
			for w != 0 {
				nb := base + bits.TrailingZeros64(w)
				w &= w - 1
				if dw := dist[nb]; dw < best-1 {
					best = dw + 1
				}
			}
		}
		dist[v] = best
		return
	}
	s.grow(n)
	arr, seeds := partialSeed(n, dist, suspects, s)
	start := 0
	cur := s.cur[:0]
	next := s.next2[:0]
	for lvl := int32(0); remaining > 0; lvl++ {
		end := start
		for end < seeds && dist[arr[end]] == lvl {
			end++
		}
		if start == end && len(cur) == 0 {
			if start >= seeds {
				break // nothing settled at this level or beyond
			}
			// Jump to the next seeded level.
			lvl = dist[arr[start]] - 1
			continue
		}
		expand := func(v int32) {
			av := g.adj[v]
			for wi, w := range av {
				m := w & suspects[wi]
				for m != 0 {
					b := m & -m
					m ^= b
					wv := wi<<6 | bits.TrailingZeros64(b)
					suspects[wi] &^= b
					dist[wv] = lvl + 1
					remaining--
					next = append(next, int32(wv))
				}
			}
		}
		for _, v := range arr[start:end] {
			expand(v)
		}
		for _, v := range cur {
			expand(v)
		}
		start = end
		cur, next = next, cur[:0]
	}
	s.cur, s.next2 = cur[:0], next[:0]
}

// partialSeed buckets the settled, reachable vertices by distance — cnt,
// then prefix offsets, then the seed array in ascending distance order —
// the shared pre-pass of both backends' PartialBFS. On return, s.off[lvl]
// ends the lvl segment of the returned seed array.
func partialSeed(n int, dist []int32, suspects Bitset, s *RepairScratch) ([]int32, int) {
	cnt := s.cnt[: n+1 : n+1]
	for i := range cnt {
		cnt[i] = 0
	}
	seeds := 0
	for v := 0; v < n; v++ {
		if dv := dist[v]; dv < Unreachable && !suspects.Has(v) {
			cnt[dv]++
			seeds++
		}
	}
	off := s.off[: n+2 : n+2]
	off[0] = 0
	for i := 0; i <= n; i++ {
		off[i+1] = off[i] + cnt[i]
	}
	arr := s.arr[:seeds]
	for v := 0; v < n; v++ {
		if dv := dist[v]; dv < Unreachable && !suspects.Has(v) {
			arr[off[dv]] = int32(v)
			off[dv]++
		}
	}
	return arr, seeds
}

// RepairScratch holds the reusable buffers of PartialBFS; not safe for
// concurrent use.
type RepairScratch struct {
	cnt   []int32
	off   []int32
	arr   []int32
	cur   []int32
	next2 []int32
}

// NewRepairScratch returns scratch sized for n-vertex graphs (it grows on
// demand, so 0 is fine).
func NewRepairScratch(n int) *RepairScratch {
	s := &RepairScratch{}
	s.grow(n)
	return s
}

func (s *RepairScratch) grow(n int) {
	if len(s.cnt) >= n+1 {
		return
	}
	s.cnt = make([]int32, n+1)
	s.off = make([]int32, n+2)
	s.arr = make([]int32, n)
}
