// Package graph implements the network substrate of network creation games:
// undirected graphs on n agents together with an ownership function that
// assigns every edge to exactly one of its endpoints (Kawald & Lenzner,
// SPAA'13, Section 1.1). The representation is a bitset adjacency matrix,
// which makes the breadth-first searches that dominate best-response
// computations cheap and allocation-free.
package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers backed by
// 64-bit words. The zero value of a Bitset is not usable; create one with
// NewBitset. All operations assume operands were created with the same
// capacity.
type Bitset []uint64

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set inserts i into the set.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (b Bitset) Has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Flip toggles membership of i.
func (b Bitset) Flip(i int) { b[i>>6] ^= 1 << uint(i&63) }

// Reset removes all elements.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// CopyFrom overwrites b with the contents of src.
func (b Bitset) CopyFrom(src Bitset) {
	copy(b, src)
}

// Clone returns an independent copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Count returns the number of elements in the set.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// OrWith sets b to the union of b and o.
func (b Bitset) OrWith(o Bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// AndWith sets b to the intersection of b and o.
func (b Bitset) AndWith(o Bitset) {
	for i, w := range o {
		b[i] &= w
	}
}

// AndNotWith removes from b every element of o.
func (b Bitset) AndNotWith(o Bitset) {
	for i, w := range o {
		b[i] &^= w
	}
}

// Equal reports whether b and o contain the same elements.
func (b Bitset) Equal(o Bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i, w := range b {
		if w != o[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share at least one element.
func (b Bitset) Intersects(o Bitset) bool {
	for i, w := range b {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every element of the set in increasing order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Elements appends the elements of the set to dst in increasing order and
// returns the extended slice. Pass nil to allocate a fresh slice.
func (b Bitset) Elements(dst []int) []int {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Elements32 appends the elements of the set to dst in increasing order as
// int32 and returns the extended slice.
func (b Bitset) Elements32(dst []int32) []int32 {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			dst = append(dst, int32(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// First returns the smallest element of the set, or -1 if it is empty.
func (b Bitset) First() int {
	for wi, w := range b {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}
