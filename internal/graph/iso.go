package graph

import "sort"

// Isomorphic reports whether g and h are isomorphic as unowned undirected
// graphs. Intended for the small construction graphs of the paper (n <= 32
// or so); it uses iterated colour refinement to prune a backtracking search,
// which is exact at any size but exponential in the worst case.
func Isomorphic(g, h Store) bool {
	return isomorphic(g, h, false) != nil
}

// IsomorphicOwned is Isomorphic but additionally requires the mapping to
// preserve edge ownership: phi(o({u,v})) = o({phi(u), phi(v)}).
func IsomorphicOwned(g, h Store) bool {
	return isomorphic(g, h, true) != nil
}

// IsomorphismTo returns a vertex mapping phi with phi preserving adjacency
// (and ownership if owned is set), or nil if none exists.
func IsomorphismTo(g, h Store, owned bool) []int {
	return isomorphic(g, h, owned)
}

func isomorphic(g, h Store, owned bool) []int {
	if g.N() != h.N() || g.M() != h.M() {
		return nil
	}
	n := g.N()
	if n == 0 {
		return []int{}
	}
	cg := refineColors(g, owned)
	ch := refineColors(h, owned)
	if !sameColorMultiset(cg, ch) {
		return nil
	}

	// Candidate sets: u in g may map to v in h only when colours agree.
	cands := make([][]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if cg[u] == ch[v] {
				cands[u] = append(cands[u], v)
			}
		}
		if len(cands[u]) == 0 {
			return nil
		}
	}
	// Assign the most constrained vertices first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return len(cands[order[i]]) < len(cands[order[j]])
	})

	phi := make([]int, n)
	used := make([]bool, n)
	for i := range phi {
		phi[i] = -1
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return true
		}
		u := order[k]
		for _, v := range cands[u] {
			if used[v] || !compatible(g, h, phi, u, v, owned) {
				continue
			}
			phi[u] = v
			used[v] = true
			if rec(k + 1) {
				return true
			}
			phi[u] = -1
			used[v] = false
		}
		return false
	}
	if !rec(0) {
		return nil
	}
	return phi
}

// compatible checks that mapping u -> v is consistent with every already
// assigned vertex.
func compatible(g, h Store, phi []int, u, v int, owned bool) bool {
	for w, pw := range phi {
		if pw < 0 || w == u {
			continue
		}
		if g.HasEdge(u, w) != h.HasEdge(v, pw) {
			return false
		}
		if owned && g.HasEdge(u, w) {
			if g.Owns(u, w) != h.Owns(v, pw) {
				return false
			}
		}
	}
	return true
}

// refineColors runs 1-dimensional Weisfeiler-Leman colour refinement until
// the partition stabilizes and returns the final colour of every vertex.
// Colours are canonical across graphs: equal multisets of (colour,
// neighbour-colour-multiset) pairs refine to equal colours.
func refineColors(g Store, owned bool) []uint64 {
	n := g.N()
	col := make([]uint64, n)
	for u := 0; u < n; u++ {
		c := uint64(g.Degree(u))
		if owned {
			c = c<<16 | uint64(g.OutDegree(u))
		}
		col[u] = c
	}
	sig := make([]uint64, n)
	neigh := make([]uint64, 0, n)
	nbuf := make([]int, 0, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			neigh = neigh[:0]
			for _, v := range g.NeighborList(u, nbuf[:0]) {
				c := col[v]
				if owned {
					if g.Owns(u, v) {
						c = mix(c, 0x9e3779b97f4a7c15)
					} else {
						c = mix(c, 0xc2b2ae3d27d4eb4f)
					}
				}
				neigh = append(neigh, c)
			}
			sort.Slice(neigh, func(i, j int) bool { return neigh[i] < neigh[j] })
			s := col[u]
			for _, c := range neigh {
				s = mix(s, c)
			}
			sig[u] = s
		}
		for u := 0; u < n; u++ {
			if sig[u] != col[u] {
				changed = true
			}
			col[u] = sig[u]
		}
		if !changed {
			break
		}
	}
	return col
}

func mix(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func sameColorMultiset(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	ca := append([]uint64(nil), a...)
	cb := append([]uint64(nil), b...)
	sort.Slice(ca, func(i, j int) bool { return ca[i] < ca[j] })
	sort.Slice(cb, func(i, j int) bool { return cb[i] < cb[j] })
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
