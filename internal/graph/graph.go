package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is an undirected network G = (V, E, o) on vertex set {0, ..., n-1}
// with an ownership function o that assigns every edge to exactly one of its
// endpoints. Games that ignore ownership (the Swap Game) simply never
// consult it.
//
// Internally the graph keeps a bitset adjacency matrix plus a bitset
// "out-neighbour" matrix recording ownership: out[u].Has(v) holds iff edge
// {u,v} exists and is owned by u. For every edge exactly one of
// out[u].Has(v), out[v].Has(u) is true; Validate checks this invariant.
type Graph struct {
	n   int
	m   int
	adj []Bitset // adj[u] = neighbours of u
	out []Bitset // out[u] = neighbours v with o({u,v}) = u
	deg []int
	obs EdgeObserver
	// version counts adjacency mutations (edge insertions, removals and
	// bulk overwrites; ownership transfers don't change adjacency). Batch
	// kernels key their CSR snapshot on it, so back-to-back searches of an
	// unchanged network skip the snapshot rebuild.
	version uint64
}

// AdjVersion returns the adjacency mutation counter; it changes whenever
// the edge set may have changed since a previous observation.
func (g *Graph) AdjVersion() uint64 { return g.version }

// EdgeObserver receives a callback after every edge mutation of a graph it
// is installed on, the hook behind incrementally maintained state
// fingerprints (internal/state). Bulk operations (CopyFrom, LoadOwnedRows,
// LoadAdjRows) bypass the observer; re-initialize it after them.
type EdgeObserver interface {
	// EdgeAdded runs after edge {owner,v} owned by owner was inserted.
	EdgeAdded(owner, v int)
	// EdgeRemoved runs after the edge {owner,v} was deleted; owner is the
	// endpoint that owned it at removal time.
	EdgeRemoved(owner, v int)
	// OwnerChanged runs after ownership of edge {owner,v} moved to owner;
	// the previous owner was v. It does not run for no-op SetOwner calls.
	OwnerChanged(owner, v int)
}

// SetObserver installs o as the graph's mutation observer (nil uninstalls).
// Exactly one observer can be active; installing replaces the previous one.
func (g *Graph) SetObserver(o EdgeObserver) { g.obs = o }

// Edge is an undirected edge together with its owner; Owner must be one of
// the two endpoints (U by convention in builders).
type Edge struct {
	U, V int
}

// New returns an empty graph on n vertices, 0 <= n.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{
		n:   n,
		adj: make([]Bitset, n),
		out: make([]Bitset, n),
		deg: make([]int, n),
	}
	words := (n + 63) / 64
	backing := make([]uint64, 2*n*words)
	for u := 0; u < n; u++ {
		g.adj[u] = Bitset(backing[2*u*words : (2*u+1)*words])
		g.out[u] = Bitset(backing[(2*u+1)*words : (2*u+2)*words])
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// HasEdge reports whether the edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u].Has(v) }

// Owns reports whether edge {u,v} exists and is owned by u.
func (g *Graph) Owns(u, v int) bool { return g.out[u].Has(v) }

// Owner returns the owner of edge {u,v}; it panics if the edge is absent.
func (g *Graph) Owner(u, v int) int {
	switch {
	case g.out[u].Has(v):
		return u
	case g.out[v].Has(u):
		return v
	}
	panic(fmt.Sprintf("graph: no edge {%d,%d}", u, v))
}

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int { return g.deg[u] }

// OutDegree returns the number of edges owned by u.
func (g *Graph) OutDegree(u int) int { return g.out[u].Count() }

// AddEdge inserts the edge {owner, v} owned by owner. It panics if the edge
// already exists, if owner == v, or if either endpoint is out of range.
func (g *Graph) AddEdge(owner, v int) {
	if owner == v {
		panic(fmt.Sprintf("graph: self-loop at %d", owner))
	}
	if g.adj[owner].Has(v) {
		panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", owner, v))
	}
	g.adj[owner].Set(v)
	g.adj[v].Set(owner)
	g.out[owner].Set(v)
	g.deg[owner]++
	g.deg[v]++
	g.m++
	g.version++
	if g.obs != nil {
		g.obs.EdgeAdded(owner, v)
	}
}

// RemoveEdge deletes the edge {u,v} regardless of its owner. It panics if
// the edge does not exist.
func (g *Graph) RemoveEdge(u, v int) {
	if !g.adj[u].Has(v) {
		panic(fmt.Sprintf("graph: removing missing edge {%d,%d}", u, v))
	}
	owner, other := u, v
	if g.obs != nil && !g.out[u].Has(v) {
		owner, other = v, u
	}
	g.adj[u].Clear(v)
	g.adj[v].Clear(u)
	g.out[u].Clear(v)
	g.out[v].Clear(u)
	g.deg[u]--
	g.deg[v]--
	g.m--
	g.version++
	if g.obs != nil {
		g.obs.EdgeRemoved(owner, other)
	}
}

// SetOwner transfers ownership of the existing edge {u,v} to owner, which
// must be one of its endpoints.
func (g *Graph) SetOwner(owner, v int) {
	if !g.adj[owner].Has(v) {
		panic(fmt.Sprintf("graph: no edge {%d,%d}", owner, v))
	}
	changed := !g.out[owner].Has(v)
	g.out[owner].Set(v)
	g.out[v].Clear(owner)
	if changed && g.obs != nil {
		g.obs.OwnerChanged(owner, v)
	}
}

// Neighbors returns the neighbour bitset of u. The caller must not modify
// it.
func (g *Graph) Neighbors(u int) Bitset { return g.adj[u] }

// OwnedNeighbors returns the bitset of v with o({u,v}) = u. The caller must
// not modify it.
func (g *Graph) OwnedNeighbors(u int) Bitset { return g.out[u] }

// NeighborList appends the neighbours of u to dst in increasing order.
func (g *Graph) NeighborList(u int, dst []int) []int { return g.adj[u].Elements(dst) }

// OwnedList appends the owned neighbours of u to dst in increasing order.
func (g *Graph) OwnedList(u int, dst []int) []int { return g.out[u].Elements(dst) }

// Edges returns all edges with their owner as the U field, sorted by
// (owner, other endpoint).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		g.out[u].ForEach(func(v int) {
			es = append(es, Edge{u, v})
		})
	}
	return es
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		c.adj[u].CopyFrom(g.adj[u])
		c.out[u].CopyFrom(g.out[u])
		c.deg[u] = g.deg[u]
	}
	c.m = g.m
	return c
}

// CopyFrom overwrites g with src; both must have the same vertex count.
func (g *Graph) CopyFrom(src *Graph) {
	if g.n != src.n {
		panic("graph: CopyFrom size mismatch")
	}
	for u := 0; u < g.n; u++ {
		g.adj[u].CopyFrom(src.adj[u])
		g.out[u].CopyFrom(src.out[u])
		g.deg[u] = src.deg[u]
	}
	g.m = src.m
	g.version++
}

// Equal reports whether g and o are identical labeled networks: same vertex
// count, same edges and same ownership.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n || g.m != o.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if !g.out[u].Equal(o.out[u]) {
			return false
		}
	}
	return true
}

// EqualUnowned reports whether g and o have the same edge sets, ignoring
// ownership.
func (g *Graph) EqualUnowned(o *Graph) bool {
	if g.n != o.n || g.m != o.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if !g.adj[u].Equal(o.adj[u]) {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit FNV-1a hash of the labeled network including
// ownership. Equal graphs hash equal; the converse holds only modulo
// collisions, so callers that must be exact should confirm with Equal.
func (g *Graph) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(g.n)) * prime
	for u := 0; u < g.n; u++ {
		for _, w := range g.out[u] {
			h = (h ^ w) * prime
			h = (h ^ (w >> 32)) * prime
		}
	}
	return h
}

// HashUnowned is Hash over the edge set only, ignoring ownership.
func (g *Graph) HashUnowned() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(g.n)) * prime
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			h = (h ^ w) * prime
			h = (h ^ (w >> 32)) * prime
		}
	}
	return h
}

// Validate checks the representation invariants: adjacency symmetry, no
// self-loops, every edge owned by exactly one endpoint, degree counters and
// edge counter consistent. It returns the first violation found.
func (g *Graph) Validate() error {
	edges := 0
	for u := 0; u < g.n; u++ {
		if g.adj[u].Has(u) {
			return fmt.Errorf("graph: self-loop at %d", u)
		}
		d := 0
		for v := 0; v < g.n; v++ {
			if g.adj[u].Has(v) {
				d++
				if !g.adj[v].Has(u) {
					return fmt.Errorf("graph: asymmetric edge {%d,%d}", u, v)
				}
				ou, ov := g.out[u].Has(v), g.out[v].Has(u)
				if ou == ov {
					return fmt.Errorf("graph: edge {%d,%d} has %d owners", u, v, b2i(ou)+b2i(ov))
				}
				if u < v {
					edges++
				}
			} else if g.out[u].Has(v) {
				return fmt.Errorf("graph: ownership without edge {%d,%d}", u, v)
			}
		}
		if d != g.deg[u] {
			return fmt.Errorf("graph: degree of %d is %d, counter says %d", u, d, g.deg[u])
		}
	}
	if edges != g.m {
		return fmt.Errorf("graph: %d edges, counter says %d", edges, g.m)
	}
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// String renders the graph as "n=<n> edges=[owner->v ...]" with edges sorted
// by owner; useful in test failure messages.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d m=%d [", g.n, g.m)
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	for i, e := range es {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d->%d", e.U, e.V)
	}
	sb.WriteByte(']')
	return sb.String()
}
