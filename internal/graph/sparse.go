package graph

import (
	"fmt"
	"sort"
)

// Sparse is the CSR-style adjacency-list implementation of Store: every
// vertex owns a sorted slice of packed neighbour entries inside one shared
// uint32 arena, O(n + m) memory in total — tens of megabytes at n = 10^6,
// m = O(n), against the ~125 GB a bitset matrix would need. It exists for
// the tree-and-near-tree regime the paper's dynamics live in at scale.
//
// Entry packing: the low 31 bits are the neighbour index, the top bit
// (spOwned) records "this row's vertex owns the edge". Rows are kept sorted
// by neighbour index, so every iteration order (neighbour lists, owned
// lists, BFS expansions, canonical encodings) matches the bitset backend's
// increasing-index order bit for bit.
//
// Mutation strategy — slack-slot insertion with amortized compaction:
// inserting into a full row relocates it to the end of the arena with
// doubled capacity (the old slot becomes garbage); once garbage exceeds the
// live entries the arena is compacted in one O(n + m) pass that restores
// per-row slack. Every operation is O(deg) plus amortized O(1) arena work,
// and the arena never exceeds a constant multiple of the live entry count.
type Sparse struct {
	n int
	m int
	// arena backs all rows; row u is arena[off[u] : off[u]+deg[u]], with
	// capacity rcap[u] (slack slots beyond deg are undefined).
	arena []uint32
	off   []int32
	deg   []int32
	rcap  []int32
	odeg  []int32 // per-vertex owned-edge counters
	// garbage counts abandoned row capacities; compaction triggers when it
	// exceeds the live entry count.
	garbage int
	obs     EdgeObserver
	version uint64
}

const (
	spOwned  = uint32(1) << 31
	spVertex = spOwned - 1
	// spInitCap is the capacity of a freshly relocated empty row.
	spInitCap = 4
)

// NewSparse returns an empty sparse graph on n vertices, 0 <= n. Rows start
// with zero capacity; the first insertion into a vertex relocates it.
func NewSparse(n int) *Sparse {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if int64(n) > int64(spVertex) {
		panic("graph: sparse backend supports at most 2^31-1 vertices")
	}
	return &Sparse{
		n:    n,
		off:  make([]int32, n),
		deg:  make([]int32, n),
		rcap: make([]int32, n),
		odeg: make([]int32, n),
	}
}

// NewSparseFrom returns the sparse copy of g: same edges, same ownership,
// same deterministic neighbour order.
func NewSparseFrom(g *Graph) *Sparse {
	sp := NewSparse(g.N())
	n := g.N()
	// Bulk load in one pass with a quarter of per-row slack, so the runs
	// that follow start with insertion headroom instead of relocating on
	// their first edge.
	total := 0
	for u := 0; u < n; u++ {
		total += g.Degree(u) + g.Degree(u)/4
	}
	sp.arena = make([]uint32, 0, total)
	for u := 0; u < n; u++ {
		d := g.Degree(u)
		c := d + d/4
		o := len(sp.arena)
		g.adj[u].ForEach(func(v int) {
			e := uint32(v)
			if g.out[u].Has(v) {
				e |= spOwned
			}
			sp.arena = append(sp.arena, e)
		})
		sp.arena = sp.arena[:o+c]
		sp.off[u] = int32(o)
		sp.deg[u] = int32(d)
		sp.rcap[u] = int32(c)
		sp.odeg[u] = int32(g.OutDegree(u))
	}
	sp.m = g.M()
	return sp
}

// Dense returns the bitset copy of sp: same edges, same ownership.
func (sp *Sparse) Dense() *Graph {
	g := New(sp.n)
	for u := 0; u < sp.n; u++ {
		for _, e := range sp.row(u) {
			if e&spOwned != 0 {
				g.AddEdge(u, int(e&spVertex))
			}
		}
	}
	return g
}

// row returns the live entries of vertex u.
func (sp *Sparse) row(u int) []uint32 {
	o := sp.off[u]
	return sp.arena[o : o+sp.deg[u]]
}

// find returns the index of v in row u and whether it is present; absent
// entries report the insertion position. Rows are sorted by vertex index,
// so this is a binary search over the masked entries.
func (sp *Sparse) find(u, v int) (int, bool) {
	row := sp.row(u)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(row[mid]&spVertex) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(row) && int(row[lo]&spVertex) == v
}

// N returns the number of vertices.
func (sp *Sparse) N() int { return sp.n }

// M returns the number of edges.
func (sp *Sparse) M() int { return sp.m }

// AdjVersion returns the adjacency mutation counter.
func (sp *Sparse) AdjVersion() uint64 { return sp.version }

// SetObserver installs o as the graph's mutation observer (nil uninstalls).
func (sp *Sparse) SetObserver(o EdgeObserver) { sp.obs = o }

// HasEdge reports whether the edge {u,v} exists.
func (sp *Sparse) HasEdge(u, v int) bool {
	_, ok := sp.find(u, v)
	return ok
}

// Owns reports whether edge {u,v} exists and is owned by u.
func (sp *Sparse) Owns(u, v int) bool {
	i, ok := sp.find(u, v)
	return ok && sp.row(u)[i]&spOwned != 0
}

// Owner returns the owner of edge {u,v}; it panics if the edge is absent.
func (sp *Sparse) Owner(u, v int) int {
	i, ok := sp.find(u, v)
	if !ok {
		panic(fmt.Sprintf("graph: no edge {%d,%d}", u, v))
	}
	if sp.row(u)[i]&spOwned != 0 {
		return u
	}
	return v
}

// Degree returns the number of edges incident to u.
func (sp *Sparse) Degree(u int) int { return int(sp.deg[u]) }

// OutDegree returns the number of edges owned by u.
func (sp *Sparse) OutDegree(u int) int { return int(sp.odeg[u]) }

// insert places the packed entry e into row u at sorted position pos,
// relocating or compacting as needed.
func (sp *Sparse) insert(u, pos int, e uint32) {
	if sp.deg[u] == sp.rcap[u] {
		sp.relocate(u)
	}
	o := int(sp.off[u])
	row := sp.arena[o : o+int(sp.deg[u])+1]
	copy(row[pos+1:], row[pos:])
	row[pos] = e
	sp.deg[u]++
}

// relocate moves row u to the end of the arena with doubled capacity and
// compacts the arena when the abandoned slots outweigh the live entries.
func (sp *Sparse) relocate(u int) {
	oldCap := int(sp.rcap[u])
	newCap := oldCap * 2
	if newCap < spInitCap {
		newCap = spInitCap
	}
	sp.garbage += oldCap
	live := 2 * sp.m
	if sp.garbage > live+spInitCap*sp.n {
		sp.compact(u, newCap)
		return
	}
	o := len(sp.arena)
	sp.arena = append(sp.arena, make([]uint32, newCap)...)
	copy(sp.arena[o:], sp.row(u))
	sp.off[u] = int32(o)
	sp.rcap[u] = int32(newCap)
}

// compact rebuilds the arena in vertex order, giving every row a quarter of
// slack; row u (mid-relocation) receives capacity uCap instead.
func (sp *Sparse) compact(u, uCap int) {
	need := 0
	for v := 0; v < sp.n; v++ {
		c := int(sp.deg[v]) + int(sp.deg[v])/4
		if v == u {
			c = uCap
		}
		need += c
	}
	fresh := make([]uint32, 0, need)
	for v := 0; v < sp.n; v++ {
		c := int(sp.deg[v]) + int(sp.deg[v])/4
		if v == u {
			c = uCap
		}
		o := len(fresh)
		fresh = append(fresh, sp.row(v)...)
		fresh = fresh[:o+c]
		sp.off[v] = int32(o)
		sp.rcap[v] = int32(c)
	}
	sp.arena = fresh
	sp.garbage = 0
}

// AddEdge inserts the edge {owner, v} owned by owner. It panics if the edge
// already exists, if owner == v, or if either endpoint is out of range.
func (sp *Sparse) AddEdge(owner, v int) {
	if owner == v {
		panic(fmt.Sprintf("graph: self-loop at %d", owner))
	}
	pu, dup := sp.find(owner, v)
	if dup {
		panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", owner, v))
	}
	pv, _ := sp.find(v, owner)
	sp.insert(owner, pu, uint32(v)|spOwned)
	sp.insert(v, pv, uint32(owner))
	sp.odeg[owner]++
	sp.m++
	sp.version++
	if sp.obs != nil {
		sp.obs.EdgeAdded(owner, v)
	}
}

// RemoveEdge deletes the edge {u,v} regardless of its owner. It panics if
// the edge does not exist.
func (sp *Sparse) RemoveEdge(u, v int) {
	pu, ok := sp.find(u, v)
	if !ok {
		panic(fmt.Sprintf("graph: removing missing edge {%d,%d}", u, v))
	}
	pv, _ := sp.find(v, u)
	owner, other := u, v
	if sp.row(u)[pu]&spOwned == 0 {
		owner, other = v, u
		sp.odeg[v]--
	} else {
		sp.odeg[u]--
	}
	ru := sp.row(u)
	copy(ru[pu:], ru[pu+1:])
	sp.deg[u]--
	rv := sp.row(v)
	copy(rv[pv:], rv[pv+1:])
	sp.deg[v]--
	sp.m--
	sp.version++
	if sp.obs != nil {
		sp.obs.EdgeRemoved(owner, other)
	}
}

// SetOwner transfers ownership of the existing edge {u,v} to owner, which
// must be one of its endpoints.
func (sp *Sparse) SetOwner(owner, v int) {
	po, ok := sp.find(owner, v)
	if !ok {
		panic(fmt.Sprintf("graph: no edge {%d,%d}", owner, v))
	}
	ro := sp.row(owner)
	if ro[po]&spOwned != 0 {
		return
	}
	pv, _ := sp.find(v, owner)
	ro[po] |= spOwned
	rv := sp.row(v)
	rv[pv] &^= spOwned
	sp.odeg[owner]++
	sp.odeg[v]--
	if sp.obs != nil {
		sp.obs.OwnerChanged(owner, v)
	}
}

// NeighborList appends the neighbours of u to dst in increasing order.
func (sp *Sparse) NeighborList(u int, dst []int) []int {
	for _, e := range sp.row(u) {
		dst = append(dst, int(e&spVertex))
	}
	return dst
}

// OwnedList appends the owned neighbours of u to dst in increasing order.
func (sp *Sparse) OwnedList(u int, dst []int) []int {
	for _, e := range sp.row(u) {
		if e&spOwned != 0 {
			dst = append(dst, int(e&spVertex))
		}
	}
	return dst
}

// AppendNeighbors32 appends the neighbours of u to dst in increasing order
// as int32.
func (sp *Sparse) AppendNeighbors32(u int, dst []int32) []int32 {
	for _, e := range sp.row(u) {
		dst = append(dst, int32(e&spVertex))
	}
	return dst
}

// ForEachOwned calls fn for every owned neighbour of u in increasing order.
func (sp *Sparse) ForEachOwned(u int, fn func(v int)) {
	for _, e := range sp.row(u) {
		if e&spOwned != 0 {
			fn(int(e & spVertex))
		}
	}
}

// AppendOwnedRows appends the ownership-aware canonical encoding — the same
// bitset row words the dense backend emits, synthesized from the sorted
// lists — so encodings are byte-identical across backends.
func (sp *Sparse) AppendOwnedRows(dst []uint64) []uint64 {
	words := (sp.n + 63) / 64
	base := len(dst)
	dst = append(dst, make([]uint64, sp.n*words)...)
	for u := 0; u < sp.n; u++ {
		row := dst[base+u*words : base+(u+1)*words]
		for _, e := range sp.row(u) {
			if e&spOwned != 0 {
				v := e & spVertex
				row[v>>6] |= 1 << (v & 63)
			}
		}
	}
	return dst
}

// AppendAdjRows appends the ownership-blind canonical encoding; see
// AppendOwnedRows.
func (sp *Sparse) AppendAdjRows(dst []uint64) []uint64 {
	words := (sp.n + 63) / 64
	base := len(dst)
	dst = append(dst, make([]uint64, sp.n*words)...)
	for u := 0; u < sp.n; u++ {
		row := dst[base+u*words : base+(u+1)*words]
		for _, e := range sp.row(u) {
			v := e & spVertex
			row[v>>6] |= 1 << (v & 63)
		}
	}
	return dst
}

// BFS computes shortest-path distances from src; contract identical to
// (*Graph).BFS. The sparse walk is a queue-based level scan over the
// adjacency lists — per-vertex distances, aggregates and eccentricities are
// bit-identical to the dense word-parallel search (BFS levels are unique).
func (sp *Sparse) BFS(src int, dist []int32, s *BFSScratch) BFSResult {
	return sp.bfsFrom(src, -1, dist, s)
}

// BFSExcluding is BFS on the vertex-deleted subgraph G - excl; contract
// identical to (*Graph).BFSExcluding.
func (sp *Sparse) BFSExcluding(src, excl int, dist []int32, s *BFSScratch) BFSResult {
	if src == excl {
		panic("graph: BFSExcluding source equals excluded vertex")
	}
	return sp.bfsFrom(src, excl, dist, s)
}

func (sp *Sparse) bfsFrom(src, excl int, dist []int32, s *BFSScratch) BFSResult {
	n := sp.n
	s.visited.Reset()
	if cap(s.queue) < n {
		s.queue = make([]int32, n)
	}
	q := s.queue[:0]
	if dist != nil {
		fill32(dist, Unreachable)
		dist[src] = 0
	}
	if excl >= 0 {
		s.visited.Set(excl)
	}
	s.visited.Set(src)
	q = append(q, int32(src))
	res := BFSResult{Reached: 1}
	depth := int32(0)
	for head, levelEnd := 0, 1; head < len(q); {
		depth++
		for ; head < levelEnd; head++ {
			for _, e := range sp.row(int(q[head])) {
				w := int(e & spVertex)
				if !s.visited.Has(w) {
					s.visited.Set(w)
					if dist != nil {
						dist[w] = depth
					}
					q = append(q, int32(w))
				}
			}
		}
		cnt := len(q) - levelEnd
		if cnt > 0 {
			res.Reached += cnt
			res.Sum += int64(depth) * int64(cnt)
			res.Ecc = depth
		}
		levelEnd = len(q)
	}
	s.queue = q[:0]
	return res
}

// Connected reports whether the graph is connected.
func (sp *Sparse) Connected() bool {
	if sp.n <= 1 {
		return true
	}
	return sp.BFS(0, nil, NewBFSScratch(sp.n)).Reached == sp.n
}

// ConnectedFrom reports whether all n vertices are reachable from src.
func (sp *Sparse) ConnectedFrom(src int, s *BFSScratch) bool {
	return sp.BFS(src, nil, s).Reached == sp.n
}

// PartialBFS completes a partially known distance field; contract identical
// to (*Graph).PartialBFS. Expansion walks the sorted adjacency lists
// against the suspects set instead of masking bitset words.
func (sp *Sparse) PartialBFS(dist []int32, suspects Bitset, s *RepairScratch) {
	n := sp.n
	remaining := suspects.Count()
	if remaining == 0 {
		return
	}
	if remaining == 1 {
		v := suspects.First()
		best := Unreachable
		for _, e := range sp.row(v) {
			if dw := dist[e&spVertex]; dw < best-1 {
				best = dw + 1
			}
		}
		dist[v] = best
		return
	}
	s.grow(n)
	arr, seeds := partialSeed(n, dist, suspects, s)
	start := 0
	cur := s.cur[:0]
	next := s.next2[:0]
	for lvl := int32(0); remaining > 0; lvl++ {
		end := start
		for end < seeds && dist[arr[end]] == lvl {
			end++
		}
		if start == end && len(cur) == 0 {
			if start >= seeds {
				break
			}
			lvl = dist[arr[start]] - 1
			continue
		}
		expand := func(v int32) {
			for _, e := range sp.row(int(v)) {
				w := int(e & spVertex)
				if suspects.Has(w) {
					suspects.Clear(w)
					dist[w] = lvl + 1
					remaining--
					next = append(next, int32(w))
				}
			}
		}
		for _, v := range arr[start:end] {
			expand(v)
		}
		for _, v := range cur {
			expand(v)
		}
		start = end
		cur, next = next, cur[:0]
	}
	s.cur, s.next2 = cur[:0], next[:0]
}

// buildCSR snapshots the adjacency into the scratch's flat neighbour lists;
// for the sparse backend this is a straight compaction of its own rows.
func (sp *Sparse) buildCSR(s *BatchBFSScratch) {
	if s.csrFor == Store(sp) && s.csrVer == sp.version {
		return
	}
	n := sp.n
	if cap(s.csrOff) < n+1 {
		s.csrOff = make([]int32, n+1)
	}
	off := s.csrOff[: n+1 : n+1]
	if cap(s.csr) < 2*sp.m {
		s.csr = make([]int32, 2*sp.m)
	}
	list := s.csr[:0]
	for v := 0; v < n; v++ {
		off[v] = int32(len(list))
		for _, e := range sp.row(v) {
			list = append(list, int32(e&spVertex))
		}
	}
	off[n] = int32(len(list))
	s.csr = list
	s.csrOff = off
	s.csrFor = sp
	s.csrVer = sp.version
}

// BatchBFS computes distance rows from every source, 64 per pass; contract
// identical to (*Graph).BatchBFS.
func (sp *Sparse) BatchBFS(sources []int, rows [][]int32, res []BFSResult, s *BatchBFSScratch) {
	batchBFSOver(sp, sources, -1, rows, res, s)
}

// BatchBFSExcluding is BatchBFS on the vertex-deleted subgraph G - excl.
func (sp *Sparse) BatchBFSExcluding(sources []int, excl int, rows [][]int32, res []BFSResult, s *BatchBFSScratch) {
	for _, src := range sources {
		if src == excl {
			panic("graph: BatchBFSExcluding source equals excluded vertex")
		}
	}
	batchBFSOver(sp, sources, excl, rows, res, s)
}

// AllSourcesBFS runs BatchBFS from every vertex.
func (sp *Sparse) AllSourcesBFS(rows [][]int32, res []BFSResult, s *BatchBFSScratch) {
	s.grow(sp.n)
	batchBFSOver(sp, s.sequence(sp.n), -1, rows, res, s)
}

// AllSourcesBFSFlat is AllSourcesBFS into a row-major n*n matrix.
func (sp *Sparse) AllSourcesBFSFlat(mat []int32, res []BFSResult, s *BatchBFSScratch) {
	allSourcesFlatOver(sp, mat, res, s)
}

// AllSourcesBFSShard covers sources [lo, hi) of the flat matrix.
func (sp *Sparse) AllSourcesBFSShard(lo, hi int, mat []int32, res []BFSResult, s *BatchBFSScratch) {
	allSourcesShardOver(sp, lo, hi, mat, res, s)
}

// Validate checks the representation invariants: row sortedness, adjacency
// symmetry, no self-loops, exactly one owner per edge, degree and edge
// counters consistent. It returns the first violation found.
func (sp *Sparse) Validate() error {
	entries := 0
	owned := 0
	for u := 0; u < sp.n; u++ {
		if sp.deg[u] > sp.rcap[u] {
			return fmt.Errorf("graph: sparse row %d degree %d exceeds capacity %d", u, sp.deg[u], sp.rcap[u])
		}
		row := sp.row(u)
		od := 0
		for i, e := range row {
			v := int(e & spVertex)
			if v == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if v >= sp.n {
				return fmt.Errorf("graph: sparse row %d entry %d out of range", u, v)
			}
			if i > 0 && int(row[i-1]&spVertex) >= v {
				return fmt.Errorf("graph: sparse row %d not strictly sorted at %d", u, i)
			}
			j, ok := sp.find(v, u)
			if !ok {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", u, v)
			}
			ou, ov := e&spOwned != 0, sp.row(v)[j]&spOwned != 0
			if ou == ov {
				return fmt.Errorf("graph: edge {%d,%d} has %d owners", u, v, b2i(ou)+b2i(ov))
			}
			if ou {
				od++
			}
			entries++
		}
		if od != int(sp.odeg[u]) {
			return fmt.Errorf("graph: out-degree of %d is %d, counter says %d", u, od, sp.odeg[u])
		}
		owned += od
	}
	if entries != 2*sp.m {
		return fmt.Errorf("graph: %d row entries, edge counter says %d", entries, sp.m)
	}
	if owned != sp.m {
		return fmt.Errorf("graph: %d owned entries, edge counter says %d", owned, sp.m)
	}
	return nil
}

// String renders the graph like (*Graph).String, for test failures.
func (sp *Sparse) String() string {
	es := make([]Edge, 0, sp.m)
	for u := 0; u < sp.n; u++ {
		sp.ForEachOwned(u, func(v int) {
			es = append(es, Edge{u, v})
		})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	out := fmt.Sprintf("n=%d m=%d [", sp.n, sp.m)
	for i, e := range es {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d->%d", e.U, e.V)
	}
	return out + "]"
}
