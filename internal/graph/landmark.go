package graph

// Landmarks is a k-landmark distance oracle: exact BFS rows from k
// landmark vertices chosen by farthest-point sampling. Any query distance
// d(y,v) is bracketed by the triangle inequality through each landmark ℓ,
//
//	|d(ℓ,y) - d(ℓ,v)|  <=  d(y,v)  <=  d(ℓ,y) + d(ℓ,v),
//
// which is what candidate filters build sound move-cost bounds from. The
// oracle stores k rows of n int32 distances — O(kn) memory, against the
// O(n²) of the all-pairs cache — and keeps them exact across single-edge
// mutations by incremental repair: an inserted edge propagates distance
// decreases from its endpoints, a deleted edge invalidates exactly the
// entries whose every shortest path crossed it (found by a shortest-path-DAG
// descent from the farther endpoint) and settles them with PartialBFS from
// the survivors. Rows damaged beyond n/2 are cheaper to re-search outright
// and are collected into one batched BFS pass.
//
// Selection runs farthest-point sampling — each next landmark is the vertex
// maximizing the distance to the chosen set, ties to the smaller index, so
// selection is deterministic — and then builds all k rows with the 64-source
// batch kernel in ⌈k/64⌉ passes. A Landmarks is not safe for concurrent
// mutation; concurrent reads of the rows are fine.
type Landmarks struct {
	k    int
	n    int
	ids  []int
	rows []int32 // k x n row-major: rows[i*n+v] = d(ids[i], v)
	// reached is the per-row component size; Complete reports all rows
	// cover the graph, the precondition for bound-based filtering.
	reached []int
	// g is the attached graph of observer-style maintenance (Attach).
	g Store
	// selection and repair arenas.
	minD    []int32
	tmp     []int32
	suspect Bitset
	dmg     []int32
	queue   []int32
	refresh []int
	idBuf   []int
	// nbrA/nbrB are the neighbour-list buffers of the repair loops (two
	// levels of nesting: DAG descent over nbrA probing predecessors into
	// nbrB), backend-neutral via AppendNeighbors32.
	nbrA   []int32
	nbrB   []int32
	rowp   [][]int32
	res    []BFSResult
	repair *RepairScratch
	batch  *BatchBFSScratch
	ownBat bool
}

// BuildLandmarks selects k landmarks on g by farthest-point sampling and
// builds their exact distance rows. k is clamped to [1, n]. s, if non-nil,
// is the batch kernel scratch to run the searches on (letting callers share
// one arena); nil allocates a private one.
func BuildLandmarks(g Store, k int, s *BatchBFSScratch) *Landmarks {
	lm := &Landmarks{}
	if s != nil {
		lm.batch = s
	}
	lm.Rebuild(g, k)
	return lm
}

// Rebuild re-selects the landmarks and recomputes every row for the current
// content of g, reusing the oracle's arenas when the size still fits.
func (lm *Landmarks) Rebuild(g Store, k int) {
	n := g.N()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if n == 0 {
		k = 0
	}
	lm.grow(n, k)
	lm.k = k
	lm.n = n
	if k == 0 {
		return
	}
	// First landmark: a maximum-degree vertex (smallest index on ties) —
	// a deterministic, central start for the sampling.
	l0 := 0
	for v := 1; v < n; v++ {
		if g.Degree(v) > g.Degree(l0) {
			l0 = v
		}
	}
	lm.ids[0] = l0
	// Farthest-point sampling: one single-source kernel search per pick,
	// keeping only the running min-distance-to-chosen-set array. The CSR
	// snapshot is cached across these calls (the graph does not mutate),
	// so each pick costs one search, not one snapshot rebuild.
	minD, tmp := lm.minD[:n], lm.tmp[:n]
	src := [1]int{l0}
	rowp := [1][]int32{tmp}
	res := lm.res[:1]
	g.BatchBFS(src[:], rowp[:], res, lm.batch)
	copy(minD, tmp)
	for i := 1; i < k; i++ {
		best, bestD := -1, int64(-1)
		for v := 0; v < n; v++ {
			dv := int64(minD[v])
			if dv >= int64(Unreachable) {
				// Unreached vertices are infinitely far: sampling jumps
				// into uncovered components first.
				dv = int64(Unreachable) + int64(n-v)
			}
			if dv > bestD {
				best, bestD = v, dv
			}
		}
		lm.ids[i] = best
		src[0] = best
		g.BatchBFS(src[:], rowp[:], res, lm.batch)
		for v := 0; v < n; v++ {
			if tmp[v] < minD[v] {
				minD[v] = tmp[v]
			}
		}
	}
	// Row build: all k sources through the batch kernel, ⌈k/64⌉ passes.
	rows := lm.rowp[:0]
	for i := 0; i < k; i++ {
		rows = append(rows, lm.Row(i))
	}
	lm.rowp = rows
	g.BatchBFS(lm.ids[:k], rows, lm.res[:k], lm.batch)
	for i := 0; i < k; i++ {
		lm.reached[i] = lm.res[i].Reached
	}
}

func (lm *Landmarks) grow(n, k int) {
	if lm.batch == nil {
		lm.batch = NewBatchBFSScratch(n)
		lm.ownBat = true
	}
	if lm.repair == nil {
		lm.repair = NewRepairScratch(n)
	} else {
		lm.repair.grow(n)
	}
	if cap(lm.rows) < k*n {
		lm.rows = make([]int32, k*n)
	}
	lm.rows = lm.rows[:k*n]
	if cap(lm.ids) < k {
		lm.ids = make([]int, k)
		lm.reached = make([]int, k)
		lm.res = make([]BFSResult, k)
	}
	lm.ids = lm.ids[:k]
	lm.reached = lm.reached[:k]
	lm.res = lm.res[:k]
	if len(lm.minD) < n {
		lm.minD = make([]int32, n)
		lm.tmp = make([]int32, n)
		lm.suspect = NewBitset(n)
	}
}

// K returns the number of landmarks.
func (lm *Landmarks) K() int { return lm.k }

// N returns the vertex count the rows cover.
func (lm *Landmarks) N() int { return lm.n }

// ID returns the vertex id of landmark i.
func (lm *Landmarks) ID(i int) int { return lm.ids[i] }

// Row returns the exact distance row of landmark i; the caller must not
// modify it.
func (lm *Landmarks) Row(i int) []int32 { return lm.rows[i*lm.n : (i+1)*lm.n] }

// Complete reports that every landmark row covers the whole graph, i.e. the
// network is connected. Bound-based filters require it: on an incomplete
// oracle, Unreachable sentinels would poison the triangle bounds.
func (lm *Landmarks) Complete() bool {
	for _, r := range lm.reached {
		if r < lm.n {
			return false
		}
	}
	return lm.k > 0
}

// Apply folds an applied move of agent u into the rows: the edges {u,x},
// x ∈ drop, were removed and {u,y}, y ∈ add, inserted, and g is already the
// post-move network. Single-drop-single-add deltas (every swap) repair
// incrementally; larger deltas re-search the rows outright. Landmark ids are
// kept: repair maintains the rows of the original sample.
func (lm *Landmarks) Apply(g Store, u int, drop, add []int) {
	if len(drop) > 1 || len(add) > 1 {
		lm.refreshAll(g)
		return
	}
	lm.refresh = lm.refresh[:0]
	if len(drop) == 1 {
		if len(add) == 1 {
			// Repair in chronological order — removal first, insertion
			// second — by temporarily lifting the inserted edge out of the
			// graph, so the drop repair runs on exactly the intermediate
			// network it models. Mixing the phases is unsound: a drop
			// repair over the post-insertion network settles damaged
			// entries through the new edge while survivors keep stale
			// pre-insertion values, and the later decrease propagation
			// cannot tell the two apart. The transient remove/add pair
			// fires any installed graph observer symmetrically, which
			// state fingerprints cancel exactly (like probe apply/undo).
			y := add[0]
			owner := g.Owner(u, y)
			other := u
			if owner == u {
				other = y
			}
			g.RemoveEdge(u, y)
			lm.dropRepair(g, u, drop[0])
			g.AddEdge(owner, other)
		} else {
			lm.dropRepair(g, u, drop[0])
		}
	}
	if len(add) == 1 {
		for i := 0; i < lm.k; i++ {
			if !lm.queued(i) {
				lm.addRepair(g, i, u, add[0])
			}
		}
	}
	lm.flushRefresh(g)
}

// Attach installs the oracle as g's mutation observer, so every AddEdge and
// RemoveEdge repairs the rows in step with the graph. Use Apply instead when
// the observer slot is taken (e.g. by state fingerprinting).
func (lm *Landmarks) Attach(g Store) {
	lm.g = g
	g.SetObserver(lm)
}

// EdgeAdded implements EdgeObserver for an Attach-ed oracle.
func (lm *Landmarks) EdgeAdded(owner, v int) {
	lm.refresh = lm.refresh[:0]
	for i := 0; i < lm.k; i++ {
		lm.addRepair(lm.g, i, owner, v)
	}
}

// EdgeRemoved implements EdgeObserver for an Attach-ed oracle.
func (lm *Landmarks) EdgeRemoved(owner, v int) {
	lm.refresh = lm.refresh[:0]
	lm.dropRepair(lm.g, owner, v)
	lm.flushRefresh(lm.g)
}

// OwnerChanged implements EdgeObserver; ownership never moves distances.
func (lm *Landmarks) OwnerChanged(owner, v int) {}

// queued reports whether row i awaits a batched full re-search.
func (lm *Landmarks) queued(i int) bool {
	for _, j := range lm.refresh {
		if j == i {
			return true
		}
	}
	return false
}

// refreshAll re-searches every row on the current network, keeping the ids.
func (lm *Landmarks) refreshAll(g Store) {
	lm.refresh = lm.refresh[:0]
	for i := 0; i < lm.k; i++ {
		lm.refresh = append(lm.refresh, i)
	}
	lm.flushRefresh(g)
}

// flushRefresh re-searches the queued rows in one batched kernel pass.
func (lm *Landmarks) flushRefresh(g Store) {
	if len(lm.refresh) == 0 {
		return
	}
	lm.rowp = lm.rowp[:0]
	ids := lm.idBuf[:0]
	for _, i := range lm.refresh {
		lm.rowp = append(lm.rowp, lm.Row(i))
		ids = append(ids, lm.ids[i])
	}
	lm.idBuf = ids
	res := lm.res[:len(lm.refresh)]
	g.BatchBFS(ids, lm.rowp, res, lm.batch)
	for j, i := range lm.refresh {
		lm.reached[i] = res[j].Reached
	}
	lm.refresh = lm.refresh[:0]
}

// dropRepair folds the removal of edge {u,x} into every row; g must already
// lack the edge and otherwise equal the network the rows describe.
//
// Per row (source ℓ, old distances b): removing {u,x} can only move entries
// if the edge lay on a shortest-path DAG of ℓ, i.e. |b[u]-b[x]| = 1. Entry v
// is damaged iff every shortest path from ℓ to v crossed the edge, which the
// descent detects level by level: a vertex is damaged iff all its DAG
// predecessors are damaged (the removed edge itself never counts as a
// surviving predecessor — it is already absent from g, so enumeration never
// yields it). Damaged entries are invalidated and settled by PartialBFS from
// the survivors.
func (lm *Landmarks) dropRepair(g Store, u, x int) {
	n := lm.n
	for i := 0; i < lm.k; i++ {
		b := lm.Row(i)
		bu, bx := b[u], b[x]
		if bu == bx {
			continue // the edge was on no shortest-path DAG of ℓ
		}
		q := x
		if bx < bu {
			q = u
		}
		// predOK reports a surviving (not-damaged) DAG predecessor of w.
		predOK := func(w int, lvl int32) bool {
			lm.nbrB = g.AppendNeighbors32(w, lm.nbrB[:0])
			for _, z := range lm.nbrB {
				if b[z] == lvl-1 && !lm.suspect.Has(int(z)) {
					return true
				}
			}
			return false
		}
		lm.suspect.Reset()
		if predOK(q, b[q]) {
			continue // q keeps a shortest path; nothing downstream moved
		}
		lm.dmg = lm.dmg[:0]
		lm.suspect.Set(q)
		lm.dmg = append(lm.dmg, int32(q))
		for head := 0; head < len(lm.dmg); head++ {
			z := int(lm.dmg[head])
			lvl := b[z]
			lm.nbrA = g.AppendNeighbors32(z, lm.nbrA[:0])
			for _, w32 := range lm.nbrA {
				w := int(w32)
				if b[w] != lvl+1 || lm.suspect.Has(w) {
					continue
				}
				if !predOK(w, b[w]) {
					lm.suspect.Set(w)
					lm.dmg = append(lm.dmg, int32(w))
				}
			}
		}
		if len(lm.dmg) > n/2 {
			lm.refresh = append(lm.refresh, i)
			continue
		}
		for _, w := range lm.dmg {
			b[w] = Unreachable
		}
		g.PartialBFS(b, lm.suspect, lm.repair)
		for _, w := range lm.dmg {
			if b[w] >= Unreachable {
				lm.reached[i]--
			}
		}
	}
}

// addRepair folds the insertion of edge {a,c} into row i by decrease
// propagation over the post-move network: relax across the new edge, then
// breadth-first relax out of every improved vertex. Sound from any
// entrywise upper bound that is exact on every vertex owning a shortest
// path avoiding the new edge — which both d(pre-move) and the dropRepair
// output are — and exact on termination.
func (lm *Landmarks) addRepair(g Store, i, a, c int) {
	b := lm.Row(i)
	lm.queue = lm.queue[:0]
	if b[a]+1 < b[c] {
		if b[c] >= Unreachable {
			lm.reached[i]++
		}
		b[c] = b[a] + 1
		lm.queue = append(lm.queue, int32(c))
	} else if b[c]+1 < b[a] {
		if b[a] >= Unreachable {
			lm.reached[i]++
		}
		b[a] = b[c] + 1
		lm.queue = append(lm.queue, int32(a))
	}
	for head := 0; head < len(lm.queue); head++ {
		z := int(lm.queue[head])
		dz := b[z]
		lm.nbrA = g.AppendNeighbors32(z, lm.nbrA[:0])
		for _, w32 := range lm.nbrA {
			w := int(w32)
			if dz+1 < b[w] {
				if b[w] >= Unreachable {
					lm.reached[i]++
				}
				b[w] = dz + 1
				lm.queue = append(lm.queue, int32(w))
			}
		}
	}
}
