package graph

import (
	"math/rand"
	"testing"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing")
	}
	if g.Owner(0, 1) != 0 || g.Owner(1, 2) != 2 {
		t.Fatal("wrong owners")
	}
	if !g.Owns(0, 1) || g.Owns(1, 0) {
		t.Fatal("Owns inconsistent")
	}
	if g.M() != 2 || g.Degree(1) != 2 || g.OutDegree(0) != 1 {
		t.Fatal("counters wrong")
	}
	g.RemoveEdge(1, 0)
	if g.HasEdge(0, 1) || g.M() != 1 || g.Degree(1) != 1 {
		t.Fatal("removal failed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 1) },
		func() { g.AddEdge(1, 0) },
		func() { g.AddEdge(2, 2) },
		func() { g.RemoveEdge(0, 2) },
		func() { g.Owner(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSetOwner(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.SetOwner(1, 0)
	if g.Owner(0, 1) != 1 {
		t.Fatal("SetOwner failed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := Path(6)
	h := g.Clone()
	if !g.Equal(h) || !g.EqualUnowned(h) || g.Hash() != h.Hash() {
		t.Fatal("clone differs")
	}
	h.RemoveEdge(2, 3)
	h.AddEdge(3, 2) // same edge, different owner
	if g.Equal(h) {
		t.Fatal("ownership change should break Equal")
	}
	if !g.EqualUnowned(h) || g.HashUnowned() != h.HashUnowned() {
		t.Fatal("edge sets should still match")
	}
	g2 := New(6)
	g2.CopyFrom(h)
	if !g2.Equal(h) {
		t.Fatal("CopyFrom differs")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(20)
		g := New(n)
		for i := 0; i < n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		h := FromEdges(n, g.Edges())
		if !g.Equal(h) {
			t.Fatalf("round trip differs:\n%v\n%v", g, h)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuilders(t *testing.T) {
	p := Path(5)
	if p.M() != 4 || !p.IsTree() || p.Diameter() != 4 {
		t.Fatalf("Path(5): m=%d tree=%v diam=%d", p.M(), p.IsTree(), p.Diameter())
	}
	s := Star(7)
	if !s.IsStar() || s.Diameter() != 2 || s.Degree(0) != 6 {
		t.Fatal("Star(7) malformed")
	}
	if s.IsDoubleStar() {
		t.Fatal("star is not a double star")
	}
	d := DoubleStar(8, 3)
	if !d.IsDoubleStar() || d.IsStar() || d.Diameter() != 3 {
		t.Fatal("DoubleStar(8,3) malformed")
	}
	c := Cycle(6)
	if c.M() != 6 || c.Diameter() != 3 || c.IsTree() {
		t.Fatal("Cycle(6) malformed")
	}
	k := Complete(5)
	if k.M() != 10 || k.Diameter() != 1 {
		t.Fatal("Complete(5) malformed")
	}
	km := CompleteMinus(5, []Edge{{0, 1}, {2, 3}})
	if km.M() != 8 || km.HasEdge(0, 1) || km.HasEdge(2, 3) {
		t.Fatal("CompleteMinus malformed")
	}
	for _, g := range []*Graph{p, s, d, c, k, km} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPathReversedOwners(t *testing.T) {
	g := PathReversedOwners(4)
	for i := 0; i+1 < 4; i++ {
		if g.Owner(i, i+1) != i+1 {
			t.Fatalf("edge {%d,%d} owner = %d", i, i+1, g.Owner(i, i+1))
		}
	}
}

func TestStringFormat(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 1)
	want := "n=3 m=2 [0->1 2->0]"
	if g.String() != want {
		t.Fatalf("String = %q, want %q", g.String(), want)
	}
}

func TestHashDistinguishesSmallGraphs(t *testing.T) {
	// All 3-vertex owned graphs should hash distinctly (sanity, not a
	// guarantee).
	seen := map[uint64]string{}
	var build func(g *Graph, pairs [][2]int)
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	build = func(g *Graph, rest [][2]int) {
		if len(rest) == 0 {
			h := g.Hash()
			if prev, ok := seen[h]; ok && prev != g.String() {
				t.Fatalf("hash collision: %s vs %s", prev, g.String())
			}
			seen[h] = g.String()
			return
		}
		p, tail := rest[0], rest[1:]
		build(g, tail) // absent
		g.AddEdge(p[0], p[1])
		build(g, tail)
		g.RemoveEdge(p[0], p[1])
		g.AddEdge(p[1], p[0])
		build(g, tail)
		g.RemoveEdge(p[0], p[1])
	}
	build(New(3), pairs)
	if len(seen) != 27 {
		t.Fatalf("expected 27 distinct graphs, got %d", len(seen))
	}
}
