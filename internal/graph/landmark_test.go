package graph

import (
	"math/rand"
	"testing"
)

// randConnected builds a random connected graph: a random attachment tree
// plus extra random edges.
func randConnected(n, extra int, r *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, r.Intn(v))
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// checkRows compares every oracle row and reached count against a fresh
// single-source BFS.
func checkRows(t *testing.T, g *Graph, lm *Landmarks, when string) {
	t.Helper()
	ref := make([]int32, g.N())
	s := NewBFSScratch(g.N())
	for i := 0; i < lm.K(); i++ {
		res := g.BFS(lm.ID(i), ref, s)
		row := lm.Row(i)
		for v := range ref {
			if ref[v] != row[v] {
				t.Fatalf("%s: landmark %d (vertex %d): row[%d] = %d, BFS says %d",
					when, i, lm.ID(i), v, row[v], ref[v])
			}
		}
		if lm.reached[i] != res.Reached {
			t.Fatalf("%s: landmark %d: reached = %d, BFS says %d",
				when, i, lm.reached[i], res.Reached)
		}
	}
}

func TestLandmarksBuild(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 33, 70} {
		for _, k := range []int{1, 2, 7, 80} {
			g := randConnected(n, n/2, r)
			lm := BuildLandmarks(g, k, nil)
			want := k
			if want > n {
				want = n
			}
			if lm.K() != want {
				t.Fatalf("n=%d k=%d: K() = %d, want %d", n, k, lm.K(), want)
			}
			seen := map[int]bool{}
			for i := 0; i < lm.K(); i++ {
				if seen[lm.ID(i)] {
					t.Fatalf("n=%d k=%d: duplicate landmark %d", n, k, lm.ID(i))
				}
				seen[lm.ID(i)] = true
			}
			checkRows(t, g, lm, "build")
			if !lm.Complete() {
				t.Fatalf("n=%d k=%d: connected graph reported incomplete", n, k)
			}
		}
	}
}

func TestLandmarksBuildDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randConnected(60, 25, r)
	a := BuildLandmarks(g, 8, nil)
	b := BuildLandmarks(g, 8, nil)
	for i := 0; i < 8; i++ {
		if a.ID(i) != b.ID(i) {
			t.Fatalf("selection not deterministic: ids[%d] = %d vs %d", i, a.ID(i), b.ID(i))
		}
	}
}

func TestLandmarksDisconnected(t *testing.T) {
	g := New(10)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	lm := BuildLandmarks(g, 3, nil)
	if lm.Complete() {
		t.Fatal("disconnected graph reported complete")
	}
	checkRows(t, g, lm, "disconnected build")
}

// TestLandmarksApplySwaps drives random swap deltas (remove one edge, insert
// another) through the incremental repair and cross-checks every row.
func TestLandmarksApplySwaps(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 4, 9} {
		g := randConnected(48, 30, r)
		lm := BuildLandmarks(g, k, nil)
		for step := 0; step < 300; step++ {
			u := r.Intn(g.N())
			var nbrs, non []int
			nbrs = g.NeighborList(u, nbrs[:0])
			for v := 0; v < g.N(); v++ {
				if v != u && !g.HasEdge(u, v) {
					non = append(non, v)
				}
			}
			if len(nbrs) == 0 || len(non) == 0 {
				continue
			}
			x := nbrs[r.Intn(len(nbrs))]
			y := non[r.Intn(len(non))]
			g.RemoveEdge(u, x)
			g.AddEdge(u, y)
			lm.Apply(g, u, []int{x}, []int{y})
			if step%29 == 0 {
				checkRows(t, g, lm, "swap")
			}
		}
		checkRows(t, g, lm, "swap final")
	}
}

// TestLandmarksApplySingles drives pure additions and pure removals,
// including disconnecting removals and reconnecting additions.
func TestLandmarksApplySingles(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := randConnected(40, 12, r)
	lm := BuildLandmarks(g, 5, nil)
	for step := 0; step < 400; step++ {
		u := r.Intn(g.N())
		if r.Intn(2) == 0 && g.Degree(u) > 0 {
			var nbrs []int
			nbrs = g.NeighborList(u, nbrs[:0])
			x := nbrs[r.Intn(len(nbrs))]
			g.RemoveEdge(u, x)
			lm.Apply(g, u, []int{x}, nil)
		} else {
			v := r.Intn(g.N())
			if v == u || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
			lm.Apply(g, u, nil, []int{v})
		}
		if step%23 == 0 {
			checkRows(t, g, lm, "single")
		}
	}
	checkRows(t, g, lm, "single final")
}

// TestLandmarksObserver drives the same mutations through the EdgeObserver
// hook installed by Attach.
func TestLandmarksObserver(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := randConnected(36, 10, r)
	lm := BuildLandmarks(g, 6, nil)
	lm.Attach(g)
	defer g.SetObserver(nil)
	for step := 0; step < 250; step++ {
		u := r.Intn(g.N())
		if r.Intn(2) == 0 && g.Degree(u) > 0 {
			var nbrs []int
			nbrs = g.NeighborList(u, nbrs[:0])
			g.RemoveEdge(u, nbrs[r.Intn(len(nbrs))])
		} else {
			v := r.Intn(g.N())
			if v == u || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
		}
		if step%31 == 0 {
			checkRows(t, g, lm, "observer")
		}
	}
	checkRows(t, g, lm, "observer final")
}

// TestLandmarksApplyMulti exercises the multi-edge fallback (full batched
// re-search).
func TestLandmarksApplyMulti(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	g := randConnected(30, 20, r)
	lm := BuildLandmarks(g, 4, nil)
	u := 0
	var nbrs []int
	nbrs = g.NeighborList(u, nbrs[:0])
	var non []int
	for v := 1; v < g.N(); v++ {
		if !g.HasEdge(u, v) {
			non = append(non, v)
		}
	}
	if len(nbrs) < 1 || len(non) < 2 {
		t.Skip("unlucky layout")
	}
	drops := []int{nbrs[0]}
	adds := []int{non[0], non[1]}
	for _, x := range drops {
		g.RemoveEdge(u, x)
	}
	for _, y := range adds {
		g.AddEdge(u, y)
	}
	lm.Apply(g, u, drops, adds)
	checkRows(t, g, lm, "multi")
}
