package graph

import "math/bits"

// Bit-parallel batched breadth-first search: up to 64 sources propagate
// simultaneously through one pass over the adjacency structure.
//
// The kernel maintains one uint64 of source membership per vertex: bit i of
// reach[v] records that source i has reached v, bit i of front[v] that it
// did so in the current level. A level expands every frontier word along the
// incident edges (next[w] |= front[v] for each edge {v,w}), then settles the
// newly reached pairs (next[w] &^ reach[w]) in one word operation per
// vertex, so the per-level frontier work of 64 searches collapses into a
// single pass. Settled depths are staged in a group-local transposed matrix
// (64 consecutive entries per vertex, so a settle touches at most four
// cache lines instead of 64 rows) and emitted to the caller's rows by one
// blocked transpose after the search; per-source aggregates are folded once
// per level from 64 newly-reached counters instead of once per pair.
// Distances are unique, so every per-source row, Sum, Ecc and Reached is
// bit-identical to a separate single-source BFS.
//
// All-sources consumers (the engine's distance-cache build, delta-scan
// neighbour rows, social-cost metrics) call this instead of n independent
// searches; sources are processed in groups of 64, n not a multiple of 64
// simply leaves high bits of the last group unused.

// BatchBFSScratch holds the reusable buffers of batched searches: the
// per-vertex membership words and the transposed depth staging matrix. A
// scratch grows on demand and may be reused across graphs; it is not safe
// for concurrent use.
type BatchBFSScratch struct {
	reach []uint64
	front []uint64
	next  []uint64
	tmat  []int32 // n x 64 transposed depth staging, entry [v*64+i]
	seq   []int
	// CSR neighbour lists of the current graph, shared by all source groups
	// of a batch call: the neighbours of v are csr[csrOff[v]:csrOff[v+1]].
	// Expansion walks these flat lists instead of re-unpacking adjacency
	// bitset words every level. The snapshot is cached across calls keyed on
	// (graph identity, adjacency version), so repeated searches of an
	// unchanged network skip the O(n²/64) bitset scan of the rebuild.
	csr    []int32
	csrOff []int32
	csrFor Store
	csrVer uint64
	// curV/curW and nxtV/nxtW are the frontier lists of the current and
	// the next level, a vertex paired with its newly-settled source word;
	// touched flags the 64-vertex blocks expansion wrote into, so settling
	// large graphs skips untouched blocks instead of scanning all n
	// vertices (small graphs scan everything — the flags cost more than
	// the scan they save).
	curV    []int32
	curW    []uint64
	nxtV    []int32
	nxtW    []uint64
	touched []bool
}

// NewBatchBFSScratch returns scratch space for batched BFS on n-vertex
// graphs (it grows on demand, so 0 is fine).
func NewBatchBFSScratch(n int) *BatchBFSScratch {
	s := &BatchBFSScratch{}
	s.grow(n)
	return s
}

func (s *BatchBFSScratch) grow(n int) {
	if len(s.reach) >= n {
		return
	}
	s.reach = make([]uint64, n)
	s.front = make([]uint64, n)
	s.next = make([]uint64, n)
	s.tmat = make([]int32, n*64)
	s.curV = make([]int32, n)
	s.curW = make([]uint64, n)
	s.nxtV = make([]int32, n)
	s.nxtW = make([]uint64, n)
	s.touched = make([]bool, (n+63)/64)
}

// sequence returns the reusable identity source list [0, n).
func (s *BatchBFSScratch) sequence(n int) []int {
	if len(s.seq) < n {
		s.seq = make([]int, n)
		for i := range s.seq {
			s.seq[i] = i
		}
	}
	return s.seq[:n]
}

// buildCSR snapshots g's adjacency into the scratch's flat neighbour lists,
// reusing the previous snapshot when the graph has not mutated since.
func (g *Graph) buildCSR(s *BatchBFSScratch) {
	if s.csrFor == Store(g) && s.csrVer == g.version {
		return
	}
	n := g.n
	if cap(s.csrOff) < n+1 {
		s.csrOff = make([]int32, n+1)
	}
	off := s.csrOff[: n+1 : n+1]
	if cap(s.csr) < 2*g.m {
		s.csr = make([]int32, 2*g.m)
	}
	list := s.csr[:0]
	for v := 0; v < n; v++ {
		off[v] = int32(len(list))
		for wi, w := range g.adj[v] {
			base := wi << 6
			for w != 0 {
				list = append(list, int32(base+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
	off[n] = int32(len(list))
	s.csr = list
	s.csrOff = off
	s.csrFor = g
	s.csrVer = g.version
}

// fill32 sets every entry of dst to val using memmove doubling.
func fill32(dst []int32, val int32) {
	if len(dst) == 0 {
		return
	}
	dst[0] = val
	for filled := 1; filled < len(dst); filled *= 2 {
		copy(dst[filled:], dst[:filled])
	}
}

// BatchBFS computes shortest-path distances from every source, 64 sources
// per pass. rows, if non-nil, must have len(sources) entries; entry i, if
// non-nil, must have length n and receives the distance row of sources[i]
// (Unreachable for other components). res, if non-nil, must have
// len(sources) entries and receives the per-source aggregates. Every row and
// aggregate is identical to a single-source BFS from the same vertex.
func (g *Graph) BatchBFS(sources []int, rows [][]int32, res []BFSResult, s *BatchBFSScratch) {
	batchBFSOver(g, sources, -1, rows, res, s)
}

// BatchBFSExcluding is BatchBFS on the vertex-deleted subgraph G - excl: the
// excluded vertex is never entered or expanded, each row reports Unreachable
// at excl, and aggregates cover the subgraph only, matching BFSExcluding per
// source. No source may equal excl.
func (g *Graph) BatchBFSExcluding(sources []int, excl int, rows [][]int32, res []BFSResult, s *BatchBFSScratch) {
	for _, src := range sources {
		if src == excl {
			panic("graph: BatchBFSExcluding source equals excluded vertex")
		}
	}
	batchBFSOver(g, sources, excl, rows, res, s)
}

// AllSourcesBFS runs BatchBFS from every vertex of the graph: rows, if
// non-nil, must have n entries (row u receiving the distances from u), res,
// if non-nil, n aggregates. It is the all-pairs primitive behind distance
// cache construction and the social-cost metrics.
func (g *Graph) AllSourcesBFS(rows [][]int32, res []BFSResult, s *BatchBFSScratch) {
	s.grow(g.n)
	batchBFSOver(g, s.sequence(g.n), -1, rows, res, s)
}

// FillUnreachable sets every entry of dst to Unreachable; it is the
// required pre-state of AllSourcesBFSShard matrices.
func FillUnreachable(dst []int32) { fill32(dst, Unreachable) }

// AllSourcesBFSShard runs the identity source groups covering sources
// [lo, hi) — lo a multiple of 64 — writing their distance rows into the
// full row-major n*n matrix mat (as its column block [lo, hi), exploiting
// the symmetry of undirected distances) and their aggregates into
// res[lo:hi] (res may be nil, else length n). mat must be pre-filled with
// Unreachable (FillUnreachable). Distinct shards write disjoint entries,
// so a caller may run them concurrently on separate scratches to build the
// all-pairs matrix with its worker pool; the result is bit-identical to
// AllSourcesBFSFlat for any sharding.
func (g *Graph) AllSourcesBFSShard(lo, hi int, mat []int32, res []BFSResult, s *BatchBFSScratch) {
	allSourcesShardOver(g, lo, hi, mat, res, s)
}

// allSourcesShardOver is the backend-shared body of AllSourcesBFSShard.
func allSourcesShardOver(g Store, lo, hi int, mat []int32, res []BFSResult, s *BatchBFSScratch) {
	n := g.N()
	if lo%64 != 0 || lo < 0 || hi > n || lo > hi {
		panic("graph: AllSourcesBFSShard source range misaligned")
	}
	if len(mat) != n*n {
		panic("graph: AllSourcesBFSShard matrix length mismatch")
	}
	if res != nil && len(res) != n {
		panic("graph: AllSourcesBFSShard res length mismatch")
	}
	s.grow(n)
	g.buildCSR(s)
	for l := lo; l < hi; l += 64 {
		h := l + 64
		if h > hi {
			h = hi
		}
		var rs []BFSResult
		if res != nil {
			rs = res[l:h]
		}
		batchGroupSym(n, l, h-l, mat, rs, s)
	}
}

// AllSourcesBFSFlat is AllSourcesBFS into a row-major n*n matrix (mat may
// be nil for aggregates only). It exploits the symmetry of undirected
// distances: source group [lo, lo+64) settling vertex w writes the segment
// mat[w*n+lo : w*n+lo+64] of row w directly — d(s,w) = d(w,s) — so the
// matrix is emitted with no staging or transpose at all.
func (g *Graph) AllSourcesBFSFlat(mat []int32, res []BFSResult, s *BatchBFSScratch) {
	allSourcesFlatOver(g, mat, res, s)
}

// allSourcesFlatOver is the backend-shared body of AllSourcesBFSFlat.
func allSourcesFlatOver(g Store, mat []int32, res []BFSResult, s *BatchBFSScratch) {
	n := g.N()
	if mat != nil && len(mat) != n*n {
		panic("graph: AllSourcesBFSFlat matrix length mismatch")
	}
	if res != nil && len(res) != n {
		panic("graph: AllSourcesBFSFlat res length mismatch")
	}
	if mat == nil {
		g.AllSourcesBFS(nil, res, s)
		return
	}
	s.grow(n)
	g.buildCSR(s)
	fill32(mat, Unreachable)
	for lo := 0; lo < n; lo += 64 {
		hi := lo + 64
		if hi > n {
			hi = n
		}
		var rs []BFSResult
		if res != nil {
			rs = res[lo:hi]
		}
		batchGroupSym(n, lo, hi-lo, mat, rs, s)
	}
}

// batchBFSOver is the backend-shared body of BatchBFS(Excluding): group the
// sources 64 at a time over the scratch's CSR snapshot.
func batchBFSOver(g Store, sources []int, excl int, rows [][]int32, res []BFSResult, s *BatchBFSScratch) {
	if rows != nil && len(rows) != len(sources) {
		panic("graph: BatchBFS rows length mismatch")
	}
	if res != nil && len(res) != len(sources) {
		panic("graph: BatchBFS res length mismatch")
	}
	n := g.N()
	s.grow(n)
	g.buildCSR(s)
	var rw [64][]int32
	for lo := 0; lo < len(sources); lo += 64 {
		hi := lo + 64
		if hi > len(sources) {
			hi = len(sources)
		}
		haveRows := false
		for i := lo; i < hi; i++ {
			var row []int32
			if rows != nil {
				row = rows[i]
			}
			if row != nil {
				haveRows = true
			}
			rw[i-lo] = row
		}
		var rs []BFSResult
		if res != nil {
			rs = res[lo:hi]
		}
		batchGroup(n, sources[lo:hi], excl, &rw, haveRows, rs, s)
	}
}

// batchFold folds one level's newly-reached counters into the aggregates
// and resets them.
func batchFold(res []BFSResult, cnt *[64]int32, depth int32) {
	for i := range res {
		c := cnt[i]
		if c == 0 {
			continue
		}
		cnt[i] = 0
		r := &res[i]
		r.Reached += int(c)
		r.Sum += int64(depth) * int64(c)
		r.Ecc = depth
	}
}

// smallBlocks is the block-count threshold below which settling scans
// every 64-vertex block: tracking touched blocks only pays once the scan it
// avoids is long enough.
const smallBlocks = 16

// batchGroup runs one group of at most 64 sources to exhaustion. rw holds
// the per-source output rows (entries may be nil; haveRows false skips
// depth staging entirely, for aggregate-only callers); res, if non-nil,
// receives one aggregate per source.
func batchGroup(n int, src []int, excl int, rw *[64][]int32, haveRows bool, res []BFSResult, s *BatchBFSScratch) {
	csr, off := s.csr, s.csrOff
	reach := s.reach[:n]
	next := s.next[:n]
	for v := range reach {
		reach[v] = 0
		next[v] = 0
	}
	var tmat []int32
	if haveRows {
		tmat = s.tmat[: n*64 : n*64]
		fill32(tmat, Unreachable)
	}
	// Seed the frontier: accumulate source bits per vertex in next (handles
	// duplicate sources), then drain into the (vertex, word) pair list.
	curV, curW := s.curV[:n], s.curW[:n]
	nxtV, nxtW := s.nxtV[:n], s.nxtW[:n]
	lc := 0
	for i, v := range src {
		bit := uint64(1) << uint(i)
		if next[v] == 0 {
			curV[lc] = int32(v)
			lc++
		}
		next[v] |= bit
		reach[v] |= bit
		if haveRows {
			tmat[v<<6|i] = 0
		}
	}
	for j := 0; j < lc; j++ {
		v := curV[j]
		curW[j] = next[v]
		next[v] = 0
	}
	if excl >= 0 {
		// All membership bits set: no source ever settles the excluded
		// vertex (sources never equal excl, so it is not in the frontier).
		reach[excl] = ^uint64(0)
	}
	for i := range res {
		res[i] = BFSResult{Reached: 1}
	}

	nb := (n + 63) / 64
	small := nb <= smallBlocks
	touched := s.touched[:nb]
	if !small {
		for i := range touched {
			touched[i] = false
		}
	}
	var cnt [64]int32
	depth := int32(0)
	for lc > 0 {
		// Expand: scatter every frontier word along its incident edges,
		// walking the flat CSR neighbour lists of the frontier vertices.
		if small {
			for j := 0; j < lc; j++ {
				fv := curW[j]
				v := curV[j]
				for _, w := range csr[off[v]:off[v+1]] {
					next[w] |= fv
				}
			}
		} else {
			for j := 0; j < lc; j++ {
				fv := curW[j]
				v := curV[j]
				for _, w := range csr[off[v]:off[v+1]] {
					next[w] |= fv
					touched[w>>6] = true
				}
			}
		}
		depth++
		// Settle: one word op per vertex masks out already-reached sources;
		// surviving bits are the newly reached (source, vertex) pairs, whose
		// staged depth writes for one vertex span 64 consecutive entries.
		ln := 0
		for blk := 0; blk < nb; blk++ {
			if !small {
				if !touched[blk] {
					continue
				}
				touched[blk] = false
			}
			wh := (blk + 1) << 6
			if wh > n {
				wh = n
			}
			if haveRows {
				for w := blk << 6; w < wh; w++ {
					nw := next[w] &^ reach[w]
					next[w] = 0
					if nw == 0 {
						continue
					}
					reach[w] |= nw
					nxtV[ln] = int32(w)
					nxtW[ln] = nw
					ln++
					// Array-pointer view plus index masking drop the
					// per-pair bounds checks from the hottest loop.
					tw := (*[64]int32)(tmat[w<<6:])
					for m := nw; m != 0; {
						i := bits.TrailingZeros64(m) & 63
						m &= m - 1
						tw[i] = depth
						cnt[i]++
					}
				}
			} else {
				for w := blk << 6; w < wh; w++ {
					nw := next[w] &^ reach[w]
					next[w] = 0
					if nw == 0 {
						continue
					}
					reach[w] |= nw
					nxtV[ln] = int32(w)
					nxtW[ln] = nw
					ln++
					for m := nw; m != 0; {
						cnt[bits.TrailingZeros64(m)]++
						m &= m - 1
					}
				}
			}
		}
		if ln > 0 && res != nil {
			batchFold(res, &cnt, depth)
		}
		curV, nxtV = nxtV, curV
		curW, nxtW = nxtW, curW
		lc = ln
	}

	if !haveRows {
		return
	}
	// Emit: blocked transpose of the staging matrix into the caller's rows.
	// A 64-vertex block of tmat is 16 KiB, so each output row segment is
	// written sequentially from L1-resident input.
	k := len(src)
	for wb := 0; wb < n; wb += 64 {
		we := wb + 64
		if we > n {
			we = n
		}
		tb := tmat[wb<<6:]
		for i := 0; i < k; i++ {
			row := rw[i]
			if row == nil {
				continue
			}
			seg := row[wb:we]
			for j := range seg {
				seg[j] = tb[j<<6|i]
			}
		}
	}
}

// batchGroupSym runs the identity source group [lo, lo+k) to exhaustion,
// writing depths straight into the row-major n x n matrix mat: undirected
// distances are symmetric, so source lo+i reaching vertex w at depth d means
// mat[w*n+lo+i] = d — 64 consecutive entries of row w per settle, the final
// output location, with no staging. mat must be pre-filled with Unreachable;
// diagonal entries are set here.
func batchGroupSym(n, lo, k int, mat []int32, res []BFSResult, s *BatchBFSScratch) {
	csr, off := s.csr, s.csrOff
	reach := s.reach[:n]
	next := s.next[:n]
	for v := range reach {
		reach[v] = 0
		next[v] = 0
	}
	nb := (n + 63) / 64
	small := nb <= smallBlocks
	touched := s.touched[:nb]
	if !small {
		for i := range touched {
			touched[i] = false
		}
	}
	curV, curW := s.curV[:n], s.curW[:n]
	nxtV, nxtW := s.nxtV[:n], s.nxtW[:n]
	for i := 0; i < k; i++ {
		v := lo + i
		bit := uint64(1) << uint(i)
		reach[v] |= bit
		curV[i] = int32(v)
		curW[i] = bit
		mat[v*n+v] = 0
	}
	lc := k
	for i := range res {
		res[i] = BFSResult{Reached: 1}
	}
	var cnt [64]int32
	depth := int32(0)
	for lc > 0 {
		if small {
			for j := 0; j < lc; j++ {
				fv := curW[j]
				v := curV[j]
				for _, w := range csr[off[v]:off[v+1]] {
					next[w] |= fv
				}
			}
		} else {
			for j := 0; j < lc; j++ {
				fv := curW[j]
				v := curV[j]
				for _, w := range csr[off[v]:off[v+1]] {
					next[w] |= fv
					touched[w>>6] = true
				}
			}
		}
		depth++
		ln := 0
		for blk := 0; blk < nb; blk++ {
			if !small {
				if !touched[blk] {
					continue
				}
				touched[blk] = false
			}
			wh := (blk + 1) << 6
			if wh > n {
				wh = n
			}
			if k == 64 {
				// Full group: 64-entry array-pointer view of the row
				// segment plus index masking drop the per-pair bounds
				// checks (group bits never exceed k, so writes stay in
				// the segment).
				for w := blk << 6; w < wh; w++ {
					nw := next[w] &^ reach[w]
					next[w] = 0
					if nw == 0 {
						continue
					}
					reach[w] |= nw
					nxtV[ln] = int32(w)
					nxtW[ln] = nw
					ln++
					mw := (*[64]int32)(mat[w*n+lo:])
					for m := nw; m != 0; {
						i := bits.TrailingZeros64(m) & 63
						m &= m - 1
						mw[i] = depth
						cnt[i]++
					}
				}
			} else {
				for w := blk << 6; w < wh; w++ {
					nw := next[w] &^ reach[w]
					next[w] = 0
					if nw == 0 {
						continue
					}
					reach[w] |= nw
					nxtV[ln] = int32(w)
					nxtW[ln] = nw
					ln++
					base := w*n + lo
					mw := mat[base : base+k : base+k]
					for m := nw; m != 0; {
						i := bits.TrailingZeros64(m)
						m &= m - 1
						mw[i] = depth
						cnt[i]++
					}
				}
			}
		}
		if ln > 0 && res != nil {
			batchFold(res[:k], &cnt, depth)
		}
		curV, nxtV = nxtV, curV
		curW, nxtW = nxtW, curW
		lc = ln
	}
}
