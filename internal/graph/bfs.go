package graph

// Unreachable is the distance reported for vertices in a different connected
// component. It is large enough that no sum of n-1 real distances can reach
// it, yet small enough that sums of a few Unreachable values do not
// overflow int64 cost arithmetic downstream.
const Unreachable = int32(1) << 29

// BFSScratch holds the reusable buffers of a breadth-first search. A single
// scratch may be reused across many searches on graphs with the same vertex
// count; it is not safe for concurrent use.
type BFSScratch struct {
	visited  Bitset
	frontier Bitset
	next     Bitset
	// queue backs the sparse backend's level-order walk; it grows on
	// demand, so dense-only users never allocate it.
	queue []int32
}

// NewBFSScratch returns scratch space for BFS on n-vertex graphs.
func NewBFSScratch(n int) *BFSScratch {
	return &BFSScratch{
		visited:  NewBitset(n),
		frontier: NewBitset(n),
		next:     NewBitset(n),
	}
}

// BFSResult summarizes a single-source shortest-path computation.
type BFSResult struct {
	// Ecc is the eccentricity of the source restricted to its component.
	Ecc int32
	// Sum is the sum of distances from the source to every vertex of its
	// component.
	Sum int64
	// Reached is the number of vertices in the source's component,
	// including the source itself.
	Reached int
}

// BFS computes shortest-path distances from src. If dist is non-nil it must
// have length n and receives the distance to every vertex (Unreachable for
// other components). The scratch s must have been created for n vertices.
func (g *Graph) BFS(src int, dist []int32, s *BFSScratch) BFSResult {
	return g.bfsFrom(src, -1, dist, s)
}

// BFSExcluding computes shortest-path distances from src in the
// vertex-deleted subgraph G - excl: the excluded vertex is never entered or
// expanded, dist[excl] reports Unreachable, and the result aggregates over
// the subgraph only. It is the primitive behind delta-evaluated
// best-response scans, which batch one such search per relevant vertex and
// then score every candidate strategy change arithmetically. src must
// differ from excl.
func (g *Graph) BFSExcluding(src, excl int, dist []int32, s *BFSScratch) BFSResult {
	if src == excl {
		panic("graph: BFSExcluding source equals excluded vertex")
	}
	return g.bfsFrom(src, excl, dist, s)
}

// bfsFrom is the shared BFS core; excl < 0 means no vertex is excluded.
func (g *Graph) bfsFrom(src, excl int, dist []int32, s *BFSScratch) BFSResult {
	s.visited.Reset()
	s.frontier.Reset()
	if dist != nil {
		for i := range dist {
			dist[i] = Unreachable
		}
		dist[src] = 0
	}
	if excl >= 0 {
		s.visited.Set(excl)
	}
	s.visited.Set(src)
	s.frontier.Set(src)
	res := BFSResult{Reached: 1}
	depth := int32(0)
	for {
		s.next.Reset()
		// next = union of adjacency rows over the frontier, minus visited.
		s.frontier.ForEach(func(u int) {
			s.next.OrWith(g.adj[u])
		})
		s.next.AndNotWith(s.visited)
		cnt := s.next.Count()
		if cnt == 0 {
			break
		}
		depth++
		res.Reached += cnt
		res.Sum += int64(depth) * int64(cnt)
		res.Ecc = depth
		s.visited.OrWith(s.next)
		if dist != nil {
			s.next.ForEach(func(u int) { dist[u] = depth })
		}
		s.frontier, s.next = s.next, s.frontier
	}
	return res
}

// Distances fills dist with shortest-path distances from src, allocating
// scratch internally. Prefer BFS with a reused scratch in hot paths.
func (g *Graph) Distances(src int) []int32 {
	dist := make([]int32, g.n)
	g.BFS(src, dist, NewBFSScratch(g.n))
	return dist
}

// Dist returns the shortest-path distance between u and v, or Unreachable.
func (g *Graph) Dist(u, v int) int32 {
	if u == v {
		return 0
	}
	s := NewBFSScratch(g.n)
	dist := make([]int32, g.n)
	g.BFS(u, dist, s)
	return dist[v]
}

// Connected reports whether the graph is connected. The empty graph and the
// one-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	s := NewBFSScratch(g.n)
	return g.BFS(0, nil, s).Reached == g.n
}

// ConnectedFrom reports whether all n vertices are reachable from src using
// the provided scratch; it is the allocation-free form of Connected.
func (g *Graph) ConnectedFrom(src int, s *BFSScratch) bool {
	return g.BFS(src, nil, s).Reached == g.n
}

// AllDistances returns the full n x n distance matrix, row i holding
// distances from vertex i. Rows of vertices in other components hold
// Unreachable. The rows are built by the batched bit-parallel kernel, 64
// sources per pass.
func (g *Graph) AllDistances() [][]int32 {
	d := make([][]int32, g.n)
	backing := make([]int32, g.n*g.n)
	for u := 0; u < g.n; u++ {
		d[u] = backing[u*g.n : (u+1)*g.n]
	}
	g.AllSourcesBFSFlat(backing, nil, NewBatchBFSScratch(g.n))
	return d
}
