package graph

import (
	"testing"
)

// The sparse backend's whole contract is bit-identity with the dense
// backend: same neighbour order, same BFS rows and aggregates, same
// canonical encodings (the bytes fingerprints and the state store hash).
// These tests drive both backends through identical edit scripts and
// require every observable to match, and pin the arena's O(n + m) memory
// bound under adversarial churn.

// lcg is a tiny deterministic generator for edit scripts; the graph tests
// cannot import internal/gen (it imports this package).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// randomPair builds a random connected dense graph and its sparse mirror:
// a random attachment tree plus extra random edges, inserted through the
// mutation path (not NewSparseFrom) so slack-slot insertion is exercised.
func randomPair(n, extra int, r *lcg) (*Graph, *Sparse) {
	g := New(n)
	sp := NewSparse(n)
	add := func(owner, v int) {
		g.AddEdge(owner, v)
		sp.AddEdge(owner, v)
	}
	for v := 1; v < n; v++ {
		add(v, r.intn(v))
	}
	for i := 0; i < extra; i++ {
		u, v := r.intn(n), r.intn(n)
		if u != v && !g.HasEdge(u, v) {
			add(u, v)
		}
	}
	return g, sp
}

// checkSparseParity fails the test unless every Store observable of sp
// matches g: counters, neighbour/owned lists, canonical encodings, BFS
// distance rows and aggregates, and the batch kernels.
func checkSparseParity(t *testing.T, g *Graph, sp *Sparse) {
	t.Helper()
	if err := sp.Validate(); err != nil {
		t.Fatalf("sparse invariants: %v", err)
	}
	n := g.N()
	if sp.N() != n || sp.M() != g.M() {
		t.Fatalf("counters diverged: sparse n=%d m=%d, dense n=%d m=%d", sp.N(), sp.M(), n, g.M())
	}
	var dl, sl []int
	for u := 0; u < n; u++ {
		if sp.Degree(u) != g.Degree(u) || sp.OutDegree(u) != g.OutDegree(u) {
			t.Fatalf("degree of %d diverged: sparse %d/%d, dense %d/%d",
				u, sp.Degree(u), sp.OutDegree(u), g.Degree(u), g.OutDegree(u))
		}
		dl, sl = g.NeighborList(u, dl[:0]), sp.NeighborList(u, sl[:0])
		if !equalInts(dl, sl) {
			t.Fatalf("neighbour list of %d diverged: dense %v, sparse %v", u, dl, sl)
		}
		dl, sl = g.OwnedList(u, dl[:0]), sp.OwnedList(u, sl[:0])
		if !equalInts(dl, sl) {
			t.Fatalf("owned list of %d diverged: dense %v, sparse %v", u, dl, sl)
		}
	}
	dRows, sRows := g.AppendOwnedRows(nil), sp.AppendOwnedRows(nil)
	if !equalWords(dRows, sRows) {
		t.Fatalf("owned encodings diverged")
	}
	dRows, sRows = g.AppendAdjRows(dRows[:0]), sp.AppendAdjRows(sRows[:0])
	if !equalWords(dRows, sRows) {
		t.Fatalf("adjacency encodings diverged")
	}
	if !sp.Dense().Equal(g) {
		t.Fatalf("Dense() round-trip diverged:\n dense  %v\n sparse %v", g, sp)
	}

	bs := NewBFSScratch(n)
	dd, sd := make([]int32, n), make([]int32, n)
	for src := 0; src < n; src++ {
		dr, sr := g.BFS(src, dd, bs), sp.BFS(src, sd, bs)
		if dr != sr || !equal32(dd, sd) {
			t.Fatalf("BFS from %d diverged: dense %+v, sparse %+v", src, dr, sr)
		}
		excl := (src + 1) % n
		if excl != src {
			dr, sr = g.BFSExcluding(src, excl, dd, bs), sp.BFSExcluding(src, excl, sd, bs)
			if dr != sr || !equal32(dd, sd) {
				t.Fatalf("BFSExcluding(%d,%d) diverged: dense %+v, sparse %+v", src, excl, dr, sr)
			}
		}
	}
	if g.Connected() != sp.Connected() {
		t.Fatalf("connectivity diverged")
	}

	batch := NewBatchBFSScratch(n)
	dm, sm := make([]int32, n*n), make([]int32, n*n)
	dres, sres := make([]BFSResult, n), make([]BFSResult, n)
	g.AllSourcesBFSFlat(dm, dres, batch)
	sp.AllSourcesBFSFlat(sm, sres, batch)
	if !equal32(dm, sm) {
		t.Fatalf("all-sources distance matrices diverged")
	}
	for i := range dres {
		if dres[i] != sres[i] {
			t.Fatalf("all-sources aggregate %d diverged: dense %+v, sparse %+v", i, dres[i], sres[i])
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyScript drives both backends through the same edit script: each
// byte triple selects add / remove / transfer with wrap-around operands,
// so arbitrary fuzz bytes always map to a legal mutation sequence.
func applyScript(g *Graph, sp *Sparse, script []byte) {
	n := g.N()
	for i := 0; i+2 < len(script); i += 3 {
		u, v := int(script[i+1])%n, int(script[i+2])%n
		if u == v {
			continue
		}
		switch script[i] % 3 {
		case 0:
			if !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				sp.AddEdge(u, v)
			}
		case 1:
			if g.HasEdge(u, v) {
				g.RemoveEdge(u, v)
				sp.RemoveEdge(u, v)
			}
		case 2:
			if g.HasEdge(u, v) {
				g.SetOwner(u, v)
				sp.SetOwner(u, v)
			}
		}
	}
}

// FuzzSparseParity feeds random edit scripts into both backends and
// requires every observable — neighbour order, ownership, BFS rows and
// aggregates, batch kernels, canonical encodings (the bytes fingerprints
// and the interned state store hash) — to stay bit-identical.
func FuzzSparseParity(f *testing.F) {
	f.Add(int64(1), 8, []byte{0, 1, 2, 0, 3, 4, 1, 1, 2})
	f.Add(int64(2), 24, []byte{2, 9, 3, 0, 200, 13, 1, 9, 3, 0, 7, 7})
	f.Add(int64(3), 1, []byte{})
	f.Fuzz(func(t *testing.T, seed int64, n int, script []byte) {
		if n < 1 {
			n = 1
		}
		if n > 48 {
			n = n%48 + 1
		}
		if len(script) > 3*4096 {
			script = script[:3*4096]
		}
		r := lcg(seed)
		var g *Graph
		var sp *Sparse
		if n > 1 {
			g, sp = randomPair(n, n/2, &r)
		} else {
			g, sp = New(n), NewSparse(n)
		}
		applyScript(g, sp, script)
		checkSparseParity(t, g, sp)
	})
}

// TestSparseParityChurn is the deterministic always-on slice of the fuzz
// surface: heavy random churn at a few sizes, parity checked throughout.
func TestSparseParityChurn(t *testing.T) {
	for _, n := range []int{2, 5, 17, 33, 64} {
		r := lcg(int64(n))
		g, sp := randomPair(n, n, &r)
		checkSparseParity(t, g, sp)
		script := make([]byte, 3*64*n)
		for i := range script {
			script[i] = byte(r.next())
		}
		applyScript(g, sp, script)
		checkSparseParity(t, g, sp)
	}
}

// TestSparseMemoryBudget pins the arena's O(n + m) contract: under
// adversarial churn (every edge repeatedly deleted and re-inserted, which
// maximizes relocations) the arena never exceeds a constant multiple of
// the live entry count plus the per-row slack floor. Without amortized
// compaction the arena would grow without bound here.
func TestSparseMemoryBudget(t *testing.T) {
	const n, extra = 2048, 2048
	r := lcg(7)
	g, sp := randomPair(n, extra, &r)
	mMax := sp.M()
	limit := func() int { return 16*(mMax+n) + 64 }
	for round := 0; round < 8; round++ {
		script := make([]byte, 3*2*n)
		for i := range script {
			script[i] = byte(r.next())
		}
		applyScript(g, sp, script)
		if sp.M() > mMax {
			mMax = sp.M()
		}
		if len(sp.arena) > limit() {
			t.Fatalf("round %d: arena holds %d slots for m=%d, n=%d (budget %d): compaction is not holding O(n+m)",
				round, len(sp.arena), sp.M(), n, limit())
		}
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("sparse invariants after churn: %v", err)
	}
}

// BenchmarkSparseBFS1e5 times one queue-based BFS at n=10^5 on a sparse
// near-tree (m = 1.1n) — the single-source kernel of landmark mode at the
// scale the CSR backend exists for. Memory stays O(n + m), so this is
// CI-sized despite the vertex count.
func BenchmarkSparseBFS1e5(b *testing.B) {
	const n = 100_000
	r := lcg(11)
	sp := NewSparse(n)
	for v := 1; v < n; v++ {
		sp.AddEdge(v, r.intn(v))
	}
	for i := 0; i < n/10; i++ {
		u, v := r.intn(n), r.intn(n)
		if u != v && !sp.HasEdge(u, v) {
			sp.AddEdge(u, v)
		}
	}
	s := NewBFSScratch(n)
	dist := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sp.BFS(i%n, dist, s)
		if res.Reached != n {
			b.Fatal("benchmark graph not connected")
		}
	}
}
