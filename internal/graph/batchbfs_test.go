package graph

import (
	"math/rand"
	"testing"
)

// gilbert returns a G(n, p) random graph with uniformly random edge owners;
// disconnected outcomes are kept on purpose.
func gilbert(n int, p float64, r *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				if r.Intn(2) == 0 {
					g.AddEdge(u, v)
				} else {
					g.AddEdge(v, u)
				}
			}
		}
	}
	return g
}

// randomTestTree returns a random tree built by random attachment.
func randomTestTree(n int, r *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, r.Intn(v))
	}
	return g
}

// checkBatchAgainstSerial asserts that BatchBFS (or BatchBFSExcluding when
// excl >= 0) reproduces the per-source rows and aggregates of the
// single-source searches exactly.
func checkBatchAgainstSerial(t *testing.T, g *Graph, sources []int, excl int) {
	t.Helper()
	n := g.N()
	rows := make([][]int32, len(sources))
	for i := range rows {
		rows[i] = make([]int32, n)
	}
	res := make([]BFSResult, len(sources))
	s := NewBatchBFSScratch(n)
	if excl < 0 {
		g.BatchBFS(sources, rows, res, s)
	} else {
		g.BatchBFSExcluding(sources, excl, rows, res, s)
	}

	bs := NewBFSScratch(n)
	want := make([]int32, n)
	for i, src := range sources {
		var wr BFSResult
		if excl < 0 {
			wr = g.BFS(src, want, bs)
		} else {
			wr = g.BFSExcluding(src, excl, want, bs)
		}
		if res[i] != wr {
			t.Fatalf("source %d (excl %d): batch aggregates %+v, serial %+v", src, excl, res[i], wr)
		}
		for v := 0; v < n; v++ {
			if rows[i][v] != want[v] {
				t.Fatalf("source %d (excl %d): dist[%d] = %d, serial %d", src, excl, v, rows[i][v], want[v])
			}
		}
	}
}

func allSources(n int) []int {
	src := make([]int, n)
	for i := range src {
		src[i] = i
	}
	return src
}

// TestBatchBFSMatchesSerial sweeps Gilbert graphs, trees and edgeless
// (fully disconnected) graphs over sizes straddling the 64-source group
// boundary, n = 1 included.
func TestBatchBFSMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sizes := []int{1, 2, 3, 7, 31, 63, 64, 65, 100, 127, 128, 130}
	for _, n := range sizes {
		for trial := 0; trial < 3; trial++ {
			graphs := []*Graph{
				gilbert(n, 0.08, r),
				gilbert(n, 0.5, r),
				randomTestTree(n, r),
				New(n), // every vertex its own component
			}
			for gi, g := range graphs {
				checkBatchAgainstSerial(t, g, allSources(n), -1)
				if n > 1 {
					excl := r.Intn(n)
					src := make([]int, 0, n-1)
					for v := 0; v < n; v++ {
						if v != excl {
							src = append(src, v)
						}
					}
					checkBatchAgainstSerial(t, g, src, excl)
				}
				_ = gi
			}
		}
	}
}

// TestBatchBFSSubsetSources checks arbitrary (non-identity, repeated)
// source lists and nil row entries.
func TestBatchBFSSubsetSources(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := gilbert(90, 0.06, r)
	sources := []int{3, 89, 41, 3, 0, 77} // duplicate source on purpose
	checkBatchAgainstSerial(t, g, sources, -1)

	// nil rows: aggregates only, plus one selective row.
	rows := make([][]int32, len(sources))
	rows[2] = make([]int32, g.N())
	res := make([]BFSResult, len(sources))
	g.BatchBFS(sources, rows, res, NewBatchBFSScratch(g.N()))
	want := make([]int32, g.N())
	wr := g.BFS(41, want, NewBFSScratch(g.N()))
	if res[2] != wr {
		t.Fatalf("aggregates %+v, want %+v", res[2], wr)
	}
	for v, dv := range want {
		if rows[2][v] != dv {
			t.Fatalf("row[2][%d] = %d, want %d", v, rows[2][v], dv)
		}
	}
}

// TestAllSourcesBFSFlatMatchesSerial pins the flat row-major fast path against the
// general per-row layout and the serial searches.
func TestAllSourcesBFSFlatMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 5, 63, 64, 65, 100, 130} {
		for _, g := range []*Graph{gilbert(n, 0.07, r), randomTestTree(n, r), New(n)} {
			mat := make([]int32, n*n)
			res := make([]BFSResult, n)
			g.AllSourcesBFSFlat(mat, res, NewBatchBFSScratch(n))
			bs := NewBFSScratch(n)
			want := make([]int32, n)
			for u := 0; u < n; u++ {
				wr := g.BFS(u, want, bs)
				if res[u] != wr {
					t.Fatalf("n=%d source %d: flat aggregates %+v, serial %+v", n, u, res[u], wr)
				}
				for v := 0; v < n; v++ {
					if mat[u*n+v] != want[v] {
						t.Fatalf("n=%d flat[%d][%d] = %d, serial %d", n, u, v, mat[u*n+v], want[v])
					}
				}
			}
			// Aggregates-only (nil matrix) must agree too.
			res2 := make([]BFSResult, n)
			g.AllSourcesBFSFlat(nil, res2, NewBatchBFSScratch(n))
			for u := range res2 {
				if res2[u] != res[u] {
					t.Fatalf("n=%d source %d: nil-matrix aggregates %+v, want %+v", n, u, res2[u], res[u])
				}
			}
		}
	}
}

// TestAllSourcesBFSMatchesAllDistances pins the all-pairs helper against
// row-by-row BFS on a disconnected multi-component graph.
func TestAllSourcesBFSMatchesAllDistances(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := New(70)
	// Three components: a tree on [0,30), a cycle on [30,50), isolates above.
	for v := 1; v < 30; v++ {
		g.AddEdge(v, r.Intn(v))
	}
	for v := 30; v < 50; v++ {
		w := v + 1
		if w == 50 {
			w = 30
		}
		g.AddEdge(v, w)
	}
	d := g.AllDistances()
	s := NewBFSScratch(g.N())
	want := make([]int32, g.N())
	for u := 0; u < g.N(); u++ {
		g.BFS(u, want, s)
		for v := 0; v < g.N(); v++ {
			if d[u][v] != want[v] {
				t.Fatalf("AllDistances[%d][%d] = %d, want %d", u, v, d[u][v], want[v])
			}
		}
	}
}

// FuzzBatchBFS feeds random adjacency bytes into both kernels and requires
// exact agreement of rows and aggregates, with and without an excluded
// vertex.
func FuzzBatchBFS(f *testing.F) {
	f.Add(int64(1), 9, 20)
	f.Add(int64(2), 1, 0)
	f.Add(int64(3), 64, 64)
	f.Add(int64(4), 65, 200)
	f.Add(int64(5), 130, 260)
	f.Fuzz(func(t *testing.T, seed int64, n, m int) {
		if n < 1 || n > 160 || m < 0 || m > 1500 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
		}
		checkBatchAgainstSerial(t, g, allSources(n), -1)
		if n > 1 {
			excl := r.Intn(n)
			src := make([]int, 0, n-1)
			for v := 0; v < n; v++ {
				if v != excl {
					src = append(src, v)
				}
			}
			checkBatchAgainstSerial(t, g, src, excl)
		}
	})
}

// Benchmarks: all-pairs distance rows, serial single-source vs batched.

func benchAllPairs(b *testing.B, n int, batch bool) {
	r := rand.New(rand.NewSource(1))
	g := New(n)
	// Random connected graph with m = 2n edges.
	for v := 1; v < n; v++ {
		g.AddEdge(v, r.Intn(v))
	}
	for g.M() < 2*n {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v)
	}
	rows := make([][]int32, n)
	backing := make([]int32, n*n)
	for u := range rows {
		rows[u] = backing[u*n : (u+1)*n]
	}
	res := make([]BFSResult, n)
	bs := NewBFSScratch(n)
	s := NewBatchBFSScratch(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			g.AllSourcesBFSFlat(backing, res, s)
		} else {
			for u := 0; u < n; u++ {
				res[u] = g.BFS(u, rows[u], bs)
			}
		}
	}
}

func BenchmarkAllPairsSerial64(b *testing.B)   { benchAllPairs(b, 64, false) }
func BenchmarkAllPairsBatch64(b *testing.B)    { benchAllPairs(b, 64, true) }
func BenchmarkAllPairsSerial128(b *testing.B)  { benchAllPairs(b, 128, false) }
func BenchmarkAllPairsBatch128(b *testing.B)   { benchAllPairs(b, 128, true) }
func BenchmarkAllPairsSerial256(b *testing.B)  { benchAllPairs(b, 256, false) }
func BenchmarkAllPairsBatch256(b *testing.B)   { benchAllPairs(b, 256, true) }
func BenchmarkAllPairsSerial512(b *testing.B)  { benchAllPairs(b, 512, false) }
func BenchmarkAllPairsBatch512(b *testing.B)   { benchAllPairs(b, 512, true) }
func BenchmarkAllPairsSerial1024(b *testing.B) { benchAllPairs(b, 1024, false) }
func BenchmarkAllPairsBatch1024(b *testing.B)  { benchAllPairs(b, 1024, true) }
