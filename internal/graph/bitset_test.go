package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasicOps(t *testing.T) {
	b := NewBitset(130)
	if !b.Empty() {
		t.Fatal("new bitset not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("Clear(64) not visible")
	}
	if b.First() != 0 {
		t.Fatalf("First = %d, want 0", b.First())
	}
	b.Reset()
	if !b.Empty() || b.First() != -1 {
		t.Fatal("Reset did not empty the set")
	}
}

func TestBitsetFlip(t *testing.T) {
	b := NewBitset(70)
	b.Flip(69)
	if !b.Has(69) {
		t.Fatal("flip on")
	}
	b.Flip(69)
	if b.Has(69) {
		t.Fatal("flip off")
	}
}

func TestBitsetElementsSorted(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 64, 65, 100, 199}
	for _, i := range []int{199, 3, 100, 64, 65} {
		b.Set(i)
	}
	got := b.Elements(nil)
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

// refSet is a map-based reference implementation.
type refSet map[int]bool

func TestBitsetAgainstReference(t *testing.T) {
	const n = 150
	r := rand.New(rand.NewSource(7))
	b := NewBitset(n)
	ref := refSet{}
	for step := 0; step < 5000; step++ {
		i := r.Intn(n)
		switch r.Intn(3) {
		case 0:
			b.Set(i)
			ref[i] = true
		case 1:
			b.Clear(i)
			delete(ref, i)
		case 2:
			if b.Has(i) != ref[i] {
				t.Fatalf("step %d: Has(%d) = %v, ref %v", step, i, b.Has(i), ref[i])
			}
		}
	}
	if b.Count() != len(ref) {
		t.Fatalf("Count = %d, ref %d", b.Count(), len(ref))
	}
	b.ForEach(func(i int) {
		if !ref[i] {
			t.Fatalf("ForEach yields %d not in ref", i)
		}
	})
}

func TestBitsetSetAlgebra(t *testing.T) {
	const n = 128
	mk := func(xs []uint16) Bitset {
		b := NewBitset(n)
		for _, x := range xs {
			b.Set(int(x) % n)
		}
		return b
	}
	f := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		union := a.Clone()
		union.OrWith(b)
		inter := a.Clone()
		inter.AndWith(b)
		diff := a.Clone()
		diff.AndNotWith(b)
		// |A∪B| + |A∩B| == |A| + |B|, A\B == A∩¬B, intersect consistency.
		if union.Count()+inter.Count() != a.Count()+b.Count() {
			return false
		}
		if diff.Count() != a.Count()-inter.Count() {
			return false
		}
		if a.Intersects(b) != (inter.Count() > 0) {
			return false
		}
		for i := 0; i < n; i++ {
			if union.Has(i) != (a.Has(i) || b.Has(i)) {
				return false
			}
			if inter.Has(i) != (a.Has(i) && b.Has(i)) {
				return false
			}
			if diff.Has(i) != (a.Has(i) && !b.Has(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetEqualClone(t *testing.T) {
	a := NewBitset(99)
	a.Set(5)
	a.Set(98)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(7)
	if a.Equal(b) {
		t.Fatal("diverged clones equal")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom not equal")
	}
}
