// Package cycles contains the paper's explicit better/best-response-cycle
// constructions (Figures 2-6, 9, 10, 15, 16 of Kawald & Lenzner, SPAA'13)
// together with a generic verifier that machine-checks every claim the
// proofs make about them: that each designated move is a (unique) best
// response, that the unhappy sets are as stated, that multi-swaps cannot
// outperform the designated moves, that improving paths cannot leave the
// cycle (non-weak-acyclicity), and that the sequence closes.
package cycles

import (
	"fmt"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// Step is one move of a cyclic sequence together with the proof's claims
// about the state it is played in.
type Step struct {
	// Move transforms state i into state i+1.
	Move game.Move
	// WantUnhappy, if non-nil, is the exact expected set of unhappy
	// agents in the pre-move state.
	WantUnhappy []int
	// UniqueBest asserts that Move is the unique best response of its
	// agent.
	UniqueBest bool
	// UniqueImproving asserts that Move is the only improving move of its
	// agent (used by the host-graph corollaries).
	UniqueImproving bool
	// BetterOnly marks a step claimed improving but not necessarily a
	// best response (better-response cycles).
	BetterOnly bool
}

// Instance is a claimed better/best-response cycle.
type Instance struct {
	Name string
	Game game.Game
	// Start builds the initial network of the cycle.
	Start func() *graph.Graph
	// Steps is the cyclic move sequence.
	Steps []Step
	// ClosesExactly requires the final state to equal the start as a
	// labeled network; otherwise isomorphism (ownership-aware when the
	// game's ownership matters) suffices.
	ClosesExactly bool
	// CheckMultiSwapMovers additionally verifies that no multi-swap of a
	// moving agent outperforms the designated single swap (swap games
	// only).
	CheckMultiSwapMovers bool
	// CheckMultiSwapAll additionally verifies that NO agent listed happy
	// can improve even with a multi-swap (Theorem 3.3's stronger claim).
	CheckMultiSwapAll bool
	// EveryImprovingStaysInCycle asserts that every improving move of
	// every agent in every state leads to a network isomorphic to the
	// successor state (Theorem 5.1's non-weak-acyclicity form).
	EveryImprovingStaysInCycle bool
	// EveryBestEntersCycle asserts that every unhappy agent in every
	// state has at least one best response leading to a network
	// isomorphic to some state of the cycle (Theorem 3.5's "no move
	// policy helps" form).
	EveryBestEntersCycle bool
	// VertexNames maps vertex indices to the paper's labels for error
	// messages.
	VertexNames []string
}

func (in Instance) vname(v int) string {
	if v >= 0 && v < len(in.VertexNames) {
		return in.VertexNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

func (in Instance) moveString(m game.Move) string {
	s := "agent " + in.vname(m.Agent)
	if len(m.Drop) > 0 {
		s += " drop ["
		for i, v := range m.Drop {
			if i > 0 {
				s += " "
			}
			s += in.vname(v)
		}
		s += "]"
	}
	if len(m.Add) > 0 {
		s += " add ["
		for i, v := range m.Add {
			if i > 0 {
				s += " "
			}
			s += in.vname(v)
		}
		s += "]"
	}
	return s
}

// States returns the full state sequence G_0, ..., G_k where G_k is the
// state after the last step (and should close the cycle). It panics on
// instances whose steps are not applicable in sequence; Verify reports
// such problems as errors instead.
func (in Instance) States() []*graph.Graph {
	g := in.Start()
	out := []*graph.Graph{g.Clone()}
	for _, st := range in.Steps {
		game.Apply(g, st.Move)
		out = append(out, g.Clone())
	}
	return out
}

// applicable reports whether m can be played in g: all dropped neighbours
// are present and all added ones absent.
func applicable(g *graph.Graph, m game.Move) bool {
	for _, v := range m.Drop {
		if !g.HasEdge(m.Agent, v) {
			return false
		}
	}
	for _, v := range m.Add {
		if v == m.Agent || g.HasEdge(m.Agent, v) {
			return false
		}
	}
	return true
}

// Verify machine-checks every claim of the instance and returns the first
// violation found, or nil if all claims hold.
func (in Instance) Verify() error {
	g := in.Start()
	if err := g.Validate(); err != nil {
		return fmt.Errorf("%s: invalid start: %w", in.Name, err)
	}
	if !g.Connected() {
		return fmt.Errorf("%s: start network disconnected", in.Name)
	}
	start := g.Clone()
	s := game.NewScratch(g.N())
	alpha := in.Game.Alpha()
	// The full state list is needed only by the cycle-membership claims;
	// materialize it lazily once the step moves are known to be
	// applicable in sequence.
	var states []*graph.Graph
	if in.EveryImprovingStaysInCycle || in.EveryBestEntersCycle {
		probe := start.Clone()
		for i, st := range in.Steps {
			if !applicable(probe, st.Move) {
				return fmt.Errorf("%s step %d: move %s not applicable", in.Name, i+1, in.moveString(st.Move))
			}
			game.Apply(probe, st.Move)
		}
		states = in.States()
	}

	for i, st := range in.Steps {
		mover := st.Move.Agent
		if !applicable(g, st.Move) {
			return fmt.Errorf("%s step %d: move %s not applicable", in.Name, i+1, in.moveString(st.Move))
		}
		// Claim: unhappy set.
		if st.WantUnhappy != nil {
			got := unhappySet(g, in.Game, s)
			if !sameSet(got, st.WantUnhappy) {
				return fmt.Errorf("%s step %d: unhappy = %s, want %s",
					in.Name, i+1, in.nameList(got), in.nameList(st.WantUnhappy))
			}
		}
		// Claim: the move is improving / a (unique) best response.
		cur := in.Game.Cost(g, mover, s)
		after := evalCost(g, st.Move, in.Game, s)
		if !after.Less(cur, alpha) {
			return fmt.Errorf("%s step %d: move %s not improving (%v -> %v)",
				in.Name, i+1, in.moveString(st.Move), cur, after)
		}
		if !st.BetterOnly {
			best, bestCost := in.Game.BestMoves(g, mover, s, nil)
			if after.Cmp(bestCost, alpha) != 0 {
				return fmt.Errorf("%s step %d: move %s has cost %v but best response cost is %v (best: %s)",
					in.Name, i+1, in.moveString(st.Move), after, bestCost, in.movesString(best))
			}
			if st.UniqueBest && len(best) != 1 {
				return fmt.Errorf("%s step %d: best response not unique: %s",
					in.Name, i+1, in.movesString(best))
			}
			if st.UniqueBest && !best[0].Equal(st.Move) {
				return fmt.Errorf("%s step %d: unique best response is %s, not the designated %s",
					in.Name, i+1, in.moveString(best[0]), in.moveString(st.Move))
			}
		}
		if st.UniqueImproving {
			ims := in.Game.ImprovingMoves(g, mover, s, nil)
			if len(ims) != 1 || !ims[0].Equal(st.Move) {
				return fmt.Errorf("%s step %d: improving moves of %s are %s, want exactly the designated move",
					in.Name, i+1, in.vname(mover), in.movesString(ims))
			}
		}
		// Claim: multi-swaps do not beat the designated move (mover).
		if in.CheckMultiSwapMovers {
			_, mc := game.MultiSwapBest(in.Game, g, mover, s, 0)
			if mc.Less(after, alpha) {
				return fmt.Errorf("%s step %d: a multi-swap of %s achieves %v, beating the designated %v",
					in.Name, i+1, in.vname(mover), mc, after)
			}
		}
		// Claim: happy agents stay happy under multi-swaps.
		if in.CheckMultiSwapAll {
			for u := 0; u < g.N(); u++ {
				if u == mover {
					continue
				}
				if st.WantUnhappy != nil && contains(st.WantUnhappy, u) {
					continue
				}
				if ms := game.MultiSwapImprovingMoves(in.Game, g, u, s, 0); len(ms) > 0 {
					return fmt.Errorf("%s step %d: supposedly happy agent %s has improving multi-swap %s",
						in.Name, i+1, in.vname(u), in.moveString(ms[0]))
				}
			}
		}
		// Claim: no improving move escapes the cycle.
		if in.EveryImprovingStaysInCycle {
			next := states[i+1]
			for u := 0; u < g.N(); u++ {
				for _, m := range in.Game.ImprovingMoves(g, u, s, nil) {
					ap := game.Apply(g, m)
					ok := isoStates(g, next, in.Game)
					ap.Undo()
					if !ok {
						return fmt.Errorf("%s step %d: improving move %s leaves the cycle",
							in.Name, i+1, in.moveString(m))
					}
				}
			}
		}
		// Claim: every unhappy agent has a best response back into the
		// cycle.
		if in.EveryBestEntersCycle {
			for _, u := range unhappySet(g, in.Game, s) {
				best, _ := in.Game.BestMoves(g, u, s, nil)
				found := false
				for _, m := range best {
					ap := game.Apply(g, m)
					for _, st2 := range states[:len(states)-1] {
						if isoStates(g, st2, in.Game) {
							found = true
							break
						}
					}
					ap.Undo()
					if found {
						break
					}
				}
				if !found {
					return fmt.Errorf("%s step %d: unhappy agent %s has no best response into the cycle",
						in.Name, i+1, in.vname(u))
				}
			}
		}
		game.Apply(g, st.Move)
	}

	// Closure.
	if in.ClosesExactly {
		equal := g.Equal(start)
		if !in.Game.OwnershipMatters() {
			equal = g.EqualUnowned(start)
		}
		if !equal {
			return fmt.Errorf("%s: cycle does not close exactly:\nstart: %v\nend:   %v", in.Name, start, g)
		}
	} else if !isoStates(g, start, in.Game) {
		return fmt.Errorf("%s: final state not isomorphic to start", in.Name)
	}
	return nil
}

func (in Instance) nameList(vs []int) string {
	s := "["
	for i, v := range vs {
		if i > 0 {
			s += " "
		}
		s += in.vname(v)
	}
	return s + "]"
}

func (in Instance) movesString(ms []game.Move) string {
	s := "{"
	for i, m := range ms {
		if i > 0 {
			s += "; "
		}
		s += in.moveString(m)
	}
	return s + "}"
}

func evalCost(g *graph.Graph, m game.Move, gm game.Game, s *game.Scratch) game.Cost {
	ap := game.Apply(g, m)
	c := gm.Cost(g, m.Agent, s)
	ap.Undo()
	return c
}

func isoStates(a, b *graph.Graph, gm game.Game) bool {
	if gm.OwnershipMatters() {
		return graph.IsomorphicOwned(a, b)
	}
	return graph.Isomorphic(a, b)
}

func unhappySet(g *graph.Graph, gm game.Game, s *game.Scratch) []int {
	var us []int
	for u := 0; u < g.N(); u++ {
		if gm.HasImproving(g, u, s) {
			us = append(us, u)
		}
	}
	return us
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	in := map[int]bool{}
	for _, x := range a {
		in[x] = true
	}
	for _, x := range b {
		if !in[x] {
			return false
		}
	}
	return true
}

func contains(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
