package cycles

import (
	"testing"

	"ncg/internal/game"
)

func TestFig3SumASGCycle(t *testing.T) {
	if err := Fig3SumASG().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem33NotBRWeaklyAcyclic machine-checks Theorem 3.3 in full: the
// best-response state space reachable from the Figure 3 network is exactly
// the 4-cycle and contains no stable state, so no sequence of best
// response moves can ever converge.
func TestTheorem33NotBRWeaklyAcyclic(t *testing.T) {
	res, err := ExploreBestResponse(Fig3Start(), game.NewAsymSwap(game.Sum), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.StableReachable {
		t.Fatal("stable state reachable under best responses")
	}
	if res.States != 4 {
		t.Fatalf("best-response state space = %d, want the 4-cycle", res.States)
	}
}

func TestCorollary36SumHostGraph(t *testing.T) {
	if err := Fig3SumASGHost().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCorollary36SumPaperHostRefuted documents a negative reproduction
// finding: on the paper's host graph (complete minus {a,f}), agent b has
// suboptimal improving swaps onto f's leaves in G4, and from there a stable
// network is reachable — so the instance as stated does not witness
// non-weak-acyclicity.
func TestCorollary36SumPaperHostRefuted(t *testing.T) {
	gm := game.NewAsymSwapHost(game.Sum, Fig3HostGraph())
	res, err := ExploreImproving(Fig3Start(), gm, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StableReachable {
		t.Fatal("expected a reachable stable state (documented paper erratum)")
	}
	if res.States != 19 {
		t.Fatalf("reachable states = %d, want 19", res.States)
	}
}

// TestCorollary36SumRepaired verifies the repaired Corollary 3.6 (SUM):
// with the cycle-edge host graph, the improving-move state space from G1 is
// exactly the 4-cycle and contains no stable network, so the SUM-ASG on
// non-complete host graphs is not weakly acyclic.
func TestCorollary36SumRepaired(t *testing.T) {
	if err := Fig3SumASGHostRepaired().Verify(); err != nil {
		t.Fatal(err)
	}
	gm := game.NewAsymSwapHost(game.Sum, Fig3HostGraphRepaired())
	res, err := ExploreImproving(Fig3Start(), gm, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.StableReachable {
		t.Fatal("stable state reachable on repaired host graph")
	}
	if res.States != 6 {
		t.Fatalf("improving state space = %d, want 6", res.States)
	}
	// Under best responses the space is exactly the 4-cycle.
	bres, err := ExploreBestResponse(Fig3Start(), gm, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bres.StableReachable || bres.States != 4 {
		t.Fatalf("best-response space = %+v, want the stable-free 4-cycle", bres)
	}
}

// TestFig3CostDeltas re-derives the cost decreases quoted in the proof of
// Theorem 3.3: f saves 4, b saves 1, f saves 1, b saves 3.
func TestFig3CostDeltas(t *testing.T) {
	inst := Fig3SumASG()
	states := inst.States()
	gm := inst.Game
	s := game.NewScratch(24)
	wantDelta := []int64{4, 1, 1, 3}
	for i, st := range inst.Steps {
		before := gm.Cost(states[i], st.Move.Agent, s)
		after := gm.Cost(states[i+1], st.Move.Agent, s)
		if before.Dist-after.Dist != wantDelta[i] {
			t.Fatalf("step %d: delta = %d, want %d", i+1, before.Dist-after.Dist, wantDelta[i])
		}
	}
}

// TestFig3Remark34 checks Remark 3.4: the Figure 3 cycle is NOT a best
// response cycle in the symmetric Swap Game, because in G1 agent f's swap
// of the foreign-owned edge {f,b} to {f,e} saves strictly more (5) than the
// designated swap of her own edge {f,d} (4).
func TestFig3Remark34(t *testing.T) {
	g := Fig3Start()
	sg := game.NewSwap(game.Sum)
	s := game.NewScratch(24)
	best, c := sg.BestMoves(g, f3f, s, nil)
	if len(best) == 0 {
		t.Fatal("f should be unhappy in the SG too")
	}
	cur := sg.Cost(g, f3f, s)
	if cur.Dist-c.Dist != 5 {
		t.Fatalf("SG best delta = %d, want 5", cur.Dist-c.Dist)
	}
	for _, m := range best {
		if m.Drop[0] == f3d {
			t.Fatalf("SG best response should not be the ASG move: %v", best)
		}
	}
}
