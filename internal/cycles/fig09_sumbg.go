package cycles

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figure 9 / Theorem 4.1 (SUM version): a best response cycle for the
// SUM-(G)BG with 7 < alpha < 8. The initial network G1 is the path
// a-b-c-d-e-f-g; agent g owns {f,g}, agent c owns {b,c}, agent f owns
// nothing. The six steps are:
//
//	G1: g swaps gf -> gc      (alpha+21 -> alpha+15)
//	G2: f buys fb             (19 -> 11+alpha)
//	G3: c deletes cb          (9+alpha -> 16)
//	G4: g swaps gc -> gf      (g is again the end of a 6-path a-b-f-e-d-c-g)
//	G5: c buys cb
//	G6: f deletes fb          (-> G1)
//
// Every quoted cost value from the proof is checked by TestFig9CostValues.

// Vertex labels of the Figure 9 construction.
const (
	f9a = iota
	f9b
	f9c
	f9d
	f9e
	f9f
	f9g
)

var fig9Names = []string{"a", "b", "c", "d", "e", "f", "g"}

// Fig9Alpha is a rational edge price strictly inside (7, 8).
var Fig9Alpha = game.NewAlpha(15, 2)

// Fig9Start builds the Figure 9 initial network G1.
func Fig9Start() *graph.Graph {
	g := graph.New(7)
	g.AddEdge(f9a, f9b) // a owns ab (owner irrelevant: a never moves)
	g.AddEdge(f9c, f9b) // c owns cb (deleted in G3, bought back in G5)
	g.AddEdge(f9d, f9c) // d owns dc
	g.AddEdge(f9d, f9e) // d owns de
	g.AddEdge(f9e, f9f) // e owns ef (so f owns nothing in G1)
	g.AddEdge(f9g, f9f) // g owns gf (swapped in G1 and G4)
	return g
}

var fig9Steps = []Step{
	{Move: game.Move{Agent: f9g, Drop: []int{f9f}, Add: []int{f9c}}},
	{Move: game.Move{Agent: f9f, Add: []int{f9b}}},
	{Move: game.Move{Agent: f9c, Drop: []int{f9b}}},
	{Move: game.Move{Agent: f9g, Drop: []int{f9c}, Add: []int{f9f}}},
	{Move: game.Move{Agent: f9c, Add: []int{f9b}}},
	{Move: game.Move{Agent: f9f, Drop: []int{f9b}}},
}

// Fig9SumGBG is the Figure 9 best response cycle played in the Greedy Buy
// Game.
func Fig9SumGBG() Instance {
	return Instance{
		Name:          "Fig9 SUM-GBG",
		Game:          game.NewGreedyBuy(game.Sum, Fig9Alpha),
		Start:         Fig9Start,
		Steps:         fig9Steps,
		ClosesExactly: true,
		VertexNames:   fig9Names,
	}
}

// Fig9SumBG is the same cycle played in the unrestricted Buy Game: the
// proof shows each greedy move is a best response even among arbitrary
// strategy changes.
func Fig9SumBG() Instance {
	return Instance{
		Name:          "Fig9 SUM-BG",
		Game:          game.NewBuy(game.Sum, Fig9Alpha),
		Start:         Fig9Start,
		Steps:         fig9Steps,
		ClosesExactly: true,
		VertexNames:   fig9Names,
	}
}

// Fig9HostGraph is the host graph of Corollary 4.2 (SUM version): the
// Figure 9 network G1 augmented by the two edges {b,f} and {c,g}.
func Fig9HostGraph() *graph.Graph {
	h := Fig9Start()
	h.AddEdge(f9b, f9f)
	h.AddEdge(f9c, f9g)
	return h
}

// fig9HostSteps annotates the cycle steps with the claims that actually
// hold on the host graph. Machine-checking reveals that Corollary 4.2 (SUM)
// overclaims for this instance:
//
//   - in G1 and G4 the mover g has TWO improving moves (the designated
//     swap, alpha+15, and buying the same target, 2*alpha+11);
//   - in G3 agents d and e are also unhappy — once the edge {b,f} exists,
//     the owner of {d,e} saves alpha > 4 by deleting it at a distance
//     penalty of only 4 (the proof's constraints force c to own only {b,c}
//     and f to own nothing, so {d,e} belongs to d or e either way);
//   - consequently stable states ARE reachable from G1
//     (TestCorollary42SumRefuted enumerates all 17 reachable states and
//     finds 7 stable ones), so this instance does not witness
//     non-weak-acyclicity.
//
// The designated moves remain best responses and the cycle itself exists;
// only the "no escape" claim fails. See EXPERIMENTS.md.
func fig9HostSteps() []Step {
	unhappy := [][]int{
		{f9g}, {f9f}, {f9c, f9d, f9e}, {f9g}, {f9c}, {f9d, f9f},
	}
	steps := make([]Step, len(fig9Steps))
	for i, st := range fig9Steps {
		st.WantUnhappy = unhappy[i]
		st.UniqueBest = true
		steps[i] = st
	}
	return steps
}

// Fig9SumGBGHost is the Corollary 4.2 instance for the Greedy Buy Game on
// the Figure 9 host graph.
func Fig9SumGBGHost() Instance {
	return Instance{
		Name:          "Fig9 SUM-GBG host graph (Cor 4.2)",
		Game:          game.NewGreedyBuyHost(game.Sum, Fig9Alpha, Fig9HostGraph()),
		Start:         Fig9Start,
		Steps:         fig9HostSteps(),
		ClosesExactly: true,
		VertexNames:   fig9Names,
	}
}

// Fig9SumBGHost plays the Corollary 4.2 cycle in the unrestricted-strategy
// Buy Game on the host graph.
func Fig9SumBGHost() Instance {
	return Instance{
		Name:          "Fig9 SUM-BG host graph (Cor 4.2)",
		Game:          game.NewBuyHost(game.Sum, Fig9Alpha, Fig9HostGraph()),
		Start:         Fig9Start,
		Steps:         fig9HostSteps(),
		ClosesExactly: true,
		VertexNames:   fig9Names,
	}
}
