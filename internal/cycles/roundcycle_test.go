package cycles

import (
	"math/rand"
	"testing"

	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// sameState compares two networks under gm's state equality: labeled edge
// sets, with ownership when the game distinguishes it.
func sameState(a, b *graph.Graph, gm game.Game) bool {
	if gm.OwnershipMatters() {
		return a.Equal(b)
	}
	return a.EqualUnowned(b)
}

// TestSearchRoundCycle: over a seed stream known to produce oscillating
// round runs (the TestRoundsOutcomes stream of internal/dynamics), every
// witnessed cycle replays exactly — Moves[i] maps States[i] to States[i+1]
// and the last move closes the loop — and the result agrees with a direct
// detect-cycles run of the same configuration.
func TestSearchRoundCycle(t *testing.T) {
	gm := game.NewSwap(game.Sum)
	r := rand.New(rand.NewSource(79))
	found := 0
	for trial := 0; trial < 24 && found < 3; trial++ {
		n := 10 + r.Intn(10)
		g := gen.RandomConnected(n, n-1+r.Intn(6), r)
		cfg := dynamics.Config{
			Game: gm, Tie: dynamics.TieFirst, Seed: r.Int63(),
			Schedule: dynamics.Rounds{Active: dynamics.ActiveAll, Collision: dynamics.FirstWriterWins},
		}
		before := g.Clone()
		fc, steps := SearchRoundCycle(g, cfg)
		if !g.Equal(before) {
			t.Fatal("SearchRoundCycle mutated the start network")
		}
		ref := dynamics.Run(g.Clone(), withDetect(cfg))
		if steps != ref.Steps {
			t.Fatalf("trial %d: reported %d steps, direct run played %d", trial, steps, ref.Steps)
		}
		if (fc != nil) != ref.Cycled {
			t.Fatalf("trial %d: cycle found = %v, direct run cycled = %v", trial, fc != nil, ref.Cycled)
		}
		if fc == nil {
			continue
		}
		found++
		if len(fc.Moves) != ref.CycleLen || len(fc.States) != ref.CycleLen {
			t.Fatalf("trial %d: cycle has %d moves over %d states, want %d of each",
				trial, len(fc.Moves), len(fc.States), ref.CycleLen)
		}
		for i, mv := range fc.Moves {
			if !applicable(fc.States[i], mv) {
				t.Fatalf("trial %d: move %d not applicable to its state", trial, i)
			}
			next := fc.States[i].Clone()
			game.ApplyMove(next, mv)
			want := fc.States[0]
			if i+1 < len(fc.States) {
				want = fc.States[i+1]
			}
			if !sameState(next, want, gm) {
				t.Fatalf("trial %d: move %d does not reach the next cycle state", trial, i)
			}
		}
	}
	if found == 0 {
		t.Fatal("seed stream produced no round cycles; pick new seeds")
	}
}

// withDetect returns cfg with cycle detection on and no callback, the
// reference configuration SearchRoundCycle must agree with.
func withDetect(cfg dynamics.Config) dynamics.Config {
	cfg.DetectCycles = true
	cfg.OnStep = nil
	return cfg
}

// TestSearchRoundCycleRequiresRounds: a sequential schedule is rejected.
func TestSearchRoundCycleRequiresRounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a sequential schedule")
		}
	}()
	SearchRoundCycle(graph.New(4), dynamics.Config{Game: game.NewSwap(game.Sum)})
}
