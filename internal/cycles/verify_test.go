package cycles

import (
	"strings"
	"testing"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// badInstance builds a deliberately wrong instance to exercise the
// verifier's failure modes.
func badInstance(mutate func(*Instance)) Instance {
	inst := Fig9SumGBG()
	mutate(&inst)
	return inst
}

func TestVerifyRejectsNonImprovingMove(t *testing.T) {
	inst := badInstance(func(in *Instance) {
		// Swap g's first move to a pointless target (gf -> ga).
		in.Steps = append([]Step(nil), in.Steps...)
		in.Steps[0] = Step{Move: game.Move{Agent: f9g, Drop: []int{f9f}, Add: []int{f9a}}}
	})
	err := inst.Verify()
	if err == nil || !strings.Contains(err.Error(), "not improving") {
		t.Fatalf("err = %v, want 'not improving'", err)
	}
}

func TestVerifyRejectsSubOptimalMove(t *testing.T) {
	inst := badInstance(func(in *Instance) {
		// g's swap to d improves (alpha+15 equals the best) — but g's
		// swap to e improves by less and must be rejected as a best
		// response... swap to e: distances from g at e: e1,d2,f1? g at
		// e: ... choose a target that improves but is not best: vertex d
		// ties with c, so use e instead.
		in.Steps = append([]Step(nil), in.Steps...)
		in.Steps[0] = Step{Move: game.Move{Agent: f9g, Drop: []int{f9f}, Add: []int{f9e}}}
	})
	err := inst.Verify()
	if err == nil {
		t.Fatal("expected a verification error")
	}
}

func TestVerifyRejectsWrongUnhappySet(t *testing.T) {
	inst := badInstance(func(in *Instance) {
		in.Steps = append([]Step(nil), in.Steps...)
		st := in.Steps[0]
		st.WantUnhappy = []int{f9a}
		in.Steps[0] = st
	})
	err := inst.Verify()
	if err == nil || !strings.Contains(err.Error(), "unhappy") {
		t.Fatalf("err = %v, want unhappy-set mismatch", err)
	}
}

func TestVerifyRejectsNonClosingCycle(t *testing.T) {
	inst := badInstance(func(in *Instance) {
		in.Steps = in.Steps[:5] // drop the closing move
	})
	err := inst.Verify()
	if err == nil || !strings.Contains(err.Error(), "close") {
		t.Fatalf("err = %v, want closure failure", err)
	}
}

func TestVerifyRejectsFalseUniqueBest(t *testing.T) {
	// In G1 the swap gf->gc ties with gf->gd, so claiming uniqueness must
	// fail.
	inst := badInstance(func(in *Instance) {
		in.Steps = append([]Step(nil), in.Steps...)
		st := in.Steps[0]
		st.UniqueBest = true
		in.Steps[0] = st
	})
	err := inst.Verify()
	if err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("err = %v, want uniqueness failure", err)
	}
}

func TestStatesSequence(t *testing.T) {
	inst := Fig9SumGBG()
	states := inst.States()
	if len(states) != len(inst.Steps)+1 {
		t.Fatalf("states = %d, want %d", len(states), len(inst.Steps)+1)
	}
	// Consecutive states differ by exactly the designated move.
	for i, st := range inst.Steps {
		g := states[i].Clone()
		game.Apply(g, st.Move)
		if !g.Equal(states[i+1]) {
			t.Fatalf("step %d does not transform state %d into %d", i+1, i, i+1)
		}
	}
}

func TestFindBestResponseCycleOnFig3(t *testing.T) {
	fc := FindBestResponseCycle(Fig3Start(), game.NewAsymSwap(game.Sum), 1000)
	if fc == nil {
		t.Fatal("Fig 3 must contain a reachable best-response cycle")
	}
	if len(fc.Moves) != 4 {
		t.Fatalf("cycle length = %d, want 4", len(fc.Moves))
	}
	// Replaying the moves from the first cycle state returns to it.
	g := fc.States[0].Clone()
	for _, m := range fc.Moves {
		game.Apply(g, m)
	}
	if !g.Equal(fc.States[0]) {
		t.Fatal("found cycle does not close")
	}
}

func TestFindBestResponseCycleOnConvergentGame(t *testing.T) {
	// Trees under the MAX-SG are a FIPG (Theorem 2.1): no cycle exists.
	if fc := FindBestResponseCycle(graph.Path(7), game.NewSwap(game.Max), 100000); fc != nil {
		t.Fatalf("unexpected cycle on a tree: %v", fc.Moves)
	}
}

func TestExploreImprovingCountsStableStates(t *testing.T) {
	// A star under the MAX-SG is already stable: one state, stable.
	res, err := ExploreImproving(graph.Star(6), game.NewSwap(game.Max), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StableReachable || res.States != 1 {
		t.Fatalf("res = %+v, want single stable state", res)
	}
}

func TestExploreCapExceeded(t *testing.T) {
	_, err := ExploreImproving(graph.Path(12), game.NewSwap(game.Sum), 3)
	if err == nil {
		t.Fatal("expected cap error")
	}
}
