package cycles

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figure 6 / Theorem 3.7 (MAX version): a best response cycle for the
// MAX-ASG on a 20-agent network in which EVERY agent owns exactly one edge
// (the uniform unit-budget case of Ehsani et al., answered in the
// negative). This also witnesses Theorem 3.5's claim that the MAX-ASG on
// general networks admits best response cycles.
//
// The instance was reconstructed by search.Fig5CandidatesMinimal's sibling
// search over the figure's component family (four chains a2-..-a6,
// b1-..-b4, d1-d2-d3, e1-..-e6 plus c1 and four connector edges), keeping
// assemblies on which the four designated moves are best responses and the
// trajectory closes. The first candidate reproduces the proof's facts:
//
//	G1: ecc(a1) = 6, d(a1,a6) = 5; a1's best swaps go exactly to
//	    {e2,e3,e4,e5}, saving 1 (designated: e5);
//	G2: the unique cycle a1-e5-e4-e3-e2-c1-d1-b2-b1 has length 9;
//	    ecc(b1) = 6; b1's best swaps go exactly to {a2, a3} (designated:
//	    a3);
//	G3: ecc(a1) = 7 (realized at d3); best swaps reach ecc 6 at
//	    {c1, e1, e2, e3} (the prose lists only e1..e3; c1 also ties in
//	    this reconstruction), designated: e1;
//	G4: ecc(b1) = 8 (realized at e6); best swaps exactly {a1, e1},
//	    designated: a1 — closing the cycle.
//
// Topology: the chains a6-..-a2, b4-..-b2 and d3-d2-d1 thread into a core
// ring a1-b1-b2-d1-c1-e2-e1-a1; a1 and b1 each own one ring edge and swap
// it around the ring, stretching the ring from 7 to 11 edges and back.

// Vertex labels of the Figure 6 construction.
const (
	f6a1 = iota
	f6a2
	f6a3
	f6a4
	f6a5
	f6a6
	f6b1
	f6b2
	f6b3
	f6b4
	f6c1
	f6d1
	f6d2
	f6d3
	f6e1
	f6e2
	f6e3
	f6e4
	f6e5
	f6e6
)

var fig6Names = []string{
	"a1", "a2", "a3", "a4", "a5", "a6",
	"b1", "b2", "b3", "b4",
	"c1", "d1", "d2", "d3",
	"e1", "e2", "e3", "e4", "e5", "e6",
}

// Fig6Start builds the unit-budget Figure 6 network G1; every agent owns
// exactly one edge.
func Fig6Start() *graph.Graph {
	g := graph.New(20)
	g.AddEdge(f6a1, f6e1) // a1's oscillating edge, at e1 in G1
	g.AddEdge(f6a2, f6a1)
	g.AddEdge(f6a3, f6a2)
	g.AddEdge(f6a4, f6a3)
	g.AddEdge(f6a5, f6a4)
	g.AddEdge(f6a6, f6a5)
	g.AddEdge(f6b1, f6a1) // b1's oscillating edge, at a1 in G1
	g.AddEdge(f6b2, f6b1)
	g.AddEdge(f6b3, f6b2)
	g.AddEdge(f6b4, f6b3)
	g.AddEdge(f6c1, f6d1)
	g.AddEdge(f6d1, f6b2)
	g.AddEdge(f6d2, f6d1)
	g.AddEdge(f6d3, f6d2)
	g.AddEdge(f6e1, f6e2)
	g.AddEdge(f6e2, f6c1)
	g.AddEdge(f6e3, f6e2)
	g.AddEdge(f6e4, f6e3)
	g.AddEdge(f6e5, f6e4)
	g.AddEdge(f6e6, f6e5)
	return g
}

// Fig6MaxASGUnitBudget is the Figure 6 best response cycle.
func Fig6MaxASGUnitBudget() Instance {
	return Instance{
		Name:  "Fig6 MAX-ASG unit budget",
		Game:  game.NewAsymSwap(game.Max),
		Start: Fig6Start,
		Steps: []Step{
			{Move: game.Move{Agent: f6a1, Drop: []int{f6e1}, Add: []int{f6e5}}},
			{Move: game.Move{Agent: f6b1, Drop: []int{f6a1}, Add: []int{f6a3}}},
			{Move: game.Move{Agent: f6a1, Drop: []int{f6e5}, Add: []int{f6e1}}},
			{Move: game.Move{Agent: f6b1, Drop: []int{f6a3}, Add: []int{f6a1}}},
		},
		ClosesExactly: true,
		VertexNames:   fig6Names,
	}
}
