package cycles

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/search"
)

func TestFig6MaxASGUnitBudgetCycle(t *testing.T) {
	if err := Fig6MaxASGUnitBudget().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFig6UnitBudgetProperty validates the defining property of Theorem
// 3.7: every agent owns exactly one edge in every state of the cycle.
func TestFig6UnitBudgetProperty(t *testing.T) {
	for i, g := range Fig6MaxASGUnitBudget().States() {
		if g.M() != g.N() {
			t.Fatalf("state %d: %d edges on %d agents", i, g.M(), g.N())
		}
		for u := 0; u < g.N(); u++ {
			if g.OutDegree(u) != 1 {
				t.Fatalf("state %d: agent %s owns %d edges", i, fig6Names[u], g.OutDegree(u))
			}
		}
	}
}

// TestFig6ProseFacts re-checks the quoted facts of the Theorem 3.7 MAX
// proof on the reconstructed instance.
func TestFig6ProseFacts(t *testing.T) {
	inst := Fig6MaxASGUnitBudget()
	states := inst.States()
	gm := inst.Game
	s := game.NewScratch(20)

	// G1: ecc(a1) = 6, d(a1, a6) = 5; best swaps exactly to {e2..e5}.
	if ecc := states[0].Eccentricities(); ecc[f6a1] != 6 {
		t.Fatalf("ecc_G1(a1) = %d, want 6", ecc[f6a1])
	}
	if d := states[0].Dist(f6a1, f6a6); d != 5 {
		t.Fatalf("d_G1(a1,a6) = %d, want 5", d)
	}
	checkTargets := func(state int, agent int, want []int, wantEcc int64) {
		t.Helper()
		best, c := gm.BestMoves(states[state], agent, s, nil)
		if c.Dist != wantEcc {
			t.Fatalf("G%d: best ecc of %s = %d, want %d", state+1, fig6Names[agent], c.Dist, wantEcc)
		}
		got := map[int]bool{}
		for _, m := range best {
			got[m.Add[0]] = true
		}
		if len(got) != len(want) {
			t.Fatalf("G%d: %s best targets = %v, want %d targets", state+1, fig6Names[agent], got, len(want))
		}
		for _, w := range want {
			if !got[w] {
				t.Fatalf("G%d: %s best targets miss %s", state+1, fig6Names[agent], fig6Names[w])
			}
		}
	}
	checkTargets(0, f6a1, []int{f6e2, f6e3, f6e4, f6e5}, 5)
	// G2: the unique cycle has length 9; b1's best swaps exactly {a2,a3}.
	if l := search.UniqueCycleLength(states[1]); l != 9 {
		t.Fatalf("G2 cycle length = %d, want 9", l)
	}
	checkTargets(1, f6b1, []int{f6a2, f6a3}, 5)
	// G3: ecc(a1) = 7 realized at d3; best swaps reach 6 at {c1,e1,e2,e3}
	// (the prose lists e1..e3; c1 ties in this reconstruction).
	if ecc := states[2].Eccentricities(); ecc[f6a1] != 7 {
		t.Fatalf("ecc_G3(a1) = %d, want 7", ecc[f6a1])
	}
	if d := states[2].Dist(f6a1, f6d3); d != 7 {
		t.Fatalf("d_G3(a1,d3) = %d, want 7", d)
	}
	checkTargets(2, f6a1, []int{f6c1, f6e1, f6e2, f6e3}, 6)
	// G4: ecc(b1) = 8 realized at e6; best swaps exactly {a1, e1}.
	if ecc := states[3].Eccentricities(); ecc[f6b1] != 8 {
		t.Fatalf("ecc_G4(b1) = %d, want 8", ecc[f6b1])
	}
	if d := states[3].Dist(f6b1, f6e6); d != 8 {
		t.Fatalf("d_G4(b1,e6) = %d, want 8", d)
	}
	checkTargets(3, f6b1, []int{f6a1, f6e1}, 7)
}

// TestFig6SearchReproduces re-derives the pinned instance as the first
// result of the minimal assembly search.
func TestFig6SearchReproduces(t *testing.T) {
	cands := search.Fig6CandidatesMinimal(1)
	if len(cands) != 1 {
		t.Fatal("search found nothing")
	}
	if !cands[0].Equal(Fig6Start()) {
		t.Fatalf("pinned instance differs from search result:\n%v\n%v", cands[0], Fig6Start())
	}
}

// TestTheorem35MaxASGCycleWitness: the unit-budget instance also witnesses
// Theorem 3.5's first claim — the MAX-ASG on general networks admits best
// response cycles: replaying the verified instance's moves returns to the
// start state, and each move is a best response (Verify), so adversarial
// scheduling of {a1, b1} cycles forever.
func TestTheorem35MaxASGCycleWitness(t *testing.T) {
	inst := Fig6MaxASGUnitBudget()
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
	g := inst.Start()
	for round := 0; round < 3; round++ {
		for _, st := range inst.Steps {
			game.Apply(g, st.Move)
		}
		if !g.Equal(inst.Start()) {
			t.Fatalf("round %d did not return to the start state", round)
		}
	}
}
