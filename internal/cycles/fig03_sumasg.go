package cycles

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figure 3 / Theorem 3.3: a best response cycle for the SUM-ASG showing the
// game is not weakly acyclic under best response, even with multi-swaps.
//
// The 24-vertex network (reconstructed from the proof text, which pins
// every edge and owner): leaf agents a1..a4 on a, c1..c5 on c, d1 on d,
// e1..e5 on e, f1..f3 on f own nothing; a owns her leaf edges and {a,e};
// b owns {b,c}, {b,e} and one "free" edge ({b,f} in G1); c, e own their
// leaf edges; d owns {d,d1}, {d,a}, {d,c}, {d,e}; f owns her leaf edges and
// one free edge ({f,d} in G1).
//
// The cycle: f swaps d->e (saves 4); b swaps f->a (saves 1); f swaps e->d
// (saves 1); b swaps a->f (saves 3); back to G1. In every state exactly one
// agent is unhappy and her best response is unique, so no best-response
// scheduling can converge; multi-swaps do not help.

// Vertex labels of the Figure 3 construction.
const (
	f3a = iota
	f3b
	f3c
	f3d
	f3e
	f3f
	f3a1 // 6
	f3a2
	f3a3
	f3a4
	f3c1 // 10
	f3c2
	f3c3
	f3c4
	f3c5
	f3d1 // 15
	f3e1 // 16
	f3e2
	f3e3
	f3e4
	f3e5
	f3f1 // 21
	f3f2
	f3f3
)

var fig3Names = []string{
	"a", "b", "c", "d", "e", "f",
	"a1", "a2", "a3", "a4",
	"c1", "c2", "c3", "c4", "c5",
	"d1",
	"e1", "e2", "e3", "e4", "e5",
	"f1", "f2", "f3",
}

// Fig3Start builds the Figure 3 initial network G1.
func Fig3Start() *graph.Graph {
	g := graph.New(24)
	for _, leaf := range []int{f3a1, f3a2, f3a3, f3a4} {
		g.AddEdge(f3a, leaf)
	}
	g.AddEdge(f3a, f3e)
	g.AddEdge(f3b, f3c)
	g.AddEdge(f3b, f3e)
	g.AddEdge(f3b, f3f) // b's free edge, at f in G1
	for _, leaf := range []int{f3c1, f3c2, f3c3, f3c4, f3c5} {
		g.AddEdge(f3c, leaf)
	}
	g.AddEdge(f3d, f3d1)
	g.AddEdge(f3d, f3a)
	g.AddEdge(f3d, f3c)
	g.AddEdge(f3d, f3e)
	for _, leaf := range []int{f3e1, f3e2, f3e3, f3e4, f3e5} {
		g.AddEdge(f3e, leaf)
	}
	for _, leaf := range []int{f3f1, f3f2, f3f3} {
		g.AddEdge(f3f, leaf)
	}
	g.AddEdge(f3f, f3d) // f's free edge, at d in G1
	return g
}

// Fig3SumASG is the Figure 3 best response cycle with all of Theorem 3.3's
// claims: unique unhappy agent, unique best response, closure, and
// multi-swap resistance for every agent.
func Fig3SumASG() Instance {
	return Instance{
		Name:  "Fig3 SUM-ASG",
		Game:  game.NewAsymSwap(game.Sum),
		Start: Fig3Start,
		Steps: []Step{
			{Move: game.Move{Agent: f3f, Drop: []int{f3d}, Add: []int{f3e}},
				WantUnhappy: []int{f3f}, UniqueBest: true},
			{Move: game.Move{Agent: f3b, Drop: []int{f3f}, Add: []int{f3a}},
				WantUnhappy: []int{f3b}, UniqueBest: true},
			{Move: game.Move{Agent: f3f, Drop: []int{f3e}, Add: []int{f3d}},
				WantUnhappy: []int{f3f}, UniqueBest: true},
			{Move: game.Move{Agent: f3b, Drop: []int{f3a}, Add: []int{f3f}},
				WantUnhappy: []int{f3b}, UniqueBest: true},
		},
		ClosesExactly:        true,
		CheckMultiSwapMovers: true,
		CheckMultiSwapAll:    true,
		VertexNames:          fig3Names,
	}
}

// Fig3HostGraph is the host graph of Corollary 3.6 (SUM version) as stated
// in the paper: the complete graph minus the edge {a,f}.
func Fig3HostGraph() *graph.Graph {
	return graph.CompleteMinus(24, []graph.Edge{{U: f3a, V: f3f}})
}

// Fig3HostGraphRepaired is a corrected host graph under which Corollary 3.6
// (SUM) actually holds: the union of the edges of all four cycle states
// (the G1 edges plus {a,b} and {e,f}). On the paper's own host graph
// (complete minus {a,f}) agent b has suboptimal improving swaps onto f's
// leaves from which a stable network is reachable
// (TestCorollary36SumPaperHostRefuted); the tighter host eliminates every
// off-cycle improving move, and TestCorollary36SumRepaired verifies
// exhaustively that the improving-move state space from G1 is exactly the
// 4-cycle with no stable state.
func Fig3HostGraphRepaired() *graph.Graph {
	h := Fig3Start()
	h.AddEdge(f3a, f3b)
	h.AddEdge(f3e, f3f)
	return h
}

// Fig3SumASGHost is the Corollary 3.6 (SUM) cycle on the paper's host
// graph. The designated moves remain unique best responses there, but the
// paper's claim that each mover has exactly ONE improving move fails (b has
// six in G4), and stable states are reachable; see Fig3HostGraphRepaired.
func Fig3SumASGHost() Instance {
	inst := Fig3SumASG()
	inst.Name = "Fig3 SUM-ASG host graph (Cor 3.6, as stated)"
	inst.Game = game.NewAsymSwapHost(game.Sum, Fig3HostGraph())
	inst.CheckMultiSwapMovers = false
	inst.CheckMultiSwapAll = false
	return inst
}

// Fig3SumASGHostRepaired is the corrected Corollary 3.6 (SUM) instance on
// the cycle-edge host graph. Movers' improving moves are unique except b's
// in G4 (she may also swap {b,e} onto f, which stays inside the non-stable
// 6-state space); ExploreImproving proves no stable state is reachable.
func Fig3SumASGHostRepaired() Instance {
	inst := Fig3SumASG()
	inst.Name = "Fig3 SUM-ASG repaired host graph (Cor 3.6)"
	inst.Game = game.NewAsymSwapHost(game.Sum, Fig3HostGraphRepaired())
	for i := range inst.Steps[:3] {
		inst.Steps[i].UniqueImproving = true
	}
	inst.CheckMultiSwapMovers = false
	inst.CheckMultiSwapAll = false
	return inst
}
