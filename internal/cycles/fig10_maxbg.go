package cycles

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figure 10 / Theorem 4.1 (MAX version): a best response cycle for the
// MAX-(G)BG with 1 < alpha < 2:
//
//	G1: g buys ga    (5       -> 3+alpha)
//	G2: e buys ea    (4       -> 2+alpha)
//	G3: g deletes ga (3+alpha -> 4)
//	G4: e deletes ea (3+alpha -> 4)
//
// The drawing is not machine-readable; the 8-vertex base was reconstructed
// by search.Fig10Candidates, which enumerates all labeled trees (and
// unicyclic graphs) on {a..h}, keeps those matching every eccentricity
// value quoted in the proof, and requires all four moves to be best
// responses in the exhaustive MAX Buy Game. 120 tree bases qualify; the
// lexicographically first (by Prüfer order) is pinned here: the caterpillar
//
//	a-b-c-d with e, f, h attached to d and g attached to h,
//
// agents e and g owning no edges. TestFig10SearchReproduces re-derives it.

// Vertex labels of the Figure 10 construction.
const (
	f10a = iota
	f10b
	f10c
	f10d
	f10e
	f10f
	f10g
	f10h
)

var fig10Names = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

// Fig10Alpha is a rational edge price strictly inside (1, 2).
var Fig10Alpha = game.NewAlpha(3, 2)

// Fig10Start builds the pinned Figure 10 base network G1.
func Fig10Start() *graph.Graph {
	g := graph.New(8)
	g.AddEdge(f10a, f10b)
	g.AddEdge(f10b, f10c)
	g.AddEdge(f10c, f10d)
	g.AddEdge(f10d, f10e) // e owns nothing
	g.AddEdge(f10d, f10h)
	g.AddEdge(f10f, f10d)
	g.AddEdge(f10h, f10g) // g owns nothing
	return g
}

var fig10Steps = []Step{
	{Move: game.Move{Agent: f10g, Add: []int{f10a}}},
	{Move: game.Move{Agent: f10e, Add: []int{f10a}}},
	{Move: game.Move{Agent: f10g, Drop: []int{f10a}}},
	{Move: game.Move{Agent: f10e, Drop: []int{f10a}}},
}

// Fig10MaxGBG is the Figure 10 best response cycle in the Greedy Buy Game.
func Fig10MaxGBG() Instance {
	return Instance{
		Name:          "Fig10 MAX-GBG",
		Game:          game.NewGreedyBuy(game.Max, Fig10Alpha),
		Start:         Fig10Start,
		Steps:         fig10Steps,
		ClosesExactly: true,
		VertexNames:   fig10Names,
	}
}

// Fig10MaxBG is the same cycle in the unrestricted Buy Game (each move is a
// best response among arbitrary strategy changes, as the proof argues).
func Fig10MaxBG() Instance {
	return Instance{
		Name:          "Fig10 MAX-BG",
		Game:          game.NewBuy(game.Max, Fig10Alpha),
		Start:         Fig10Start,
		Steps:         fig10Steps,
		ClosesExactly: true,
		VertexNames:   fig10Names,
	}
}

// Fig10HostGraph is the Corollary 4.2 (MAX) host graph: G1 plus {a,g} and
// {a,e}.
func Fig10HostGraph() *graph.Graph {
	h := Fig10Start()
	h.AddEdge(f10a, f10g)
	h.AddEdge(f10a, f10e)
	return h
}
