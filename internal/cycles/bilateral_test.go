package cycles

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/graph"
)

func TestFig15SumBilateralCycle(t *testing.T) {
	if err := Fig15SumBilateral().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem51NotWeaklyAcyclic machine-checks Theorem 5.1 in full: the
// improving-move state space of the SUM bilateral game reachable from G0
// contains no stable network.
func TestTheorem51NotWeaklyAcyclic(t *testing.T) {
	gm := game.NewBilateral(game.Sum, Fig15Alpha)
	res, err := ExploreImproving(Fig15Start(), gm, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.StableReachable {
		t.Fatal("stable state reachable; Theorem 5.1 refuted?")
	}
	t.Logf("Theorem 5.1: %d reachable states, none stable", res.States)
}

// TestFig15CostValues re-derives cost values quoted in the proof of
// Theorem 5.1 (G0 paragraph; alpha/2 units are Cost.Halves).
func TestFig15CostValues(t *testing.T) {
	inst := Fig15SumBilateral()
	states := inst.States()
	gm := inst.Game
	s := game.NewScratch(11)
	check := func(state int, agent string, halves, dist int64) {
		t.Helper()
		v := indexOf(fig15Names, agent)
		c := gm.Cost(states[state], v, s)
		if c.Halves != halves || c.Dist != dist {
			t.Fatalf("G%d: cost(%s) = %v, want %d*(a/2)+%d", state, agent, c, halves, dist)
		}
	}
	// G0: d has cost 4*(alpha/2) + 17; a and c have 3*(alpha/2) + 20;
	// b has 2*(alpha/2) + 22.
	check(0, "d", 4, 17)
	check(0, "e", 4, 17)
	check(0, "a", 3, 20)
	check(0, "c", 3, 20)
	check(0, "b", 2, 22)
	// After a's deletion, a has 2*(alpha/2) + 25 (the proof's improving
	// move from 3a/2+20 since a/2 > 5).
	check(1, "a", 2, 25)
	// G1: b is a leaf on c. The paper quotes alpha/2 + 33, but the true
	// distance sum is 31 (paper typo: its own comparison values, e.g. b at
	// {f,g} costing 2*(alpha/2)+28, are consistent with 31, and all of the
	// proof's conclusions hold with 31 throughout 10 < alpha < 12).
	check(1, "b", 1, 31)
	check(1, "g", 1, 31)
	// G1: f has cost alpha/2 + 34; her move yields 2*(alpha/2) + 26.
	check(1, "f", 1, 34)
	// G2 (canonical, after b's buy): b has 2*(alpha/2) + 25, f 2a/2+26.
	check(2, "b", 2, 25)
	check(2, "f", 2, 26)
	// G2: e has 4*(alpha/2) + 18 and moves to 4*(alpha/2) + 17.
	check(2, "e", 4, 18)
}

// TestFig15BlockingExamples verifies two blocking claims from the proof of
// Theorem 5.1 in G0: agent d's move to {a,h,i} is blocked by a, and agent
// b's move to {d} is blocked by d.
func TestFig15BlockingExamples(t *testing.T) {
	g := Fig15Start()
	bl := game.NewBilateral(game.Sum, Fig15Alpha)
	s := game.NewScratch(11)
	// d: {c,e,h,i} -> {a,h,i}: drop c,e add a.
	m := game.Move{Agent: f15d, Drop: []int{f15c, f15e}, Add: []int{f15a}}
	if bs := bl.Blocks(g, m, s); len(bs) != 1 || bs[0] != f15a {
		t.Fatalf("d's move blocked by %v, want [a]", bs)
	}
	// b: {a,c} -> {d}: drop a,c add d.
	m = game.Move{Agent: f15b, Drop: []int{f15a, f15c}, Add: []int{f15d}}
	if bs := bl.Blocks(g, m, s); len(bs) != 1 || bs[0] != f15d {
		t.Fatalf("b's move blocked by %v, want [d]", bs)
	}
}

func TestFig16MaxBilateralCycle(t *testing.T) {
	if err := Fig16MaxBilateral().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFig16CostValues re-derives every cost value quoted in the proof of
// Theorem 5.2.
func TestFig16CostValues(t *testing.T) {
	inst := Fig16MaxBilateral()
	states := inst.States()
	gm := inst.Game
	s := game.NewScratch(8)
	check := func(state int, agent string, halves, dist int64) {
		t.Helper()
		v := indexOf(fig16Names, agent)
		c := gm.Cost(states[state], v, s)
		if c.Halves != halves || c.Dist != dist {
			t.Fatalf("G%d: cost(%s) = %v, want %d*(a/2)+%d", state+1, agent, c, halves, dist)
		}
	}
	// G1: a costs a/2+5, e costs 3a/2+4; after a's buy: a 2a/2+2, e 4a/2+2.
	check(0, "a", 1, 5)
	check(0, "e", 3, 4)
	check(1, "a", 2, 2)
	check(1, "e", 4, 2)
	// G2: c costs 2a/2+3; after deletion a/2+4. g costs 2a/2+3 in G3; b
	// costs 3a/2+3 in G3.
	check(1, "c", 2, 3)
	check(2, "c", 1, 4)
	check(2, "g", 2, 3)
	check(2, "b", 3, 3)
	// G3: e costs 4a/2+3; after deleting ea: 3a/2+4.
	check(2, "e", 4, 3)
	check(3, "e", 3, 4)
	// G4: c costs a/2+5; after buying cd: 2a/2+3 (back in G1).
	check(3, "c", 1, 5)
}

// TestFig16BlockingExamples verifies the blocking claims in the proof of
// Theorem 5.2: in G2, c's swap to {e} is blocked by e; in G3, e's move to
// {b,d,h} is blocked by b and to {d,g,h} by g.
func TestFig16BlockingExamples(t *testing.T) {
	inst := Fig16MaxBilateral()
	states := inst.States()
	bl := inst.Game.(*game.Bilateral)
	s := game.NewScratch(8)
	m := game.Move{Agent: f16c, Drop: []int{f16b, f16d}, Add: []int{f16e}}
	if bs := bl.Blocks(states[1], m, s); len(bs) != 1 || bs[0] != f16e {
		t.Fatalf("G2: c's move to {e} blocked by %v, want [e]", bs)
	}
	m = game.Move{Agent: f16e, Drop: []int{f16a, f16f}, Add: []int{f16b}}
	if bs := bl.Blocks(states[2], m, s); len(bs) != 1 || bs[0] != f16b {
		t.Fatalf("G3: e's move to {b,d,h} blocked by %v, want [b]", bs)
	}
	m = game.Move{Agent: f16e, Drop: []int{f16a, f16f}, Add: []int{f16g}}
	if bs := bl.Blocks(states[2], m, s); len(bs) != 1 || bs[0] != f16g {
		t.Fatalf("G3: e's move to {d,g,h} blocked by %v, want [g]", bs)
	}
}

// TestFig16Eccentricities checks the eccentricity profile used throughout
// the proof of Theorem 5.2.
func TestFig16Eccentricities(t *testing.T) {
	g := Fig16Start()
	want := map[string]int32{"a": 5, "b": 4, "c": 3, "e": 4, "g": 3}
	ecc := g.Eccentricities()
	for name, w := range want {
		if ecc[indexOf(fig16Names, name)] != w {
			t.Fatalf("ecc(%s) = %d, want %d", name, ecc[indexOf(fig16Names, name)], w)
		}
	}
	_ = graph.Unreachable
}

func indexOf(names []string, s string) int {
	for i, n := range names {
		if n == s {
			return i
		}
	}
	panic("unknown vertex " + s)
}
