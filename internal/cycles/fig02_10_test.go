package cycles

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/graph"
	"ncg/internal/search"
)

func TestFig2MaxSGCycle(t *testing.T) {
	if err := Fig2MaxSG().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFig2SearchReproduces re-runs the rotation-orbit search and confirms
// the pinned instance is its first result and that all candidates witness
// the theorem.
func TestFig2SearchReproduces(t *testing.T) {
	cands := search.Fig2Candidates()
	if len(cands) != 18 {
		t.Fatalf("search found %d candidates, want 18", len(cands))
	}
	if !cands[0].EqualUnowned(Fig2Start()) {
		t.Fatalf("pinned instance is not the first candidate:\n%v\n%v", cands[0], Fig2Start())
	}
}

// TestFig2EccentricityProfile checks the cost profile stated in the proof
// of Theorem 2.16: a1, a3, b3, c3 have cost 3, everyone else cost 2.
func TestFig2EccentricityProfile(t *testing.T) {
	ecc := Fig2Start().Eccentricities()
	for v, e := range ecc {
		want := int32(2)
		switch v {
		case f2a1, f2a3, f2b3, f2c3:
			want = 3
		}
		if e != want {
			t.Fatalf("ecc(%s) = %d, want %d", fig2Names[v], e, want)
		}
	}
}

// TestFig2StatesIsomorphic confirms "G2 is isomorphic to G1" and "G3 is
// isomorphic to G1" from the proof.
func TestFig2StatesIsomorphic(t *testing.T) {
	states := Fig2MaxSG().States()
	if !graph.Isomorphic(states[0], states[1]) || !graph.Isomorphic(states[0], states[2]) {
		t.Fatal("cycle states are not pairwise isomorphic")
	}
}

func TestFig10MaxGBGCycle(t *testing.T) {
	if err := Fig10MaxGBG().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFig10MaxBGCycle(t *testing.T) {
	if err := Fig10MaxBG().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFig10CostValues re-derives the cost values quoted in the proof of
// Theorem 4.1 (MAX).
func TestFig10CostValues(t *testing.T) {
	inst := Fig10MaxGBG()
	states := inst.States()
	gm := inst.Game
	s := game.NewScratch(8)
	check := func(state int, agent int, halves, dist int64) {
		t.Helper()
		c := gm.Cost(states[state], agent, s)
		if c.Halves != halves || c.Dist != dist {
			t.Fatalf("G%d: cost(%s) = %v, want %d*(a/2)+%d",
				state+1, fig10Names[agent], c, halves, dist)
		}
	}
	check(0, f10g, 0, 5) // g costs 5 in G1
	check(1, f10g, 2, 3) // 3+alpha after buying ga
	check(1, f10e, 0, 4) // e costs 4 in G2
	check(2, f10e, 2, 2) // 2+alpha after buying ea
	check(2, f10g, 2, 3) // g costs 3+alpha in G3
	check(3, f10g, 0, 4) // 4 after deleting ga
	check(3, f10e, 2, 3) // e costs 3+alpha in G4
	check(4, f10e, 0, 4) // 4 after deleting ea, back in G1
}

// TestFig10SearchReproduces re-runs the tree enumeration and confirms the
// pinned base is its first result.
func TestFig10SearchReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("search takes ~100ms but exercises 8^6 trees")
	}
	cands := search.Fig10Candidates(false, 1)
	if len(cands) != 1 {
		t.Fatal("search found no candidate")
	}
	if !cands[0].Equal(Fig10Start()) {
		t.Fatalf("pinned instance is not the first candidate:\n%v\n%v", cands[0], Fig10Start())
	}
}

// TestCorollary42MaxRefuted documents the MAX analogue of the Corollary 4.2
// erratum: on the host graph G1 + {ag, ae}, stable states are reachable via
// improving moves (other agents profit from deleting base edges once the
// shortcuts exist). search.Fig10HostCandidates further shows NO tree or
// unicyclic base compatible with the proof's cost values avoids this, under
// any edge-ownership assignment.
func TestCorollary42MaxRefuted(t *testing.T) {
	for _, gm := range []game.Game{
		game.NewGreedyBuyHost(game.Max, Fig10Alpha, Fig10HostGraph()),
		game.NewBuyHost(game.Max, Fig10Alpha, Fig10HostGraph()),
	} {
		res, err := ExploreImproving(Fig10Start(), gm, 100000)
		if err != nil {
			t.Fatalf("%s: %v", gm.Name(), err)
		}
		if !res.StableReachable {
			t.Fatalf("%s: expected reachable stable state (documented erratum)", gm.Name())
		}
		t.Logf("%s: %d reachable states incl. stable ones", gm.Name(), res.States)
	}
}

// TestCorollary42MaxExhaustivelyUnrepairable confirms the search result
// that no Fig-10-compatible tree base under any ownership yields
// stable-free host dynamics (slow; skipped in -short).
func TestCorollary42MaxExhaustivelyUnrepairable(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 120-base x ownership sweep")
	}
	if got := search.Fig10HostCandidates(false, 1); len(got) != 0 {
		t.Fatalf("unexpected host-valid base found: %v", got[0])
	}
}
