package cycles

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"ncg/internal/game"
	"ncg/internal/graph"
	"ncg/internal/state"
)

// ReachResult summarizes an exhaustive exploration of the improving-move
// state graph from an initial network.
// When the exploration aborts at its state cap, States is exactly
// maxStates+1 and the stability flags are reset to their initial values
// (StableReachable false, BestResponseClosed true) — only States carries
// information about an aborted run; on a completed exploration every
// field is exact.
type ReachResult struct {
	// States is the number of distinct states reachable from the start
	// (including the start itself) via sequences of improving moves.
	States int
	// StableReachable reports whether any reachable state is stable. If
	// false, the game is provably not weakly acyclic: no sequence of
	// improving moves starting at the initial network can ever converge.
	StableReachable bool
	// BestResponseClosed reports whether restricting agents to best
	// responses also reaches no stable state (only meaningful when
	// exploreBest was requested).
	BestResponseClosed bool
}

// ExploreOptions parameterizes Explore.
type ExploreOptions struct {
	// MaxStates aborts the exploration with an error once more distinct
	// states than this are encountered, so callers control the blow-up.
	MaxStates int
	// BestResponse restricts expansion to best-response moves.
	BestResponse bool
	// Workers fans the frontier expansion of each depth level out over
	// this many goroutines (0 = GOMAXPROCS). Results are identical at any
	// worker count: states are deduplicated in the shared intern store and
	// every level ends with a barrier and a canonical reordering.
	Workers int
	// Progress, if non-nil, runs after every completed depth level (on the
	// calling goroutine), for long explorations that want to report.
	Progress func(ExploreProgress)
	// Cancel, if non-nil, aborts the exploration at the next level barrier
	// once closed, returning ErrCancelled — the graceful-shutdown seam of
	// long explorations (wired to the interrupt context by cmd/ncgcycle).
	Cancel <-chan struct{}
}

// ErrCancelled reports an exploration stopped by its Cancel channel.
var ErrCancelled = errors.New("cycles: exploration cancelled")

// ExploreProgress is the per-level report of an exploration.
type ExploreProgress struct {
	// Level is the completed BFS depth (1 after the start state's moves).
	Level int
	// States is the number of distinct states interned so far.
	States int
	// Frontier is the number of fresh states awaiting expansion.
	Frontier int
	// Bytes is the intern-arena footprint so far.
	Bytes int64
}

// ExploreImproving exhaustively expands every improving move of every agent
// from start, deduplicating states (ownership-aware when the game requires
// it), and reports whether a stable state is reachable. It fails with an
// error if more than maxStates distinct states are encountered, so callers
// control the blow-up. This machine-checks the non-weak-acyclicity claims
// of Corollaries 3.6 and 4.2 in their strongest form.
func ExploreImproving(start *graph.Graph, gm game.Game, maxStates int) (ReachResult, error) {
	return Explore(start, gm, ExploreOptions{MaxStates: maxStates, Workers: 1})
}

// ExploreBestResponse is ExploreImproving restricted to best-response
// moves; if no stable state is reachable, the game is not weakly acyclic
// under best response from this start (Theorem 3.3's notion).
func ExploreBestResponse(start *graph.Graph, gm game.Game, maxStates int) (ReachResult, error) {
	return Explore(start, gm, ExploreOptions{MaxStates: maxStates, BestResponse: true, Workers: 1})
}

// expWorker is the per-goroutine arena of the frontier expansion: a decode
// target with an attached incremental fingerprint, game scratch, a
// per-state distance oracle, encode and decode buffers, and the fresh
// states found this level.
type expWorker struct {
	g      *graph.Graph
	fp     state.Fingerprint
	s      *game.Scratch
	orc    *stateOracle
	enc    []uint64
	dec    []uint64
	moves  []game.Move
	fresh  []state.Ref
	stable bool
}

// stateOracle serves exact all-pairs distances of the worker's current
// state, rebuilt once per expanded state with the batched bit-parallel BFS
// kernel (64 sources per pass). Installed as the scratch's game.DistOracle
// it lets the delta scans score additions searchlessly and prune hopeless
// swap targets — the same acceleration the dynamics engine's incremental
// cache provides during process runs.
type stateOracle struct {
	n     int
	d     []int32
	res   []graph.BFSResult
	batch *graph.BatchBFSScratch
}

func newStateOracle(n int) *stateOracle {
	return &stateOracle{
		n:     n,
		d:     make([]int32, n*n),
		res:   make([]graph.BFSResult, n),
		batch: graph.NewBatchBFSScratch(n),
	}
}

func (o *stateOracle) build(g *graph.Graph) { g.AllSourcesBFSFlat(o.d, o.res, o.batch) }

// Row implements game.DistOracle.
func (o *stateOracle) Row(v int) []int32 { return o.d[v*o.n : (v+1)*o.n] }

// Explore runs the exhaustive reachability analysis as a level-synchronous
// parallel frontier expansion over an interned state store: every distinct
// state is stored once as a compact canonical encoding (no graph clones),
// successor states are identified by an incrementally maintained Zobrist
// fingerprint with byte-exact verification, and each depth level of the
// state graph is expanded by a worker pool over a sharded intern table.
func Explore(start *graph.Graph, gm game.Game, opt ExploreOptions) (ReachResult, error) {
	n := start.N()
	owned := gm.OwnershipMatters()
	maxStates := opt.MaxStates
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if game.PreferNaiveScan(gm, start) {
		// Small networks and MAX-swap trees: the reference full-BFS scans
		// enumerate identical moves in identical order and beat the delta
		// machinery's bookkeeping in this regime (same switch the dynamics
		// runner makes).
		gm = game.Naive(gm)
	}
	useOracle := !game.IsNaive(gm)
	tables := state.NewTables(n)
	shards := 1
	if workers > 1 {
		shards = 4 * workers
	}
	store := state.NewStore(n, owned, shards)

	ws := make([]*expWorker, workers)
	for i := range ws {
		ws[i] = &expWorker{g: graph.New(n), s: game.NewScratch(n)}
		ws[i].fp.Attach(tables, ws[i].g)
		if useOracle {
			ws[i].orc = newStateOracle(n)
			ws[i].s.SetDistOracle(ws[i].orc)
		}
	}

	// Intern the start state. Like the states the store hands back, the
	// worker copy is canonical; for ownership-blind games enumeration is
	// ownership-invariant, so expanding representatives is exact.
	w0 := ws[0]
	w0.g.CopyFrom(start)
	w0.fp.Init(tables, w0.g)
	w0.enc = store.Encode(w0.g, w0.enc[:0])
	rootRef, _ := store.Intern(w0.fp.Hash(owned), w0.enc)
	res := ReachResult{States: 1, BestResponseClosed: true}

	var exceeded atomic.Bool
	expand := func(w *expWorker, ref state.Ref) {
		h, dec := store.Snapshot(ref, w.dec[:0])
		w.dec = dec
		store.LoadEncoding(w.g, dec)
		w.fp.ForceHash(owned, h)
		if w.orc != nil {
			// One batched all-sources pass gives the scans exact distances
			// of this state; moves applied below are interned, never
			// scanned, so the oracle stays valid for the whole expansion.
			w.orc.build(w.g)
		}
		stable := true
		for u := 0; u < n; u++ {
			// Scans probe candidates by apply/undo pairs that cancel in the
			// fingerprint; detaching the observer for the enumeration skips
			// those wasted updates.
			w.g.SetObserver(nil)
			if opt.BestResponse {
				w.moves, _ = gm.BestMoves(w.g, u, w.s, w.moves[:0])
			} else {
				w.moves = gm.ImprovingMoves(w.g, u, w.s, w.moves[:0])
			}
			w.g.SetObserver(&w.fp)
			if len(w.moves) > 0 {
				stable = false
			}
			for _, m := range w.moves {
				ap := game.Apply(w.g, m)
				w.enc = store.Encode(w.g, w.enc[:0])
				ref2, fresh := store.Intern(w.fp.Hash(owned), w.enc)
				ap.Undo()
				if fresh {
					w.fresh = append(w.fresh, ref2)
					if store.Count() > maxStates {
						exceeded.Store(true)
						return
					}
				}
			}
		}
		if stable {
			w.stable = true
		}
	}

	frontier := []state.Ref{rootRef}
	level := 0
	for len(frontier) > 0 {
		select {
		case <-opt.Cancel:
			return ReachResult{States: res.States, BestResponseClosed: true}, ErrCancelled
		default:
		}
		if workers == 1 {
			for _, ref := range frontier {
				expand(w0, ref)
				if exceeded.Load() {
					break
				}
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for _, w := range ws {
				wg.Add(1)
				go func(w *expWorker) {
					defer wg.Done()
					for !exceeded.Load() {
						i := int(next.Add(1)) - 1
						if i >= len(frontier) {
							return
						}
						expand(w, frontier[i])
					}
				}(w)
			}
			wg.Wait()
		}
		res.States = store.Count()
		frontier = frontier[:0]
		for _, w := range ws {
			frontier = append(frontier, w.fresh...)
			w.fresh = w.fresh[:0]
			if w.stable {
				// Folded even when this level aborts: a completed expansion
				// of a stable state counts as "expanded before the abort"
				// (a stable state interns nothing, so it can never be the
				// expansion that trips the cap).
				res.StableReachable = true
				res.BestResponseClosed = false
				w.stable = false
			}
		}
		if exceeded.Load() {
			// Workers may intern a handful of states past the cap before
			// observing the abort flag, and which expansions completed on
			// the aborting level is scheduling-dependent; clamp the count
			// and reset the stability flags so an aborted result is
			// deterministic in every field at any worker count.
			return ReachResult{States: maxStates + 1, BestResponseClosed: true},
				errCapExceeded(maxStates)
		}
		if workers > 1 {
			// Deterministic state numbering: with several workers the
			// intern order within a level is scheduling-dependent, so the
			// next frontier is reordered by canonical encoding.
			sortRefs(store, frontier)
		}
		level++
		if opt.Progress != nil {
			opt.Progress(ExploreProgress{
				Level:    level,
				States:   res.States,
				Frontier: len(frontier),
				Bytes:    store.Bytes(),
			})
		}
	}
	return res, nil
}

// errCapExceeded is the exploration-abort error of both the interned
// explorer and the reference implementation in the parity tests.
func errCapExceeded(maxStates int) error {
	return fmt.Errorf("cycles: state space exceeds %d states", maxStates)
}

// sortRefs orders refs by their canonical encodings (lexicographically by
// word), a total order on distinct states.
func sortRefs(store *state.Store, refs []state.Ref) {
	sort.Slice(refs, func(i, j int) bool {
		return slices.Compare(store.Encoding(refs[i]), store.Encoding(refs[j])) < 0
	})
}

// FoundCycle is a best-response cycle discovered by FindBestResponseCycle:
// Moves[i] transforms States[i] into States[i+1], and the final move leads
// back to States[0]. For games whose state ignores ownership, States carry
// the store's canonical orientation (smaller endpoint owns), which such
// games never consult; the cycle closes under the game's own state
// equality.
type FoundCycle struct {
	States []*graph.Graph
	Moves  []game.Move
}

// FindBestResponseCycle searches the best-response state graph reachable
// from start for a directed cycle and returns the first one found (nil if
// the explored space — capped at maxStates — is acyclic). A non-nil result
// proves the game admits a best response cycle from this initial network.
// Visited states live in the interned state store — one compact encoding
// each, no clones — and are recognized by fingerprint with byte
// verification.
func FindBestResponseCycle(start *graph.Graph, gm game.Game, maxStates int) *FoundCycle {
	fc, _ := SearchBestResponseCycle(start, gm, maxStates)
	return fc
}

// SearchBestResponseCycle is FindBestResponseCycle reporting, in addition,
// the number of distinct states interned before the search stopped — the
// campaign spine's per-instance work measure. The search is deterministic,
// so the count is exact: the full reachable-space size when the search
// completes below the cap. An aborted search stops descending once the
// cap is crossed but still interns the in-progress expansions' remaining
// successors on the way out (unchanged from FindBestResponseCycle's
// long-standing behaviour), so the reported count may overshoot the cap.
func SearchBestResponseCycle(start *graph.Graph, gm game.Game, maxStates int) (*FoundCycle, int) {
	n := start.N()
	owned := gm.OwnershipMatters()
	tables := state.NewTables(n)
	store := state.NewStore(n, owned, 1)
	g := start.Clone()
	var fp state.Fingerprint
	fp.Attach(tables, g)
	defer g.SetObserver(nil)
	s := game.NewScratch(n)

	var enc []uint64
	intern := func() (state.Ref, bool) {
		enc = store.Encode(g, enc[:0])
		return store.Intern(fp.Hash(owned), enc)
	}
	rootRef, _ := intern()
	count := 1
	// Single-shard refs are dense, so per-state flags live in a slice.
	onStack := []bool{false}

	var stackRefs []state.Ref
	var stackMoves []game.Move
	var found *FoundCycle

	var dfs func(ref state.Ref)
	dfs = func(ref state.Ref) {
		if found != nil || count > maxStates {
			return
		}
		onStack[ref] = true
		stackRefs = append(stackRefs, ref)
		var moves []game.Move
		for u := 0; u < n && found == nil; u++ {
			// Clone the batch: the recursive dfs below rescans with the
			// shared scratch, which reuses the enumeration move pool.
			moves, _ = gm.BestMoves(g, u, s, moves[:0])
			moves = game.CloneMoves(moves)
			for _, m := range moves {
				ap := game.Apply(g, m)
				ref2, fresh := intern()
				switch {
				case fresh:
					count++
					onStack = append(onStack, false)
					stackMoves = append(stackMoves, m)
					dfs(ref2)
					stackMoves = stackMoves[:len(stackMoves)-1]
				case onStack[ref2]:
					// Cycle: from ref2 around the stack back.
					first := 0
					for i, r := range stackRefs {
						if r == ref2 {
							first = i
							break
						}
					}
					fc := &FoundCycle{}
					for i := first; i < len(stackRefs); i++ {
						sg := graph.New(n)
						store.Decode(stackRefs[i], sg)
						fc.States = append(fc.States, sg)
					}
					fc.Moves = append(fc.Moves, stackMoves[first:]...)
					fc.Moves = append(fc.Moves, m)
					found = fc
				}
				ap.Undo()
				if found != nil {
					break
				}
			}
		}
		onStack[ref] = false
		stackRefs = stackRefs[:len(stackRefs)-1]
	}
	dfs(rootRef)
	return found, count
}
