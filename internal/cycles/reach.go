package cycles

import (
	"fmt"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// ReachResult summarizes an exhaustive exploration of the improving-move
// state graph from an initial network.
type ReachResult struct {
	// States is the number of distinct states reachable from the start
	// (including the start itself) via sequences of improving moves.
	States int
	// StableReachable reports whether any reachable state is stable. If
	// false, the game is provably not weakly acyclic: no sequence of
	// improving moves starting at the initial network can ever converge.
	StableReachable bool
	// BestResponseClosed reports whether restricting agents to best
	// responses also reaches no stable state (only meaningful when
	// exploreBest was requested).
	BestResponseClosed bool
}

// ExploreImproving exhaustively expands every improving move of every agent
// from start, deduplicating states (ownership-aware when the game requires
// it), and reports whether a stable state is reachable. It fails with an
// error if more than maxStates distinct states are encountered, so callers
// control the blow-up. This machine-checks the non-weak-acyclicity claims
// of Corollaries 3.6 and 4.2 in their strongest form.
func ExploreImproving(start *graph.Graph, gm game.Game, maxStates int) (ReachResult, error) {
	return explore(start, gm, maxStates, false)
}

// ExploreBestResponse is ExploreImproving restricted to best-response
// moves; if no stable state is reachable, the game is not weakly acyclic
// under best response from this start (Theorem 3.3's notion).
func ExploreBestResponse(start *graph.Graph, gm game.Game, maxStates int) (ReachResult, error) {
	return explore(start, gm, maxStates, true)
}

// FoundCycle is a best-response cycle discovered by FindBestResponseCycle:
// Moves[i] transforms States[i] into States[i+1], and the final move leads
// back to States[0].
type FoundCycle struct {
	States []*graph.Graph
	Moves  []game.Move
}

// FindBestResponseCycle searches the best-response state graph reachable
// from start for a directed cycle and returns the first one found (nil if
// the explored space — capped at maxStates — is acyclic). A non-nil result
// proves the game admits a best response cycle from this initial network.
func FindBestResponseCycle(start *graph.Graph, gm game.Game, maxStates int) *FoundCycle {
	owned := gm.OwnershipMatters()
	hash := func(g *graph.Graph) uint64 {
		if owned {
			return g.Hash()
		}
		return g.HashUnowned()
	}
	equal := func(a, b *graph.Graph) bool {
		if owned {
			return a.Equal(b)
		}
		return a.EqualUnowned(b)
	}
	type node struct {
		g       *graph.Graph
		onStack bool
		done    bool
	}
	nodes := map[uint64][]*node{}
	lookup := func(g *graph.Graph) *node {
		for _, nd := range nodes[hash(g)] {
			if equal(nd.g, g) {
				return nd
			}
		}
		return nil
	}
	count := 0
	s := game.NewScratch(start.N())

	var stackStates []*graph.Graph
	var stackMoves []game.Move
	var found *FoundCycle

	var dfs func(g *graph.Graph, nd *node)
	dfs = func(g *graph.Graph, nd *node) {
		if found != nil || count > maxStates {
			return
		}
		nd.onStack = true
		stackStates = append(stackStates, nd.g)
		var moves []game.Move
		for u := 0; u < g.N() && found == nil; u++ {
			// Clone the batch: the recursive dfs below rescans with the
			// shared scratch, which reuses the enumeration move pool.
			moves, _ = gm.BestMoves(g, u, s, moves[:0])
			moves = game.CloneMoves(moves)
			for _, m := range moves {
				mc := m
				ap := game.Apply(g, mc)
				next := lookup(g)
				switch {
				case next == nil:
					count++
					nn := &node{g: g.Clone()}
					nodes[hash(g)] = append(nodes[hash(g)], nn)
					stackMoves = append(stackMoves, mc)
					dfs(g, nn)
					stackMoves = stackMoves[:len(stackMoves)-1]
				case next.onStack:
					// Cycle: from next.g around the stack back.
					start := 0
					for i, sg := range stackStates {
						if sg == next.g {
							start = i
							break
						}
					}
					fc := &FoundCycle{}
					for i := start; i < len(stackStates); i++ {
						fc.States = append(fc.States, stackStates[i].Clone())
					}
					fc.Moves = append(fc.Moves, stackMoves[start:]...)
					fc.Moves = append(fc.Moves, mc)
					found = fc
				}
				ap.Undo()
				if found != nil {
					break
				}
			}
		}
		nd.onStack = false
		nd.done = true
		stackStates = stackStates[:len(stackStates)-1]
	}
	root := &node{g: start.Clone()}
	nodes[hash(start)] = append(nodes[hash(start)], root)
	count++
	g := start.Clone()
	dfs(g, root)
	return found
}

func explore(start *graph.Graph, gm game.Game, maxStates int, bestOnly bool) (ReachResult, error) {
	owned := gm.OwnershipMatters()
	hash := func(g *graph.Graph) uint64 {
		if owned {
			return g.Hash()
		}
		return g.HashUnowned()
	}
	equal := func(a, b *graph.Graph) bool {
		if owned {
			return a.Equal(b)
		}
		return a.EqualUnowned(b)
	}
	seen := map[uint64][]*graph.Graph{}
	lookup := func(g *graph.Graph) bool {
		for _, h := range seen[hash(g)] {
			if equal(h, g) {
				return true
			}
		}
		return false
	}
	insert := func(g *graph.Graph) {
		h := hash(g)
		seen[h] = append(seen[h], g)
	}

	res := ReachResult{BestResponseClosed: true}
	s := game.NewScratch(start.N())
	queue := []*graph.Graph{start.Clone()}
	insert(queue[0])
	res.States = 1
	var moves []game.Move
	for len(queue) > 0 {
		g := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		stable := true
		for u := 0; u < g.N(); u++ {
			moves = moves[:0]
			if bestOnly {
				moves, _ = gm.BestMoves(g, u, s, moves)
			} else {
				moves = gm.ImprovingMoves(g, u, s, moves)
			}
			if len(moves) > 0 {
				stable = false
			}
			for _, m := range moves {
				ap := game.Apply(g, m)
				if !lookup(g) {
					res.States++
					if res.States > maxStates {
						ap.Undo()
						return res, fmt.Errorf("cycles: state space exceeds %d states", maxStates)
					}
					next := g.Clone()
					insert(next)
					queue = append(queue, next)
				}
				ap.Undo()
			}
		}
		if stable {
			res.StableReachable = true
			res.BestResponseClosed = false
		}
	}
	return res, nil
}
