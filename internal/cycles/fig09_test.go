package cycles

import (
	"testing"

	"ncg/internal/game"
)

func TestFig9SumGBGCycle(t *testing.T) {
	if err := Fig9SumGBG().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFig9SumBGCycle(t *testing.T) {
	if err := Fig9SumBG().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCorollary42SumHostGraph(t *testing.T) {
	if err := Fig9SumGBGHost().Verify(); err != nil {
		t.Fatal(err)
	}
	if err := Fig9SumBGHost().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCorollary42SumRefuted documents a negative reproduction finding: the
// paper's Corollary 4.2 (SUM) instance does NOT witness
// non-weak-acyclicity. Exhaustive exploration of the improving-move state
// space from G1 on the host graph reaches stable networks, because the
// owner of edge {d,e} can profitably delete it once {b,f} exists (the
// proof's "exactly one improving move per state" claim fails in G3 and
// G6). The best-response cycle itself (Theorem 4.1) is unaffected.
func TestCorollary42SumRefuted(t *testing.T) {
	gm := game.NewGreedyBuyHost(game.Sum, Fig9Alpha, Fig9HostGraph())
	res, err := ExploreImproving(Fig9Start(), gm, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StableReachable {
		t.Fatalf("expected a reachable stable state (documented paper erratum); states=%d", res.States)
	}
	if res.States != 17 {
		t.Fatalf("reachable states = %d, want 17", res.States)
	}
	t.Logf("paper erratum confirmed: %d reachable states include stable networks", res.States)
}

// TestFig9BestResponseClosedWithinCycleAgents verifies the weaker property
// that does hold: restricting play to the cycle's own trajectory, each
// designated move is a best response and the trajectory never stabilizes
// (it revisits G1 forever). This is exactly Theorem 4.1.
func TestFig9BestResponseClosedWithinCycleAgents(t *testing.T) {
	inst := Fig9SumGBG()
	states := inst.States()
	if !states[len(states)-1].Equal(states[0]) {
		t.Fatal("trajectory does not revisit G1")
	}
}

// TestFig9CostValues re-derives every cost value quoted in the proof of
// Theorem 4.1 (SUM version).
func TestFig9CostValues(t *testing.T) {
	inst := Fig9SumGBG()
	states := inst.States()
	gm := inst.Game
	s := game.NewScratch(7)
	check := func(stateIdx, agent int, wantHalves, wantDist int64) {
		t.Helper()
		c := gm.Cost(states[stateIdx], agent, s)
		if c.Halves != wantHalves || c.Dist != wantDist {
			t.Fatalf("G%d: cost(%s) = %v, want %d edges + dist %d",
				stateIdx+1, fig9Names[agent], c, wantHalves/2, wantDist)
		}
	}
	// G1: g has cost alpha + 21 and her swap yields alpha + 15 (in G2).
	check(0, f9g, 2, 21)
	check(1, f9g, 2, 15)
	// G2: f has cost 19 (owns nothing); buying fb gives 11 + alpha (G3).
	check(1, f9f, 0, 19)
	check(2, f9f, 2, 11)
	// G3: c has cost 9 + alpha; deleting cb gives 16 (G4).
	check(2, f9c, 2, 9)
	check(3, f9c, 0, 16)
	// G5: c mirrors f's G2 situation (dist 19, no edges); buying cb gives
	// 11 + alpha (G6).
	check(4, f9c, 0, 19)
	check(5, f9c, 2, 11)
	// G6: f mirrors c's G3 situation (9 + alpha); deleting fb gives 16
	// back in G1.
	check(5, f9f, 2, 9)
	check(6, f9f, 0, 16)
}

func TestFig9PathShapes(t *testing.T) {
	inst := Fig9SumGBG()
	states := inst.States()
	// G1 is a path of length 6 with g as one end.
	if states[0].Diameter() != 6 || states[0].Degree(f9g) != 1 {
		t.Fatalf("G1 is not a 6-path ending in g: %v", states[0])
	}
	// G4 is again a path of length 6 with g at an end (a-b-f-e-d-c-g).
	if states[3].Diameter() != 6 || states[3].Degree(f9g) != 1 {
		t.Fatalf("G4 is not a 6-path ending in g: %v", states[3])
	}
	// And the cycle closes exactly.
	if !states[6].Equal(states[0]) {
		t.Fatal("cycle does not close")
	}
}
