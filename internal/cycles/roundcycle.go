package cycles

import (
	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/graph"
)

// SearchRoundCycle plays the simultaneous-move round process of cfg from
// start (which is left untouched) and, when the played trajectory revisits a
// state, reconstructs the repeating segment as a FoundCycle. The second
// return is the number of committed moves, the round analogue of the state
// count of SearchBestResponseCycle. A nil FoundCycle means the run converged
// or hit its step bound without repeating a state.
//
// Unlike the exhaustive best-response search, this witnesses one concrete
// trajectory: cfg.Seed and the Rounds activation/collision policy select it,
// and different seeds may converge where others oscillate. cfg.DetectCycles
// is forced on; a caller-provided OnStep still runs.
//
// The returned states are the actually-played networks (no canonical
// re-orientation). Moves[i] applied to States[i] yields States[i+1], and the
// final move closes the loop under the game's state equality. Each move was
// a best response against its round's opening snapshot — mid-round moves
// need not improve on their immediate predecessor state, because earlier
// commits of the same round already changed it.
func SearchRoundCycle(start *graph.Graph, cfg dynamics.Config) (*FoundCycle, int) {
	if _, ok := cfg.Schedule.(dynamics.Rounds); !ok {
		panic("cycles: SearchRoundCycle requires a dynamics.Rounds schedule")
	}
	cfg.DetectCycles = true
	var moves []game.Move
	prev := cfg.OnStep
	cfg.OnStep = func(step, mover int, mv game.Move, g graph.Store) {
		// The move is a private copy the callback may retain.
		moves = append(moves, mv)
		if prev != nil {
			prev(step, mover, mv, g)
		}
	}
	// cfg.Backend picks the representation of the played copy; start stays
	// dense either way (the replay below reconstructs states densely for
	// the FoundCycle). Both backends play bit-identical trajectories.
	var work graph.Store
	if cfg.Backend.Resolve(start.N(), cfg.Oracle) == dynamics.BackendSparse {
		work = graph.NewSparseFrom(start)
	} else {
		work = start.Clone()
	}
	res := dynamics.Run(work, cfg)
	if !res.Cycled {
		return nil, res.Steps
	}
	// The state after the final move equals the state after move `pre`;
	// replay the prefix silently, then record the cycle's states.
	pre := res.Steps - res.CycleLen
	replay := start.Clone()
	for _, mv := range moves[:pre] {
		game.ApplyMove(replay, mv)
	}
	fc := &FoundCycle{
		States: make([]*graph.Graph, 0, res.CycleLen),
		Moves:  make([]game.Move, 0, res.CycleLen),
	}
	for _, mv := range moves[pre:res.Steps] {
		fc.States = append(fc.States, replay.Clone())
		fc.Moves = append(fc.Moves, mv)
		game.ApplyMove(replay, mv)
	}
	return fc, res.Steps
}
