package cycles

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figure 15 / Theorem 5.1: the SUM bilateral equal-split Buy Game is not
// weakly acyclic, for 10 < alpha < 12. The construction (all strategy sets
// are stated explicitly in the proof): 11 agents a..e plus leaves f (on a),
// g (on c), h, i (on d), j, k (on e); neighbourhoods
//
//	N(a) = {b, e, f},  N(b) = {a, c},  N(c) = {b, d, g},
//	N(d) = {c, e, h, i},  N(e) = {a, d, j, k}.
//
// Cycle of three (isomorphism classes of) states:
//
//	G0: a and c are unhappy; their only feasible improving moves delete
//	    their edge towards b (-> iso G1).
//	G1: b, f, g are unhappy; all their feasible improving moves create one
//	    edge inside {b,f,g} (-> iso G2).
//	G2: only e is unhappy; her unique feasible improving move swaps her
//	    edge at a for one at f (-> iso G0).
//
// Because every feasible improving move of every agent leads isomorphically
// to the next state, no sequence of improving moves can ever stabilize.

// Vertex labels of the Figure 15 construction.
const (
	f15a = iota
	f15b
	f15c
	f15d
	f15e
	f15f
	f15g
	f15h
	f15i
	f15j
	f15k
)

var fig15Names = []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"}

// Fig15Alpha is a rational edge price strictly inside (10, 12).
var Fig15Alpha = game.AlphaInt(11)

// Fig15Start builds the Figure 15 network G0. Edge ownership is
// bookkeeping only (the bilateral game splits costs by incidence).
func Fig15Start() *graph.Graph {
	g := graph.New(11)
	g.AddEdge(f15a, f15b)
	g.AddEdge(f15a, f15e)
	g.AddEdge(f15a, f15f)
	g.AddEdge(f15b, f15c)
	g.AddEdge(f15c, f15d)
	g.AddEdge(f15c, f15g)
	g.AddEdge(f15d, f15e)
	g.AddEdge(f15d, f15h)
	g.AddEdge(f15d, f15i)
	g.AddEdge(f15e, f15j)
	g.AddEdge(f15e, f15k)
	return g
}

// Fig15SumBilateral is the canonical trajectory through the Figure 15
// cycle: a deletes ab, b buys bf, e plays {a,d,j,k} -> {d,f,j,k}; the
// result is isomorphic to G0. Every improving move of every agent is
// verified to stay in the cycle (EveryImprovingStaysInCycle).
func Fig15SumBilateral() Instance {
	return Instance{
		Name:  "Fig15 SUM-bilateral",
		Game:  game.NewBilateral(game.Sum, Fig15Alpha),
		Start: Fig15Start,
		Steps: []Step{
			{Move: game.Move{Agent: f15a, Drop: []int{f15b}},
				WantUnhappy: []int{f15a, f15c}},
			{Move: game.Move{Agent: f15b, Add: []int{f15f}},
				WantUnhappy: []int{f15b, f15f, f15g}},
			{Move: game.Move{Agent: f15e, Drop: []int{f15a}, Add: []int{f15f}},
				WantUnhappy: []int{f15e}, UniqueImproving: true},
		},
		ClosesExactly:              false, // closes up to isomorphism
		EveryImprovingStaysInCycle: true,
		VertexNames:                fig15Names,
	}
}
