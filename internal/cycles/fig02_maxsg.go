package cycles

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figure 2 / Theorem 2.16: a best response cycle for the MAX-SG on general
// networks, in which every state has exactly ONE unhappy agent, so no move
// policy can enforce convergence; multi-swaps do not beat the designated
// swaps.
//
// The drawing is not machine-readable, so the 9-vertex instance was
// reconstructed by search.Fig2Candidates, which enumerates all networks
// G1 = H + {a1,b1} + {b1,c1} with H invariant under the rotation
// a->b->c->a and keeps those satisfying every fact stated in the proof
// (eccentricity 3 exactly for a1, a3, b3, c3; a1 the unique unhappy agent;
// the swap a1b1 -> a1c1 a best response). All 18 candidates verify the
// complete theorem; the lexicographically first is pinned here:
//
//	H = orbits of {a1,a3}, {a2,a3}, {a1,b2}, {a2,b2}
//
// i.e. each x1 is adjacent to x3 and to y2 (next row), each x2 to x3 and
// y2. TestFig2SearchReproduces re-derives it.

// Vertex labels of the Figure 2 construction (a1,a2,a3,b1,b2,b3,c1,c2,c3).
const (
	f2a1 = iota
	f2a2
	f2a3
	f2b1
	f2b2
	f2b3
	f2c1
	f2c2
	f2c3
)

var fig2Names = []string{"a1", "a2", "a3", "b1", "b2", "b3", "c1", "c2", "c3"}

// Fig2Start builds the pinned Figure 2 network G1. Ownership is irrelevant
// in the Swap Game; edges are assigned to their lower endpoint.
func Fig2Start() *graph.Graph {
	g := graph.New(9)
	for _, e := range [][2]int{
		{f2a1, f2a3}, {f2a1, f2b1}, {f2a1, f2b2},
		{f2a2, f2a3}, {f2a2, f2b2}, {f2a2, f2c1}, {f2a2, f2c2},
		{f2b1, f2b3}, {f2b1, f2c1}, {f2b1, f2c2},
		{f2b2, f2b3}, {f2b2, f2c2},
		{f2c1, f2c3}, {f2c2, f2c3},
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// Fig2MaxSG is the Figure 2 best response cycle with Theorem 2.16's
// claims: one unhappy agent per state, best-response moves, exact closure
// after three steps, and no multi-swap improvement for the movers.
func Fig2MaxSG() Instance {
	return Instance{
		Name:  "Fig2 MAX-SG",
		Game:  game.NewSwap(game.Max),
		Start: Fig2Start,
		Steps: []Step{
			{Move: game.Move{Agent: f2a1, Drop: []int{f2b1}, Add: []int{f2c1}},
				WantUnhappy: []int{f2a1}},
			{Move: game.Move{Agent: f2b1, Drop: []int{f2c1}, Add: []int{f2a1}},
				WantUnhappy: []int{f2b1}},
			{Move: game.Move{Agent: f2c1, Drop: []int{f2a1}, Add: []int{f2b1}},
				WantUnhappy: []int{f2c1}},
		},
		ClosesExactly:        true,
		CheckMultiSwapMovers: true,
		VertexNames:          fig2Names,
	}
}
