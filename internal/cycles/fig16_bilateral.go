package cycles

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figure 16 / Theorem 5.2: a best response cycle for the MAX bilateral
// equal-split Buy Game, 2 < alpha < 4. The 8-vertex base network G1
// (reconstructed from the proof's strategy sets, eccentricities and
// 1-center arguments, and cross-checked against every quoted cost value):
//
//	edges ab, bc, bg, cd, de, ef, eh, fg.
//
// The cycle: a buys ae (alpha/2+5 -> 2 alpha/2+2); c deletes cd
// (2 alpha/2+3 -> alpha/2+4); e deletes ea (4 alpha/2+3 -> 3 alpha/2+4);
// c buys cd (alpha/2+5 -> 2 alpha/2+3); back to G1.

// Vertex labels of the Figure 16 construction.
const (
	f16a = iota
	f16b
	f16c
	f16d
	f16e
	f16f
	f16g
	f16h
)

var fig16Names = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

// Fig16Alpha is a rational edge price strictly inside (2, 4).
var Fig16Alpha = game.AlphaInt(3)

// Fig16Start builds the Figure 16 network G1.
func Fig16Start() *graph.Graph {
	g := graph.New(8)
	g.AddEdge(f16a, f16b)
	g.AddEdge(f16b, f16c)
	g.AddEdge(f16b, f16g)
	g.AddEdge(f16c, f16d)
	g.AddEdge(f16d, f16e)
	g.AddEdge(f16e, f16f)
	g.AddEdge(f16e, f16h)
	g.AddEdge(f16f, f16g)
	return g
}

// Fig16MaxBilateral is the Figure 16 best response cycle. Each designated
// move is a feasible best response of its agent (blocking by new neighbours
// is part of the game's move enumeration).
func Fig16MaxBilateral() Instance {
	return Instance{
		Name:  "Fig16 MAX-bilateral",
		Game:  game.NewBilateral(game.Max, Fig16Alpha),
		Start: Fig16Start,
		Steps: []Step{
			{Move: game.Move{Agent: f16a, Add: []int{f16e}}},
			{Move: game.Move{Agent: f16c, Drop: []int{f16d}}},
			{Move: game.Move{Agent: f16e, Drop: []int{f16a}}},
			{Move: game.Move{Agent: f16c, Add: []int{f16d}}},
		},
		ClosesExactly: true,
		VertexNames:   fig16Names,
	}
}
