package cycles

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/graph"
)

// reachCases are small instances spanning the game variants (ownership-
// blind and -aware, improving and best-response, stable-free and
// convergent) used to pin explorer behaviour.
func reachCases() []struct {
	name string
	g    *graph.Graph
	gm   game.Game
	best bool
	max  int
} {
	return []struct {
		name string
		g    *graph.Graph
		gm   game.Game
		best bool
		max  int
	}{
		{"fig3-asg-br", Fig3Start(), game.NewAsymSwap(game.Sum), true, 5000},
		{"fig16-bilateral-imp", Fig16Start(), game.NewBilateral(game.Max, Fig16Alpha), false, 5000},
		{"path8-sumsg-br", graph.Path(8), game.NewSwap(game.Sum), true, 20000},
		// Large enough that every shard of a multi-worker store outgrows
		// its initial slot table on a COMPLETING exploration, so dedup
		// after slot-table growth is pinned by exact state counts (the
		// capped cases clamp States and cannot see growth bugs).
		{"path9-sumsg-br", graph.Path(9), game.NewSwap(game.Sum), true, 20000},
		{"star6-maxsg-imp", graph.Star(6), game.NewSwap(game.Max), false, 100},
		{"cycle7-maxasg-br", graph.Cycle(7), game.NewAsymSwap(game.Max), true, 8000},
		{"gbg7-imp", graph.Path(7), game.NewGreedyBuy(game.Sum, game.NewAlpha(7, 4)), false, 8000},
	}
}

// TestExploreWorkerCountInvariance checks the core contract of the
// parallel frontier expansion: ReachResult is bit-identical at any worker
// count (the sharded intern table deduplicates exactly, levels end with a
// barrier, and the frontier is canonically reordered). The CI -race job
// runs this over the shared store.
func TestExploreWorkerCountInvariance(t *testing.T) {
	for _, tc := range reachCases() {
		want, werr := Explore(tc.g, tc.gm, ExploreOptions{MaxStates: tc.max, BestResponse: tc.best, Workers: 1})
		for _, workers := range []int{2, 5} {
			got, gerr := Explore(tc.g, tc.gm, ExploreOptions{MaxStates: tc.max, BestResponse: tc.best, Workers: workers})
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: workers=%d err=%v, serial err=%v", tc.name, workers, gerr, werr)
			}
			if werr != nil {
				// On an aborted exploration only States is defined.
				if got.States != want.States {
					t.Fatalf("%s: workers=%d aborted with %d states, serial %d", tc.name, workers, got.States, want.States)
				}
				continue
			}
			if got != want {
				t.Fatalf("%s: workers=%d got %+v, serial %+v", tc.name, workers, got, want)
			}
		}
	}
}

// TestExploreMatchesReference compares the interned explorer against an
// independent clone-based reference exploration (the seed algorithm) on
// every case, pinning state counts and stability flags.
func TestExploreMatchesReference(t *testing.T) {
	for _, tc := range reachCases() {
		want, werr := referenceExplore(tc.g, tc.gm, tc.max, tc.best)
		got, gerr := Explore(tc.g, tc.gm, ExploreOptions{MaxStates: tc.max, BestResponse: tc.best, Workers: 1})
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: err=%v, reference err=%v", tc.name, gerr, werr)
		}
		if werr != nil {
			if got.States != want.States {
				t.Fatalf("%s: aborted with %d states, reference %d", tc.name, got.States, want.States)
			}
			continue
		}
		if got != want {
			t.Fatalf("%s: got %+v, reference %+v", tc.name, got, want)
		}
	}
}

// referenceExplore is the seed implementation: full-graph hash, clone per
// visited state, list-bucket dedupe. Kept as the parity oracle.
func referenceExplore(start *graph.Graph, gm game.Game, maxStates int, bestOnly bool) (ReachResult, error) {
	owned := gm.OwnershipMatters()
	hash := func(g *graph.Graph) uint64 {
		if owned {
			return g.Hash()
		}
		return g.HashUnowned()
	}
	equal := func(a, b *graph.Graph) bool {
		if owned {
			return a.Equal(b)
		}
		return a.EqualUnowned(b)
	}
	seen := map[uint64][]*graph.Graph{}
	lookup := func(g *graph.Graph) bool {
		for _, h := range seen[hash(g)] {
			if equal(h, g) {
				return true
			}
		}
		return false
	}
	res := ReachResult{BestResponseClosed: true}
	s := game.NewScratch(start.N())
	queue := []*graph.Graph{start.Clone()}
	seen[hash(queue[0])] = append(seen[hash(queue[0])], queue[0])
	res.States = 1
	var moves []game.Move
	for len(queue) > 0 {
		g := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		stable := true
		for u := 0; u < g.N(); u++ {
			moves = moves[:0]
			if bestOnly {
				moves, _ = gm.BestMoves(g, u, s, moves)
			} else {
				moves = gm.ImprovingMoves(g, u, s, moves)
			}
			if len(moves) > 0 {
				stable = false
			}
			for _, m := range moves {
				ap := game.Apply(g, m)
				if !lookup(g) {
					res.States++
					if res.States > maxStates {
						ap.Undo()
						return res, errCapExceeded(maxStates)
					}
					next := g.Clone()
					seen[hash(next)] = append(seen[hash(next)], next)
					queue = append(queue, next)
				}
				ap.Undo()
			}
		}
		if stable {
			res.StableReachable = true
			res.BestResponseClosed = false
		}
	}
	return res, nil
}

// TestExploreProgressReports checks the per-level progress callback.
func TestExploreProgressReports(t *testing.T) {
	var reports []ExploreProgress
	res, err := Explore(graph.Path(8), game.NewSwap(game.Sum), ExploreOptions{
		MaxStates:    20000,
		BestResponse: true,
		Workers:      1,
		Progress:     func(p ExploreProgress) { reports = append(reports, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	last := reports[len(reports)-1]
	if last.States != res.States {
		t.Fatalf("final progress states = %d, result %d", last.States, res.States)
	}
	if last.Frontier != 0 {
		t.Fatalf("final frontier = %d, want 0", last.Frontier)
	}
	if last.Bytes <= 0 {
		t.Fatal("progress must report the store footprint")
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Level != reports[i-1].Level+1 || reports[i].States < reports[i-1].States {
			t.Fatalf("progress not monotonic: %+v -> %+v", reports[i-1], reports[i])
		}
	}
}

// TestFindBestResponseCycleMatchesExplore cross-checks the two analyses:
// on the stable-free Fig3 space a cycle must exist, and replaying the
// returned moves from the first state must close it under the game's
// state equality.
func TestFindBestResponseCycleCloses(t *testing.T) {
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		gm    game.Game
		owned bool
	}{
		{"fig3-asg", Fig3Start(), game.NewAsymSwap(game.Sum), true},
		{"fig16-bilateral", Fig16Start(), game.NewBilateral(game.Max, Fig16Alpha), false},
	} {
		fc := FindBestResponseCycle(tc.g, tc.gm, 5000)
		if fc == nil {
			t.Fatalf("%s: no cycle found", tc.name)
		}
		if len(fc.States) != len(fc.Moves) {
			t.Fatalf("%s: %d states but %d moves", tc.name, len(fc.States), len(fc.Moves))
		}
		g := fc.States[0].Clone()
		for _, m := range fc.Moves {
			game.Apply(g, m)
		}
		closed := g.EqualUnowned(fc.States[0])
		if tc.owned {
			closed = g.Equal(fc.States[0])
		}
		if !closed {
			t.Fatalf("%s: cycle does not close", tc.name)
		}
	}
}
