// Package median computes the small facility-location quantities the
// paper's proofs lean on: 1-medians (SUM version best single connection
// points), 2-median sets, and 1-centers (MAX version), all by exhaustive
// evaluation, which is exact and fast at construction sizes.
package median

import (
	"ncg/internal/graph"
)

// OneMedian returns the vertices minimizing the sum of distances to all
// vertices of g, together with that minimum. Disconnected graphs return
// (nil, Unreachable-based sentinel).
func OneMedian(g *graph.Graph) ([]int, int64) {
	sums := g.DistanceSums()
	best := int64(graph.Unreachable)
	var out []int
	for u, s := range sums {
		switch {
		case s < best:
			best = s
			out = out[:0]
			out = append(out, u)
		case s == best && s < int64(graph.Unreachable):
			out = append(out, u)
		}
	}
	if best >= int64(graph.Unreachable) {
		return nil, best
	}
	return out, best
}

// OneCenter returns the vertices minimizing eccentricity, with the radius.
func OneCenter(g *graph.Graph) ([]int, int32) {
	ecc := g.Eccentricities()
	best := graph.Unreachable
	var out []int
	for u, e := range ecc {
		switch {
		case e < best:
			best = e
			out = out[:0]
			out = append(out, u)
		case e == best && e < graph.Unreachable:
			out = append(out, u)
		}
	}
	if best >= graph.Unreachable {
		return nil, best
	}
	return out, best
}

// TwoMedianSets returns every unordered pair {u,v} minimizing
// sum_w min(d(u,w), d(v,w)), with the minimum value. Used to check the
// "2-median-set" arguments in the proofs of Theorems 5.1 and 5.2.
func TwoMedianSets(g *graph.Graph) ([][2]int, int64) {
	n := g.N()
	d := g.AllDistances()
	best := int64(1) << 60
	var out [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			var s int64
			for w := 0; w < n; w++ {
				du, dv := d[u][w], d[v][w]
				if dv < du {
					du = dv
				}
				s += int64(du)
			}
			switch {
			case s < best:
				best = s
				out = out[:0]
				out = append(out, [2]int{u, v})
			case s == best:
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out, best
}

// MedianOfSubgraph returns the 1-medians of the subgraph of g induced by
// keep (a vertex filter); distances are computed within the induced
// subgraph. The returned vertex ids are in g's numbering. This mirrors the
// proofs' frequent "1-median vertex of G - {x,y,z}" arguments.
func MedianOfSubgraph(g *graph.Graph, keep func(v int) bool) ([]int, int64) {
	sub, fromSub := InducedSubgraph(g, keep)
	meds, best := OneMedian(sub)
	out := make([]int, len(meds))
	for i, m := range meds {
		out[i] = fromSub[m]
	}
	return out, best
}

// CenterOfSubgraph is MedianOfSubgraph for eccentricity.
func CenterOfSubgraph(g *graph.Graph, keep func(v int) bool) ([]int, int32) {
	sub, fromSub := InducedSubgraph(g, keep)
	cs, best := OneCenter(sub)
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = fromSub[c]
	}
	return out, best
}

// InducedSubgraph returns the subgraph of g induced by the vertices
// accepted by keep, plus the mapping from new ids back to g's ids.
// Ownership is preserved.
func InducedSubgraph(g *graph.Graph, keep func(v int) bool) (*graph.Graph, []int) {
	var fromSub []int
	toSub := make([]int, g.N())
	for v := range toSub {
		toSub[v] = -1
	}
	for v := 0; v < g.N(); v++ {
		if keep(v) {
			toSub[v] = len(fromSub)
			fromSub = append(fromSub, v)
		}
	}
	sub := graph.New(len(fromSub))
	for _, e := range g.Edges() {
		if toSub[e.U] >= 0 && toSub[e.V] >= 0 {
			sub.AddEdge(toSub[e.U], toSub[e.V])
		}
	}
	return sub, fromSub
}
