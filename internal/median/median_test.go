package median

import (
	"math/rand"
	"testing"

	"ncg/internal/graph"
)

func TestOneMedianPath(t *testing.T) {
	meds, best := OneMedian(graph.Path(5))
	if len(meds) != 1 || meds[0] != 2 || best != 6 {
		t.Fatalf("medians = %v best = %d", meds, best)
	}
	meds, best = OneMedian(graph.Path(6))
	if len(meds) != 2 || meds[0] != 2 || meds[1] != 3 || best != 9 {
		t.Fatalf("P6 medians = %v best = %d", meds, best)
	}
}

func TestOneCenterPath(t *testing.T) {
	cs, rad := OneCenter(graph.Path(7))
	if len(cs) != 1 || cs[0] != 3 || rad != 3 {
		t.Fatalf("centers = %v rad = %d", cs, rad)
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	if ms, _ := OneMedian(g); ms != nil {
		t.Fatal("disconnected median should be nil")
	}
	if cs, _ := OneCenter(g); cs != nil {
		t.Fatal("disconnected center should be nil")
	}
}

func TestTwoMedianSetsStar(t *testing.T) {
	// On a star, every pair containing the hub is optimal: cost n-2.
	g := graph.Star(6)
	sets, best := TwoMedianSets(g)
	if best != 4 {
		t.Fatalf("best = %d, want 4", best)
	}
	if len(sets) != 5 {
		t.Fatalf("sets = %v", sets)
	}
	for _, s := range sets {
		if s[0] != 0 {
			t.Fatalf("every optimal pair must contain the hub: %v", s)
		}
	}
}

func TestTwoMedianSetsBruteForceAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(8)
		g := graph.New(n)
		// random connected-ish graph
		for i := 1; i < n; i++ {
			g.AddEdge(i, r.Intn(i))
		}
		for e := 0; e < n/2; e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		sets, best := TwoMedianSets(g)
		d := g.AllDistances()
		for _, s := range sets {
			var sum int64
			for w := 0; w < n; w++ {
				du, dv := d[s[0]][w], d[s[1]][w]
				if dv < du {
					du = dv
				}
				sum += int64(du)
			}
			if sum != best {
				t.Fatalf("claimed optimal pair %v has cost %d != %d", s, sum, best)
			}
		}
	}
}

func TestMedianOfSubgraph(t *testing.T) {
	// P7 minus both leaves = P5 on {1..5}: median is vertex 3 in original
	// numbering.
	g := graph.Path(7)
	meds, best := MedianOfSubgraph(g, func(v int) bool { return v != 0 && v != 6 })
	if len(meds) != 1 || meds[0] != 3 || best != 6 {
		t.Fatalf("meds = %v best = %d", meds, best)
	}
}

func TestCenterOfSubgraph(t *testing.T) {
	// P9 minus leaf 0 is the even path on {1..8}: centers {4,5}, radius 4.
	g := graph.Path(9)
	cs, rad := CenterOfSubgraph(g, func(v int) bool { return v != 0 })
	if len(cs) != 2 || cs[0] != 4 || cs[1] != 5 || rad != 4 {
		t.Fatalf("centers = %v rad = %d", cs, rad)
	}
}

func TestInducedSubgraphPreservesOwnership(t *testing.T) {
	g := graph.Path(5)
	sub, fromSub := InducedSubgraph(g, func(v int) bool { return v >= 1 })
	if sub.N() != 4 || sub.M() != 3 {
		t.Fatalf("sub = %v", sub)
	}
	for i := 0; i+1 < sub.N(); i++ {
		if fromSub[sub.Owner(i, i+1)] != fromSub[i] {
			t.Fatal("ownership not preserved")
		}
	}
}
