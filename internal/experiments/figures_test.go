package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// figureIDs are the empirical figures the package regenerates.
var figureIDs = []int{7, 8, 11, 12, 13, 14}

// TestFigureSmoke checks that every figure id builds, runs and renders on
// a miniature grid: non-empty series, aligned tables mentioning every
// series name, and a finite bound.
func TestFigureSmoke(t *testing.T) {
	for _, num := range figureIDs {
		opt := Options{Ns: []int{10}, Trials: 3, Seed: 13}
		fr, err := Figure(num, opt)
		if err != nil {
			t.Fatalf("figure %d: %v", num, err)
		}
		if len(fr.Series) == 0 {
			t.Fatalf("figure %d: no series", num)
		}
		out := fr.Render()
		if !strings.Contains(out, fr.Name) {
			t.Fatalf("figure %d: render missing title:\n%s", num, out)
		}
		for _, s := range fr.Series {
			if !strings.Contains(out, s.Name) {
				t.Fatalf("figure %d: render missing series %q", num, s.Name)
			}
			if len(s.Points) != len(fr.Ns) {
				t.Fatalf("figure %d series %q: %d points for %d ns", num, s.Name, len(s.Points), len(fr.Ns))
			}
		}
		if b := fr.Bound(); b < 0 {
			t.Fatalf("figure %d: negative bound %f", num, b)
		}
	}
}

// TestFigureGoldenParity proves the ported figure path is seed-for-seed
// identical to the pre-refactor one: testdata/figures_golden.txt was
// rendered by the original internal/experiments implementation (direct
// worker-pool trial loop, before the ensemble spine existed) at Ns={12,16},
// Trials=8, Seed=42, and the ported path must reproduce it byte for byte.
func TestFigureGoldenParity(t *testing.T) {
	want, err := os.ReadFile("testdata/figures_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, num := range figureIDs {
		opt := Options{Ns: []int{12, 16}, Trials: 8, Seed: 42}
		fr, err := Figure(num, opt)
		if err != nil {
			t.Fatalf("figure %d: %v", num, err)
		}
		fmt.Fprintf(&sb, "=== fig %d ===\n%s", num, fr.Render())
	}
	if got := sb.String(); got != string(want) {
		t.Fatalf("ported figure path diverged from the pre-refactor output.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFigureWorkerParity checks the figure path is invariant under the
// executor's parallelism knobs, the property the ensemble spine
// guarantees.
func TestFigureWorkerParity(t *testing.T) {
	render := func(workers int) string {
		opt := Options{Ns: []int{12}, Trials: 6, Seed: 21, Workers: workers}
		fr, err := Figure(7, opt)
		if err != nil {
			t.Fatal(err)
		}
		return fr.Render()
	}
	if a, b := render(1), render(7); a != b {
		t.Fatalf("worker count changed figure output:\n%s\nvs\n%s", a, b)
	}
}
