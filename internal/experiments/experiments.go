// Package experiments regenerates the empirical study of the paper
// (Sections 3.4 and 4.2): convergence-time sweeps of the bounded-budget
// Asymmetric Swap Game (Figures 7 and 8) and of the Greedy Buy Game
// (Figures 11-14), under the max cost and random move policies, over the
// paper's initial-network ensembles. Since PR 2 the package is a thin
// query layer over the internal/ensemble execution spine: every series is
// an ensemble.Scenario and every sweep runs through ensemble.Execute, so
// figures inherit the spine's sharded execution, deterministic per-trial
// seed streams and record sinks.
package experiments

import (
	"fmt"

	"ncg/internal/ensemble"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// PolicyKind selects a move policy by name; it is the ensemble spine's
// kind re-exported for the sweep layer.
type PolicyKind = ensemble.PolicyKind

const (
	// MaxCostPolicy is the max cost policy of Section 3.4.1.
	MaxCostPolicy = ensemble.MaxCost
	// RandomPolicy is the random policy of Section 3.4.1.
	RandomPolicy = ensemble.Random
	// MaxCostDeterministicPolicy is the max cost policy with
	// smallest-index tie-breaking (Theorem 2.11 / Figure 1).
	MaxCostDeterministicPolicy = ensemble.MaxCostDeterministic
	// MinIndexPolicy always moves the unhappy agent with the smallest
	// index.
	MinIndexPolicy = ensemble.MinIndex
)

// Config is one experimental configuration: a family of random initial
// networks, a game, and a policy, evaluated at a single agent count.
type Config struct {
	// Name identifies the series (e.g. "k=2 max cost").
	Name string
	// N is the number of agents.
	N int
	// Trials is the number of runs.
	Trials int
	// Seed is the base seed; each trial derives its own stream.
	Seed int64
	// NewGame builds the game for this n (alpha may depend on n).
	NewGame func(n int) game.Game
	// NewInitial builds a random initial network.
	NewInitial func(n int, r *gen.Rand) *graph.Graph
	// Policy selects the move policy.
	Policy PolicyKind
	// MaxSteps caps each run (0: dynamics default).
	MaxSteps int
	// ProbeWorkers fans the happiness probes of each run over a worker
	// pool (see dynamics.Config.Workers); 0 probes serially. Sweeps at
	// small n saturate cores by running trials in parallel, so leave this
	// at 0 there; at large n, trade trial parallelism for probe
	// parallelism instead. Traces are identical either way.
	ProbeWorkers int
}

// scenario converts the configuration into its ensemble form. The
// conversion is what puts the figure sweeps on the shared execution spine:
// per-trial seed streams, sharding and record sinks all come from there.
// Configs are not registry entries, so a name is optional here.
func (cfg Config) scenario() ensemble.Scenario {
	name := cfg.Name
	if name == "" {
		name = "unnamed"
	}
	return ensemble.Scenario{
		Name:       name,
		NewGame:    cfg.NewGame,
		NewInitial: cfg.NewInitial,
		Policy:     cfg.Policy,
		Ns:         []int{cfg.N},
		Trials:     cfg.Trials,
		Seed:       cfg.Seed,
		MaxSteps:   cfg.MaxSteps,
	}
}

// Stats aggregates convergence times over the trials of one configuration.
type Stats struct {
	Config     Config
	Trials     int
	Converged  int
	Cycled     int
	AvgSteps   float64
	MaxSteps   int
	MinSteps   int
	TotalMoves [4]int // by game.MoveKind
}

// statsOf maps an ensemble aggregate back onto the package's Stats form.
func statsOf(cfg Config, a ensemble.Aggregate) Stats {
	return Stats{
		Config:     cfg,
		Trials:     a.Trials,
		Converged:  a.Converged,
		Cycled:     a.Cycled,
		AvgSteps:   a.AvgSteps(),
		MaxSteps:   a.MaxSteps,
		MinSteps:   a.MinSteps,
		TotalMoves: a.TotalMoves,
	}
}

// Run executes all trials of a configuration on the ensemble spine,
// distributing them over workers goroutines (0 = GOMAXPROCS). A trial
// panic (e.g. an infeasible generator grid) propagates, matching the
// pre-spine behaviour; a configuration without trials yields zero stats.
func Run(cfg Config, workers int) Stats {
	if cfg.Trials <= 0 {
		return Stats{Config: cfg}
	}
	sum, err := ensemble.Execute(cfg.scenario(), ensemble.Options{
		Workers:      workers,
		ProbeWorkers: cfg.ProbeWorkers,
	})
	if err != nil {
		panic(err)
	}
	return statsOf(cfg, sum.Aggregates[0])
}

// Series is one plotted curve: a named configuration swept over n.
type Series struct {
	Name   string
	Points []Stats
}

// Sweep runs a configuration template over the given agent counts.
func Sweep(tmpl Config, ns []int, workers int) Series {
	s := Series{Name: tmpl.Name}
	for _, n := range ns {
		cfg := tmpl
		cfg.N = n
		s.Points = append(s.Points, Run(cfg, workers))
	}
	return s
}

// Table renders series as an aligned text table of the chosen metric, one
// row per n, matching the curves of the paper's figures.
func Table(series []Series, ns []int, metric func(Stats) float64) string {
	out := "n"
	for _, s := range series {
		out += fmt.Sprintf("\t%s", s.Name)
	}
	out += "\n"
	for i, n := range ns {
		out += fmt.Sprintf("%d", n)
		for _, s := range series {
			out += fmt.Sprintf("\t%.1f", metric(s.Points[i]))
		}
		out += "\n"
	}
	return out
}

// AvgMetric extracts the average step count.
func AvgMetric(st Stats) float64 { return st.AvgSteps }

// MaxMetric extracts the maximum step count.
func MaxMetric(st Stats) float64 { return float64(st.MaxSteps) }
