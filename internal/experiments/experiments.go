// Package experiments regenerates the empirical study of the paper
// (Sections 3.4 and 4.2): convergence-time sweeps of the bounded-budget
// Asymmetric Swap Game (Figures 7 and 8) and of the Greedy Buy Game
// (Figures 11-14), under the max cost and random move policies, over the
// paper's initial-network ensembles. Sweeps run trials in parallel on a
// worker pool with per-trial deterministic seeds.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// PolicyKind selects a move policy by name.
type PolicyKind int

const (
	// MaxCostPolicy is the max cost policy of Section 3.4.1.
	MaxCostPolicy PolicyKind = iota
	// RandomPolicy is the random policy of Section 3.4.1.
	RandomPolicy
)

func (p PolicyKind) String() string {
	if p == MaxCostPolicy {
		return "max cost"
	}
	return "random"
}

func (p PolicyKind) policy() dynamics.Policy {
	if p == MaxCostPolicy {
		return dynamics.MaxCost{}
	}
	return dynamics.Random{}
}

// Config is one experimental configuration: a family of random initial
// networks, a game, and a policy, evaluated at a single agent count.
type Config struct {
	// Name identifies the series (e.g. "k=2 max cost").
	Name string
	// N is the number of agents.
	N int
	// Trials is the number of runs.
	Trials int
	// Seed is the base seed; each trial derives its own stream.
	Seed int64
	// NewGame builds the game for this n (alpha may depend on n).
	NewGame func(n int) game.Game
	// NewInitial builds a random initial network.
	NewInitial func(n int, r *gen.Rand) *graph.Graph
	// Policy selects the move policy.
	Policy PolicyKind
	// MaxSteps caps each run (0: dynamics default).
	MaxSteps int
	// ProbeWorkers fans the happiness probes of each run over a worker
	// pool (see dynamics.Config.Workers); 0 probes serially. Sweeps at
	// small n saturate cores by running trials in parallel, so leave this
	// at 0 there; at large n, trade trial parallelism for probe
	// parallelism instead. Traces are identical either way.
	ProbeWorkers int
}

// Stats aggregates convergence times over the trials of one configuration.
type Stats struct {
	Config     Config
	Trials     int
	Converged  int
	Cycled     int
	AvgSteps   float64
	MaxSteps   int
	MinSteps   int
	TotalMoves [4]int // by game.MoveKind
}

// Run executes all trials of a configuration, distributing them over
// workers goroutines (0 = GOMAXPROCS).
func Run(cfg Config, workers int) Stats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := Stats{Config: cfg, Trials: cfg.Trials, MinSteps: int(^uint(0) >> 1)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for t := 0; t < cfg.Trials; t++ {
			next <- t
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				seed := gen.Seed(cfg.Seed, uint64(cfg.N), uint64(t))
				r := gen.NewRand(seed)
				g := cfg.NewInitial(cfg.N, r)
				res := dynamics.Run(g, dynamics.Config{
					Game:     cfg.NewGame(cfg.N),
					Policy:   cfg.Policy.policy(),
					Tie:      dynamics.TieRandom,
					MaxSteps: cfg.MaxSteps,
					Seed:     seed + 1,
					Workers:  cfg.ProbeWorkers,
				})
				mu.Lock()
				if res.Converged {
					st.Converged++
				}
				if res.Cycled {
					st.Cycled++
				}
				st.AvgSteps += float64(res.Steps)
				if res.Steps > st.MaxSteps {
					st.MaxSteps = res.Steps
				}
				if res.Steps < st.MinSteps {
					st.MinSteps = res.Steps
				}
				for k, c := range res.MoveKinds {
					st.TotalMoves[k] += c
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if cfg.Trials > 0 {
		st.AvgSteps /= float64(cfg.Trials)
	} else {
		st.MinSteps = 0
	}
	return st
}

// Series is one plotted curve: a named configuration swept over n.
type Series struct {
	Name   string
	Points []Stats
}

// Sweep runs a configuration template over the given agent counts.
func Sweep(tmpl Config, ns []int, workers int) Series {
	s := Series{Name: tmpl.Name}
	for _, n := range ns {
		cfg := tmpl
		cfg.N = n
		s.Points = append(s.Points, Run(cfg, workers))
	}
	return s
}

// Table renders series as an aligned text table of the chosen metric, one
// row per n, matching the curves of the paper's figures.
func Table(series []Series, ns []int, metric func(Stats) float64) string {
	out := "n"
	for _, s := range series {
		out += fmt.Sprintf("\t%s", s.Name)
	}
	out += "\n"
	for i, n := range ns {
		out += fmt.Sprintf("%d", n)
		for _, s := range series {
			out += fmt.Sprintf("\t%.1f", metric(s.Points[i]))
		}
		out += "\n"
	}
	return out
}

// AvgMetric extracts the average step count.
func AvgMetric(st Stats) float64 { return st.AvgSteps }

// MaxMetric extracts the maximum step count.
func MaxMetric(st Stats) float64 { return float64(st.MaxSteps) }
