package experiments

import (
	"fmt"
	"strings"

	"ncg/internal/game"
)

// Phase analysis of Greedy Buy Game trajectories (Section 4.2.2): the
// paper describes typical runs as a deletion-dominated opening, a
// swap/buy-dominated middle game, and a mixed cleanup. PhaseProfile
// segments a move-kind trajectory into thirds and reports the kind mix of
// each, which makes those qualitative descriptions measurable.

// PhaseStats is the move-kind mix of one segment of a trajectory.
type PhaseStats struct {
	Moves  int
	Counts [4]int // indexed by game.MoveKind
}

// Fraction returns the share of the given kind in the segment.
func (p PhaseStats) Fraction(k game.MoveKind) float64 {
	if p.Moves == 0 {
		return 0
	}
	return float64(p.Counts[k]) / float64(p.Moves)
}

// PhaseProfile summarizes a trajectory in three equal segments.
type PhaseProfile struct {
	Opening, Middle, End PhaseStats
}

// Profile segments the trajectory of move kinds into thirds.
func Profile(kinds []game.MoveKind) PhaseProfile {
	var pp PhaseProfile
	n := len(kinds)
	segment := func(lo, hi int) PhaseStats {
		st := PhaseStats{Moves: hi - lo}
		for _, k := range kinds[lo:hi] {
			st.Counts[k]++
		}
		return st
	}
	pp.Opening = segment(0, n/3)
	pp.Middle = segment(n/3, 2*n/3)
	pp.End = segment(2*n/3, n)
	return pp
}

// String renders the profile as three "deletes/swaps/buys" mixes.
func (pp PhaseProfile) String() string {
	var sb strings.Builder
	for i, seg := range []struct {
		name string
		st   PhaseStats
	}{{"opening", pp.Opening}, {"middle", pp.Middle}, {"end", pp.End}} {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s[del %.0f%% swap %.0f%% buy %.0f%%]",
			seg.name,
			100*seg.st.Fraction(game.KindDelete),
			100*seg.st.Fraction(game.KindSwap),
			100*seg.st.Fraction(game.KindBuy))
	}
	return sb.String()
}
