package experiments

import (
	"strings"
	"testing"

	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
)

func TestProfileSegments(t *testing.T) {
	kinds := []game.MoveKind{
		game.KindDelete, game.KindDelete, game.KindDelete,
		game.KindSwap, game.KindSwap, game.KindBuy,
		game.KindSwap, game.KindDelete, game.KindDelete,
	}
	pp := Profile(kinds)
	if pp.Opening.Fraction(game.KindDelete) != 1 {
		t.Fatalf("opening = %+v", pp.Opening)
	}
	if pp.Middle.Fraction(game.KindSwap) < 0.6 {
		t.Fatalf("middle = %+v", pp.Middle)
	}
	if pp.Opening.Moves+pp.Middle.Moves+pp.End.Moves != len(kinds) {
		t.Fatal("segments do not cover the trajectory")
	}
	if !strings.Contains(pp.String(), "opening[del 100%") {
		t.Fatalf("render: %s", pp.String())
	}
}

// TestTrajectoryPhases reproduces the Section 4.2.2 observation on dense
// SUM-GBG runs (m = 4n, alpha = n/4): the opening is deletion-dominated
// and deletions dominate buys overall.
func TestTrajectoryPhases(t *testing.T) {
	agg := PhaseProfile{}
	for trial := 0; trial < 8; trial++ {
		n := 24
		r := gen.NewRand(int64(trial) + 100)
		g := gen.RandomConnected(n, 4*n, r)
		gm := game.NewGreedyBuy(game.Sum, game.NewAlpha(int64(n), 4))
		res := dynamics.Run(g, dynamics.Config{Game: gm, Policy: dynamics.Random{}, Seed: int64(trial)})
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		pp := Profile(res.Kinds)
		agg.Opening.Moves += pp.Opening.Moves
		agg.Middle.Moves += pp.Middle.Moves
		agg.End.Moves += pp.End.Moves
		for k := 0; k < 4; k++ {
			agg.Opening.Counts[k] += pp.Opening.Counts[k]
			agg.Middle.Counts[k] += pp.Middle.Counts[k]
			agg.End.Counts[k] += pp.End.Counts[k]
		}
	}
	if agg.Opening.Fraction(game.KindDelete) < 0.5 {
		t.Fatalf("opening not deletion-dominated: %s", agg.String())
	}
	if agg.Opening.Fraction(game.KindDelete) <= agg.Middle.Fraction(game.KindDelete) {
		t.Fatalf("deletions should fade after the opening: %s", agg.String())
	}
	t.Logf("aggregate phases: %s", agg.String())
}
