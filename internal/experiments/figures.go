package experiments

import (
	"fmt"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// Options scale a figure regeneration: the paper uses 10000 trials (ASG)
// and 5000 trials (GBG) on n = 10..100; the defaults here are reduced so
// the whole suite runs in minutes (see DESIGN.md §3). All conclusions are
// about curve shapes, which are stable at these counts. The delta-evaluated
// best-response engine keeps per-step work near O(n) searches, so Ns well
// beyond the paper's grid are feasible; combine that with ProbeWorkers to
// parallelize within a run once trial-level parallelism stops saturating.
type Options struct {
	Ns      []int
	Trials  int
	Seed    int64
	Workers int
	// ProbeWorkers fans each run's happiness probes over a worker pool;
	// see Config.ProbeWorkers.
	ProbeWorkers int
}

// DefaultOptions returns the scaled-down defaults.
func DefaultOptions() Options {
	return Options{
		Ns:     []int{10, 20, 30, 40, 50},
		Trials: 60,
		Seed:   1,
	}
}

// FigureResult is a regenerated figure: its series plus the n-grid.
type FigureResult struct {
	Name   string
	Ns     []int
	Series []Series
}

// Render returns the avg-steps and max-steps tables of the figure (the
// left and right panels of the paper's figures).
func (fr FigureResult) Render() string {
	out := fr.Name + "\n\nAvg # of steps until convergence\n"
	out += Table(fr.Series, fr.Ns, AvgMetric)
	out += "\nMax # of steps until convergence\n"
	out += Table(fr.Series, fr.Ns, MaxMetric)
	return out
}

// Bound returns the largest observed ratio max-steps / n across the
// figure, used to check the paper's 5n/7n/8n envelopes.
func (fr FigureResult) Bound() float64 {
	worst := 0.0
	for _, s := range fr.Series {
		for i, p := range s.Points {
			r := float64(p.MaxSteps) / float64(fr.Ns[i])
			if r > worst {
				worst = r
			}
		}
	}
	return worst
}

// budgetInitial builds the Section 3.4.1 ensemble.
func budgetInitial(k int) func(n int, r *gen.Rand) *graph.Graph {
	return func(n int, r *gen.Rand) *graph.Graph {
		return gen.BudgetNetwork(n, k, r)
	}
}

// Fig7 regenerates Figure 7: SUM-ASG with budget k over both policies.
func Fig7(opt Options) FigureResult {
	return figASG("Figure 7: SUM-ASG, budget k", game.Sum, opt)
}

// Fig8 regenerates Figure 8: MAX-ASG with budget k over both policies.
func Fig8(opt Options) FigureResult {
	return figASG("Figure 8: MAX-ASG, budget k", game.Max, opt)
}

func figASG(name string, kind game.DistKind, opt Options) FigureResult {
	fr := FigureResult{Name: name, Ns: opt.Ns}
	for _, pol := range []PolicyKind{MaxCostPolicy, RandomPolicy} {
		for _, k := range []int{1, 2, 3, 4, 5, 6, 10} {
			// Respect the generator's n > 2k requirement.
			ns := opt.Ns
			usable := ns[:0:0]
			for _, n := range ns {
				if n > 2*k {
					usable = append(usable, n)
				}
			}
			if len(usable) != len(ns) {
				continue
			}
			tmpl := Config{
				Name:         fmt.Sprintf("k=%d %s", k, pol),
				Trials:       opt.Trials,
				Seed:         opt.Seed,
				NewGame:      func(int) game.Game { return game.NewAsymSwap(kind) },
				NewInitial:   budgetInitial(k),
				Policy:       pol,
				ProbeWorkers: opt.ProbeWorkers,
			}
			fr.Series = append(fr.Series, Sweep(tmpl, ns, opt.Workers))
		}
	}
	return fr
}

// gbgAlphas are the edge prices of Section 4.2.1 as exact rationals in n:
// alpha = n/10, n/4, n/2, n.
var gbgAlphas = []struct {
	Name string
	Den  int64
}{
	{"a=n/10", 10},
	{"a=n/4", 4},
	{"a=n", 1},
}

// Fig11 regenerates Figure 11: SUM-GBG, m in {n, 4n}, alpha in
// {n/10, n/4, n}, both policies.
func Fig11(opt Options) FigureResult {
	return figGBG("Figure 11: SUM-GBG", game.Sum, opt)
}

// Fig13 regenerates Figure 13: MAX-GBG, same grid.
func Fig13(opt Options) FigureResult {
	return figGBG("Figure 13: MAX-GBG", game.Max, opt)
}

func figGBG(name string, kind game.DistKind, opt Options) FigureResult {
	fr := FigureResult{Name: name, Ns: opt.Ns}
	for _, pol := range []PolicyKind{MaxCostPolicy, RandomPolicy} {
		for _, mMul := range []int{1, 4} {
			for _, al := range gbgAlphas {
				mm, alName := mMul, al
				tmpl := Config{
					Name:   fmt.Sprintf("m=%dn %s %s", mm, alName.Name, pol),
					Trials: opt.Trials,
					Seed:   opt.Seed,
					NewGame: func(n int) game.Game {
						return game.NewGreedyBuy(kind, game.NewAlpha(int64(n), alName.Den))
					},
					NewInitial: func(n int, r *gen.Rand) *graph.Graph {
						return gen.RandomConnected(n, mm*n, r)
					},
					Policy:       pol,
					ProbeWorkers: opt.ProbeWorkers,
				}
				fr.Series = append(fr.Series, Sweep(tmpl, opt.Ns, opt.Workers))
			}
		}
	}
	return fr
}

// topologies are the Section 4.2.2 starting-topology variants.
var topologies = []struct {
	Name string
	New  func(n int, r *gen.Rand) *graph.Graph
}{
	{"random", func(n int, r *gen.Rand) *graph.Graph { return gen.RandomConnected(n, n, r) }},
	{"rl", func(n int, r *gen.Rand) *graph.Graph { return gen.RandomLine(n, r) }},
	{"dl", func(n int, r *gen.Rand) *graph.Graph { return gen.DirectedLine(n) }},
}

// topoAlphas adds alpha = n/2 per the comparison figures.
var topoAlphas = []struct {
	Name string
	Den  int64
}{
	{"a=n/10", 10},
	{"a=n/4", 4},
	{"a=n/2", 2},
	{"a=n", 1},
}

// Fig12 regenerates Figure 12: SUM-GBG starting-topology comparison.
func Fig12(opt Options) FigureResult {
	return figTopo("Figure 12: SUM-GBG topologies", game.Sum, opt)
}

// Fig14 regenerates Figure 14: MAX-GBG starting-topology comparison.
func Fig14(opt Options) FigureResult {
	return figTopo("Figure 14: MAX-GBG topologies", game.Max, opt)
}

func figTopo(name string, kind game.DistKind, opt Options) FigureResult {
	fr := FigureResult{Name: name, Ns: opt.Ns}
	for _, pol := range []PolicyKind{MaxCostPolicy, RandomPolicy} {
		for _, topo := range topologies {
			for _, al := range topoAlphas {
				tp, alName := topo, al
				tmpl := Config{
					Name:   fmt.Sprintf("%s %s %s", tp.Name, alName.Name, pol),
					Trials: opt.Trials,
					Seed:   opt.Seed,
					NewGame: func(n int) game.Game {
						return game.NewGreedyBuy(kind, game.NewAlpha(int64(n), alName.Den))
					},
					NewInitial:   tp.New,
					Policy:       pol,
					ProbeWorkers: opt.ProbeWorkers,
				}
				fr.Series = append(fr.Series, Sweep(tmpl, opt.Ns, opt.Workers))
			}
		}
	}
	return fr
}

// Figure returns the regeneration of the numbered figure (7, 8, 11-14).
func Figure(num int, opt Options) (FigureResult, error) {
	switch num {
	case 7:
		return Fig7(opt), nil
	case 8:
		return Fig8(opt), nil
	case 11:
		return Fig11(opt), nil
	case 12:
		return Fig12(opt), nil
	case 13:
		return Fig13(opt), nil
	case 14:
		return Fig14(opt), nil
	}
	return FigureResult{}, fmt.Errorf("experiments: no experiment for figure %d (theory figures are verified by the cycles package)", num)
}
