package experiments

import (
	"strings"
	"testing"

	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

func smallASGConfig(pol PolicyKind) Config {
	return Config{
		Name:       "k=2 " + pol.String(),
		N:          14,
		Trials:     12,
		Seed:       7,
		NewGame:    func(int) game.Game { return game.NewAsymSwap(game.Sum) },
		NewInitial: budgetInitial(2),
		Policy:     pol,
	}
}

func TestRunConvergesAndAggregates(t *testing.T) {
	st := Run(smallASGConfig(MaxCostPolicy), 4)
	if st.Converged != st.Trials {
		t.Fatalf("only %d/%d trials converged", st.Converged, st.Trials)
	}
	if st.AvgSteps <= 0 || st.MaxSteps < st.MinSteps {
		t.Fatalf("bad aggregates: %+v", st)
	}
	if float64(st.MaxSteps) < st.AvgSteps {
		t.Fatalf("max < avg: %+v", st)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	a := Run(smallASGConfig(RandomPolicy), 1)
	b := Run(smallASGConfig(RandomPolicy), 8)
	if a.AvgSteps != b.AvgSteps || a.MaxSteps != b.MaxSteps || a.MinSteps != b.MinSteps {
		t.Fatalf("worker count changed results: %+v vs %+v", a, b)
	}
}

func TestSweepAndTable(t *testing.T) {
	ns := []int{8, 12}
	tmpl := smallASGConfig(MaxCostPolicy)
	tmpl.Trials = 6
	s := Sweep(tmpl, ns, 2)
	if len(s.Points) != 2 || s.Points[0].Config.N != 8 {
		t.Fatalf("sweep malformed: %+v", s)
	}
	tab := Table([]Series{s}, ns, AvgMetric)
	if !strings.Contains(tab, "k=2") || !strings.Contains(tab, "8\t") {
		t.Fatalf("table malformed:\n%s", tab)
	}
}

// TestFig7SmokeBound runs a miniature Figure 7 sweep and checks the paper's
// headline observation: convergence in at most 5n steps, and all runs
// converge (no cycles in random instances).
func TestFig7SmokeBound(t *testing.T) {
	opt := Options{Ns: []int{12, 20}, Trials: 25, Seed: 3}
	fr := Fig7(opt)
	if len(fr.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range fr.Series {
		for _, p := range s.Points {
			if p.Converged != p.Trials {
				t.Fatalf("%s n=%d: %d/%d converged", s.Name, p.Config.N, p.Converged, p.Trials)
			}
		}
	}
	if b := fr.Bound(); b > 6 {
		t.Fatalf("max steps/n = %.2f exceeds the paper's 5n envelope plus slack", b)
	}
}

// TestFig8SmokeBound is the MAX-ASG analogue (paper: <= 5n with one
// outlier; we allow the envelope plus slack for small-sample noise).
func TestFig8SmokeBound(t *testing.T) {
	opt := Options{Ns: []int{12, 20}, Trials: 25, Seed: 4}
	fr := Fig8(opt)
	for _, s := range fr.Series {
		for _, p := range s.Points {
			if p.Converged != p.Trials {
				t.Fatalf("%s n=%d: %d/%d converged", s.Name, p.Config.N, p.Converged, p.Trials)
			}
		}
	}
	if b := fr.Bound(); b > 6 {
		t.Fatalf("max steps/n = %.2f far exceeds the paper's envelope", b)
	}
}

// TestFig11SmokeBound checks the SUM-GBG 7n envelope on a miniature grid.
func TestFig11SmokeBound(t *testing.T) {
	opt := Options{Ns: []int{12, 20}, Trials: 15, Seed: 5}
	fr := Fig11(opt)
	for _, s := range fr.Series {
		for _, p := range s.Points {
			if p.Converged != p.Trials {
				t.Fatalf("%s n=%d: %d/%d converged", s.Name, p.Config.N, p.Converged, p.Trials)
			}
		}
	}
	if b := fr.Bound(); b > 9 {
		t.Fatalf("max steps/n = %.2f exceeds the paper's 7n envelope plus slack", b)
	}
}

// TestFig13SmokeBound checks the MAX-GBG 8n envelope.
func TestFig13SmokeBound(t *testing.T) {
	opt := Options{Ns: []int{12, 20}, Trials: 15, Seed: 6}
	fr := Fig13(opt)
	if b := fr.Bound(); b > 10 {
		t.Fatalf("max steps/n = %.2f exceeds the paper's 8n envelope plus slack", b)
	}
}

// TestFig12TopologiesRun exercises the topology comparison plumbing.
func TestFig12TopologiesRun(t *testing.T) {
	opt := Options{Ns: []int{10}, Trials: 8, Seed: 8}
	fr := Fig12(opt)
	// 2 policies x 3 topologies x 4 alphas.
	if len(fr.Series) != 24 {
		t.Fatalf("series = %d, want 24", len(fr.Series))
	}
	out := fr.Render()
	if !strings.Contains(out, "dl a=n/2 random") {
		t.Fatalf("render missing series:\n%s", out)
	}
}

func TestFigureDispatch(t *testing.T) {
	opt := Options{Ns: []int{10}, Trials: 4, Seed: 9}
	for _, num := range []int{7, 8, 11, 12, 13, 14} {
		if _, err := Figure(num, opt); err != nil {
			t.Fatalf("figure %d: %v", num, err)
		}
	}
	if _, err := Figure(2, opt); err == nil {
		t.Fatal("expected error for theory figures")
	}
}

// TestGBGDeletionPhase reproduces the Section 4.2.2 trajectory
// observation: on dense initial networks with high alpha, the first phase
// of a SUM-GBG run is dominated by deletions.
func TestGBGDeletionPhase(t *testing.T) {
	cfg := Config{
		Name:   "phase",
		N:      20,
		Trials: 10,
		Seed:   11,
		NewGame: func(n int) game.Game {
			return game.NewGreedyBuy(game.Sum, game.AlphaInt(int64(n)))
		},
		NewInitial: func(n int, r *gen.Rand) *graph.Graph {
			return gen.RandomConnected(n, 4*n, r)
		},
		Policy: RandomPolicy,
	}
	st := Run(cfg, 4)
	if st.Converged != st.Trials {
		t.Fatalf("convergence incomplete: %+v", st)
	}
	del := st.TotalMoves[game.KindDelete]
	buy := st.TotalMoves[game.KindBuy]
	if del <= buy {
		t.Fatalf("expected deletions to dominate buys at m=4n, alpha=n: del=%d buy=%d", del, buy)
	}
	// Stable networks at alpha = n are sparse; from 4n initial edges, at
	// least 2n net deletions must happen in every converging run.
	if del-buy < 2*20*st.Trials {
		t.Fatalf("net deletions %d below structural minimum", del-buy)
	}
}

// TestRunGracefulDegenerate pins the pre-spine behaviour for degenerate
// configurations: no trials (and no name) yields zero stats, no panic.
func TestRunGracefulDegenerate(t *testing.T) {
	cfg := smallASGConfig(MaxCostPolicy)
	cfg.Name = ""
	cfg.Trials = 0
	st := Run(cfg, 2)
	if st.Trials != 0 || st.Converged != 0 || st.AvgSteps != 0 || st.MinSteps != 0 {
		t.Fatalf("degenerate run not zero-valued: %+v", st)
	}
}
