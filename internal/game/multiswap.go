package game

import (
	"fmt"

	"ncg/internal/graph"
)

// Multi-swap extensions of the swap games, used by Theorem 2.16 and
// Theorem 3.3 ("the result holds even if agents are allowed to perform
// multi-swaps"): an agent replaces k >= 1 of her (owned, in the ASG)
// neighbours by k new distinct non-neighbours in a single move.
//
// Enumeration is combinatorial and intended for the paper's construction
// sizes; callers should keep degrees and n small.

// multiSwapDrops returns the edges u may multi-swap under gm, which must be
// a *Swap or *AsymSwap.
func multiSwapDrops(gm Game, g graph.Store, u int) ([]int, *base) {
	switch t := gm.(type) {
	case *Swap:
		return g.NeighborList(u, nil), &t.base
	case *AsymSwap:
		return g.OwnedList(u, nil), &t.base
	}
	panic(fmt.Sprintf("game: multi-swaps undefined for %T", gm))
}

// MultiSwapImprovingMoves returns every strictly improving multi-swap of u
// with 1 <= k <= maxK swapped edges (maxK <= 0 means no limit). Single
// swaps (k = 1) are included.
func MultiSwapImprovingMoves(gm Game, g graph.Store, u int, s *Scratch, maxK int) []Move {
	moves, _ := multiSwapScan(gm, g, u, s, maxK, false)
	return moves
}

// MultiSwapBest returns the multi-swaps of u achieving the minimum cost over
// all multi-swaps with at most maxK edges, together with that cost, provided
// it strictly improves; otherwise it returns (nil, current cost).
func MultiSwapBest(gm Game, g graph.Store, u int, s *Scratch, maxK int) ([]Move, Cost) {
	return multiSwapScan(gm, g, u, s, maxK, true)
}

func multiSwapScan(gm Game, g graph.Store, u int, s *Scratch, maxK int, bestOnly bool) ([]Move, Cost) {
	drops, b := multiSwapDrops(gm, g, u)
	targets := b.swapTargets(g, u, nil)
	cur := agentCost(g, u, b.kind, modelSwap, s)
	best := cur
	var out []Move
	limit := len(drops)
	if maxK > 0 && maxK < limit {
		limit = maxK
	}
	if limit > len(targets) {
		limit = len(targets)
	}
	dsel := make([]int, 0, limit)
	tsel := make([]int, 0, limit)

	var chooseTargets func(k, from int)
	evaluate := func() {
		m := Move{Agent: u, Drop: append([]int(nil), dsel...), Add: append([]int(nil), tsel...)}
		c := evalMove(g, m, b.kind, modelSwap, s)
		if !bestOnly {
			if c.Less(cur, b.alpha) {
				out = append(out, m)
			}
			return
		}
		switch c.Cmp(best, b.alpha) {
		case -1:
			out = out[:0]
			out = append(out, m)
			best = c
		case 0:
			if best.Less(cur, b.alpha) {
				out = append(out, m)
			}
		}
	}
	chooseTargets = func(k, from int) {
		if len(tsel) == k {
			evaluate()
			return
		}
		for i := from; i < len(targets); i++ {
			tsel = append(tsel, targets[i])
			chooseTargets(k, i+1)
			tsel = tsel[:len(tsel)-1]
		}
	}
	var chooseDrops func(k, from int)
	chooseDrops = func(k, from int) {
		if len(dsel) == k {
			chooseTargets(k, 0)
			return
		}
		for i := from; i < len(drops); i++ {
			dsel = append(dsel, drops[i])
			chooseDrops(k, i+1)
			dsel = dsel[:len(dsel)-1]
		}
	}
	for k := 1; k <= limit; k++ {
		chooseDrops(k, 0)
	}
	if bestOnly && !best.Less(cur, b.alpha) {
		return nil, cur
	}
	return out, best
}
