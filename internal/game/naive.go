package game

import (
	"ncg/internal/graph"
)

// Reference implementations of the best-response scans that re-evaluate
// every candidate strategy change with a full BFS (apply, search, undo).
// They predate the delta evaluator of delta.go and are kept as the ground
// truth for equivalence tests and before/after benchmarks. Unlike the
// delta scans they mutate the graph transiently, so they must never run
// concurrently on a shared graph.

// evalSwap computes u's cost after swapping the edge {u,x} to {u,y},
// mutating g in place and restoring it (including the original owner of
// {u,x}) before returning. It allocates nothing.
func evalSwap(b *base, g graph.Store, u, x, y int, model costModel, s *Scratch) Cost {
	owner := g.Owner(u, x)
	g.RemoveEdge(u, x)
	g.AddEdge(u, y)
	c := agentCost(g, u, b.kind, model, s)
	g.RemoveEdge(u, y)
	if owner == u {
		g.AddEdge(u, x)
	} else {
		g.AddEdge(x, u)
	}
	return c
}

// swapAnyNaive is the full-BFS form of swapAny.
func swapAnyNaive(b *base, g graph.Store, u int, drops dropFunc, model costModel, s *Scratch) bool {
	cur := agentCost(g, u, b.kind, model, s)
	s.buf = drops(g, u, s.buf[:0])
	s.buf2 = b.swapTargets(g, u, s.buf2[:0])
	for _, x := range s.buf {
		for _, y := range s.buf2 {
			if evalSwap(b, g, u, x, y, model, s).Less(cur, b.alpha) {
				return true
			}
		}
	}
	return false
}

// swapScanNaive is the full-BFS form of swapScan.
func swapScanNaive(b *base, g graph.Store, u int, drops dropFunc, model costModel, s *Scratch, dst []Move) []Move {
	s.pool = s.pool[:0]
	cur := agentCost(g, u, b.kind, model, s)
	s.buf = drops(g, u, s.buf[:0])
	s.buf2 = b.swapTargets(g, u, s.buf2[:0])
	for _, x := range s.buf {
		for _, y := range s.buf2 {
			if evalSwap(b, g, u, x, y, model, s).Less(cur, b.alpha) {
				dst = append(dst, Move{Agent: u, Drop: s.single(x), Add: s.single(y)})
			}
		}
	}
	return dst
}

// swapBestNaive is the full-BFS form of swapBest.
func swapBestNaive(b *base, g graph.Store, u int, drops dropFunc, model costModel, s *Scratch, dst []Move) ([]Move, Cost) {
	s.pool = s.pool[:0]
	cur := agentCost(g, u, b.kind, model, s)
	best := cur
	start := len(dst)
	s.buf = drops(g, u, s.buf[:0])
	s.buf2 = b.swapTargets(g, u, s.buf2[:0])
	for _, x := range s.buf {
		for _, y := range s.buf2 {
			c := evalSwap(b, g, u, x, y, model, s)
			switch c.Cmp(best, b.alpha) {
			case -1:
				dst = dst[:start]
				dst = append(dst, Move{Agent: u, Drop: s.single(x), Add: s.single(y)})
				best = c
			case 0:
				if best.Less(cur, b.alpha) {
					dst = append(dst, Move{Agent: u, Drop: s.single(x), Add: s.single(y)})
				}
			}
		}
	}
	if !best.Less(cur, b.alpha) {
		return dst[:start], cur
	}
	return dst, best
}

// forEachGreedyMoveNaive is the full-BFS form of GreedyBuy.forEachGreedyMove,
// enumerating deletions, swaps and additions in the same order.
func (gb *GreedyBuy) forEachGreedyMoveNaive(g graph.Store, u int, s *Scratch, fn func(x, y int, c Cost) bool) {
	s.buf = g.OwnedList(u, s.buf[:0])
	s.buf2 = gb.swapTargets(g, u, s.buf2[:0])
	// Deletions.
	for _, x := range s.buf {
		g.RemoveEdge(u, x)
		c := agentCost(g, u, gb.kind, modelUnilateral, s)
		g.AddEdge(u, x)
		if !fn(x, -1, c) {
			return
		}
	}
	// Swaps.
	for _, x := range s.buf {
		for _, y := range s.buf2 {
			c := evalSwap(&gb.base, g, u, x, y, modelUnilateral, s)
			if !fn(x, y, c) {
				return
			}
		}
	}
	// Additions.
	for _, y := range s.buf2 {
		g.AddEdge(u, y)
		c := agentCost(g, u, gb.kind, modelUnilateral, s)
		g.RemoveEdge(u, y)
		if !fn(-1, y, c) {
			return
		}
	}
}

// naiveScanner is implemented by games with a dedicated full-BFS reference
// scan; games whose regular methods already re-evaluate every candidate
// with a BFS (Buy, Bilateral) do not need one.
type naiveScanner interface {
	naiveHasImproving(g graph.Store, u int, s *Scratch) bool
	naiveBestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost)
	naiveImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move
}

func (sg *Swap) naiveHasImproving(g graph.Store, u int, s *Scratch) bool {
	return swapAnyNaive(&sg.base, g, u, sg.dropCandidates, modelSwap, s)
}

func (sg *Swap) naiveBestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	return swapBestNaive(&sg.base, g, u, sg.dropCandidates, modelSwap, s, dst)
}

func (sg *Swap) naiveImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	return swapScanNaive(&sg.base, g, u, sg.dropCandidates, modelSwap, s, dst)
}

func (ag *AsymSwap) naiveHasImproving(g graph.Store, u int, s *Scratch) bool {
	return swapAnyNaive(&ag.base, g, u, ag.dropCandidates, modelSwap, s)
}

func (ag *AsymSwap) naiveBestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	return swapBestNaive(&ag.base, g, u, ag.dropCandidates, modelSwap, s, dst)
}

func (ag *AsymSwap) naiveImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	return swapScanNaive(&ag.base, g, u, ag.dropCandidates, modelSwap, s, dst)
}

func (gb *GreedyBuy) naiveHasImproving(g graph.Store, u int, s *Scratch) bool {
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	found := false
	gb.forEachGreedyMoveNaive(g, u, s, func(x, y int, c Cost) bool {
		if c.Less(cur, gb.alpha) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (gb *GreedyBuy) naiveBestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	s.pool = s.pool[:0]
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	best := cur
	start := len(dst)
	gb.forEachGreedyMoveNaive(g, u, s, func(x, y int, c Cost) bool {
		switch c.Cmp(best, gb.alpha) {
		case -1:
			dst = dst[:start]
			dst = append(dst, greedyMoveNaive(u, x, y, s))
			best = c
		case 0:
			if best.Less(cur, gb.alpha) {
				dst = append(dst, greedyMoveNaive(u, x, y, s))
			}
		}
		return true
	})
	if !best.Less(cur, gb.alpha) {
		return dst[:start], cur
	}
	return dst, best
}

func (gb *GreedyBuy) naiveImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	s.pool = s.pool[:0]
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	gb.forEachGreedyMoveNaive(g, u, s, func(x, y int, c Cost) bool {
		if c.Less(cur, gb.alpha) {
			dst = append(dst, greedyMoveNaive(u, x, y, s))
		}
		return true
	})
	return dst
}

// greedyMoveNaive builds a move with pool-backed Drop/Add slices, like the
// delta path's greedyMove, so naive enumeration allocates nothing.
func greedyMoveNaive(u, x, y int, s *Scratch) Move {
	m := Move{Agent: u}
	if x >= 0 {
		m.Drop = s.single(x)
	}
	if y >= 0 {
		m.Add = s.single(y)
	}
	return m
}

// naiveGame wraps a game so its scans run the full-BFS reference path.
type naiveGame struct {
	Game
}

// IsNaive reports whether gm is a Naive-wrapped game.
func IsNaive(gm Game) bool {
	_, ok := gm.(naiveGame)
	return ok
}

// smallNaiveN is the vertex count below which the naive early-exit scans
// beat the delta evaluator: on tiny networks a full BFS costs a handful of
// word operations, so the evaluator's row matrices, witness buckets and
// bound caches are pure constant-factor overhead.
const smallNaiveN = 32

// PreferNaiveScan reports the regimes where the delta evaluator and the
// incremental distance cache are known to lose to the naive full-BFS path.
// Two are known. Tiny networks (n < 32): see smallNaiveN; the paper's
// n = 10..50 experiment grids start inside this regime. And MAX distance
// cost on a tree under a swap variant: there a single swap reroutes
// shortest paths for a constant fraction of all vertex pairs, so
// maintaining the all-pairs matrix costs more than the searches it saves,
// while the early-exiting naive probes are near optimal (the Theorem 2.11
// path gadget is the canonical instance). Swap variants preserve the edge
// count, so a tree stays a tree for the whole run; the vertex count never
// changes; so neither pre-check needs revisiting mid-run. Process engines
// use this to fall back to the naive scans, which enumerate identical
// moves in identical order.
func PreferNaiveScan(gm Game, g graph.Store) bool {
	if ng, ok := gm.(naiveGame); ok {
		gm = ng.Game
	}
	if _, ok := gm.(naiveScanner); !ok {
		return false
	}
	if g.N() < smallNaiveN {
		return true
	}
	switch gm.(type) {
	case *Swap, *AsymSwap:
	default:
		return false
	}
	return gm.DistKind() == Max && g.M() < g.N()
}

// Naive returns gm with its best-response scans replaced by the full-BFS
// reference implementations, for equivalence tests and before/after
// benchmarks. Games without a dedicated reference scan (Buy, Bilateral,
// whose regular methods already BFS every candidate) are returned as-is.
func Naive(gm Game) Game {
	if _, ok := gm.(naiveScanner); !ok {
		return gm
	}
	return naiveGame{gm}
}

// ProbesPurely reports false: the reference scans mutate the graph while
// probing, overriding any promoted claim of the wrapped game.
func (ng naiveGame) ProbesPurely() bool { return false }

func (ng naiveGame) HasImproving(g graph.Store, u int, s *Scratch) bool {
	return ng.Game.(naiveScanner).naiveHasImproving(g, u, s)
}

func (ng naiveGame) BestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	return ng.Game.(naiveScanner).naiveBestMoves(g, u, s, dst)
}

func (ng naiveGame) ImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	return ng.Game.(naiveScanner).naiveImprovingMoves(g, u, s, dst)
}
