package game

import (
	"ncg/internal/graph"
)

// Swap is the Swap Game of Alon et al. (SPAA'10): an agent may replace one
// incident edge — regardless of who owns it — by an edge to a vertex that is
// not currently a neighbour. Agents pay distance cost only.
type Swap struct {
	base
}

// NewSwap returns the Swap Game with the given distance-cost kind.
func NewSwap(kind DistKind) *Swap {
	return &Swap{base{kind: kind, alpha: AlphaInt(1)}}
}

// NewSwapHost returns the Swap Game restricted to a host graph: swap targets
// must be host edges.
func NewSwapHost(kind DistKind, host *graph.Graph) *Swap {
	return &Swap{base{kind: kind, alpha: AlphaInt(1), host: host}}
}

func (sg *Swap) Name() string {
	return sg.kind.String() + "-SG"
}

// OwnershipMatters is false: Swap Game states are edge sets.
func (sg *Swap) OwnershipMatters() bool { return false }

// Cost returns u's distance cost.
func (sg *Swap) Cost(g *graph.Graph, u int, s *Scratch) Cost {
	return agentCost(g, u, sg.kind, modelSwap, s)
}

func (sg *Swap) dropCandidates(g *graph.Graph, u int, dst []int) []int {
	return g.Neighbors(u).Elements(dst)
}

func (sg *Swap) HasImproving(g *graph.Graph, u int, s *Scratch) bool {
	return swapScan(&sg.base, g, u, sg.dropCandidates, modelSwap, s, scanAny, nil) != nil
}

func (sg *Swap) BestMoves(g *graph.Graph, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	return swapBest(&sg.base, g, u, sg.dropCandidates, modelSwap, s, dst)
}

func (sg *Swap) ImprovingMoves(g *graph.Graph, u int, s *Scratch, dst []Move) []Move {
	return swapScan(&sg.base, g, u, sg.dropCandidates, modelSwap, s, scanAll, dst)
}

// AsymSwap is the Asymmetric Swap Game of Mihalák & Schlegel: only the owner
// of an edge may swap it.
type AsymSwap struct {
	base
}

// NewAsymSwap returns the Asymmetric Swap Game with the given distance-cost
// kind.
func NewAsymSwap(kind DistKind) *AsymSwap {
	return &AsymSwap{base{kind: kind, alpha: AlphaInt(1)}}
}

// NewAsymSwapHost returns the ASG restricted to a host graph.
func NewAsymSwapHost(kind DistKind, host *graph.Graph) *AsymSwap {
	return &AsymSwap{base{kind: kind, alpha: AlphaInt(1), host: host}}
}

func (ag *AsymSwap) Name() string {
	return ag.kind.String() + "-ASG"
}

// OwnershipMatters is true: ASG strategies are owned-neighbour sets.
func (ag *AsymSwap) OwnershipMatters() bool { return true }

// Cost returns u's distance cost (swap games have no edge-cost term).
func (ag *AsymSwap) Cost(g *graph.Graph, u int, s *Scratch) Cost {
	return agentCost(g, u, ag.kind, modelSwap, s)
}

func (ag *AsymSwap) dropCandidates(g *graph.Graph, u int, dst []int) []int {
	return g.OwnedNeighbors(u).Elements(dst)
}

func (ag *AsymSwap) HasImproving(g *graph.Graph, u int, s *Scratch) bool {
	return swapScan(&ag.base, g, u, ag.dropCandidates, modelSwap, s, scanAny, nil) != nil
}

func (ag *AsymSwap) BestMoves(g *graph.Graph, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	return swapBest(&ag.base, g, u, ag.dropCandidates, modelSwap, s, dst)
}

func (ag *AsymSwap) ImprovingMoves(g *graph.Graph, u int, s *Scratch, dst []Move) []Move {
	return swapScan(&ag.base, g, u, ag.dropCandidates, modelSwap, s, scanAll, dst)
}

type scanMode int

const (
	scanAny scanMode = iota // stop at the first improving move
	scanAll                 // collect every improving move
)

type dropFunc func(g *graph.Graph, u int, dst []int) []int

// evalSwap computes u's cost after swapping the edge {u,x} to {u,y},
// mutating g in place and restoring it (including the original owner of
// {u,x}) before returning. It allocates nothing.
func evalSwap(b *base, g *graph.Graph, u, x, y int, model costModel, s *Scratch) Cost {
	owner := g.Owner(u, x)
	g.RemoveEdge(u, x)
	g.AddEdge(u, y)
	c := agentCost(g, u, b.kind, model, s)
	g.RemoveEdge(u, y)
	if owner == u {
		g.AddEdge(u, x)
	} else {
		g.AddEdge(x, u)
	}
	return c
}

// swapScan enumerates single-edge swaps of u. In scanAny mode it returns a
// non-nil slice (possibly sharing dst's backing array) as soon as one
// improving swap exists; in scanAll mode it appends every improving swap to
// dst and returns it (nil if none).
func swapScan(b *base, g *graph.Graph, u int, drops dropFunc, model costModel, s *Scratch, mode scanMode, dst []Move) []Move {
	cur := agentCost(g, u, b.kind, model, s)
	s.buf = drops(g, u, s.buf[:0])
	s.buf2 = b.swapTargets(g, u, s.buf2[:0])
	found := false
	for _, x := range s.buf {
		for _, y := range s.buf2 {
			c := evalSwap(b, g, u, x, y, model, s)
			if c.Less(cur, b.alpha) {
				found = true
				dst = append(dst, Move{Agent: u, Drop: []int{x}, Add: []int{y}})
				if mode == scanAny {
					return dst
				}
			}
		}
	}
	if !found {
		return nil
	}
	return dst
}

// swapBest returns the best strictly improving swaps of u and their cost.
func swapBest(b *base, g *graph.Graph, u int, drops dropFunc, model costModel, s *Scratch, dst []Move) ([]Move, Cost) {
	cur := agentCost(g, u, b.kind, model, s)
	best := cur
	start := len(dst)
	s.buf = drops(g, u, s.buf[:0])
	s.buf2 = b.swapTargets(g, u, s.buf2[:0])
	for _, x := range s.buf {
		for _, y := range s.buf2 {
			c := evalSwap(b, g, u, x, y, model, s)
			switch c.Cmp(best, b.alpha) {
			case -1:
				dst = dst[:start]
				dst = append(dst, Move{Agent: u, Drop: []int{x}, Add: []int{y}})
				best = c
			case 0:
				if best.Less(cur, b.alpha) {
					dst = append(dst, Move{Agent: u, Drop: []int{x}, Add: []int{y}})
				}
			}
		}
	}
	if !best.Less(cur, b.alpha) {
		return dst[:start], cur
	}
	return dst, best
}

var (
	_ Game = (*Swap)(nil)
	_ Game = (*AsymSwap)(nil)
)
