package game

import (
	"ncg/internal/graph"
)

// Swap is the Swap Game of Alon et al. (SPAA'10): an agent may replace one
// incident edge — regardless of who owns it — by an edge to a vertex that is
// not currently a neighbour. Agents pay distance cost only.
type Swap struct {
	base
}

// NewSwap returns the Swap Game with the given distance-cost kind.
func NewSwap(kind DistKind) *Swap {
	return &Swap{base{kind: kind, alpha: AlphaInt(1)}}
}

// NewSwapHost returns the Swap Game restricted to a host graph: swap targets
// must be host edges.
func NewSwapHost(kind DistKind, host graph.Store) *Swap {
	return &Swap{base{kind: kind, alpha: AlphaInt(1), host: host}}
}

func (sg *Swap) Name() string {
	return sg.kind.String() + "-SG"
}

// OwnershipMatters is false: Swap Game states are edge sets.
func (sg *Swap) OwnershipMatters() bool { return false }

// Cost returns u's distance cost.
func (sg *Swap) Cost(g graph.Store, u int, s *Scratch) Cost {
	return agentCost(g, u, sg.kind, modelSwap, s)
}

func (sg *Swap) dropCandidates(g graph.Store, u int, dst []int) []int {
	return g.NeighborList(u, dst)
}

func (sg *Swap) HasImproving(g graph.Store, u int, s *Scratch) bool {
	return swapAny(&sg.base, g, u, sg.dropCandidates, modelSwap, s)
}

// ProbesPurely reports that HasImproving never mutates the graph, so
// concurrent probes on a shared graph are safe with per-goroutine scratch.
func (sg *Swap) ProbesPurely() bool { return true }

func (sg *Swap) BestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	return swapBest(&sg.base, g, u, sg.dropCandidates, modelSwap, s, dst)
}

func (sg *Swap) ImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	return swapScan(&sg.base, g, u, sg.dropCandidates, modelSwap, s, dst)
}

// AsymSwap is the Asymmetric Swap Game of Mihalák & Schlegel: only the owner
// of an edge may swap it.
type AsymSwap struct {
	base
}

// NewAsymSwap returns the Asymmetric Swap Game with the given distance-cost
// kind.
func NewAsymSwap(kind DistKind) *AsymSwap {
	return &AsymSwap{base{kind: kind, alpha: AlphaInt(1)}}
}

// NewAsymSwapHost returns the ASG restricted to a host graph.
func NewAsymSwapHost(kind DistKind, host graph.Store) *AsymSwap {
	return &AsymSwap{base{kind: kind, alpha: AlphaInt(1), host: host}}
}

func (ag *AsymSwap) Name() string {
	return ag.kind.String() + "-ASG"
}

// OwnershipMatters is true: ASG strategies are owned-neighbour sets.
func (ag *AsymSwap) OwnershipMatters() bool { return true }

// Cost returns u's distance cost (swap games have no edge-cost term).
func (ag *AsymSwap) Cost(g graph.Store, u int, s *Scratch) Cost {
	return agentCost(g, u, ag.kind, modelSwap, s)
}

func (ag *AsymSwap) dropCandidates(g graph.Store, u int, dst []int) []int {
	return g.OwnedList(u, dst)
}

func (ag *AsymSwap) HasImproving(g graph.Store, u int, s *Scratch) bool {
	return swapAny(&ag.base, g, u, ag.dropCandidates, modelSwap, s)
}

// ProbesPurely reports that HasImproving never mutates the graph, so
// concurrent probes on a shared graph are safe with per-goroutine scratch.
func (ag *AsymSwap) ProbesPurely() bool { return true }

func (ag *AsymSwap) BestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	return swapBest(&ag.base, g, u, ag.dropCandidates, modelSwap, s, dst)
}

func (ag *AsymSwap) ImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	return swapScan(&ag.base, g, u, ag.dropCandidates, modelSwap, s, dst)
}

type dropFunc func(g graph.Store, u int, dst []int) []int

// swapPrepare fills s.buf with u's drop candidates, s.buf2 with its swap
// targets, opens and initializes the delta scan, and returns u's current
// cost, all without mutating the graph.
func swapPrepare(b *base, g graph.Store, u int, drops dropFunc, model costModel, s *Scratch) Cost {
	s.buf = drops(g, u, s.buf[:0])
	s.buf2 = b.swapTargets(g, u, s.buf2[:0])
	s.deltaBegin(g, u)
	s.deltaInit(g, u)
	return Cost{Halves: curHalves(g, u, model), Dist: s.deltaCurDist(b.kind)}
}

// swapAny reports whether u has a strictly improving single-edge swap. It
// exits as soon as one is found. With a distance oracle installed (swap
// games have no edge-cost term, so costs are pure distances) each target
// is first checked against its oracle bound; hopeless targets cost no
// search at all, and the neighbour-row preparation itself is deferred
// until some target survives — a happy agent is then certified without a
// single BFS. With a landmark oracle instead, one probe search arms the
// triangle-inequality filter (see landmark.go), and again the neighbour
// rows are only built once some target's bound survives.
func swapAny(b *base, g graph.Store, u int, drops dropFunc, model costModel, s *Scratch) bool {
	if model == modelSwap && s.oracle == nil && s.lmk != nil {
		s.buf = drops(g, u, s.buf[:0])
		if len(s.buf) == 0 {
			return false
		}
		s.deltaBegin(g, u)
		if s.lmProbe(g, u, b.kind) {
			s.buf2 = b.swapTargets(g, u, s.buf2[:0])
			cur := s.lm.curSum
			if b.kind == Max {
				cur = s.lm.curEcc
			}
			if s.delta.dn >= deltaBatchMinN {
				// At scale the surviving targets' rows go through the
				// batched kernel, 64 per group, instead of one search each.
				return s.lmAnyImproving(g, u, b.kind, cur)
			}
			for _, y := range s.buf2 {
				if s.lmTargetBound(y, b.kind) >= cur {
					continue
				}
				s.deltaInit(g, u)
				for _, x := range s.buf {
					if s.deltaSwapDist(g, u, x, y, b.kind) < cur {
						return true
					}
				}
			}
			return false
		}
	}
	if model == modelSwap && s.oracle != nil {
		s.buf = drops(g, u, s.buf[:0])
		if len(s.buf) == 0 {
			return false
		}
		s.buf2 = b.swapTargets(g, u, s.buf2[:0])
		s.deltaBegin(g, u)
		cur := s.deltaOracleCurDist(u, b.kind)
		for _, y := range s.buf2 {
			bound, _ := s.deltaTargetBound(u, y, b.kind, cur)
			if bound >= cur {
				continue
			}
			s.deltaInit(g, u)
			for _, x := range s.buf {
				if b.kind == Sum && s.deltaPairBoundSum(u, x, y, bound) >= cur {
					continue
				}
				if s.deltaSwapDist(g, u, x, y, b.kind) < cur {
					return true
				}
			}
		}
		return false
	}
	cur := swapPrepare(b, g, u, drops, model, s)
	for _, x := range s.buf {
		halves := deltaSwapHalves(g, u, x, model)
		for _, y := range s.buf2 {
			c := Cost{Halves: halves, Dist: s.deltaSwapDist(g, u, x, y, b.kind)}
			if c.Less(cur, b.alpha) {
				return true
			}
		}
	}
	return false
}

// swapScan appends every strictly improving single-edge swap of u to dst.
// The moves' Drop/Add slices are pooled in s and remain valid only until
// the next enumeration on s; callers that retain them must Clone.
func swapScan(b *base, g graph.Store, u int, drops dropFunc, model costModel, s *Scratch, dst []Move) []Move {
	s.pool = s.pool[:0]
	cur := swapPrepare(b, g, u, drops, model, s)
	prune := model == modelSwap && s.oracle != nil
	lmPrune := model == modelSwap && s.oracle == nil && s.lmk != nil &&
		s.lmArm(u, b.kind)
	// At scale the surviving targets are scored up front through the
	// batched kernel; the emission loop below then only looks scores up,
	// in unchanged order.
	lmScore := lmPrune && s.lmBatchScores(g, u, b.kind, cur.Dist, true)
	nt := len(s.buf2)
	for xi, x := range s.buf {
		halves := deltaSwapHalves(g, u, x, model)
		for yi, y := range s.buf2 {
			if prune {
				// A target whose oracle bound cannot beat the current
				// cost yields no improving swap for any drop; for SUM the
				// pair bound also folds in this drop's penalty.
				bound, _ := s.deltaTargetBound(u, y, b.kind, cur.Dist)
				if bound >= cur.Dist {
					continue
				}
				if b.kind == Sum && s.deltaPairBoundSum(u, x, y, bound) >= cur.Dist {
					continue
				}
			}
			// The landmark bound likewise holds for every drop.
			if lmPrune && s.lmTargetBound(y, b.kind) >= cur.Dist {
				continue
			}
			var dist int64
			if lmScore {
				dist = s.lm.score[xi*nt+yi]
			} else {
				dist = s.deltaSwapDist(g, u, x, y, b.kind)
			}
			c := Cost{Halves: halves, Dist: dist}
			if c.Less(cur, b.alpha) {
				dst = append(dst, Move{Agent: u, Drop: s.single(x), Add: s.single(y)})
			}
		}
	}
	return dst
}

// swapBest returns the best strictly improving swaps of u and their cost.
// Like swapScan, the returned moves' Drop/Add slices are pooled in s.
func swapBest(b *base, g graph.Store, u int, drops dropFunc, model costModel, s *Scratch, dst []Move) ([]Move, Cost) {
	s.pool = s.pool[:0]
	cur := swapPrepare(b, g, u, drops, model, s)
	best := cur
	start := len(dst)
	prune := model == modelSwap && s.oracle != nil
	lmPrune := model == modelSwap && s.oracle == nil && s.lmk != nil &&
		s.lmArm(u, b.kind)
	// The running best only descends from cur, so the non-strict memo set
	// (bound <= cur) covers every pair the emission loop keeps.
	lmScore := lmPrune && s.lmBatchScores(g, u, b.kind, cur.Dist, false)
	nt := len(s.buf2)
	for xi, x := range s.buf {
		halves := deltaSwapHalves(g, u, x, model)
		for yi, y := range s.buf2 {
			if prune {
				// A target bounded strictly above the running best can
				// neither improve on it nor tie it; for SUM the pair
				// bound also folds in this drop's penalty.
				bound, _ := s.deltaTargetBound(u, y, b.kind, best.Dist+1)
				if bound > best.Dist {
					continue
				}
				if b.kind == Sum && s.deltaPairBoundSum(u, x, y, bound) > best.Dist {
					continue
				}
			}
			// A landmark bound strictly above the running best can
			// neither improve on it nor tie it, whatever the drop.
			if lmPrune && s.lmTargetBound(y, b.kind) > best.Dist {
				continue
			}
			var dist int64
			if lmScore {
				dist = s.lm.score[xi*nt+yi]
			} else {
				dist = s.deltaSwapDist(g, u, x, y, b.kind)
			}
			c := Cost{Halves: halves, Dist: dist}
			switch c.Cmp(best, b.alpha) {
			case -1:
				dst = dst[:start]
				dst = append(dst, Move{Agent: u, Drop: s.single(x), Add: s.single(y)})
				best = c
			case 0:
				if best.Less(cur, b.alpha) {
					dst = append(dst, Move{Agent: u, Drop: s.single(x), Add: s.single(y)})
				}
			}
		}
	}
	if !best.Less(cur, b.alpha) {
		return dst[:start], cur
	}
	return dst, best
}

var (
	_ Game = (*Swap)(nil)
	_ Game = (*AsymSwap)(nil)
)
