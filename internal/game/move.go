package game

import (
	"fmt"
	"sort"
	"strings"

	"ncg/internal/graph"
)

// MoveKind classifies strategy changes for statistics and tie-breaking.
type MoveKind int

const (
	// KindDelete removes edges only.
	KindDelete MoveKind = iota
	// KindSwap replaces exactly one neighbour by one new neighbour.
	KindSwap
	// KindBuy adds edges only.
	KindBuy
	// KindMulti is any other combination (multi-swaps, general Buy Game
	// or bilateral strategy changes).
	KindMulti
)

func (k MoveKind) String() string {
	switch k {
	case KindDelete:
		return "delete"
	case KindSwap:
		return "swap"
	case KindBuy:
		return "buy"
	default:
		return "multi"
	}
}

// Move is a strategy change of one agent: it stops maintaining the edges to
// Drop and creates edges to Add (owned by the agent). In swap games Drop may
// contain neighbours whose edge the agent does not own (the Swap Game lets
// either endpoint swap an edge); in the bilateral game Drop/Add are relative
// to the agent's entire neighbourhood.
type Move struct {
	Agent int
	Drop  []int
	Add   []int
}

// Kind classifies the move.
func (m Move) Kind() MoveKind {
	switch {
	case len(m.Drop) == 1 && len(m.Add) == 1:
		return KindSwap
	case len(m.Drop) == 0 && len(m.Add) >= 1:
		return KindBuy
	case len(m.Add) == 0 && len(m.Drop) >= 1:
		return KindDelete
	default:
		return KindMulti
	}
}

func (m Move) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "agent %d", m.Agent)
	if len(m.Drop) > 0 {
		fmt.Fprintf(&sb, " drop %v", m.Drop)
	}
	if len(m.Add) > 0 {
		fmt.Fprintf(&sb, " add %v", m.Add)
	}
	return sb.String()
}

// Clone returns a deep copy of the move. Enumeration reuses backing slices
// pooled in the Scratch: moves returned by BestMoves or ImprovingMoves are
// valid only until the next enumeration on the same Scratch, so callers
// that retain a move across scans must Clone it.
func (m Move) Clone() Move {
	return Move{
		Agent: m.Agent,
		Drop:  append([]int(nil), m.Drop...),
		Add:   append([]int(nil), m.Add...),
	}
}

// CloneMoves deep-copies every move in ms in place and returns ms, for
// callers that retain an enumerated batch across later scans.
func CloneMoves(ms []Move) []Move {
	for i := range ms {
		ms[i] = ms[i].Clone()
	}
	return ms
}

// Equal reports whether two moves are identical up to the order of their
// Drop and Add lists.
func (m Move) Equal(o Move) bool {
	if m.Agent != o.Agent || len(m.Drop) != len(o.Drop) || len(m.Add) != len(o.Add) {
		return false
	}
	return sameIntSet(m.Drop, o.Drop) && sameIntSet(m.Add, o.Add)
}

func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// ApplyMove performs m on g without recording undo state; unlike Apply it
// allocates nothing. It panics on the same malformed moves as Apply.
func ApplyMove(g graph.Store, m Move) {
	for _, v := range m.Drop {
		g.RemoveEdge(m.Agent, v)
	}
	for _, v := range m.Add {
		g.AddEdge(m.Agent, v)
	}
}

// Applied records the reversible effect of a move so it can be undone; it is
// the mechanism behind candidate evaluation (apply, BFS, undo).
type Applied struct {
	g           graph.Store
	agent       int
	added       []int
	dropped     []int
	dropOwners  []int
	transferred bool
}

// Apply performs m on g and returns the undo record. It panics on malformed
// moves (dropping a missing edge, adding an existing one).
func Apply(g graph.Store, m Move) Applied {
	a := Applied{g: g, agent: m.Agent}
	for _, v := range m.Drop {
		a.dropOwners = append(a.dropOwners, g.Owner(m.Agent, v))
		a.dropped = append(a.dropped, v)
		g.RemoveEdge(m.Agent, v)
	}
	for _, v := range m.Add {
		g.AddEdge(m.Agent, v)
		a.added = append(a.added, v)
	}
	return a
}

// Undo reverts the move, restoring original edge ownership.
func (a Applied) Undo() {
	for _, v := range a.added {
		a.g.RemoveEdge(a.agent, v)
	}
	for i, v := range a.dropped {
		owner := a.dropOwners[i]
		other := a.agent
		if owner == a.agent {
			other = v
		}
		a.g.AddEdge(owner, other)
	}
}
