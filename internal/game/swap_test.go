package game

import (
	"testing"

	"ncg/internal/graph"
)

// pathGraph builds the path 0-1-...-n-1 with edge {i,i+1} owned by i.
func pathGraph(n int) *graph.Graph { return graph.Path(n) }

func TestSwapGameNamesAndFlags(t *testing.T) {
	if NewSwap(Sum).Name() != "SUM-SG" || NewSwap(Max).Name() != "MAX-SG" {
		t.Fatal("SG names")
	}
	if NewAsymSwap(Max).Name() != "MAX-ASG" {
		t.Fatal("ASG name")
	}
	if NewSwap(Sum).OwnershipMatters() || !NewAsymSwap(Sum).OwnershipMatters() {
		t.Fatal("ownership flags")
	}
}

func TestSwapCostIsDistanceOnly(t *testing.T) {
	g := pathGraph(5)
	s := NewScratch(5)
	sg := NewSwap(Sum)
	c := sg.Cost(g, 0, s)
	if c.Halves != 0 || c.Dist != 10 {
		t.Fatalf("cost = %v", c)
	}
	mg := NewSwap(Max)
	if mg.Cost(g, 0, s).Dist != 4 {
		t.Fatal("max cost wrong")
	}
}

func TestSwapEitherEndpointMaySwap(t *testing.T) {
	// Path 0-1-2-3; edge {2,3} is owned by 2, but in the SG agent 3 may
	// still swap it; in the ASG she may not.
	g := pathGraph(4)
	s := NewScratch(4)
	sg := NewSwap(Sum)
	ag := NewAsymSwap(Sum)
	if !sg.HasImproving(g, 3, s) {
		t.Fatal("SG: leaf 3 should improve by swapping its incident edge")
	}
	if ag.HasImproving(g, 3, s) {
		t.Fatal("ASG: agent 3 owns no edge and must be happy")
	}
	if !ag.HasImproving(g, 0, s) {
		t.Fatal("ASG: agent 0 owns {0,1} and can improve by swapping to 1's far side")
	}
}

func TestSwapBestMovesOnPath(t *testing.T) {
	// SUM-SG on path of 5: leaf 0 (sum 10) best swaps its edge to a
	// median of the remaining path 1-2-3-4; both 2 and 3 give sum 8.
	g := pathGraph(5)
	s := NewScratch(5)
	sg := NewSwap(Sum)
	moves, c := sg.BestMoves(g, 0, s, nil)
	if len(moves) != 2 {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0].Drop[0] != 1 || moves[0].Add[0] != 2 || moves[1].Add[0] != 3 {
		t.Fatalf("best swaps = %v, want drop 1 add 2|3", moves)
	}
	// New distances from 0 via 2: 2:1, 1:2, 3:2, 4:3 → 8.
	if c.Dist != 8 {
		t.Fatalf("best cost = %v", c)
	}
}

func TestSwapTies(t *testing.T) {
	// MAX-SG on path of 6: leaf 0 has ecc 5; swapping to 2 gives ecc... to
	// vertex 3 gives ecc 3 (wait: path 0-..-5, attach 0 at 3: distances:
	// 3:1,2:2,1:3,4:2,5:3 → ecc 3); attaching at 2: 2:1,1:2,0.. 3:2,4:3,5:4
	// → ecc 4. So the unique best target is 3? Distances attaching at 4:
	// 4:1,3:2,2:3,1:4,5:2 → 4. So unique best = 3 with ecc 3.
	g := pathGraph(6)
	s := NewScratch(6)
	mg := NewSwap(Max)
	moves, c := mg.BestMoves(g, 0, s, nil)
	if len(moves) != 1 || moves[0].Add[0] != 3 || c.Dist != 3 {
		t.Fatalf("moves=%v c=%v", moves, c)
	}
}

func TestSwapDisconnectingMoveNotImproving(t *testing.T) {
	// Star center swapping a leaf edge to... the center has no
	// non-neighbours, so no moves at all; a middle path vertex swapping a
	// bridge so that the graph disconnects must never be improving.
	g := pathGraph(3)
	s := NewScratch(3)
	sg := NewSwap(Sum)
	if sg.HasImproving(g, 1, s) {
		t.Fatal("middle of P3 cannot improve")
	}
	star := graph.Star(5)
	if sg.HasImproving(star, 0, s) {
		t.Fatal("star center has no admissible swaps")
	}
}

func TestSwapImprovingMovesComplete(t *testing.T) {
	// On P4, SUM-SG, agent 0 (sum 6): swaps 1->2 (sum 5: d=1,1:2,3:2) and
	// 1->3 (distances 3:1,2:2,1:3 sum 6, not improving). So exactly one
	// improving move.
	g := pathGraph(4)
	s := NewScratch(4)
	sg := NewSwap(Sum)
	ms := sg.ImprovingMoves(g, 0, s, nil)
	if len(ms) != 1 || ms[0].Add[0] != 2 {
		t.Fatalf("improving moves = %v", ms)
	}
}

func TestASGHostGraphRestriction(t *testing.T) {
	// Host graph forbids the edge {0,2}: agent 0 on P4 can then only swap
	// to 3, which does not improve, so 0 is happy.
	host := graph.CompleteMinus(4, []graph.Edge{{U: 0, V: 2}})
	g := pathGraph(4)
	s := NewScratch(4)
	ag := NewAsymSwapHost(Sum, host)
	if ag.HasImproving(g, 0, s) {
		t.Fatal("host graph should block the only improving swap")
	}
	agFree := NewAsymSwap(Sum)
	if !agFree.HasImproving(g, 0, s) {
		t.Fatal("without host restriction the swap exists")
	}
}

func TestSwapPreservesGraph(t *testing.T) {
	g := pathGraph(7)
	before := g.Clone()
	s := NewScratch(7)
	sg := NewSwap(Max)
	for u := 0; u < 7; u++ {
		sg.BestMoves(g, u, s, nil)
		sg.ImprovingMoves(g, u, s, nil)
		sg.HasImproving(g, u, s)
	}
	if !g.Equal(before) {
		t.Fatal("enumeration mutated the graph")
	}
}

func TestMultiSwapFindsPairMove(t *testing.T) {
	// Two leaves 3,4 hang off vertex 0 of triangle 0-1-2; agent 0 owns
	// both leaf edges... construct: K3 on {0,1,2}, plus 0->3, 0->4.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(0, 3)
	g.AddEdge(0, 4)
	s := NewScratch(5)
	ag := NewAsymSwap(Sum)
	// Single swaps of agent 0: dropping a leaf edge disconnects it ->
	// infinite; agent 0 is happy under single swaps.
	if ag.HasImproving(g, 0, s) {
		t.Fatal("agent 0 should have no improving single swap")
	}
	// Multi-swaps cannot help either (any reassignment disconnects a leaf
	// or lengthens distances); the enumeration must agree.
	if ms := MultiSwapImprovingMoves(ag, g, 0, s, 0); len(ms) != 0 {
		t.Fatalf("unexpected improving multi-swaps: %v", ms)
	}
	// Sanity: multi-swap enumeration includes single swaps: on P5, agent 0
	// improves, and the best multi-swap coincides with the best single
	// swap.
	p := pathGraph(5)
	sp := NewScratch(5)
	best, c := MultiSwapBest(ag, p, 0, sp, 0)
	if len(best) == 0 || c.Dist != 8 {
		t.Fatalf("multi-swap best = %v cost %v", best, c)
	}
}

func TestMultiSwapBeatsSingleSwapWhenUseful(t *testing.T) {
	// Agent 0 owns edges to the two ends of a long path: 0->2, 0->6 where
	// path is 2-3-4-5-6; plus leaf 1 attached to 0 (owned by 1 to keep 0's
	// budget at 2)... Simpler: star-of-paths where relocating both edges
	// at once helps more than any single swap. Build: path 2-3-4-5-6,
	// agent 0 owns 0->2 and 0->6? Then 0 is on a cycle. Take path
	// 2-3-4-5-6 and agent 0 owns only 0->2; vertex 1 owns 1->0.
	// Multi-swap k=1 suffices there, so instead verify count semantics:
	// enumeration with maxK=1 equals single-swap improving moves.
	g := graph.New(7)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(0, 2)
	g.AddEdge(1, 0)
	s := NewScratch(7)
	ag := NewAsymSwap(Sum)
	single := ag.ImprovingMoves(g, 0, s, nil)
	multi1 := MultiSwapImprovingMoves(ag, g, 0, s, 1)
	if len(single) != len(multi1) {
		t.Fatalf("maxK=1 multi-swaps (%d) != single swaps (%d)", len(multi1), len(single))
	}
}
