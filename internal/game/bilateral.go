package game

import (
	"fmt"

	"ncg/internal/graph"
)

// Bilateral is the bilateral equal-split Buy Game of Corbo & Parkes
// (PODC'05) as analyzed in Section 5 of the paper: a strategy of agent u is
// her entire neighbour set, each incident edge costs alpha/2 to each
// endpoint, edge creation needs bilateral consent, and edge deletion is
// unilateral.
//
// A strategy change of u from N(u) to S is feasible iff no newly connected
// agent's cost increases: c_G(v) >= c_G'(v) for all v in S \ N(u). Only
// feasible changes are enumerated. Like Buy, the strategy space is
// exponential and enumerated exhaustively; intended for the paper's
// constructions (n <= 11).
type Bilateral struct {
	base
}

// NewBilateral returns the bilateral equal-split BG.
func NewBilateral(kind DistKind, alpha Alpha) *Bilateral {
	return &Bilateral{base{kind: kind, alpha: alpha}}
}

// NewBilateralHost returns the bilateral game on a host graph.
func NewBilateralHost(kind DistKind, alpha Alpha, host graph.Store) *Bilateral {
	return &Bilateral{base{kind: kind, alpha: alpha, host: host}}
}

func (bl *Bilateral) Name() string {
	return bl.kind.String() + "-bilateral-BG"
}

// OwnershipMatters is false: bilateral states are edge sets; the internal
// ownership function is bookkeeping only.
func (bl *Bilateral) OwnershipMatters() bool { return false }

// Cost returns u's cost: alpha/2 per incident edge plus distance cost.
func (bl *Bilateral) Cost(g graph.Store, u int, s *Scratch) Cost {
	return agentCost(g, u, bl.kind, modelBilateral, s)
}

// forEachFeasibleStrategy enumerates every feasible strategy change of u and
// calls fn with the move and u's resulting cost. fn returns false to stop.
func (bl *Bilateral) forEachFeasibleStrategy(g graph.Store, u int, s *Scratch, fn func(m Move, c Cost) bool) {
	n := g.N()
	var cands []int
	for v := 0; v < n; v++ {
		if v != u && bl.allowed(u, v) {
			cands = append(cands, v)
		}
	}
	if len(cands) > MaxStrategyBits {
		panic(fmt.Sprintf("game: bilateral strategy space 2^%d exceeds limit 2^%d", len(cands), MaxStrategyBits))
	}
	// Pre-move costs of every potential new neighbour, for consent checks.
	preCost := make([]Cost, n)
	for _, v := range cands {
		preCost[v] = agentCost(g, v, bl.kind, modelBilateral, s)
	}
	curMask := uint32(0)
	for i, v := range cands {
		if g.HasEdge(u, v) {
			curMask |= 1 << uint(i)
		}
	}
	var drop, add []int
	for mask := uint32(0); mask < 1<<uint(len(cands)); mask++ {
		if mask == curMask {
			continue
		}
		drop, add = drop[:0], add[:0]
		for i, v := range cands {
			bit := uint32(1) << uint(i)
			switch {
			case curMask&bit != 0 && mask&bit == 0:
				drop = append(drop, v)
			case curMask&bit == 0 && mask&bit != 0:
				add = append(add, v)
			}
		}
		m := Move{Agent: u, Drop: drop, Add: add}
		ap := Apply(g, m)
		feasible := true
		for _, v := range add {
			if preCost[v].Less(agentCost(g, v, bl.kind, modelBilateral, s), bl.alpha) {
				feasible = false
				break
			}
		}
		var c Cost
		if feasible {
			c = agentCost(g, u, bl.kind, modelBilateral, s)
		}
		ap.Undo()
		if feasible && !fn(m, c) {
			return
		}
	}
}

// Blocks reports whether agent u's strategy change m would be blocked, and
// by whom: the returned list holds every new neighbour whose cost strictly
// increases. An empty list means the move is feasible.
func (bl *Bilateral) Blocks(g graph.Store, m Move, s *Scratch) []int {
	pre := make(map[int]Cost, len(m.Add))
	for _, v := range m.Add {
		pre[v] = agentCost(g, v, bl.kind, modelBilateral, s)
	}
	ap := Apply(g, m)
	var blockers []int
	for _, v := range m.Add {
		if pre[v].Less(agentCost(g, v, bl.kind, modelBilateral, s), bl.alpha) {
			blockers = append(blockers, v)
		}
	}
	ap.Undo()
	return blockers
}

func (bl *Bilateral) HasImproving(g graph.Store, u int, s *Scratch) bool {
	cur := agentCost(g, u, bl.kind, modelBilateral, s)
	found := false
	bl.forEachFeasibleStrategy(g, u, s, func(m Move, c Cost) bool {
		if c.Less(cur, bl.alpha) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (bl *Bilateral) BestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	cur := agentCost(g, u, bl.kind, modelBilateral, s)
	best := cur
	start := len(dst)
	bl.forEachFeasibleStrategy(g, u, s, func(m Move, c Cost) bool {
		switch c.Cmp(best, bl.alpha) {
		case -1:
			dst = dst[:start]
			dst = append(dst, m.Clone())
			best = c
		case 0:
			if best.Less(cur, bl.alpha) {
				dst = append(dst, m.Clone())
			}
		}
		return true
	})
	if !best.Less(cur, bl.alpha) {
		return dst[:start], cur
	}
	return dst, best
}

func (bl *Bilateral) ImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	cur := agentCost(g, u, bl.kind, modelBilateral, s)
	bl.forEachFeasibleStrategy(g, u, s, func(m Move, c Cost) bool {
		if c.Less(cur, bl.alpha) {
			dst = append(dst, m.Clone())
		}
		return true
	})
	return dst
}

var _ Game = (*Bilateral)(nil)
