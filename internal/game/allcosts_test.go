package game

import (
	"math/rand"
	"testing"

	"ncg/internal/graph"
)

// TestAllCostsMatchesPerAgent pins the batched cost pass to per-agent
// gm.Cost across all five games, empty and disconnected graphs included.
func TestAllCostsMatchesPerAgent(t *testing.T) {
	games := []Game{
		NewSwap(Sum),
		NewAsymSwap(Max),
		NewGreedyBuy(Sum, NewAlpha(10, 4)),
		NewBuy(Max, AlphaInt(2)),
		NewBilateral(Sum, NewAlpha(3, 2)),
	}
	r := rand.New(rand.NewSource(5))
	graphs := []*graph.Graph{graph.New(0), graph.New(1), graph.New(6), graph.Path(9)}
	g := graph.New(12)
	for v := 1; v < 10; v++ { // two isolated vertices stay disconnected
		g.AddEdge(v, r.Intn(v))
	}
	graphs = append(graphs, g)
	for _, gm := range games {
		for gi, gr := range graphs {
			s := NewScratch(gr.N())
			got := AllCosts(gr, gm, s, nil)
			if len(got) != gr.N() {
				t.Fatalf("%s graph %d: %d costs, want %d", gm.Name(), gi, len(got), gr.N())
			}
			var wantHalves, wantDist int64
			for u := 0; u < gr.N(); u++ {
				want := gm.Cost(gr, u, s)
				if got[u] != want {
					t.Fatalf("%s graph %d agent %d: %v, want %v", gm.Name(), gi, u, got[u], want)
				}
				wantHalves += want.Halves
				wantDist += want.Dist
			}
			// The fold form must agree with the materialized slice.
			halves, dist := TotalCost(gr, gm, s)
			if halves != wantHalves || dist != wantDist {
				t.Fatalf("%s graph %d: TotalCost = (%d, %d), want (%d, %d)",
					gm.Name(), gi, halves, dist, wantHalves, wantDist)
			}
		}
	}
}
