package game

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAlphaConstruction(t *testing.T) {
	a := NewAlpha(15, 2)
	if a.Float() != 7.5 || a.String() != "15/2" {
		t.Fatalf("alpha = %v (%v)", a.Float(), a.String())
	}
	if AlphaInt(3).String() != "3" {
		t.Fatal("integer alpha format")
	}
	for _, bad := range [][2]int64{{0, 1}, {-1, 2}, {1, 0}, {1, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAlpha(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			NewAlpha(bad[0], bad[1])
		}()
	}
}

func TestCostCmpKnownValues(t *testing.T) {
	a := NewAlpha(15, 2) // alpha = 7.5, the Fig. 9 regime 7 < a < 8
	cases := []struct {
		x, y Cost
		want int
	}{
		// g's swap in Fig. 9: a+15 < a+21.
		{Cost{Halves: 2, Dist: 15}, Cost{Halves: 2, Dist: 21}, -1},
		// f's buy in Fig. 9: 11+a < 19 iff a < 8.
		{Cost{Halves: 2, Dist: 11}, Cost{Halves: 0, Dist: 19}, -1},
		// c's delete in Fig. 9: 16 < 9+a iff a > 7.
		{Cost{Halves: 0, Dist: 16}, Cost{Halves: 2, Dist: 9}, -1},
		// Equality: 2 halves of 15/2 = 7.5 vs ... no integer dist ties at
		// non-integral alpha, so test an exact tie with alpha=4: below.
		{Cost{Halves: 2, Dist: 15}, Cost{Halves: 2, Dist: 15}, 0},
		{Cost{Halves: 0, Dist: DistInf}, Cost{Halves: 0, Dist: 3}, 1},
		{Cost{Halves: 4, Dist: DistInf}, Cost{Halves: 0, Dist: DistInf}, 0},
	}
	for i, c := range cases {
		if got := c.x.Cmp(c.y, a); got != c.want {
			t.Fatalf("case %d: Cmp = %d, want %d", i, got, c.want)
		}
		if got := c.y.Cmp(c.x, a); got != -c.want {
			t.Fatalf("case %d: reverse Cmp = %d, want %d", i, got, -c.want)
		}
	}
	four := AlphaInt(4)
	// 2*(4/2)+10 = 14 == 0+14.
	if (Cost{Halves: 2, Dist: 10}).Cmp(Cost{Halves: 0, Dist: 14}, four) != 0 {
		t.Fatal("exact tie at integral alpha missed")
	}
}

func TestCostCmpMatchesFloat(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		a := NewAlpha(1+int64(r.Intn(50)), 1+int64(r.Intn(10)))
		x := Cost{Halves: int64(r.Intn(40)), Dist: int64(r.Intn(200))}
		y := Cost{Halves: int64(r.Intn(40)), Dist: int64(r.Intn(200))}
		fx := float64(x.Halves)*a.Float()/2 + float64(x.Dist)
		fy := float64(y.Halves)*a.Float()/2 + float64(y.Dist)
		got := x.Cmp(y, a)
		// Floating comparison is only trustworthy away from ties; exact
		// ties are checked by cross-multiplication identity instead.
		lhs := (x.Halves - y.Halves) * a.Num
		rhs := (y.Dist - x.Dist) * 2 * a.Den
		want := 0
		if lhs < rhs {
			want = -1
		} else if lhs > rhs {
			want = 1
		}
		if got != want {
			t.Fatalf("Cmp(%v,%v;%v) = %d, want %d (floats %v vs %v)", x, y, a, got, want, fx, fy)
		}
	}
}

func TestCostCmpIsTotalPreorder(t *testing.T) {
	a := NewAlpha(7, 3)
	gen := func(r *rand.Rand) Cost {
		c := Cost{Halves: int64(r.Intn(20)), Dist: int64(r.Intn(50))}
		if r.Intn(10) == 0 {
			c.Dist = DistInf
		}
		return c
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y, z := gen(r), gen(r), gen(r)
		// Antisymmetry of the comparator.
		if x.Cmp(y, a) != -y.Cmp(x, a) {
			return false
		}
		// Transitivity: x<=y and y<=z implies x<=z.
		if x.Cmp(y, a) <= 0 && y.Cmp(z, a) <= 0 && x.Cmp(z, a) > 0 {
			return false
		}
		// Reflexivity.
		return x.Cmp(x, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCostStringAndFloat(t *testing.T) {
	a := AlphaInt(6)
	c := Cost{Halves: 2, Dist: 5}
	if c.Float(a) != 11 {
		t.Fatalf("Float = %v", c.Float(a))
	}
	if (Cost{Dist: DistInf}).String() != "inf" {
		t.Fatal("inf string")
	}
	if (Cost{Dist: 7}).String() != "7" {
		t.Fatal("plain dist string")
	}
	if !(Cost{Dist: DistInf}).Infinite() || (Cost{Dist: 9}).Infinite() {
		t.Fatal("Infinite misclassifies")
	}
}
