package game

import (
	"math/rand"
	"testing"

	"ncg/internal/graph"
	"ncg/internal/state"
)

// TestMakePairKey: the key is symmetric and injective on distinct pairs.
func TestMakePairKey(t *testing.T) {
	if MakePairKey(3, 7) != MakePairKey(7, 3) {
		t.Fatal("pair key is not symmetric")
	}
	seen := map[PairKey][2]int{}
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			k := MakePairKey(u, v)
			if prev, dup := seen[k]; dup {
				t.Fatalf("pairs %v and {%d,%d} share key %d", prev, u, v, k)
			}
			seen[k] = [2]int{u, v}
		}
	}
}

// TestDisjointMoves: moves touching a common edge slot collide regardless
// of which endpoint names the pair or whether it is dropped or added.
func TestDisjointMoves(t *testing.T) {
	cases := []struct {
		name  string
		moves []Move
		want  bool
	}{
		{"empty", nil, true},
		{"single", []Move{{Agent: 0, Drop: []int{1}, Add: []int{2}}}, true},
		{"disjoint pairs", []Move{
			{Agent: 0, Drop: []int{1}, Add: []int{2}},
			{Agent: 3, Drop: []int{4}, Add: []int{5}},
		}, true},
		{"shared endpoint distinct pairs", []Move{
			{Agent: 0, Add: []int{2}},
			{Agent: 1, Add: []int{2}}, // both touch vertex 2, different slots
		}, true},
		{"add vs drop of same slot from opposite ends", []Move{
			{Agent: 0, Add: []int{1}},
			{Agent: 1, Drop: []int{0}},
		}, false},
		{"two adds of the same slot", []Move{
			{Agent: 2, Add: []int{5}},
			{Agent: 5, Add: []int{2}},
		}, false},
		{"collision within one move set, later entries", []Move{
			{Agent: 0, Add: []int{3}},
			{Agent: 1, Add: []int{2}},
			{Agent: 3, Drop: []int{0}},
		}, false},
	}
	seen := map[PairKey]struct{}{}
	for _, tc := range cases {
		if got := DisjointMoves(tc.moves, seen); got != tc.want {
			t.Errorf("%s: DisjointMoves = %v, want %v", tc.name, got, tc.want)
		}
		// A nil scratch map must behave identically.
		if got := DisjointMoves(tc.moves, nil); got != tc.want {
			t.Errorf("%s (nil scratch): DisjointMoves = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// randomDisjointSet draws a jointly applicable move set on g: each move
// drops owned neighbours and adds non-neighbours, and every touched slot is
// claimed at most once across the whole set.
func randomDisjointSet(g *graph.Graph, r *rand.Rand) []Move {
	n := g.N()
	claimed := map[PairKey]struct{}{}
	var moves []Move
	for u := 0; u < n; u++ {
		if r.Intn(2) == 0 {
			continue
		}
		var drop, add []int
		g.OwnedNeighbors(u).ForEach(func(v int) {
			k := MakePairKey(u, v)
			if _, dup := claimed[k]; dup || r.Intn(2) != 0 {
				return
			}
			claimed[k] = struct{}{}
			drop = append(drop, v)
		})
		for v := 0; v < n; v++ {
			k := MakePairKey(u, v)
			if v == u || g.HasEdge(u, v) || r.Intn(4) != 0 {
				continue
			}
			if _, dup := claimed[k]; dup {
				continue
			}
			claimed[k] = struct{}{}
			add = append(add, v)
		}
		if len(drop) > 0 || len(add) > 0 {
			moves = append(moves, Move{Agent: u, Drop: drop, Add: add})
		}
	}
	return moves
}

// TestApplySetUndoRoundTrip: batch apply + undo restores the graph exactly
// (including ownership) and cancels an attached incremental fingerprint.
func TestApplySetUndoRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	const n = 14
	tables := state.NewTables(n)
	for trial := 0; trial < 50; trial++ {
		g := randomOwnedGraph(n, r.Intn(10), r)
		var fp state.Fingerprint
		fp.Attach(tables, g)
		before := g.Clone()
		awareBefore, blindBefore := fp.Aware(), fp.Blind()

		moves := randomDisjointSet(g, r)
		if !DisjointMoves(moves, nil) {
			t.Fatal("randomDisjointSet produced a colliding set")
		}
		as := ApplySet(g, moves)
		if len(moves) > 0 && g.Equal(before) {
			// Every move changes at least one edge, so a non-empty batch
			// must change the graph.
			t.Fatal("non-empty batch left the graph unchanged")
		}
		as.Undo()
		g.SetObserver(nil)
		if !g.Equal(before) {
			t.Fatalf("trial %d: undo did not restore the graph", trial)
		}
		if fp.Aware() != awareBefore || fp.Blind() != blindBefore {
			t.Fatalf("trial %d: undo did not cancel the fingerprint deltas", trial)
		}
	}
}

// TestApplySetOrderIndependence: a disjoint set commits to the same network
// (edges and ownership) in any application order.
func TestApplySetOrderIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	const n = 14
	for trial := 0; trial < 50; trial++ {
		g := randomOwnedGraph(n, r.Intn(10), r)
		moves := randomDisjointSet(g, r)

		g1 := g.Clone()
		ApplySet(g1, moves)

		rev := make([]Move, len(moves))
		for i, m := range moves {
			rev[len(moves)-1-i] = m
		}
		g2 := g.Clone()
		ApplySet(g2, rev)

		if !g1.Equal(g2) {
			t.Fatalf("trial %d: commit order changed the resulting network", trial)
		}
	}
}

// TestScansPurely: the delta-evaluated games scan purely; the naive
// reference wrapper and the transiently-mutating enumerations do not.
func TestScansPurely(t *testing.T) {
	pure := []Game{
		NewSwap(Sum), NewSwap(Max),
		NewAsymSwap(Sum), NewAsymSwap(Max),
		NewGreedyBuy(Sum, NewAlpha(3, 2)), NewGreedyBuy(Max, NewAlpha(3, 2)),
	}
	for _, gm := range pure {
		if !ScansPurely(gm) {
			t.Errorf("%s: ScansPurely = false, want true", gm.Name())
		}
		if ScansPurely(Naive(gm)) {
			t.Errorf("Naive(%s): ScansPurely = true, want false", gm.Name())
		}
	}
	impure := []Game{
		NewBuy(Sum, AlphaInt(2)), NewBilateral(Sum, AlphaInt(4)),
	}
	for _, gm := range impure {
		if ScansPurely(gm) {
			t.Errorf("%s: ScansPurely = true, want false", gm.Name())
		}
	}
}
