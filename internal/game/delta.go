package game

import (
	"ncg/internal/graph"
)

// Delta-evaluated best-response scanning.
//
// Every single-edge strategy change of an agent u — dropping an incident
// edge, adding a new one, or swapping — leaves the rest of the network
// untouched. A path from u never revisits u, so its first edge goes to one
// of u's neighbours and the remainder runs in the vertex-deleted subgraph
// G-u, which no single-edge change of u alters:
//
//	d_{G'}(u, v) = 1 + min_{w in N'(u)} d_{G-u}(w, v)   for v != u,
//
// where N'(u) is u's neighbourhood after the change. One bitset BFS per
// relevant vertex of G-u (current neighbours eagerly, candidate targets
// lazily, all cached in a scan-local row pool for the duration of the scan)
// therefore replaces the per-candidate full BFS of the naive scan. The pool
// hands out O(n) rows on demand — deg(u) plus one per surviving target —
// so scratch memory scales with the rows a scan actually touches, not n².
//
// Scoring is split so the per-candidate work shrinks below O(n). With
// a(v) = 1 + min_w d_{G-u}(w, v) over the current neighbours and the
// witness arg(v) attaining it, adding a target y changes only the minimum:
// cost(+y) aggregates min(a(v), 1 + d_{G-u}(y, v)), an O(n) pass done once
// per target and cached. Dropping a neighbour x additionally affects only
// the vertices whose witness is x (their minimum falls back to the second
// minimum), so each (drop x, add y) pair costs O(|S_x|), where the witness
// buckets S_x partition the vertex set — O(n / deg(u)) on average — on top
// of the cached per-target aggregate. For MAX costs the same split keeps,
// per target, the maximum together with its witness class and the best
// value outside that class, which answers "max with class x removed" in
// O(1) before the bucket correction.
type deltaScratch struct {
	// n is the allocated capacity; dn the vertex count of the graph of
	// the current scan (scratches may be reused across sizes).
	n  int
	dn int
	// The d_{G-u}(w, .) rows of the current scan live in a lazily grown
	// pool: rowIdx maps a vertex to its pool slot (-1: not computed),
	// rowTouched lists the vertices holding a slot so a new scan resets in
	// O(rows used) time.
	pool       [][]int32
	rowIdx     []int32
	rowTouched []int32
	used       int
	// min1/arg1/min2: per-vertex minimum over the neighbour rows, the
	// neighbour attaining it (as a position in nbrs, -1 if none), and the
	// minimum over the remaining neighbours.
	min1 []int32
	min2 []int32
	arg1 []int32
	// pos maps a neighbour vertex to its position in nbrs (-1 otherwise).
	pos []int32
	// witBuf/witOff: vertices bucketed by witness position; bucket i is
	// witBuf[witOff[i]:witOff[i+1]].
	witBuf []int32
	witOff []int32
	cnt    []int32
	// Current-cost aggregates over a(v): the sum, the maximum with its
	// witness class, and the best value outside that class.
	curSum  int64
	curMax1 int32
	curC1   int32
	curMax2 int32
	// Per-target aggregates of f_y(v) = min(a(v), 1 + d_{G-u}(y, v)),
	// computed together with the target's row: the sum, the maximum with
	// its witness class, and the best value outside that class.
	ySum  []int64
	yMax1 []int32
	yC1   []int32
	yMax2 []int32
	// Per-target oracle bounds (see deltaTargetBound): bndDone marks
	// cached entries, bndExact the ones computed without an early exit.
	bnd      []int64
	bndDone  graph.Bitset
	bndExact graph.Bitset
	// minsReady records that deltaInit ran for the current scan, so the
	// lazy probe path can defer the neighbour searches until a target
	// survives its bound.
	minsReady bool
	// suspects is the damage set of oracle-seeded row repairs.
	suspects graph.Bitset
	// batch and rowp serve the batched neighbour-row builds of oracle-less
	// scans: one bit-parallel kernel call computes every d_{G-u}(w, .) row
	// instead of one BFSExcluding per neighbour.
	batch *graph.BatchBFSScratch
	rowp  [][]int32
}

// deltaBatchMinN is the vertex count from which oracle-less scans batch
// their neighbour rows through the bit-parallel kernel.
const deltaBatchMinN = 128

// grow ensures capacity for n-vertex graphs.
func (d *deltaScratch) grow(n int) {
	if d.n >= n {
		return
	}
	d.n = n
	d.pool = d.pool[:0] // previous rows are too short for the new size
	d.used = 0
	d.rowTouched = d.rowTouched[:0]
	d.rowIdx = make([]int32, n)
	for i := range d.rowIdx {
		d.rowIdx[i] = -1
	}
	d.min1 = make([]int32, n)
	d.min2 = make([]int32, n)
	d.arg1 = make([]int32, n)
	d.pos = make([]int32, n)
	d.witBuf = make([]int32, n)
	d.witOff = make([]int32, n+2)
	d.cnt = make([]int32, n+1)
	d.ySum = make([]int64, n)
	d.yMax1 = make([]int32, n)
	d.yC1 = make([]int32, n)
	d.yMax2 = make([]int32, n)
	d.bnd = make([]int64, n)
	d.bndDone = graph.NewBitset(n)
	d.bndExact = graph.NewBitset(n)
	d.suspects = graph.NewBitset(n)
	d.rowp = make([][]int32, 0, n)
}

// deltaBegin opens a delta scan of agent u: it sizes the scratch and
// resets the per-scan lazy state. Every scan starts here; the heavy
// neighbour-row preparation of deltaInit can then be deferred until a
// candidate actually needs it.
func (s *Scratch) deltaBegin(g graph.Store, u int) {
	d := &s.delta
	d.grow(g.N())
	d.dn = g.N()
	d.bndDone.Reset()
	d.minsReady = false
	for _, w := range d.rowTouched {
		d.rowIdx[w] = -1
	}
	d.rowTouched = d.rowTouched[:0]
	d.used = 0
}

// cachedRow returns the pooled d_{G-u} row of w, or nil if the scan has not
// computed it yet.
func (d *deltaScratch) cachedRow(w int) []int32 {
	if i := d.rowIdx[w]; i >= 0 {
		return d.pool[i][:d.dn]
	}
	return nil
}

// newRow claims a pool slot for w's row; the content is uninitialized.
func (d *deltaScratch) newRow(w int) []int32 {
	if d.used == len(d.pool) {
		d.pool = append(d.pool, make([]int32, d.n))
	}
	row := d.pool[d.used][:d.dn]
	d.rowIdx[w] = int32(d.used)
	d.used++
	d.rowTouched = append(d.rowTouched, int32(w))
	return row
}

// deltaInit prepares s for delta scans of agent u: it computes the
// distance rows of G-u for every current neighbour of u, the per-vertex
// minima over those rows, the witness buckets, and the current-cost
// aggregates. Target rows and aggregates are computed on demand. It is a
// no-op if it already ran for the current scan (opened by deltaBegin).
// The preparation reads the graph but never mutates it.
func (s *Scratch) deltaInit(g graph.Store, u int) {
	n := g.N()
	d := &s.delta
	if d.minsReady {
		return
	}
	d.minsReady = true
	s.nbrs = g.NeighborList(u, s.nbrs[:0])
	for v := 0; v < n; v++ {
		d.min1[v] = graph.Unreachable
		d.min2[v] = graph.Unreachable
		d.arg1[v] = -1
		d.pos[v] = -1
	}
	if s.oracle == nil && len(s.nbrs) > 2 && n >= deltaBatchMinN {
		// Without an oracle every neighbour row is a fresh search; one
		// batched kernel call propagates them all bit-parallel (the rows
		// land in the same vertex-indexed matrix deltaRow serves from).
		// Below the size threshold single-source searches are so cheap
		// that the kernel's per-call adjacency snapshot costs more than
		// the frontier work it batches.
		if d.batch == nil {
			d.batch = graph.NewBatchBFSScratch(d.n)
		}
		d.rowp = d.rowp[:0]
		for _, w := range s.nbrs {
			d.rowp = append(d.rowp, d.newRow(w))
		}
		g.BatchBFSExcluding(s.nbrs, u, d.rowp, nil, d.batch)
	}
	for i, w := range s.nbrs {
		d.pos[w] = int32(i)
		row := s.deltaRow(g, u, w)
		for v, dv := range row {
			switch {
			case dv < d.min1[v]:
				d.min2[v] = d.min1[v]
				d.min1[v] = dv
				d.arg1[v] = int32(i)
			case dv < d.min2[v]:
				d.min2[v] = dv
			}
		}
	}
	// Witness buckets by counting sort over witness positions.
	deg := len(s.nbrs)
	cnt := d.cnt[: deg+1 : deg+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for v := 0; v < n; v++ {
		if v != u && d.arg1[v] >= 0 {
			cnt[d.arg1[v]]++
		}
	}
	off := d.witOff[: deg+2 : deg+2]
	off[0] = 0
	for i := 0; i <= deg; i++ {
		off[i+1] = off[i] + cnt[i]
	}
	for v := 0; v < n; v++ {
		if v != u && d.arg1[v] >= 0 {
			i := d.arg1[v]
			d.witBuf[off[i]] = int32(v)
			off[i]++
		}
	}
	for i := deg; i >= 0; i-- {
		off[i+1] = off[i]
	}
	off[0] = 0
	// Current-cost aggregates over a(v) = 1 + min1[v].
	d.curSum = 0
	d.curMax1, d.curC1, d.curMax2 = 0, -2, 0
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		a := d.min1[v] + 1
		d.curSum += int64(a)
		cls := d.arg1[v]
		if a > d.curMax1 {
			if cls != d.curC1 {
				d.curMax2 = d.curMax1
				d.curC1 = cls
			}
			d.curMax1 = a
		} else if cls != d.curC1 && a > d.curMax2 {
			d.curMax2 = a
		}
	}
}

// deltaRow returns d_{G-u}(w, .), computing and caching it on first use.
// With an oracle it is derived from the current-network row by partial
// repair: deleting u invalidates d(w,v) only when every shortest w-v path
// crosses u, i.e. d(w,u) + d(u,v) = d(w,v); the surviving entries reseed a
// PartialBFS over the damage. Without an oracle it is a fresh search.
func (s *Scratch) deltaRow(g graph.Store, u, w int) []int32 {
	d := &s.delta
	if row := d.cachedRow(w); row != nil {
		return row
	}
	row := d.newRow(w)
	if s.oracle == nil {
		g.BFSExcluding(w, u, row, s.bfs)
		return row
	}
	dw := s.oracle.Row(w)
	du := s.oracle.Row(u)
	base := dw[u]
	d.suspects.Reset()
	for v := 0; v < d.dn; v++ {
		if v == u {
			row[v] = graph.Unreachable
			continue
		}
		if base+du[v] == dw[v] {
			row[v] = graph.Unreachable
			d.suspects.Set(v)
		} else {
			row[v] = dw[v]
		}
	}
	g.PartialBFS(row, d.suspects, s.repair)
	return row
}

// deltaTarget ensures the row and aggregates of target y and returns its
// row. The aggregates are over f_y(v) = min(a(v), 1 + row_y(v)), v != u:
// exactly the distance profile of u after adding the edge {u,y}.
func (s *Scratch) deltaTarget(g graph.Store, u, y int) []int32 {
	d := &s.delta
	// A pooled row implies the aggregates are filled: targets are
	// non-neighbours, so only this function ever computes their rows.
	if row := d.cachedRow(y); row != nil {
		return row
	}
	row := s.deltaRow(g, u, y)
	s.deltaTargetAggr(u, y, row)
	return row
}

// deltaTargetAggr fills the post-add aggregates of target y from its
// d_{G-u} row. Factored out of deltaTarget so the batched landmark scan
// can aggregate rows it materializes outside the row pool.
func (s *Scratch) deltaTargetAggr(u, y int, row []int32) {
	d := &s.delta
	var sum int64
	m1, c1, m2 := int32(0), int32(-2), int32(0)
	for v, rv := range row {
		if v == u {
			continue
		}
		f := d.min1[v]
		if rv < f {
			f = rv
		}
		f++
		sum += int64(f)
		cls := d.arg1[v]
		if rv < d.min1[v] {
			// The target row is the effective minimum, so dropping a
			// neighbour cannot raise this vertex's distance.
			cls = -1
		}
		if f > m1 {
			if cls != c1 {
				m2 = m1
				c1 = cls
			}
			m1 = f
		} else if cls != c1 && f > m2 {
			m2 = f
		}
	}
	d.ySum[y] = sum
	d.yMax1[y], d.yC1[y], d.yMax2[y] = m1, c1, m2
}

// deltaFinite converts an aggregated distance value to cost semantics:
// any vertex left unreachable pushes the aggregate past Unreachable, which
// saturates to DistInf (finite aggregates stay below Unreachable as long
// as n*n < Unreachable, i.e. n < 23170).
func deltaFinite(v int64) int64 {
	if v >= int64(graph.Unreachable) {
		return DistInf
	}
	return v
}

// deltaCurDist returns u's current distance cost.
func (s *Scratch) deltaCurDist(kind DistKind) int64 {
	d := &s.delta
	if kind == Sum {
		return deltaFinite(d.curSum)
	}
	return deltaFinite(int64(d.curMax1))
}

// deltaOracleCurDist returns u's current distance cost read from the
// oracle, identical to deltaCurDist but without needing deltaInit.
func (s *Scratch) deltaOracleCurDist(u int, kind DistKind) int64 {
	du := s.oracle.Row(u)
	var sum int64
	var max int32
	for v, t := range du {
		if v == u {
			continue
		}
		if kind == Sum {
			sum += int64(t)
		} else if t > max {
			max = t
		}
	}
	if kind == Max {
		return deltaFinite(int64(max))
	}
	return deltaFinite(sum)
}

// deltaTargetBound returns a lower bound on u's distance cost after any
// single-edge change that adds the edge {u,y}, computed from the oracle's
// current-network distances without a search; ok is false without an
// oracle. The changed network G' = G - {u,x} + {u,y} is an edge-subgraph
// of G + {u,y}, whose distances from u are exactly
// min(d_G(u,v), 1 + d_G(y,v)) by the single-insertion rule, so that
// aggregate bounds every swap with target y from below — and scores a pure
// addition exactly.
//
// The aggregation stops early once the bound provably reaches limit,
// returning a sound but possibly truncated bound; pass a limit above any
// cost (e.g. > DistInf) to force the exact aggregate. Pruning callers pass
// their skip threshold so hopeless targets are dismissed after a few
// vertices.
func (s *Scratch) deltaTargetBound(u, y int, kind DistKind, limit int64) (int64, bool) {
	if s.oracle == nil {
		return 0, false
	}
	d := &s.delta
	if d.bndDone.Has(y) && (d.bndExact.Has(y) || d.bnd[y] >= limit) {
		return d.bnd[y], true
	}
	du := s.oracle.Row(u)
	dy := s.oracle.Row(y)
	n := d.dn
	var b int64
	exact := true
	if kind == Sum {
		// Every vertex contributes at least distance 1, so the running
		// sum plus the unprocessed count is already a valid lower bound;
		// it is checked between 32-vertex blocks to keep the inner loop
		// branch-light. The two segments skip v == u.
		sum := int64(0)
	sumLoop:
		for seg := 0; seg < 2; seg++ {
			lo, hi := 0, u
			if seg == 1 {
				lo, hi = u+1, n
			}
			for lo < hi {
				blk := lo + 32
				if blk > hi {
					blk = hi
				}
				for v := lo; v < blk; v++ {
					t := dy[v] + 1
					if du[v] < t {
						t = du[v]
					}
					sum += int64(t)
				}
				lo = blk
				rest := int64(n - blk)
				if seg == 0 {
					rest-- // u itself contributes nothing
				}
				if rest > 0 && sum+rest >= limit {
					sum += rest
					exact = false
					break sumLoop
				}
			}
		}
		b = sum
	} else {
		var max int32
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			t := dy[v] + 1
			if du[v] < t {
				t = du[v]
			}
			if t > max {
				max = t
				if int64(max) >= limit {
					exact = v == n-1
					break
				}
			}
		}
		b = int64(max)
	}
	if exact {
		b = deltaFinite(b)
		d.bndExact.Set(y)
	} else {
		d.bndExact.Clear(y)
	}
	d.bnd[y] = b
	d.bndDone.Set(y)
	return b, true
}

// boundExact forces deltaTargetBound to aggregate without an early exit.
const boundExact = int64(1) << 62

// deltaPairBoundSum tightens a SUM target bound for a concrete drop x: the
// drop penalty Σ_{v in S_x} [min(min2, r) - min(min1, r)] is nondecreasing
// in the target row r, and the oracle row of y undercuts d_{G-u}(y, .), so
// adding the oracle-evaluated penalty to the exact add-cost bound still
// bounds the swap cost from below — without materializing y's row.
// deltaInit must have run; bound must be the exact (non-truncated) target
// bound of y.
func (s *Scratch) deltaPairBoundSum(u, x, y int, bound int64) int64 {
	d := &s.delta
	dy := s.oracle.Row(y)
	xi := d.pos[x]
	pen := int64(0)
	for _, v := range d.witBuf[d.witOff[xi]:d.witOff[xi+1]] {
		f0, f1, r := d.min1[v], d.min2[v], dy[v]
		if r < f0 {
			f0 = r
		}
		if r < f1 {
			f1 = r
		}
		pen += int64(f1 - f0)
	}
	return bound + pen
}

// deltaAddDist returns u's distance cost after adding the edge {u,y}. With
// an oracle installed the single-insertion rule scores it exactly without
// a search; otherwise it falls back to the target's G-u row.
func (s *Scratch) deltaAddDist(g graph.Store, u, y int, kind DistKind) int64 {
	if b, ok := s.deltaTargetBound(u, y, kind, boundExact); ok {
		return b
	}
	d := &s.delta
	s.deltaTarget(g, u, y)
	if kind == Sum {
		return deltaFinite(d.ySum[y])
	}
	return deltaFinite(int64(d.yMax1[y]))
}

// deltaDropDist returns u's distance cost after removing the edge {u,x}.
func (s *Scratch) deltaDropDist(x int, kind DistKind) int64 {
	d := &s.delta
	xi := d.pos[x]
	bucket := d.witBuf[d.witOff[xi]:d.witOff[xi+1]]
	if kind == Sum {
		sum := d.curSum
		for _, v := range bucket {
			sum += int64(d.min2[v] - d.min1[v])
		}
		return deltaFinite(sum)
	}
	m := d.curMax1
	if d.curC1 == xi {
		m = d.curMax2
	}
	for _, v := range bucket {
		if f := d.min2[v] + 1; f > m {
			m = f
		}
	}
	return deltaFinite(int64(m))
}

// deltaSwapDist returns u's distance cost after swapping the edge {u,x}
// for {u,y}.
func (s *Scratch) deltaSwapDist(g graph.Store, u, x, y int, kind DistKind) int64 {
	return s.deltaSwapScore(x, y, s.deltaTarget(g, u, y), kind)
}

// deltaSwapScore scores the swap (drop x, add y) from y's d_{G-u} row and
// its already-filled aggregates. Factored out of deltaSwapDist so the
// batched landmark scan shares the exact same bucket-correction math.
func (s *Scratch) deltaSwapScore(x, y int, ry []int32, kind DistKind) int64 {
	d := &s.delta
	xi := d.pos[x]
	bucket := d.witBuf[d.witOff[xi]:d.witOff[xi+1]]
	if kind == Sum {
		sum := d.ySum[y]
		for _, v := range bucket {
			f0, f1, rv := d.min1[v], d.min2[v], ry[v]
			if rv < f0 {
				f0 = rv
			}
			if rv < f1 {
				f1 = rv
			}
			sum += int64(f1 - f0)
		}
		return deltaFinite(sum)
	}
	m := d.yMax1[y]
	if d.yC1[y] == xi {
		m = d.yMax2[y]
	}
	for _, v := range bucket {
		f := d.min2[v]
		if rv := ry[v]; rv < f {
			f = rv
		}
		if f++; f > m {
			m = f
		}
	}
	return deltaFinite(int64(m))
}

// deltaSwapHalves returns the alpha/2-unit count of agent u after swapping
// the edge {u,x} for {u,y} (the added edge is owned by u), matching
// agentCost on the post-swap network.
func deltaSwapHalves(g graph.Store, u, x int, model costModel) int64 {
	switch model {
	case modelUnilateral:
		od := g.OutDegree(u) + 1
		if g.Owns(u, x) {
			od--
		}
		return 2 * int64(od)
	case modelBilateral:
		return int64(g.Degree(u))
	}
	return 0
}

// curHalves returns the alpha/2-unit count of agent u in the current
// network under the given cost model.
func curHalves(g graph.Store, u int, model costModel) int64 {
	switch model {
	case modelUnilateral:
		return 2 * int64(g.OutDegree(u))
	case modelBilateral:
		return int64(g.Degree(u))
	}
	return 0
}
