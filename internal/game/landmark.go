package game

import (
	"ncg/internal/graph"
)

// Landmark-based candidate filtering for swap scans.
//
// Without a full distance oracle, a swap scan must materialize a G-u row per
// candidate target — O(n) kernel work each, n targets, so O(n²) per agent.
// A k-landmark oracle (see graph.Landmarks) replaces most of that work with
// O(k) arithmetic per target: the triangle inequality turns the landmark
// rows into lower bounds on post-move distances, any target whose bound
// cannot beat the incumbent is dismissed without a search, and the few
// survivors are re-scored exactly. Pruning on a sound lower bound with the
// same strict thresholds the exact scan uses keeps the surviving move set —
// and therefore trajectories, cycle verdicts and record streams —
// bit-identical to exact mode.
//
// The bounds. A swap of agent u that installs the edge {u,y} yields
// G' = G - {u,x} + {u,y}, an edge-subgraph of G + {u,y}; by the
// single-insertion rule
//
//	d_{G'}(u,v) >= min(a_v, 1 + d_G(y,v)),   a_v = d_G(u,v),
//
// and the landmark rows b_l bound d_G(y,v) >= |b_l[y] - b_l[v]| from below.
//
// For SUM costs the per-vertex gain of target y is
// max(0, a_v - 1 - d_G(y,v)), nonincreasing in d_G(y,v), so each landmark
// and each sign of the absolute value yields the upper bound
// max(0, c_v + t) with c_v = a_v - 1 - b_l[v] at t = +b_l[y], respectively
// c'_v = a_v - 1 + b_l[v] at t = -b_l[y]. Summed over v this is
//
//	G(t) = sufSum(1-t) + t * sufCnt(1-t),
//
// where sufCnt/sufSum aggregate the c-values >= 1-t — two suffix tables per
// landmark, built once per scan in O(n), queried per target in O(1). The
// bound on u's post-move sum is curSum minus the smallest G(t) over all
// landmarks and both signs (and never below n-1).
//
// For MAX costs a small witness set W of maximal-a_v vertices gives
//
//	ecc' >= max_{w in W} min(a_w, 1 + max_l |b_l[w] - b_l[y]|),
//
// O(k*|W|) per target.
type lmScratch struct {
	n int
	k int
	// a holds the exact current distances d_G(u, .) of the scanned agent.
	a []int32
	// curSum and curEcc are the aggregates of a (valid when armed).
	curSum int64
	curEcc int64
	// SUM suffix tables, k*n each: cntP/sumP aggregate c = a-1-b over
	// c >= tau for the query window tau in [2-n, 1] (index tau+n-2);
	// cntM/sumM aggregate c' = a-1+b over c' >= tau for tau in [1, n]
	// (index tau-1).
	cntP []int32
	sumP []int64
	cntM []int32
	sumM []int64
	// hist is the shared histogram buffer of the table builds.
	hist []int32
	// MAX witnesses: vertex ids, their a-values, and their landmark rows
	// gathered contiguously (wb[w*k+l] = b_l[wit[w]]).
	wit []int32
	wa  []int32
	wb  []int32
	// Batched exact-scoring state (see lmBatchScores): score memoizes the
	// swap scores of one scan as score[xi*len(buf2)+yi]; rows is the
	// lmChunk-wide target-row arena the batched kernel writes into, rowp
	// its per-call slice header, srcs/tis the pending chunk's targets and
	// their positions in buf2.
	score []int64
	rows  [][]int32
	rowp  [][]int32
	srcs  []int
	tis   []int32
}

// lmWitnesses is the witness-set size of the MAX bound.
const lmWitnesses = 8

func (l *lmScratch) grow(n, k int) {
	if l.n >= n && l.k >= k {
		return
	}
	if n > l.n {
		l.n = n
	}
	if k > l.k {
		l.k = k
	}
	l.a = make([]int32, l.n)
	l.cntP = make([]int32, l.k*l.n)
	l.sumP = make([]int64, l.k*l.n)
	l.cntM = make([]int32, l.k*l.n)
	l.sumM = make([]int64, l.k*l.n)
	l.hist = make([]int32, 3*l.n+2)
	l.wit = make([]int32, 0, lmWitnesses)
	l.wa = make([]int32, 0, lmWitnesses)
	l.wb = make([]int32, lmWitnesses*l.k)
}

// SetLandmarks installs (or, with nil, removes) a landmark oracle on s. The
// oracle MUST reflect the scanned network exactly whenever a scan runs;
// callers that mutate the network must repair it (Landmarks.Apply) before
// the next scan or clear it. The filter only ever prunes — scans without it
// return the same moves, just slower — and arms itself only when the oracle
// is complete and the scanned agent reaches the whole graph.
func (s *Scratch) SetLandmarks(lm *graph.Landmarks) { s.lmk = lm }

// lmProbe arms the landmark filter for a scan of agent u from a fresh
// single-source search, without touching the neighbour rows: it fills the
// current distances, checks connectivity, and builds the per-scan tables.
// It reports whether the filter is armed; on false the caller must fall
// back to an unfiltered scan.
func (s *Scratch) lmProbe(g graph.Store, u int, kind DistKind) bool {
	if !s.lmk.Complete() || s.lmk.N() != g.N() {
		return false
	}
	l := &s.lm
	l.grow(g.N(), s.lmk.K())
	res := g.BFS(u, l.a, s.bfs)
	if res.Reached < g.N() {
		return false
	}
	l.curSum = res.Sum
	l.curEcc = int64(res.Ecc)
	s.lmBuild(u, kind)
	return true
}

// lmArm arms the landmark filter for a scan whose deltaInit already ran:
// the current distances are read off the neighbour minima (a_v = min1_v+1).
// It reports whether the filter is armed.
func (s *Scratch) lmArm(u int, kind DistKind) bool {
	if !s.lmk.Complete() || s.lmk.N() != s.delta.dn {
		return false
	}
	d := &s.delta
	l := &s.lm
	l.grow(d.dn, s.lmk.K())
	for v := 0; v < d.dn; v++ {
		if v == u {
			continue
		}
		m := d.min1[v]
		if m >= graph.Unreachable {
			return false
		}
		l.a[v] = m + 1
	}
	l.a[u] = 0
	l.curSum = d.curSum
	l.curEcc = int64(d.curMax1)
	s.lmBuild(u, kind)
	return true
}

// lmBuild constructs the per-scan tables of the armed filter: the SUM
// suffix tables per landmark, or the MAX witness set. The a-values and
// aggregates must already be in place.
func (s *Scratch) lmBuild(u int, kind DistKind) {
	l := &s.lm
	n := s.lmk.N()
	k := s.lmk.K()
	if kind == Max {
		l.wit = l.wit[:0]
		l.wa = l.wa[:0]
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			av := l.a[v]
			if len(l.wa) < lmWitnesses {
				l.wit = append(l.wit, int32(v))
				l.wa = append(l.wa, av)
				continue
			}
			// Replace the smallest witness if v beats it.
			mi, mv := 0, l.wa[0]
			for i := 1; i < lmWitnesses; i++ {
				if l.wa[i] < mv {
					mi, mv = i, l.wa[i]
				}
			}
			if av > mv {
				l.wit[mi] = int32(v)
				l.wa[mi] = av
			}
		}
		for w, v := range l.wit {
			for i := 0; i < k; i++ {
				l.wb[w*k+i] = s.lmk.Row(i)[v]
			}
		}
		return
	}
	// SUM: two suffix tables per landmark over the shifted gain slopes.
	// Window indices: side + covers tau in [2-n, 1] at tau+n-2, side -
	// covers tau in [1, n] at tau-1; c-values above a window fold into
	// the running suffix before the window is written.
	for i := 0; i < k; i++ {
		b := s.lmk.Row(i)
		cntP := l.cntP[i*l.n : i*l.n+n]
		sumP := l.sumP[i*l.n : i*l.n+n]
		cntM := l.cntM[i*l.n : i*l.n+n]
		sumM := l.sumM[i*l.n : i*l.n+n]

		// Side +: c = a-1-b in [-(n-1), n-2]; histogram at c+n.
		hist := l.hist[:2*n]
		for j := range hist {
			hist[j] = 0
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			hist[int(l.a[v])-1-int(b[v])+n]++
		}
		var rc, rs int64
		// Fold values c > 1 (histogram indices above 1+n), then write the
		// window from tau = 1 (index n-1) down to tau = 2-n (index 0).
		for c := 2*n - 1 - n; c > 1; c-- {
			h := int64(hist[c+n])
			rc += h
			rs += h * int64(c)
		}
		for tau := 1; tau >= 2-n; tau-- {
			h := int64(hist[tau+n])
			rc += h
			rs += h * int64(tau)
			cntP[tau+n-2] = int32(rc)
			sumP[tau+n-2] = rs
		}

		// Side -: c' = a-1+b in [0, 2n-3]; histogram at c'.
		hist = l.hist[:2*n]
		for j := range hist {
			hist[j] = 0
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			hist[int(l.a[v])-1+int(b[v])]++
		}
		rc, rs = 0, 0
		for c := 2*n - 2; c > n; c-- {
			h := int64(hist[c])
			rc += h
			rs += h * int64(c)
		}
		for tau := n; tau >= 1; tau-- {
			h := int64(hist[tau])
			rc += h
			rs += h * int64(tau)
			cntM[tau-1] = int32(rc)
			sumM[tau-1] = rs
		}
	}
}

// lmTargetBound returns a lower bound on u's distance cost after any
// single-edge swap that adds the edge {u,y}, computed from the armed
// landmark filter in O(k) (SUM) respectively O(k*|W|) (MAX) time. The bound
// is cached per target for the duration of the scan.
func (s *Scratch) lmTargetBound(y int, kind DistKind) int64 {
	d := &s.delta
	if d.bndDone.Has(y) {
		return d.bnd[y]
	}
	l := &s.lm
	n := s.lmk.N()
	k := s.lmk.K()
	var b int64
	if kind == Sum {
		gain := int64(1) << 62
		for i := 0; i < k; i++ {
			t := int64(s.lmk.Row(i)[y])
			// Side +: tau = 1-t at window index n-1-t.
			j := i*l.n + n - 1 - int(t)
			if g := l.sumP[j] + t*int64(l.cntP[j]); g < gain {
				gain = g
			}
			// Side -: tau = 1+t at window index t.
			j = i*l.n + int(t)
			if g := l.sumM[j] - t*int64(l.cntM[j]); g < gain {
				gain = g
			}
		}
		b = l.curSum - gain
		if min := int64(n - 1); b < min {
			b = min
		}
	} else {
		for w := range l.wit {
			row := l.wb[w*k : w*k+k]
			var dlb int32
			for i := 0; i < k; i++ {
				diff := row[i] - s.lmk.Row(i)[y]
				if diff < 0 {
					diff = -diff
				}
				if diff > dlb {
					dlb = diff
				}
			}
			c := l.wa[w]
			if dlb+1 < c {
				c = dlb + 1
			}
			if int64(c) > b {
				b = int64(c)
			}
		}
	}
	d.bnd[y] = b
	d.bndDone.Set(y)
	d.bndExact.Set(y)
	return b
}

// lmChunk is the source-group width of the batched target-row
// materialization: one bit-parallel kernel group per chunk.
const lmChunk = 64

// lmMaxScoreEntries caps the memoized score matrix (drop candidates x
// targets) of a batched scan; above it the scan falls back to lazy
// per-target rows rather than allocate an unbounded buffer.
const lmMaxScoreEntries = 1 << 25

// ensureRows sizes the target-row arena for dn-vertex rows.
func (l *lmScratch) ensureRows(dn int) {
	if len(l.rows) == lmChunk && cap(l.rows[0]) >= dn {
		return
	}
	l.rows = make([][]int32, lmChunk)
	for i := range l.rows {
		l.rows[i] = make([]int32, dn)
	}
}

// lmBatchScores exactly scores every target that survives the armed
// landmark bound against every drop candidate, and memoizes the scores in
// l.score (indexed xi*len(buf2)+yi, matching the emission loops of
// swapScan/swapBest). Survivors keep bound < limit when strict, otherwise
// bound <= limit; emission-loop pruning only ever narrows those sets, so
// every pair the emission loop scores has a memoized entry. The survivors'
// G-u rows are materialized in lmChunk-wide groups through the batched
// kernel — the per-row cost the lazy path pays once per surviving target,
// amortized 64-fold — and are not pooled, so scratch memory stays O(n)
// however many targets survive. Reports whether the memo is armed;
// deltaInit must have run.
func (s *Scratch) lmBatchScores(g graph.Store, u int, kind DistKind, limit int64, strict bool) bool {
	d := &s.delta
	deg, nt := len(s.buf), len(s.buf2)
	if deg == 0 || nt == 0 || d.dn < deltaBatchMinN || deg*nt > lmMaxScoreEntries {
		return false
	}
	l := &s.lm
	if cap(l.score) < deg*nt {
		l.score = make([]int64, deg*nt)
	}
	l.score = l.score[:deg*nt]
	l.ensureRows(d.dn)
	if d.batch == nil {
		d.batch = graph.NewBatchBFSScratch(d.n)
	}
	l.srcs = l.srcs[:0]
	l.tis = l.tis[:0]
	for ti, y := range s.buf2 {
		bd := s.lmTargetBound(y, kind)
		if bd > limit || (strict && bd == limit) {
			continue
		}
		l.srcs = append(l.srcs, y)
		l.tis = append(l.tis, int32(ti))
		if len(l.srcs) == lmChunk {
			s.lmFlushScores(g, u, kind, nt)
		}
	}
	s.lmFlushScores(g, u, kind, nt)
	return true
}

// lmFlushScores materializes the pending chunk's target rows and fills
// their score-matrix columns, then clears the chunk.
func (s *Scratch) lmFlushScores(g graph.Store, u int, kind DistKind, nt int) {
	l := &s.lm
	if len(l.srcs) == 0 {
		return
	}
	d := &s.delta
	rows := l.rowp[:0]
	for i := range l.srcs {
		rows = append(rows, l.rows[i][:d.dn])
	}
	l.rowp = rows
	g.BatchBFSExcluding(l.srcs, u, rows, nil, d.batch)
	for i, y := range l.srcs {
		s.deltaTargetAggr(u, y, rows[i])
		ti := int(l.tis[i])
		for xi, x := range s.buf {
			l.score[xi*nt+ti] = s.deltaSwapScore(x, y, rows[i], kind)
		}
	}
	l.srcs = l.srcs[:0]
	l.tis = l.tis[:0]
}

// lmAnyImproving reports whether any (drop, add) pair of the armed scan
// beats cur, batching surviving targets' rows in lmChunk-wide kernel
// groups and exiting at the first improving pair (chunk granularity).
// Like the lazy probe path it defers deltaInit until some target survives
// its bound, so a happy agent whose bound dismisses everything is
// certified without a neighbour row.
func (s *Scratch) lmAnyImproving(g graph.Store, u int, kind DistKind, cur int64) bool {
	d := &s.delta
	l := &s.lm
	l.srcs = l.srcs[:0]
	for lo := 0; lo < len(s.buf2); {
		for ; lo < len(s.buf2) && len(l.srcs) < lmChunk; lo++ {
			y := s.buf2[lo]
			if s.lmTargetBound(y, kind) < cur {
				l.srcs = append(l.srcs, y)
			}
		}
		if len(l.srcs) == 0 {
			continue
		}
		s.deltaInit(g, u)
		l.ensureRows(d.dn)
		if d.batch == nil {
			d.batch = graph.NewBatchBFSScratch(d.n)
		}
		rows := l.rowp[:0]
		for i := range l.srcs {
			rows = append(rows, l.rows[i][:d.dn])
		}
		l.rowp = rows
		g.BatchBFSExcluding(l.srcs, u, rows, nil, d.batch)
		for i, y := range l.srcs {
			s.deltaTargetAggr(u, y, rows[i])
			for _, x := range s.buf {
				if s.deltaSwapScore(x, y, rows[i], kind) < cur {
					return true
				}
			}
		}
		l.srcs = l.srcs[:0]
	}
	return false
}
