package game

import (
	"testing"

	"ncg/internal/graph"
)

func TestBilateralCostHalvesPerIncidentEdge(t *testing.T) {
	g := graph.Path(4)
	s := NewScratch(4)
	bl := NewBilateral(Sum, AlphaInt(4))
	c := bl.Cost(g, 1, s)
	if c.Halves != 2 || c.Dist != 1+1+2 {
		t.Fatalf("cost = %v", c)
	}
	// Float check: 2*(4/2) + 4 = 8.
	if c.Float(AlphaInt(4)) != 8 {
		t.Fatalf("float cost = %v", c.Float(AlphaInt(4)))
	}
}

func TestBilateralConsentBlocksCostIncreasingEdges(t *testing.T) {
	// P4 = 0-1-2-3, alpha = 4 (alpha/2 = 2). Leaf 0 would like the edge
	// {0,3}: its distance gain for 0 is d(0,3): 3->1 saves 2, d(0,2)
	// unchanged... For agent 3 accepting the edge: cost before
	// 1*(a/2)+ (1+2+3)=2+6=8; after: 2*(a/2)+(1+1+2)=4+4=8 — not an
	// increase, so 3 consents. Use alpha=6 instead: before 3+6=9, after
	// 6+4=10 → blocked.
	g := graph.Path(4)
	s := NewScratch(4)
	bl := NewBilateral(Sum, AlphaInt(6))
	m := Move{Agent: 0, Add: []int{3}}
	blockers := bl.Blocks(g, m, s)
	if len(blockers) != 1 || blockers[0] != 3 {
		t.Fatalf("blockers = %v, want [3]", blockers)
	}
	// At alpha = 4 the same edge is not blocked.
	bl4 := NewBilateral(Sum, AlphaInt(4))
	if bs := bl4.Blocks(g, m, s); len(bs) != 0 {
		t.Fatalf("alpha=4 blockers = %v, want none", bs)
	}
}

func TestBilateralEnumerationRespectsConsent(t *testing.T) {
	// With alpha=6 on P4, agent 0's feasible improving strategies must not
	// contain any adding {0,3}.
	g := graph.Path(4)
	s := NewScratch(4)
	bl := NewBilateral(Sum, AlphaInt(6))
	ms := bl.ImprovingMoves(g, 0, s, nil)
	for _, m := range ms {
		for _, v := range m.Add {
			if v == 3 {
				t.Fatalf("move %v adds blocked edge", m)
			}
		}
	}
}

func TestBilateralUnilateralDeletion(t *testing.T) {
	// Deletions never need consent: on a triangle with alpha = 10 every
	// agent wants to drop an edge (saving a/2 = 5 > +1 distance).
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	s := NewScratch(3)
	bl := NewBilateral(Sum, AlphaInt(10))
	ms := bl.ImprovingMoves(g, 0, s, nil)
	foundDelete := false
	for _, m := range ms {
		if m.Kind() == KindDelete {
			foundDelete = true
		}
	}
	if !foundDelete {
		t.Fatalf("no improving deletion found: %v", ms)
	}
}

func TestBilateralBestMovesStrictImprovement(t *testing.T) {
	// A star with moderate alpha: center is happy (dropping any leaf
	// disconnects), leaves are happy when alpha/2 > 1 (new edges save at
	// most 1 distance each).
	g := graph.Star(6)
	s := NewScratch(6)
	bl := NewBilateral(Sum, AlphaInt(3))
	for u := 0; u < 6; u++ {
		if ms, _ := bl.BestMoves(g, u, s, nil); len(ms) != 0 {
			t.Fatalf("agent %d should be happy on the star: %v", u, ms)
		}
	}
}

func TestBilateralStrategyReplacesWholeNeighbourhood(t *testing.T) {
	// Agent 1 on P4 may simultaneously drop 0 and connect to 3 if 3
	// consents; verify such a two-sided move exists in the enumeration at
	// a permissive alpha. Move {drop 0, add 3} for agent 1: 1's cost
	// before: 2 halves + (1+1+2)=4; after: edges {1,2},{1,3}: dist
	// 2:1,3:1,0:... 0 disconnected! 0's only edge was {0,1}. So that move
	// disconnects and is never improving. Instead check agent 0 moving
	// from {1} to {1,2} with consent of 2 at alpha=2: 2's cost before
	// 2*(1)+ (1+1+2)=6; after 3*1+(1+1+1)=6 → consent (not higher).
	// 0's cost before 1+ (1+2+3)=7; after 2+(1+1+2)=6 → improving.
	g := graph.Path(4)
	s := NewScratch(4)
	bl := NewBilateral(Sum, AlphaInt(2))
	ms := bl.ImprovingMoves(g, 0, s, nil)
	found := false
	for _, m := range ms {
		if len(m.Add) == 1 && m.Add[0] == 2 && len(m.Drop) == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected buy {0,2} in %v", ms)
	}
}
