// Package game implements the network creation games of Kawald & Lenzner
// (SPAA'13): the Swap Game (Alon et al.), the Asymmetric Swap Game
// (Mihalák & Schlegel), the Greedy Buy Game (Lenzner), the original Buy
// Game (Fabrikant et al.) and the bilateral equal-split Buy Game
// (Corbo & Parkes), each in the SUM and MAX distance-cost version, with
// optional host-graph restrictions.
//
// All cost arithmetic is exact: the edge price alpha is a rational number
// and costs are compared by integer cross-multiplication, so constructions
// that hold for parameter ranges such as 7 < alpha < 8 are verified without
// floating-point ties.
package game

import (
	"fmt"

	"ncg/internal/graph"
)

// Alpha is the exact rational edge price alpha = Num/Den > 0.
type Alpha struct {
	Num, Den int64
}

// NewAlpha returns the edge price num/den. It panics unless num/den > 0.
func NewAlpha(num, den int64) Alpha {
	if den <= 0 || num <= 0 {
		panic(fmt.Sprintf("game: alpha must be positive, got %d/%d", num, den))
	}
	return Alpha{Num: num, Den: den}
}

// AlphaInt returns the integral edge price a.
func AlphaInt(a int64) Alpha { return NewAlpha(a, 1) }

// Float returns alpha as a float64 (for reporting only; never used in
// comparisons).
func (a Alpha) Float() float64 { return float64(a.Num) / float64(a.Den) }

func (a Alpha) String() string {
	if a.Den == 1 {
		return fmt.Sprintf("%d", a.Num)
	}
	return fmt.Sprintf("%d/%d", a.Num, a.Den)
}

// DistKind selects the distance-cost aggregation of Section 1.1.
type DistKind int

const (
	// Sum is the SUM version: delta(u) = sum of distances to all agents.
	Sum DistKind = iota
	// Max is the MAX version: delta(u) = eccentricity of u.
	Max
)

func (k DistKind) String() string {
	if k == Sum {
		return "SUM"
	}
	return "MAX"
}

// DistInf is the distance-cost of an agent in a disconnected network.
const DistInf = int64(1) << 50

// Cost is the exact cost of an agent: Halves * (alpha/2) + Dist. Unilateral
// games charge two halves per owned edge (the owner pays alpha in full);
// the bilateral game charges one half per incident edge; swap games charge
// nothing. Dist == DistInf encodes disconnection, which dominates any edge
// cost.
type Cost struct {
	Halves int64
	Dist   int64
}

// Infinite reports whether the cost encodes a disconnected network.
func (c Cost) Infinite() bool { return c.Dist >= DistInf }

// Cmp compares two costs under edge price a and returns -1, 0 or +1.
// Infinite costs compare equal to each other and greater than any finite
// cost, matching the convention that a disconnected agent cannot improve by
// staying disconnected.
func (c Cost) Cmp(o Cost, a Alpha) int {
	ci, oi := c.Infinite(), o.Infinite()
	switch {
	case ci && oi:
		return 0
	case ci:
		return 1
	case oi:
		return -1
	}
	// c < o  <=>  (c.Halves-o.Halves) * Num < (o.Dist-c.Dist) * 2 * Den.
	lhs := (c.Halves - o.Halves) * a.Num
	rhs := (o.Dist - c.Dist) * 2 * a.Den
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	}
	return 0
}

// Less reports c < o under edge price a.
func (c Cost) Less(o Cost, a Alpha) bool { return c.Cmp(o, a) < 0 }

// Float converts the cost to a float64 under edge price a, for reporting.
func (c Cost) Float(a Alpha) float64 {
	if c.Infinite() {
		return float64(DistInf)
	}
	return float64(c.Halves)*a.Float()/2 + float64(c.Dist)
}

func (c Cost) String() string {
	if c.Infinite() {
		return "inf"
	}
	switch c.Halves {
	case 0:
		return fmt.Sprintf("%d", c.Dist)
	default:
		return fmt.Sprintf("%d+%d*a/2", c.Dist, c.Halves)
	}
}

// distCost aggregates a BFS result according to the distance kind.
func distCost(r graph.BFSResult, n int, kind DistKind) int64 {
	if r.Reached < n {
		return DistInf
	}
	if kind == Sum {
		return r.Sum
	}
	return int64(r.Ecc)
}
