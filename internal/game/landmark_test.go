package game

import (
	"math/rand"
	"reflect"
	"testing"

	"ncg/internal/graph"
)

// lmRandConnected builds a random connected graph: a random attachment tree
// plus extra random edges.
func lmRandConnected(n, extra int, r *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, r.Intn(v))
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestLandmarkBoundSound checks the filter's core invariant: for every
// target y and every drop x, the landmark bound never exceeds the exact
// post-swap distance cost — so pruning on it can never lose a move.
func TestLandmarkBoundSound(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, kind := range []DistKind{Sum, Max} {
		for _, k := range []int{1, 3, 8} {
			for _, n := range []int{12, 33} {
				g := lmRandConnected(n, n/2, r)
				lm := graph.BuildLandmarks(g, k, nil)
				s := NewScratch(n)
				s.SetLandmarks(lm)
				b := &base{kind: kind, alpha: AlphaInt(1)}
				for trial := 0; trial < 6; trial++ {
					u := r.Intn(n)
					s.buf = g.Neighbors(u).Elements(s.buf[:0])
					s.buf2 = b.swapTargets(g, u, s.buf2[:0])
					if len(s.buf) == 0 || len(s.buf2) == 0 {
						continue
					}
					s.deltaBegin(g, u)
					s.deltaInit(g, u)
					if !s.lmArm(u, kind) {
						t.Fatalf("filter failed to arm on a connected graph")
					}
					for _, y := range s.buf2 {
						bound := s.lmTargetBound(y, kind)
						for _, x := range s.buf {
							exact := s.deltaSwapDist(g, u, x, y, kind)
							if bound > exact {
								t.Fatalf("kind=%v n=%d k=%d u=%d swap(-%d,+%d): bound %d > exact %d",
									kind, n, k, u, x, y, bound, exact)
							}
						}
					}
				}
			}
		}
	}
}

// TestLandmarkProbeBoundSound exercises the probe-armed path (no deltaInit
// beforehand) used by HasImproving.
func TestLandmarkProbeBoundSound(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for _, kind := range []DistKind{Sum, Max} {
		n := 40
		g := lmRandConnected(n, 15, r)
		lm := graph.BuildLandmarks(g, 5, nil)
		s := NewScratch(n)
		s.SetLandmarks(lm)
		b := &base{kind: kind, alpha: AlphaInt(1)}
		for trial := 0; trial < 8; trial++ {
			u := r.Intn(n)
			s.deltaBegin(g, u)
			if !s.lmProbe(g, u, kind) {
				t.Fatal("probe failed to arm on a connected graph")
			}
			s.buf = g.Neighbors(u).Elements(s.buf[:0])
			s.buf2 = b.swapTargets(g, u, s.buf2[:0])
			s.deltaInit(g, u)
			for _, y := range s.buf2 {
				bound := s.lmTargetBound(y, kind)
				for _, x := range s.buf {
					exact := s.deltaSwapDist(g, u, x, y, kind)
					if bound > exact {
						t.Fatalf("kind=%v u=%d swap(-%d,+%d): bound %d > exact %d",
							kind, u, x, y, bound, exact)
					}
				}
			}
		}
	}
}

// TestLandmarkScanEquality pins the bit-identity contract: with the filter
// installed, HasImproving / ImprovingMoves / BestMoves return exactly what
// the unfiltered scan returns, for both swap games and both cost kinds.
func TestLandmarkScanEquality(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, kind := range []DistKind{Sum, Max} {
		for _, asym := range []bool{false, true} {
			var gm Game
			if asym {
				gm = NewAsymSwap(kind)
			} else {
				gm = NewSwap(kind)
			}
			for _, k := range []int{1, 2, 6, 40} {
				n := 36
				g := lmRandConnected(n, 10, r)
				lm := graph.BuildLandmarks(g, k, nil)
				plain := NewScratch(n)
				filt := NewScratch(n)
				filt.SetLandmarks(lm)
				for u := 0; u < n; u++ {
					if gm.HasImproving(g, u, plain) != gm.HasImproving(g, u, filt) {
						t.Fatalf("%s k=%d u=%d: HasImproving differs", gm.Name(), k, u)
					}
					mp := cloneMoves(gm.ImprovingMoves(g, u, plain, nil))
					mf := cloneMoves(gm.ImprovingMoves(g, u, filt, nil))
					if !reflect.DeepEqual(mp, mf) {
						t.Fatalf("%s k=%d u=%d: ImprovingMoves differ\nplain: %v\nfiltered: %v",
							gm.Name(), k, u, mp, mf)
					}
					bp, cp := gm.BestMoves(g, u, plain, nil)
					bf, cf := gm.BestMoves(g, u, filt, nil)
					if cp != cf || !reflect.DeepEqual(cloneMoves(bp), cloneMoves(bf)) {
						t.Fatalf("%s k=%d u=%d: BestMoves differ (%v/%v vs %v/%v)",
							gm.Name(), k, u, bp, cp, bf, cf)
					}
				}
			}
		}
	}
}

// TestLandmarkDisconnectedFallsBack: on a disconnected graph the filter must
// refuse to arm and the scans must still agree with the unfiltered ones.
func TestLandmarkDisconnectedFallsBack(t *testing.T) {
	g := graph.New(8)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	lm := graph.BuildLandmarks(g, 3, nil)
	if lm.Complete() {
		t.Fatal("disconnected graph reported complete")
	}
	gm := NewSwap(Sum)
	plain := NewScratch(8)
	filt := NewScratch(8)
	filt.SetLandmarks(lm)
	for u := 0; u < 8; u++ {
		bp, cp := gm.BestMoves(g, u, plain, nil)
		bf, cf := gm.BestMoves(g, u, filt, nil)
		if cp != cf || !reflect.DeepEqual(cloneMoves(bp), cloneMoves(bf)) {
			t.Fatalf("u=%d: BestMoves differ on disconnected graph", u)
		}
	}
}

func cloneMoves(ms []Move) []Move {
	out := make([]Move, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Clone())
	}
	return out
}
