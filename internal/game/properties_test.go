package game

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ncg/internal/graph"
)

// randomOwnedGraph builds a random connected graph with random ownership.
func randomOwnedGraph(n int, extra int, r *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		p := r.Intn(i)
		if r.Intn(2) == 0 {
			g.AddEdge(i, p)
		} else {
			g.AddEdge(p, i)
		}
	}
	for e := 0; e < extra; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestASGMovesAreSGMoves: every improving ASG move is an improving SG move
// (the ASG restricts the strategy space, Section 1.1), for both distance
// kinds.
func TestASGMovesAreSGMoves(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, kind := range []DistKind{Sum, Max} {
		sg := NewSwap(kind)
		ag := NewAsymSwap(kind)
		s := NewScratch(16)
		for trial := 0; trial < 25; trial++ {
			g := randomOwnedGraph(16, r.Intn(8), r)
			for u := 0; u < 16; u++ {
				asgMoves := ag.ImprovingMoves(g, u, s, nil)
				sgMoves := sg.ImprovingMoves(g, u, s, nil)
				for _, am := range asgMoves {
					found := false
					for _, sm := range sgMoves {
						if am.Equal(sm) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%v: ASG move %v missing from SG moves", kind, am)
					}
				}
			}
		}
	}
}

// TestGBGBestNeverWorseThanASG: the GBG extends the ASG with buys and
// deletes, so its best response cost is never worse for the same agent
// when the agent owns at least one edge... note the cost models differ
// (the ASG has no edge cost), so compare attainable DISTANCE costs of pure
// swap moves instead: every improving ASG swap appears among GBG moves.
func TestGBGBestNeverWorseThanASG(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	ag := NewAsymSwap(Sum)
	gb := NewGreedyBuy(Sum, AlphaInt(1000000)) // buys effectively disabled
	s := NewScratch(14)
	for trial := 0; trial < 25; trial++ {
		g := randomOwnedGraph(14, r.Intn(6), r)
		for u := 0; u < 14; u++ {
			// Clone: the GBG scans below reuse the scratch move pool.
			for _, am := range CloneMoves(ag.ImprovingMoves(g, u, s, nil)) {
				ims := gb.ImprovingMoves(g, u, s, nil)
				found := false
				for _, gm := range ims {
					if am.Equal(gm) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("ASG swap %v missing from GBG improving moves", am)
				}
			}
		}
	}
}

// TestApplyUndoRoundTrip: applying and undoing random moves restores the
// graph exactly, including ownership.
func TestApplyUndoRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomOwnedGraph(12, r.Intn(10), r)
		before := g.Clone()
		for k := 0; k < 20; k++ {
			u := r.Intn(12)
			// Random applicable move: drop a random subset of owned
			// neighbours, add a random subset of non-neighbours.
			var drop, add []int
			g.OwnedNeighbors(u).ForEach(func(v int) {
				if r.Intn(2) == 0 {
					drop = append(drop, v)
				}
			})
			for v := 0; v < 12; v++ {
				if v != u && !g.HasEdge(u, v) && r.Intn(4) == 0 {
					add = append(add, v)
				}
			}
			ap := Apply(g, Move{Agent: u, Drop: drop, Add: add})
			ap.Undo()
			if !g.Equal(before) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHasImprovingConsistentWithBestMoves: HasImproving and BestMoves must
// agree for every game on random instances.
func TestHasImprovingConsistentWithBestMoves(t *testing.T) {
	games := []Game{
		NewSwap(Sum), NewSwap(Max),
		NewAsymSwap(Sum), NewAsymSwap(Max),
		NewGreedyBuy(Sum, NewAlpha(3, 2)), NewGreedyBuy(Max, NewAlpha(3, 2)),
		NewBuy(Sum, AlphaInt(2)), NewBilateral(Sum, AlphaInt(4)),
	}
	r := rand.New(rand.NewSource(47))
	s := NewScratch(10)
	for trial := 0; trial < 10; trial++ {
		g := randomOwnedGraph(10, r.Intn(6), r)
		for _, gm := range games {
			for u := 0; u < 10; u++ {
				has := gm.HasImproving(g, u, s)
				best, _ := gm.BestMoves(g, u, s, nil)
				if has != (len(best) > 0) {
					t.Fatalf("%s agent %d: HasImproving=%v but %d best moves",
						gm.Name(), u, has, len(best))
				}
				ims := gm.ImprovingMoves(g, u, s, nil)
				if has != (len(ims) > 0) {
					t.Fatalf("%s agent %d: HasImproving=%v but %d improving moves",
						gm.Name(), u, has, len(ims))
				}
			}
		}
	}
}

// TestBestMovesAreImprovingMoves: every best move appears among the
// improving moves and achieves their minimal cost.
func TestBestMovesAreImprovingMoves(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	games := []Game{
		NewSwap(Max), NewAsymSwap(Sum), NewGreedyBuy(Sum, NewAlpha(5, 2)),
	}
	for trial := 0; trial < 15; trial++ {
		g := randomOwnedGraph(12, r.Intn(8), r)
		s := NewScratch(12)
		for _, gm := range games {
			alpha := gm.Alpha()
			for u := 0; u < 12; u++ {
				// Clone: the ImprovingMoves scan reuses the move pool.
				best, bc := gm.BestMoves(g, u, s, nil)
				best = CloneMoves(best)
				ims := gm.ImprovingMoves(g, u, s, nil)
				for _, bm := range best {
					found := false
					for _, im := range ims {
						if bm.Equal(im) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s: best move %v not improving", gm.Name(), bm)
					}
				}
				// No improving move beats the best cost.
				for _, im := range ims {
					ap := Apply(g, im)
					c := gm.Cost(g, u, s)
					ap.Undo()
					if c.Less(bc, alpha) {
						t.Fatalf("%s: improving move %v (%v) beats best %v",
							gm.Name(), im, c, bc)
					}
				}
			}
		}
	}
}
