package game

import (
	"testing"

	"ncg/internal/graph"
)

func TestGreedyBuyMovesOnPath(t *testing.T) {
	// SUM-GBG on P5 with alpha = 2 (cheap edges): leaf 4 owns nothing and
	// should buy; its best buy minimizes sum of distances.
	g := graph.Path(5)
	s := NewScratch(5)
	gb := NewGreedyBuy(Sum, AlphaInt(2))
	cur := gb.Cost(g, 4, s)
	if cur.Halves != 0 || cur.Dist != 10 {
		t.Fatalf("cost of 4 = %v", cur)
	}
	moves, c := gb.BestMoves(g, 4, s, nil)
	if len(moves) == 0 {
		t.Fatal("leaf should buy with cheap alpha")
	}
	for _, m := range moves {
		if m.Kind() != KindBuy {
			t.Fatalf("expected buy, got %v", m)
		}
	}
	// Buying 4->1: distances 3:1,1:1,2:... from 4: 3=1,1=1,0=2,2=2 → 6;
	// buying 4->0: 0=1,1=2,2=2(3=1)... 3=1,2=2,1=3? no: 4-0 edge: 0=1,1=2,
	// 2=3 vs via 3: 2=2,3=1 → 6? sum = 1+2+... compute: d(4,3)=1, d(4,2)=2,
	// d(4,0)=1, d(4,1)=2 → 6. Both 0 and 1 give 6? d via 4->1: 1=1,0=2,2=2,
	// 3=1 → 6. Yes ties.
	if c.Dist != 6 || c.Halves != 2 {
		t.Fatalf("best buy cost = %v", c)
	}
}

func TestGreedyBuyDeletePreferredOnExpensiveEdges(t *testing.T) {
	// Agent 0 owns the cycle edge {0,1} and the chord {0,3}; with huge
	// alpha the best moves are deletions (either one leaves sum 9 for 0).
	g := graph.Cycle(6)
	g.AddEdge(0, 3)
	s := NewScratch(6)
	gb := NewGreedyBuy(Sum, AlphaInt(1000))
	moves, c := gb.BestMoves(g, 0, s, nil)
	if len(moves) != 2 || moves[0].Kind() != KindDelete || moves[1].Kind() != KindDelete {
		t.Fatalf("moves = %v", moves)
	}
	if c.Halves != 2 || c.Dist != 9 {
		t.Fatalf("cost = %v", c)
	}
}

func TestGreedyBuyEnumerationOrder(t *testing.T) {
	// The first enumerated improving move must be a deletion when a
	// deletion is among the best moves (delete < swap < add preference).
	g := graph.Cycle(4)
	g.AddEdge(0, 2)
	s := NewScratch(4)
	gb := NewGreedyBuy(Max, AlphaInt(100))
	moves, _ := gb.BestMoves(g, 0, s, nil)
	if len(moves) == 0 || moves[0].Kind() != KindDelete {
		t.Fatalf("first best move should be delete, got %v", moves)
	}
}

func TestGreedyBuyHappyOnStarCenter(t *testing.T) {
	g := graph.Star(6)
	s := NewScratch(6)
	for _, alpha := range []Alpha{AlphaInt(1), AlphaInt(3), NewAlpha(1, 2)} {
		gb := NewGreedyBuy(Sum, alpha)
		if alpha.Float() > 1 && gb.HasImproving(g, 0, s) {
			t.Fatalf("star center unhappy at alpha=%v", alpha)
		}
	}
	// Leaves cannot improve either when alpha > 1 (buying saves at most 1
	// per edge).
	gb := NewGreedyBuy(Sum, AlphaInt(2))
	for u := 1; u < 6; u++ {
		if gb.HasImproving(g, u, s) {
			t.Fatalf("leaf %d unhappy on star at alpha=2", u)
		}
	}
}

func TestBuyGameMatchesGreedyOnSingleMoves(t *testing.T) {
	// On small graphs, the Buy Game's best response is at least as good as
	// the GBG's, and its improving set contains every greedy improving
	// move's resulting cost.
	g := graph.Path(6)
	s := NewScratch(6)
	alpha := NewAlpha(3, 2)
	gb := NewGreedyBuy(Sum, alpha)
	bg := NewBuy(Sum, alpha)
	for u := 0; u < 6; u++ {
		_, gc := gb.BestMoves(g, u, s, nil)
		_, bc := bg.BestMoves(g, u, s, nil)
		if bc.Cmp(gc, alpha) > 0 {
			t.Fatalf("agent %d: BG best %v worse than GBG best %v", u, bc, gc)
		}
	}
}

func TestBuyGameDeleteAllIsConsidered(t *testing.T) {
	// Agent 0 owns two redundant chords of K4 minus nothing... Build K4
	// where 0 owns {0,2} and {0,3} and also has foreign edges {1,0}; with
	// huge alpha, dropping everything keeps connectivity via 1 and is the
	// unique best response (a 2-edge change the GBG cannot make).
	g := graph.New(4)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	s := NewScratch(4)
	alpha := AlphaInt(100)
	bg := NewBuy(Sum, alpha)
	moves, c := bg.BestMoves(g, 0, s, nil)
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	m := moves[0]
	if len(m.Drop) != 2 || len(m.Add) != 0 {
		t.Fatalf("best = %v, want drop both chords", m)
	}
	if c.Halves != 0 || c.Dist != 1+2+2 {
		t.Fatalf("cost = %v", c)
	}
}

func TestBuyGameExcludesParallelClaims(t *testing.T) {
	// Edge {0,1} owned by 1: vertex 0's candidate set must exclude 1.
	g := graph.New(3)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	bg := NewBuy(Sum, AlphaInt(1))
	cands := bg.strategyCandidates(g, 0, nil)
	if len(cands) != 1 || cands[0] != 2 {
		t.Fatalf("candidates = %v, want [2]", cands)
	}
}

func TestBuyGamePanicsOnHugeStrategySpace(t *testing.T) {
	g := graph.Star(MaxStrategyBits + 3)
	s := NewScratch(g.N())
	bg := NewBuy(Sum, AlphaInt(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on oversized strategy space")
		}
	}()
	bg.BestMoves(g, 1, s, nil)
}

func TestGamePreservesGraphInvariant(t *testing.T) {
	games := []Game{
		NewSwap(Sum), NewSwap(Max), NewAsymSwap(Sum), NewAsymSwap(Max),
		NewGreedyBuy(Sum, AlphaInt(2)), NewGreedyBuy(Max, NewAlpha(3, 2)),
		NewBuy(Sum, AlphaInt(2)), NewBuy(Max, AlphaInt(2)),
		NewBilateral(Sum, AlphaInt(2)), NewBilateral(Max, AlphaInt(2)),
	}
	g := graph.Cycle(6)
	g.AddEdge(0, 2)
	before := g.Clone()
	s := NewScratch(6)
	for _, gm := range games {
		for u := 0; u < 6; u++ {
			gm.Cost(g, u, s)
			gm.HasImproving(g, u, s)
			gm.BestMoves(g, u, s, nil)
			gm.ImprovingMoves(g, u, s, nil)
		}
		if !g.Equal(before) {
			t.Fatalf("%s mutated the graph", gm.Name())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s broke invariants: %v", gm.Name(), err)
		}
	}
}
