package game

import (
	"ncg/internal/graph"
)

// Round-based (simultaneous-move) play commits a set of moves computed
// against one immutable snapshot. This file provides the batch layer those
// dynamics build on: touched-pair conflict keys, the disjointness test that
// makes a move set jointly applicable, and batch apply/undo. When an
// incremental fingerprint is attached to the graph (state.Fingerprint as
// graph observer), its deltas ride every batch mutation automatically.

// PairKey is the canonical conflict key of an undirected vertex pair: two
// moves collide exactly when they touch a common pair. The key ignores
// ownership and direction — an agent adding {u,v} collides with v dropping
// {v,u} — because both operate on the same undirected edge slot.
type PairKey uint64

// MakePairKey returns the canonical key of the pair {u, v}.
func MakePairKey(u, v int) PairKey {
	if u > v {
		u, v = v, u
	}
	return PairKey(uint64(u)<<32 | uint64(v))
}

// ForEachPair calls fn with the conflict key of every edge slot the move
// touches: {Agent, x} for each dropped x and {Agent, y} for each added y.
func (m Move) ForEachPair(fn func(PairKey)) {
	for _, x := range m.Drop {
		fn(MakePairKey(m.Agent, x))
	}
	for _, y := range m.Add {
		fn(MakePairKey(m.Agent, y))
	}
}

// DisjointMoves reports whether the moves touch pairwise-disjoint edge
// slots. For moves that are individually valid on a common snapshot (drops
// are snapshot edges, adds are snapshot non-edges — what BestMoves
// enumerates), disjointness makes the set jointly applicable: committing
// the moves in any order never drops a missing edge or adds a present one,
// and the final network is order-independent. seen, if non-nil, is used as
// the scratch pair set (cleared first) so steady-state callers allocate
// nothing.
func DisjointMoves(moves []Move, seen map[PairKey]struct{}) bool {
	if seen == nil {
		seen = make(map[PairKey]struct{}, 2*len(moves))
	}
	clear(seen)
	ok := true
	for _, m := range moves {
		m.ForEachPair(func(k PairKey) {
			if _, dup := seen[k]; dup {
				ok = false
			}
			seen[k] = struct{}{}
		})
		if !ok {
			return false
		}
	}
	return true
}

// AppliedSet records the reversible effect of a batch-applied move set.
type AppliedSet struct {
	applied []Applied
}

// ApplySet performs every move on g, in slice order, and returns the undo
// record. The moves must be jointly applicable (see DisjointMoves);
// ApplySet panics — like Apply — when a move drops a missing edge or adds
// a present one. A fingerprint observing g absorbs the whole batch as
// ordinary edge mutations.
func ApplySet(g graph.Store, moves []Move) AppliedSet {
	as := AppliedSet{applied: make([]Applied, 0, len(moves))}
	for _, m := range moves {
		as.applied = append(as.applied, Apply(g, m))
	}
	return as
}

// Undo reverts the batch in reverse application order, restoring original
// edge ownership. Reverse order makes Undo correct even for overlapping
// (non-disjoint but still applicable) sets, where a later move dropped an
// edge an earlier move added.
func (as AppliedSet) Undo() {
	for i := len(as.applied) - 1; i >= 0; i-- {
		as.applied[i].Undo()
	}
}

// PureScanner is implemented by games whose move enumerations (BestMoves,
// ImprovingMoves) never mutate the graph, making concurrent scans of
// distinct agents on a shared snapshot safe provided each goroutine uses
// its own Scratch. This is strictly stronger than PureProber: games that
// probe purely but enumerate by transiently applying candidates must not
// implement it.
type PureScanner interface {
	// ScansPurely reports that BestMoves and ImprovingMoves are read-only
	// on the graph.
	ScansPurely() bool
}

// ScansPurely reports whether gm guarantees read-only move enumeration.
// The delta-evaluated scans of the swap variants and the greedy buy game
// qualify; the naive reference scans (apply, BFS, undo) and the exhaustive
// buy/bilateral enumerations do not.
func ScansPurely(gm Game) bool {
	p, ok := gm.(PureScanner)
	return ok && p.ScansPurely()
}

// ScansPurely reports that the delta-evaluated swap scans never mutate the
// graph.
func (sg *Swap) ScansPurely() bool { return true }

// ScansPurely reports that the delta-evaluated swap scans never mutate the
// graph.
func (ag *AsymSwap) ScansPurely() bool { return true }

// ScansPurely reports that forEachGreedyMove is delta-evaluated and never
// mutates the graph.
func (gb *GreedyBuy) ScansPurely() bool { return true }

// ScansPurely reports false: the reference scans mutate the graph while
// enumerating, overriding any promoted claim of the wrapped game.
func (ng naiveGame) ScansPurely() bool { return false }
