package game

import (
	"ncg/internal/graph"
)

// GreedyBuy is the Greedy Buy Game (Lenzner, WINE'12): in one move an agent
// may buy one edge, delete one own edge, or swap one own edge. The owner
// pays alpha per owned edge. Best responses are polynomial-time computable
// by enumerating the O(n * deg) greedy moves.
type GreedyBuy struct {
	base
}

// NewGreedyBuy returns the GBG with the given distance kind and edge price.
func NewGreedyBuy(kind DistKind, alpha Alpha) *GreedyBuy {
	return &GreedyBuy{base{kind: kind, alpha: alpha}}
}

// NewGreedyBuyHost returns the GBG on a host graph: bought or swapped-in
// edges must be host edges; deletions are unrestricted.
func NewGreedyBuyHost(kind DistKind, alpha Alpha, host *graph.Graph) *GreedyBuy {
	return &GreedyBuy{base{kind: kind, alpha: alpha, host: host}}
}

func (gb *GreedyBuy) Name() string {
	return gb.kind.String() + "-GBG"
}

// OwnershipMatters is true: strategies are owned-neighbour sets.
func (gb *GreedyBuy) OwnershipMatters() bool { return true }

// Cost returns u's cost: alpha per owned edge plus distance cost.
func (gb *GreedyBuy) Cost(g *graph.Graph, u int, s *Scratch) Cost {
	return agentCost(g, u, gb.kind, modelUnilateral, s)
}

// forEachGreedyMove enumerates u's greedy moves in the order deletions,
// swaps, additions (the preference order of Section 4.2.1) and calls fn with
// each move's cost. fn returns false to stop the enumeration. The x and y
// parameters are the dropped and added neighbours (-1 when absent).
func (gb *GreedyBuy) forEachGreedyMove(g *graph.Graph, u int, s *Scratch, fn func(x, y int, c Cost) bool) {
	s.buf = g.OwnedNeighbors(u).Elements(s.buf[:0])
	s.buf2 = gb.swapTargets(g, u, s.buf2[:0])
	// Deletions.
	for _, x := range s.buf {
		owner := u
		g.RemoveEdge(u, x)
		c := agentCost(g, u, gb.kind, modelUnilateral, s)
		g.AddEdge(owner, x)
		if !fn(x, -1, c) {
			return
		}
	}
	// Swaps.
	for _, x := range s.buf {
		for _, y := range s.buf2 {
			c := evalSwap(&gb.base, g, u, x, y, modelUnilateral, s)
			if !fn(x, y, c) {
				return
			}
		}
	}
	// Additions.
	for _, y := range s.buf2 {
		g.AddEdge(u, y)
		c := agentCost(g, u, gb.kind, modelUnilateral, s)
		g.RemoveEdge(u, y)
		if !fn(-1, y, c) {
			return
		}
	}
}

func greedyMove(u, x, y int) Move {
	m := Move{Agent: u}
	if x >= 0 {
		m.Drop = []int{x}
	}
	if y >= 0 {
		m.Add = []int{y}
	}
	return m
}

func (gb *GreedyBuy) HasImproving(g *graph.Graph, u int, s *Scratch) bool {
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	found := false
	gb.forEachGreedyMove(g, u, s, func(x, y int, c Cost) bool {
		if c.Less(cur, gb.alpha) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (gb *GreedyBuy) BestMoves(g *graph.Graph, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	best := cur
	start := len(dst)
	gb.forEachGreedyMove(g, u, s, func(x, y int, c Cost) bool {
		switch c.Cmp(best, gb.alpha) {
		case -1:
			dst = dst[:start]
			dst = append(dst, greedyMove(u, x, y))
			best = c
		case 0:
			if best.Less(cur, gb.alpha) {
				dst = append(dst, greedyMove(u, x, y))
			}
		}
		return true
	})
	if !best.Less(cur, gb.alpha) {
		return dst[:start], cur
	}
	return dst, best
}

func (gb *GreedyBuy) ImprovingMoves(g *graph.Graph, u int, s *Scratch, dst []Move) []Move {
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	gb.forEachGreedyMove(g, u, s, func(x, y int, c Cost) bool {
		if c.Less(cur, gb.alpha) {
			dst = append(dst, greedyMove(u, x, y))
		}
		return true
	})
	return dst
}

var _ Game = (*GreedyBuy)(nil)
