package game

import (
	"ncg/internal/graph"
)

// GreedyBuy is the Greedy Buy Game (Lenzner, WINE'12): in one move an agent
// may buy one edge, delete one own edge, or swap one own edge. The owner
// pays alpha per owned edge. Best responses are polynomial-time computable
// by enumerating the O(n * deg) greedy moves.
type GreedyBuy struct {
	base
}

// NewGreedyBuy returns the GBG with the given distance kind and edge price.
func NewGreedyBuy(kind DistKind, alpha Alpha) *GreedyBuy {
	return &GreedyBuy{base{kind: kind, alpha: alpha}}
}

// NewGreedyBuyHost returns the GBG on a host graph: bought or swapped-in
// edges must be host edges; deletions are unrestricted.
func NewGreedyBuyHost(kind DistKind, alpha Alpha, host graph.Store) *GreedyBuy {
	return &GreedyBuy{base{kind: kind, alpha: alpha, host: host}}
}

func (gb *GreedyBuy) Name() string {
	return gb.kind.String() + "-GBG"
}

// OwnershipMatters is true: strategies are owned-neighbour sets.
func (gb *GreedyBuy) OwnershipMatters() bool { return true }

// Cost returns u's cost: alpha per owned edge plus distance cost.
func (gb *GreedyBuy) Cost(g graph.Store, u int, s *Scratch) Cost {
	return agentCost(g, u, gb.kind, modelUnilateral, s)
}

// forEachGreedyMove enumerates u's greedy moves in the order deletions,
// swaps, additions (the preference order of Section 4.2.1) and calls fn with
// each move's cost. fn returns false to stop the enumeration. The x and y
// parameters are the dropped and added neighbours (-1 when absent). Every
// move is scored by the delta evaluator (see delta.go): one distance row of
// G-u per current neighbour up front, one per added target on demand, and
// sub-O(n) arithmetic per candidate; the graph is never mutated.
//
// pruneSwap, if non-nil, receives a cost known to bound every swap with a
// given target from below (the oracle add-bound with the swap edge-cost
// term) and returns true to skip that target's swaps; it is only consulted
// when a distance oracle is installed, where it saves the target's search.
// Skipped swaps must be ones the caller would ignore anyway.
func (gb *GreedyBuy) forEachGreedyMove(g graph.Store, u int, s *Scratch, pruneSwap func(Cost) bool, fn func(x, y int, c Cost) bool) {
	s.buf = g.OwnedList(u, s.buf[:0])
	s.buf2 = gb.swapTargets(g, u, s.buf2[:0])
	s.deltaBegin(g, u)
	s.deltaInit(g, u)
	halves := curHalves(g, u, modelUnilateral)
	// Deletions.
	for _, x := range s.buf {
		c := Cost{Halves: halves - 2, Dist: s.deltaDropDist(x, gb.kind)}
		if !fn(x, -1, c) {
			return
		}
	}
	// Swaps.
	for _, x := range s.buf {
		for _, y := range s.buf2 {
			if pruneSwap != nil && s.oracle != nil {
				if bound, ok := s.deltaTargetBound(u, y, gb.kind, boundExact); ok {
					if pruneSwap(Cost{Halves: halves, Dist: bound}) {
						continue
					}
					if gb.kind == Sum && pruneSwap(Cost{Halves: halves, Dist: s.deltaPairBoundSum(u, x, y, bound)}) {
						continue
					}
				}
			}
			c := Cost{Halves: halves, Dist: s.deltaSwapDist(g, u, x, y, gb.kind)}
			if !fn(x, y, c) {
				return
			}
		}
	}
	// Additions.
	for _, y := range s.buf2 {
		c := Cost{Halves: halves + 2, Dist: s.deltaAddDist(g, u, y, gb.kind)}
		if !fn(-1, y, c) {
			return
		}
	}
}

// greedyMove builds a move with pool-backed Drop/Add slices; it is valid
// only until the next enumeration on s.
func greedyMove(s *Scratch, u, x, y int) Move {
	m := Move{Agent: u}
	if x >= 0 {
		m.Drop = s.single(x)
	}
	if y >= 0 {
		m.Add = s.single(y)
	}
	return m
}

func (gb *GreedyBuy) HasImproving(g graph.Store, u int, s *Scratch) bool {
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	found := false
	prune := func(c Cost) bool { return !c.Less(cur, gb.alpha) }
	gb.forEachGreedyMove(g, u, s, prune, func(x, y int, c Cost) bool {
		if c.Less(cur, gb.alpha) {
			found = true
			return false
		}
		return true
	})
	return found
}

// ProbesPurely reports that HasImproving never mutates the graph, so
// concurrent probes on a shared graph are safe with per-goroutine scratch.
func (gb *GreedyBuy) ProbesPurely() bool { return true }

func (gb *GreedyBuy) BestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	s.pool = s.pool[:0]
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	best := cur
	start := len(dst)
	prune := func(c Cost) bool { return c.Cmp(best, gb.alpha) > 0 }
	gb.forEachGreedyMove(g, u, s, prune, func(x, y int, c Cost) bool {
		switch c.Cmp(best, gb.alpha) {
		case -1:
			dst = dst[:start]
			dst = append(dst, greedyMove(s, u, x, y))
			best = c
		case 0:
			if best.Less(cur, gb.alpha) {
				dst = append(dst, greedyMove(s, u, x, y))
			}
		}
		return true
	})
	if !best.Less(cur, gb.alpha) {
		return dst[:start], cur
	}
	return dst, best
}

func (gb *GreedyBuy) ImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	s.pool = s.pool[:0]
	cur := agentCost(g, u, gb.kind, modelUnilateral, s)
	prune := func(c Cost) bool { return !c.Less(cur, gb.alpha) }
	gb.forEachGreedyMove(g, u, s, prune, func(x, y int, c Cost) bool {
		if c.Less(cur, gb.alpha) {
			dst = append(dst, greedyMove(s, u, x, y))
		}
		return true
	})
	return dst
}

var _ Game = (*GreedyBuy)(nil)
