package game

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ncg/internal/graph"
)

// Equivalence of the delta evaluator (delta.go) with the naive full-BFS
// reference path (naive.go): identical HasImproving verdicts, identical
// BestMoves sets and costs, identical ImprovingMoves sets, on randomized
// owned graphs — connected and disconnected — for every delta-scanned game
// in both distance-cost versions.

// deltaGames returns every game whose scans are delta-evaluated, with a
// spread of edge prices for the GBG.
func deltaGames(host *graph.Graph) []Game {
	gs := []Game{
		NewSwap(Sum), NewSwap(Max),
		NewAsymSwap(Sum), NewAsymSwap(Max),
		NewGreedyBuy(Sum, AlphaInt(1)),
		NewGreedyBuy(Sum, NewAlpha(5, 2)),
		NewGreedyBuy(Max, AlphaInt(3)),
		NewGreedyBuy(Max, NewAlpha(1, 2)),
	}
	if host != nil {
		gs = append(gs,
			NewSwapHost(Sum, host), NewSwapHost(Max, host),
			NewAsymSwapHost(Sum, host), NewAsymSwapHost(Max, host),
			NewGreedyBuyHost(Sum, NewAlpha(5, 2), host),
		)
	}
	return gs
}

func sortedMoves(ms []Move) []Move {
	out := CloneMoves(append([]Move(nil), ms...))
	for i := range out {
		sort.Ints(out[i].Drop)
		sort.Ints(out[i].Add)
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i]) < fmt.Sprint(out[j])
	})
	return out
}

func movesEqual(a, b []Move) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// randomDeltaGraph builds a random owned graph; roughly one in three is
// disconnected, exercising the Unreachable saturation of the delta path.
func randomDeltaGraph(n int, r *rand.Rand) *graph.Graph {
	g := graph.New(n)
	m := r.Intn(2*n + 1)
	if r.Intn(3) > 0 {
		// Connected base: a random spanning tree over a shuffled order.
		perm := r.Perm(n)
		for i := 1; i < n; i++ {
			u, v := perm[i], perm[r.Intn(i)]
			if r.Intn(2) == 0 {
				g.AddEdge(u, v)
			} else {
				g.AddEdge(v, u)
			}
		}
	}
	for k := 0; k < m; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestDeltaMatchesNaiveScans(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(15)
		g := randomDeltaGraph(n, r)
		host := randomDeltaGraph(n, r)
		s := NewScratch(n)
		sn := NewScratch(n)
		for _, gm := range deltaGames(host) {
			ng := Naive(gm)
			for u := 0; u < n; u++ {
				before := g.Clone()
				if got, want := gm.HasImproving(g, u, s), ng.HasImproving(g, u, sn); got != want {
					t.Fatalf("%s agent %d on %v: HasImproving = %v, naive %v", gm.Name(), u, g, got, want)
				}
				db, dc := gm.BestMoves(g, u, s, nil)
				db = CloneMoves(db)
				nb, nc := ng.BestMoves(g, u, sn, nil)
				if dc != nc {
					t.Fatalf("%s agent %d on %v: best cost %v, naive %v", gm.Name(), u, g, dc, nc)
				}
				if !movesEqual(db, nb) {
					t.Fatalf("%s agent %d on %v: best moves %v, naive %v", gm.Name(), u, g, db, nb)
				}
				di := CloneMoves(gm.ImprovingMoves(g, u, s, nil))
				ni := ng.ImprovingMoves(g, u, sn, nil)
				if !movesEqual(sortedMoves(di), sortedMoves(ni)) {
					t.Fatalf("%s agent %d on %v: improving %v, naive %v", gm.Name(), u, g, di, ni)
				}
				if !g.Equal(before) {
					t.Fatalf("%s agent %d: scan mutated the graph", gm.Name(), u)
				}
			}
		}
	}
}

// testOracle is an exact all-pairs oracle built by BFS, for tests.
type testOracle struct{ rows [][]int32 }

func newTestOracle(g *graph.Graph) *testOracle {
	return &testOracle{rows: g.AllDistances()}
}

func (o *testOracle) Row(v int) []int32 { return o.rows[v] }

// TestDeltaWithOracleMatchesNaive: with a distance oracle installed —
// enabling searchless addition scoring, target-bound pruning, and the
// lazy probe path — every scan must still agree with the naive reference.
func TestDeltaWithOracleMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(15)
		g := randomDeltaGraph(n, r)
		host := randomDeltaGraph(n, r)
		s := NewScratch(n)
		sn := NewScratch(n)
		s.SetDistOracle(newTestOracle(g))
		for _, gm := range deltaGames(host) {
			ng := Naive(gm)
			for u := 0; u < n; u++ {
				if got, want := gm.HasImproving(g, u, s), ng.HasImproving(g, u, sn); got != want {
					t.Fatalf("%s agent %d on %v: oracle HasImproving = %v, naive %v", gm.Name(), u, g, got, want)
				}
				db, dc := gm.BestMoves(g, u, s, nil)
				db = CloneMoves(db)
				nb, nc := ng.BestMoves(g, u, sn, nil)
				if dc != nc || !movesEqual(db, nb) {
					t.Fatalf("%s agent %d on %v: oracle best %v (%v), naive %v (%v)", gm.Name(), u, g, db, dc, nb, nc)
				}
				di := CloneMoves(gm.ImprovingMoves(g, u, s, nil))
				ni := ng.ImprovingMoves(g, u, sn, nil)
				if !movesEqual(di, ni) {
					t.Fatalf("%s agent %d on %v: oracle improving %v, naive %v", gm.Name(), u, g, di, ni)
				}
			}
		}
		s.SetDistOracle(nil)
	}
}

// TestDeltaEnumerationOrder: beyond set equality, BestMoves and
// ImprovingMoves must enumerate in exactly the naive order, because the
// TieFirst/TieLast rules of the dynamics break ties positionally.
func TestDeltaEnumerationOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(12)
		g := randomDeltaGraph(n, r)
		s := NewScratch(n)
		sn := NewScratch(n)
		for _, gm := range deltaGames(nil) {
			ng := Naive(gm)
			for u := 0; u < n; u++ {
				db, _ := gm.BestMoves(g, u, s, nil)
				db = CloneMoves(db)
				nb, _ := ng.BestMoves(g, u, sn, nil)
				if !movesEqual(db, nb) {
					t.Fatalf("%s agent %d on %v: best order %v, naive %v", gm.Name(), u, g, db, nb)
				}
				di := CloneMoves(gm.ImprovingMoves(g, u, s, nil))
				ni := ng.ImprovingMoves(g, u, sn, nil)
				if !movesEqual(di, ni) {
					t.Fatalf("%s agent %d on %v: improving order %v, naive %v", gm.Name(), u, g, di, ni)
				}
			}
		}
	}
}

// TestDeltaCostAgreement: the current-cost shortcut of the delta scans
// (derived from the neighbour minima) must equal the game's Cost method on
// the same state.
func TestDeltaCostAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(14)
		g := randomDeltaGraph(n, r)
		s := NewScratch(n)
		for _, kind := range []DistKind{Sum, Max} {
			sg := NewSwap(kind)
			for u := 0; u < n; u++ {
				s.deltaBegin(g, u)
				s.deltaInit(g, u)
				got := Cost{Dist: s.deltaCurDist(kind)}
				want := sg.Cost(g, u, s)
				if got != want {
					t.Fatalf("kind %v agent %d on %v: delta cost %v, Cost %v", kind, u, g, got, want)
				}
			}
		}
	}
}

// TestBuyFastProbeAgreement: the single-edge pre-pass of Buy.HasImproving
// must never change the verdict of the exhaustive enumeration.
func TestBuyFastProbeAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(7)
		g := randomDeltaGraph(n, r)
		s := NewScratch(n)
		for _, alpha := range []Alpha{AlphaInt(1), NewAlpha(3, 2), AlphaInt(5)} {
			for _, kind := range []DistKind{Sum, Max} {
				bg := NewBuy(kind, alpha)
				for u := 0; u < n; u++ {
					cur := agentCost(g, u, kind, modelUnilateral, s)
					got := bg.HasImproving(g, u, s)
					exhaustive := false
					bg.forEachStrategy(g, u, s, func(m Move, c Cost) bool {
						if c.Less(cur, alpha) {
							exhaustive = true
							return false
						}
						return true
					})
					if got != exhaustive {
						t.Fatalf("%s agent %d on %v: HasImproving = %v, exhaustive %v", bg.Name(), u, g, got, exhaustive)
					}
				}
			}
		}
	}
}

// TestScratchReuseAcrossSizes: one scratch serving graphs of different
// vertex counts must keep the delta state consistent.
func TestScratchReuseAcrossSizes(t *testing.T) {
	s := NewScratch(4)
	sg := NewSwap(Sum)
	for _, n := range []int{4, 9, 5, 12, 3} {
		g := graph.Path(n)
		for u := 0; u < n; u++ {
			moves, c := sg.BestMoves(g, u, s, nil)
			moves = CloneMoves(moves)
			nm, nc := Naive(sg).BestMoves(g, u, NewScratch(n), nil)
			if c != nc || !movesEqual(moves, nm) {
				t.Fatalf("n=%d agent %d: %v (%v) vs naive %v (%v)", n, u, moves, c, nm, nc)
			}
		}
	}
}
