package game

import (
	"ncg/internal/graph"
)

// Game is the strategic substrate a network creation process runs on: it
// defines agent costs and the admissible strategy changes of Section 1.1.
//
// All methods must be safe for concurrent use on distinct (g, s) pairs; a
// Scratch must not be shared between goroutines.
type Game interface {
	// Name is a short identifier such as "SUM-ASG".
	Name() string
	// DistKind reports the distance-cost aggregation.
	DistKind() DistKind
	// Alpha is the edge price; swap games return a dummy positive value
	// that never influences costs.
	Alpha() Alpha
	// OwnershipMatters distinguishes games whose state includes the
	// ownership function (ASG, GBG, BG) from the Swap Game, where two
	// networks with the same edges are the same state.
	OwnershipMatters() bool
	// Cost returns the exact cost of agent u in g.
	Cost(g graph.Store, u int, s *Scratch) Cost
	// HasImproving reports whether u has at least one feasible strictly
	// improving strategy change; it exits early where possible.
	HasImproving(g graph.Store, u int, s *Scratch) bool
	// BestMoves appends to dst every feasible move realizing the best
	// attainable cost for u, provided that cost strictly improves on u's
	// current cost, and returns the moves with the attained cost. An
	// empty result means u is happy; the returned cost is then u's
	// current cost.
	BestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost)
	// ImprovingMoves appends every feasible strictly improving move of u,
	// for weak-acyclicity analyses.
	ImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move
}

// PureProber is implemented by games whose HasImproving never mutates the
// graph, making concurrent happiness probes of distinct agents on a shared
// graph safe provided each goroutine uses its own Scratch. Games that probe
// by transiently applying candidate moves (Buy, Bilateral) must not
// implement it.
type PureProber interface {
	// ProbesPurely reports that HasImproving is read-only on the graph.
	ProbesPurely() bool
}

// ProbesPurely reports whether gm guarantees read-only happiness probes.
func ProbesPurely(gm Game) bool {
	p, ok := gm.(PureProber)
	return ok && p.ProbesPurely()
}

// UsesSwapScans reports whether gm's best-response scans are the
// delta-evaluated swap scans, the ones that honour an installed landmark
// filter (Swap and AsymSwap; naive-wrapped games run the reference scans
// and never consult it).
func UsesSwapScans(gm Game) bool {
	switch gm.(type) {
	case *Swap, *AsymSwap:
		return true
	}
	return false
}

// EdgeCostHalves returns the alpha/2-unit edge-cost count of agent u in g
// under gm's cost model, and whether that model is known. It lets process
// engines combine cached distance costs with the degree-derived edge-cost
// term instead of re-running the game's full Cost computation.
func EdgeCostHalves(gm Game, g graph.Store, u int) (int64, bool) {
	if ng, ok := gm.(naiveGame); ok {
		gm = ng.Game
	}
	switch gm.(type) {
	case *Swap, *AsymSwap:
		return 0, true
	case *Buy, *GreedyBuy:
		return 2 * int64(g.OutDegree(u)), true
	case *Bilateral:
		return int64(g.Degree(u)), true
	}
	return 0, false
}

// AllCosts appends every agent's current cost to dst, computing all
// distance aggregates in one batched bit-parallel BFS pass (64 sources per
// pass) instead of n single-source searches. The result is identical to
// calling gm.Cost per agent; games whose edge-cost term is not derivable
// from degrees fall back to per-agent evaluation.
func AllCosts(g graph.Store, gm Game, s *Scratch, dst []Cost) []Cost {
	n := g.N()
	if n == 0 {
		return dst
	}
	if _, ok := EdgeCostHalves(gm, g, 0); !ok {
		for u := 0; u < n; u++ {
			dst = append(dst, gm.Cost(g, u, s))
		}
		return dst
	}
	res := allSourcesResults(g, s)
	kind := gm.DistKind()
	for u := 0; u < n; u++ {
		h, _ := EdgeCostHalves(gm, g, u)
		dst = append(dst, Cost{Halves: h, Dist: distCost(res[u], n, kind)})
	}
	return dst
}

// allSourcesResults runs the batched all-sources BFS pass into the
// scratch's reusable result buffer — the shared scaffolding of AllCosts
// and TotalCost.
func allSourcesResults(g graph.Store, s *Scratch) []graph.BFSResult {
	n := g.N()
	if s.batch == nil {
		s.batch = graph.NewBatchBFSScratch(n)
	}
	if cap(s.resBuf) < n {
		s.resBuf = make([]graph.BFSResult, n)
	}
	res := s.resBuf[:n]
	g.AllSourcesBFS(nil, res, s.batch)
	return res
}

// TotalCost sums every agent's cost of g under gm — the social cost in
// alpha/2 edge units and distance units — without materializing the
// per-agent slice. It is the fold form of AllCosts for metrics-in-a-loop
// callers (quality scoring of campaign hits, ensemble sinks): with a warm
// Scratch the batched path allocates nothing.
func TotalCost(g graph.Store, gm Game, s *Scratch) (halves, dist int64) {
	n := g.N()
	if n == 0 {
		return 0, 0
	}
	if _, ok := EdgeCostHalves(gm, g, 0); !ok {
		for u := 0; u < n; u++ {
			c := gm.Cost(g, u, s)
			halves += c.Halves
			dist += c.Dist
		}
		return halves, dist
	}
	res := allSourcesResults(g, s)
	kind := gm.DistKind()
	for u := 0; u < n; u++ {
		h, _ := EdgeCostHalves(gm, g, u)
		halves += h
		dist += distCost(res[u], n, kind)
	}
	return halves, dist
}

// Scratch bundles the reusable buffers of cost and best-response
// computations for one goroutine.
type Scratch struct {
	n      int
	bfs    *graph.BFSScratch
	repair *graph.RepairScratch
	buf    []int
	buf2   []int
	nbrs   []int
	set    graph.Bitset

	// delta holds the lazily allocated state of delta-evaluated scans
	// (see delta.go).
	delta deltaScratch

	// pool backs the Drop/Add slices of enumerated moves. It is reset at
	// the start of every enumeration (BestMoves, ImprovingMoves), so moves
	// returned by those methods are valid only until the next enumeration
	// on the same Scratch; callers that retain them must Clone.
	pool []int

	// oracle, when installed, provides exact current-network distances
	// that delta scans use to score additions without a search and to
	// prune hopeless swap targets. See SetDistOracle.
	oracle DistOracle

	// lmk, when installed (and oracle is not), provides landmark distance
	// rows that swap scans turn into sound lower bounds for candidate
	// pruning; lm holds the filter's per-scan tables. See SetLandmarks.
	lmk *graph.Landmarks
	lm  lmScratch

	// batch and resBuf serve AllCosts' batched all-sources pass.
	batch  *graph.BatchBFSScratch
	resBuf []graph.BFSResult
}

// DistOracle provides exact all-pairs shortest-path distances of the
// current network, typically an incrementally maintained matrix owned by a
// process engine.
type DistOracle interface {
	// Row returns the distances from v to every vertex (Unreachable for
	// other components). The caller must not modify the slice.
	Row(v int) []int32
}

// SetDistOracle installs (or, with nil, removes) a distance oracle on s.
// The oracle MUST reflect the scanned network exactly whenever a scan
// runs: callers that mutate the network must update the oracle before the
// next scan or clear it. A stale oracle yields wrong scan results.
func (s *Scratch) SetDistOracle(o DistOracle) { s.oracle = o }

// NewScratch returns scratch space for games on n-vertex networks.
func NewScratch(n int) *Scratch {
	return &Scratch{
		n:      n,
		bfs:    graph.NewBFSScratch(n),
		set:    graph.NewBitset(n),
		repair: graph.NewRepairScratch(n),
	}
}

// single returns a pool-backed one-element slice, for Move Drop/Add lists.
func (s *Scratch) single(x int) []int {
	s.pool = append(s.pool, x)
	return s.pool[len(s.pool)-1 : len(s.pool) : len(s.pool)]
}

// base carries the configuration shared by all concrete games.
type base struct {
	kind  DistKind
	alpha Alpha
	host  graph.Store // nil means the complete host graph
}

func (b base) DistKind() DistKind { return b.kind }
func (b base) Alpha() Alpha       { return b.alpha }

// allowed reports whether the host graph permits edge {u,v}.
func (b base) allowed(u, v int) bool {
	return b.host == nil || b.host.HasEdge(u, v)
}

// costModel selects how many alpha/2 units an agent pays.
type costModel int

const (
	modelSwap       costModel = iota // no edge cost
	modelUnilateral                  // owner pays alpha per owned edge
	modelBilateral                   // alpha/2 per incident edge
)

// agentCost evaluates u's cost in g under the given model.
func agentCost(g graph.Store, u int, kind DistKind, model costModel, s *Scratch) Cost {
	r := g.BFS(u, nil, s.bfs)
	c := Cost{Dist: distCost(r, g.N(), kind)}
	switch model {
	case modelUnilateral:
		c.Halves = 2 * int64(g.OutDegree(u))
	case modelBilateral:
		c.Halves = int64(g.Degree(u))
	}
	return c
}

// evalMove applies m, computes the mover's cost, and undoes m.
func evalMove(g graph.Store, m Move, kind DistKind, model costModel, s *Scratch) Cost {
	ap := Apply(g, m)
	c := agentCost(g, m.Agent, kind, model, s)
	ap.Undo()
	return c
}

// swapTargets returns the valid swap/buy targets of agent u in g appended
// to dst: vertices that are not u, not already neighbours of u, and
// host-permitted.
func (b base) swapTargets(g graph.Store, u int, dst []int) []int {
	n := g.N()
	for v := 0; v < n; v++ {
		if v == u || g.HasEdge(u, v) || !b.allowed(u, v) {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}
