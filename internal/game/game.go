package game

import (
	"ncg/internal/graph"
)

// Game is the strategic substrate a network creation process runs on: it
// defines agent costs and the admissible strategy changes of Section 1.1.
//
// All methods must be safe for concurrent use on distinct (g, s) pairs; a
// Scratch must not be shared between goroutines.
type Game interface {
	// Name is a short identifier such as "SUM-ASG".
	Name() string
	// DistKind reports the distance-cost aggregation.
	DistKind() DistKind
	// Alpha is the edge price; swap games return a dummy positive value
	// that never influences costs.
	Alpha() Alpha
	// OwnershipMatters distinguishes games whose state includes the
	// ownership function (ASG, GBG, BG) from the Swap Game, where two
	// networks with the same edges are the same state.
	OwnershipMatters() bool
	// Cost returns the exact cost of agent u in g.
	Cost(g *graph.Graph, u int, s *Scratch) Cost
	// HasImproving reports whether u has at least one feasible strictly
	// improving strategy change; it exits early where possible.
	HasImproving(g *graph.Graph, u int, s *Scratch) bool
	// BestMoves appends to dst every feasible move realizing the best
	// attainable cost for u, provided that cost strictly improves on u's
	// current cost, and returns the moves with the attained cost. An
	// empty result means u is happy; the returned cost is then u's
	// current cost.
	BestMoves(g *graph.Graph, u int, s *Scratch, dst []Move) ([]Move, Cost)
	// ImprovingMoves appends every feasible strictly improving move of u,
	// for weak-acyclicity analyses.
	ImprovingMoves(g *graph.Graph, u int, s *Scratch, dst []Move) []Move
}

// Scratch bundles the reusable buffers of cost and best-response
// computations for one goroutine.
type Scratch struct {
	n    int
	bfs  *graph.BFSScratch
	buf  []int
	buf2 []int
	set  graph.Bitset
}

// NewScratch returns scratch space for games on n-vertex networks.
func NewScratch(n int) *Scratch {
	return &Scratch{
		n:   n,
		bfs: graph.NewBFSScratch(n),
		set: graph.NewBitset(n),
	}
}

// base carries the configuration shared by all concrete games.
type base struct {
	kind  DistKind
	alpha Alpha
	host  *graph.Graph // nil means the complete host graph
}

func (b base) DistKind() DistKind { return b.kind }
func (b base) Alpha() Alpha       { return b.alpha }

// allowed reports whether the host graph permits edge {u,v}.
func (b base) allowed(u, v int) bool {
	return b.host == nil || b.host.HasEdge(u, v)
}

// costModel selects how many alpha/2 units an agent pays.
type costModel int

const (
	modelSwap       costModel = iota // no edge cost
	modelUnilateral                  // owner pays alpha per owned edge
	modelBilateral                   // alpha/2 per incident edge
)

// agentCost evaluates u's cost in g under the given model.
func agentCost(g *graph.Graph, u int, kind DistKind, model costModel, s *Scratch) Cost {
	r := g.BFS(u, nil, s.bfs)
	c := Cost{Dist: distCost(r, g.N(), kind)}
	switch model {
	case modelUnilateral:
		c.Halves = 2 * int64(g.OutDegree(u))
	case modelBilateral:
		c.Halves = int64(g.Degree(u))
	}
	return c
}

// evalMove applies m, computes the mover's cost, and undoes m.
func evalMove(g *graph.Graph, m Move, kind DistKind, model costModel, s *Scratch) Cost {
	ap := Apply(g, m)
	c := agentCost(g, m.Agent, kind, model, s)
	ap.Undo()
	return c
}

// swapTargets returns the valid swap/buy targets of agent u in g appended
// to dst: vertices that are not u, not already neighbours of u, and
// host-permitted.
func (b base) swapTargets(g *graph.Graph, u int, dst []int) []int {
	n := g.N()
	for v := 0; v < n; v++ {
		if v == u || g.HasEdge(u, v) || !b.allowed(u, v) {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}
