package game

import (
	"fmt"

	"ncg/internal/graph"
)

// Buy is the original Network Creation Game of Fabrikant et al. (PODC'03):
// a strategy of agent u is an arbitrary set of vertices u buys edges to, at
// price alpha each. Computing a best response is NP-hard, so this
// implementation enumerates all 2^|C| strategies over the candidate set C
// and is intended for the paper's small constructions (Section 4.1); it
// panics if |C| exceeds MaxStrategyBits.
//
// Strategies containing a vertex v already connected to u by an edge v owns
// ("parallel claims") are excluded from the strategy space: such strategies
// cost alpha more than their reduction while inducing the same network, so
// they are strictly dominated and their exclusion changes neither best
// responses nor the existence of improving paths.
type Buy struct {
	base
}

// MaxStrategyBits bounds the exhaustive strategy enumeration of the Buy
// Game and the bilateral game: at most 2^MaxStrategyBits strategies per
// agent are examined.
const MaxStrategyBits = 22

// NewBuy returns the Buy Game with the given distance kind and edge price.
func NewBuy(kind DistKind, alpha Alpha) *Buy {
	return &Buy{base{kind: kind, alpha: alpha}}
}

// NewBuyHost returns the Buy Game on a host graph; bought edges must be
// host edges.
func NewBuyHost(kind DistKind, alpha Alpha, host graph.Store) *Buy {
	return &Buy{base{kind: kind, alpha: alpha, host: host}}
}

func (bg *Buy) Name() string {
	return bg.kind.String() + "-BG"
}

// OwnershipMatters is true: strategies are owned-neighbour sets.
func (bg *Buy) OwnershipMatters() bool { return true }

// Cost returns u's cost: alpha per owned edge plus distance cost.
func (bg *Buy) Cost(g graph.Store, u int, s *Scratch) Cost {
	return agentCost(g, u, bg.kind, modelUnilateral, s)
}

// strategyCandidates returns the vertices that may appear in a strategy of
// u: not u, host-permitted, and not connected to u by a foreign-owned edge.
func (bg *Buy) strategyCandidates(g graph.Store, u int, dst []int) []int {
	n := g.N()
	for v := 0; v < n; v++ {
		if v == u || !bg.allowed(u, v) {
			continue
		}
		if g.HasEdge(u, v) && !g.Owns(u, v) {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// forEachStrategy enumerates every strategy of u other than the current one
// and calls fn with the move transforming the current strategy into it and
// the resulting cost for u. fn returns false to stop.
func (bg *Buy) forEachStrategy(g graph.Store, u int, s *Scratch, fn func(m Move, c Cost) bool) {
	cands := bg.strategyCandidates(g, u, nil)
	if len(cands) > MaxStrategyBits {
		panic(fmt.Sprintf("game: Buy Game strategy space 2^%d exceeds limit 2^%d", len(cands), MaxStrategyBits))
	}
	curMask := uint32(0)
	for i, v := range cands {
		if g.Owns(u, v) {
			curMask |= 1 << uint(i)
		}
	}
	var drop, add []int
	for mask := uint32(0); mask < 1<<uint(len(cands)); mask++ {
		if mask == curMask {
			continue
		}
		drop, add = drop[:0], add[:0]
		for i, v := range cands {
			bit := uint32(1) << uint(i)
			switch {
			case curMask&bit != 0 && mask&bit == 0:
				drop = append(drop, v)
			case curMask&bit == 0 && mask&bit != 0:
				add = append(add, v)
			}
		}
		m := Move{Agent: u, Drop: drop, Add: add}
		c := evalMove(g, m, bg.kind, modelUnilateral, s)
		if !fn(m, c) {
			return
		}
	}
}

func (bg *Buy) HasImproving(g graph.Store, u int, s *Scratch) bool {
	cur := agentCost(g, u, bg.kind, modelUnilateral, s)
	// Delta-evaluated pre-pass over the single-added-edge and
	// single-removed-edge strategies (see delta.go): when one of these
	// already improves — the common case along a dynamics trajectory — the
	// exponential enumeration below never runs.
	if bg.hasImprovingSingle(g, u, cur, s) {
		return true
	}
	found := false
	bg.forEachStrategy(g, u, s, func(m Move, c Cost) bool {
		if c.Less(cur, bg.alpha) {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasImprovingSingle reports whether buying one edge or deleting one owned
// edge strictly improves on cur. Single-edge additions range over exactly
// the unconnected strategy candidates (swapTargets) and single-edge
// deletions over the owned neighbours, so this scans a subset of the full
// strategy space and can return false negatives only.
func (bg *Buy) hasImprovingSingle(g graph.Store, u int, cur Cost, s *Scratch) bool {
	s.buf = g.OwnedList(u, s.buf[:0])
	s.buf2 = bg.swapTargets(g, u, s.buf2[:0])
	if len(s.buf) == 0 && len(s.buf2) == 0 {
		return false
	}
	s.deltaBegin(g, u)
	s.deltaInit(g, u)
	halves := curHalves(g, u, modelUnilateral)
	for _, x := range s.buf {
		c := Cost{Halves: halves - 2, Dist: s.deltaDropDist(x, bg.kind)}
		if c.Less(cur, bg.alpha) {
			return true
		}
	}
	for _, y := range s.buf2 {
		c := Cost{Halves: halves + 2, Dist: s.deltaAddDist(g, u, y, bg.kind)}
		if c.Less(cur, bg.alpha) {
			return true
		}
	}
	return false
}

func (bg *Buy) BestMoves(g graph.Store, u int, s *Scratch, dst []Move) ([]Move, Cost) {
	cur := agentCost(g, u, bg.kind, modelUnilateral, s)
	best := cur
	start := len(dst)
	bg.forEachStrategy(g, u, s, func(m Move, c Cost) bool {
		switch c.Cmp(best, bg.alpha) {
		case -1:
			dst = dst[:start]
			dst = append(dst, m.Clone())
			best = c
		case 0:
			if best.Less(cur, bg.alpha) {
				dst = append(dst, m.Clone())
			}
		}
		return true
	})
	if !best.Less(cur, bg.alpha) {
		return dst[:start], cur
	}
	return dst, best
}

func (bg *Buy) ImprovingMoves(g graph.Store, u int, s *Scratch, dst []Move) []Move {
	cur := agentCost(g, u, bg.kind, modelUnilateral, s)
	bg.forEachStrategy(g, u, s, func(m Move, c Cost) bool {
		if c.Less(cur, bg.alpha) {
			dst = append(dst, m.Clone())
		}
		return true
	})
	return dst
}

var _ Game = (*Buy)(nil)
