package quality

import (
	"testing"

	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

func TestSocialCostStar(t *testing.T) {
	g := graph.Star(5)
	gm := game.NewGreedyBuy(game.Sum, game.AlphaInt(4))
	sc := Of(g, gm, nil)
	// 4 edges owned by the center: 8 halves. Distances: center 4; each
	// leaf 1 + 3*2 = 7: total 4 + 28 = 32.
	if sc.EdgeHalves != 8 || sc.Dist != 32 {
		t.Fatalf("social cost = %+v", sc)
	}
	if sc.Float(game.AlphaInt(4)) != 16+32 {
		t.Fatalf("float = %v", sc.Float(game.AlphaInt(4)))
	}
}

func TestSumBGOptimumCrossover(t *testing.T) {
	// alpha < 2: clique optimal; alpha > 2: star optimal.
	gOpt, c := SumBGOptimum(6, game.NewAlpha(3, 2))
	if gOpt.M() != 15 {
		t.Fatalf("alpha=1.5 optimum should be the clique, got m=%d", gOpt.M())
	}
	if c.Dist != 30 || c.EdgeHalves != 30 {
		t.Fatalf("clique cost = %+v", c)
	}
	gOpt, _ = SumBGOptimum(6, game.AlphaInt(3))
	if !gOpt.IsStar() {
		t.Fatal("alpha=3 optimum should be the star")
	}
	// At alpha == 2 both tie; the star is returned.
	gOpt, _ = SumBGOptimum(6, game.AlphaInt(2))
	if !gOpt.IsStar() {
		t.Fatal("alpha=2 should return the star")
	}
}

func TestOptimumIsOptimalByBruteForce(t *testing.T) {
	// For n = 5 and several alphas, no graph beats the claimed optimum.
	n := 5
	s := game.NewScratch(n)
	gm := func(a game.Alpha) game.Game { return game.NewGreedyBuy(game.Sum, a) }
	pairs := [][2]int{}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	for _, alpha := range []game.Alpha{game.NewAlpha(1, 2), game.NewAlpha(3, 2), game.AlphaInt(2), game.AlphaInt(5)} {
		_, opt := SumBGOptimum(n, alpha)
		for mask := 0; mask < 1<<len(pairs); mask++ {
			g := graph.New(n)
			for i, p := range pairs {
				if mask&(1<<i) != 0 {
					g.AddEdge(p[0], p[1])
				}
			}
			if !g.Connected() {
				continue
			}
			sc := Of(g, gm(alpha), s)
			if sc.Less(opt, alpha) {
				t.Fatalf("alpha=%v: %v beats claimed optimum (%+v < %+v)", alpha, g, sc, opt)
			}
		}
	}
}

// TestConvergedNetworksAreNearOptimal quantifies the paper's motivating
// claim: the stable networks reached by distributed local search in the
// SUM-GBG have social cost close to the optimum (constant price of
// anarchy regime) and small diameter.
func TestConvergedNetworksAreNearOptimal(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		n := 20 + 4*trial
		r := gen.NewRand(int64(trial))
		g := gen.RandomConnected(n, 2*n, r)
		gm := game.NewGreedyBuy(game.Sum, game.NewAlpha(int64(n), 4))
		res := dynamics.Run(g, dynamics.Config{Game: gm, Policy: dynamics.MaxCost{}, Seed: int64(trial)})
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		rep := Evaluate(g, gm, nil)
		if rep.Diameter > 4 {
			t.Fatalf("trial %d: stable diameter %d too large", trial, rep.Diameter)
		}
		if rep.Ratio > 1.5 {
			t.Fatalf("trial %d: stable network %.2fx optimum", trial, rep.Ratio)
		}
	}
}

func TestEvaluateOnOptimum(t *testing.T) {
	alpha := game.AlphaInt(10)
	gm := game.NewGreedyBuy(game.Sum, alpha)
	gOpt, _ := SumBGOptimum(12, alpha)
	rep := Evaluate(gOpt, gm, nil)
	if rep.Ratio != 1 {
		t.Fatalf("optimum ratio = %v, want 1", rep.Ratio)
	}
}

// TestOfAllocationFree pins the warmed metrics-in-a-loop path: with a
// caller-owned scratch, Of must not allocate per call. This is the
// regression guard for campaign hit scoring and sink-side quality metrics.
func TestOfAllocationFree(t *testing.T) {
	g := gen.BudgetNetwork(64, 3, gen.NewRand(1))
	gm := game.NewGreedyBuy(game.Sum, game.NewAlpha(64, 4))
	s := game.NewScratch(64)
	want := Of(g, gm, s) // warm the batch scratch
	avg := testing.AllocsPerRun(50, func() {
		if Of(g, gm, s) != want {
			t.Fatal("social cost changed")
		}
	})
	if avg != 0 {
		t.Errorf("warmed Of allocates %.1f per call, want 0", avg)
	}
}

// TestOfScratchMatchesFresh: the scratch-reusing path computes the same
// social cost as a fresh evaluation, across cost models.
func TestOfScratchMatchesFresh(t *testing.T) {
	g := gen.RandomConnected(20, 40, gen.NewRand(2))
	s := game.NewScratch(20)
	for _, gm := range []game.Game{
		game.NewSwap(game.Max),
		game.NewAsymSwap(game.Sum),
		game.NewGreedyBuy(game.Sum, game.AlphaInt(3)),
		game.NewBilateral(game.Max, game.NewAlpha(3, 2)),
	} {
		if got, want := Of(g, gm, s), Of(g, gm, nil); got != want {
			t.Errorf("%s: scratch path %+v, fresh path %+v", gm.Name(), got, want)
		}
	}
}

func TestTrivialSizes(t *testing.T) {
	for n := 0; n <= 1; n++ {
		g, c := SumBGOptimum(n, game.AlphaInt(1))
		if g.N() != n || c.EdgeHalves != 0 || c.Dist != 0 {
			t.Fatalf("n=%d: %+v", n, c)
		}
	}
}
