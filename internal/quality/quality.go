// Package quality measures the equilibrium quality notions that motivate
// the paper (Section 1 and 1.3): social cost, the social optimum of the
// Buy Game's cost model, and the resulting price-of-anarchy style ratios
// of the stable networks that the dynamics converge to. The paper argues
// network creation games are attractive for decentralized network design
// because their stable states are near-optimal; this package quantifies
// that for the networks the process engine actually produces.
package quality

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// SocialCost is the sum of all agents' costs under the game's cost model.
// For unilateral buy games this equals alpha*m + sum of distance costs;
// for swap games it is the pure distance cost.
type SocialCost struct {
	// EdgeHalves counts alpha/2 units paid in total (2 per edge for
	// unilateral owners, 2 per edge in the bilateral game — one per
	// endpoint).
	EdgeHalves int64
	// Dist is the summed distance cost; game.DistInf-based if the
	// network is disconnected.
	Dist int64
}

// Float converts the social cost to a float under edge price a.
func (s SocialCost) Float(a game.Alpha) float64 {
	return float64(s.EdgeHalves)*a.Float()/2 + float64(s.Dist)
}

// Less compares social costs exactly under edge price a.
func (s SocialCost) Less(o SocialCost, a game.Alpha) bool {
	return (game.Cost{Halves: s.EdgeHalves, Dist: s.Dist}).
		Less(game.Cost{Halves: o.EdgeHalves, Dist: o.Dist}, a)
}

// Of computes the social cost of g under gm; the distance aggregates of
// all agents come from one batched bit-parallel BFS pass. A nil scratch
// allocates a fresh one; metrics-in-a-loop callers (campaign hit scoring,
// ensemble sinks) pass their own, making the warmed path allocation-free
// (pinned by TestOfAllocationFree).
func Of(g *graph.Graph, gm game.Game, s *game.Scratch) SocialCost {
	if s == nil {
		s = game.NewScratch(g.N())
	}
	halves, dist := game.TotalCost(g, gm, s)
	return SocialCost{EdgeHalves: halves, Dist: dist}
}

// SumBGOptimum returns the social optimum of the SUM Buy Game cost model
// on n agents (Fabrikant et al.): the clique for alpha < 2 and the star
// for alpha >= 2, together with its exact social cost. For alpha == 2 both
// are optimal; the star is returned.
func SumBGOptimum(n int, alpha game.Alpha) (*graph.Graph, SocialCost) {
	if n <= 1 {
		return graph.New(n), SocialCost{}
	}
	// Clique: m = n(n-1)/2 edges, every distance 1.
	clique := SocialCost{
		EdgeHalves: int64(n) * int64(n-1),
		Dist:       int64(n) * int64(n-1),
	}
	// Star: m = n-1; center has dist n-1; each leaf 1 + 2(n-2).
	star := SocialCost{
		EdgeHalves: 2 * int64(n-1),
		Dist:       int64(n-1) + int64(n-1)*(1+2*int64(n-2)),
	}
	if clique.Less(star, alpha) {
		return graph.Complete(n), clique
	}
	return graph.Star(n), star
}

// Report summarizes the quality of a (stable) network against the social
// optimum of its game.
type Report struct {
	Cost     SocialCost
	Optimum  SocialCost
	Ratio    float64 // Cost / Optimum under the game's alpha
	Diameter int32
}

// Evaluate computes the quality report of g under the SUM Buy Game cost
// model with the game's edge price (the paper's headline price-of-anarchy
// setting). It also works for GBG-produced networks, which share the cost
// model. The scratch follows Of's convention (nil allocates).
func Evaluate(g *graph.Graph, gm game.Game, s *game.Scratch) Report {
	cost := Of(g, gm, s)
	_, opt := SumBGOptimum(g.N(), gm.Alpha())
	r := Report{
		Cost:     cost,
		Optimum:  opt,
		Diameter: g.Diameter(),
	}
	if o := opt.Float(gm.Alpha()); o > 0 {
		r.Ratio = cost.Float(gm.Alpha()) / o
	}
	return r
}
