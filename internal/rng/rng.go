// Package rng is the single home of the repository's splitmix64
// machinery: stateless sub-seed derivation (SplitMix64, Seed), the bare
// finalizer used to spread hash values (Mix64), and the sequential stream
// form used to fill deterministic tables (Stream). The ensemble, campaign
// and dynamics layers all derive their per-trial / per-instance / per-run
// seed streams from Seed, so the exact bit streams pinned by this
// package's tests are part of every record format: changing any function
// here silently invalidates existing JSONL checkpoints.
package rng

// gamma is the splitmix64 golden-gamma state increment.
const gamma = 0x9e3779b97f4a7c15

// Mix64 is the splitmix64 output finalizer (variant 13 of Stafford's
// mixers): a bijection on 64-bit words that spreads low-entropy inputs
// over the whole word. It is what the state-intern table uses to turn
// Zobrist fingerprints into slot indices.
func Mix64(h uint64) uint64 {
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// SplitMix64 derives an independent sub-seed from a base seed: one full
// splitmix64 step (state increment plus finalizer). It is used to give
// every (configuration, trial) pair of an experiment its own reproducible
// stream.
func SplitMix64(x uint64) uint64 {
	return Mix64(x + gamma)
}

// Seed combines a base seed with index terms into a new non-negative
// seed. It is the shared per-trial (ensemble), per-instance (campaign)
// and per-run (dynamics) stream derivation: the result depends only on
// (base, idx...), never on scheduling, so records are reproducible.
func Seed(base int64, idx ...uint64) int64 {
	x := uint64(base)
	for _, i := range idx {
		x = SplitMix64(x ^ SplitMix64(i))
	}
	return int64(x >> 1)
}

// Stream is the sequential form of splitmix64: each Next advances the
// state by the golden gamma and finalizes it. Deterministic table fills
// (the Zobrist tables of internal/state) consume it.
type Stream struct {
	x uint64
}

// NewStream returns a stream whose first Next equals SplitMix64(seed).
func NewStream(seed uint64) Stream { return Stream{x: seed} }

// Next returns the stream's next 64-bit value.
func (s *Stream) Next() uint64 {
	s.x += gamma
	return Mix64(s.x)
}
