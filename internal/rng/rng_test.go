package rng

import "testing"

// TestSplitMix64Reference pins the canonical splitmix64 test vectors
// (seed 0, first three outputs). These exact values flow into every
// derived seed of the repository, so a mismatch here means every recorded
// JSONL stream would silently change.
func TestSplitMix64Reference(t *testing.T) {
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	s := NewStream(0)
	x := uint64(0)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("Stream output %d = %#x, want %#x", i, got, w)
		}
		// The stateless step must agree with the stream.
		x += gamma
		if got := SplitMix64(x - gamma); got != w {
			t.Fatalf("SplitMix64 chain %d = %#x, want %#x", i, got, w)
		}
	}
}

// TestSeedStream pins the exact derived-seed values the ensemble and
// campaign spines key their records on. The reference values are computed
// by the pre-extraction implementation (gen.Seed before internal/rng
// existed); they must never drift, or existing checkpoints stop resuming.
func TestSeedStream(t *testing.T) {
	// oldSplit/oldSeed are verbatim copies of the historical inline code.
	oldSplit := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	oldSeed := func(base int64, idx ...uint64) int64 {
		x := uint64(base)
		for _, i := range idx {
			x = oldSplit(x ^ oldSplit(i))
		}
		return int64(x >> 1)
	}
	cases := [][]uint64{
		{},
		{0},
		{10, 0},
		{10, 59},
		{50, 59},
		{0, 0, 0},
		{3, 7, 99},
		{1, 2, 3, 4},
	}
	for _, base := range []int64{1, 7, -3, 1 << 40} {
		for _, idx := range cases {
			if got, want := Seed(base, idx...), oldSeed(base, idx...); got != want {
				t.Fatalf("Seed(%d, %v) = %d, want %d", base, idx, got, want)
			}
		}
	}
	// A handful of literal pins on top of the cross-check, so a bug in the
	// local reference copy cannot hide a drift.
	if got := Seed(1, 10, 0); got != 6576006514320072251 {
		t.Fatalf("Seed(1, 10, 0) = %d", got)
	}
	if got := Seed(1, 0, 0, 0); got != 5179350173753458171 {
		t.Fatalf("Seed(1, 0, 0, 0) = %d", got)
	}
}

// TestSeedNonNegative checks the sign-bit shift: derived seeds feed
// rand.NewSource, which is happiest with non-negative values.
func TestSeedNonNegative(t *testing.T) {
	for base := int64(-50); base < 50; base++ {
		for i := uint64(0); i < 20; i++ {
			if s := Seed(base, i); s < 0 {
				t.Fatalf("Seed(%d, %d) = %d < 0", base, i, s)
			}
		}
	}
}

// TestMix64Finalizer pins the bare finalizer against the full step: the
// intern table's slot spreading must keep its historical values.
func TestMix64Finalizer(t *testing.T) {
	for _, x := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		if got, want := Mix64(x+gamma), SplitMix64(x); got != want {
			t.Fatalf("Mix64(%#x+gamma) = %#x, want SplitMix64 %#x", x, got, want)
		}
	}
	if got := Mix64(0); got != 0 {
		// The finalizer is a bijection fixing 0 — relied on by nothing,
		// pinned so any change to the mixer constants is loud.
		t.Fatalf("Mix64(0) = %#x, want 0", got)
	}
}
