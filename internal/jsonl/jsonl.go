// Package jsonl holds the truncated-tail JSONL recovery shared by the
// checkpoint loaders of the ensemble and campaign spines: a record file
// written by an interrupted run is a sequence of complete JSON lines
// followed by at most one torn tail (a partial line, or garbage after a
// crash). Scanning stops at the first incomplete or unparseable line, so
// resuming re-runs exactly the work the file does not fully record.
package jsonl

import (
	"bufio"
	"bytes"
	"io"
	"os"
)

// ScanLines reads r line by line, calling accept for each complete,
// non-blank line (without its newline). It returns the byte offset after
// the last good line: blank lines advance it, accept returning false — an
// unparseable line — or a final line without a trailing newline marks the
// start of the truncated tail, which is not scanned further.
func ScanLines(r io.Reader, accept func(line []byte) bool) (goodBytes int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a write was cut mid-line; drop it.
			return goodBytes, nil
		}
		if err != nil {
			return goodBytes, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			goodBytes += int64(len(line))
			continue
		}
		if !accept(trimmed) {
			// A corrupt line: treat it and everything after as the tail.
			return goodBytes, nil
		}
		goodBytes += int64(len(line))
	}
}

// ScanFile opens path and scans it with ScanLines.
func ScanFile(path string, accept func(line []byte) bool) (goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return ScanLines(f, accept)
}

// BufWriter is the buffered-writer scaffolding shared by the record sinks
// of the ensemble and campaign spines: it owns the buffer and closes the
// underlying writer if it is a Closer.
type BufWriter struct {
	// W is the buffered writer sinks encode records into.
	W *bufio.Writer
	c io.Closer
}

// NewBufWriter buffers w; if w is an io.Closer it is closed with the
// writer.
func NewBufWriter(w io.Writer) BufWriter {
	b := BufWriter{W: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		b.c = c
	}
	return b
}

// Flush pushes buffered records to the underlying writer.
func (b *BufWriter) Flush() error { return b.W.Flush() }

// Close flushes and releases the underlying writer.
func (b *BufWriter) Close() error {
	err := b.W.Flush()
	if b.c != nil {
		if cerr := b.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// OpenResume prepares a partial record file for resumption: it truncates
// the file back to goodBytes (cutting the torn tail), fsyncs the cut so a
// crash cannot resurrect the discarded tail under fresh appends, and
// returns the file positioned for appending, so completing the run
// rewrites the file exactly as an uninterrupted one would have.
func OpenResume(path string, goodBytes int64) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*os.File, error) {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(goodBytes); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if _, err := f.Seek(goodBytes, io.SeekStart); err != nil {
		return fail(err)
	}
	return f, nil
}
