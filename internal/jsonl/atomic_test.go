package jsonl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteFileReplacesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("new"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "new" {
		t.Fatalf("content = %q, want %q", data, "new")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", fi.Mode().Perm())
	}
}

func TestAtomicWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	for i := 0; i < 5; i++ {
		if err := AtomicWriteFile(path, []byte(strings.Repeat("x", i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A failed write (missing target directory) must not disturb anything.
	if err := AtomicWriteFile(filepath.Join(dir, "no-such-dir", "f"), []byte("x"), 0o644); err == nil {
		t.Fatalf("write into missing directory succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "state.json" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only state.json", names)
	}
}

func TestAppendSyncAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := AppendSync(path, []byte("a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendSync(path, []byte("b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\nb\n" {
		t.Fatalf("content = %q", data)
	}
}

// testRecord is the record shape the damage sweep writes: a sequence
// number makes replay, drops and duplicates detectable.
type testRecord struct {
	Seq  int    `json:"seq"`
	Body string `json:"body"`
}

func canonicalRecord(i int) []byte {
	data, _ := json.Marshal(testRecord{Seq: i, Body: fmt.Sprintf("payload-%d", i)})
	return data
}

// buildStream renders n records exactly as the spines' sinks do (one
// json.Encoder line each).
func buildStream(n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		buf.Write(canonicalRecord(i))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// checkResume runs one crash-damaged file through the full resume cycle —
// scan with a strict loader, truncate the tail with OpenResume, append
// the not-yet-committed records — and asserts the resume contract:
//
//   - every record wholly committed before the damage is trusted (no drop),
//   - the strict scan yields sequence numbers 0..m-1 exactly once each
//     (no replay, no duplicate),
//   - after the resumed run completes, re-scanning the file yields every
//     record exactly once and no trailing tail.
//
// The loader mirrors how the spines validate: a line must parse AND be
// the expected next record; anything else starts the discarded tail.
func checkResume(t *testing.T, tag string, n, intact int, damaged []byte) {
	t.Helper()
	scanStrict := func(path string) (int64, []int) {
		var seqs []int
		good, err := ScanFile(path, func(line []byte) bool {
			var r testRecord
			if err := json.Unmarshal(line, &r); err != nil {
				return false
			}
			if r.Seq != len(seqs) || r.Seq >= n || !bytes.Equal(line, canonicalRecord(r.Seq)) {
				return false
			}
			seqs = append(seqs, r.Seq)
			return true
		})
		if err != nil {
			t.Fatalf("%s: scan: %v", tag, err)
		}
		return good, seqs
	}

	path := filepath.Join(t.TempDir(), "rec.jsonl")
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	good, seqs := scanStrict(path)
	m := len(seqs)
	if m < intact {
		t.Fatalf("%s: only %d of %d committed records trusted — a committed record was dropped", tag, m, intact)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("%s: trusted seqs %v — replayed or reordered", tag, seqs)
		}
	}

	// Truncate the tail and run the "rest of the campaign": append the
	// records the scan did not trust.
	f, err := OpenResume(path, good)
	if err != nil {
		t.Fatalf("%s: OpenResume: %v", tag, err)
	}
	for i := m; i < n; i++ {
		if _, err := f.Write(append(canonicalRecord(i), '\n')); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	finalGood, finalSeqs := scanStrict(path)
	if len(finalSeqs) != n {
		t.Fatalf("%s: resumed file holds %d records, want %d (seqs %v)", tag, len(finalSeqs), n, finalSeqs)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if finalGood != fi.Size() {
		t.Fatalf("%s: resumed file has a %d-byte untrusted tail", tag, fi.Size()-finalGood)
	}
}

// intactBelow counts records whose full line (newline included) survives
// below the cut point.
func intactBelow(n, cut int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += len(canonicalRecord(i)) + 1
		if total > cut {
			return i
		}
	}
	return n
}

// TestResumeAfterRandomDamage sweeps the crash shapes a log file can take:
// torn writes (cut mid-record), and a torn write followed by garbage — the
// stale disk blocks a crashed append leaves behind.
func TestResumeAfterRandomDamage(t *testing.T) {
	const n = 40
	full := buildStream(n)
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cut := rng.Intn(len(full) + 1)
		damaged := append([]byte(nil), full[:cut]...)
		if rng.Intn(2) == 1 {
			junk := make([]byte, 1+rng.Intn(48))
			rng.Read(junk)
			damaged = append(damaged, junk...)
		}
		checkResume(t, fmt.Sprintf("seed=%d cut=%d", seed, cut), n, intactBelow(n, cut), damaged)
	}
}

// FuzzResumeAfterDamage fuzzes the same contract with coverage-guided
// damage: arbitrary cut point and arbitrary garbage tail, including
// garbage that itself parses as JSON or mimics real records.
func FuzzResumeAfterDamage(f *testing.F) {
	const n = 12
	full := buildStream(n)
	f.Add(len(full), []byte{})
	f.Add(17, []byte("garbage"))
	f.Add(0, []byte("{\"seq\":0,\"body\":\"payload-0\"}\n"))
	f.Add(5, []byte{0, 10, 123, 125, 10})
	f.Fuzz(func(t *testing.T, cut int, junk []byte) {
		if cut < 0 {
			cut = -cut
		}
		cut %= len(full) + 1
		damaged := append(append([]byte(nil), full[:cut]...), junk...)
		checkResume(t, fmt.Sprintf("cut=%d junk=%q", cut, junk), n, intactBelow(n, cut), damaged)
	})
}
