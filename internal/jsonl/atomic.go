package jsonl

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes data to path so that a crash at any point leaves
// either the old content or the new content, never a torn mix: the data
// goes to a temporary file in the same directory, is fsynced, and is
// renamed over path; the directory is fsynced afterwards so the rename
// itself survives a crash. The checkpoint and manifest writers of the
// ensemble, campaign and coordinator layers all route whole-file state
// through here — resume state can be stale after a crash, but never
// corrupt.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// On any failure, remove the temp file; path is untouched.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, committing renames and creations inside it.
// Filesystems that do not support directory fsync (it is a no-op on some)
// report benign errors; those are swallowed — the rename itself already
// happened, durability is best-effort there.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// EINVAL/ENOTSUP from filesystems without directory fsync.
		return nil
	}
	return nil
}

// AppendSync opens path for appending (creating it if missing), writes
// data, and fsyncs before closing, so a committed append survives a crash.
// An append cut short by a crash leaves at most one torn tail, exactly the
// shape ScanLines recovers from.
func AppendSync(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("jsonl: append %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
