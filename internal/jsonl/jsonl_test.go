package jsonl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScanLinesStopsAtTornTail(t *testing.T) {
	in := "{\"a\":1}\n\n{\"a\":2}\n{\"a\":3"
	var got []string
	good, err := ScanLines(strings.NewReader(in), func(line []byte) bool {
		got = append(got, string(line))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != `{"a":1}` || got[1] != `{"a":2}` {
		t.Fatalf("accepted lines = %q", got)
	}
	if want := int64(len(in) - len(`{"a":3`)); good != want {
		t.Fatalf("goodBytes = %d, want %d", good, want)
	}
}

func TestScanLinesStopsAtRejectedLine(t *testing.T) {
	in := "one\ngarbage\ntwo\n"
	var got []string
	good, err := ScanLines(strings.NewReader(in), func(line []byte) bool {
		if string(line) == "garbage" {
			return false
		}
		got = append(got, string(line))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "one" {
		t.Fatalf("accepted lines = %q", got)
	}
	if good != int64(len("one\n")) {
		t.Fatalf("goodBytes = %d, want %d", good, len("one\n"))
	}
}

func TestOpenResumeTruncatesTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.jsonl")
	if err := os.WriteFile(path, []byte("a\nb\nc-torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	good, err := ScanFile(path, func([]byte) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenResume(path, good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("c\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\nb\nc\n" {
		t.Fatalf("resumed file = %q", data)
	}
}
