// Package faultinject is the deterministic fault seam of the campaign
// service: coordinator, worker and the shard-file writers ask an Injector
// before every fallible operation whether a scheduled fault fires there.
// Schedules are pure functions of a seed, so a chaos run — crashes before
// commit, torn tails, dropped heartbeats, stalled workers, duplicate lease
// grants — is exactly reproducible, and the chaos suite can sweep seeds
// and assert that the merged record stream survives every one of them
// byte-for-byte. A nil *Injector is the production no-op: every Fire
// returns None.
package faultinject

import (
	"sync"

	"ncg/internal/rng"
)

// Point names one fault site. Call sites fire the point every time they
// pass it; the injector counts occurrences per point, so a schedule can
// target "the third manifest append" deterministically.
type Point string

// The fault sites of the campaign service.
const (
	// ShardWrite guards the coordinator persisting a completed shard
	// file. Crash loses the upload before anything reaches disk.
	ShardWrite Point = "shard-write"
	// ManifestAppend guards the coordinator committing a manifest entry
	// after the shard file is durable. Crash leaves an orphan shard file;
	// Torn leaves a torn manifest tail.
	ManifestAppend Point = "manifest-append"
	// LeaseGrant guards the coordinator handing a shard to a worker.
	// Duplicate re-grants a shard that is already leased.
	LeaseGrant Point = "lease-grant"
	// Heartbeat guards the worker's lease renewal. Drop loses one
	// heartbeat; Crash silences the heartbeat loop for the rest of the
	// lease, so the lease expires under a live worker.
	Heartbeat Point = "heartbeat"
	// WorkerInstance guards the worker between instances of a shard.
	// Crash abandons the shard without releasing the lease (a dead
	// worker); Stall pauses past the lease TTL and then continues.
	WorkerInstance Point = "worker-instance"
	// StreamChunk guards the coordinator writing one chunk of the
	// committed record prefix to a stream client. Crash kills the
	// coordinator mid-stream (clients must resume against the restarted
	// process); Drop severs the connection mid-chunk, so the client sees
	// a truncated body and must discard the partial chunk — its cursor
	// only ever advances past fully-read chunks.
	StreamChunk Point = "stream-chunk"
	// StreamClient guards the watch client between stream reads. Crash
	// drops the connection mid-read and reconnects with the last acked
	// cursor; Stall stops reading past the server's write deadline, so
	// the coordinator evicts the client; Duplicate reconnects immediately
	// without backoff (one pulse of a reconnect storm).
	StreamClient Point = "stream-client"
)

// Kind is the fault fired at a point: None means the operation proceeds.
type Kind int

const (
	// None fires no fault.
	None Kind = iota
	// Crash simulates process death before the operation commits.
	Crash
	// Torn persists only a prefix of the operation's bytes, then crashes.
	Torn
	// Drop loses the message silently.
	Drop
	// Stall delays the operation past the lease TTL.
	Stall
	// Duplicate performs the operation twice (e.g. re-grants a lease).
	Duplicate
)

// String names the kind for logs and test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Torn:
		return "torn"
	case Drop:
		return "drop"
	case Stall:
		return "stall"
	case Duplicate:
		return "duplicate"
	}
	return "unknown"
}

// Schedule maps a point's occurrence index (0-based) to the fault fired
// there. Occurrences without an entry proceed normally.
type Schedule map[Point]map[int]Kind

// Injector fires the faults of one schedule. It is safe for concurrent
// use; a nil *Injector never fires.
type Injector struct {
	mu    sync.Mutex
	sched Schedule
	count map[Point]int
	fired []Firing
}

// Firing records one fired fault for test diagnostics.
type Firing struct {
	Point      Point
	Occurrence int
	Kind       Kind
}

// New returns an injector firing the given schedule.
func New(sched Schedule) *Injector {
	return &Injector{sched: sched, count: make(map[Point]int)}
}

// Fire reports the fault scheduled for this occurrence of p, advancing
// the point's occurrence counter. A nil receiver reports None.
func (in *Injector) Fire(p Point) Kind {
	if in == nil {
		return None
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	i := in.count[p]
	in.count[p] = i + 1
	k := in.sched[p][i]
	if k != None {
		in.fired = append(in.fired, Firing{Point: p, Occurrence: i, Kind: k})
	}
	return k
}

// Fired returns the faults fired so far, in firing order.
func (in *Injector) Fired() []Firing {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Firing(nil), in.fired...)
}

// pointKinds lists, per point, the kinds a seeded schedule may fire there
// — the faults that make sense at that site.
var pointKinds = []struct {
	p     Point
	kinds []Kind
}{
	{ShardWrite, []Kind{Crash}},
	{ManifestAppend, []Kind{Crash, Torn}},
	{LeaseGrant, []Kind{Duplicate}},
	{Heartbeat, []Kind{Drop, Crash}},
	{WorkerInstance, []Kind{Crash, Stall}},
	// The stream points are appended, never inserted: each point's
	// schedule stream is seeded by its index here, so appending extends
	// seeded schedules to the new sites without changing what any
	// existing seed fires at the old ones.
	{StreamChunk, []Kind{Crash, Drop}},
	{StreamClient, []Kind{Crash, Stall, Duplicate}},
}

// Seeded derives a deterministic schedule from a seed: for each fault
// site, each of the first horizon occurrences fires one of the site's
// applicable kinds with probability numer/denom. The same seed always
// yields the same schedule, so a failing chaos run reproduces exactly.
func Seeded(seed int64, horizon int, numer, denom uint64) Schedule {
	sched := make(Schedule)
	for pi, pk := range pointKinds {
		s := rng.NewStream(uint64(rng.Seed(seed, uint64(pi))))
		for occ := 0; occ < horizon; occ++ {
			if s.Next()%denom < numer {
				k := pk.kinds[s.Next()%uint64(len(pk.kinds))]
				m := sched[pk.p]
				if m == nil {
					m = make(map[int]Kind)
					sched[pk.p] = m
				}
				m[occ] = k
			}
		}
	}
	return sched
}
