// Package gen builds the random initial networks of the paper's empirical
// sections: the bounded-budget networks of Section 3.4.1, the random
// connected m-edge networks of Section 4.2.1 and the rl/dl line topologies
// of Section 4.2.2, plus uniform random trees (Prüfer) for the tree
// theorems. All generators are deterministic given a *rand.Rand.
package gen

import (
	"fmt"
	"math/rand"

	"ncg/internal/graph"
	"ncg/internal/rng"
)

// Rand is the random source consumed by all generators.
type Rand = rand.Rand

// NewRand returns a rand.Rand seeded with seed.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SplitMix64 derives independent sub-seeds from a base seed; it is
// rng.SplitMix64, re-exported because generator call sites read naturally
// as gen.SplitMix64.
func SplitMix64(x uint64) uint64 { return rng.SplitMix64(x) }

// Seed combines a base seed with index terms into a new seed; it is
// rng.Seed, the shared per-trial/per-instance stream derivation.
func Seed(base int64, idx ...uint64) int64 { return rng.Seed(base, idx...) }

// BudgetNetwork builds a random connected network on n agents in which
// every agent owns exactly k edges, following Section 3.4.1 verbatim:
//
//  1. a random spanning tree is grown by repeatedly joining a uniformly
//     random unmarked agent to a uniformly random marked one, ownership
//     chosen uniformly among the endpoints subject to the budget;
//  2. edges are then inserted between uniformly random (unmarked, other)
//     pairs, owned by the first, until every agent owns exactly k edges.
//
// The construction requires n > 2k (otherwise some agent cannot place all
// her edges). Infeasible parameters are an internal invariant violation:
// BudgetNetwork panics on them, so anything wired to user input (CLI
// flags, scenario grids) must reject them first via ValidateBudget.
func BudgetNetwork(n, k int, r *rand.Rand) *graph.Graph {
	if err := ValidateBudget(n, k); err != nil {
		panic("gen: " + err.Error())
	}
	for attempt := 0; attempt < 1000; attempt++ {
		if g, ok := tryBudgetNetwork(n, k, r); ok {
			return g
		}
	}
	panic(fmt.Sprintf("gen: BudgetNetwork(n=%d, k=%d) failed to complete", n, k))
}

// ValidateBudget reports whether the BudgetNetwork parameters are
// feasible: k >= 1 and n > 2k. Callers translating user input into
// ensembles should check this up front and surface the error as a usage
// problem; BudgetNetwork itself keeps the panic as an internal invariant.
func ValidateBudget(n, k int) error {
	if k < 1 || n <= 2*k {
		return fmt.Errorf("budget ensemble needs k >= 1 and n > 2k, got n=%d k=%d", n, k)
	}
	return nil
}

// ValidateConnected reports whether the RandomConnected parameters are
// feasible: n - 1 <= m <= n(n-1)/2 (the same check usable on user input
// before RandomConnected's internal-invariant panic).
func ValidateConnected(n, m int) error {
	if maxM := n * (n - 1) / 2; m < n-1 || m > maxM {
		return fmt.Errorf("connected ensemble needs n-1 <= m <= %d, got n=%d m=%d", maxM, n, m)
	}
	return nil
}

func tryBudgetNetwork(n, k int, r *rand.Rand) (*graph.Graph, bool) {
	g := graph.New(n)
	owned := make([]int, n)

	// Phase 1: random spanning tree.
	marked := make([]int, 0, n)
	unmarked := make([]int, n)
	for i := range unmarked {
		unmarked[i] = i
	}
	popUnmarked := func() int {
		i := r.Intn(len(unmarked))
		u := unmarked[i]
		unmarked[i] = unmarked[len(unmarked)-1]
		unmarked = unmarked[:len(unmarked)-1]
		return u
	}
	// First edge: a uniformly chosen random pair.
	u := popUnmarked()
	v := popUnmarked()
	o, ok := chooseOwner(u, v, owned, k, r)
	if !ok {
		return nil, false
	}
	g.AddEdge(o, u+v-o)
	owned[o]++
	marked = append(marked, u, v)
	for len(unmarked) > 0 {
		u := popUnmarked()
		v := marked[r.Intn(len(marked))]
		o, ok := chooseOwner(u, v, owned, k, r)
		if !ok {
			return nil, false
		}
		g.AddEdge(o, u+v-o)
		owned[o]++
		marked = append(marked, u)
	}

	// Phase 2: fill every agent up to budget k.
	var pending []int
	for a := 0; a < n; a++ {
		if owned[a] < k {
			pending = append(pending, a)
		}
	}
	for len(pending) > 0 {
		i := r.Intn(len(pending))
		a := pending[i]
		// Draw partners until a non-edge is found; bail out if a is
		// already adjacent to everyone.
		if g.Degree(a) == n-1 {
			return nil, false
		}
		for {
			b := r.Intn(n)
			if b == a || g.HasEdge(a, b) {
				continue
			}
			g.AddEdge(a, b)
			owned[a]++
			break
		}
		if owned[a] == k {
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
		}
	}
	return g, true
}

// chooseOwner picks the owner of a new edge {u,v} uniformly among the
// endpoints that still have budget; ok is false if neither has.
func chooseOwner(u, v int, owned []int, k int, r *rand.Rand) (int, bool) {
	uOK := owned[u] < k
	vOK := owned[v] < k
	switch {
	case uOK && vOK:
		if r.Intn(2) == 0 {
			return u, true
		}
		return v, true
	case uOK:
		return u, true
	case vOK:
		return v, true
	}
	return 0, false
}

// RandomConnected builds a connected network on n agents with exactly m
// edges per Section 4.2.1: a random spanning tree first, then uniformly
// random fill-in edges, each edge owned by a uniformly random endpoint.
// It panics unless n-1 <= m <= n(n-1)/2 (pre-check user input with
// ValidateConnected).
func RandomConnected(n, m int, r *rand.Rand) *graph.Graph {
	if err := ValidateConnected(n, m); err != nil {
		panic("gen: " + err.Error())
	}
	g := graph.New(n)
	// Random spanning tree by random attachment, as in Section 3.4.1 but
	// without the budget constraint.
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[i]
		v := perm[r.Intn(i)]
		if r.Intn(2) == 0 {
			g.AddEdge(u, v)
		} else {
			g.AddEdge(v, u)
		}
	}
	for g.M() < m {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v)
	}
	return g
}

// RandomLine builds the rl topology of Section 4.2.2: the path
// v0-v1-...-v(n-1) with every edge owned by a uniformly random endpoint.
func RandomLine(n int, r *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if r.Intn(2) == 0 {
			g.AddEdge(i, i+1)
		} else {
			g.AddEdge(i+1, i)
		}
	}
	return g
}

// DirectedLine builds the dl topology of Section 4.2.2: the path with all
// edge ownerships forming a directed path (vertex i owns edge {i, i+1}).
func DirectedLine(n int) *graph.Graph {
	return graph.Path(n)
}

// RandomTree returns a uniformly random labeled tree on n vertices (via a
// random Prüfer sequence) with each edge owned by a uniformly random
// endpoint.
func RandomTree(n int, r *rand.Rand) *graph.Graph {
	if n == 1 {
		return graph.New(1)
	}
	if n == 2 {
		g := graph.New(2)
		if r.Intn(2) == 0 {
			g.AddEdge(0, 1)
		} else {
			g.AddEdge(1, 0)
		}
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = r.Intn(n)
	}
	return TreeFromPrufer(n, prufer, r)
}

// TreeFromPrufer decodes a Prüfer sequence (length n-2, entries in [0,n))
// into its labeled tree. If r is non-nil, edge owners are uniform random
// endpoints; otherwise the lower-degree-sequence endpoint convention (the
// non-leaf side) owns nothing special and the leaf owns its edge.
func TreeFromPrufer(n int, prufer []int, r *rand.Rand) *graph.Graph {
	if len(prufer) != n-2 {
		panic(fmt.Sprintf("gen: Prüfer sequence length %d for n=%d", len(prufer), n))
	}
	g := graph.New(n)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, p := range prufer {
		deg[p]++
	}
	// ptr/leaf scan gives O(n) decoding.
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	addEdge := func(a, b int) {
		if r != nil && r.Intn(2) == 0 {
			g.AddEdge(b, a)
		} else {
			g.AddEdge(a, b)
		}
	}
	for _, p := range prufer {
		addEdge(leaf, p)
		deg[p]--
		if deg[p] == 1 && p < ptr {
			leaf = p
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Final edge joins the last leaf with n-1.
	addEdge(leaf, n-1)
	return g
}
