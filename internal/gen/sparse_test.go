package gen

import (
	"testing"

	"ncg/internal/graph"
)

func TestSparseEdgesInvariants(t *testing.T) {
	for _, tc := range []struct{ n, extra int }{
		{1, 0}, {2, 0}, {3, 0}, {5, 2}, {40, 0}, {40, 25}, {257, 100},
	} {
		r := NewRand(int64(tc.n*1000 + tc.extra))
		edges, err := SparseEdges(tc.n, tc.extra, r)
		if err != nil {
			t.Fatalf("n=%d extra=%d: %v", tc.n, tc.extra, err)
		}
		if len(edges) != max(tc.n-1, 0)+tc.extra {
			t.Fatalf("n=%d extra=%d: %d edges", tc.n, tc.extra, len(edges))
		}
		seen := map[[2]int32]bool{}
		for _, e := range edges {
			if e.U == e.V || e.U < 0 || int(e.U) >= tc.n || e.V < 0 || int(e.V) >= tc.n {
				t.Fatalf("n=%d: bad edge %v", tc.n, e)
			}
			k := [2]int32{min(e.U, e.V), max(e.U, e.V)}
			if seen[k] {
				t.Fatalf("n=%d: duplicate edge %v", tc.n, e)
			}
			seen[k] = true
		}
		g := graph.New(tc.n)
		for _, e := range edges {
			g.AddEdge(int(e.U), int(e.V))
		}
		if tc.n > 0 && g.BFS(0, nil, graph.NewBFSScratch(tc.n)).Reached != tc.n {
			t.Fatalf("n=%d extra=%d: not connected", tc.n, tc.extra)
		}
	}
}

func TestSparseNetworkMatchesEdges(t *testing.T) {
	a, err := SparseNetwork(60, 20, NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	edges, err := SparseEdges(60, 20, NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.New(60)
	for _, e := range edges {
		b.AddEdge(int(e.U), int(e.V))
	}
	if !a.Equal(b) {
		t.Fatal("SparseNetwork diverges from SparseEdges under the same seed")
	}
	if a.M() != 79 {
		t.Fatalf("edge count %d, want 79", a.M())
	}
}

func TestValidateSparse(t *testing.T) {
	for _, tc := range []struct {
		n, extra int
		ok       bool
	}{
		{1, 0, true}, {2, 0, true}, {100, 50, true},
		{0, 0, false}, {5, -1, false},
		// 2*(n-1+extra) > n(n-1)/2 trips the half-density cap.
		{10, 30, false},
		{10, 13, true},
	} {
		err := ValidateSparse(tc.n, tc.extra)
		if (err == nil) != tc.ok {
			t.Fatalf("ValidateSparse(%d, %d) = %v, want ok=%v", tc.n, tc.extra, err, tc.ok)
		}
	}
}

func TestSparseDeterministic(t *testing.T) {
	a, _ := SparseEdges(80, 30, NewRand(42))
	b, _ := SparseEdges(80, 30, NewRand(42))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
