package gen

import (
	"fmt"
	"math/rand"

	"ncg/internal/graph"
)

// Sparse generation for large-n runs. RandomConnected draws its fill-in
// edges by rejection against the bitset adjacency, which is fine at grid
// sizes but couples the generator to an O(n²/8) structure and to m
// potentially of order n². The sparse path generates an explicit edge list
// — a uniform random labeled tree (Prüfer) plus `extra` distinct non-tree
// edges, deduplicated through a hash set — in O(n + extra) expected time
// and memory, and only then loads it into whatever representation the
// caller wants. Edge ownership follows the package convention: a uniformly
// random endpoint owns each edge.

// Edge is one generated edge, owned by U.
type Edge struct {
	U, V int32
}

// ValidateSparse reports whether the sparse-network parameters are
// feasible: n >= 1, extra >= 0, and the requested edge count n-1+extra not
// exceeding n(n-1)/2. The simple-graph bound is checked in int64, so huge n
// cannot overflow the check. Like the other validators it is meant for
// user-facing input; the generators keep the panic for internal callers.
func ValidateSparse(n, extra int) error {
	if n < 1 || extra < 0 {
		return fmt.Errorf("sparse network needs n >= 1 and extra >= 0, got n=%d extra=%d", n, extra)
	}
	maxM := int64(n) * int64(n-1) / 2
	if m := int64(n-1) + int64(extra); m > maxM {
		return fmt.Errorf("sparse network needs n-1+extra <= %d, got n=%d extra=%d", maxM, n, extra)
	}
	// The rejection loop needs headroom: cap the density at half the
	// simple-graph bound so each draw hits a free pair with probability at
	// least one half. Tiny graphs are exempt — a tree alone can exceed half
	// density there, and the loop still terminates in O(1) expected draws.
	if m := int64(n-1) + int64(extra); n >= 8 && 2*m > maxM {
		return fmt.Errorf("sparse network is for sparse regimes: n-1+extra must stay at or below %d (half density), got %d", maxM/2, m)
	}
	return nil
}

// SparseEdges generates the edge list of a random connected sparse network:
// a uniform random labeled tree on n vertices plus extra distinct fill-in
// edges, each edge owned by a uniformly random endpoint. O(n + extra)
// expected time and memory, no adjacency structure of any kind. Panics on
// infeasible parameters (pre-check user input with ValidateSparse).
func SparseEdges(n, extra int, r *rand.Rand) []Edge {
	if err := ValidateSparse(n, extra); err != nil {
		panic("gen: " + err.Error())
	}
	edges := make([]Edge, 0, n-1+extra)
	seen := make(map[uint64]struct{}, n-1+extra)
	key := func(u, v int) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}
	emit := func(u, v int) {
		seen[key(u, v)] = struct{}{}
		if r.Intn(2) == 0 {
			u, v = v, u
		}
		edges = append(edges, Edge{U: int32(u), V: int32(v)})
	}
	switch n {
	case 1:
		return edges
	case 2:
		emit(0, 1)
		return edges
	}
	// Uniform tree: random Prüfer sequence, decoded with the ptr/leaf scan
	// (O(n), same decoding as TreeFromPrufer but emitting edges instead of
	// driving a Graph).
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = r.Intn(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, p := range prufer {
		deg[p]++
	}
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, p := range prufer {
		emit(leaf, p)
		deg[p]--
		if deg[p] == 1 && p < ptr {
			leaf = p
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	emit(leaf, n-1)
	// Fill-in: rejection against the hash set. ValidateSparse capped the
	// density at one half, so each draw succeeds with probability >= 1/2
	// and the loop finishes in O(extra) expected draws.
	for added := 0; added < extra; {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if _, dup := seen[key(u, v)]; dup {
			continue
		}
		emit(u, v)
		added++
	}
	return edges
}

// SparseNetwork builds the graph of SparseEdges(n, extra, r): a random
// connected network with n-1+extra edges, generated in O(n + extra) and
// loaded into the bitset representation edge by edge.
func SparseNetwork(n, extra int, r *rand.Rand) *graph.Graph {
	edges := SparseEdges(n, extra, r)
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(int(e.U), int(e.V))
	}
	return g
}
