package gen

import (
	"fmt"
	"math/rand"

	"ncg/internal/graph"
)

// Sparse generation for large-n runs. RandomConnected draws its fill-in
// edges by rejection against the bitset adjacency, which is fine at grid
// sizes but couples the generator to an O(n²/8) structure and to m
// potentially of order n². The sparse path generates an explicit edge list
// — a uniform random labeled tree (Prüfer) plus `extra` distinct non-tree
// edges, deduplicated through a hash set — in O(n + extra) expected time
// and memory, and only then loads it into whatever representation the
// caller wants. Edge ownership follows the package convention: a uniformly
// random endpoint owns each edge.

// Edge is one generated edge, owned by U.
type Edge struct {
	U, V int32
}

// InfeasibleError reports sparse-network parameters that no connected
// simple graph (or no graph inside the generator's sparse regime) can
// satisfy. N and M are the requested vertex and total edge counts; Reason
// names the violated bound. The generators return it before any sampling,
// so an infeasible request can never redraw-loop.
type InfeasibleError struct {
	N, M   int64
	Reason string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("gen: infeasible sparse network n=%d m=%d: %s", e.N, e.M, e.Reason)
}

// ValidateSparse reports whether the sparse-network parameters are
// feasible: n >= 1, a total edge count m = n-1+extra at or above the
// connectivity lower bound n-1 (i.e. extra >= 0) and at or below half the
// simple-graph bound n(n-1)/2. Bounds are checked in int64, so huge n
// cannot overflow the check. A violation is reported as *InfeasibleError
// before any sampling happens — the half-density cap is what keeps the
// fill-in rejection loop O(extra) expected, so exceeding it must be an
// error up front, never a loop that cannot terminate.
func ValidateSparse(n, extra int) error {
	m := int64(n-1) + int64(extra)
	if n < 1 {
		return &InfeasibleError{N: int64(n), M: m, Reason: "need n >= 1"}
	}
	if extra < 0 {
		return &InfeasibleError{N: int64(n), M: m,
			Reason: fmt.Sprintf("m is below the connectivity lower bound n-1 = %d", n-1)}
	}
	maxM := int64(n) * int64(n-1) / 2
	if m > maxM {
		return &InfeasibleError{N: int64(n), M: m,
			Reason: fmt.Sprintf("m exceeds the simple-graph bound n(n-1)/2 = %d", maxM)}
	}
	// The rejection loop needs headroom: cap the density at half the
	// simple-graph bound so each draw hits a free pair with probability at
	// least one half. Tiny graphs are exempt — a tree alone can exceed half
	// density there, and the loop still terminates in O(1) expected draws.
	if n >= 8 && 2*m > maxM {
		return &InfeasibleError{N: int64(n), M: m,
			Reason: fmt.Sprintf("m exceeds half density %d, outside the sparse regime", maxM/2)}
	}
	return nil
}

// SparseEdges generates the edge list of a random connected sparse network:
// a uniform random labeled tree on n vertices plus extra distinct fill-in
// edges, each edge owned by a uniformly random endpoint. O(n + extra)
// expected time and memory, no adjacency structure of any kind. Infeasible
// parameters return a *InfeasibleError before any sampling.
func SparseEdges(n, extra int, r *rand.Rand) ([]Edge, error) {
	if err := ValidateSparse(n, extra); err != nil {
		return nil, err
	}
	edges := make([]Edge, 0, n-1+extra)
	seen := make(map[uint64]struct{}, n-1+extra)
	key := func(u, v int) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}
	emit := func(u, v int) {
		seen[key(u, v)] = struct{}{}
		if r.Intn(2) == 0 {
			u, v = v, u
		}
		edges = append(edges, Edge{U: int32(u), V: int32(v)})
	}
	switch n {
	case 1:
		return edges, nil
	case 2:
		emit(0, 1)
		return edges, nil
	}
	// Uniform tree: random Prüfer sequence, decoded with the ptr/leaf scan
	// (O(n), same decoding as TreeFromPrufer but emitting edges instead of
	// driving a Graph).
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = r.Intn(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, p := range prufer {
		deg[p]++
	}
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, p := range prufer {
		emit(leaf, p)
		deg[p]--
		if deg[p] == 1 && p < ptr {
			leaf = p
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	emit(leaf, n-1)
	// Fill-in: rejection against the hash set. ValidateSparse capped the
	// density at one half, so each draw succeeds with probability >= 1/2
	// and the loop finishes in O(extra) expected draws.
	for added := 0; added < extra; {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if _, dup := seen[key(u, v)]; dup {
			continue
		}
		emit(u, v)
		added++
	}
	return edges, nil
}

// SparseNetwork builds the dense graph of SparseEdges(n, extra, r): a
// random connected network with n-1+extra edges, generated in O(n + extra)
// and loaded into the bitset representation edge by edge. Infeasible
// parameters return a *InfeasibleError before any sampling.
func SparseNetwork(n, extra int, r *rand.Rand) (*graph.Graph, error) {
	edges, err := SparseEdges(n, extra, r)
	if err != nil {
		return nil, err
	}
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(int(e.U), int(e.V))
	}
	return g, nil
}

// SparseCSR builds the CSR form of the same ensemble: SparseEdges loaded
// directly into graph.Sparse, with no dense intermediate anywhere — the
// O(n²/8) bitset never exists, so this is the constructor for networks
// whose adjacency matrix does not fit in memory. Given the same RNG
// stream, SparseCSR(n, extra, r) is the exact CSR image of
// SparseNetwork(n, extra, r): same edges, same owners, same neighbour
// order, same fingerprints.
func SparseCSR(n, extra int, r *rand.Rand) (*graph.Sparse, error) {
	edges, err := SparseEdges(n, extra, r)
	if err != nil {
		return nil, err
	}
	sp := graph.NewSparse(n)
	for _, e := range edges {
		sp.AddEdge(int(e.U), int(e.V))
	}
	return sp, nil
}
