package gen

import (
	"math/rand"
	"testing"
)

func TestBudgetNetworkInvariants(t *testing.T) {
	r := NewRand(1)
	for _, tc := range []struct{ n, k int }{
		{10, 1}, {10, 2}, {25, 3}, {40, 6}, {30, 10}, {100, 4},
	} {
		if tc.n <= 2*tc.k {
			continue
		}
		for trial := 0; trial < 5; trial++ {
			g := BudgetNetwork(tc.n, tc.k, r)
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if !g.Connected() {
				t.Fatalf("n=%d k=%d: disconnected", tc.n, tc.k)
			}
			if g.M() != tc.n*tc.k {
				t.Fatalf("n=%d k=%d: m=%d, want %d", tc.n, tc.k, g.M(), tc.n*tc.k)
			}
			for u := 0; u < tc.n; u++ {
				if g.OutDegree(u) != tc.k {
					t.Fatalf("n=%d k=%d: agent %d owns %d edges", tc.n, tc.k, u, g.OutDegree(u))
				}
			}
		}
	}
}

func TestBudgetNetworkPanicsOnInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 2k")
		}
	}()
	BudgetNetwork(6, 3, NewRand(1))
}

func TestValidateMatchesPanicBoundary(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		ok   bool
	}{
		{7, 3, true}, {6, 3, false}, {5, 2, true}, {4, 2, false}, {10, 0, false},
	} {
		if got := ValidateBudget(tc.n, tc.k) == nil; got != tc.ok {
			t.Errorf("ValidateBudget(%d, %d) ok = %v, want %v", tc.n, tc.k, got, tc.ok)
		}
	}
	for _, tc := range []struct {
		n, m int
		ok   bool
	}{
		{5, 4, true}, {5, 10, true}, {5, 3, false}, {5, 11, false},
	} {
		if got := ValidateConnected(tc.n, tc.m) == nil; got != tc.ok {
			t.Errorf("ValidateConnected(%d, %d) ok = %v, want %v", tc.n, tc.m, got, tc.ok)
		}
	}
}

func TestRandomConnectedInvariants(t *testing.T) {
	r := NewRand(2)
	for _, tc := range []struct{ n, m int }{
		{10, 9}, {10, 20}, {30, 120}, {50, 200}, {20, 190},
	} {
		g := RandomConnected(tc.n, tc.m, r)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if !g.Connected() || g.M() != tc.m {
			t.Fatalf("n=%d m=%d: connected=%v m=%d", tc.n, tc.m, g.Connected(), g.M())
		}
	}
}

func TestRandomConnectedPanicsOnBadM(t *testing.T) {
	for _, m := range []int{3, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for m=%d", m)
				}
			}()
			RandomConnected(5, m, NewRand(3))
		}()
	}
}

func TestLineTopologies(t *testing.T) {
	r := NewRand(4)
	rl := RandomLine(12, r)
	if !rl.IsTree() || rl.Diameter() != 11 {
		t.Fatal("rl is not a path")
	}
	dl := DirectedLine(12)
	if !dl.IsTree() || dl.Diameter() != 11 {
		t.Fatal("dl is not a path")
	}
	for i := 0; i+1 < 12; i++ {
		if dl.Owner(i, i+1) != i {
			t.Fatal("dl ownership must form a directed path")
		}
	}
}

func TestRandomTreeIsUniformishAndValid(t *testing.T) {
	r := NewRand(5)
	counts := map[uint64]int{}
	// n=4 has 16 labeled trees; all should appear over enough draws.
	for i := 0; i < 4000; i++ {
		g := RandomTree(4, r)
		if !g.IsTree() {
			t.Fatal("not a tree")
		}
		counts[g.HashUnowned()]++
	}
	if len(counts) != 16 {
		t.Fatalf("saw %d distinct labeled trees on 4 vertices, want 16", len(counts))
	}
	for h, c := range counts {
		if c < 100 {
			t.Fatalf("tree %x badly undersampled: %d", h, c)
		}
	}
}

func TestRandomTreeSmallSizes(t *testing.T) {
	r := NewRand(6)
	for n := 1; n <= 3; n++ {
		g := RandomTree(n, r)
		if !g.IsTree() {
			t.Fatalf("n=%d: not a tree", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTreeFromPruferKnownSequence(t *testing.T) {
	// Prüfer [3,3] on n=4 decodes to the star centered at 3.
	g := TreeFromPrufer(4, []int{3, 3}, nil)
	if g.Degree(3) != 3 {
		t.Fatalf("decode failed: %v", g)
	}
	// Prüfer [1,2] decodes to path 0-1-2-3.
	p := TreeFromPrufer(4, []int{1, 2}, nil)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if !p.HasEdge(e[0], e[1]) {
			t.Fatalf("decode failed: %v", p)
		}
	}
}

func TestSeedDerivation(t *testing.T) {
	a := Seed(1, 2, 3)
	b := Seed(1, 2, 3)
	c := Seed(1, 3, 2)
	if a != b {
		t.Fatal("Seed not deterministic")
	}
	if a == c {
		t.Fatal("Seed ignores argument order")
	}
	if a < 0 || c < 0 {
		t.Fatal("Seed must be non-negative")
	}
}

func TestSplitMix64Reference(t *testing.T) {
	// Reference value from the splitmix64 test vectors (seed 0 first
	// output): 0xE220A8397B1DCDAF.
	if got := SplitMix64(0); got != 0xE220A8397B1DCDAF {
		t.Fatalf("SplitMix64(0) = %x", got)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	g1 := BudgetNetwork(20, 2, rand.New(rand.NewSource(7)))
	g2 := BudgetNetwork(20, 2, rand.New(rand.NewSource(7)))
	if !g1.Equal(g2) {
		t.Fatal("BudgetNetwork not deterministic under fixed seed")
	}
	h1 := RandomConnected(20, 40, rand.New(rand.NewSource(8)))
	h2 := RandomConnected(20, 40, rand.New(rand.NewSource(8)))
	if !h1.Equal(h2) {
		t.Fatal("RandomConnected not deterministic under fixed seed")
	}
}
