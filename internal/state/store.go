package state

import (
	"slices"
	"sync"
	"sync/atomic"

	"ncg/internal/graph"
	"ncg/internal/rng"
)

// Ref identifies an interned state: the shard that holds it and the entry
// index within the shard. With a single-shard store, Ref values are the
// dense sequence 0, 1, 2, ... in intern order, so callers can use them
// directly as indices into side arrays.
type Ref int64

// Store interns canonical state encodings. Each distinct state is stored
// exactly once, as graph.EncodedWords(n) words appended to a contiguous
// per-shard arena — no graph clones, no per-state allocations beyond
// amortized arena growth. Lookup is by fingerprint with byte-exact
// verification, so hash collisions can never conflate two states.
//
// A multi-shard store serves concurrent Intern calls: the fingerprint
// picks the shard and each shard locks independently. All other methods
// must not race with Intern; the level-synchronous explorer reads only
// between expansion barriers.
type Store struct {
	n          int
	stateWords int
	owned      bool
	shardBits  uint
	shards     []shard
	count      atomic.Int64
}

type shard struct {
	mu    sync.Mutex
	slots []int32 // open addressing into entries; -1 = empty
	fps   []uint64
	arena []uint64
	_     [24]byte // keep shards off each other's cache lines
}

// NewStore returns an empty store for n-vertex states. owned selects the
// encoding (and with it the equality the store implements): ownership-aware
// out-rows or ownership-blind adj-rows. shards is rounded up to a power of
// two; use 1 for serial callers.
func NewStore(n int, owned bool, shards int) *Store {
	s := &Store{}
	nsh := 1
	bits := uint(0)
	for nsh < shards {
		nsh <<= 1
		bits++
	}
	s.shards = make([]shard, nsh)
	s.shardBits = bits
	s.Reset(n, owned)
	return s
}

// Reset empties the store and reconfigures it for n-vertex states with the
// given equality, keeping every arena and table allocation for reuse.
func (s *Store) Reset(n int, owned bool) {
	s.n = n
	s.stateWords = graph.EncodedWords(n)
	s.owned = owned
	s.count.Store(0)
	for i := range s.shards {
		sh := &s.shards[i]
		if len(sh.slots) == 0 {
			sh.slots = make([]int32, 256)
		}
		for j := range sh.slots {
			sh.slots[j] = -1
		}
		sh.fps = sh.fps[:0]
		sh.arena = sh.arena[:0]
	}
}

// N returns the configured vertex count.
func (s *Store) N() int { return s.n }

// Owned reports whether the store uses the ownership-aware encoding.
func (s *Store) Owned() bool { return s.owned }

// StateWords returns the per-state encoding size in words.
func (s *Store) StateWords() int { return s.stateWords }

// Count returns the number of distinct interned states. It is safe to call
// concurrently with Intern.
func (s *Store) Count() int { return int(s.count.Load()) }

// Bytes returns the total arena footprint in bytes, for memory reporting.
func (s *Store) Bytes() int64 {
	var b int64
	for i := range s.shards {
		b += int64(cap(s.shards[i].arena)) * 8
	}
	return b
}

// Encode appends g's canonical encoding under the store's equality to buf.
func (s *Store) Encode(g graph.Store, buf []uint64) []uint64 {
	if s.owned {
		return g.AppendOwnedRows(buf)
	}
	return g.AppendAdjRows(buf)
}

// mix64 is the splitmix64 finalizer, spreading fingerprints over slots.
func mix64(h uint64) uint64 { return rng.Mix64(h) }

// Intern looks up the state encoded in enc (with fingerprint h) and inserts
// it if absent, copying the encoding into the shard arena. It returns the
// state's Ref and whether it was fresh. Equal fingerprints with different
// bytes are distinct states: matching is byte-exact.
func (s *Store) Intern(h uint64, enc []uint64) (Ref, bool) {
	hm := mix64(h)
	si := hm & uint64(len(s.shards)-1)
	sh := &s.shards[si]
	sh.mu.Lock()
	entry, fresh := sh.intern(h, s.shardBits, enc, s.stateWords)
	sh.mu.Unlock()
	if fresh {
		s.count.Add(1)
	}
	return Ref(int64(entry)<<s.shardBits | int64(si)), fresh
}

// home is the canonical probe start of a fingerprint: the mixed bits above
// the shard selector. intern and grow MUST agree on it, or entries become
// unreachable after a slot-table growth.
func home(fp uint64, shardBits uint) uint64 { return mix64(fp) >> shardBits }

func (sh *shard) intern(h uint64, shardBits uint, enc []uint64, words int) (int32, bool) {
	mask := uint64(len(sh.slots) - 1)
	i := home(h, shardBits) & mask
	for {
		e := sh.slots[i]
		if e < 0 {
			break
		}
		if sh.fps[e] == h && slices.Equal(sh.arena[int(e)*words:(int(e)+1)*words], enc) {
			return e, false
		}
		i = (i + 1) & mask
	}
	e := int32(len(sh.fps))
	sh.fps = append(sh.fps, h)
	sh.arena = append(sh.arena, enc...)
	sh.slots[i] = e
	if 4*len(sh.fps) >= 3*len(sh.slots) {
		sh.grow(shardBits)
	}
	return e, true
}

// grow doubles the slot table and reinserts every entry at its home slot.
func (sh *shard) grow(shardBits uint) {
	slots := make([]int32, 2*len(sh.slots))
	for i := range slots {
		slots[i] = -1
	}
	mask := uint64(len(slots) - 1)
	for e, fp := range sh.fps {
		i := home(fp, shardBits) & mask
		for slots[i] >= 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(e)
	}
	sh.slots = slots
}

// Snapshot appends ref's encoding to buf and returns it with the
// fingerprint ref was interned under. Unlike Hash/Encoding/Decode it locks
// the shard, so it is safe to call while other goroutines Intern (arena
// growth cannot invalidate the copy).
func (s *Store) Snapshot(ref Ref, buf []uint64) (uint64, []uint64) {
	sh, e := s.locate(ref)
	sh.mu.Lock()
	h := sh.fps[e]
	buf = append(buf, sh.arena[e*s.stateWords:(e+1)*s.stateWords]...)
	sh.mu.Unlock()
	return h, buf
}

// LoadEncoding overwrites g with the state encoded in rows under the
// store's equality (the buffer form of Decode, for Snapshot callers).
// Decoding targets the dense backend: the bulk row loads are bitset
// operations, and every decode consumer (cycle verification, hit replay)
// lives at dense-friendly sizes.
func (s *Store) LoadEncoding(g *graph.Graph, rows []uint64) {
	if s.owned {
		g.LoadOwnedRows(rows)
	} else {
		g.LoadAdjRows(rows)
	}
}

// Hash returns the fingerprint ref was interned under.
func (s *Store) Hash(ref Ref) uint64 {
	sh, e := s.locate(ref)
	return sh.fps[e]
}

// Encoding returns the interned canonical encoding of ref. The slice
// aliases the shard arena and may be invalidated by a later Intern on the
// same shard; do not retain it across inserts.
func (s *Store) Encoding(ref Ref) []uint64 {
	sh, e := s.locate(ref)
	return sh.arena[e*s.stateWords : (e+1)*s.stateWords]
}

// Decode overwrites g with the state interned at ref. For ownership-blind
// stores the decoded graph carries the canonical "smaller endpoint owns"
// orientation, which ownership-blind games never consult.
func (s *Store) Decode(ref Ref, g *graph.Graph) {
	if s.owned {
		g.LoadOwnedRows(s.Encoding(ref))
	} else {
		g.LoadAdjRows(s.Encoding(ref))
	}
}

func (s *Store) locate(ref Ref) (*shard, int) {
	return &s.shards[ref&(1<<s.shardBits-1)], int(ref >> s.shardBits)
}
