package state

import (
	"math/rand"
	"sync"
	"testing"

	"ncg/internal/graph"
)

// randomMutate performs one random valid mutation on g and returns a
// description of it.
func randomMutate(g *graph.Graph, r *rand.Rand) {
	n := g.N()
	for {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		switch {
		case !g.HasEdge(u, v):
			g.AddEdge(u, v)
			return
		case r.Intn(3) == 0:
			g.RemoveEdge(u, v)
			return
		default:
			// Transfer ownership (possibly a no-op when u already owns it).
			g.SetOwner(u, v)
			return
		}
	}
}

// TestFingerprintTracksMutations drives a long random mutation sequence
// through an attached fingerprint and checks after every step that both
// incremental variants equal a from-scratch recomputation.
func TestFingerprintTracksMutations(t *testing.T) {
	const n = 23
	tab := NewTables(n)
	g := graph.New(n)
	var f Fingerprint
	f.Attach(tab, g)
	defer g.SetObserver(nil)
	r := rand.New(rand.NewSource(1))
	for step := 0; step < 2000; step++ {
		randomMutate(g, r)
		var fresh Fingerprint
		fresh.Init(tab, g)
		if f.Aware() != fresh.Aware() || f.Blind() != fresh.Blind() {
			t.Fatalf("step %d: incremental (%x,%x) != recomputed (%x,%x)",
				step, f.Aware(), f.Blind(), fresh.Aware(), fresh.Blind())
		}
	}
}

// TestFingerprintOwnershipVariants checks the variant semantics: states
// equal modulo ownership share the blind fingerprint but (generically) not
// the aware one.
func TestFingerprintOwnershipVariants(t *testing.T) {
	tab := NewTables(5)
	a := graph.Path(5)
	b := graph.Path(5)
	b.SetOwner(1, 0) // flip one owner; edge set unchanged
	var fa, fb Fingerprint
	fa.Init(tab, a)
	fb.Init(tab, b)
	if fa.Blind() != fb.Blind() {
		t.Fatal("blind fingerprints must ignore ownership")
	}
	if fa.Aware() == fb.Aware() {
		t.Fatal("aware fingerprints must distinguish ownership")
	}
	if fa.Hash(true) != fa.Aware() || fa.Hash(false) != fa.Blind() {
		t.Fatal("Hash variant selection broken")
	}
}

// internGraph is the test helper mirroring real usage: encode + intern.
func internGraph(s *Store, tab *Tables, g *graph.Graph, buf []uint64) (Ref, bool, []uint64) {
	var f Fingerprint
	f.Init(tab, g)
	buf = s.Encode(g, buf[:0])
	ref, fresh := s.Intern(f.Hash(s.Owned()), buf)
	return ref, fresh, buf
}

func TestStoreInternRoundtrip(t *testing.T) {
	for _, owned := range []bool{true, false} {
		const n = 9
		tab := NewTables(n)
		s := NewStore(n, owned, 1)
		states := []*graph.Graph{graph.Path(n), graph.Cycle(n), graph.Star(n), graph.Complete(n)}
		var buf []uint64
		var refs []Ref
		for i, g := range states {
			ref, fresh, b := internGraph(s, tab, g, buf)
			buf = b
			if !fresh {
				t.Fatalf("owned=%v: state %d should be fresh", owned, i)
			}
			if int(ref) != i {
				t.Fatalf("owned=%v: single-shard refs must be dense, got %d want %d", owned, ref, i)
			}
			refs = append(refs, ref)
		}
		if s.Count() != len(states) {
			t.Fatalf("owned=%v: count = %d, want %d", owned, s.Count(), len(states))
		}
		// Re-interning finds the same refs.
		for i, g := range states {
			ref, fresh, b := internGraph(s, tab, g, buf)
			buf = b
			if fresh || ref != refs[i] {
				t.Fatalf("owned=%v: re-intern of %d gave (%d,%v)", owned, i, ref, fresh)
			}
		}
		// Decoding restores the state under the store's equality.
		dec := graph.New(n)
		for i, g := range states {
			s.Decode(refs[i], dec)
			if err := dec.Validate(); err != nil {
				t.Fatalf("owned=%v: decoded state %d invalid: %v", owned, i, err)
			}
			if owned && !dec.Equal(g) {
				t.Fatalf("owned=%v: decode of %d lost state", owned, i)
			}
			if !dec.EqualUnowned(g) {
				t.Fatalf("owned=%v: decode of %d lost edges", owned, i)
			}
		}
	}
}

// TestStoreForcedCollisions zeroes the Zobrist tables so every state
// fingerprints to 0, then interns many distinct states: the byte-exact
// verification must still distinguish all of them, in both the
// ownership-aware and ownership-blind variants.
func TestStoreForcedCollisions(t *testing.T) {
	const n = 8
	tab := NewTables(n)
	tab.zero()
	for _, owned := range []bool{true, false} {
		s := NewStore(n, owned, 4)
		var states []*graph.Graph
		states = append(states, graph.Path(n), graph.Cycle(n), graph.Star(n))
		// A family of distinct single-edge graphs.
		for v := 1; v < n; v++ {
			g := graph.New(n)
			g.AddEdge(0, v)
			states = append(states, g)
		}
		if !owned {
			// Ownership flips must still collapse to one state.
			g := graph.New(n)
			g.AddEdge(1, 0)
			states = append(states, g)
		}
		var buf []uint64
		var refs []Ref
		distinct := 0
		for _, g := range states {
			var f Fingerprint
			f.Init(tab, g)
			if h := f.Hash(owned); h != 0 {
				t.Fatalf("owned=%v: zeroed tables must fingerprint to 0, got %x", owned, h)
			}
			buf = s.Encode(g, buf[:0])
			ref, fresh := s.Intern(0, buf)
			if fresh {
				distinct++
			}
			refs = append(refs, ref)
		}
		wantDistinct := len(states)
		if !owned {
			wantDistinct-- // the flipped-ownership duplicate
		}
		if distinct != wantDistinct || s.Count() != wantDistinct {
			t.Fatalf("owned=%v: %d distinct states interned, want %d", owned, s.Count(), wantDistinct)
		}
		// Every state still decodes to itself despite the shared hash.
		dec := graph.New(n)
		for i, g := range states {
			s.Decode(refs[i], dec)
			if !dec.EqualUnowned(g) || (owned && !dec.Equal(g)) {
				t.Fatalf("owned=%v: collision conflated state %d", owned, i)
			}
		}
	}
}

// TestStoreGrowKeepsRefs interns enough states to force several slot-table
// growths and checks all earlier refs survive AND stay deduplicated —
// growth must reinsert entries at the same home slots lookups probe from.
// The multi-shard cases pin the regression where grow() and Intern
// disagreed on the probe start once shard bits were stripped.
func TestStoreGrowKeepsRefs(t *testing.T) {
	for _, shards := range []int{1, 8} {
		const n = 40
		tab := NewTables(n)
		s := NewStore(n, true, shards)
		var buf []uint64
		type rec struct {
			ref Ref
			g   *graph.Graph
		}
		var recs []rec
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g := graph.New(n)
				g.AddEdge(u, v)
				ref, fresh, b := internGraph(s, tab, g, buf)
				buf = b
				if !fresh {
					t.Fatalf("shards=%d: state {%d,%d} not fresh", shards, u, v)
				}
				recs = append(recs, rec{ref, g})
			}
		}
		if s.Count() != len(recs) {
			t.Fatalf("shards=%d: count %d, want %d", shards, s.Count(), len(recs))
		}
		dec := graph.New(n)
		for i, rc := range recs {
			// Still present (no dedup loss after growth)...
			ref, fresh, b := internGraph(s, tab, rc.g, buf)
			buf = b
			if fresh || ref != rc.ref {
				t.Fatalf("shards=%d: ref %d lost after growth: (%d,%v)", shards, i, ref, fresh)
			}
			// ...and uncorrupted.
			s.Decode(rc.ref, dec)
			if !dec.Equal(rc.g) {
				t.Fatalf("shards=%d: ref %d corrupted after growth", shards, i)
			}
		}
		if s.Count() != len(recs) {
			t.Fatalf("shards=%d: re-intern inflated count to %d", shards, s.Count())
		}
	}
}

func TestStoreResetReuse(t *testing.T) {
	tab := NewTables(7)
	s := NewStore(7, true, 2)
	var buf []uint64
	_, _, buf = internGraph(s, tab, graph.Path(7), buf)
	_, _, buf = internGraph(s, tab, graph.Star(7), buf)
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
	s.Reset(7, false)
	if s.Count() != 0 || s.Owned() {
		t.Fatal("reset did not clear the store")
	}
	ref, fresh, _ := internGraph(s, tab, graph.Path(7), buf)
	if !fresh {
		t.Fatal("post-reset intern not fresh")
	}
	dec := graph.New(7)
	s.Decode(ref, dec)
	if !dec.EqualUnowned(graph.Path(7)) {
		t.Fatal("post-reset decode broken")
	}
}

// TestStoreConcurrentIntern hammers a sharded store from several
// goroutines with overlapping state sets; the total distinct count and
// every decode must come out exact. The CI -race job runs this.
func TestStoreConcurrentIntern(t *testing.T) {
	const n = 16
	const workers = 8
	tab := NewTables(n)
	s := NewStore(n, true, workers)
	// The shared state family: all single-edge graphs plus some paths.
	var states []*graph.Graph
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g := graph.New(n)
			g.AddEdge(u, v)
			states = append(states, g)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []uint64
			var f Fingerprint
			// Each worker interns the whole family in a different order.
			for i := range states {
				g := states[(i*7+w*13)%len(states)]
				f.Init(tab, g)
				buf = s.Encode(g, buf[:0])
				s.Intern(f.Hash(true), buf)
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != len(states) {
		t.Fatalf("count = %d, want %d distinct states", s.Count(), len(states))
	}
}
