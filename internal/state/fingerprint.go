// Package state gives network states a cheap identity: an incremental
// Zobrist-style fingerprint maintained in O(1) per edge mutation, and an
// arena-backed intern table that stores each distinct state once as a
// compact canonical byte encoding with byte-exact verification on hash
// collision. Together they replace the "full-graph rehash plus
// graph.Clone per visited state" pattern of cycle detection and
// state-graph exploration.
package state

import (
	"ncg/internal/graph"
	"ncg/internal/rng"
)

// Tables holds the per-(owner,endpoint) Zobrist randomness of n-vertex
// networks: one 64-bit value per directed pair for the ownership-aware
// fingerprint, and one per undirected pair (stored symmetrically) for the
// ownership-blind one. XOR-folding the values of a graph's edges yields
// its fingerprint, so single-edge mutations update it in O(1).
type Tables struct {
	n     int
	aware []uint64 // aware[owner*n+v]: edge {owner,v} owned by owner
	blind []uint64 // blind[u*n+v] == blind[v*n+u]: edge {u,v}
}

// DefaultSeed feeds NewTables; one fixed stream keeps fingerprints stable
// across processes.
const DefaultSeed = 0x6e63672d7a6f62 // "ncg-zob"

// NewTables returns the Zobrist tables of n-vertex networks, filled from
// the default deterministic stream.
func NewTables(n int) *Tables { return NewTablesSeeded(n, DefaultSeed) }

// NewTablesSeeded is NewTables with an explicit splitmix64 seed, so tests
// can construct adversarial (colliding) tables.
func NewTablesSeeded(n int, seed uint64) *Tables {
	t := &Tables{
		n:     n,
		aware: make([]uint64, n*n),
		blind: make([]uint64, n*n),
	}
	s := rng.NewStream(seed)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				t.aware[u*n+v] = s.Next()
			}
			if u < v {
				r := s.Next()
				t.blind[u*n+v] = r
				t.blind[v*n+u] = r
			}
		}
	}
	return t
}

// N returns the vertex count the tables were built for.
func (t *Tables) N() int { return t.n }

// zero overwrites every table entry with 0, leaving all states
// fingerprint-equal; the forced-collision tests use it to prove the intern
// table distinguishes states by bytes, not hashes.
func (t *Tables) zero() {
	for i := range t.aware {
		t.aware[i] = 0
	}
	for i := range t.blind {
		t.blind[i] = 0
	}
}

// Fingerprint tracks both state-hash variants of one graph incrementally.
// Install it with Attach (or Init + graph.SetObserver) and every AddEdge,
// RemoveEdge and SetOwner — including the apply/undo pairs of candidate
// probing — updates both hashes in O(1). It implements graph.EdgeObserver.
type Fingerprint struct {
	t     *Tables
	aware uint64
	blind uint64
}

// Attach computes g's fingerprint from scratch and installs f as the
// graph's mutation observer.
func (f *Fingerprint) Attach(t *Tables, g graph.Store) {
	f.Init(t, g)
	g.SetObserver(f)
}

// Init computes g's fingerprint from scratch without installing f.
func (f *Fingerprint) Init(t *Tables, g graph.Store) {
	f.t = t
	f.aware = 0
	f.blind = 0
	n := g.N()
	// One closure for the whole scan: a per-vertex literal would escape
	// through the interface call and allocate n times per Init.
	u := 0
	fold := func(v int) {
		f.aware ^= t.aware[u*n+v]
		f.blind ^= t.blind[u*n+v]
	}
	for u = 0; u < n; u++ {
		g.ForEachOwned(u, fold)
	}
}

// Aware returns the ownership-aware fingerprint: equal for graphs equal
// under graph.Equal (modulo hash collisions — intern verifies bytes).
func (f *Fingerprint) Aware() uint64 { return f.aware }

// Blind returns the ownership-blind fingerprint, the HashUnowned analogue.
func (f *Fingerprint) Blind() uint64 { return f.blind }

// Hash returns the variant matching the game's state identity: aware when
// ownership matters, blind otherwise.
func (f *Fingerprint) Hash(owned bool) uint64 {
	if owned {
		return f.aware
	}
	return f.blind
}

// ForceHash overwrites one variant, for callers that bulk-load a graph
// (bypassing the observer) and know its stored fingerprint. The other
// variant becomes meaningless until the next Init.
func (f *Fingerprint) ForceHash(owned bool, h uint64) {
	if owned {
		f.aware = h
	} else {
		f.blind = h
	}
}

// EdgeAdded implements graph.EdgeObserver.
func (f *Fingerprint) EdgeAdded(owner, v int) {
	n := f.t.n
	f.aware ^= f.t.aware[owner*n+v]
	f.blind ^= f.t.blind[owner*n+v]
}

// EdgeRemoved implements graph.EdgeObserver; XOR makes removal the same
// toggle as insertion.
func (f *Fingerprint) EdgeRemoved(owner, v int) {
	n := f.t.n
	f.aware ^= f.t.aware[owner*n+v]
	f.blind ^= f.t.blind[owner*n+v]
}

// OwnerChanged implements graph.EdgeObserver: ownership of {owner,v} moved
// from v to owner, which flips only the aware variant.
func (f *Fingerprint) OwnerChanged(owner, v int) {
	n := f.t.n
	f.aware ^= f.t.aware[v*n+owner] ^ f.t.aware[owner*n+v]
}
