// Package paper maps every theorem, corollary, lemma and observation of
// Kawald & Lenzner (SPAA'13) to an executable validation. It contains no
// production code — only the cross-package tests that tie the library back
// to the paper's claims:
//
//	Theorem 2.1    MAX-SG on trees is a poly-FIPG (O(n^3) convergence)
//	Theorem 2.11   MAX-SG on trees + max cost policy: Theta(n log n)
//	Observation 2.9/2.12/2.13, Lemma 2.6/2.8 (tree structure facts)
//	Theorem 2.16   MAX-SG best response cycle (via internal/cycles)
//	Corollary 3.1  (A)SG on trees converge in O(n^3)
//	Corollary 3.2  ASG on trees + max cost policy step bounds
//	Theorem 3.3    SUM-ASG not weakly acyclic under best response
//	Theorem 3.5    MAX-ASG admits best response cycles
//	Theorem 3.7    unit-budget ASG best response cycles
//	Theorem 4.1    (G)BG best response cycles
//	Corollary 3.6 / 4.2  host-graph non-weak-acyclicity (with errata)
//	Theorem 5.1/5.2 bilateral equal-split BG dynamics
//	Sections 3.4 / 4.2  empirical convergence study (internal/experiments)
package paper
