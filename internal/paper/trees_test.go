package paper

import (
	"math"
	"math/rand"
	"testing"

	"ncg/internal/cycles"
	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// TestTheorem21MaxSGTreesConverge validates Theorem 2.1: the MAX-SG on
// trees converges from every initial tree under every scheduling — here
// sampled with random and max-cost policies over random trees — within the
// O(n^3) bound, and the network stays a tree throughout.
func TestTheorem21MaxSGTreesConverge(t *testing.T) {
	gm := game.NewSwap(game.Max)
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(20)
		g := gen.RandomTree(n, r)
		var pol dynamics.Policy = dynamics.Random{}
		if trial%2 == 0 {
			pol = dynamics.MaxCost{}
		}
		res := dynamics.Run(g, dynamics.Config{
			Game: gm, Policy: pol, Seed: int64(trial), MaxSteps: n * n * n,
		})
		if !res.Converged {
			t.Fatalf("n=%d trial=%d did not converge", n, trial)
		}
		if res.Steps > n*n*n {
			t.Fatalf("n=%d: %d steps exceeds n^3", n, res.Steps)
		}
		if !g.IsTree() {
			t.Fatalf("n=%d: swaps destroyed tree-ness", n)
		}
		// Alon et al.: stable trees have diameter <= 3.
		if g.Diameter() > 3 {
			t.Fatalf("n=%d: stable tree with diameter %d", n, g.Diameter())
		}
	}
}

// TestTheorem211PathConvergence validates Theorem 2.11's setting: the
// MAX-SG on P_n under the max cost policy with deterministic smallest-index
// tie-breaking converges within O(n log n) moves, and needs at least
// (roughly) n moves.
func TestTheorem211PathConvergence(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		g := graph.Path(n)
		res := dynamics.Run(g, dynamics.Config{
			Game:   game.NewSwap(game.Max),
			Policy: dynamics.MaxCostDeterministic{},
			Tie:    dynamics.TieFirst,
			Seed:   1,
		})
		if !res.Converged {
			t.Fatalf("n=%d did not converge", n)
		}
		upper := int(4*float64(n)*math.Log2(float64(n))) + 8
		if res.Steps > upper {
			t.Fatalf("n=%d: %d steps exceeds the O(n log n) bound %d", n, res.Steps, upper)
		}
		if res.Steps < n-3 {
			t.Fatalf("n=%d: %d steps suspiciously below the linear lower bound", n, res.Steps)
		}
	}
}

// TestFig1TraceP9 reproduces Figure 1's qualitative content: the MAX-SG on
// P9 with max cost policy and smallest-index ties converges to a star whose
// center is v_{n-2} (1-indexed; vertex 6 here), with agent v_n moving last.
func TestFig1TraceP9(t *testing.T) {
	g := graph.Path(9)
	lastMover := -1
	res := dynamics.Run(g, dynamics.Config{
		Game:   game.NewSwap(game.Max),
		Policy: dynamics.MaxCostDeterministic{},
		Tie:    dynamics.TieFirst,
		OnStep: func(step, mover int, mv game.Move, g graph.Store) {
			lastMover = mover
		},
	})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if !g.IsStar() {
		t.Fatalf("final network is not a star: %v", g)
	}
	if g.Degree(7-1) != 8 {
		t.Fatalf("star center is not v_{n-2}: %v", g)
	}
	if lastMover != 8 {
		t.Fatalf("last mover = v%d, want v9", lastMover+1)
	}
}

// TestObservation29TreeCostVector validates Observation 2.9 on trees: the
// two largest sorted-cost-vector entries agree and the smallest equals
// ceil(max/2). (The paper states it for "any connected network", but it is
// a tree fact — an even cycle violates it — see DESIGN.md §3.)
func TestObservation29TreeCostVector(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	gm := game.NewSwap(game.Max)
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(25)
		g := gen.RandomTree(n, r)
		v := dynamics.SortedCostVector(g, gm)
		if v[0].Dist != v[1].Dist {
			t.Fatalf("trial %d: top costs differ: %v", trial, v)
		}
		if v[n-1].Dist != (v[0].Dist+1)/2 {
			t.Fatalf("trial %d: min cost %d != ceil(%d/2)", trial, v[n-1].Dist, v[0].Dist)
		}
	}
	// Counterexample justifying the tree restriction: C6 has all
	// eccentricities 3, so gamma_n = 3 != ceil(3/2).
	c6 := graph.Cycle(6)
	v := dynamics.SortedCostVector(c6, gm)
	if v[5].Dist == (v[0].Dist+1)/2 {
		t.Fatal("C6 should violate Observation 2.9")
	}
}

// TestLemma28CenterOnLongestPaths validates Lemma 2.8: every center vertex
// of a tree lies on every longest path of every agent.
func TestLemma28CenterOnLongestPaths(t *testing.T) {
	r := rand.New(rand.NewSource(28))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(20)
		g := gen.RandomTree(n, r)
		centers := g.Center()
		d := g.AllDistances()
		for v := 0; v < n; v++ {
			var ecc int32
			for _, dv := range d[v] {
				if dv > ecc {
					ecc = dv
				}
			}
			for x := 0; x < n; x++ {
				if d[v][x] != ecc {
					continue
				}
				// The v-x path consists of the w with
				// d(v,w) + d(w,x) = d(v,x).
				for _, c := range centers {
					if d[v][c]+d[c][x] != d[v][x] {
						t.Fatalf("center %d off the longest path %d-%d", c, v, x)
					}
				}
			}
		}
	}
}

// TestObservation212MaxCostAgentIsLeaf validates Observation 2.12 along
// MAX-SG tree runs: whenever the max cost policy picks a mover, that mover
// is a leaf.
func TestObservation212MaxCostAgentIsLeaf(t *testing.T) {
	r := rand.New(rand.NewSource(212))
	for trial := 0; trial < 15; trial++ {
		n := 5 + r.Intn(15)
		g := gen.RandomTree(n, r)
		prev := g.Clone()
		res := dynamics.Run(g, dynamics.Config{
			Game:   game.NewSwap(game.Max),
			Policy: dynamics.MaxCostDeterministic{},
			Tie:    dynamics.TieFirst,
			OnStep: func(step, mover int, mv game.Move, g graph.Store) {
				if prev.Degree(mover) != 1 {
					t.Fatalf("mover %d had degree %d, want leaf", mover, prev.Degree(mover))
				}
				prev.CopyFrom(g.(*graph.Graph))
			},
		})
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
	}
}

// TestObservation213BestSwapToCenter validates Observation 2.13: a leaf's
// best swap connects to a center vertex of the remaining tree, halving its
// cost (to at most ceil(c/2)+1).
func TestObservation213BestSwapToCenter(t *testing.T) {
	gm := game.NewSwap(game.Max)
	s := game.NewScratch(16)
	g := graph.Path(16)
	moves, c := gm.BestMoves(g, 0, s, nil)
	if len(moves) == 0 {
		t.Fatal("leaf should be unhappy on a long path")
	}
	cur := gm.Cost(g, 0, s)
	if c.Dist > (cur.Dist+1)/2+1 {
		t.Fatalf("best swap cost %d exceeds ceil(%d/2)+1", c.Dist, cur.Dist)
	}
	// The tree without vertex 0 is P15 on {1..15}: center vertex 8.
	for _, m := range moves {
		if m.Add[0] != 8 {
			t.Fatalf("best swap target %d is not the center of the remaining path", m.Add[0])
		}
	}
}

// TestCorollary31ASGTreesConverge validates Corollary 3.1: both ASG
// versions converge on trees (poly-FIPG) within the O(n^3) bound.
func TestCorollary31ASGTreesConverge(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, kind := range []game.DistKind{game.Sum, game.Max} {
		gm := game.NewAsymSwap(kind)
		for trial := 0; trial < 20; trial++ {
			n := 4 + r.Intn(20)
			g := gen.RandomTree(n, r)
			res := dynamics.Run(g, dynamics.Config{
				Game: gm, Policy: dynamics.Random{}, Seed: int64(trial), MaxSteps: n * n * n,
			})
			if !res.Converged {
				t.Fatalf("%s n=%d trial %d did not converge", gm.Name(), n, trial)
			}
			if !g.IsTree() {
				t.Fatalf("%s: lost tree-ness", gm.Name())
			}
		}
	}
}

// cor32Bound is the step bound of Corollary 3.2 for the SUM version:
// max{0, n-3} for even n and n + ceil(n/2) - 5 for odd n.
func cor32Bound(n int) int {
	if n%2 == 0 {
		if n < 3 {
			return 0
		}
		return n - 3
	}
	b := n + (n+1)/2 - 5
	if b < 0 {
		return 0
	}
	return b
}

// TestCorollary32SumSGMaxCostBound validates the bound of Corollary 3.2 in
// the setting it was originally proven for (Lenzner SAGT'11): the
// *symmetric* SUM Swap Game on trees under the max cost policy. 400 random
// trees all converge within the exact bound.
func TestCorollary32SumSGMaxCostBound(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	gm := game.NewSwap(game.Sum)
	for trial := 0; trial < 400; trial++ {
		n := 4 + r.Intn(24)
		g := gen.RandomTree(n, r)
		res := dynamics.Run(g, dynamics.Config{
			Game: gm, Policy: dynamics.MaxCost{}, Seed: int64(trial),
		})
		if !res.Converged {
			t.Fatalf("n=%d trial %d did not converge", n, trial)
		}
		if res.Steps > cor32Bound(n) {
			t.Fatalf("n=%d (%s): %d steps exceeds Corollary 3.2 bound %d",
				n, g, res.Steps, cor32Bound(n))
		}
	}
}

// TestCorollary32SumASGBoundErratum documents a negative reproduction
// finding for the ASG half of Corollary 3.2: the claim that the SG upper
// bounds "carry over trivially" to the ASG is not exact. Restricting swaps
// to owners changes which agent the max cost policy selects (a max-cost
// agent without an improving own-edge swap passes her turn), so the SG
// trajectory argument does not apply verbatim; over 400 random trees a run
// exceeding the exact bound exists (ratio ~1.06). The asymptotic O(n)
// statement is unaffected: all runs stay well below 2n steps.
func TestCorollary32SumASGBoundErratum(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	gm := game.NewAsymSwap(game.Sum)
	violations := 0
	for trial := 0; trial < 400; trial++ {
		n := 4 + r.Intn(24)
		g := gen.RandomTree(n, r)
		res := dynamics.Run(g, dynamics.Config{
			Game: gm, Policy: dynamics.MaxCost{}, Seed: int64(trial),
		})
		if !res.Converged {
			t.Fatalf("n=%d trial %d did not converge", n, trial)
		}
		if res.Steps > cor32Bound(n) {
			violations++
		}
		if res.Steps > 2*n {
			t.Fatalf("n=%d: %d steps breaks even the relaxed linear bound", n, res.Steps)
		}
	}
	if violations == 0 {
		t.Fatal("expected at least one bound violation (documented erratum); none found")
	}
	t.Logf("Corollary 3.2 ASG erratum confirmed: %d/400 runs exceed the exact bound", violations)
}

// TestCorollary32MaxASGMaxCostBound validates the MAX half of Corollary
// 3.2: Theta(n log n) under the max cost policy.
func TestCorollary32MaxASGMaxCostBound(t *testing.T) {
	gm := game.NewAsymSwap(game.Max)
	for _, n := range []int{8, 16, 32, 64} {
		g := graph.Path(n)
		res := dynamics.Run(g, dynamics.Config{
			Game: gm, Policy: dynamics.MaxCost{}, Seed: int64(n),
		})
		if !res.Converged {
			t.Fatalf("n=%d did not converge", n)
		}
		upper := int(4*float64(n)*math.Log2(float64(n))) + 8
		if res.Steps > upper {
			t.Fatalf("n=%d: %d steps exceeds O(n log n) bound %d", n, res.Steps, upper)
		}
	}
}

// TestMaxSGGeneralNetworksCycle validates Theorem 2.16 dynamically: running
// the MAX-SG on the Figure 2 network with cycle detection reports a 3-move
// cycle under any policy (there is only ever one unhappy agent).
func TestMaxSGGeneralNetworksCycle(t *testing.T) {
	g := cycles.Fig2Start()
	res := dynamics.Run(g, dynamics.Config{
		Game:         game.NewSwap(game.Max),
		Policy:       dynamics.MaxCost{},
		Tie:          dynamics.TieFirst,
		DetectCycles: true,
		MaxSteps:     50,
		Seed:         3,
	})
	if res.Converged {
		t.Fatal("Figure 2 instance must not converge")
	}
	if !res.Cycled || res.CycleLen != 3 {
		t.Fatalf("expected a 3-cycle, got %+v", res)
	}
}
