package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ncg/internal/cycles"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
)

// testCampaign is a small sampled hunt spanning a 2x2 grid, sized so a
// full run takes well under a second.
func testCampaign() Campaign {
	return Campaign{
		Name:      "test-hunt",
		Samplers:  []Sampler{CyclePendantSampler(), TreeSampler()},
		Variants:  []Variant{{Name: "sum-asg", New: func(int) game.Game { return game.NewAsymSwap(game.Sum) }}, {Name: "max-sg", New: func(int) game.Game { return game.NewSwap(game.Max) }}},
		N:         8,
		Instances: 6,
		Seed:      3,
		MaxStates: 60,
	}
}

func runJSONL(t *testing.T, c Campaign, opt Options) (string, Summary) {
	t.Helper()
	var buf bytes.Buffer
	sum, err := Run(c, opt, NewJSONLSink(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), sum
}

// TestRunBitIdenticalAcrossWorkersAndShards is the spine's core guarantee:
// the streamed records and the summary are byte-for-byte the same for any
// worker count and any shard size.
func TestRunBitIdenticalAcrossWorkersAndShards(t *testing.T) {
	c := testCampaign()
	ref, refSum := runJSONL(t, c, Options{Workers: 1, ShardSize: 1})
	if refSum.Instances != 24 || refSum.Searched == 0 {
		t.Fatalf("unexpected reference summary: %+v", refSum)
	}
	for _, opt := range []Options{
		{Workers: 4, ShardSize: 1},
		{Workers: 3, ShardSize: 2},
		{Workers: 8, ShardSize: 5},
		{Workers: 2},
	} {
		got, sum := runJSONL(t, c, opt)
		if got != ref {
			t.Fatalf("records differ at workers=%d shard=%d", opt.Workers, opt.ShardSize)
		}
		if !reflect.DeepEqual(sum, refSum) {
			t.Fatalf("summary differs at workers=%d shard=%d: %+v vs %+v", opt.Workers, opt.ShardSize, sum, refSum)
		}
	}
}

// TestRunMatchesSequentialReference pins the spine to a plain sequential
// loop with the documented seed discipline: every (sampler, variant,
// instance) triple derives its stream as gen.Seed(base, si, vi, inst),
// redrawing degenerate samples from gen.Seed(base, si, vi, inst, attempt).
func TestRunMatchesSequentialReference(t *testing.T) {
	c := testCampaign()
	var recs []Record
	if _, err := Run(c, Options{Workers: 4}, FuncSink(func(rec Record) error {
		recs = append(recs, rec)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	i := 0
	for si, smp := range c.Samplers {
		for vi, v := range c.Variants {
			for inst := 0; inst < c.Instances; inst++ {
				var g *graph.Graph
				resamples := 0
				for a := 0; a <= defaultMaxResamples; a++ {
					g = smp.Sample(c.N, inst, gen.NewRand(instanceSeed(c.Seed, si, vi, inst, a)))
					if g != nil {
						break
					}
					resamples++
				}
				rec := recs[i]
				i++
				if rec.Sampler != smp.Name || rec.Variant != v.Name || rec.Instance != inst {
					t.Fatalf("record %d out of grid order: %+v", i-1, rec)
				}
				if rec.Seed != instanceSeed(c.Seed, si, vi, inst, 0) {
					t.Fatalf("record %d seed %d, want %d", i-1, rec.Seed, instanceSeed(c.Seed, si, vi, inst, 0))
				}
				if g == nil {
					if rec.Searched {
						t.Fatalf("record %d searched a sample the reference could not draw", i-1)
					}
					continue
				}
				if !rec.Searched || rec.Resamples != resamples || rec.N != g.N() {
					t.Fatalf("record %d = %+v, want resamples=%d n=%d", i-1, rec, resamples, g.N())
				}
			}
		}
	}
	if i != len(recs) {
		t.Fatalf("got %d records, reference enumerated %d", len(recs), i)
	}
}

// TestResumeFromTruncatedJSONL kills a run at an arbitrary byte offset and
// completes it from the checkpoint: the final file must be bit-identical
// to an uninterrupted run's.
func TestResumeFromTruncatedJSONL(t *testing.T) {
	c := testCampaign()
	full, fullSum := runJSONL(t, c, Options{Workers: 2})
	for _, cut := range []int{0, len(full) / 3, len(full) / 2, len(full) - 2} {
		path := filepath.Join(t.TempDir(), "hunt.jsonl")
		if err := os.WriteFile(path, []byte(full[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		cp, sink, err := ResumeJSONL(path)
		if err != nil {
			t.Fatal(err)
		}
		// Every other sink must see the complete stream, recovered
		// records included, in grid order.
		streamed := 0
		sum, err := Run(c, Options{Workers: 4, Done: cp}, sink,
			FuncSink(func(rec Record) error {
				if want := streamed % c.Instances; rec.Instance != want {
					t.Fatalf("cut %d: record %d has instance %d, want %d", cut, streamed, rec.Instance, want)
				}
				streamed++
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		if streamed != fullSum.Instances {
			t.Fatalf("cut %d: companion sink saw %d records, want the full %d", cut, streamed, fullSum.Instances)
		}
		if !reflect.DeepEqual(sum, fullSum) {
			t.Fatalf("cut %d: resumed summary %+v, want %+v", cut, sum, fullSum)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != full {
			t.Fatalf("cut %d: resumed file differs from the uninterrupted run", cut)
		}
	}
}

// TestResumeRejectsForeignCheckpoint: resuming with records from another
// campaign, seed or grid must fail instead of silently mixing runs.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	c := testCampaign()
	full, _ := runJSONL(t, c, Options{})
	path := filepath.Join(t.TempDir(), "hunt.jsonl")
	if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	other := c
	other.Seed = 99
	if _, err := Run(other, Options{Done: cp}); err == nil {
		t.Fatal("expected rejection for a foreign seed")
	}
	smaller := c
	smaller.Instances = 3
	if _, err := Run(smaller, Options{Done: cp}); err == nil {
		t.Fatal("expected rejection for a smaller grid")
	}
	larger := c
	larger.Instances = 8
	if _, err := Run(larger, Options{Done: cp}); err != nil {
		t.Fatalf("a larger instance budget must extend the checkpointed run: %v", err)
	}
}

// degenerateSampler returns nil for the first fails attempts of every
// instance, so tests can steer the resample machinery.
func degenerateSampler(fails int) Sampler {
	return Sampler{
		Name: "degenerate",
		Sample: func(n, i int, r *gen.Rand) *graph.Graph {
			if fails <= 0 {
				return graph.Path(n)
			}
			fails--
			return nil
		},
	}
}

// TestDegenerateSamplesDoNotConsumeBudget is the hunt bugfix's pin: a
// sampler with degenerate draws still searches the full instance budget
// (each instance redrawn from fresh derived seeds), and the redraws are
// reported per record.
func TestDegenerateSamplesDoNotConsumeBudget(t *testing.T) {
	c := Campaign{
		Name:      "degenerate-hunt",
		Samplers:  []Sampler{degenerateSampler(7)},
		Variants:  []Variant{{Name: "sum-asg", New: func(int) game.Game { return game.NewAsymSwap(game.Sum) }}},
		N:         4,
		Instances: 5,
		Seed:      1,
		MaxStates: 50,
	}
	var recs []Record
	sum, err := Run(c, Options{Workers: 1}, FuncSink(func(rec Record) error {
		recs = append(recs, rec)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Searched != 5 || sum.Instances != 5 {
		t.Fatalf("degenerate draws shrank the search budget: %+v", sum)
	}
	if recs[0].Resamples != 7 {
		t.Fatalf("record 0 reports %d resamples, want 7", recs[0].Resamples)
	}
	for _, rec := range recs[1:] {
		if rec.Resamples != 0 || !rec.Searched {
			t.Fatalf("unexpected record %+v", rec)
		}
	}

	// A sampler that never produces a network exhausts its redraw budget
	// and reports the instance as unsearched rather than erroring.
	c.Samplers = []Sampler{{Name: "never", Sample: func(int, int, *gen.Rand) *graph.Graph { return nil }}}
	c.MaxResamples = 3
	recs = recs[:0]
	sum, err = Run(c, Options{Workers: 1}, FuncSink(func(rec Record) error {
		recs = append(recs, rec)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Searched != 0 || sum.Instances != 5 {
		t.Fatalf("summary %+v, want 0 searched of 5", sum)
	}
	for _, rec := range recs {
		if rec.Searched || rec.Resamples != 4 || rec.N != 0 {
			t.Fatalf("unexpected record %+v", rec)
		}
	}
}

// TestMaxHitsCutIsDeterministic: with a candidate check that accepts known
// instances, the record stream ends exactly at the MaxHits-th hit at any
// worker count.
func TestMaxHitsCutIsDeterministic(t *testing.T) {
	c := Campaign{
		Name:      "capped-hunt",
		Samplers:  []Sampler{{Name: "paths", Total: 400, Sample: func(n, i int, _ *gen.Rand) *graph.Graph { return graph.Path(3 + i%5) }}},
		Variants:  []Variant{{Name: "check", New: func(int) game.Game { return game.NewAsymSwap(game.Sum) }}},
		Instances: 400,
		Seed:      1,
		NewCheck: func() func(g *graph.Graph) bool {
			return func(g *graph.Graph) bool { return g.N() == 6 }
		},
		Moves: []game.Move{{Agent: 0, Drop: []int{1}, Add: []int{2}}},
	}
	ref, refSum := runJSONL(t, c, Options{Workers: 1, MaxHits: 3})
	// Hits are at instances 3, 8, 13 (n == 6): the stream must stop at 14
	// records, 3 of them hits.
	if refSum.Hits != 3 || refSum.Instances != 14 {
		t.Fatalf("reference summary %+v, want 3 hits over 14 records", refSum)
	}
	for _, workers := range []int{2, 4, 7} {
		got, sum := runJSONL(t, c, Options{Workers: workers, MaxHits: 3, ShardSize: 2})
		if got != ref || !reflect.DeepEqual(sum, refSum) {
			t.Fatalf("workers=%d: capped stream differs", workers)
		}
	}
}

// TestHitRecordRoundTrip: a hit's canonical encodings decode back to the
// start network and a closing cycle trace.
func TestHitRecordRoundTrip(t *testing.T) {
	// The Figure 2 MAX-SG network is a known cycling instance; hunt it via
	// a single-instance campaign over a fixed sampler.
	start := cycles.Fig2Start()
	c := Campaign{
		Name:      "roundtrip",
		Samplers:  []Sampler{{Name: "fig2", Total: 1, Sample: func(int, int, *gen.Rand) *graph.Graph { return start.Clone() }}},
		Variants:  []Variant{{Name: "max-sg", New: func(int) game.Game { return game.NewSwap(game.Max) }}},
		Instances: 1,
		Seed:      1,
		MaxStates: 4000,
	}
	var hit *Record
	sum, err := Run(c, Options{Workers: 1}, FuncSink(func(rec Record) error {
		if rec.Hit {
			r := rec
			hit = &r
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil {
		t.Fatalf("expected the MAX-SG 6-cycle to admit a best-response cycle (summary %+v)", sum)
	}
	decoded, err := hit.DecodeStart()
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Equal(start) {
		t.Fatal("decoded start differs from the sampled network")
	}
	fc, err := hit.DecodeCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.States) != len(fc.Moves) || len(fc.Moves) == 0 {
		t.Fatalf("decoded cycle has %d states, %d moves", len(fc.States), len(fc.Moves))
	}
	if hit.States <= 0 {
		t.Fatalf("hit searched %d states", hit.States)
	}
}

// TestRoundVariantHunt hunts a simultaneous-round variant: SUM-SG, whose
// sequential dynamics converge by potential, oscillates under rounds, so a
// modest random ensemble must produce hits — each carrying a replayable,
// closing round-cycle trace — and the record stream must stay bit-identical
// across worker counts like every other campaign.
func TestRoundVariantHunt(t *testing.T) {
	v, ok := VariantByName("rounds-sum-sg")
	if !ok || v.Schedule == nil {
		t.Fatal("rounds-sum-sg not registered as a round variant")
	}
	c := Campaign{
		Name:      "round-hunt",
		Samplers:  []Sampler{ConnectedSampler(2)},
		Variants:  []Variant{v},
		N:         14,
		Instances: 16,
		Seed:      5,
		MaxStates: 4000,
	}
	ref, refSum := runJSONL(t, c, Options{Workers: 1, ShardSize: 1})
	if got, sum := runJSONL(t, c, Options{Workers: 4, ShardSize: 2}); got != ref || !reflect.DeepEqual(sum, refSum) {
		t.Fatal("round-variant records differ across worker counts")
	}
	hits := 0
	if _, err := Run(c, Options{Workers: 2}, FuncSink(func(rec Record) error {
		if !rec.Hit {
			return nil
		}
		hits++
		fc, err := rec.DecodeCycle()
		if err != nil {
			return err
		}
		if len(fc.Moves) == 0 || len(fc.Moves) != len(fc.States) {
			t.Fatalf("round hit has %d moves over %d states", len(fc.Moves), len(fc.States))
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatalf("no round cycles found over %d instances (summary %+v); pick new seeds", c.Instances, refSum)
	}
}

// TestEncodeDecodeGraph round-trips networks through the hex encoding.
func TestEncodeDecodeGraph(t *testing.T) {
	r := gen.NewRand(7)
	for _, g := range []*graph.Graph{
		graph.New(1), graph.Path(9), graph.Cycle(13),
		gen.BudgetNetwork(11, 3, r), gen.RandomTree(65, r),
	} {
		dec, err := DecodeGraph(g.N(), EncodeGraph(g))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(g) {
			t.Fatalf("round trip changed a %d-vertex network", g.N())
		}
	}
	if _, err := DecodeGraph(5, "zz"); err == nil {
		t.Fatal("expected an error for a bad encoding")
	}
	if _, err := DecodeGraph(5, EncodeGraph(graph.Path(6))); err == nil {
		t.Fatal("expected an error for a size mismatch")
	}
}

// TestRunValidation: structural and parameter errors surface before any
// instance runs.
func TestRunValidation(t *testing.T) {
	c := testCampaign()
	c.Samplers = append(c.Samplers, BudgetSampler(4)) // needs n > 8
	if _, err := Run(c, Options{}); err == nil {
		t.Fatal("expected an infeasible budget sampler to be rejected")
	}
	c = testCampaign()
	c.MaxStates = 0
	if _, err := Run(c, Options{}); err == nil {
		t.Fatal("expected a missing state cap to be rejected")
	}
	c = testCampaign()
	c.Variants = nil
	if _, err := Run(c, Options{}); err == nil {
		t.Fatal("expected a variant-less campaign to be rejected")
	}
}
