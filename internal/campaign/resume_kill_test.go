package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// killPoints enumerates every byte offset a crash is interesting at: each
// record boundary (the run died exactly between two flushes) and two cuts
// inside every record (the run died mid-write, leaving a torn tail).
func killPoints(full string) []int {
	cuts := []int{0}
	line := 0
	for i := 0; i < len(full); i++ {
		if full[i] != '\n' {
			continue
		}
		if mid := line + (i-line)/2; mid > line {
			cuts = append(cuts, mid, i)
		}
		cuts = append(cuts, i+1)
		line = i + 1
	}
	return cuts
}

// TestResumeKillAnywhereEquivalence is the hunt spine's crash-equivalence
// property: kill the run at ANY byte offset — every record boundary and
// mid-record — and resuming from the surviving prefix completes the file
// byte-for-byte identically to an uninterrupted run, with an identical
// summary, re-running exactly the instances the prefix does not fully
// record.
func TestResumeKillAnywhereEquivalence(t *testing.T) {
	c := testCampaign()
	full, fullSum := runJSONL(t, c, Options{Workers: 2})
	dir := t.TempDir()
	for _, cut := range killPoints(full) {
		path := filepath.Join(dir, "run.jsonl")
		if err := os.WriteFile(path, []byte(full[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		cp, sink, err := ResumeJSONL(path)
		if err != nil {
			t.Fatalf("cut=%d: ResumeJSONL: %v", cut, err)
		}
		recomputed := 0
		sum, err := Run(c, Options{Workers: 3, ShardSize: 2, Done: cp}, sink,
			FuncSink(func(Record) error { recomputed++; return nil }))
		if err != nil {
			t.Fatalf("cut=%d: resume run: %v", cut, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != full {
			t.Fatalf("cut=%d: resumed file differs from uninterrupted run (%d vs %d bytes)", cut, len(got), len(full))
		}
		if !reflect.DeepEqual(sum, fullSum) {
			t.Fatalf("cut=%d: resumed summary differs: %+v vs %+v", cut, sum, fullSum)
		}
		// The complete stream reaches in-memory sinks, but only the missing
		// instances were re-searched; the count pins no replay and no drop.
		if want := c.Instances * len(c.Samplers) * len(c.Variants); recomputed != want {
			t.Fatalf("cut=%d: %d records streamed, want %d", cut, recomputed, want)
		}
		if cp.Len() > 0 && cut == 0 {
			t.Fatalf("empty prefix recovered %d instances", cp.Len())
		}
	}
}
