package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
)

// ShardRef identifies one contiguous instance range [Lo, Hi) of a grid
// cell — the unit of work the campaign coordinator leases to workers. A
// shard's records depend only on the resolved campaign configuration and
// the (sampler, variant, instance) triples it spans, never on which
// worker executes it or when, which is what makes re-executing an
// expired lease idempotent: the re-run produces byte-identical JSONL.
type ShardRef struct {
	Sampler string `json:"sampler"`
	Variant string `json:"variant"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
}

// String renders the shard for logs and lease diagnostics.
func (s ShardRef) String() string {
	return fmt.Sprintf("%s/%s[%d,%d)", s.Sampler, s.Variant, s.Lo, s.Hi)
}

// Resolve applies the option overrides and defaults Run would apply and
// validates the result, returning the fully resolved campaign whose grid
// Plan and RunShard decompose. Coordinator and workers must resolve the
// same campaign: Fingerprint pins that agreement.
func Resolve(c Campaign, opt Options) (Campaign, error) {
	if opt.Instances > 0 {
		c.Instances = opt.Instances
	}
	if opt.Seed != 0 {
		c.Seed = opt.Seed
	}
	if opt.MaxStates > 0 {
		c.MaxStates = opt.MaxStates
	}
	if c.MaxResamples <= 0 {
		c.MaxResamples = defaultMaxResamples
	}
	if err := c.validate(); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// planCells lays out the resolved campaign's grid cells in deterministic
// (sampler, variant) order with their clamped instance budgets.
func planCells(c Campaign) []cell {
	var cells []cell
	for si := range c.Samplers {
		for vi := range c.Variants {
			instances := c.Instances
			if t := c.Samplers[si].Total; t > 0 && instances > t {
				instances = t
			}
			cells = append(cells, cell{si: si, vi: vi, instances: instances})
		}
	}
	return cells
}

// Plan decomposes a resolved campaign into its shard list: cells in grid
// order, each cut into ranges of shardSize instances. Concatenating the
// shards' record streams in plan order reproduces the single-process
// Run stream exactly, for any shardSize.
func Plan(c Campaign, shardSize int) ([]ShardRef, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("campaign: shard size must be positive, got %d", shardSize)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	var refs []ShardRef
	for _, cl := range planCells(c) {
		smp, v := c.Samplers[cl.si].Name, c.Variants[cl.vi].Name
		for lo := 0; lo < cl.instances; lo += shardSize {
			hi := lo + shardSize
			if hi > cl.instances {
				hi = cl.instances
			}
			refs = append(refs, ShardRef{Sampler: smp, Variant: v, Lo: lo, Hi: hi})
		}
	}
	return refs, nil
}

// Fingerprint canonically summarizes everything a resolved campaign's
// record stream depends on. A coordinator and its workers exchange it on
// every lease: a mismatch (different seed, budgets, grid or schedules)
// would silently corrupt the merged stream, so it is rejected up front.
func Fingerprint(c Campaign) string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign=%s seed=%d n=%d instances=%d max-states=%d max-resamples=%d",
		c.Name, c.Seed, c.N, c.Instances, c.MaxStates, c.MaxResamples)
	b.WriteString(" samplers=")
	for i, smp := range c.Samplers {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s/%d", smp.Name, smp.Total)
	}
	b.WriteString(" variants=")
	for i, v := range c.Variants {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.Name)
		if v.Schedule != nil {
			fmt.Fprintf(&b, "+%s", v.Schedule.Name())
			fmt.Fprintf(&b, "+%s", v.Oracle.String())
		}
	}
	if c.NewCheck != nil {
		b.WriteString(" check")
	}
	return b.String()
}

// RunShard executes one shard of a resolved campaign sequentially,
// returning the records of instances [Lo, Hi) exactly as they appear in
// the single-process Run stream. Cancelling ctx stops between instances
// (the current instance finishes), returning the context error; a shard
// is all-or-nothing for the coordinator, so a cancelled shard is simply
// re-leased. onInstance, if non-nil, runs before each instance — the
// worker's drain and fault-injection seam.
func RunShard(ctx context.Context, c Campaign, ref ShardRef, onInstance func(inst int) error) ([]Record, error) {
	si, vi := -1, -1
	for i := range c.Samplers {
		if c.Samplers[i].Name == ref.Sampler {
			si = i
		}
	}
	for i := range c.Variants {
		if c.Variants[i].Name == ref.Variant {
			vi = i
		}
	}
	if si < 0 || vi < 0 {
		return nil, fmt.Errorf("campaign: shard %s names no cell of campaign %q", ref, c.Name)
	}
	instances := c.Instances
	if t := c.Samplers[si].Total; t > 0 && instances > t {
		instances = t
	}
	if ref.Lo < 0 || ref.Hi > instances || ref.Lo >= ref.Hi {
		return nil, fmt.Errorf("campaign: shard %s lies outside the cell's %d instances", ref, instances)
	}
	w := newWorkerArena(&c)
	recs := make([]Record, 0, ref.Hi-ref.Lo)
	for inst := ref.Lo; inst < ref.Hi; inst++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if onInstance != nil {
			if err := onInstance(inst); err != nil {
				return nil, err
			}
		}
		rec, err := safeInstance(&c, &c.Samplers[si], &c.Variants[vi], si, vi, inst, w)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// MarshalRecords encodes records exactly as the JSONL sink writes them —
// one json.Encoder line per record — so a worker's upload, the
// coordinator's shard files and the merged stream are all byte-compatible
// with a single-process Run into a JSONLSink.
func MarshalRecords(recs []Record) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalRecords parses a complete shard upload: every line must be a
// valid record (a torn upload is a transport bug, not a resumable file).
func UnmarshalRecords(data []byte) ([]Record, error) {
	var recs []Record
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("campaign: bad shard record %d: %v", len(recs), err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
