package campaign

import (
	"reflect"
	"testing"

	"ncg/internal/search"
)

// TestSweepFamilyMatchesFig6Minimal: the sharded Figure 6 sweep returns
// exactly the sequential search's first candidate (the network that pins
// the repository's Figure 6 instance), at any worker count.
func TestSweepFamilyMatchesFig6Minimal(t *testing.T) {
	want := search.Fig6CandidatesMinimal(1)
	if len(want) != 1 {
		t.Fatal("sequential search found nothing")
	}
	var hits []Record
	got, sum, err := SweepFamily(search.Fig6MinimalFamily(), 1, Options{Workers: 4},
		FuncSink(func(rec Record) error {
			if rec.Hit {
				hits = append(hits, rec)
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(want[0]) {
		t.Fatalf("campaign sweep found %d candidates, differing from the sequential search", len(got))
	}
	if sum.Hits != 1 || len(hits) != 1 {
		t.Fatalf("summary %+v, hit records %d", sum, len(hits))
	}
	// The hit record carries the designated cycle, and it closes.
	fc, err := hits[0].DecodeCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Moves) != 4 {
		t.Fatalf("designated cycle has %d moves, want 4", len(fc.Moves))
	}
	if !fc.States[0].Equal(want[0]) {
		t.Fatal("cycle must start at the accepted candidate")
	}
}

// TestSweepFamilyMatchesFig10: the sharded Figure 10 tree sweep matches
// the sequential Prüfer enumeration's first base network.
func TestSweepFamilyMatchesFig10(t *testing.T) {
	want := search.Fig10Candidates(false, 1)
	if len(want) != 1 {
		t.Fatal("sequential search found nothing")
	}
	got, sum, err := SweepFamily(search.Fig10Family(), 1, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(want[0]) {
		t.Fatalf("campaign sweep found %d candidates, differing from the sequential search", len(got))
	}
	if sum.Hits != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestSweepFamilyWorkerInvariance shards a prefix of the huge Figure 5
// family and checks the full record stream is identical at any worker
// count (the prefix holds no hit, which is exactly the regime a long
// campaign spends its time in).
func TestSweepFamilyWorkerInvariance(t *testing.T) {
	f := search.Fig5MinimalFamily()
	f.Total = 6000 // prefix: keep the test fast
	run := func(workers int) ([]Record, Summary) {
		var recs []Record
		_, sum, err := SweepFamily(f, 0, Options{Workers: workers, ShardSize: 64},
			FuncSink(func(rec Record) error {
				recs = append(recs, rec)
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		return recs, sum
	}
	ref, refSum := run(1)
	if refSum.Instances != 6000 {
		t.Fatalf("reference summary %+v", refSum)
	}
	recs, sum := run(4)
	if !reflect.DeepEqual(ref, recs) || !reflect.DeepEqual(sum, refSum) {
		t.Fatal("sharded family sweep differs from the sequential one")
	}
}
