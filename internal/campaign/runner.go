package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ncg/internal/cycles"
	"ncg/internal/dynamics"
	"ncg/internal/gen"
	"ncg/internal/graph"
	"ncg/internal/search"
)

// Options override a campaign's defaults and shape the execution.
type Options struct {
	// Context, if non-nil, cancels the run between instances: in-flight
	// shards stop at their next instance boundary, everything already
	// emitted is flushed, and Run returns the context's error — the file
	// left behind is a maximal resumable checkpoint, exactly as if the
	// campaign had been cut by MaxHits. The graceful-shutdown seam of the
	// cmds routes SIGINT/SIGTERM here.
	Context context.Context
	// Instances overrides the per-cell instance budget (0: campaign
	// default).
	Instances int
	// Seed overrides the base seed (0: campaign default).
	Seed int64
	// MaxStates overrides the per-instance state cap (0: campaign
	// default).
	MaxStates int
	// MaxHits stops the hunt after this many in-order hits (0: search
	// every instance). The cut is deterministic: records end immediately
	// after the MaxHits-th hit at any worker count.
	MaxHits int
	// Workers sizes the shard worker pool (0: GOMAXPROCS). The worker
	// count never changes results, only wall-clock time.
	Workers int
	// ShardSize is the number of consecutive instances a worker claims at
	// once (0: automatic). The shard size never changes results.
	ShardSize int
	// Done holds instances already searched (loaded from a partial JSONL
	// record file); they are folded into the summary from their recorded
	// results and not re-searched. Their records still reach every sink
	// in stream order — except the append-mode sink of ResumeJSONL, whose
	// file already contains them — so consumers see the complete run.
	Done *Checkpoint
	// Progress, if non-nil, runs on the collector goroutine after every
	// emitted shard.
	Progress func(p Progress)
}

// Progress is the per-shard report of a running campaign.
type Progress struct {
	// Sampler and Variant identify the emitted shard's grid cell.
	Sampler, Variant string
	// Lo and Hi bound the shard's instance range.
	Lo, Hi int
	// Searched and Hits are cumulative over the whole run.
	Searched, Hits int
	// Done and Shards count emitted shards against the total.
	Done, Shards int
}

// Aggregate summarizes the searched instances of one grid cell.
type Aggregate struct {
	Sampler, Variant string
	// Instances counts the cell's emitted records; Searched those that
	// actually evaluated a start network.
	Instances, Searched int
	// Resamples totals the degenerate redraws.
	Resamples int
	// Hits counts found cycles (or accepted candidates).
	Hits int
	// SumStates totals the interned state counts of the cell's searches.
	SumStates int64
}

// Summary is the aggregated outcome of a campaign run, one Aggregate per
// grid cell in (sampler, variant) order.
type Summary struct {
	Campaign string
	Cells    []Aggregate
	// Instances/Searched/Hits total the cells.
	Instances, Searched, Hits int
}

// cell is one (sampler, variant) pair of the grid with its resolved
// instance budget.
type cell struct {
	si, vi    int
	instances int
}

// shard is a claimable instance range of one cell.
type shard struct {
	cellIdx int
	lo, hi  int
}

// shardOut is a finished shard: records in instance order, resumed ones
// marked so the resume-append sink does not duplicate them; truncated
// marks a shard cut short by an abort, whose records are a valid prefix.
type shardOut struct {
	recs      []Record
	resumed   []bool
	err       error
	truncated bool
}

// worker is the per-goroutine arena: the generator RNG and, for
// candidate-check campaigns, the worker-owned checker closure.
type worker struct {
	rng   *gen.Rand
	check func(g *graph.Graph) bool
}

// newWorkerArena builds one worker's execution arena; RunShard and the
// pool of run share it so both paths search instances identically.
func newWorkerArena(c *Campaign) *worker {
	w := &worker{rng: gen.NewRand(0)}
	if c.NewCheck != nil {
		w.check = c.NewCheck()
	}
	return w
}

// flusher matches sinks that can push buffered records to their backing
// store; Run flushes after every emitted shard so an interrupted campaign
// leaves a maximal resumable checkpoint.
type flusher interface {
	Flush() error
}

// resumeSkipper matches the append-mode sink of ResumeJSONL, the only
// sink that must not receive checkpoint-recovered records again.
type resumeSkipper interface {
	skipResumed() bool
}

// skipsResumed reports whether s already holds the recovered records.
func skipsResumed(s Sink) bool {
	rs, ok := s.(resumeSkipper)
	return ok && rs.skipResumed()
}

// Run executes the campaign's (sampler, variant, instance) grid over a
// sharded worker pool and streams the records to the sinks in
// deterministic grid order; it closes every sink before returning.
// Records, summary and the MaxHits cut are bit-identical for any Workers
// and ShardSize. A checkpoint in opt.Done resumes a partial run,
// re-searching only the missing instances.
func Run(c Campaign, opt Options, sinks ...Sink) (Summary, error) {
	sum, err := run(c, opt, sinks)
	for _, s := range sinks {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return sum, err
}

func run(c Campaign, opt Options, sinks []Sink) (Summary, error) {
	c, err := Resolve(c, opt)
	if err != nil {
		return Summary{}, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cells := planCells(c)
	total := 0
	for _, cl := range cells {
		total += cl.instances
	}
	if err := checkpointInside(opt.Done, c, cells); err != nil {
		return Summary{}, err
	}

	shardSize := opt.ShardSize
	if shardSize <= 0 {
		// A few shards per worker for load balance, but bounded: the
		// MaxHits cut can only land between completed shards' emissions,
		// so giant shards would overshoot an early hit by a full shard of
		// wasted instances (enumerated families run to millions).
		shardSize = total / (4 * workers)
		if shardSize < 1 {
			shardSize = 1
		}
		if shardSize > 256 {
			shardSize = 256
		}
	}
	var shards []shard
	for ci, cl := range cells {
		for lo := 0; lo < cl.instances; lo += shardSize {
			hi := lo + shardSize
			if hi > cl.instances {
				hi = cl.instances
			}
			shards = append(shards, shard{cellIdx: ci, lo: lo, hi: hi})
		}
	}

	sum := Summary{Campaign: c.Name, Cells: make([]Aggregate, len(cells))}
	for i, cl := range cells {
		sum.Cells[i] = Aggregate{Sampler: c.Samplers[cl.si].Name, Variant: c.Variants[cl.vi].Name}
	}

	var abort atomic.Bool
	if ctx := opt.Context; ctx != nil {
		// The watcher flips the same abort latch an error or the MaxHits
		// cut uses: in-flight shards stop at their next instance boundary
		// and the emit loop flushes everything already ordered, so the
		// sinks hold a maximal resumable prefix when Run returns.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				abort.Store(true)
			case <-watchDone:
			}
		}()
	}
	runShard := func(sh shard, w *worker) shardOut {
		out := shardOut{
			recs:    make([]Record, 0, sh.hi-sh.lo),
			resumed: make([]bool, 0, sh.hi-sh.lo),
		}
		cl := cells[sh.cellIdx]
		smp := &c.Samplers[cl.si]
		v := &c.Variants[cl.vi]
		for inst := sh.lo; inst < sh.hi; inst++ {
			if abort.Load() {
				out.truncated = true
				return out
			}
			if opt.Done != nil {
				if rec, ok := opt.Done.record(smp.Name, v.Name, inst); ok {
					if rec.Campaign != c.Name || rec.Seed != instanceSeed(c.Seed, cl.si, cl.vi, inst, 0) {
						out.err = fmt.Errorf("campaign: checkpoint record %s/%s #%d is from campaign %q seed %d, not this run",
							smp.Name, v.Name, inst, rec.Campaign, rec.Seed)
						return out
					}
					out.recs = append(out.recs, rec)
					out.resumed = append(out.resumed, true)
					continue
				}
			}
			rec, err := safeInstance(&c, smp, v, cl.si, cl.vi, inst, w)
			if err != nil {
				out.err = err
				return out
			}
			out.recs = append(out.recs, rec)
			out.resumed = append(out.resumed, false)
		}
		return out
	}

	next := make(chan int)
	finished := make(chan int, workers)
	pending := make([]*shardOut, len(shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	go func() {
		for i := range shards {
			next <- i
		}
		close(next)
	}()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newWorkerArena(&c)
			for i := range next {
				var out shardOut
				if abort.Load() {
					// The run is already cut (MaxHits, an error or a sink
					// failure); later shards are never emitted, so skip
					// their work entirely.
					out.truncated = true
				} else {
					out = runShard(shards[i], w)
				}
				if out.err != nil {
					abort.Store(true)
				}
				mu.Lock()
				pending[i] = &out
				mu.Unlock()
				finished <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(finished)
	}()

	// Replay finished shards to the sinks strictly in shard (hence grid)
	// order as they become available. The MaxHits cut happens here, on the
	// deterministic stream: everything after the MaxHits-th hit — within
	// the shard and beyond — is dropped from sinks and summary alike, so
	// the result is identical at any worker count.
	var firstErr error
	stopSinks := false
	capped := false
	hits := 0
	nextEmit := 0
	emitReady := func() {
		for nextEmit < len(shards) {
			mu.Lock()
			out := pending[nextEmit]
			mu.Unlock()
			if out == nil {
				return
			}
			sh := shards[nextEmit]
			agg := &sum.Cells[sh.cellIdx]
			for j, rec := range out.recs {
				if capped {
					break
				}
				agg.add(rec)
				if !stopSinks && firstErr == nil {
					for _, s := range sinks {
						if out.resumed[j] && skipsResumed(s) {
							continue
						}
						if err := s.Write(rec); err != nil && firstErr == nil {
							firstErr = err
							abort.Store(true)
						}
					}
				}
				if rec.Hit {
					hits++
					if opt.MaxHits > 0 && hits >= opt.MaxHits {
						capped = true
						abort.Store(true)
					}
				}
			}
			// Stop sink output at the first failed or truncated shard: its
			// records still precede the cut, but emitting anything after it
			// would leave an interior gap a checkpoint resume could not
			// fill in order.
			if firstErr != nil || out.err != nil || (out.truncated && !capped) {
				stopSinks = true
			}
			if out.err != nil && firstErr == nil {
				firstErr = out.err
			}
			for _, s := range sinks {
				if f, ok := s.(flusher); ok {
					if err := f.Flush(); err != nil && firstErr == nil {
						firstErr = err
						abort.Store(true)
					}
				}
			}
			nextEmit++
			if opt.Progress != nil {
				searched, nHits := 0, 0
				for i := range sum.Cells {
					searched += sum.Cells[i].Searched
					nHits += sum.Cells[i].Hits
				}
				opt.Progress(Progress{
					Sampler:  agg.Sampler,
					Variant:  agg.Variant,
					Lo:       sh.lo,
					Hi:       sh.hi,
					Searched: searched,
					Hits:     nHits,
					Done:     nextEmit,
					Shards:   len(shards),
				})
			}
		}
	}
	for range finished {
		emitReady()
	}
	emitReady()
	for i := range sum.Cells {
		sum.Instances += sum.Cells[i].Instances
		sum.Searched += sum.Cells[i].Searched
		sum.Hits += sum.Cells[i].Hits
	}
	if firstErr == nil && opt.Context != nil {
		// A cancelled run is reported as such even though the partial
		// stream is valid: callers distinguish "interrupted, resume later"
		// from a completed hunt.
		firstErr = opt.Context.Err()
	}
	if firstErr != nil {
		return sum, firstErr
	}
	return sum, nil
}

// add folds one record into the cell aggregate.
func (a *Aggregate) add(rec Record) {
	a.Instances++
	if rec.Searched {
		a.Searched++
	}
	if rec.Hit {
		a.Hits++
	}
	a.Resamples += rec.Resamples
	a.SumStates += int64(rec.States)
}

// checkpointInside rejects a checkpoint containing instances outside this
// run's grid: their records would be stranded in the output file, never
// enumerated and never aggregated.
func checkpointInside(cp *Checkpoint, c Campaign, cells []cell) error {
	if cp == nil {
		return nil
	}
	budget := make(map[[2]string]int, len(cells))
	for _, cl := range cells {
		budget[[2]string{c.Samplers[cl.si].Name, c.Variants[cl.vi].Name}] = cl.instances
	}
	for k := range cp.recs {
		instances, ok := budget[[2]string{k.sampler, k.variant}]
		if !ok || k.instance >= instances {
			return fmt.Errorf("campaign: checkpoint record %s/%s #%d lies outside this run's grid; resume with the original grid",
				k.sampler, k.variant, k.instance)
		}
	}
	return nil
}

// safeInstance searches one instance, converting sampler or game panics
// into errors so a bad configuration fails the campaign instead of
// crashing the pool.
func safeInstance(c *Campaign, smp *Sampler, v *Variant, si, vi, inst int, w *worker) (rec Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: %q %s/%s instance %d: %v", c.Name, smp.Name, v.Name, inst, r)
		}
	}()
	return runInstance(c, smp, v, si, vi, inst, w), nil
}

// runInstance samples (with degenerate redraws from fresh derived seeds)
// and searches one instance. The record depends only on the campaign
// configuration and the (sampler, variant, instance) triple, never on
// sharding or scheduling.
func runInstance(c *Campaign, smp *Sampler, v *Variant, si, vi, inst int, w *worker) Record {
	rec := Record{
		Campaign: c.Name,
		Sampler:  smp.Name,
		Variant:  v.Name,
		Instance: inst,
		Seed:     instanceSeed(c.Seed, si, vi, inst, 0),
	}
	var g *graph.Graph
	if smp.Total > 0 {
		// Enumerated indices decode deterministically: redraws are
		// pointless and reseeding the RNG (hundreds of ns per call) would
		// dominate cheap decoders, so the family gets no random source.
		g = smp.Sample(c.N, inst, nil)
	} else {
		for a := 0; a <= c.MaxResamples; a++ {
			w.rng.Seed(instanceSeed(c.Seed, si, vi, inst, a))
			if g = smp.Sample(c.N, inst, w.rng); g != nil {
				break
			}
			rec.Resamples++
		}
	}
	if g == nil {
		return rec
	}
	rec.N = g.N()
	rec.Searched = true
	if w.check != nil {
		if w.check(g) {
			rec.Hit = true
			rec.Start = EncodeGraph(g)
			rec.CycleStart = rec.Start
			rec.Moves = encodeMoves(c.Moves)
		}
		return rec
	}
	var fc *cycles.FoundCycle
	var states int
	if v.Schedule != nil {
		// Round variants witness one played trajectory per instance instead
		// of exhausting the best-response state graph; the instance seed
		// selects it and MaxStates caps its committed moves.
		fc, states = cycles.SearchRoundCycle(g, dynamics.Config{
			Game:     v.New(g.N()),
			Tie:      dynamics.TieFirst,
			Seed:     rec.Seed,
			MaxSteps: c.MaxStates,
			Schedule: v.Schedule,
			Oracle:   v.Oracle,
			Backend:  v.Backend,
		})
	} else {
		fc, states = cycles.SearchBestResponseCycle(g, v.New(g.N()), c.MaxStates)
	}
	rec.States = states
	if fc != nil {
		rec.Hit = true
		rec.Start = EncodeGraph(g)
		rec.CycleStart = EncodeGraph(fc.States[0])
		rec.Moves = encodeMoves(fc.Moves)
	}
	return rec
}

// SweepFamily runs a figure candidate sweep of internal/search on the
// campaign spine: the family's indices are sharded over the worker pool,
// each candidate runs through the family's acceptance check, and the
// accepted candidates come back in index order — exactly the sequential
// candidate list of the search package (limit > 0 stops after that many,
// like the sequential searches). Sinks receive the full record stream.
func SweepFamily(f search.Family, limit int, opt Options, sinks ...Sink) ([]*graph.Graph, Summary, error) {
	c := Campaign{
		Name:      "sweep-" + f.Name,
		Samplers:  []Sampler{FamilySampler(f)},
		Variants:  []Variant{{Name: f.Name, New: f.NewGame}},
		N:         f.N,
		Instances: f.Total,
		Seed:      1,
		NewCheck:  f.NewCheck,
		Moves:     f.Moves,
	}
	opt.MaxHits = limit
	var out []*graph.Graph
	collect := FuncSink(func(rec Record) error {
		if !rec.Hit {
			return nil
		}
		g, err := rec.DecodeStart()
		if err != nil {
			return err
		}
		out = append(out, g)
		return nil
	})
	sum, err := Run(c, opt, append(sinks, collect)...)
	return out, sum, err
}
