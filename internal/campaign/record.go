package campaign

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ncg/internal/cycles"
	"ncg/internal/game"
	"ncg/internal/graph"
	"ncg/internal/jsonl"
)

// Move is the JSONL form of one cycle move.
type Move struct {
	Agent int   `json:"agent"`
	Drop  []int `json:"drop,omitempty"`
	Add   []int `json:"add,omitempty"`
}

// Record is the result of searching one instance, the unit streamed to
// sinks in deterministic (sampler, variant, instance) order. Misses are
// compact progress records; hits additionally carry the canonical
// ownership-aware start-network encoding (graph.AppendOwnedRows, hex) and
// the found cycle as its first state plus move trace.
type Record struct {
	Campaign string `json:"campaign"`
	Sampler  string `json:"sampler"`
	Variant  string `json:"variant"`
	Instance int    `json:"instance"`
	// Seed is the instance's derived stream (attempt 0); resample redraws
	// derive fresh streams from the same triple.
	Seed int64 `json:"seed"`
	// N is the searched instance's agent count (0 when no sample
	// materialized).
	N int `json:"n"`
	// Searched reports whether a start network was actually searched; a
	// false value means every redraw of a degenerate sample failed, and
	// the instance consumed none of the search budget's meaning.
	Searched bool `json:"searched"`
	// Resamples counts degenerate draws redrawn from fresh derived seeds.
	Resamples int `json:"resamples"`
	// States is the number of distinct states the cycle search interned.
	States int `json:"states"`
	// Hit reports a found best-response cycle (or accepted candidate).
	Hit bool `json:"hit"`
	// Start is the hex-encoded canonical start network of a hit.
	Start string `json:"start,omitempty"`
	// CycleStart is the hex-encoded first state of the found cycle
	// (equal to Start for candidate-check hits, whose cycle starts at the
	// candidate itself).
	CycleStart string `json:"cycleStart,omitempty"`
	// Moves is the cycle's move trace: applying them in order to
	// CycleStart returns to CycleStart.
	Moves []Move `json:"moves,omitempty"`
}

// EncodeGraph returns the canonical hex form of g's ownership-aware state
// encoding (graph.AppendOwnedRows): 16 hex digits per row word. Together
// with the record's agent count it identifies the network exactly.
func EncodeGraph(g *graph.Graph) string {
	words := g.AppendOwnedRows(make([]uint64, 0, graph.EncodedWords(g.N())))
	buf := make([]byte, 0, 8*len(words))
	for _, w := range words {
		buf = binary.BigEndian.AppendUint64(buf, w)
	}
	return hex.EncodeToString(buf)
}

// DecodeGraph reverses EncodeGraph for an n-agent network.
func DecodeGraph(n int, s string) (*graph.Graph, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("campaign: bad state encoding: %v", err)
	}
	if len(raw) != 8*graph.EncodedWords(n) {
		return nil, fmt.Errorf("campaign: state encoding is %d bytes, want %d for n=%d",
			len(raw), 8*graph.EncodedWords(n), n)
	}
	words := make([]uint64, len(raw)/8)
	for i := range words {
		words[i] = binary.BigEndian.Uint64(raw[8*i:])
	}
	g := graph.New(n)
	g.LoadOwnedRows(words)
	return g, nil
}

// encodeMoves converts a move trace into its JSONL form.
func encodeMoves(ms []game.Move) []Move {
	out := make([]Move, len(ms))
	for i, m := range ms {
		out[i] = Move{
			Agent: m.Agent,
			Drop:  append([]int(nil), m.Drop...),
			Add:   append([]int(nil), m.Add...),
		}
	}
	return out
}

// GameMoves converts the record's trace back into game moves.
func (r Record) GameMoves() []game.Move {
	out := make([]game.Move, len(r.Moves))
	for i, m := range r.Moves {
		out[i] = game.Move{Agent: m.Agent, Drop: m.Drop, Add: m.Add}
	}
	return out
}

// DecodeStart returns the hit's start network.
func (r Record) DecodeStart() (*graph.Graph, error) {
	if !r.Hit {
		return nil, fmt.Errorf("campaign: record %s/%s #%d is not a hit", r.Sampler, r.Variant, r.Instance)
	}
	return DecodeGraph(r.N, r.Start)
}

// DecodeCycle reconstructs the hit's best-response cycle by replaying the
// move trace from the cycle's first state. It verifies that the trajectory
// closes — exactly for ownership-aware games, up to ownership for
// ownership-blind ones, whose stored states carry the interned store's
// canonical orientation — so a decoded cycle is structurally sound even
// from an untrusted record file.
func (r Record) DecodeCycle() (*cycles.FoundCycle, error) {
	if !r.Hit {
		return nil, fmt.Errorf("campaign: record %s/%s #%d is not a hit", r.Sampler, r.Variant, r.Instance)
	}
	g, err := DecodeGraph(r.N, r.CycleStart)
	if err != nil {
		return nil, err
	}
	fc := &cycles.FoundCycle{Moves: r.GameMoves()}
	cur := g.Clone()
	for _, m := range fc.Moves {
		fc.States = append(fc.States, cur.Clone())
		game.Apply(cur, m)
	}
	if !cur.Equal(g) && !cur.EqualUnowned(g) {
		return nil, fmt.Errorf("campaign: record %s/%s #%d: cycle trace does not close", r.Sampler, r.Variant, r.Instance)
	}
	return fc, nil
}

// Sink consumes the per-instance records of a campaign run. Run delivers
// records in deterministic (sampler, variant, instance) order from a
// single goroutine, so sinks need no locking.
type Sink interface {
	Write(rec Record) error
	// Close flushes buffered output and releases resources. Run closes
	// every sink it was handed, whether or not the run succeeded.
	Close() error
}

// FuncSink adapts a callback into a Sink, for in-memory consumers.
type FuncSink func(rec Record) error

func (f FuncSink) Write(rec Record) error { return f(rec) }

func (f FuncSink) Close() error { return nil }

// JSONLSink streams records as one JSON object per line, the campaign's
// checkpointable on-disk form.
type JSONLSink struct {
	jsonl.BufWriter
	enc *json.Encoder
	// fromCheckpoint marks the append-mode sink of ResumeJSONL: its file
	// already contains the recovered records, so Run must not re-write
	// them (every other sink receives the complete stream).
	fromCheckpoint bool
}

// skipResumed implements the runner's resumeSkipper probe.
func (s *JSONLSink) skipResumed() bool { return s.fromCheckpoint }

// NewJSONLSink writes JSONL records to w; if w is an io.Closer it is
// closed with the sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{BufWriter: jsonl.NewBufWriter(w)}
	s.enc = json.NewEncoder(s.W)
	return s
}

// CreateJSONL creates (or truncates) a JSONL record file.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

func (s *JSONLSink) Write(rec Record) error { return s.enc.Encode(rec) }

// cellKey identifies one instance across the grid, the checkpoint's unit.
type cellKey struct {
	sampler, variant string
	instance         int
}

// Checkpoint holds the instances recovered from a partial JSONL record
// file. Passed to Run via Options.Done, those instances are folded into
// the summary (and counted against Options.MaxHits) from their recorded
// results instead of being re-searched; their records still flow to the
// sinks in order, so in-memory consumers (hit collectors, SweepFamily)
// see the complete stream — only the append-mode sink of ResumeJSONL
// skips them.
type Checkpoint struct {
	recs map[cellKey]Record
	// goodBytes is the file offset after the last complete, parseable
	// line; anything beyond it is a truncated tail.
	goodBytes int64
}

// Len returns the number of recovered instances.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	return len(c.recs)
}

// record returns the recovered record of the instance.
func (c *Checkpoint) record(sampler, variant string, instance int) (Record, bool) {
	if c == nil {
		return Record{}, false
	}
	rec, ok := c.recs[cellKey{sampler, variant, instance}]
	return rec, ok
}

// String summarizes the checkpoint for logs.
func (c *Checkpoint) String() string {
	return fmt.Sprintf("checkpoint(%d instances)", c.Len())
}

// LoadCheckpoint parses a (possibly truncated) campaign JSONL record file
// with the shared truncated-tail semantics of the ensemble spine: complete
// lines become recovered instances, everything from the first torn or
// unparseable line on is ignored, so resuming re-runs exactly the
// instances the file does not fully record.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	cp := &Checkpoint{recs: make(map[cellKey]Record)}
	good, err := jsonl.ScanFile(path, func(line []byte) bool {
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Campaign == "" {
			return false
		}
		cp.recs[cellKey{rec.Sampler, rec.Variant, rec.Instance}] = rec
		return true
	})
	if err != nil {
		return nil, err
	}
	cp.goodBytes = good
	return cp, nil
}

// ResumeJSONL prepares a partial campaign record file for resumption: it
// loads the checkpoint, truncates the torn tail and returns an append-mode
// sink. Running with the checkpoint in Options.Done and the sink then
// completes the file exactly as an uninterrupted run would have written
// it.
func ResumeJSONL(path string) (*Checkpoint, *JSONLSink, error) {
	cp, err := LoadCheckpoint(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := jsonl.OpenResume(path, cp.goodBytes)
	if err != nil {
		return nil, nil, err
	}
	sink := NewJSONLSink(f)
	sink.fromCheckpoint = true
	return cp, sink, nil
}
