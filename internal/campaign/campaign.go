// Package campaign is the counterexample-hunt subsystem: one resumable
// execution spine for every best-response-cycle search. A campaign fans a
// grid of pluggable instance samplers (structured cycle-pendant networks,
// random trees, budget-k networks, random connected m-edge networks, the
// rl/dl lines) crossed with game variants (SUM/MAX x SG/ASG/GBG/BG) over a
// worker pool. Every (sampler, variant, instance) triple owns a splitmix64
// seed stream — as in internal/ensemble — and runs through the interned
// state-store explorer (cycles.SearchBestResponseCycle) under a
// per-instance state cap. Results stream to sinks as JSONL records — hits
// carry the canonical start-network encoding and the cycle trace — in
// deterministic (sampler, variant, instance) order, bit-identical at any
// worker count, with checkpoint/resume from truncated record files. The
// sequential figure sweeps of internal/search run on the same spine via
// SweepFamily.
package campaign

import (
	"fmt"

	"ncg/internal/dynamics"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
	"ncg/internal/rng"
	"ncg/internal/search"
)

// Sampler draws the start networks of one campaign axis.
type Sampler struct {
	// Name is the sampler's record key (kebab-case).
	Name string
	// Total, when positive, marks an enumerated family: instances are the
	// indices [0, Total) and degenerate instances are never resampled
	// (decoding is deterministic, so a fresh seed cannot help).
	Total int
	// Sample draws instance i on n agents from r. Self-sizing samplers
	// (the cycle-pendant family) ignore n; enumerated families receive a
	// nil r (decoding is deterministic, so no stream is derived for
	// them). A nil return is a degenerate sample: sampled instances are
	// redrawn from a fresh derived seed stream, up to the campaign's
	// resample budget.
	Sample func(n, i int, r *gen.Rand) *graph.Graph
	// CheckN validates an agent count before the campaign runs (nil: all
	// valid), turning infeasible parameter combinations into usage errors
	// instead of generator panics.
	CheckN func(n int) error
}

// Variant names one game the campaign plays on every sampled instance.
type Variant struct {
	// Name is the variant's record key (e.g. "sum-asg").
	Name string
	// New builds the game for an n-agent instance.
	New func(n int) game.Game
	// Schedule, when non-nil, must be a dynamics.Rounds value and switches
	// the variant's search from the exhaustive best-response state-graph
	// explorer to one played simultaneous-round trajectory per instance
	// (cycles.SearchRoundCycle, TieFirst, seeded by the instance stream,
	// step-capped by the campaign's MaxStates). Hits carry the witnessed
	// round cycle in the usual record fields; Record.States counts the
	// committed moves instead of interned states.
	Schedule dynamics.Scheduler
	// Oracle selects the distance oracle of round-variant trajectories
	// (zero value: auto). Landmark mode is bit-identical to exact, so
	// records never depend on the choice; the exhaustive explorer ignores
	// it (state-graph search always runs exact).
	Oracle dynamics.OracleSpec
	// Backend selects the adjacency representation of round-variant
	// trajectories (zero value: auto — sparse iff the oracle resolves to
	// landmark mode). Both backends play bit-identical trajectories, so
	// records never depend on the choice; the exhaustive explorer ignores
	// it like Oracle.
	Backend dynamics.BackendSpec
}

// Campaign is one named counterexample hunt: the sampler x variant grid,
// its per-cell instance budget and the per-instance search configuration.
// Options can override the budgets at run time.
type Campaign struct {
	// Name is recorded in every record and checked on resume.
	Name string
	// Samplers and Variants span the grid; cell order (and with it the
	// deterministic record order and the per-cell seed streams) follows
	// the slice order.
	Samplers []Sampler
	Variants []Variant
	// N is the agent count handed to the samplers (self-sizing samplers
	// ignore it).
	N int
	// Instances is the default instance budget per (sampler, variant)
	// cell; enumerated samplers are clamped to their Total.
	Instances int
	// Seed is the default base seed; every (sampler, variant, instance)
	// derives its own stream from it.
	Seed int64
	// MaxStates caps each instance's best-response state-graph search.
	MaxStates int
	// MaxResamples bounds the degenerate-sample redraws per instance
	// (0: a default budget). Redraws never consume instance budget: a
	// degenerate draw is retried with a fresh derived seed, so the
	// campaign searches exactly the instances it reports.
	MaxResamples int
	// NewCheck, when non-nil, replaces the best-response cycle search:
	// an instance is a hit iff the checker accepts it, and Moves is the
	// designated cycle recorded for accepted candidates. Each worker
	// calls NewCheck once, so the closure may own scratch space.
	NewCheck func() func(g *graph.Graph) bool
	// Moves is the designated best-response cycle of a NewCheck hit,
	// starting at the accepted candidate itself.
	Moves []game.Move
}

// defaultMaxResamples bounds degenerate redraws per instance.
const defaultMaxResamples = 32

// validate reports structural problems that would make the campaign
// unrunnable, including infeasible sampler parameters for its agent count.
func (c Campaign) validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("campaign: campaign has no name")
	case len(c.Samplers) == 0:
		return fmt.Errorf("campaign: campaign %q has no samplers", c.Name)
	case len(c.Variants) == 0:
		return fmt.Errorf("campaign: campaign %q has no game variants", c.Name)
	case c.Instances <= 0:
		return fmt.Errorf("campaign: campaign %q has no instance budget", c.Name)
	case c.NewCheck == nil && c.MaxStates <= 0:
		return fmt.Errorf("campaign: campaign %q has no per-instance state cap", c.Name)
	}
	seen := map[string]bool{}
	for _, smp := range c.Samplers {
		if smp.Name == "" || smp.Sample == nil {
			return fmt.Errorf("campaign: campaign %q has an unnamed or empty sampler", c.Name)
		}
		if seen[smp.Name] {
			return fmt.Errorf("campaign: campaign %q lists sampler %q twice", c.Name, smp.Name)
		}
		seen[smp.Name] = true
		if smp.CheckN != nil && smp.Total == 0 {
			if err := smp.CheckN(c.N); err != nil {
				return fmt.Errorf("campaign: campaign %q sampler %q: %v", c.Name, smp.Name, err)
			}
		}
	}
	seen = map[string]bool{}
	for _, v := range c.Variants {
		if v.Name == "" || v.New == nil {
			return fmt.Errorf("campaign: campaign %q has an unnamed or empty variant", c.Name)
		}
		if seen[v.Name] {
			return fmt.Errorf("campaign: campaign %q lists variant %q twice", c.Name, v.Name)
		}
		seen[v.Name] = true
	}
	return nil
}

// instanceSeed derives the seed stream of attempt a (0 = the instance's
// recorded stream; a > 0 are the degenerate-resample redraws) of instance
// inst in grid cell (si, vi).
func instanceSeed(base int64, si, vi, inst, a int) int64 {
	if a == 0 {
		return rng.Seed(base, uint64(si), uint64(vi), uint64(inst))
	}
	return rng.Seed(base, uint64(si), uint64(vi), uint64(inst), uint64(a))
}

// SampleCyclePendant draws a unit-budget network consisting of one cycle
// of length 6..13 with 2..4 pendant paths of lengths 1..6, ownership
// assigned by matching — the structured family sharing the shape of the
// Figure 5/6 constructions (Theorem 3.7). Returns nil for degenerate
// samples.
func SampleCyclePendant(r *gen.Rand) *graph.Graph {
	cycleLen := 6 + r.Intn(8)
	pendants := 2 + r.Intn(3)
	type pendant struct{ pos, length int }
	var ps []pendant
	n := cycleLen
	for i := 0; i < pendants; i++ {
		p := pendant{pos: r.Intn(cycleLen), length: 1 + r.Intn(6)}
		ps = append(ps, p)
		n += p.length
	}
	g := graph.New(n)
	for i := 0; i < cycleLen; i++ {
		g.AddEdge(i, (i+1)%cycleLen)
	}
	next := cycleLen
	for _, p := range ps {
		prev := p.pos
		for j := 0; j < p.length; j++ {
			g.AddEdge(next, prev) // pendant vertices own their edges
			prev = next
			next++
		}
	}
	if g.M() != n {
		return nil
	}
	if !search.AssignUnitOwnership(g, nil) {
		return nil
	}
	return g
}

// CyclePendantSampler is the self-sizing structured unit-budget family of
// the Theorem 3.7 hunt.
func CyclePendantSampler() Sampler {
	return Sampler{
		Name:   "cycle-pendant",
		Sample: func(_, _ int, r *gen.Rand) *graph.Graph { return SampleCyclePendant(r) },
	}
}

// TreeSampler draws uniform random labeled trees with random ownership.
func TreeSampler() Sampler {
	return Sampler{
		Name:   "random-tree",
		Sample: func(n, _ int, r *gen.Rand) *graph.Graph { return gen.RandomTree(n, r) },
	}
}

// BudgetSampler draws the Section 3.4.1 budget-k ensemble.
func BudgetSampler(k int) Sampler {
	return Sampler{
		Name:   fmt.Sprintf("budget-k%d", k),
		Sample: func(n, _ int, r *gen.Rand) *graph.Graph { return gen.BudgetNetwork(n, k, r) },
		CheckN: func(n int) error { return gen.ValidateBudget(n, k) },
	}
}

// ConnectedSampler draws random connected networks with m = mMul*n edges
// (Section 4.2.1).
func ConnectedSampler(mMul int) Sampler {
	return Sampler{
		Name:   fmt.Sprintf("random-m%dn", mMul),
		Sample: func(n, _ int, r *gen.Rand) *graph.Graph { return gen.RandomConnected(n, mMul*n, r) },
		CheckN: func(n int) error { return gen.ValidateConnected(n, mMul*n) },
	}
}

// RandomLineSampler draws the rl topology (random-ownership line) of
// Section 4.2.2.
func RandomLineSampler() Sampler {
	return Sampler{
		Name:   "random-line",
		Sample: func(n, _ int, r *gen.Rand) *graph.Graph { return gen.RandomLine(n, r) },
	}
}

// DirectedLineSampler builds the dl topology (directed line) of Section
// 4.2.2. The family is a single deterministic network per n, so it is an
// enumerated family of one instance — a campaign cell never searches the
// identical start twice.
func DirectedLineSampler() Sampler {
	return Sampler{
		Name:   "directed-line",
		Total:  1,
		Sample: func(n, _ int, _ *gen.Rand) *graph.Graph { return gen.DirectedLine(n) },
	}
}

// FamilySampler adapts an indexed candidate family (a figure sweep of
// internal/search) into an enumerated campaign sampler.
func FamilySampler(f search.Family) Sampler {
	return Sampler{
		Name:   f.Name,
		Total:  f.Total,
		Sample: func(_, i int, _ *gen.Rand) *graph.Graph { return f.At(i) },
	}
}

// BuiltinSamplers lists the named instance families of the hunt grid.
func BuiltinSamplers() []Sampler {
	return []Sampler{
		CyclePendantSampler(),
		TreeSampler(),
		BudgetSampler(2),
		BudgetSampler(3),
		ConnectedSampler(2),
		RandomLineSampler(),
		DirectedLineSampler(),
	}
}

// SamplerByName returns the built-in sampler with the given name.
func SamplerByName(name string) (Sampler, bool) {
	for _, smp := range BuiltinSamplers() {
		if smp.Name == name {
			return smp, true
		}
	}
	return Sampler{}, false
}

// BuiltinVariants lists the SUM/MAX x SG/ASG/GBG/BG grid. The buy games
// use the experiment-scale prices: alpha = n/4 for the greedy buy game and
// alpha = 2 for the exhaustive-best-response Buy Game (keep n small there).
func BuiltinVariants() []Variant {
	return []Variant{
		{Name: "sum-sg", New: func(int) game.Game { return game.NewSwap(game.Sum) }},
		{Name: "max-sg", New: func(int) game.Game { return game.NewSwap(game.Max) }},
		{Name: "sum-asg", New: func(int) game.Game { return game.NewAsymSwap(game.Sum) }},
		{Name: "max-asg", New: func(int) game.Game { return game.NewAsymSwap(game.Max) }},
		{Name: "sum-gbg", New: func(n int) game.Game { return game.NewGreedyBuy(game.Sum, game.NewAlpha(int64(n), 4)) }},
		{Name: "max-gbg", New: func(n int) game.Game { return game.NewGreedyBuy(game.Max, game.NewAlpha(int64(n), 4)) }},
		{Name: "sum-bg", New: func(int) game.Game { return game.NewBuy(game.Sum, game.AlphaInt(2)) }},
		{Name: "max-bg", New: func(int) game.Game { return game.NewBuy(game.Max, game.AlphaInt(2)) }},
	}
}

// RoundVariants lists the simultaneous-round hunt variants: the swap games
// played under first-writer-wins rounds, where even the SUM variants —
// sequentially convergent by potential — can oscillate. They are not part
// of BuiltinVariants (the default grids and their seed streams are
// unchanged); select them by name.
func RoundVariants() []Variant {
	rounds := dynamics.Rounds{Active: dynamics.ActiveAll, Collision: dynamics.FirstWriterWins}
	return []Variant{
		{Name: "rounds-sum-sg", New: func(int) game.Game { return game.NewSwap(game.Sum) }, Schedule: rounds},
		{Name: "rounds-max-sg", New: func(int) game.Game { return game.NewSwap(game.Max) }, Schedule: rounds},
		{Name: "rounds-sum-asg", New: func(int) game.Game { return game.NewAsymSwap(game.Sum) }, Schedule: rounds},
		{Name: "rounds-max-asg", New: func(int) game.Game { return game.NewAsymSwap(game.Max) }, Schedule: rounds},
	}
}

// VariantByName returns the built-in or round variant with the given name.
func VariantByName(name string) (Variant, bool) {
	for _, v := range BuiltinVariants() {
		if v.Name == name {
			return v, true
		}
	}
	for _, v := range RoundVariants() {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}
