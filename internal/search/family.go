package search

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Family is an indexed deterministic candidate family together with its
// acceptance check and the designated best-response cycle an accepted
// candidate realizes. It is the unit the campaign spine shards figure
// sweeps over: indices decode independently (At), checks run on one
// worker-owned closure each (NewCheck), and survivors in index order are
// exactly the sequential candidate lists of this package.
type Family struct {
	// Name identifies the family in campaign records.
	Name string
	// N is the agent count of every candidate.
	N int
	// Total is the size of the index space; every instance in [0, Total)
	// decodes via At.
	Total int
	// At decodes index i into a candidate, or nil when the index does not
	// assemble into a valid candidate. It must be safe for concurrent use.
	At func(i int) *graph.Graph
	// NewGame builds the family's game (the one its cycle plays in).
	NewGame func(n int) game.Game
	// NewCheck returns a fresh acceptance checker with its own scratch;
	// each worker of a sharded sweep calls it once.
	NewCheck func() func(g *graph.Graph) bool
	// Moves is the designated best-response cycle of an accepted
	// candidate, starting from the candidate itself.
	Moves []game.Move
}

// fig5Specs builds the sixteen shape combinations of the Figure 5 family
// in the nested order of Fig5Candidates (A outermost, D innermost).
func fig5Specs() []*AssembleSpec {
	var specs []*AssembleSpec
	for _, a := range []GroupShape{Chain, StarShape} {
		for _, b := range []GroupShape{Chain, StarShape} {
			for _, c := range []GroupShape{Chain, StarShape} {
				for _, d := range []GroupShape{Chain, StarShape} {
					specs = append(specs, Fig5Spec{a, b, c, d}.assembleSpec(0, nil))
				}
			}
		}
	}
	return specs
}

// specsFamily flattens a spec list (sharing one index space, spec 0 first)
// into a Family.
func specsFamily(name string, n int, specs []*AssembleSpec, gm func(n int) game.Game,
	check func() func(g *graph.Graph) bool, moves []game.Move) Family {
	per := specs[0].Total()
	return Family{
		Name:  name,
		N:     n,
		Total: per * len(specs),
		At: func(i int) *graph.Graph {
			return specs[i/per].At(i % per)
		},
		NewGame:  gm,
		NewCheck: check,
		Moves:    moves,
	}
}

// Fig5Family is the strict Figure 5 sweep (SUM-ASG, 19 agents, every prose
// fact of the proof) as an indexed family: campaign hits in index order
// coincide with Fig5Candidates.
func Fig5Family() Family {
	return specsFamily("fig5-sum-asg", 19, fig5Specs(),
		func(int) game.Game { return game.NewAsymSwap(game.Sum) },
		func() func(g *graph.Graph) bool {
			gm := game.NewAsymSwap(game.Sum)
			s := game.NewScratch(19)
			return func(g *graph.Graph) bool { return fig5Check(g, gm, s) }
		},
		fig5Moves())
}

// Fig5MinimalFamily relaxes the Figure 5 sweep to the bare theorem
// requirements (the four designated moves are best responses and the
// trajectory closes), matching Fig5CandidatesMinimal.
func Fig5MinimalFamily() Family {
	return specsFamily("fig5-sum-asg-minimal", 19, fig5Specs(),
		func(int) game.Game { return game.NewAsymSwap(game.Sum) },
		func() func(g *graph.Graph) bool {
			gm := game.NewAsymSwap(game.Sum)
			s := game.NewScratch(19)
			moves := fig5Moves()
			return func(g *graph.Graph) bool { return figCycleMinimal(g, gm, s, moves) }
		},
		fig5Moves())
}

// Fig6Family is the strict Figure 6 sweep (MAX-ASG, 20 agents) under the
// given filter options, matching Fig6Candidates.
func Fig6Family(opt Fig6Options) Family {
	spec := fig6AssembleSpec(0, nil)
	return Family{
		Name:  "fig6-max-asg",
		N:     20,
		Total: spec.Total(),
		At:    spec.At,
		NewGame: func(int) game.Game {
			return game.NewAsymSwap(game.Max)
		},
		NewCheck: func() func(g *graph.Graph) bool {
			gm := game.NewAsymSwap(game.Max)
			s := game.NewScratch(20)
			return func(g *graph.Graph) bool { return fig6Check(g, gm, s, opt) }
		},
		Moves: fig6Moves(),
	}
}

// Fig6MinimalFamily relaxes the Figure 6 sweep to the bare theorem
// requirements, matching Fig6CandidatesMinimal (the search that pins the
// repository's Figure 6 instance).
func Fig6MinimalFamily() Family {
	spec := fig6AssembleSpec(0, nil)
	return Family{
		Name:  "fig6-max-asg-minimal",
		N:     20,
		Total: spec.Total(),
		At:    spec.At,
		NewGame: func(int) game.Game {
			return game.NewAsymSwap(game.Max)
		},
		NewCheck: func() func(g *graph.Graph) bool {
			gm := game.NewAsymSwap(game.Max)
			s := game.NewScratch(20)
			moves := fig6Moves()
			return func(g *graph.Graph) bool { return figCycleMinimal(g, gm, s, moves) }
		},
		Moves: fig6Moves(),
	}
}

// Fig10Family is the Figure 10 tree sweep (MAX Buy Game, 8 agents, all
// labeled trees via Prüfer indices), matching Fig10Candidates without the
// unicyclic augmentations (tree bases exist, so the augmentations are not
// needed to witness the theorem).
func Fig10Family() Family {
	return Family{
		Name:  "fig10-max-bg",
		N:     8,
		Total: fig10Total,
		At:    fig10At,
		NewGame: func(int) game.Game {
			return game.NewBuy(game.Max, Fig10Alpha)
		},
		NewCheck: func() func(g *graph.Graph) bool {
			gm := game.NewBuy(game.Max, Fig10Alpha)
			s := game.NewScratch(8)
			return func(g *graph.Graph) bool { return fig10Check(g, gm, s) }
		},
		Moves: []game.Move{
			{Agent: f10g, Add: []int{f10a}},
			{Agent: f10e, Add: []int{f10a}},
			{Agent: f10g, Drop: []int{f10a}},
			{Agent: f10e, Drop: []int{f10a}},
		},
	}
}
