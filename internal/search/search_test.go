package search

import (
	"testing"

	"ncg/internal/game"
	"ncg/internal/graph"
)

func TestFig2RotationOrbits(t *testing.T) {
	orbits := fig2Orbits()
	// 36 unordered pairs on 9 vertices fall into 12 orbits of size 3; the
	// {a1,b1} orbit is excluded.
	if len(orbits) != 11 {
		t.Fatalf("orbits = %d, want 11", len(orbits))
	}
	seen := map[[2]int]bool{}
	for _, orbit := range orbits {
		if len(orbit) != 3 {
			t.Fatalf("orbit size %d, want 3", len(orbit))
		}
		for _, p := range orbit {
			if seen[p] {
				t.Fatalf("pair %v in two orbits", p)
			}
			seen[p] = true
			// The orbit is closed under the rotation.
			q := [2]int{Fig2Rotation(p[0]), Fig2Rotation(p[1])}
			if q[0] > q[1] {
				q[0], q[1] = q[1], q[0]
			}
			found := false
			for _, r := range orbit {
				if r == q {
					found = true
				}
			}
			if !found {
				t.Fatalf("orbit of %v not rotation-closed", p)
			}
		}
	}
	if len(seen) != 33 {
		t.Fatalf("pairs covered = %d, want 33", len(seen))
	}
}

func TestFig2CandidatesCount(t *testing.T) {
	cands := Fig2Candidates()
	if len(cands) != 18 {
		t.Fatalf("candidates = %d, want 18", len(cands))
	}
	for i, g := range cands {
		if err := g.Validate(); err != nil {
			t.Fatalf("candidate %d invalid: %v", i, err)
		}
	}
}

func TestFig10CandidatesCount(t *testing.T) {
	if testing.Short() {
		t.Skip("enumerates 8^6 trees")
	}
	cands := Fig10Candidates(false, 0)
	if len(cands) != 120 {
		t.Fatalf("tree candidates = %d, want 120", len(cands))
	}
	for _, g := range cands {
		if g.OutDegree(4) != 0 || g.OutDegree(6) != 0 {
			t.Fatal("agents e and g must own nothing")
		}
	}
}

func TestDecodePruferMatchesCayley(t *testing.T) {
	// All 16 labeled trees on 4 vertices arise from the 16 sequences.
	seen := map[uint64]bool{}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			edges := decodePrufer(4, []int{a, b})
			g := graph.New(4)
			for _, e := range edges {
				g.AddEdge(e[0], e[1])
			}
			if !g.IsTree() {
				t.Fatalf("prufer [%d %d] not a tree", a, b)
			}
			seen[g.HashUnowned()] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("distinct trees = %d, want 16", len(seen))
	}
}

func TestAssignUnitOwnership(t *testing.T) {
	// A 4-cycle with a pendant: 5 vertices, 5 edges; every vertex can own
	// exactly one edge.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(4, 0)
	if !AssignUnitOwnership(g, nil) {
		t.Fatal("ownership should exist")
	}
	for v := 0; v < 5; v++ {
		if g.OutDegree(v) != 1 {
			t.Fatalf("vertex %d owns %d edges", v, g.OutDegree(v))
		}
	}
	// Forced assignment that makes it infeasible: vertex 4's only edge
	// given to 0 leaves 4 with nothing to own.
	g2 := graph.New(5)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 2)
	g2.AddEdge(2, 3)
	g2.AddEdge(3, 0)
	g2.AddEdge(4, 0)
	if AssignUnitOwnership(g2, [][2]int{{0, 4}}) {
		t.Fatal("forced assignment should be infeasible")
	}
}

func TestUniqueCycleLength(t *testing.T) {
	g := graph.Cycle(7)
	if UniqueCycleLength(g) != 7 {
		t.Fatal("cycle length of C7")
	}
	p := graph.Path(6)
	if UniqueCycleLength(p) != 0 {
		t.Fatal("trees have no cycle")
	}
	// Cycle with pendant paths.
	h := graph.New(8)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 0)
	h.AddEdge(2, 3)
	h.AddEdge(3, 4)
	h.AddEdge(0, 5)
	h.AddEdge(5, 6)
	h.AddEdge(6, 7)
	if UniqueCycleLength(h) != 3 {
		t.Fatalf("cycle length = %d, want 3", UniqueCycleLength(h))
	}
}

func TestOwnershipVariantsCoverAllAssignments(t *testing.T) {
	g := graph.Path(4) // 3 edges, vertex 3 excluded from owning
	vars := ownershipVariants(g, []int{3})
	// Edge {2,3} is forced to 2; edges {0,1} and {1,2} are free: 4
	// variants.
	if len(vars) != 4 {
		t.Fatalf("variants = %d, want 4", len(vars))
	}
	seen := map[uint64]bool{}
	for _, v := range vars {
		if v.OutDegree(3) != 0 {
			t.Fatal("vertex 3 must own nothing")
		}
		seen[v.Hash()] = true
	}
	if len(seen) != 4 {
		t.Fatal("variants not distinct")
	}
}

// TestAssembleAtMatchesRun pins the indexed enumeration to the recursive
// one: iterating At in index order over the Figure 6 family visits exactly
// the assemblies Run visits, in the same order.
func TestAssembleAtMatchesRun(t *testing.T) {
	const limit = 40
	spec := fig6AssembleSpec(limit, func(*graph.Graph) bool { return true })
	got := spec.Run()
	var want []*graph.Graph
	total := spec.Total()
	for i := 0; i < total && len(want) < limit; i++ {
		if g := spec.At(i); g != nil {
			want = append(want, g)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Run found %d assemblies, At found %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("assembly %d differs between Run and At", i)
		}
	}
}

// TestFig10AtDecodesPruferIndex: index digits decode position 0 as the
// most significant, matching the recursion order of Fig10Candidates.
func TestFig10AtDecodesPruferIndex(t *testing.T) {
	// idx = 1*8^5 + 3*8^2 + 5 encodes prufer [1 0 0 3 0 5].
	idx := 1*8*8*8*8*8 + 3*8*8 + 5
	want := treeWithOwnership([]int{1, 0, 0, 3, 0, 5})
	got := fig10At(idx)
	if (got == nil) != (want == nil) {
		t.Fatalf("nil mismatch: got %v, want %v", got, want)
	}
	if got != nil && !got.Equal(want) {
		t.Fatal("decoded tree differs from direct decoding")
	}
	if fig10Total != 262144 {
		t.Fatalf("fig10Total = %d", fig10Total)
	}
}

// TestFamilyDescriptors sanity-checks the exported sweep families.
func TestFamilyDescriptors(t *testing.T) {
	for _, f := range []Family{
		Fig5Family(), Fig5MinimalFamily(),
		Fig6Family(Fig6Options{}), Fig6MinimalFamily(), Fig10Family(),
	} {
		if f.Total <= 0 || f.At == nil || f.NewCheck == nil || f.NewGame == nil || len(f.Moves) == 0 {
			t.Fatalf("family %q incomplete: %+v", f.Name, f)
		}
		if g := f.At(0); g != nil && g.N() != f.N {
			t.Fatalf("family %q: candidate n=%d, want %d", f.Name, g.N(), f.N)
		}
	}
}

func TestFig10HostCheckRejectsPinnedBase(t *testing.T) {
	// The erratum: the pinned Figure 10 base must fail the host-graph
	// corollary check.
	bases := Fig10Candidates(false, 1)
	if len(bases) != 1 {
		t.Fatal("no base")
	}
	if fig10HostCheck(bases[0]) {
		t.Fatal("host check unexpectedly passed (erratum would be void)")
	}
}

func TestIsBestResponseHelper(t *testing.T) {
	g := graph.Path(5)
	gm := game.NewBuy(game.Sum, game.AlphaInt(1))
	s := game.NewScratch(5)
	// Leaf 4 buying an edge to 2 (a median of the rest) is a best
	// response at alpha = 1... compute: with alpha=1 maybe buying two
	// edges is better; just check consistency with BestMoves.
	best, _ := gm.BestMoves(g, 4, s, nil)
	if len(best) == 0 {
		t.Fatal("leaf should improve at alpha=1")
	}
	if !isBestResponse(g, gm, best[0], s) {
		t.Fatal("a best move must be accepted")
	}
}
