package search

import (
	"ncg/internal/graph"
)

// Component-assembly search used to reconstruct the unit-budget
// constructions of Theorem 3.7 (Figures 5 and 6): the proofs fix several
// path components ("chains") and the two oscillating edges, and leave only
// a handful of connector edges to the drawing. Assemble enumerates every
// way of adding k connector edges from candidate pools, keeps assemblies
// that are connected with exactly n edges (hence unicyclic), assigns
// unit-budget ownership (every agent owns exactly one incident edge,
// honouring forced assignments), and passes survivors to a checker.

// AssembleSpec describes an assembly family.
type AssembleSpec struct {
	N int
	// Fixed edges always present, given as owner -> vertex where the
	// ownership is forced (the movers own their oscillating edges);
	// ownership of other fixed edges is resolved by the matching.
	ForcedOwned [][2]int
	// Chains are vertex paths whose consecutive pairs are edges.
	Chains [][]int
	// Pools lists, for each of the k connector slots, the candidate
	// endpoints pairs. Slots are filled independently; duplicate edge
	// sets are deduplicated by construction order (slot i index strictly
	// less than slot j index for i < j when pools are identical).
	Pools [][][2]int
	// Check receives each valid assembly (with ownership assigned) and
	// reports whether it satisfies the figure's constraints.
	Check func(g *graph.Graph) bool
	// Limit stops the search after this many hits (0 = unlimited).
	Limit int
}

// Total returns the size of the family's index space: the product of the
// connector-pool sizes. Every index decodes (via At) to one connector
// selection, in the order Run visits them.
func (sp *AssembleSpec) Total() int {
	total := 1
	for _, pool := range sp.Pools {
		total *= len(pool)
	}
	return total
}

// At assembles the idx-th connector selection of the family — slot 0 is
// the most significant digit, matching the nested enumeration order of
// Run — and returns nil if the selection is not a valid unit-budget
// candidate. It does not run Check, so sharded sweeps can split decoding
// from acceptance.
func (sp *AssembleSpec) At(idx int) *graph.Graph {
	sel := make([][2]int, len(sp.Pools))
	for slot := len(sp.Pools) - 1; slot >= 0; slot-- {
		pool := sp.Pools[slot]
		sel[slot] = pool[idx%len(pool)]
		idx /= len(pool)
	}
	return sp.assemble(sp.baseEdges(), sel)
}

// baseEdges lists the fixed edges of every assembly: forced-owned edges
// first, then the chain edges.
func (sp *AssembleSpec) baseEdges() [][2]int {
	base := make([][2]int, 0, sp.N)
	base = append(base, sp.ForcedOwned...)
	for _, ch := range sp.Chains {
		for i := 0; i+1 < len(ch); i++ {
			base = append(base, [2]int{ch[i], ch[i+1]})
		}
	}
	return base
}

// Run enumerates the family and returns the graphs accepted by Check, in
// deterministic order.
func (sp *AssembleSpec) Run() []*graph.Graph {
	base := sp.baseEdges()
	var out []*graph.Graph
	sel := make([][2]int, len(sp.Pools))
	var rec func(slot int)
	rec = func(slot int) {
		if sp.Limit > 0 && len(out) >= sp.Limit {
			return
		}
		if slot == len(sp.Pools) {
			g := sp.assemble(base, sel)
			if g != nil && sp.Check(g) {
				out = append(out, g)
			}
			return
		}
		for _, cand := range sp.Pools[slot] {
			sel[slot] = cand
			rec(slot + 1)
		}
	}
	rec(0)
	return out
}

// assemble builds the graph if the edge set is simple, connected, and has
// exactly N edges with a valid unit-budget ownership.
func (sp *AssembleSpec) assemble(base, connectors [][2]int) *graph.Graph {
	g := graph.New(sp.N)
	edges := make([][2]int, 0, len(base)+len(connectors))
	edges = append(edges, base...)
	edges = append(edges, connectors...)
	if len(edges) != sp.N {
		return nil
	}
	for _, e := range edges {
		if e[0] == e[1] || g.HasEdge(e[0], e[1]) {
			return nil
		}
		g.AddEdge(e[0], e[1])
	}
	if !g.Connected() {
		return nil
	}
	if !AssignUnitOwnership(g, sp.ForcedOwned) {
		return nil
	}
	return g
}

// AssignUnitOwnership reorients edge ownership so that every vertex owns
// exactly one incident edge, keeping the forced assignments. It returns
// false if no such orientation exists. Since the graph is connected with
// n = m, the unique cycle is oriented consistently and every tree edge is
// owned by its far-from-cycle endpoint; forced assignments may conflict,
// which is detected by the matching below.
func AssignUnitOwnership(g *graph.Graph, forced [][2]int) bool {
	n := g.N()
	// owner[e] for each edge index; build edge list and incidence.
	edges := g.Edges()
	if len(edges) != n {
		return false
	}
	forcedOwner := map[[2]int]int{}
	for _, f := range forced {
		forcedOwner[normEdge(f[0], f[1])] = f[0]
	}
	// Bipartite matching agents -> incident edges with forced pairs
	// pre-assigned.
	ownerOf := make([]int, len(edges)) // edge -> agent, -1 unset
	edgeOf := make([]int, n)           // agent -> edge, -1 unset
	incident := make([][]int, n)       // agent -> candidate edge indices
	for i := range ownerOf {
		ownerOf[i] = -1
	}
	for i := range edgeOf {
		edgeOf[i] = -1
	}
	for idx, e := range edges {
		key := normEdge(e.U, e.V)
		if fo, ok := forcedOwner[key]; ok {
			if ownerOf[idx] != -1 || edgeOf[fo] != -1 {
				return false
			}
			ownerOf[idx] = fo
			edgeOf[fo] = idx
			continue
		}
		incident[e.U] = append(incident[e.U], idx)
		incident[e.V] = append(incident[e.V], idx)
	}
	// Augmenting-path matching for the remaining agents.
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, ei := range incident[u] {
			if seen[ei] {
				continue
			}
			seen[ei] = true
			if ownerOf[ei] == -1 || try(ownerOf[ei], seen) {
				ownerOf[ei] = u
				edgeOf[u] = ei
				return true
			}
		}
		return false
	}
	for u := 0; u < n; u++ {
		if edgeOf[u] != -1 {
			continue
		}
		seen := make([]bool, len(edges))
		if !try(u, seen) {
			return false
		}
	}
	// Apply the orientation.
	for idx, e := range edges {
		o := ownerOf[idx]
		if o != e.U && o != e.V {
			return false
		}
		if g.Owner(e.U, e.V) != o {
			g.SetOwner(o, e.U+e.V-o)
		}
	}
	return true
}

func normEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// UniqueCycleLength returns the length of the unique cycle of a connected
// graph with n = m (unit-budget networks), by pruning leaves. It returns 0
// if the graph has no cycle.
func UniqueCycleLength(g *graph.Graph) int {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] <= 1 {
			queue = append(queue, v)
			removed[v] = true
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.Neighbors(v).ForEach(func(w int) {
			if removed[w] {
				return
			}
			deg[w]--
			if deg[w] <= 1 {
				removed[w] = true
				queue = append(queue, w)
			}
		})
	}
	count := 0
	for v := 0; v < n; v++ {
		if !removed[v] {
			count++
		}
	}
	return count
}
