package search

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figure 10 reconstruction: the MAX-(G)BG best response cycle for
// 1 < alpha < 2 on 8 agents a..h (= 0..7). The proof pins the move
// sequence
//
//	G1: g buys ga   (5        -> 3+alpha)
//	G2: e buys ea   (4        -> 2+alpha)
//	G3: g deletes ga (3+alpha -> 4)
//	G4: e deletes ea (3+alpha -> 4)
//
// so the base network B = G1 must satisfy, writing B+X for edge additions:
//
//	ecc_B(g) = 5                (g's cost in G1)
//	ecc_{B+ga}(g) = 3           (g's cost after the buy)
//	ecc_{B+ga}(e) = 4           (e's cost in G2)
//	ecc_{B+ga+ea}(e) = 2        (e's cost in G3)
//	ecc_{B+ea}(g) = 4           (g's deletion target in G3)
//	ecc_{B+ea}(e) = 3           (e's cost in G4)
//
// and g, e own no edges of B. Fig10Candidates enumerates all labeled trees
// on 8 vertices (via Prüfer sequences, deterministically ordered) plus all
// unicyclic augmentations, filters by the eccentricity profile, and then
// requires each of the four moves to be a best response in the MAX Buy
// Game (which subsumes the Greedy Buy Game).

const (
	f10a = iota
	f10b
	f10c
	f10d
	f10e
	f10f
	f10g
	f10h
)

// Fig10Alpha is a rational edge price strictly inside (1, 2).
var Fig10Alpha = game.NewAlpha(3, 2)

// Fig10Candidates returns the base networks satisfying all Figure 10
// constraints, in deterministic order. If unicyclic is true, bases with
// one extra edge beyond a spanning tree are also enumerated (not needed:
// tree bases exist).
func Fig10Candidates(unicyclic bool, limit int) []*graph.Graph {
	var out []*graph.Graph
	prufer := make([]int, 6)
	gm := game.NewBuy(game.Max, Fig10Alpha)
	s := game.NewScratch(8)
	var rec func(pos int)
	rec = func(pos int) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if pos == len(prufer) {
			base := treeWithOwnership(prufer)
			if base == nil {
				return
			}
			if fig10Check(base, gm, s) {
				out = append(out, base)
			}
			if unicyclic {
				for u := 0; u < 8; u++ {
					for v := u + 1; v < 8; v++ {
						if base.HasEdge(u, v) || u == f10e || u == f10g || v == f10e || v == f10g {
							continue
						}
						base.AddEdge(u, v)
						if fig10Check(base, gm, s) {
							out = append(out, base.Clone())
						}
						base.RemoveEdge(u, v)
					}
				}
			}
			return
		}
		for v := 0; v < 8; v++ {
			prufer[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return out
}

// fig10Total is the size of the Figure 10 tree family's index space: one
// index per Prüfer sequence on 8 labels.
const fig10Total = 8 * 8 * 8 * 8 * 8 * 8

// fig10At decodes the idx-th Prüfer sequence — position 0 is the most
// significant digit, matching Fig10Candidates' recursion order — into its
// tree base with the e/g ownership restriction, or nil if impossible.
func fig10At(idx int) *graph.Graph {
	prufer := make([]int, 6)
	for pos := len(prufer) - 1; pos >= 0; pos-- {
		prufer[pos] = idx % 8
		idx /= 8
	}
	return treeWithOwnership(prufer)
}

// treeWithOwnership decodes the Prüfer sequence and assigns ownership so
// that agents e and g own nothing; it returns nil if impossible (an edge
// between e and g).
func treeWithOwnership(prufer []int) *graph.Graph {
	t := decodePrufer(8, prufer)
	if t == nil {
		return nil
	}
	g := graph.New(8)
	for _, e := range t {
		u, v := e[0], e[1]
		if (u == f10e || u == f10g) && (v == f10e || v == f10g) {
			return nil
		}
		// The owner must not be e or g.
		if u == f10e || u == f10g {
			u, v = v, u
		}
		g.AddEdge(u, v)
	}
	return g
}

// decodePrufer returns the edge list of the tree encoded by the sequence.
func decodePrufer(n int, prufer []int) [][2]int {
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, p := range prufer {
		deg[p]++
	}
	edges := make([][2]int, 0, n-1)
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, p := range prufer {
		edges = append(edges, [2]int{leaf, p})
		deg[p]--
		if deg[p] == 1 && p < ptr {
			leaf = p
		} else {
			ptr++
			for ptr < n && deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	edges = append(edges, [2]int{leaf, n - 1})
	return edges
}

// fig10Check applies the eccentricity filters and then the best-response
// requirements of all four cycle steps.
func fig10Check(base *graph.Graph, gm game.Game, s *game.Scratch) bool {
	if !base.Connected() {
		return false
	}
	if base.HasEdge(f10g, f10a) || base.HasEdge(f10e, f10a) {
		return false
	}
	if ecc(base, f10g) != 5 {
		return false
	}
	base.AddEdge(f10g, f10a)
	okGa := ecc(base, f10g) == 3 && ecc(base, f10e) == 4
	if okGa {
		base.AddEdge(f10e, f10a)
		okGa = ecc(base, f10e) == 2
		base.RemoveEdge(f10e, f10a)
	}
	base.RemoveEdge(f10g, f10a)
	if !okGa {
		return false
	}
	base.AddEdge(f10e, f10a)
	ok := ecc(base, f10g) == 4 && ecc(base, f10e) == 3
	base.RemoveEdge(f10e, f10a)
	if !ok {
		return false
	}
	// Best-response requirements, cheapest rejections first.
	steps := []struct {
		move  game.Move
		setup []game.Move
	}{
		{move: game.Move{Agent: f10g, Add: []int{f10a}}},
		{move: game.Move{Agent: f10e, Add: []int{f10a}},
			setup: []game.Move{{Agent: f10g, Add: []int{f10a}}}},
		{move: game.Move{Agent: f10g, Drop: []int{f10a}},
			setup: []game.Move{{Agent: f10g, Add: []int{f10a}}, {Agent: f10e, Add: []int{f10a}}}},
		{move: game.Move{Agent: f10e, Drop: []int{f10a}},
			setup: []game.Move{{Agent: f10e, Add: []int{f10a}}}},
	}
	ok = true
	for _, st := range steps {
		var undo []game.Applied
		for _, m := range st.setup {
			undo = append(undo, game.Apply(base, m))
		}
		if !isBestResponse(base, gm, st.move, s) {
			ok = false
		}
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i].Undo()
		}
		if !ok {
			return false
		}
	}
	return true
}

func ecc(g *graph.Graph, v int) int32 {
	r := g.BFS(v, nil, graph.NewBFSScratch(g.N()))
	if r.Reached < g.N() {
		return graph.Unreachable
	}
	return r.Ecc
}

// isBestResponse reports whether m is among the best responses of its agent.
func isBestResponse(g *graph.Graph, gm game.Game, m game.Move, s *game.Scratch) bool {
	best, bestCost := gm.BestMoves(g, m.Agent, s, nil)
	if len(best) == 0 {
		return false
	}
	ap := game.Apply(g, m)
	c := gm.Cost(g, m.Agent, s)
	ap.Undo()
	return c.Cmp(bestCost, gm.Alpha()) == 0
}
