package search

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Figures 5 and 6 (Theorem 3.7): best response cycles for the SUM-ASG and
// MAX-ASG in which every agent owns exactly one edge. The proofs fix the
// vertex groups, the two oscillating edges and a list of exact distance and
// best-response facts; the remaining connector edges and group shapes are
// reconstructed by assembly search over chains/stars plus connector edges.

// Figure 5 vertex numbering: a1..a5 = 0..4, b1..b3 = 5..7, c1..c7 = 8..14,
// d1..d4 = 15..18.
const (
	f5a1 = 0
	f5a3 = 2
	f5a4 = 3
	f5b1 = 5
	f5c1 = 8
	f5d1 = 15
)

// GroupShape selects how a vertex group is wired internally.
type GroupShape int

const (
	// Chain wires the group as a path in label order.
	Chain GroupShape = iota
	// StarShape wires all later vertices to the group's first vertex.
	StarShape
)

func groupEdges(verts []int, shape GroupShape) [][]int {
	if shape == Chain {
		return [][]int{verts}
	}
	// Star: head vertex first, one 2-chain per leaf.
	var chains [][]int
	for _, v := range verts[1:] {
		chains = append(chains, []int{verts[0], v})
	}
	return chains
}

// Fig5Spec describes one shape combination of the Figure 5 family.
type Fig5Spec struct {
	AShape, BShape, CShape, DShape GroupShape
}

// Candidates enumerates assemblies of the Figure 5 family under the spec's
// shapes and keeps those satisfying the proof's facts:
//
//	G1: a1's only improving move is the swap a1b1 -> a1c1, saving 1;
//	G2: b1's best swaps save 2 and include {a3, a4};
//	G3: a1's only improving move is the swap back to b1, saving 1;
//	G4: b1's only improving move is the swap back to d1, saving 1.
func (sp Fig5Spec) Candidates(limit int) []*graph.Graph {
	gm := game.NewAsymSwap(game.Sum)
	s := game.NewScratch(19)
	return sp.candidatesWith(limit, func(g *graph.Graph) bool {
		return fig5Check(g, gm, s)
	})
}

// candidatesWith runs the Figure 5 assembly family against an arbitrary
// checker.
func (sp Fig5Spec) candidatesWith(limit int, check func(g *graph.Graph) bool) []*graph.Graph {
	return sp.assembleSpec(limit, check).Run()
}

// assembleSpec builds the Figure 5 assembly family of the shape
// combination: the forced oscillating edges, the shaped group chains and
// the three connector pools.
func (sp Fig5Spec) assembleSpec(limit int, check func(g *graph.Graph) bool) *AssembleSpec {
	var poolA, poolC, poolAny [][2]int
	for _, a := range []int{1, 2, 3, 4} {
		for v := 0; v <= 18; v++ {
			if v >= 1 && v <= 4 {
				continue
			}
			poolA = append(poolA, [2]int{a, v})
		}
	}
	for c := 8; c <= 14; c++ {
		for _, v := range []int{0, 1, 2, 3, 4, 5, 6, 7, 15, 16, 17, 18} {
			poolC = append(poolC, [2]int{c, v})
		}
	}
	for u := 0; u <= 18; u++ {
		for v := u + 1; v <= 18; v++ {
			poolAny = append(poolAny, [2]int{u, v})
		}
	}
	var chains [][]int
	chains = append(chains, groupEdges([]int{1, 2, 3, 4}, sp.AShape)...)
	chains = append(chains, groupEdges([]int{5, 6, 7}, sp.BShape)...)
	chains = append(chains, groupEdges([]int{8, 9, 10, 11, 12, 13, 14}, sp.CShape)...)
	chains = append(chains, groupEdges([]int{15, 16, 17, 18}, sp.DShape)...)
	return &AssembleSpec{
		N: 19,
		ForcedOwned: [][2]int{
			{f5a1, f5b1}, // a1 owns her oscillating edge, at b1 in G1
			{f5b1, f5d1}, // b1 owns her oscillating edge, at d1 in G1
		},
		Chains: chains,
		Pools:  [][][2]int{poolA, poolC, poolAny},
		Check:  check,
		Limit:  limit,
	}
}

// Fig5Candidates searches every shape combination in deterministic order.
func Fig5Candidates(limit int) []*graph.Graph {
	var out []*graph.Graph
	for _, a := range []GroupShape{Chain, StarShape} {
		for _, b := range []GroupShape{Chain, StarShape} {
			for _, c := range []GroupShape{Chain, StarShape} {
				for _, d := range []GroupShape{Chain, StarShape} {
					got := Fig5Spec{a, b, c, d}.Candidates(limit - len(out))
					out = append(out, got...)
					if limit > 0 && len(out) >= limit {
						return out
					}
				}
			}
		}
	}
	return out
}

// Fig5CandidatesMinimal relaxes the Figure 5 search to the bare theorem
// requirements: the four designated moves are best responses and the
// trajectory closes. Group shapes are swept as in Fig5Candidates.
func Fig5CandidatesMinimal(limit int) []*graph.Graph {
	gm := game.NewAsymSwap(game.Sum)
	s := game.NewScratch(19)
	var out []*graph.Graph
	for _, a := range []GroupShape{Chain, StarShape} {
		for _, b := range []GroupShape{Chain, StarShape} {
			for _, c := range []GroupShape{Chain, StarShape} {
				for _, d := range []GroupShape{Chain, StarShape} {
					sp := Fig5Spec{a, b, c, d}
					got := sp.candidatesWith(limit-len(out), func(g *graph.Graph) bool {
						return figCycleMinimal(g, gm, s, fig5Moves())
					})
					out = append(out, got...)
					if limit > 0 && len(out) >= limit {
						return out
					}
				}
			}
		}
	}
	return out
}

func fig5Moves() []game.Move {
	return []game.Move{
		{Agent: f5a1, Drop: []int{f5b1}, Add: []int{f5c1}},
		{Agent: f5b1, Drop: []int{f5d1}, Add: []int{f5a4}},
		{Agent: f5a1, Drop: []int{f5c1}, Add: []int{f5b1}},
		{Agent: f5b1, Drop: []int{f5a4}, Add: []int{f5d1}},
	}
}

// figCycleMinimal checks that each designated move is applicable, strictly
// improves and is a best response, and that the trajectory closes exactly.
func figCycleMinimal(g0 *graph.Graph, gm game.Game, s *game.Scratch, moves []game.Move) bool {
	g := g0.Clone()
	alpha := gm.Alpha()
	for _, m := range moves {
		for _, v := range m.Drop {
			if !g.HasEdge(m.Agent, v) {
				return false
			}
		}
		for _, v := range m.Add {
			if v == m.Agent || g.HasEdge(m.Agent, v) {
				return false
			}
		}
		cur := gm.Cost(g, m.Agent, s)
		ap := game.Apply(g, m)
		after := gm.Cost(g, m.Agent, s)
		ap.Undo()
		if !after.Less(cur, alpha) {
			return false
		}
		_, bestCost := gm.BestMoves(g, m.Agent, s, nil)
		if after.Cmp(bestCost, alpha) != 0 {
			return false
		}
		game.Apply(g, m)
	}
	return g.Equal(g0)
}

func fig5Check(g0 *graph.Graph, gm game.Game, s *game.Scratch) bool {
	g := g0.Clone()
	// G1: a1's unique improving move is b1 -> c1 with delta 1.
	if !uniqueImprovingSwap(g, gm, s, f5a1, f5b1, f5c1, 1) {
		return false
	}
	game.Apply(g, game.Move{Agent: f5a1, Drop: []int{f5b1}, Add: []int{f5c1}})
	// G2: b1's best swaps: delta 2, targets including {a3, a4}.
	if !bestSwapTargets(g, gm, s, f5b1, f5d1, []int{f5a3, f5a4}, 2, false) {
		return false
	}
	game.Apply(g, game.Move{Agent: f5b1, Drop: []int{f5d1}, Add: []int{f5a4}})
	// G3: a1's unique improving move is c1 -> b1 with delta 1.
	if !uniqueImprovingSwap(g, gm, s, f5a1, f5c1, f5b1, 1) {
		return false
	}
	game.Apply(g, game.Move{Agent: f5a1, Drop: []int{f5c1}, Add: []int{f5b1}})
	// G4: b1's unique improving move is a4 -> d1 with delta 1.
	if !uniqueImprovingSwap(g, gm, s, f5b1, f5a4, f5d1, 1) {
		return false
	}
	game.Apply(g, game.Move{Agent: f5b1, Drop: []int{f5a4}, Add: []int{f5d1}})
	return g.Equal(g0)
}

// Figure 6 vertex numbering: a1..a6 = 0..5, b1..b4 = 6..9, c1 = 10,
// d1..d3 = 11..13, e1..e6 = 14..19.
const (
	f6a1 = 0
	f6a2 = 1
	f6a3 = 2
	f6a6 = 5
	f6b1 = 6
	f6b4 = 9
	f6d3 = 13
	f6e1 = 14
	f6e2 = 15
	f6e3 = 16
	f6e4 = 17
	f6e5 = 18
	f6e6 = 19
)

// Fig6Options tune the search filters; the strict setting encodes every
// prose fact literally, the relaxed setting drops the facts most likely to
// depend on unstated drawing details (the 9-cycle and d(a1,a6) = 5).
type Fig6Options struct {
	RequireCycle9  bool
	RequireA6Dist5 bool
	ExactG1Targets bool // best targets exactly {e2..e5} vs superset
	ExactG2Targets bool // exactly {a2,a3} vs superset
}

// Fig6Candidates reconstructs the Figure 6 (MAX-ASG, unit budget) network
// from the proof's facts:
//
//	G1: ecc(a1) = 6 (and d(a1,a6) = 5); a1's best swaps save 1 and include
//	    {e2..e5};
//	G2: (the unique cycle has length 9;) ecc(b1) = 6; b1's best swaps save
//	    1 and include {a2, a3};
//	G3: ecc(a1) = 7 at d3, d(a1,b4) = 6; a1's best swaps are exactly
//	    {e1,e2,e3};
//	G4: ecc(b1) = 8 at e6; b1's best swaps are exactly {a1, e1}.
func Fig6Candidates(opt Fig6Options, limit int) []*graph.Graph {
	gm := game.NewAsymSwap(game.Max)
	s := game.NewScratch(20)
	return fig6CandidatesWith(limit, func(g *graph.Graph) bool {
		return fig6Check(g, gm, s, opt)
	})
}

// Fig6CandidatesMinimal relaxes the Figure 6 search to the bare theorem
// requirements: the four designated moves (a1: e1->e5, b1: a1->a3,
// a1: e5->e1, b1: a3->a1) are best responses and the trajectory closes.
func Fig6CandidatesMinimal(limit int) []*graph.Graph {
	gm := game.NewAsymSwap(game.Max)
	s := game.NewScratch(20)
	moves := fig6Moves()
	return fig6CandidatesWith(limit, func(g *graph.Graph) bool {
		return figCycleMinimal(g, gm, s, moves)
	})
}

// fig6Moves is the designated four-move best-response cycle of Figure 6.
func fig6Moves() []game.Move {
	return []game.Move{
		{Agent: f6a1, Drop: []int{f6e1}, Add: []int{f6e5}},
		{Agent: f6b1, Drop: []int{f6a1}, Add: []int{f6a3}},
		{Agent: f6a1, Drop: []int{f6e5}, Add: []int{f6e1}},
		{Agent: f6b1, Drop: []int{f6a3}, Add: []int{f6a1}},
	}
}

func fig6CandidatesWith(limit int, check func(g *graph.Graph) bool) []*graph.Graph {
	return fig6AssembleSpec(limit, check).Run()
}

// fig6AssembleSpec builds the Figure 6 assembly family: the two forced
// oscillating edges, the four fixed chains and the four connector pools.
func fig6AssembleSpec(limit int, check func(g *graph.Graph) bool) *AssembleSpec {
	others := func(excl ...int) []int {
		ex := map[int]bool{14: true} // e1 is saturated
		for _, e := range excl {
			ex[e] = true
		}
		var vs []int
		for v := 0; v < 20; v++ {
			if !ex[v] {
				vs = append(vs, v)
			}
		}
		return vs
	}
	var poolA, poolC, poolD, poolAny [][2]int
	for _, a := range []int{1, 2, 3, 4, 5} {
		for _, v := range others(1, 2, 3, 4, 5) {
			poolA = append(poolA, [2]int{a, v})
		}
	}
	for _, v := range others(10) {
		poolC = append(poolC, [2]int{10, v})
	}
	for _, d := range []int{11, 12, 13} {
		for _, v := range others(11, 12, 13) {
			poolD = append(poolD, [2]int{d, v})
		}
	}
	for _, u := range others() {
		for _, v := range others() {
			if u < v {
				poolAny = append(poolAny, [2]int{u, v})
			}
		}
	}
	return &AssembleSpec{
		N: 20,
		ForcedOwned: [][2]int{
			{f6a1, f6e1}, // a1 owns her oscillating edge, at e1 in G1
			{f6b1, f6a1}, // b1 owns her oscillating edge, at a1 in G1
		},
		Chains: [][]int{
			{1, 2, 3, 4, 5},          // a2-...-a6
			{6, 7, 8, 9},             // b1-...-b4
			{11, 12, 13},             // d1-d2-d3
			{14, 15, 16, 17, 18, 19}, // e1-...-e6
		},
		Pools: [][][2]int{poolA, poolC, poolD, poolAny},
		Check: check,
		Limit: limit,
	}
}

func fig6Check(g0 *graph.Graph, gm game.Game, s *game.Scratch, opt Fig6Options) bool {
	dist := make([]int32, 20)
	// G1 filters: ecc(a1) = 6 (and optionally d(a1, a6) = 5).
	r := g0.BFS(f6a1, dist, graph.NewBFSScratch(20))
	if r.Reached < 20 || r.Ecc != 6 {
		return false
	}
	if opt.RequireA6Dist5 && dist[f6a6] != 5 {
		return false
	}
	g := g0.Clone()
	// G1: a1's best swaps reach {e2, e3, e4, e5} at ecc 5.
	if !bestSwapTargets(g, gm, s, f6a1, f6e1, []int{f6e2, f6e3, f6e4, f6e5}, 1, opt.ExactG1Targets) {
		return false
	}
	game.Apply(g, game.Move{Agent: f6a1, Drop: []int{f6e1}, Add: []int{f6e5}})
	// G2: (unique cycle length 9;) b1's best swaps to {a2, a3}.
	if opt.RequireCycle9 && UniqueCycleLength(g) != 9 {
		return false
	}
	if !bestSwapTargets(g, gm, s, f6b1, f6a1, []int{f6a2, f6a3}, 1, opt.ExactG2Targets) {
		return false
	}
	game.Apply(g, game.Move{Agent: f6b1, Drop: []int{f6a1}, Add: []int{f6a3}})
	// G3: ecc(a1) = 7 realized at d3; d(a1, b4) = 6.
	r = g.BFS(f6a1, dist, graph.NewBFSScratch(20))
	if r.Ecc != 7 || dist[f6d3] != 7 || dist[f6b4] != 6 {
		return false
	}
	if !bestSwapTargets(g, gm, s, f6a1, f6e5, []int{f6e1, f6e2, f6e3}, 1, true) {
		return false
	}
	game.Apply(g, game.Move{Agent: f6a1, Drop: []int{f6e5}, Add: []int{f6e1}})
	// G4: ecc(b1) = 8 realized at e6; best swaps exactly {a1, e1}.
	r = g.BFS(f6b1, dist, graph.NewBFSScratch(20))
	if r.Ecc != 8 || dist[f6e6] != 8 {
		return false
	}
	if !bestSwapTargets(g, gm, s, f6b1, f6a3, []int{f6a1, f6e1}, 1, true) {
		return false
	}
	game.Apply(g, game.Move{Agent: f6b1, Drop: []int{f6a3}, Add: []int{f6a1}})
	return g.Equal(g0)
}

// uniqueImprovingSwap reports whether agent u's only improving move is the
// swap drop -> add with the given cost decrease.
func uniqueImprovingSwap(g *graph.Graph, gm game.Game, s *game.Scratch, u, drop, add int, delta int64) bool {
	ms := gm.ImprovingMoves(g, u, s, nil)
	if len(ms) != 1 {
		return false
	}
	want := game.Move{Agent: u, Drop: []int{drop}, Add: []int{add}}
	if !ms[0].Equal(want) {
		return false
	}
	cur := gm.Cost(g, u, s)
	ap := game.Apply(g, ms[0])
	after := gm.Cost(g, u, s)
	ap.Undo()
	return cur.Dist-after.Dist == delta
}

// bestSwapTargets reports whether agent u's best moves all drop `drop`,
// save exactly delta, and target the given set (exactly when exact is set,
// as a superset otherwise).
func bestSwapTargets(g *graph.Graph, gm game.Game, s *game.Scratch, u, drop int, targets []int, delta int64, exact bool) bool {
	best, c := gm.BestMoves(g, u, s, nil)
	if len(best) < len(targets) || (exact && len(best) != len(targets)) {
		return false
	}
	cur := gm.Cost(g, u, s)
	if cur.Dist-c.Dist != delta {
		return false
	}
	seen := map[int]bool{}
	for _, m := range best {
		if len(m.Drop) != 1 || m.Drop[0] != drop || len(m.Add) != 1 {
			return false
		}
		seen[m.Add[0]] = true
	}
	for _, t := range targets {
		if !seen[t] {
			return false
		}
	}
	return true
}

// FigCycleMinimalForTest exposes figCycleMinimal for construction searches.
func FigCycleMinimalForTest(g *graph.Graph, gm game.Game, s *game.Scratch, moves []game.Move) bool {
	return figCycleMinimal(g, gm, s, moves)
}
