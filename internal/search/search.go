// Package search reconstructs the paper's figure constructions whose exact
// graphs are given only as drawings, by enumerating candidate graphs under
// the structural constraints stated in the proofs:
//
//   - Figure 2 (MAX-SG best response cycle): the 9-vertex instance is
//     invariant under the rotation a->b->c->a outside the rotating edge, so
//     candidates are unions of rotation orbits of vertex pairs (2^11).
//   - Figure 10 (MAX-(G)BG best response cycle): the 8-vertex base network
//     is enumerated over all labeled trees (Prüfer sequences) and unicyclic
//     graphs, filtered by the eccentricity facts quoted in the proof.
//
// The searches are deterministic, so the instances they return are stable
// across runs; the cycles package pins the found graphs and verifies every
// claim via cycles.Instance.Verify.
package search

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Fig2Rotation is the vertex permutation sigma of the Figure 2 search:
// a_i -> b_i -> c_i -> a_i with vertex numbering a1,a2,a3,b1,b2,b3,c1,c2,c3
// = 0..8.
func Fig2Rotation(v int) int { return (v + 3) % 9 }

// fig2Orbits lists the rotation orbits of unordered vertex pairs on 9
// vertices, excluding the orbit of the rotating edge {a1,b1} itself.
func fig2Orbits() [][][2]int {
	seen := map[[2]int]bool{}
	var orbits [][][2]int
	for u := 0; u < 9; u++ {
		for v := u + 1; v < 9; v++ {
			p := [2]int{u, v}
			if seen[p] {
				continue
			}
			var orbit [][2]int
			a, b := u, v
			for {
				q := [2]int{min(a, b), max(a, b)}
				if seen[q] {
					break
				}
				seen[q] = true
				orbit = append(orbit, q)
				a, b = Fig2Rotation(a), Fig2Rotation(b)
			}
			// Exclude the {a1,b1} orbit: it contains the rotating edge.
			if orbit[0] == [2]int{0, 3} {
				continue
			}
			orbits = append(orbits, orbit)
		}
	}
	return orbits
}

// Fig2Candidates enumerates every 9-vertex network of the Figure 2 family
// that satisfies the proof's stated facts:
//
//   - G1 = H + {a1,b1} + {b1,c1} for a rotation-invariant H;
//   - G1 is connected with eccentricities 3 for a1, a3, b3, c3 and 2 for
//     all other agents;
//   - a1 is the only unhappy agent of the MAX-SG, and the swap
//     a1b1 -> a1c1 is a best response (achieving eccentricity 2).
//
// It returns the candidates in deterministic (mask) order.
func Fig2Candidates() []*graph.Graph {
	const (
		a1, a2, a3 = 0, 1, 2
		b1, b3     = 3, 5
		c1, c3     = 6, 8
	)
	orbits := fig2Orbits()
	gm := game.NewSwap(game.Max)
	s := game.NewScratch(9)
	var out []*graph.Graph
	for mask := 0; mask < 1<<len(orbits); mask++ {
		g := graph.New(9)
		for i, orbit := range orbits {
			if mask&(1<<i) == 0 {
				continue
			}
			for _, p := range orbit {
				g.AddEdge(p[0], p[1])
			}
		}
		// The rotating edge sits at a1-b1; b1-c1 is its rotated sibling
		// still present in G1 (it is swapped away only two steps later).
		g.AddEdge(a1, b1)
		g.AddEdge(b1, c1)
		if !g.Connected() {
			continue
		}
		if !fig2EccProfile(g) {
			continue
		}
		// Exactly one unhappy agent: a1.
		if !fig2UnhappyOnlyA1(g, gm, s) {
			continue
		}
		// a1's best response reaches eccentricity 2 and the designated
		// swap a1b1 -> a1c1 attains it.
		best, c := gm.BestMoves(g, a1, s, nil)
		if c.Dist != 2 {
			continue
		}
		want := game.Move{Agent: a1, Drop: []int{b1}, Add: []int{c1}}
		found := false
		for _, m := range best {
			if m.Equal(want) {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		out = append(out, g)
	}
	return out
}

func fig2EccProfile(g *graph.Graph) bool {
	ecc := g.Eccentricities()
	for v, e := range ecc {
		want := int32(2)
		switch v {
		case 0, 2, 5, 8: // a1, a3, b3, c3
			want = 3
		}
		if e != want {
			return false
		}
	}
	return true
}

func fig2UnhappyOnlyA1(g *graph.Graph, gm game.Game, s *game.Scratch) bool {
	for u := 0; u < 9; u++ {
		if gm.HasImproving(g, u, s) != (u == 0) {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
