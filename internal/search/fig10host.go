package search

import (
	"ncg/internal/game"
	"ncg/internal/graph"
)

// Fig10HostGraph returns the Corollary 4.2 (MAX) host graph for a base:
// the base network plus the edges {a,g} and {a,e}.
func Fig10HostGraph(base *graph.Graph) *graph.Graph {
	h := base.Clone()
	h.AddEdge(f10a, f10g)
	h.AddEdge(f10a, f10e)
	return h
}

// fig10Moves is the designated 4-step cycle.
func fig10Moves() []game.Move {
	return []game.Move{
		{Agent: f10g, Add: []int{f10a}},
		{Agent: f10e, Add: []int{f10a}},
		{Agent: f10g, Drop: []int{f10a}},
		{Agent: f10e, Drop: []int{f10a}},
	}
}

// Fig10HostCandidates filters Fig10Candidates down to bases that also
// witness Corollary 4.2 (MAX) on the host graph base + {ag, ae}: in every
// state of the cycle, exactly one agent is unhappy (the designated mover)
// and she has exactly one improving move (the designated one), in both the
// Greedy Buy Game and the unrestricted Buy Game. For such bases the
// improving-move dynamics are fully forced, so no sequence of improving
// moves can ever stabilize.
// Ownership of base edges not incident to e or g is a free parameter of
// the reconstruction (the proof never constrains it), so every assignment
// is tried.
func Fig10HostCandidates(unicyclic bool, limit int) []*graph.Graph {
	var out []*graph.Graph
	for _, base := range Fig10Candidates(unicyclic, 0) {
		for _, owned := range ownershipVariants(base, []int{f10e, f10g}) {
			if fig10HostCheck(owned) {
				out = append(out, owned)
				break // one ownership witness per base suffices
			}
		}
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// ownershipVariants enumerates every ownership assignment of g's edges in
// which no vertex of ownless owns an edge.
func ownershipVariants(g *graph.Graph, ownless []int) []*graph.Graph {
	noOwn := map[int]bool{}
	for _, v := range ownless {
		noOwn[v] = true
	}
	var free [][2]int
	base := g.Clone()
	for _, e := range g.Edges() {
		switch {
		case noOwn[e.U] && noOwn[e.V]:
			return nil
		case noOwn[e.U]:
			base.SetOwner(e.V, e.U)
		case noOwn[e.V]:
			base.SetOwner(e.U, e.V)
		default:
			free = append(free, [2]int{e.U, e.V})
		}
	}
	variants := make([]*graph.Graph, 0, 1<<len(free))
	for mask := 0; mask < 1<<len(free); mask++ {
		v := base.Clone()
		for i, e := range free {
			if mask&(1<<i) != 0 {
				v.SetOwner(e[1], e[0])
			} else {
				v.SetOwner(e[0], e[1])
			}
		}
		variants = append(variants, v)
	}
	return variants
}

func fig10HostCheck(base *graph.Graph) bool {
	host := Fig10HostGraph(base)
	s := game.NewScratch(8)
	for _, gm := range []game.Game{
		game.NewGreedyBuyHost(game.Max, Fig10Alpha, host),
		game.NewBuyHost(game.Max, Fig10Alpha, host),
	} {
		g := base.Clone()
		for _, mv := range fig10Moves() {
			for u := 0; u < 8; u++ {
				ms := gm.ImprovingMoves(g, u, s, nil)
				if u == mv.Agent {
					if len(ms) != 1 || !ms[0].Equal(mv) {
						return false
					}
				} else if len(ms) != 0 {
					return false
				}
			}
			game.Apply(g, mv)
		}
		if !g.Equal(base) {
			return false
		}
	}
	return true
}

// OwnershipVariantsForTest exposes ownershipVariants for diagnostics.
func OwnershipVariantsForTest(g *graph.Graph, ownless []int) []*graph.Graph {
	return ownershipVariants(g, ownless)
}
