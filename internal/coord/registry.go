package coord

// Multi-campaign hosting: a Registry runs any number of campaigns in one
// process, each with its own state directory, manifest, lease table and
// coordinator instance, under campaign-scoped routes. Crash isolation is
// the contract: one campaign's injected crash, manifest damage or failed
// open never touches a sibling — its routes answer 503 + Retry-After
// while the others keep serving, and (with AutoRestart) a supervisor
// goroutine reopens the crashed campaign from its own directory exactly
// as `ncghunt serve` restarted by hand would.
//
//	GET /healthz             process liveness (always 200 while serving)
//	GET /readyz              200 when every hosted campaign is live;
//	                         503 + JSON {"down":[names]} otherwise
//	GET /v1/campaigns        the hosted campaigns and their states
//	ANY /c/{name}/v1/...     the named campaign's coordinator API
//	ANY /v1/...              the mounted default campaign (single-
//	                         campaign deployments keep their flat routes)

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"regexp"
	"sync"
	"time"
)

// RegistryConfig shapes a multi-campaign registry.
type RegistryConfig struct {
	// Dir is the root state directory: campaign "name" lives in Dir/name
	// unless its Config.Dir says otherwise.
	Dir string
	// AutoRestart, when positive, reopens a crashed campaign from its
	// directory after this delay, retrying until it succeeds or the
	// registry closes (0: crashed campaigns stay down until Restart).
	AutoRestart time.Duration
	// RetryAfter is the hint sent with 503s for a down campaign (0: the
	// AutoRestart delay, else 1s).
	RetryAfter time.Duration
	// Logf, if non-nil, receives one line per registry event.
	Logf func(format string, args ...any)
}

// campaignNameRe bounds hosted campaign names to path-safe tokens.
var campaignNameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// hosted is one campaign slot: its (re)open configuration and the live
// coordinator, nil while crashed or permanently failed.
type hosted struct {
	name     string
	cfg      Config
	cur      *Coordinator
	handler  http.Handler
	err      error // last open/crash cause while cur == nil
	restarts int
}

// Registry hosts many campaigns in one process.
type Registry struct {
	cfg RegistryConfig

	mu     sync.Mutex
	camps  map[string]*hosted
	order  []string
	def    string // campaign served on the flat /v1/... routes
	closed bool
	stop   chan struct{} // closed by Close; releases supervisors
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.RetryAfter <= 0 {
		if cfg.AutoRestart > 0 {
			cfg.RetryAfter = cfg.AutoRestart
		} else {
			cfg.RetryAfter = time.Second
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Registry{cfg: cfg, camps: make(map[string]*hosted), stop: make(chan struct{})}
}

// Add opens a campaign under the given name and hosts it at
// /c/<name>/v1/.... An open failure (damaged manifest, foreign
// fingerprint) is returned to the caller and hosts nothing — it cannot
// affect sibling campaigns. The first added campaign becomes the default
// for the flat /v1/... routes; Mount changes that.
func (r *Registry) Add(name string, cfg Config) (*Coordinator, error) {
	if !campaignNameRe.MatchString(name) {
		return nil, fmt.Errorf("coord: bad campaign name %q", name)
	}
	if cfg.Dir == "" {
		if r.cfg.Dir == "" {
			return nil, fmt.Errorf("coord: campaign %s needs a state directory (Config.Dir or RegistryConfig.Dir)", name)
		}
		cfg.Dir = filepath.Join(r.cfg.Dir, name)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("coord: registry closed")
	}
	if _, dup := r.camps[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("coord: campaign %s already hosted", name)
	}
	r.mu.Unlock()
	c, err := Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("coord: campaign %s: %w", name, err)
	}
	h := &hosted{name: name, cfg: cfg, cur: c, handler: c.Handler()}
	r.mu.Lock()
	r.camps[name] = h
	r.order = append(r.order, name)
	if r.def == "" {
		r.def = name
	}
	r.mu.Unlock()
	go r.supervise(h, c)
	return c, nil
}

// supervise watches one coordinator instance for injected crashes and —
// with AutoRestart — brings it back from its own directory. A sibling
// campaign's coordinator is a different instance with a different
// supervisor; nothing here is shared but the registry map. Supervision
// outlives the merge: a merged campaign keeps serving status and stream
// reads, and a crash while doing so still needs the restart path.
func (r *Registry) supervise(h *hosted, c *Coordinator) {
	select {
	case <-r.stop:
		return
	case <-c.Crashed():
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	h.cur, h.handler = nil, nil
	h.err = fmt.Errorf("campaign %s crashed", h.name)
	auto := r.cfg.AutoRestart
	r.mu.Unlock()
	r.cfg.Logf("registry: campaign %s crashed", h.name)
	if auto <= 0 {
		return
	}
	for {
		select {
		case <-r.stop:
			return
		case <-time.After(auto):
		}
		c2, err := Open(h.cfg)
		if err != nil {
			r.cfg.Logf("registry: campaign %s reopen failed: %v", h.name, err)
			r.mu.Lock()
			h.err = err
			r.mu.Unlock()
			continue
		}
		r.mu.Lock()
		h.cur, h.handler, h.err = c2, c2.Handler(), nil
		h.restarts++
		r.mu.Unlock()
		r.cfg.Logf("registry: campaign %s restarted (%d restarts)", h.name, h.restarts)
		go r.supervise(h, c2)
		return
	}
}

// Restart manually reopens a crashed campaign from its directory.
func (r *Registry) Restart(name string) (*Coordinator, error) {
	r.mu.Lock()
	h, ok := r.camps[name]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("coord: campaign %s not hosted", name)
	}
	if h.cur != nil {
		c := h.cur
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	c, err := Open(h.cfg)
	if err != nil {
		r.mu.Lock()
		h.err = err
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Lock()
	h.cur, h.handler, h.err = c, c.Handler(), nil
	h.restarts++
	r.mu.Unlock()
	go r.supervise(h, c)
	return c, nil
}

// Mount selects the campaign served on the flat /v1/... routes.
func (r *Registry) Mount(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.camps[name]; !ok {
		return fmt.Errorf("coord: campaign %s not hosted", name)
	}
	r.def = name
	return nil
}

// Get returns the named campaign's live coordinator, or nil while it is
// down (or was never hosted).
func (r *Registry) Get(name string) *Coordinator {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.camps[name]; ok {
		return h.cur
	}
	return nil
}

// Names lists the hosted campaigns in Add order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Restarts reports how many times the named campaign was reopened.
func (r *Registry) Restarts(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.camps[name]; ok {
		return h.restarts
	}
	return 0
}

// Close stops supervision and closes every live coordinator. State
// directories remain resumable.
func (r *Registry) Close() error {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.stop)
	}
	var coords []*Coordinator
	for _, h := range r.camps {
		if h.cur != nil {
			coords = append(coords, h.cur)
		}
	}
	r.mu.Unlock()
	var first error
	for _, c := range coords {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CampaignInfo is one row of GET /v1/campaigns.
type CampaignInfo struct {
	Name     string  `json:"name"`
	Live     bool    `json:"live"`
	Restarts int     `json:"restarts"`
	Error    string  `json:"error,omitempty"`
	Status   *Status `json:"status,omitempty"`
}

// Handler serves the registry's multi-campaign API.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", r.handleReadyz)
	mux.HandleFunc("GET /v1/campaigns", r.handleCampaigns)
	mux.HandleFunc("/c/{name}/{rest...}", func(w http.ResponseWriter, req *http.Request) {
		r.forward(w, req, req.PathValue("name"), "/"+req.PathValue("rest"))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		def := r.def
		r.mu.Unlock()
		if def == "" {
			http.Error(w, "no campaigns hosted", http.StatusNotFound)
			return
		}
		r.forward(w, req, def, req.URL.Path)
	})
	return mux
}

// forward routes one request into a hosted campaign's coordinator; a
// campaign that is down (crashed, mid-restart) answers 503 with a
// Retry-After hint, exactly what the worker and watch retry loops pace
// themselves by.
func (r *Registry) forward(w http.ResponseWriter, req *http.Request, name, path string) {
	r.mu.Lock()
	h, ok := r.camps[name]
	var handler http.Handler
	var openErr error
	if ok {
		handler, openErr = h.handler, h.err
	}
	r.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("campaign %s not hosted", name), http.StatusNotFound)
		return
	}
	if handler == nil {
		w.Header().Set("Retry-After", retryAfterSeconds(r.cfg.RetryAfter))
		http.Error(w, fmt.Sprintf("campaign %s unavailable: %v", name, openErr), http.StatusServiceUnavailable)
		return
	}
	req2 := req.Clone(req.Context())
	req2.URL.Path = path
	req2.URL.RawPath = ""
	handler.ServeHTTP(w, req2)
}

// handleReadyz: ready means every hosted campaign is live. A process
// whose campaigns are all serving is safe to route to; one with a
// campaign down keeps /healthz green (the process is fine) but drops out
// of readiness so load balancers drain politely.
func (r *Registry) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	var down []string
	for _, name := range r.order {
		if r.camps[name].cur == nil {
			down = append(down, name)
		}
	}
	n := len(r.order)
	r.mu.Unlock()
	if len(down) > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(r.cfg.RetryAfter))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "down": down})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"ready": true, "campaigns": n})
}

func (r *Registry) handleCampaigns(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	infos := make([]CampaignInfo, 0, len(r.order))
	var live []*Coordinator
	for _, name := range r.order {
		h := r.camps[name]
		info := CampaignInfo{Name: name, Live: h.cur != nil, Restarts: h.restarts}
		if h.err != nil {
			info.Error = h.err.Error()
		}
		infos = append(infos, info)
		live = append(live, h.cur)
	}
	r.mu.Unlock()
	// Status snapshots happen outside the registry lock: a campaign's own
	// mutex is never held under r.mu, so a slow sibling cannot stall the
	// listing (and a crashed one contributes no snapshot at all).
	for i, c := range live {
		if c != nil {
			st := c.Status()
			infos[i].Status = &st
		}
	}
	reply(w, infos)
}
