package coord

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ncg/internal/rng"
)

// scriptedServer runs a handler script: each incoming call is answered by
// script[min(call, len-1)], under a mutex so call counts and timestamps
// are race-free.
type scriptedServer struct {
	mu     sync.Mutex
	calls  int
	times  []time.Time
	script []func(w http.ResponseWriter)
	srv    *httptest.Server
}

func newScriptedServer(t *testing.T, script ...func(w http.ResponseWriter)) *scriptedServer {
	s := &scriptedServer{script: script}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		step := s.calls
		if step >= len(s.script) {
			step = len(s.script) - 1
		}
		s.calls++
		s.times = append(s.times, time.Now())
		s.script[step](w)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *scriptedServer) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *scriptedServer) gap(i, j int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.times[j].Sub(s.times[i])
}

func refuse(status int, retryAfter string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		http.Error(w, "scripted refusal", status)
	}
}

func okEmpty(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{}")
}

func testWorkerLoop(srv *scriptedServer, maxRetries, budget int) *workerLoop {
	return &workerLoop{
		cfg: WorkerConfig{
			URL: srv.srv.URL, Client: srv.srv.Client(),
			RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
			MaxRetries: maxRetries, AttemptBudget: budget,
			Logf: func(string, ...any) {},
		},
		jitter: rng.NewStream(1),
	}
}

// TestWorkerHonorsRetryAfter pins the pacing contract: a 503 carrying
// Retry-After delays the next attempt by the server's hint, not by the
// (much smaller) computed backoff.
func TestWorkerHonorsRetryAfter(t *testing.T) {
	srv := newScriptedServer(t,
		refuse(http.StatusServiceUnavailable, "1"),
		func(w http.ResponseWriter) { okEmpty(w) },
	)
	w := testWorkerLoop(srv, 5, 100)
	var resp struct{}
	if err := w.callRetry(context.Background(), "/v1/lease", struct{}{}, &resp); err != nil {
		t.Fatalf("callRetry: %v", err)
	}
	if n := srv.callCount(); n != 2 {
		t.Fatalf("calls = %d, want 2", n)
	}
	if gap := srv.gap(0, 1); gap < 900*time.Millisecond {
		t.Fatalf("retry came %v after the 503; Retry-After: 1 was not honored", gap)
	}
	if w.stats.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", w.stats.Retries)
	}
}

// TestWorkerAttemptBudgetExhausted pins the lifetime cap: against a
// permanently unavailable coordinator the worker stops after AttemptBudget
// failed calls even though MaxRetries alone would keep it going.
func TestWorkerAttemptBudgetExhausted(t *testing.T) {
	srv := newScriptedServer(t, refuse(http.StatusServiceUnavailable, ""))
	w := testWorkerLoop(srv, 100, 3)
	var resp struct{}
	err := w.callRetry(context.Background(), "/v1/lease", struct{}{}, &resp)
	if err == nil || !strings.Contains(err.Error(), "attempt budget") {
		t.Fatalf("err = %v, want attempt-budget exhaustion", err)
	}
	if n := srv.callCount(); n != 3 {
		t.Fatalf("calls = %d, want exactly the budget of 3", n)
	}
}

// TestWorkerBudgetSpansCalls pins that AttemptBudget is cumulative across
// callRetry invocations — a flapping coordinator that fails a little on
// every call eventually exhausts the worker, where per-call MaxRetries
// never would.
func TestWorkerBudgetSpansCalls(t *testing.T) {
	srv := newScriptedServer(t,
		refuse(http.StatusServiceUnavailable, ""),
		func(w http.ResponseWriter) { okEmpty(w) },
		refuse(http.StatusServiceUnavailable, ""),
		func(w http.ResponseWriter) { okEmpty(w) },
		refuse(http.StatusServiceUnavailable, ""),
	)
	w := testWorkerLoop(srv, 100, 3)
	var resp struct{}
	for i := 0; i < 2; i++ {
		if err := w.callRetry(context.Background(), "/v1/lease", struct{}{}, &resp); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Two failures consumed; the third flap trips the lifetime budget.
	err := w.callRetry(context.Background(), "/v1/lease", struct{}{}, &resp)
	if err == nil || !strings.Contains(err.Error(), "attempt budget") {
		t.Fatalf("err = %v, want attempt-budget exhaustion on the third flap", err)
	}
}

// TestWorker429IsTransient pins classification: 429 (admission control)
// retries like a 5xx instead of failing fast like other 4xx.
func TestWorker429IsTransient(t *testing.T) {
	srv := newScriptedServer(t,
		refuse(http.StatusTooManyRequests, ""),
		refuse(http.StatusTooManyRequests, ""),
		func(w http.ResponseWriter) { okEmpty(w) },
	)
	w := testWorkerLoop(srv, 10, 100)
	var resp struct{}
	if err := w.callRetry(context.Background(), "/v1/lease", struct{}{}, &resp); err != nil {
		t.Fatalf("callRetry: %v", err)
	}
	if n := srv.callCount(); n != 3 {
		t.Fatalf("calls = %d, want 3", n)
	}
}

// TestWorker4xxIsPermanent pins the fail-fast side: a non-429 4xx (the
// fingerprint-mismatch class) returns immediately as permanent — one
// call, no backoff, no budget consumed.
func TestWorker4xxIsPermanent(t *testing.T) {
	srv := newScriptedServer(t, refuse(http.StatusConflict, ""))
	w := testWorkerLoop(srv, 100, 100)
	var resp struct{}
	start := time.Now()
	err := w.callRetry(context.Background(), "/v1/lease", struct{}{}, &resp)
	var perm errPermanent
	if err == nil || !errors.As(err, &perm) {
		t.Fatalf("err = %v, want errPermanent", err)
	}
	if n := srv.callCount(); n != 1 {
		t.Fatalf("calls = %d, want 1 (permanent rejections never retry)", n)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("permanent rejection took %v; must fail fast", time.Since(start))
	}
	if w.attempts != 0 {
		t.Fatalf("attempts = %d; permanent rejections must not consume the budget", w.attempts)
	}
}

// TestBackoffDelayBounds pins the jittered exponential schedule: each
// delay lies in [d/2, d) for the capped exponential d, so a fleet never
// synchronizes on a restarting coordinator.
func TestBackoffDelayBounds(t *testing.T) {
	jitter := rng.NewStream(42)
	base, max := 100*time.Millisecond, 5*time.Second
	for attempt := 0; attempt < 20; attempt++ {
		d := base << uint(attempt)
		if d > max || d <= 0 {
			d = max
		}
		got := backoffDelay(&jitter, base, max, attempt)
		if got < d/2 || got > d {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, d/2, d)
		}
	}
}
