package coord

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ncg/internal/campaign"
	"ncg/internal/game"
)

// testCampaign is the small deterministic hunt grid the coordinator tests
// distribute: two samplers (one random, one enumerated single-instance)
// crossed with two swap variants.
func testCampaign() campaign.Campaign {
	return campaign.Campaign{
		Name:     "coord-test",
		Samplers: []campaign.Sampler{campaign.TreeSampler(), campaign.DirectedLineSampler()},
		Variants: []campaign.Variant{
			{Name: "sum-sg", New: func(int) game.Game { return game.NewSwap(game.Sum) }},
			{Name: "max-sg", New: func(int) game.Game { return game.NewSwap(game.Max) }},
		},
		N:         8,
		Instances: 10,
		Seed:      7,
		MaxStates: 300,
	}
}

// singleProcessBytes is the canonical baseline: the exact JSONL stream a
// single-process campaign.Run writes for the test campaign.
func singleProcessBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := campaign.Run(testCampaign(), campaign.Options{}, campaign.NewJSONLSink(&buf)); err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	return buf.Bytes()
}

// runWorkers drives n fault-free workers against url until the campaign
// completes.
func runWorkers(t *testing.T, url string, n int) {
	t.Helper()
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		go func() {
			_, err := RunWorker(context.Background(), WorkerConfig{
				URL:      url,
				Campaign: testCampaign(),
				Name:     "worker-" + name,
			})
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
}

func TestCoordinatorMergeMatchesSingleProcess(t *testing.T) {
	want := singleProcessBytes(t)
	dir := t.TempDir()
	c, err := Open(Config{Campaign: testCampaign(), Dir: dir, ShardSize: 3, LeaseTTL: time.Second})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	runWorkers(t, srv.URL, 3)

	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign did not complete; status %+v", c.Status())
	}
	got, err := os.ReadFile(c.ResultPath())
	if err != nil {
		t.Fatalf("read merged stream: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged stream differs from single-process run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	st := c.Status()
	if !st.Merged || st.Done != st.Shards || st.Records != bytes.Count(want, []byte("\n")) {
		t.Fatalf("bad final status %+v", st)
	}
}

func TestCoordinatorResumesFromManifest(t *testing.T) {
	want := singleProcessBytes(t)
	dir := t.TempDir()
	cfg := Config{Campaign: testCampaign(), Dir: dir, ShardSize: 3, LeaseTTL: time.Second}
	c, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Complete exactly one shard by hand, then "crash" the coordinator
	// by just abandoning it.
	ctx := context.Background()
	recs, err := campaign.RunShard(ctx, c.camp, c.plan[0], nil)
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	data, err := campaign.MarshalRecords(recs)
	if err != nil {
		t.Fatalf("MarshalRecords: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	w := &workerLoop{cfg: WorkerConfig{URL: srv.URL, Client: srv.Client(), Logf: t.Logf, RetryBase: time.Millisecond, RetryMax: time.Millisecond, MaxRetries: 3}}
	var resp CompleteResponse
	if err := w.callRetry(ctx, "/v1/complete", CompleteRequest{Index: 0, Worker: "hand", Records: string(data)}, &resp); err != nil {
		t.Fatalf("complete: %v", err)
	}
	srv.Close()
	c.Close()

	// Reopen: the completed shard must be recovered from the manifest.
	c2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if st := c2.Status(); st.Done != 1 {
		t.Fatalf("after resume, done = %d, want 1 (status %+v)", st.Done, st)
	}
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	runWorkers(t, srv2.URL, 2)
	got, err := os.ReadFile(c2.ResultPath())
	if err != nil {
		t.Fatalf("read merged stream: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed merge differs from single-process run")
	}

	// A third open of the finished directory reports merged immediately.
	c3, err := Open(cfg)
	if err != nil {
		t.Fatalf("open finished dir: %v", err)
	}
	defer c3.Close()
	select {
	case <-c3.Done():
	default:
		t.Fatalf("finished directory did not report done")
	}
}

func TestCoordinatorRejectsForeignCampaign(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Campaign: testCampaign(), Dir: dir, ShardSize: 3}
	c, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	c.Close()
	other := testCampaign()
	other.Seed = 99
	if _, err := Open(Config{Campaign: other, Dir: dir, ShardSize: 3}); err == nil {
		t.Fatalf("Open accepted a different campaign on the same directory")
	}
	if _, err := Open(Config{Campaign: testCampaign(), Dir: dir, ShardSize: 5}); err == nil {
		t.Fatalf("Open accepted a different shard size on the same directory")
	}
}

func TestWorkerFingerprintMismatchIsPermanent(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Campaign: testCampaign(), Dir: dir, ShardSize: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	drifted := testCampaign()
	drifted.MaxStates = 12345
	start := time.Now()
	_, err = RunWorker(context.Background(), WorkerConfig{URL: srv.URL, Campaign: drifted, Name: "drifted"})
	if err == nil {
		t.Fatalf("drifted worker did not fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("fingerprint mismatch took %v; should fail fast, not retry", time.Since(start))
	}
}

func TestLeaseExpiryReleasesShard(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	clock := &now
	c, err := Open(Config{
		Campaign: testCampaign(), Dir: dir, ShardSize: 3,
		LeaseTTL: time.Minute,
		Now:      func() time.Time { return *clock },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	c.mu.Lock()
	l := c.grant(0, "w1", now)
	c.mu.Unlock()
	if st := c.Status(); st.Leased != 1 {
		t.Fatalf("leased = %d, want 1", st.Leased)
	}
	later := now.Add(2 * time.Minute)
	clock = &later
	if st := c.Status(); st.Leased != 0 || st.Pending != st.Shards {
		t.Fatalf("after expiry, status %+v; want all pending", st)
	}
	c.mu.Lock()
	_, live := c.leases[l.id]
	c.mu.Unlock()
	if live {
		t.Fatalf("expired lease still live")
	}
}

func TestManifestTornTailIsRecovered(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Campaign: testCampaign(), Dir: dir, ShardSize: 3}
	c, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Simulate a crash mid-append: torn garbage after the header.
	c.mu.Lock()
	c.man.appendTorn(manifestEntry{Type: "shard", Index: 1, Shard: c.plan[1], File: "zzz"})
	c.mu.Unlock()
	c.Close()
	c2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen with torn manifest: %v", err)
	}
	defer c2.Close()
	if st := c2.Status(); st.Done != 0 || st.Pending != st.Shards {
		t.Fatalf("torn tail was trusted: %+v", st)
	}
	// The torn bytes must be gone from the manifest file.
	data, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("zzz")) {
		t.Fatalf("torn tail survived recovery: %q", data)
	}
}
