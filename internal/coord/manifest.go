package coord

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"ncg/internal/campaign"
	"ncg/internal/jsonl"
)

// manifestEntry is one line of the coordinator's append-only manifest — a
// write-ahead log of shard completions. The manifest commits a shard only
// after its file is durably (atomically) on disk, so recovery trusts a
// "shard" entry exactly when the referenced file still matches its
// recorded length and checksum. The file shares the repository's
// truncated-tail JSONL semantics: a torn tail (a crash mid-append) is cut
// on recovery and the lost entries' shards simply re-run.
type manifestEntry struct {
	// Type is "campaign" (the header), "shard" (a completed shard) or
	// "merged" (the final stream was written).
	Type string `json:"type"`
	// Header fields: the resolved campaign fingerprint and the shard
	// decomposition it was planned with. A resume with a different
	// configuration is rejected, never silently mixed.
	Fingerprint string `json:"fingerprint,omitempty"`
	ShardSize   int    `json:"shardSize,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	// Shard fields: the plan index and the persisted file's identity.
	Index   int               `json:"index,omitempty"`
	Shard   campaign.ShardRef `json:"shard,omitempty"`
	File    string            `json:"file,omitempty"`
	Bytes   int64             `json:"bytes,omitempty"`
	Sum     string            `json:"sum,omitempty"`
	Records int               `json:"records,omitempty"`
	Hits    int               `json:"hits,omitempty"`
}

// checksum is the manifest's file integrity hash (FNV-64a over the full
// content) — not cryptographic, just torn/stale-write detection.
func checksum(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// manifest owns the append handle of the manifest file. Appends fsync
// before reporting success, so a committed entry survives a crash; a
// crash mid-append leaves a torn tail the next open truncates.
type manifest struct {
	path string
	f    *os.File
}

// openManifest loads the manifest at path (creating it if missing),
// returning the recovered entries in order and the manifest positioned
// for crash-safe appends. The torn tail, if any, is truncated — exactly
// the jsonl.OpenResume semantics the record checkpoints use.
func openManifest(path string) (*manifest, []manifestEntry, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if err := jsonl.AtomicWriteFile(path, nil, 0o644); err != nil {
			return nil, nil, err
		}
	}
	var entries []manifestEntry
	good, err := jsonl.ScanFile(path, func(line []byte) bool {
		var e manifestEntry
		if json.Unmarshal(line, &e) != nil || e.Type == "" {
			return false
		}
		entries = append(entries, e)
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	f, err := jsonl.OpenResume(path, good)
	if err != nil {
		return nil, nil, err
	}
	return &manifest{path: path, f: f}, entries, nil
}

// append commits one entry: a full JSON line, fsynced before returning.
func (m *manifest) append(e manifestEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := m.f.Write(line); err != nil {
		return err
	}
	return m.f.Sync()
}

// appendTorn writes only a prefix of the entry's line and syncs it — the
// fault-injection path simulating a crash mid-append. The torn bytes are
// exactly what a real power cut could leave, and the next openManifest
// must cut them.
func (m *manifest) appendTorn(e manifestEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	torn := line[:len(line)/2]
	if _, err := m.f.Write(torn); err != nil {
		return err
	}
	return m.f.Sync()
}

// close releases the append handle.
func (m *manifest) close() error { return m.f.Close() }

// shardFileName is the canonical relative path of a plan index's shard
// file inside the coordinator directory.
func shardFileName(index int) string {
	return filepath.Join("shards", fmt.Sprintf("shard-%06d.jsonl", index))
}
